/**
 * @file
 * Unit tests for the ISA layer: opcode properties, instruction helpers,
 * the program builder and label fix-ups.
 */

#include <gtest/gtest.h>

#include "isa/builder.hh"
#include "isa/instruction.hh"
#include "isa/opcodes.hh"

namespace msp {
namespace {

TEST(Opcodes, TableIsConsistent)
{
    for (int i = 0; i < static_cast<int>(Opcode::NumOpcodes); ++i) {
        const OpInfo &oi = opInfo(static_cast<Opcode>(i));
        EXPECT_NE(oi.mnemonic, nullptr);
        EXPECT_GE(oi.latency, 1);
        // Control-flow classification is mutually exclusive.
        int kinds = oi.isCondBranch + oi.isUncondDirect + oi.isIndirect;
        EXPECT_LE(kinds, 1);
        if (oi.isLoad || oi.isStore)
            EXPECT_EQ(oi.fu, FuClass::Mem);
    }
}

TEST(Opcodes, KeyProperties)
{
    EXPECT_TRUE(opInfo(Opcode::LD).isLoad);
    EXPECT_TRUE(opInfo(Opcode::FST).isStore);
    EXPECT_EQ(opInfo(Opcode::FST).src2, RegClass::Fp);
    EXPECT_TRUE(opInfo(Opcode::BEQ).isCondBranch);
    EXPECT_TRUE(opInfo(Opcode::JAL).isCall);
    EXPECT_TRUE(opInfo(Opcode::RET).isReturn);
    EXPECT_TRUE(opInfo(Opcode::RET).isIndirect);
    EXPECT_TRUE(opInfo(Opcode::TRAP).isTrap);
    EXPECT_TRUE(opInfo(Opcode::HALT).isHalt);
    EXPECT_EQ(opInfo(Opcode::FDIV).latency, 12);
}

TEST(Instruction, ZeroRegisterNeverAllocates)
{
    Instruction in;
    in.op = Opcode::ADDI;
    in.rd = 0;
    in.rs1 = 1;
    EXPECT_FALSE(in.writesReg());
    EXPECT_EQ(in.dstUnified(), -1);

    in.rd = 5;
    EXPECT_TRUE(in.writesReg());
    EXPECT_EQ(in.dstUnified(), 5);
}

TEST(Instruction, UnifiedFpIndices)
{
    Instruction in;
    in.op = Opcode::FADD;
    in.rd = 3;
    in.rs1 = 1;
    in.rs2 = 2;
    EXPECT_EQ(in.dstUnified(), numIntRegs + 3);
    EXPECT_EQ(in.src1Unified(), numIntRegs + 1);
    EXPECT_EQ(in.src2Unified(), numIntRegs + 2);
}

TEST(Instruction, ZeroSourceReadsAreElided)
{
    Instruction in;
    in.op = Opcode::ADD;
    in.rd = 1;
    in.rs1 = 0;
    in.rs2 = 2;
    EXPECT_EQ(in.src1Unified(), -1);   // r0: no rename needed
    EXPECT_EQ(in.src2Unified(), 2);
}

TEST(Builder, LabelsPatchBranchTargets)
{
    ProgramBuilder b("t");
    Label top = b.newLabel();
    Label out = b.newLabel();
    b.li(1, 3);                  // pc 0
    b.bind(top);                 // pc 1
    b.addi(1, 1, -1);            // pc 1
    b.bne(1, 0, top);            // pc 2 -> 1
    b.beq(1, 0, out);            // pc 3 -> 4
    b.bind(out);
    b.halt();                    // pc 4
    Program p = b.finish();
    EXPECT_EQ(p.code[2].imm, 1);
    EXPECT_EQ(p.code[3].imm, 4);
    EXPECT_EQ(b.labelAddr(top), 1u);
}

TEST(Builder, ForwardAndBackwardLabels)
{
    ProgramBuilder b("t");
    Label fwd = b.newLabel();
    b.j(fwd);
    b.nop();
    b.nop();
    b.bind(fwd);
    b.halt();
    Program p = b.finish();
    EXPECT_EQ(p.code[0].imm, 3);
}

TEST(Builder, DataInitialization)
{
    ProgramBuilder b("t");
    b.memSize(100);              // rounded to power of two
    b.data(5, 12345);
    b.halt();
    Program p = b.finish();
    EXPECT_EQ(p.memWords, 128u);
    ASSERT_GT(p.initData.size(), 5u);
    EXPECT_EQ(p.initData[5], 12345u);
}

TEST(Builder, AddrMaskIsPowerOfTwoMinusAlignment)
{
    ProgramBuilder b("t");
    b.memSize(1 << 10);
    b.halt();
    Program p = b.finish();
    EXPECT_EQ(p.addrMask(), (1u << 13) - 1);   // words * 8 - 1
}

TEST(BuilderDeath, UnboundLabelPanics)
{
    ProgramBuilder b("t");
    Label l = b.newLabel();
    b.j(l);
    EXPECT_DEATH(b.finish(), "never bound");
}

TEST(BuilderDeath, BadRegisterPanics)
{
    ProgramBuilder b("t");
    EXPECT_DEATH(b.add(32, 0, 0), "out of range");
    EXPECT_DEATH(b.add(-1, 0, 0), "out of range");
}

TEST(Disassembly, ContainsMnemonicAndRegs)
{
    Instruction in;
    in.op = Opcode::ADD;
    in.rd = 1;
    in.rs1 = 2;
    in.rs2 = 3;
    const std::string s = in.toString();
    EXPECT_NE(s.find("add"), std::string::npos);
    EXPECT_NE(s.find("r1"), std::string::npos);
    EXPECT_NE(s.find("r3"), std::string::npos);
}

} // namespace
} // namespace msp
