/**
 * @file
 * SoA window (WindowLanes) tests: lane/age-list/ready-bit equivalence
 * against a naive DynInst-vector model under randomized insert, wakeup,
 * issue (oldest-ready removal) and squash (youngest-first removal);
 * generation-guarded wakeups across slot reuse; RegWaiters semantics;
 * and the ladder-wide timing pin that anchors the refactor to the
 * pre-SoA cycle counts.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <deque>
#include <random>
#include <vector>

#include "pipeline/dyninst.hh"
#include "pipeline/window_lanes.hh"
#include "sim/presets.hh"
#include "verify/fuzzer.hh"
#include "verify/oracle.hh"

namespace msp {
namespace {

/** The naive mirror: what a DynInst-pointer scan would see, in age
 *  order. Every field the lanes duplicate lives here too. */
struct NaiveEntry
{
    DynInst *d;
    SeqNum seq;
    PhysReg src1;
    PhysReg src2;
    unsigned char fu;
    unsigned pending;
    bool ready;
};

/** Assert the SoA lanes agree with the naive model, field by field. */
void
expectEquiv(const WindowLanes &iq, const std::vector<NaiveEntry> &model)
{
    ASSERT_EQ(iq.capacity() - iq.freeCount(), model.size());
    std::vector<int> live;
    for (const std::int32_t s : iq.ageOrder())
        if (s >= 0)
            live.push_back(s);
    ASSERT_EQ(live.size(), model.size());

    bool anyReady = false;
    for (std::size_t i = 0; i < model.size(); ++i) {
        const int s = live[i];
        const NaiveEntry &e = model[i];
        ASSERT_EQ(iq.at(s), e.d) << "slot " << s;
        EXPECT_EQ(iq.seqOf(s), e.seq);
        EXPECT_EQ(iq.src1Of(s), e.src1);
        EXPECT_EQ(iq.src2Of(s), e.src2);
        EXPECT_EQ(iq.fuOf(s), e.fu);
        EXPECT_EQ(iq.pendingOf(s), e.pending);
        EXPECT_EQ(iq.ready(s), e.ready);
        EXPECT_EQ(e.d->iqSlot, s);
        anyReady |= e.ready;
    }
    EXPECT_EQ(iq.anyReady(), anyReady);
}

TEST(WindowLanes, RandomOpsMatchTheNaiveModel)
{
    constexpr unsigned capacity = 24;
    std::mt19937 rng(12345);
    WindowLanes iq(capacity);
    std::deque<DynInst> storage;   // stable addresses
    std::vector<NaiveEntry> model; // age order, oldest first
    SeqNum nextSeq = 1;

    auto insertOne = [&] {
        storage.emplace_back();
        DynInst &d = storage.back();
        d.seq = nextSeq++;
        const int slot = iq.insert(&d);
        const PhysReg s1 = static_cast<PhysReg>(rng() % 64);
        const PhysReg s2 = static_cast<PhysReg>(rng() % 64);
        const unsigned char fu = static_cast<unsigned char>(rng() % 3);
        iq.fillTags(slot, s1, s2, fu);
        const unsigned pending = rng() % 3;
        iq.setPending(slot, pending);
        model.push_back(
            NaiveEntry{&d, d.seq, s1, s2, fu, pending, pending == 0});
    };

    for (int op = 0; op < 20000; ++op) {
        const unsigned pick = rng() % 100;
        if (pick < 40) {
            if (!iq.full())
                insertOne();
        } else if (pick < 65) {
            // Producer writeback: wake one pending entry.
            std::vector<std::size_t> waiting;
            for (std::size_t i = 0; i < model.size(); ++i)
                if (model[i].pending > 0)
                    waiting.push_back(i);
            if (!waiting.empty()) {
                NaiveEntry &e = model[waiting[rng() % waiting.size()]];
                iq.wakeSrc(e.d->iqSlot);
                if (--e.pending == 0)
                    e.ready = true;
            }
        } else if (pick < 90) {
            // Issue: the oldest ready entry leaves the queue.
            for (std::size_t i = 0; i < model.size(); ++i) {
                if (!model[i].ready)
                    continue;
                iq.remove(model[i].d);
                model.erase(model.begin() +
                            static_cast<std::ptrdiff_t>(i));
                break;
            }
        } else {
            // Squash: youngest k entries leave, youngest first.
            std::size_t k = model.empty() ? 0 : rng() % model.size();
            while (k-- > 0 && !model.empty()) {
                iq.remove(model.back().d);
                model.pop_back();
            }
        }
        if (op % 7 == 0)
            expectEquiv(iq, model);
    }
    expectEquiv(iq, model);
}

TEST(WindowLanes, StaleGenerationWakeupsAreIgnoredAcrossSlotReuse)
{
    WindowLanes iq(4);
    DynInst a, b;
    a.seq = 1;
    b.seq = 2;

    const int slot = iq.insert(&a);
    iq.setPending(slot, 1);
    const std::uint32_t genA = iq.generation(slot);
    iq.remove(&a);   // a squashes; its subscription is now stale

    // The slot is reused by a younger instruction.
    ASSERT_EQ(iq.insert(&b), slot);
    iq.setPending(slot, 1);

    // a's producer finally writes back: must NOT wake b.
    iq.wakeSrcIfCurrent(slot, genA);
    EXPECT_FALSE(iq.ready(slot));
    EXPECT_EQ(iq.pendingOf(slot), 1u);

    // b's own producer does wake it.
    iq.wakeSrcIfCurrent(slot, iq.generation(slot));
    EXPECT_TRUE(iq.ready(slot));
    EXPECT_TRUE(iq.anyReady());
}

TEST(WindowLanes, RegWaitersDrainWakesOnlyCurrentSubscribers)
{
    WindowLanes iq(4);
    RegWaiters waiters;
    waiters.init(8);

    DynInst a, b;
    a.seq = 1;
    b.seq = 2;
    const int slotA = iq.insert(&a);
    iq.setPending(slotA, 1);
    waiters.watch(3, slotA, iq.generation(slotA));

    const int slotB = iq.insert(&b);
    iq.setPending(slotB, 1);
    waiters.watch(3, slotB, iq.generation(slotB));

    iq.remove(&a);   // a leaves before the producer completes

    waiters.drain(3, iq);
    EXPECT_TRUE(iq.ready(slotB));
    EXPECT_EQ(iq.capacity() - iq.freeCount(), 1u);

    // A drained list is empty: a second drain wakes nobody (wakeSrc on
    // a ready slot would assert).
    waiters.drain(3, iq);
    EXPECT_TRUE(iq.ready(slotB));
}

TEST(WindowLanes, AgeListCompactionPreservesOrderUnderChurn)
{
    // Hammer insert/remove so the order list overflows its 2x bound
    // many times; the fuzz above rarely fills the queue, this always
    // alternates to force compaction.
    constexpr unsigned capacity = 8;
    WindowLanes iq(capacity);
    std::deque<DynInst> storage;
    std::vector<NaiveEntry> model;
    SeqNum nextSeq = 1;

    for (int round = 0; round < 1000; ++round) {
        while (!iq.full()) {
            storage.emplace_back();
            DynInst &d = storage.back();
            d.seq = nextSeq++;
            const int slot = iq.insert(&d);
            iq.fillTags(slot, 1, 2, 0);
            iq.setPending(slot, 0);
            model.push_back(NaiveEntry{&d, d.seq, 1, 2, 0, 0, true});
        }
        // Drain half from the front (issue), half from the back
        // (squash).
        for (int i = 0; i < 2; ++i) {
            iq.remove(model.front().d);
            model.erase(model.begin());
            iq.remove(model.back().d);
            model.pop_back();
        }
        expectEquiv(iq, model);
    }
}

// ---------------------------------------------------------------------------
// Ladder anchor: the SoA window and event-driven wakeup must be
// cycle-exact with the pre-refactor polling core. The differential runs
// prove stream correctness; the pinned cycle counts prove the *timing*
// didn't move (these values were recorded from the polling
// implementation and must never drift).
// ---------------------------------------------------------------------------

TEST(WindowLanes, FullLadderIsCleanAndCycleExact)
{
    struct Pin
    {
        const char *name;
        MachineConfig cfg;
        std::uint64_t cycles;   // recorded pre-SoA; must not drift
    };
    std::vector<Pin> pins;
    pins.push_back({"baseline", baselineConfig(PredictorKind::Gshare), 4211});
    pins.push_back({"cpr", cprConfig(PredictorKind::Gshare), 4913});
    pins.push_back({"8sp", nspConfig(8, PredictorKind::Gshare), 4294});
    pins.push_back({"16sp", nspConfig(16, PredictorKind::Gshare), 4221});
    pins.push_back({"ideal", idealMspConfig(PredictorKind::Gshare), 4138});

    const Program p = verify::fuzzProgram(42);
    for (Pin &pin : pins) {
        const verify::DiffOutcome out = verify::diffRun(p, pin.cfg);
        EXPECT_TRUE(out.ok()) << pin.name;
        if (pin.cycles != 0) {
            EXPECT_EQ(out.cycles, pin.cycles)
                << pin.name << ": timing drifted from the recorded "
                << "pre-refactor cycle count";
        } else {
            ADD_FAILURE() << pin.name << " pin not recorded; cycles="
                          << out.cycles;
        }
    }
}

} // anonymous namespace
} // namespace msp
