/**
 * @file
 * CPR core tests: checkpoint allocation, reference-counted register
 * release, rollback recovery with re-execution accounting, and
 * refcount invariants across recovery storms.
 */

#include <gtest/gtest.h>

#include "cpr/cpr_core.hh"
#include "isa/builder.hh"
#include "sim/machine.hh"
#include "sim/presets.hh"
#include "workload/micro.hh"

namespace msp {
namespace {

TEST(CprCore, TakesCheckpointsAndCommitsInBulk)
{
    Program prog = micro::branchy(3000, 17);
    Machine m(cprConfig(PredictorKind::Gshare), prog);
    RunResult r = m.run(10000000);
    EXPECT_GT(r.checkpointsTaken, 20u);
    FunctionalExecutor ref(prog);
    ref.run(10000000);
    EXPECT_EQ(r.committed, ref.instCount());
    EXPECT_TRUE(m.core().oracleRef().state() == ref.state());
}

TEST(CprCore, RollbacksReExecuteCorrectPathWork)
{
    // Hard-to-predict branches force rollbacks; any rollback that lands
    // before the branch throws away executed correct-path work.
    Program prog = micro::branchy(5000, 3);
    Machine m(cprConfig(PredictorKind::Gshare), prog);
    RunResult r = m.run(10000000);
    EXPECT_GT(r.recoveries, 50u);
    EXPECT_GT(r.reExecuted, 0u)
        << "checkpoint recovery is imprecise by construction";
}

TEST(CprCore, MspExecutesFewerInstructionsThanCpr)
{
    // The paper's headline energy argument (Fig. 9).
    Program prog = micro::branchy(6000, 9);
    Machine cpr(cprConfig(PredictorKind::Gshare), prog);
    RunResult rc = cpr.run(10000000);
    Machine msp(nspConfig(16, PredictorKind::Gshare), prog);
    RunResult rm = msp.run(10000000);
    EXPECT_EQ(rc.committed, rm.committed);
    EXPECT_LT(rm.totalExecuted, rc.totalExecuted);
    EXPECT_EQ(rm.reExecuted, 0u);
}

TEST(CprCore, RefCountsStayExactAcrossRecoveries)
{
    Program prog = micro::branchy(2000, 31);
    Machine m(cprConfig(PredictorKind::Gshare), prog);
    auto &core = static_cast<CprCore &>(m.core());
    // Interleave short bursts of execution with invariant checks.
    for (int burst = 0; burst < 20; ++burst) {
        m.run(1000000, (burst + 1) * 500);
        ASSERT_TRUE(core.verifyRefCounts())
            << "refcount drift after burst " << burst;
    }
}

TEST(CprCore, CheckpointCountBoundsLiveCheckpoints)
{
    Program prog = micro::branchy(3000, 5);
    MachineConfig cfg = cprConfig(PredictorKind::Gshare, 192, 4);
    Machine m(cfg, prog);
    auto &core = static_cast<CprCore &>(m.core());
    for (int burst = 0; burst < 10; ++burst) {
        m.run(1000000, (burst + 1) * 300);
        EXPECT_LE(core.liveCheckpoints(), 4u);
    }
}

TEST(CprCore, FewerCheckpointsMeansMoreReExecution)
{
    Program prog = micro::branchy(6000, 77);
    RunResult few, many;
    {
        Machine m(cprConfig(PredictorKind::Gshare, 192, 2), prog);
        few = m.run(10000000);
    }
    {
        Machine m(cprConfig(PredictorKind::Gshare, 192, 16), prog);
        many = m.run(10000000);
    }
    EXPECT_EQ(few.committed, many.committed);
    EXPECT_GT(few.reExecuted, many.reExecuted)
        << "sparser checkpoints must lengthen rollbacks";
}

TEST(CprCore, ExceptionsRecoverViaCheckpointAndMatchOracle)
{
    Program prog = micro::trapLoop(400, 31);
    Machine m(cprConfig(PredictorKind::Tage), prog);
    RunResult r = m.run(10000000);
    EXPECT_GT(r.exceptions, 10u);
    FunctionalExecutor ref(prog);
    ref.run(10000000);
    EXPECT_EQ(r.committed, ref.instCount());
    EXPECT_TRUE(m.core().oracleRef().state() == ref.state());
}

TEST(CprCore, RegisterSweepHasDiminishingReturns)
{
    // Sec. 4.3: CPR barely improves past 192 registers.
    Program prog = micro::branchy(4000, 13);
    double ipc192, ipc512;
    {
        Machine m(cprConfig(PredictorKind::Tage, 192), prog);
        ipc192 = m.run(10000000).ipc();
    }
    {
        Machine m(cprConfig(PredictorKind::Tage, 512), prog);
        ipc512 = m.run(10000000).ipc();
    }
    EXPECT_GE(ipc512, ipc192 * 0.98);
    EXPECT_LE(ipc512, ipc192 * 1.15);
}

} // namespace
} // namespace msp
