/**
 * @file
 * Trace-ingestion tests (workload/trace.{hh,cc}): bit-exact
 * toJsonl()/fromJsonl() round-trips over every registry workload, the
 * strict malformed-document error paths (each naming its 1-based
 * line), geometry validation, and the registry's "trace:FILE" and
 * grid "workload.trace" plumbing end to end through a simulation.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>

#include "driver/report.hh"
#include "functional/executor.hh"
#include "sim/grid.hh"
#include "sim/machine.hh"
#include "workload/registry.hh"
#include "workload/trace.hh"

namespace msp {
namespace {

/** fromJsonl() must throw a TraceError that contains @p want. */
void
expectTraceError(const std::string &doc, const std::string &want)
{
    try {
        trace::fromJsonl(doc);
        FAIL() << "expected TraceError containing '" << want << "'";
    } catch (const trace::TraceError &e) {
        EXPECT_NE(std::string(e.what()).find(want), std::string::npos)
            << "message was: " << e.what();
    }
}

bool
sameProgram(const Program &a, const Program &b)
{
    if (a.name != b.name || a.memWords != b.memWords ||
        a.entry != b.entry || a.codeBase != b.codeBase ||
        a.initData != b.initData || a.code.size() != b.code.size()) {
        return false;
    }
    for (std::size_t i = 0; i < a.code.size(); ++i) {
        if (a.code[i].op != b.code[i].op || a.code[i].rd != b.code[i].rd ||
            a.code[i].rs1 != b.code[i].rs1 ||
            a.code[i].rs2 != b.code[i].rs2 ||
            a.code[i].imm != b.code[i].imm) {
            return false;
        }
    }
    return true;
}

const char *header =
    "{\"format\": \"msp-trace-v1\", \"name\": \"t\", \"mem_words\": 64, "
    "\"entry\": 0, \"code_base\": 67108864, \"init_data\": []}\n";

// ---- round trips -----------------------------------------------------------

TEST(Trace, RoundTripsEveryRegistryWorkload)
{
    for (const std::string &name : workload::registeredNames()) {
        const Program prog = workload::build(name, 2);
        const std::string doc = trace::toJsonl(prog);
        const Program back = trace::fromJsonl(doc);
        EXPECT_TRUE(sameProgram(prog, back)) << name;
        // And the serialisation itself is a fixed point.
        EXPECT_EQ(trace::toJsonl(back), doc) << name;
    }
}

TEST(Trace, RoundTripsInitDataAndGeometry)
{
    Program p;
    p.name = "geom";
    p.memWords = 128;
    p.entry = 1;
    p.codeBase = 0x8000;
    p.initData = {0, ~std::uint64_t{0}, 0x123456789abcdef0ull};
    p.code.push_back({});            // default instruction
    p.code.push_back({});
    const Program back = trace::fromJsonl(trace::toJsonl(p));
    EXPECT_TRUE(sameProgram(p, back));
}

// ---- malformed documents ---------------------------------------------------

TEST(Trace, RejectsEmptyAndHeaderlessDocuments)
{
    expectTraceError("", "trace line 1: empty trace");
    expectTraceError("\n  \n", "trace line 1: empty trace");
    expectTraceError("[\"halt\", -1, -1, -1, 0]\n",
                     "trace line 1: expected the header object");
    expectTraceError("{\"format\": \"not-this\"}\n",
                     "unsupported format 'not-this'");
}

TEST(Trace, RejectsBadGeometry)
{
    expectTraceError(
        "{\"format\": \"msp-trace-v1\", \"name\": \"t\", "
        "\"mem_words\": 48}\n[\"halt\", -1, -1, -1, 0]\n",
        "mem_words 48 is not a power of two");
    expectTraceError(
        "{\"format\": \"msp-trace-v1\", \"name\": \"t\", "
        "\"mem_words\": 33554432}\n[\"halt\", -1, -1, -1, 0]\n",
        "implausibly large");
    expectTraceError(
        "{\"format\": \"msp-trace-v1\", \"name\": \"t\", "
        "\"mem_words\": 2, \"init_data\": [\"0\", \"1\", \"2\"]}\n"
        "[\"halt\", -1, -1, -1, 0]\n",
        "init_data (3 words) exceeds mem_words (2)");
    expectTraceError(
        "{\"format\": \"msp-trace-v1\", \"name\": \"t\", "
        "\"init_data\": [\"xyzzy\"]}\n[\"halt\", -1, -1, -1, 0]\n",
        "non-hexadecimal init_data word 'xyzzy'");
    expectTraceError(
        "{\"format\": \"msp-trace-v1\", \"name\": \"t\", "
        "\"entry\": 5}\n[\"halt\", -1, -1, -1, 0]\n",
        "entry 5 is past the last instruction");
    expectTraceError(std::string(header),
                     "trace carries no instruction records");
}

TEST(Trace, MalformedRecordsNameTheirLine)
{
    // Line numbers are physical (1-based), counting blank lines too.
    expectTraceError(std::string(header) + "[\"frobnicate\", 1, 2, 3, 4]\n",
                     "trace line 2: unknown opcode mnemonic 'frobnicate'");
    expectTraceError(std::string(header) +
                         "[\"addi\", 1, 1, -1, 1]\n\n[\"addi\", 1, 1]\n",
                     "trace line 4: malformed operand 2");
    expectTraceError(std::string(header) + "[\"addi\"]\n",
                     "trace line 2: instruction record has fewer than "
                     "4 operands");
    expectTraceError(std::string(header) + "[\"addi\", 1, one, -1, 4]\n",
                     "trace line 2: non-numeric operand 2");
    expectTraceError(std::string(header) + "[\"addi\", 99, 1, -1, 4]\n",
                     "register operand 99 out of range");
    expectTraceError(std::string(header) + "[\"addi\", 1, 1, -1, 4, 9]\n",
                     "trace line 2");
    expectTraceError(std::string(header) + "\"addi\", 1, 1, -1, 4]\n",
                     "expected an instruction tuple starting with '['");
}

// ---- file plumbing ---------------------------------------------------------

TEST(Trace, LoadPrefixesThePathAndRegistryRoutesTraceNames)
{
    const std::string path = "/tmp/msp_test_trace.jsonl";
    const Program prog = workload::build("prodcons", 5);
    driver::writeFile(path, trace::toJsonl(prog));

    // load() and the registry's trace: prefix see the same program.
    EXPECT_TRUE(sameProgram(trace::load(path), prog));
    EXPECT_TRUE(sameProgram(workload::build("trace:" + path, 1), prog));

    try {
        trace::load("/tmp/msp_test_no_such_trace.jsonl");
        FAIL() << "expected TraceError";
    } catch (const trace::TraceError &e) {
        EXPECT_NE(std::string(e.what()).find(
                      "cannot read trace file "
                      "/tmp/msp_test_no_such_trace.jsonl"),
                  std::string::npos);
    }
    driver::writeFile(path, "[\"halt\", -1, -1, -1, 0]\n");
    try {
        trace::load(path);
        FAIL() << "expected TraceError";
    } catch (const trace::TraceError &e) {
        // Parse errors carry the path and the line.
        EXPECT_NE(std::string(e.what()).find(
                      path + ": trace line 1: expected the header object"),
                  std::string::npos)
            << e.what();
    }
    std::remove(path.c_str());
}

// ---- workload registry -----------------------------------------------------

TEST(Registry, NamesCoverSpecMicroAndNewFamilies)
{
    const std::vector<std::string> names = workload::registeredNames();
    for (const char *want :
         {"gzip", "mcf", "swim", "ammp", "tight-loop", "ptrchase",
          "prodcons", "interp"}) {
        EXPECT_NE(std::find(names.begin(), names.end(), want),
                  names.end()) << want;
        EXPECT_TRUE(workload::known(want)) << want;
    }
    EXPECT_FALSE(workload::known("frobnicate"));
    // trace: names are known when a path follows the prefix.
    EXPECT_TRUE(workload::known("trace:/tmp/x.jsonl"));
    EXPECT_FALSE(workload::known("trace:"));
}

TEST(Registry, BuildIsAPureFunctionOfNameAndSeed)
{
    for (const char *name : {"ptrchase", "prodcons", "interp", "gzip"}) {
        const Program a = workload::build(name, 7);
        const Program b = workload::build(name, 7);
        const Program c = workload::build(name, 8);
        EXPECT_TRUE(sameProgram(a, b)) << name;
        if (std::string(name) != "gzip")   // seed varies the program
            EXPECT_FALSE(sameProgram(a, c)) << name;
        EXPECT_FALSE(a.code.empty()) << name;
    }
}

TEST(Registry, NewFamiliesHaltUnderTheFunctionalModel)
{
    // Every generated program must HALT (the differential oracle
    // treats no-halt-within-budget as a divergence for fuzzed runs).
    for (const char *name : {"ptrchase", "prodcons", "interp"}) {
        const Program prog = workload::build(name, 3);
        FunctionalExecutor ex(prog);
        while (!ex.halted() && ex.instCount() < (1u << 22))
            ex.step();
        EXPECT_TRUE(ex.halted()) << name;
    }
}

TEST(Registry, UnknownNameListsTheOptions)
{
    try {
        workload::build("frobnicate", 1);
        FAIL() << "expected WorkloadError";
    } catch (const workload::WorkloadError &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("unknown workload 'frobnicate'"),
                  std::string::npos) << msg;
        EXPECT_NE(msg.find("trace:FILE"), std::string::npos) << msg;
    }
    EXPECT_THROW(workload::build("trace:", 1), workload::WorkloadError);
}

TEST(Trace, GridWorkloadTraceAxisRunsTheFile)
{
    const std::string path = "/tmp/msp_test_trace_axis.jsonl";
    driver::writeFile(path, trace::toJsonl(workload::build("interp", 3)));
    const grid::Grid g = grid::expand(
        "{\"axes\": [{\"keys\": {\"workload.trace\": [\"" + path +
        "\"]}}, {\"keys\": {\"base\": [\"cpr\"]}}]}");
    ASSERT_EQ(g.points.size(), 1u);
    EXPECT_EQ(g.points[0].workload, "trace:" + path);

    const Program prog = workload::build(g.points[0].workload, 1);
    Machine m(g.points[0].machine, prog);
    const RunResult r = m.run(2000);
    EXPECT_GT(r.committed, 0u);
    std::remove(path.c_str());
}

} // anonymous namespace
} // namespace msp
