/**
 * @file
 * Tests for the campaign state backend (driver/state.hh): the shared
 * JSON escape/unescape pair, checkpoint write/resume with torn-tail
 * quarantine, cooperative interruption, deterministic sharding, and
 * the headline guarantees — a killed-and-resumed campaign's report and
 * a sharded-and-merged report are both byte-identical to an
 * uninterrupted, unsharded run's at any thread count.
 */

#include <gtest/gtest.h>

#include <cstdio>

#include "common/json.hh"
#include "driver/campaign.hh"
#include "driver/report.hh"
#include "driver/state.hh"
#include "sim/presets.hh"
#include "verify/diff_campaign.hh"
#include "verify/fuzzer.hh"
#include "verify/report.hh"

namespace msp {
namespace {

using driver::CampaignState;
using driver::CheckpointError;
using driver::SimCampaign;
using verify::DiffCampaign;

constexpr std::uint64_t kBudget = 3000;

// Labels chosen to break naive escaping: every two-char shorthand, a
// raw control byte, quotes, backslashes, and multi-byte UTF-8.
const std::vector<std::string> hostileStrings = {
    "plain",
    "quote\" backslash\\ slash/",
    "newline\n tab\t return\r",
    "bell\b feed\f",
    std::string("nul\0byte", 8),
    "\x01\x1f control",
    "caf\xc3\xa9 \xe2\x89\x88",   // café ≈ (UTF-8 passes through)
    "mix\"\\\n\t\r\b\f\x02!",
};

// ---- shared JSON primitives -----------------------------------------------

TEST(JsonEscape, EmitsTheFullControlSet)
{
    EXPECT_EQ(json::escape("a\"b"), "a\\\"b");
    EXPECT_EQ(json::escape("a\\b"), "a\\\\b");
    EXPECT_EQ(json::escape("\n\t\r\b\f"), "\\n\\t\\r\\b\\f");
    EXPECT_EQ(json::escape("\x01"), "\\u0001");
    EXPECT_EQ(json::escape("\x1f"), "\\u001f");
}

TEST(JsonEscape, UnescapeIsTheExactInverse)
{
    for (const std::string &s : hostileStrings)
        EXPECT_EQ(json::unescape(json::escape(s)), s);
    // Decodings escape() never emits but JSON allows.
    EXPECT_EQ(json::unescape("a\\/b"), "a/b");
    EXPECT_EQ(json::unescape("\\u0041"), "A");
}

// The historical bug: the verify-report reader kept the character
// after a backslash verbatim, so "\n" decoded to 'n'. getStr must
// decode exactly what writers emit.
TEST(JsonEscape, GetStrDecodesWhatWritersEmit)
{
    for (const std::string &s : hostileStrings) {
        const std::string obj = "{\"k\": \"" + json::escape(s) + "\"}";
        EXPECT_EQ(json::getStr(obj, "k"), s);
    }
}

TEST(CsvQuote, CarriageReturnTriggersQuoting)
{
    driver::JobResult jr;
    jr.job.scenario = "a\rb";
    jr.job.config = baselineConfig(PredictorKind::Gshare);
    const std::string csv = driver::toCsv({jr});
    // Unquoted, the \r would split the record in two.
    EXPECT_NE(csv.find("\"a\rb\""), std::string::npos);
}

// ---- checkpoint payload codecs --------------------------------------------

TEST(StateCodec, SimResultRoundTripsExactly)
{
    RunResult r;
    r.workload = hostileStrings.back();
    r.config = "cfg\"\n";
    r.cycles = 123456789;
    r.committed = 42;
    r.mispredicts = 7;
    r.bankStallCycles[0] = 11;
    r.bankStallCycles[3] = ~std::uint64_t{0};
    const RunResult back =
        driver::simResultFromJson(driver::simResultToJson(r));
    EXPECT_EQ(back.workload, r.workload);
    EXPECT_EQ(back.config, r.config);
    EXPECT_EQ(back.cycles, r.cycles);
    EXPECT_EQ(back.committed, r.committed);
    EXPECT_EQ(back.mispredicts, r.mispredicts);
    EXPECT_EQ(back.bankStallCycles, r.bankStallCycles);
}

TEST(StateCodec, DiffOutcomeRoundTripsExactly)
{
    verify::DiffOutcome o;
    o.mix = "mix\"\n";
    o.seed = 99;
    o.config = hostileStrings[2];
    o.workload = "w\tx";
    o.committedCore = 1000;
    o.committedRef = 1001;
    o.cycles = 5000;
    o.streamHash = 0xdeadbeefcafe1234ull;
    o.snapshotEvery = 256;
    o.localized = true;
    o.badWindowLo = 512;
    o.badWindowHi = 768;
    o.divergences.push_back(
        verify::Divergence{"stream", hostileStrings.back()});
    const verify::DiffOutcome back =
        verify::outcomeFromJson(verify::outcomeToJson(o));
    EXPECT_EQ(back.mix, o.mix);
    EXPECT_EQ(back.seed, o.seed);
    EXPECT_EQ(back.config, o.config);
    EXPECT_EQ(back.workload, o.workload);
    EXPECT_EQ(back.committedCore, o.committedCore);
    EXPECT_EQ(back.committedRef, o.committedRef);
    EXPECT_EQ(back.cycles, o.cycles);
    EXPECT_EQ(back.streamHash, o.streamHash);
    EXPECT_EQ(back.snapshotEvery, o.snapshotEvery);
    EXPECT_EQ(back.localized, o.localized);
    EXPECT_EQ(back.badWindowLo, o.badWindowLo);
    EXPECT_EQ(back.badWindowHi, o.badWindowHi);
    ASSERT_EQ(back.divergences.size(), 1u);
    EXPECT_EQ(back.divergences[0].kind, "stream");
    EXPECT_EQ(back.divergences[0].detail, o.divergences[0].detail);
}

// ---- CampaignState file lifecycle -----------------------------------------

struct TempCheckpoint
{
    std::string path;
    explicit TempCheckpoint(const char *name)
        : path(std::string("/tmp/msp_test_") + name + ".ckpt")
    {
        std::remove(path.c_str());
        std::remove((path + ".torn").c_str());
    }
    ~TempCheckpoint()
    {
        std::remove(path.c_str());
        std::remove((path + ".torn").c_str());
    }
};

TEST(CampaignState, ResumeRestoresOnlyRecordedJobs)
{
    TempCheckpoint f("resume_basic");
    {
        CampaignState st;
        st.configure(f.path, 1, false);
        st.begin("sim", {0, 1, 2}, {"k0", "k1", "k2"});
        st.recordDone(0, "k0", "{\"v\": 1}");
        st.recordDone(2, "k2", "{\"v\": 3}");
        st.finalFlush();
    }
    CampaignState st;
    st.configure(f.path, 1, true);
    st.begin("sim", {0, 1, 2}, {"k0", "k1", "k2"});
    EXPECT_EQ(st.completedCount(), 2u);
    ASSERT_NE(st.completedPayload(0), nullptr);
    EXPECT_EQ(*st.completedPayload(0), "{\"v\": 1}");
    EXPECT_EQ(st.completedPayload(1), nullptr);
    ASSERT_NE(st.completedPayload(2), nullptr);
    EXPECT_EQ(*st.completedPayload(2), "{\"v\": 3}");
}

TEST(CampaignState, TornTrailingRecordIsQuarantinedNotFatal)
{
    TempCheckpoint f("torn_tail");
    {
        CampaignState st;
        st.configure(f.path, 1, false);
        st.begin("sim", {0, 1}, {"k0", "k1"});
        st.recordDone(0, "k0", "{\"v\": 1}");
        st.recordDone(1, "k1", "{\"v\": 2}");
        st.finalFlush();
    }
    // Tear the trailing record mid-line, as a crash mid-append would.
    const std::string content = driver::readFile(f.path);
    driver::writeFile(f.path, content.substr(0, content.size() - 5));

    CampaignState st;
    st.configure(f.path, 1, true);
    st.begin("sim", {0, 1}, {"k0", "k1"});
    EXPECT_EQ(st.completedCount(), 1u);
    EXPECT_EQ(st.tornRecords(), 1u);
    EXPECT_NE(st.completedPayload(0), nullptr);
    EXPECT_EQ(st.completedPayload(1), nullptr);
    // The torn bytes are preserved for post-mortems, not discarded.
    std::string torn;
    EXPECT_TRUE(driver::tryReadFile(f.path + ".torn", torn));
    EXPECT_NE(torn.find("\"index\": 1"), std::string::npos);
}

TEST(CampaignState, MidFileCorruptionThrows)
{
    TempCheckpoint f("mid_corrupt");
    {
        CampaignState st;
        st.configure(f.path, 1, false);
        st.begin("sim", {0, 1}, {"k0", "k1"});
        st.recordDone(0, "k0", "{\"v\": 1}");
        st.recordDone(1, "k1", "{\"v\": 2}");
        st.finalFlush();
    }
    // Corrupt the *first* record: only a torn tail is recoverable.
    std::string content = driver::readFile(f.path);
    const std::size_t firstNl = content.find('\n');
    driver::writeFile(f.path,
                      content.substr(0, firstNl + 1) + "garbage\n" +
                          content.substr(content.find(
                              '\n', firstNl + 1) + 1));
    CampaignState st;
    st.configure(f.path, 1, true);
    EXPECT_THROW(st.begin("sim", {0, 1}, {"k0", "k1"}),
                 CheckpointError);
}

TEST(CampaignState, DifferentCampaignOrModeIsRejected)
{
    TempCheckpoint f("fingerprint");
    {
        CampaignState st;
        st.configure(f.path, 1, false);
        st.begin("sim", {0, 1}, {"k0", "k1"});
        st.recordDone(0, "k0", "{\"v\": 1}");
        st.finalFlush();
    }
    CampaignState wrongKeys;
    wrongKeys.configure(f.path, 1, true);
    EXPECT_THROW(wrongKeys.begin("sim", {0, 1}, {"k0", "DIFFERENT"}),
                 CheckpointError);
    CampaignState wrongMode;
    wrongMode.configure(f.path, 1, true);
    EXPECT_THROW(wrongMode.begin("verify", {0, 1}, {"k0", "k1"}),
                 CheckpointError);
    CampaignState missing;
    missing.configure("/tmp/msp_test_no_such.ckpt", 1, true);
    EXPECT_THROW(missing.begin("sim", {0}, {"k0"}), CheckpointError);
}

TEST(ShardSelect, ShardsPartitionTheIndexSpace)
{
    std::vector<bool> seen(17, false);
    for (unsigned s = 0; s < 4; ++s) {
        for (std::size_t i : driver::shardSelect(17, s, 4)) {
            EXPECT_FALSE(seen[i]);   // disjoint
            seen[i] = true;
        }
    }
    for (bool b : seen)   // complete
        EXPECT_TRUE(b);
}

// ---- the headline guarantees, driver side ---------------------------------

std::vector<MachineConfig>
smallLadder()
{
    return {
        baselineConfig(PredictorKind::Gshare),
        nspConfig(16, PredictorKind::Gshare),
    };
}

// Eight jobs, so stopping after two (with two workers) always leaves
// jobs never started — the interrupt path has to handle both restored
// and fresh rows on resume.
void
addSimJobs(SimCampaign &c)
{
    c.addMatrix({"gzip", "swim"}, smallLadder(), kBudget, 1);
    c.addMatrix({"gzip", "swim"}, smallLadder(), kBudget, 2);
}

std::string
simReferenceReport()
{
    SimCampaign c(2);
    addSimJobs(c);
    return driver::toJson(c.run());
}

TEST(SimCampaign, InterruptedThenResumedReportIsByteIdentical)
{
    const std::string reference = simReferenceReport();

    for (unsigned resumeThreads : {1u, 4u}) {
        TempCheckpoint f("sim_resume");
        driver::setCampaignStop(false);

        // First run: stop cooperatively once two jobs completed.
        {
            SimCampaign c(2);
            addSimJobs(c);
            CampaignState st;
            st.configure(f.path, 1, false);
            c.attachState(&st);
            const auto partial =
                c.run([&](const driver::JobResult &, std::size_t done,
                          std::size_t) {
                    if (done >= 2)
                        driver::setCampaignStop(true);
                });
            std::size_t ran = 0;
            for (const auto &jr : partial)
                ran += jr.ran ? 1 : 0;
            EXPECT_GE(ran, 2u);
            EXPECT_LT(ran, partial.size());   // some jobs never started
            EXPECT_EQ(st.completedCount(), ran);
        }
        driver::setCampaignStop(false);

        // Resumed run: restored rows + fresh rows must render exactly
        // the uninterrupted report, at any thread count.
        SimCampaign c(resumeThreads);
        addSimJobs(c);
        CampaignState st;
        st.configure(f.path, 1, true);
        c.attachState(&st);
        EXPECT_EQ(driver::toJson(c.run()), reference);
    }
}

TEST(SimCampaign, ShardedReportsMergeToTheUnshardedReport)
{
    const std::string reference = simReferenceReport();

    std::vector<std::string> shardDocs;
    for (unsigned s = 0; s < 3; ++s) {
        SimCampaign c(2);
        addSimJobs(c);
        c.restrictToShard(s, 3);
        shardDocs.push_back(driver::toJson(c.run()));
    }
    EXPECT_EQ(driver::mergeReports(shardDocs), reference);
}

TEST(MergeReports, RejectsOverlapAndMixedKinds)
{
    SimCampaign c(1);
    c.addMatrix({"gzip"}, smallLadder(), kBudget);
    const std::string doc = driver::toJson(c.run());
    // The same shard twice: every index collides.
    EXPECT_THROW(driver::mergeReports({doc, doc}), CheckpointError);
    const std::string verifyDoc =
        verify::toJson(std::vector<verify::DiffOutcome>{});
    EXPECT_THROW(driver::mergeReports({doc, verifyDoc}),
                 CheckpointError);
    EXPECT_THROW(driver::mergeReports({}), CheckpointError);
}

// ---- the headline guarantees, verify side ---------------------------------

DiffCampaign
smallSweep(unsigned threads)
{
    DiffCampaign c(threads);
    c.addSweep({*verify::findMix("branchy")}, 3, 1,
               {idealMspConfig(PredictorKind::Gshare),
                nspConfig(16, PredictorKind::Gshare)},
               1u << 18);
    return c;
}

TEST(DiffCampaign, InterruptedThenResumedReportIsByteIdentical)
{
    const std::string reference =
        verify::toJson(smallSweep(2).run());

    TempCheckpoint f("diff_resume");
    driver::setCampaignStop(false);
    {
        DiffCampaign c = smallSweep(2);
        CampaignState st;
        st.configure(f.path, 1, false);
        c.attachState(&st);
        c.run([&](const verify::DiffOutcome &, std::size_t done,
                  std::size_t) {
            if (done >= 2)
                driver::setCampaignStop(true);
        });
        EXPECT_GE(st.completedCount(), 1u);
        EXPECT_LT(st.completedCount(), 6u);
    }
    driver::setCampaignStop(false);

    DiffCampaign c = smallSweep(1);
    CampaignState st;
    st.configure(f.path, 1, true);
    c.attachState(&st);
    EXPECT_EQ(verify::toJson(c.run()), reference);
}

TEST(DiffCampaign, ShardedReportsMergeToTheUnshardedReport)
{
    const std::string reference =
        verify::toJson(smallSweep(2).run());

    std::vector<std::string> shardDocs;
    for (unsigned s = 0; s < 3; ++s) {
        DiffCampaign c = smallSweep(2);
        c.restrictToShard(s, 3);
        shardDocs.push_back(verify::toJson(c.run()));
    }
    EXPECT_EQ(driver::mergeReports(shardDocs), reference);
}

// Sharding by (mix, seed) group keeps every config of one fuzzed
// program in the same shard — the contract applyTimingInvariant needs.
TEST(DiffCampaign, ShardingKeepsProgramGroupsIntact)
{
    for (unsigned s = 0; s < 3; ++s) {
        DiffCampaign c = smallSweep(1);
        c.restrictToShard(s, 3);
        EXPECT_EQ(c.size() % 2, 0u);   // both configs or neither
        const auto &jobs = c.pending();
        for (std::size_t i = 0; i + 1 < jobs.size(); i += 2)
            EXPECT_EQ(jobs[i].seed, jobs[i + 1].seed);
    }
}

} // anonymous namespace
} // namespace msp
