/**
 * @file
 * MSP core tests: the paper's Fig. 1 / Fig. 2 worked example executed
 * on the real core, precise recovery, LCS behaviour, StateId overflow
 * (Sec. 3.6), and the LcsUnit delay line.
 */

#include <gtest/gtest.h>

#include "core/lcs_unit.hh"
#include "core/msp_core.hh"
#include "isa/builder.hh"
#include "sim/machine.hh"
#include "sim/presets.hh"
#include "workload/micro.hh"

namespace msp {
namespace {

/** Collect the StateIds of a bank's live entries, oldest first. */
std::vector<std::uint32_t>
bankStates(const MspCore &core, int bank)
{
    std::vector<std::uint32_t> v;
    for (int slot : core.bank(bank).liveOrder())
        v.push_back(core.bank(bank).entry(slot).stateId);
    return v;
}

/**
 * The paper's Fig. 1 dynamic sequence (dest-last Alpha syntax mapped to
 * our ISA), preceded by one long-latency load so nothing commits while
 * we inspect the State Control Tables:
 *
 *   ld   r9, [cold]          StateId 1   (holds LCS at 1)
 *   st   r2, @data           StateId 1
 *   add  r2 <- r1, r2        StateId 2   (R2.1)
 *   bne  (not taken)         StateId 2
 *   sub  r2 <- r2, 1         StateId 3   (R2.2)
 *   mov  r1 <- r2            StateId 4   (R1.1)
 *   add  r2 <- r1, r2        StateId 5   (R2.3)
 *   bge  (taken, mispredicted) StateId 5
 *   add  r1 <- r1, r2        StateId 6   (R1.2  <- squashed)
 *
 * Fig. 2's StateId ranges map to live bank entries: before recovery
 * bank r2 holds states {0,2,3,5} and bank r1 {0,4,6}. The paper's
 * recovery example then squashes only R1.2 (the state-6 entry).
 */
TEST(MspCore, PaperFig1Fig2Example)
{
    ProgramBuilder b("fig1");
    Label notTaken = b.newLabel();
    Label target = b.newLabel();
    b.memSize(1 << 15);

    b.ld(9, 0, 8 * 1024);        // cold: ~400 cycles, pins the LCS
    b.st(2, 0, 64);              // instruction 1 of Fig. 1
    b.add(2, 1, 2);              // 2: renames r2 (R2.1)
    b.bne(0, 0, notTaken);       // 3: never taken, predicted not-taken
    b.bind(notTaken);
    b.addi(2, 2, -1);            // 4: renames r2 (R2.2)
    b.mov(1, 2);                 // 5: renames r1 (R1.1)
    b.add(2, 1, 2);              // 6: renames r2 (R2.3)
    b.bge(0, 0, target);         // 7: always taken -> mispredicts once
    b.add(1, 1, 2);              // 8: renames r1 (R1.2) - wrong path
    b.bind(target);
    b.st(2, 0, 0);
    b.halt();
    Program prog = b.finish();

    MachineConfig cfg = nspConfig(16, PredictorKind::Gshare);
    Machine m(cfg, prog);
    auto &core = static_cast<MspCore &>(m.core());

    // Run long enough to rename everything and resolve the bge, but
    // less than the cold data load needs (so nothing commits). The
    // first instruction fetch itself cold-misses to memory (~400
    // cycles); the data load issues after that and pins the LCS for
    // another ~400.
    m.run(1000000, 450);

    // Fig. 2, after recovery at the state-5 branch:
    //   bank r2: R2.0..R2.3 -> states {0, 2, 3, 5}
    //   bank r1: R1.0, R1.1 -> states {0, 4}; R1.2 (state 6) released.
    EXPECT_EQ(bankStates(core, 2),
              (std::vector<std::uint32_t>{0, 2, 3, 5}));
    EXPECT_EQ(bankStates(core, 1), (std::vector<std::uint32_t>{0, 4}));

    // The SC was reset to the Recovery StateId (Sec. 3.5).
    EXPECT_EQ(core.stateCounter(), 5u);

    // Nothing committed while the cold load is outstanding: the LCS
    // never passed state 1.
    EXPECT_LE(core.effectiveLcs(), 1u);
    EXPECT_EQ(core.committed(), 0u);

    // Let the program finish and verify full architectural agreement.
    RunResult r = m.run(1000000);
    EXPECT_GT(r.committed, 0u);
    EXPECT_EQ(r.recoveries, 1u);
    FunctionalExecutor ref(prog);
    ref.run(1000);
    EXPECT_TRUE(m.core().oracleRef().state() == ref.state());
}

TEST(MspCore, StateIdOverflowFlashClears)
{
    // Tiny banks -> small M -> frequent Sb flash-clears. M = 64 * 4 =
    // 256, so a few thousand renames guarantee several wraps.
    Program prog = micro::tightRename(3000);
    MachineConfig cfg = nspConfig(4, PredictorKind::Gshare);
    Machine m(cfg, prog);
    auto &core = static_cast<MspCore &>(m.core());
    RunResult r = m.run(10000000);

    EXPECT_GE(core.flashClears(), 3u);
    // Oracle agreement across wraps.
    FunctionalExecutor ref(prog);
    ref.run(10000000);
    EXPECT_EQ(r.committed, ref.instCount());
    EXPECT_TRUE(core.oracleRef().state() == ref.state());
}

TEST(MspCore, BankStallsAreAttributedToTheTightRegister)
{
    // tightRename hammers r2: with 4-entry banks, rename must stall on
    // bank 2 specifically.
    Program prog = micro::tightRename(2000);
    MachineConfig cfg = nspConfig(4, PredictorKind::Gshare);
    Machine m(cfg, prog);
    RunResult r = m.run(10000000);
    std::uint64_t maxStall = 0;
    int maxBank = -1;
    for (int i = 0; i < numLogRegs; ++i) {
        if (r.bankStallCycles[i] > maxStall) {
            maxStall = r.bankStallCycles[i];
            maxBank = i;
        }
    }
    EXPECT_EQ(maxBank, 2);
    EXPECT_GT(maxStall, 0u);
}

// MspCore.MoreRegistersPerBankHelpStarvedLoops moved to
// tests/test_slow_sweeps.cc (CTest label "slow").

TEST(MspCore, PreciseRecoveryNeverReExecutes)
{
    Program prog = micro::branchy(5000, 21);
    Machine m(nspConfig(16, PredictorKind::Gshare), prog);
    RunResult r = m.run(10000000);
    EXPECT_GT(r.recoveries, 10u);
    EXPECT_EQ(r.reExecuted, 0u)
        << "MSP recovery must squash only younger instructions";
}

TEST(MspCore, ExceptionsArePrecise)
{
    Program prog = micro::trapLoop(500, 23);
    Machine m(nspConfig(8, PredictorKind::Tage), prog);
    RunResult r = m.run(10000000);
    EXPECT_GT(r.exceptions, 15u);
    FunctionalExecutor ref(prog);
    ref.run(10000000);
    EXPECT_EQ(r.committed, ref.instCount());
    EXPECT_TRUE(m.core().oracleRef().state() == ref.state());
}

TEST(LcsUnit, DelayLineLagsByLatency)
{
    LcsUnit u(2);
    EXPECT_EQ(u.advance(5), 0u);    // nothing emerged yet
    EXPECT_EQ(u.advance(6), 0u);
    EXPECT_EQ(u.advance(7), 5u);    // value from two cycles ago
    EXPECT_EQ(u.advance(8), 6u);
}

TEST(LcsUnit, ZeroLatencyIsCombinational)
{
    LcsUnit u(0);
    EXPECT_EQ(u.advance(9), 9u);
    EXPECT_EQ(u.advance(3), 3u);
}

TEST(LcsUnit, FlushDropsInFlightMinima)
{
    LcsUnit u(2);
    u.advance(5);
    u.advance(6);
    EXPECT_EQ(u.advance(7), 5u);
    u.flush();                       // 6 and 7 die in the pipe
    EXPECT_EQ(u.advance(8), 5u);     // effective value survives a flush
    EXPECT_EQ(u.advance(9), 5u);     // pipe refills before advancing
    EXPECT_EQ(u.advance(10), 8u);
}

TEST(LcsUnit, ClampLowersEffective)
{
    LcsUnit u(1);
    u.advance(10);
    u.advance(11);
    EXPECT_EQ(u.effective(), 10u);
    u.clamp(4);
    EXPECT_EQ(u.effective(), 4u);
    u.clamp(9);                     // clamp never raises
    EXPECT_EQ(u.effective(), 4u);
}

TEST(LcsUnit, FlashClearShiftsLatchedValues)
{
    LcsUnit u(2);
    u.advance(600);
    u.advance(700);
    u.flashClear(512);
    EXPECT_EQ(u.advance(300), 88u);   // 600 - 512
}

} // namespace
} // namespace msp
