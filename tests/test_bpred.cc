/**
 * @file
 * Unit tests for the branch-prediction structures: global history
 * folding, gshare, TAGE (including the long-history advantage over
 * gshare the evaluation relies on), the JRS confidence estimator and
 * the return-address stack.
 */

#include <gtest/gtest.h>

#include "bpred/confidence.hh"
#include "bpred/gshare.hh"
#include "bpred/history.hh"
#include "bpred/ras.hh"
#include "bpred/tage.hh"
#include "common/random.hh"

namespace msp {
namespace {

TEST(GlobalHistory, PushShiftsAcrossWords)
{
    GlobalHistory h;
    h.push(true, 0);
    EXPECT_EQ(h.h0 & 1, 1u);
    for (int i = 0; i < 63; ++i)
        h.push(false, 0);
    // The original taken bit migrated to bit 63.
    EXPECT_EQ(h.h0 >> 63, 1u);
    h.push(false, 0);
    EXPECT_EQ(h.h1 & 1, 1u);   // ...and into the high word
}

TEST(GlobalHistory, FoldIsDeterministicAndBounded)
{
    GlobalHistory h;
    Rng rng(3);
    for (int i = 0; i < 200; ++i)
        h.push(rng.chance(0.5), i);
    for (unsigned len : {4u, 16u, 64u, 100u, 128u}) {
        const std::uint32_t f = h.fold(len, 10);
        EXPECT_LT(f, 1u << 10);
        EXPECT_EQ(f, h.fold(len, 10));
    }
}

TEST(GlobalHistory, FoldUsesOnlyRequestedLength)
{
    GlobalHistory a, b;
    for (int i = 0; i < 8; ++i) {
        a.push(true, 0);
        b.push(true, 0);
    }
    // Diverge beyond the first 8 outcomes only.
    GlobalHistory a2 = a, b2 = b;
    for (int i = 0; i < 60; ++i) {
        a2.push(true, 0);
        b2.push(false, 0);
    }
    // fold over the most recent 8 must differ (histories differ there)...
    EXPECT_NE(a2.fold(60, 8), b2.fold(60, 8));
}

TEST(Gshare, LearnsBiasedBranch)
{
    Gshare g;
    GlobalHistory h;
    // Train always-taken at one pc.
    for (int i = 0; i < 8; ++i)
        g.update(0x40, h, true);
    EXPECT_TRUE(g.predict(0x40, h));
}

TEST(Gshare, LearnsAlternatingPatternThroughHistory)
{
    Gshare g;
    GlobalHistory h;
    int correct = 0;
    for (int i = 0; i < 2000; ++i) {
        const bool outcome = (i & 1) != 0;
        if (i > 1000)
            correct += g.predict(0x80, h) == outcome;
        g.update(0x80, h, outcome);
        h.push(outcome, 0x80);
    }
    EXPECT_GT(correct, 950);   // near-perfect after warmup
}

/**
 * The mechanism the paper's gshare/TAGE split rests on: a periodic
 * pattern much longer than gshare's folded history is still learnable
 * by TAGE's geometric (up to 128-bit) histories.
 */
TEST(Tage, LearnsLongPeriodPatternBetterThanGshare)
{
    const int period = 48;
    auto run = [&](auto &pred) {
        GlobalHistory h;
        int correct = 0, total = 0;
        for (int i = 0; i < 30000; ++i) {
            const bool outcome = (i % period) < period / 2;
            if (i > 15000) {
                correct += pred.predict(0x33, h) == outcome;
                ++total;
            }
            pred.update(0x33, h, outcome);
            h.push(outcome, 0x33);
        }
        return correct / double(total);
    };
    Tage tage;
    Gshare gshare;
    const double tageAcc = run(tage);
    const double gshareAcc = run(gshare);
    EXPECT_GT(tageAcc, 0.97);
    EXPECT_GT(tageAcc, gshareAcc + 0.02);
}

TEST(Tage, RandomBranchesStayHard)
{
    Tage t;
    GlobalHistory h;
    Rng rng(123);
    int correct = 0, total = 0;
    for (int i = 0; i < 20000; ++i) {
        const bool outcome = rng.chance(0.5);
        if (i > 5000) {
            correct += t.predict(0x99, h) == outcome;
            ++total;
        }
        t.update(0x99, h, outcome);
        h.push(outcome, 0x99);
    }
    const double acc = correct / double(total);
    EXPECT_LT(acc, 0.60);   // nothing can learn a fair coin
    EXPECT_GT(acc, 0.40);
}

TEST(Confidence, SaturatesHighThenResetsOnMiss)
{
    JrsConfidence c(10, 4, 15);
    GlobalHistory h;
    EXPECT_FALSE(c.highConfidence(0x10, h));
    for (int i = 0; i < 15; ++i)
        c.update(0x10, h, true);
    EXPECT_TRUE(c.highConfidence(0x10, h));
    c.update(0x10, h, false);
    EXPECT_FALSE(c.highConfidence(0x10, h));
}

TEST(Ras, PushPopLifo)
{
    Ras r(8);
    r.push(100);
    r.push(200);
    EXPECT_EQ(r.pop(), 200u);
    EXPECT_EQ(r.pop(), 100u);
}

TEST(Ras, SnapshotRestoresTop)
{
    Ras r(8);
    r.push(1);
    r.push(2);
    Ras::Snapshot s = r.snapshot();
    r.pop();
    r.push(99);
    r.restore(s);
    EXPECT_EQ(r.pop(), 2u);
    EXPECT_EQ(r.pop(), 1u);
}

TEST(Ras, FullCopyPreservesDeepEntries)
{
    Ras r(4);
    r.push(1);
    r.push(2);
    r.push(3);
    Ras copy = r;
    r.pop();
    r.pop();
    r.push(77);
    r.push(88);
    r = copy;
    EXPECT_EQ(r.pop(), 3u);
    EXPECT_EQ(r.pop(), 2u);
    EXPECT_EQ(r.pop(), 1u);
}

TEST(Ras, WrapsCircularly)
{
    Ras r(2);
    r.push(1);
    r.push(2);
    r.push(3);   // overwrites the oldest
    EXPECT_EQ(r.pop(), 3u);
    EXPECT_EQ(r.pop(), 2u);
    EXPECT_EQ(r.pop(), 3u);   // wrapped
}

} // namespace
} // namespace msp
