/**
 * @file
 * Grid-spec tests (sim/grid.{hh,cc}): expansion order and label
 * precedence, workload binding (name / trace / seed axes), the
 * validation error paths (each naming axis, key and element), the
 * shipped examples/grids/ documents staying byte-identical to the
 * embedded scenario documents, and the golden-equivalence contract —
 * every scenario's grid expansion builds the exact job list the
 * legacy hand-coded builders produced, and runs to byte-identical
 * reports at any thread count.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "driver/campaign.hh"
#include "driver/report.hh"
#include "driver/scenario.hh"
#include "sim/grid.hh"
#include "sim/presets.hh"
#include "sim/spec.hh"
#include "workload/spec.hh"

namespace msp {
namespace {

using driver::CampaignJob;
using driver::SimCampaign;

/** expand() must throw a SpecError whose message contains @p want. */
void
expectGridError(const std::string &doc, const std::string &want)
{
    try {
        grid::expand(doc);
        FAIL() << "expected SpecError containing '" << want << "'";
    } catch (const SpecError &e) {
        EXPECT_NE(std::string(e.what()).find(want), std::string::npos)
            << "message was: " << e.what();
    }
}

// ---- expansion -------------------------------------------------------------

TEST(GridExpand, ProductOrderFirstAxisSlowest)
{
    const grid::Grid g = grid::expand(
        R"({"axes": [
             {"keys": {"workload.name": ["gzip", "gcc"]}},
             {"keys": {"base": ["baseline", "cpr"]}}
           ]})");
    ASSERT_EQ(g.points.size(), 4u);
    EXPECT_EQ(g.points[0].workload, "gzip");
    EXPECT_EQ(g.points[0].label, "Baseline");
    EXPECT_EQ(g.points[1].workload, "gzip");
    EXPECT_EQ(g.points[1].label, "CPR");
    EXPECT_EQ(g.points[2].workload, "gcc");
    EXPECT_EQ(g.points[2].label, "Baseline");
    EXPECT_EQ(g.points[3].workload, "gcc");
    EXPECT_EQ(g.points[3].label, "CPR");
    // The label is also the machine's report name.
    EXPECT_EQ(g.points[1].machine.name, "CPR");
}

TEST(GridExpand, MultiKeyAxisFirstKeySlowest)
{
    const grid::Grid g = grid::expand(
        R"({"base": "cpr",
            "label_format": "{cpr.checkpoints}/{lcs.latency}",
            "axes": [
             {"keys": {"cpr.checkpoints": [2, 4], "lcs.latency": [0, 1]}}
           ]})");
    ASSERT_EQ(g.points.size(), 4u);
    EXPECT_EQ(g.points[0].label, "2/0");
    EXPECT_EQ(g.points[1].label, "2/1");
    EXPECT_EQ(g.points[2].label, "4/0");
    EXPECT_EQ(g.points[3].label, "4/1");
}

TEST(GridExpand, ZipWalksKeysInLockstep)
{
    const grid::Grid g = grid::expand(
        R"({"axes": [
             {"mode": "zip",
              "keys": {"base": ["cpr", "16sp"],
                       "predictor": ["gshare", "tage"],
                       "label": ["CPR gshare", "16-SP TAGE"]}}
           ]})");
    ASSERT_EQ(g.points.size(), 2u);
    EXPECT_EQ(g.points[0].label, "CPR gshare");
    EXPECT_EQ(g.points[0].machine.predictor, PredictorKind::Gshare);
    EXPECT_EQ(g.points[1].label, "16-SP TAGE");
    EXPECT_EQ(g.points[1].machine.predictor, PredictorKind::Tage);
    EXPECT_EQ(g.points[1].machine.core.lcsLatency,
              presetByName("16sp", PredictorKind::Tage).core.lcsLatency);
}

TEST(GridExpand, LabelPrecedence)
{
    // label_format wins over joined label parts and preset names.
    const grid::Grid fmt = grid::expand(
        R"({"base": "cpr", "label_format": "ckpt={cpr.checkpoints}",
            "axes": [{"keys": {"cpr.checkpoints": [8]}}]})");
    EXPECT_EQ(fmt.points[0].label, "ckpt=8");

    // An unmodified preset point keeps the preset's display name...
    const grid::Grid preset = grid::expand(
        R"({"axes": [{"keys": {"base": ["16sp"]}}]})");
    EXPECT_EQ(preset.points[0].label, "16-SP+Arb");

    // ...while a modified one falls back to its describeSpec identity.
    const grid::Grid touched = grid::expand(
        R"({"base": "baseline",
            "axes": [{"keys": {"iq.size": [17]}}]})");
    MachineConfig expect = presetByName("baseline", PredictorKind::Gshare);
    setParamFromString(expect, "iq.size", "17");
    EXPECT_EQ(touched.points[0].label, describeSpec(expect));
}

TEST(GridExpand, WorkloadTraceAndSeedAxes)
{
    const grid::Grid g = grid::expand(
        R"({"axes": [
             {"keys": {"workload.trace": ["/tmp/a.jsonl"]}},
             {"keys": {"workload.seed": [7, 9]}},
             {"keys": {"base": ["baseline"]}}
           ]})");
    ASSERT_EQ(g.points.size(), 2u);
    EXPECT_EQ(g.points[0].workload, "trace:/tmp/a.jsonl");
    EXPECT_TRUE(g.points[0].hasSeed);
    EXPECT_EQ(g.points[0].seed, 7u);
    EXPECT_EQ(g.points[1].seed, 9u);
}

TEST(GridExpand, InlineBaseObjectAndDefaultPredictor)
{
    // "base" may be an inline flat spec object (the --machine grammar);
    // the expand() default predictor seeds documents that set none.
    const grid::Grid g = grid::expand(
        R"({"base": {"base": "cpr", "iq.size": 24},
            "axes": [{"keys": {"rob.size": [96]}}]})",
        PredictorKind::Tage);
    ASSERT_EQ(g.points.size(), 1u);
    EXPECT_EQ(g.points[0].machine.predictor, PredictorKind::Tage);
    EXPECT_EQ(getParam(g.points[0].machine, "iq.size").u, 24u);
    EXPECT_EQ(getParam(g.points[0].machine, "rob.size").u, 96u);
}

// ---- validation errors -----------------------------------------------------

TEST(GridValidate, UnknownMachineParameter)
{
    expectGridError(
        R"({"axes": [{"keys": {"bogus.key": [1]}}]})",
        "grid axis 1, key 'bogus.key': unknown machine parameter");
}

TEST(GridValidate, OutOfRangeElementNamesItsPosition)
{
    expectGridError(
        R"({"axes": [{"keys": {"width.fetch": [4, 99999]}}]})",
        "grid axis 1, key 'width.fetch', element 1");
}

TEST(GridValidate, UnequalZipLengths)
{
    expectGridError(
        R"({"axes": [{"mode": "zip",
                      "keys": {"iq.size": [8, 16],
                               "rob.size": [64]}}]})",
        "zip keys have unequal lengths");
}

TEST(GridValidate, EmptyAxis)
{
    expectGridError(R"({"axes": [{}]})", "empty axis");
    expectGridError(R"({"axes": [{"mode": "product"}]})", "empty axis");
    expectGridError(R"({"axes": [{"keys": {}}]})", "empty axis");
}

TEST(GridValidate, DuplicateKeyAcrossAxes)
{
    expectGridError(
        R"({"axes": [{"keys": {"iq.size": [8]}},
                     {"keys": {"iq.size": [16]}}]})",
        "key 'iq.size' appears in more than one axis");
    // "label" fragments are the one key allowed from several axes.
    const grid::Grid g = grid::expand(
        R"({"axes": [{"mode": "zip",
                      "keys": {"iq.size": [8], "label": ["a"]}},
                     {"mode": "zip",
                      "keys": {"rob.size": [64], "label": ["b"]}}]})");
    EXPECT_EQ(g.points[0].label, "a b");
}

TEST(GridValidate, EmptyValueList)
{
    expectGridError(R"({"axes": [{"keys": {"iq.size": []}}]})",
                    "empty value list");
}

TEST(GridValidate, BothWorkloadNameAndTrace)
{
    expectGridError(
        R"({"axes": [{"keys": {"workload.name": ["gzip"],
                               "workload.trace": ["t.jsonl"]}}]})",
        "both workload.name and workload.trace");
}

TEST(GridValidate, TypeMismatches)
{
    expectGridError(
        R"({"axes": [{"keys": {"iq.size": ["8"]}}]})",
        "expected a number or boolean, got a string");
    expectGridError(
        R"({"axes": [{"keys": {"predictor": [1]}}]})",
        "expected a string");
    expectGridError(
        R"({"axes": [{"keys": {"workload.seed": ["7"]}}]})",
        "expected an unsigned integer, got a string");
    expectGridError(
        R"({"axes": [{"keys": {"iq.size": [{"x": 1}]}}]})",
        "elements must be scalars");
}

TEST(GridValidate, DocumentGrammar)
{
    expectGridError(R"({"nope": 1})", "unknown top-level key 'nope'");
    expectGridError(R"({"name": "a", "name": "b"})",
                    "duplicate top-level key 'name'");
    expectGridError(R"({"predictor": "magic"})", "unknown predictor");
    expectGridError(R"({"axes": []} trailing)", "trailing content");
    expectGridError(R"({"base": ""})", "empty base preset name");
    expectGridError(
        R"({"axes": [{"keys": {"base": ["no-such-preset"]}}]})",
        "grid axis 1, key 'base', element 0");
    expectGridError(
        R"({"label_format": "{oops",
            "axes": [{"keys": {"base": ["cpr"]}}]})",
        "unterminated '{'");
    expectGridError(
        R"({"axes": [{"mode": "diag", "keys": {"iq.size": [8]}}]})",
        "unknown mode 'diag'");
}

// ---- gridJobs --------------------------------------------------------------

TEST(GridJobs, WorkloadMajorContractAndSeeds)
{
    const grid::Grid g = grid::expand(
        R"({"axes": [
             {"keys": {"workload.name": ["gzip", "gcc"]}},
             {"keys": {"base": ["baseline", "cpr"]}}
           ]})");
    const std::vector<CampaignJob> jobs =
        driver::gridJobs("t", g, 5000, 3);
    ASSERT_EQ(jobs.size(), 4u);
    // Same (workload-major) order as matrixJobs: the reporting
    // contract scenario reports rebuild their grids from.
    EXPECT_EQ(jobs[0].workload, "gzip");
    EXPECT_EQ(jobs[1].workload, "gzip");
    EXPECT_EQ(jobs[1].config.name, "CPR");
    EXPECT_EQ(jobs[2].workload, "gcc");
    EXPECT_EQ(jobs[0].maxInsts, 5000u);
    EXPECT_EQ(jobs[0].seed, 3u);        // campaign seed: no axis bound
    EXPECT_EQ(jobs[0].scenario, "t");

    const grid::Grid seeded = grid::expand(
        R"({"axes": [{"keys": {"workload.name": ["gzip"]}},
                     {"keys": {"workload.seed": [11]}},
                     {"keys": {"base": ["cpr"]}}]})");
    EXPECT_EQ(driver::gridJobs("t", seeded, 0, 3)[0].seed, 11u);
}

TEST(GridJobs, UnboundGridRefusesJobConstruction)
{
    const grid::Grid g = grid::expand(
        R"({"axes": [{"keys": {"base": ["cpr"]}}]})");
    EXPECT_THROW(driver::gridJobs("t", g), SpecError);
}

// ---- shipped documents -----------------------------------------------------

TEST(GridDocs, ShippedFilesMatchEmbeddedScenarios)
{
    // examples/grids/<name>.json is the same document the scenario
    // embeds — byte for byte, so the files users edit and the sweeps
    // the binaries run can never drift apart.
    for (const auto &s : driver::scenarios()) {
        ASSERT_FALSE(s.gridJson.empty()) << s.name;
        const std::string path = std::string(MSP_SOURCE_DIR) +
                                 "/examples/grids/" + s.name + ".json";
        std::ifstream f(path, std::ios::binary);
        ASSERT_TRUE(f.good()) << "missing " << path;
        std::ostringstream body;
        body << f.rdbuf();
        EXPECT_EQ(body.str(), s.gridJson) << path;
    }
}

// ---- golden equivalence ----------------------------------------------------

TEST(GridGolden, Fig6ExpansionMatchesLegacyBuilder)
{
    // The legacy hand-coded fig6 builder: SPECint x the Table I
    // ladder, workload-major. Its grid document must reproduce that
    // job list exactly — same specs, names, workloads and order.
    const std::vector<CampaignJob> legacy = driver::matrixJobs(
        "fig6", spec::intBenchmarks(),
        driver::figureLadder(PredictorKind::Gshare), 4000);
    const driver::Scenario *s = driver::findScenario("fig6");
    ASSERT_NE(s, nullptr);
    const std::vector<CampaignJob> fromGrid = s->build(4000);
    ASSERT_EQ(fromGrid.size(), legacy.size());
    for (std::size_t i = 0; i < legacy.size(); ++i) {
        EXPECT_EQ(fromGrid[i].workload, legacy[i].workload) << i;
        EXPECT_EQ(fromGrid[i].config.name, legacy[i].config.name) << i;
        EXPECT_TRUE(sameSpec(fromGrid[i].config, legacy[i].config)) << i;
        EXPECT_EQ(fromGrid[i].seed, legacy[i].seed) << i;
        EXPECT_EQ(fromGrid[i].maxInsts, legacy[i].maxInsts) << i;
    }
}

TEST(GridGolden, ScenarioReportsByteIdenticalAcrossThreads)
{
    // End to end: the grid-built ablation-lcs campaign renders the
    // same JSON report single-threaded and multi-threaded.
    const driver::Scenario *s = driver::findScenario("ablation-lcs");
    ASSERT_NE(s, nullptr);
    std::string docs[2];
    const unsigned threads[2] = {1, 2};
    for (int t = 0; t < 2; ++t) {
        SimCampaign campaign(threads[t]);
        for (CampaignJob &j : s->build(400))
            campaign.add(std::move(j));
        docs[t] = driver::toJson(campaign.run());
    }
    EXPECT_FALSE(docs[0].empty());
    EXPECT_EQ(docs[0], docs[1]);
}

} // anonymous namespace
} // namespace msp
