/**
 * @file
 * End-to-end integration tests: every core must execute every program
 * with the commit-time oracle enabled (any rename/forwarding/recovery
 * bug trips an assertion), commit the same instruction stream as the
 * functional simulator, and produce its exact final architectural
 * state.
 */

#include <gtest/gtest.h>

#include "functional/executor.hh"
#include "sim/machine.hh"
#include "sim/presets.hh"
#include "workload/micro.hh"

namespace msp {
namespace {

struct CaseDef
{
    const char *name;
    Program (*make)();
};

Program makeSum() { return micro::sumLoop(300); }
Program makeFib() { return micro::fibonacci(60); }
Program makeCopy() { return micro::memCopy(256); }
Program makeChase() { return micro::pointerChase(512, 2000, 7); }
Program makeBranchy() { return micro::branchy(2000, 42); }
Program makeTight() { return micro::tightRename(400); }
Program makeDot() { return micro::dotProduct(300); }
Program makeCall() { return micro::callReturn(200); }
Program makeTrap() { return micro::trapLoop(200, 37); }
Program makeFwd() { return micro::storeForward(300); }

const CaseDef programCases[] = {
    {"sumLoop", makeSum},       {"fibonacci", makeFib},
    {"memCopy", makeCopy},      {"pointerChase", makeChase},
    {"branchy", makeBranchy},   {"tightRename", makeTight},
    {"dotProduct", makeDot},    {"callReturn", makeCall},
    {"trapLoop", makeTrap},     {"storeForward", makeFwd},
};

struct ConfigDef
{
    const char *name;
    MachineConfig (*make)();
};

MachineConfig mkBaseline() { return baselineConfig(PredictorKind::Gshare); }
MachineConfig mkCpr() { return cprConfig(PredictorKind::Gshare); }
MachineConfig mkCprTage() { return cprConfig(PredictorKind::Tage); }
MachineConfig mk8sp() { return nspConfig(8, PredictorKind::Gshare); }
MachineConfig mk16sp() { return nspConfig(16, PredictorKind::Tage); }
MachineConfig mk32sp() { return nspConfig(32, PredictorKind::Gshare); }
MachineConfig mkIdeal() { return idealMspConfig(PredictorKind::Tage); }

const ConfigDef configCases[] = {
    {"Baseline", mkBaseline}, {"CPR", mkCpr},     {"CPR-TAGE", mkCprTage},
    {"8-SP", mk8sp},          {"16-SP", mk16sp},  {"32-SP", mk32sp},
    {"idealMSP", mkIdeal},
};

class CoreProgram
    : public ::testing::TestWithParam<std::tuple<int, int>>
{};

TEST_P(CoreProgram, MatchesFunctionalSimulator)
{
    const auto [ci, pi] = GetParam();
    const ConfigDef &cd = configCases[ci];
    const CaseDef &pd = programCases[pi];

    Program prog = pd.make();

    // Reference run.
    FunctionalExecutor ref(prog);
    ref.run(50'000'000);
    ASSERT_TRUE(ref.halted()) << "functional run did not halt";

    // Timed run with the oracle enabled (asserts on any divergence).
    MachineConfig cfg = cd.make();
    Machine m(cfg, prog);
    RunResult r = m.run(60'000'000, 200'000'000);

    EXPECT_EQ(r.committed, ref.instCount())
        << cd.name << " committed a different instruction count on "
        << pd.name;
    EXPECT_TRUE(m.core().oracleRef().state() == ref.state())
        << cd.name << " final architectural state differs on " << pd.name;
    EXPECT_GT(r.cycles, 0u);
    EXPECT_GT(r.ipc(), 0.0);
}

std::string
caseName(const ::testing::TestParamInfo<std::tuple<int, int>> &info)
{
    const auto [ci, pi] = info.param;
    std::string n = std::string(configCases[ci].name) + "_" +
                    programCases[pi].name;
    for (char &c : n)
        if (c == '-')
            c = '_';
    return n;
}

INSTANTIATE_TEST_SUITE_P(
    AllCoresAllPrograms, CoreProgram,
    ::testing::Combine(
        ::testing::Range(0, static_cast<int>(std::size(configCases))),
        ::testing::Range(0, static_cast<int>(std::size(programCases)))),
    caseName);

// Determinism: identical runs produce identical cycle counts.
TEST(Determinism, SameSeedSameCycles)
{
    Program prog = micro::branchy(3000, 99);
    MachineConfig cfg = nspConfig(16, PredictorKind::Tage);

    Machine m1(cfg, prog);
    RunResult r1 = m1.run(10'000'000);
    Machine m2(cfg, prog);
    RunResult r2 = m2.run(10'000'000);

    EXPECT_EQ(r1.cycles, r2.cycles);
    EXPECT_EQ(r1.committed, r2.committed);
    EXPECT_EQ(r1.mispredicts, r2.mispredicts);
}

} // namespace
} // namespace msp
