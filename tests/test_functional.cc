/**
 * @file
 * Unit tests for instruction semantics and the functional executor.
 */

#include <gtest/gtest.h>

#include "functional/executor.hh"
#include "functional/semantics.hh"
#include "isa/builder.hh"

namespace msp {
namespace {

Instruction
mk(Opcode op, int rd, int rs1, int rs2, std::int64_t imm = 0)
{
    Instruction in;
    in.op = op;
    in.rd = rd;
    in.rs1 = rs1;
    in.rs2 = rs2;
    in.imm = imm;
    return in;
}

TEST(Semantics, IntegerAlu)
{
    using namespace semantics;
    EXPECT_EQ(aluResult(mk(Opcode::ADD, 1, 2, 3), 7, 5, 0), 12u);
    EXPECT_EQ(aluResult(mk(Opcode::SUB, 1, 2, 3), 7, 5, 0), 2u);
    EXPECT_EQ(aluResult(mk(Opcode::MUL, 1, 2, 3), 7, 5, 0), 35u);
    EXPECT_EQ(aluResult(mk(Opcode::DIV, 1, 2, 3), 35, 5, 0), 7u);
    EXPECT_EQ(aluResult(mk(Opcode::DIV, 1, 2, 3), 35, 0, 0), ~0ull);
    EXPECT_EQ(aluResult(mk(Opcode::AND, 1, 2, 3), 0b1100, 0b1010, 0),
              0b1000u);
    EXPECT_EQ(aluResult(mk(Opcode::SLT, 1, 2, 3),
                        static_cast<std::uint64_t>(-3), 2, 0), 1u);
    EXPECT_EQ(aluResult(mk(Opcode::SLLI, 1, 2, -1, 4), 3, 0, 0), 48u);
    EXPECT_EQ(aluResult(mk(Opcode::LI, 1, -1, -1, -9), 0, 0, 0),
              static_cast<std::uint64_t>(-9));
    EXPECT_EQ(aluResult(mk(Opcode::JAL, 1, -1, -1, 7), 0, 0, 100), 101u);
}

TEST(Semantics, FloatingPoint)
{
    using namespace semantics;
    const auto bits = [](double d) { return asBits(d); };
    EXPECT_EQ(aluResult(mk(Opcode::FADD, 1, 2, 3), bits(1.5), bits(2.25),
                        0), bits(3.75));
    EXPECT_EQ(aluResult(mk(Opcode::FMUL, 1, 2, 3), bits(3.0), bits(0.5),
                        0), bits(1.5));
    EXPECT_EQ(aluResult(mk(Opcode::FDIV, 1, 2, 3), bits(1.0), bits(0.0),
                        0), bits(0.0));   // defined: no fp faults
    EXPECT_EQ(aluResult(mk(Opcode::FITOF, 1, 2, -1),
                        static_cast<std::uint64_t>(-4), 0, 0),
              bits(-4.0));
    EXPECT_EQ(aluResult(mk(Opcode::FFTOI, 1, 2, -1), bits(-7.9), 0, 0),
              static_cast<std::uint64_t>(-7));
    EXPECT_EQ(aluResult(mk(Opcode::FCMPLT, 1, 2, 3), bits(1.0),
                        bits(2.0), 0), 1u);
}

TEST(Semantics, BranchDirections)
{
    using namespace semantics;
    EXPECT_TRUE(branchTaken(mk(Opcode::BEQ, -1, 1, 2), 5, 5));
    EXPECT_FALSE(branchTaken(mk(Opcode::BEQ, -1, 1, 2), 5, 6));
    EXPECT_TRUE(branchTaken(mk(Opcode::BLT, -1, 1, 2),
                            static_cast<std::uint64_t>(-1), 0));
    EXPECT_TRUE(branchTaken(mk(Opcode::BGE, -1, 1, 2), 3, 3));
}

TEST(Semantics, EffectiveAddressMasksAndAligns)
{
    using namespace semantics;
    const Addr mask = (1 << 13) - 1;   // 1K words
    EXPECT_EQ(effectiveAddr(mk(Opcode::LD, 1, 2, -1, 16), 100, mask),
              112u);
    // Unaligned base: rounded down to the word.
    EXPECT_EQ(effectiveAddr(mk(Opcode::LD, 1, 2, -1, 0), 101, mask), 96u);
    // Out of range: wrapped into the data region.
    EXPECT_EQ(effectiveAddr(mk(Opcode::LD, 1, 2, -1, 0), 1 << 20, mask),
              (1 << 20) & mask & ~7ull);
}

TEST(Executor, RunsAndHalts)
{
    ProgramBuilder b("t");
    b.li(1, 21);
    b.add(2, 1, 1);
    b.st(2, 0, 0);
    b.halt();
    Program p = b.finish();
    FunctionalExecutor fx(p);
    EXPECT_EQ(fx.run(100), 4u);
    EXPECT_TRUE(fx.halted());
    EXPECT_EQ(fx.state().load(0), 42u);
}

TEST(Executor, StepResultsDescribeEffects)
{
    ProgramBuilder b("t");
    Label l = b.newLabel();
    b.li(1, 5);
    b.st(1, 0, 8);
    b.ld(2, 0, 8);
    b.beq(1, 2, l);
    b.bind(l);
    b.halt();
    Program p = b.finish();
    FunctionalExecutor fx(p);
    StepResult li = fx.step();
    EXPECT_TRUE(li.wroteReg);
    EXPECT_EQ(li.value, 5u);
    StepResult st = fx.step();
    EXPECT_TRUE(st.isStore);
    EXPECT_EQ(st.memAddr, 8u);
    EXPECT_EQ(st.storeValue, 5u);
    StepResult ld = fx.step();
    EXPECT_TRUE(ld.isLoad);
    EXPECT_EQ(ld.value, 5u);
    StepResult br = fx.step();
    EXPECT_TRUE(br.taken);
    EXPECT_EQ(br.nextPc, 4u);
    StepResult h = fx.step();
    EXPECT_TRUE(h.halted);
}

TEST(Executor, TrapIsSkipAndContinue)
{
    ProgramBuilder b("t");
    b.li(1, 1);
    b.trap();
    b.addi(1, 1, 1);
    b.st(1, 0, 0);
    b.halt();
    Program p = b.finish();
    FunctionalExecutor fx(p);
    fx.step();
    StepResult tr = fx.step();
    EXPECT_TRUE(tr.trapped);
    EXPECT_EQ(tr.nextPc, 2u);
    fx.run(100);
    EXPECT_EQ(fx.state().load(0), 2u);
}

TEST(Executor, CallAndReturn)
{
    ProgramBuilder b("t");
    Label fn = b.newLabel();
    Label main = b.newLabel();
    b.j(main);
    b.bind(fn);
    b.addi(10, 10, 7);
    b.ret(31);
    b.bind(main);
    b.jal(31, fn);
    b.jal(31, fn);
    b.st(10, 0, 0);
    b.halt();
    Program p = b.finish();
    FunctionalExecutor fx(p);
    fx.run(100);
    EXPECT_TRUE(fx.halted());
    EXPECT_EQ(fx.state().load(0), 14u);
}

TEST(ArchState, RegisterZeroSemantics)
{
    ProgramBuilder b("t");
    b.halt();
    Program p = b.finish();
    ArchState st(p);
    st.writeInt(0, 999);
    EXPECT_EQ(st.readInt(0), 0u);
    st.writeFp(0, 999);   // f0 is a normal register
    EXPECT_EQ(st.readFp(0), 999u);
}

} // namespace
} // namespace msp
