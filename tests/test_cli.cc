/**
 * @file
 * msp_sim argument-grammar tests (src/driver/cli.cc): happy paths for
 * all three modes plus every user-error path — unknown scenario,
 * malformed matrix specs, bad preset/predictor/mix names, flag misuse
 * across modes — which previously lived untested inside the binary.
 */

#include <gtest/gtest.h>

#include "driver/cli.hh"

namespace msp {
namespace {

using driver::CliError;
using driver::CliOptions;
using driver::configByName;
using driver::parseCliArgs;
using driver::parseDoubleFlag;
using driver::parseU64Flag;
using driver::parseUnsignedFlag;
using driver::splitCommas;

TEST(SplitCommas, SplitsAndDropsEmpties)
{
    EXPECT_EQ(splitCommas("a,b,c"),
              (std::vector<std::string>{"a", "b", "c"}));
    EXPECT_EQ(splitCommas("a,,b,"), (std::vector<std::string>{"a", "b"}));
    EXPECT_TRUE(splitCommas("").empty());
    EXPECT_EQ(splitCommas("one"), (std::vector<std::string>{"one"}));
}

// Regression for the std::atoi/strtoull flag parsing: garbage parsed
// as 0, negatives wrapped to huge unsigneds, overflow saturated, and
// trailing junk was silently dropped — all without a word to the user.
TEST(CheckedParse, AcceptsExactDecimalSpellingsOnly)
{
    EXPECT_EQ(parseU64Flag("--instrs", "0"), 0u);
    EXPECT_EQ(parseU64Flag("--instrs", "123456789012345"),
              123456789012345ull);
    EXPECT_EQ(parseU64Flag("--seed", "18446744073709551615"),
              ~std::uint64_t{0});
    EXPECT_EQ(parseUnsignedFlag("--threads", "8"), 8u);
    EXPECT_EQ(parseUnsignedFlag("--seeds", "4294967295"), 4294967295u);
    EXPECT_DOUBLE_EQ(parseDoubleFlag("--budget-sec", "1.5"), 1.5);
    EXPECT_DOUBLE_EQ(parseDoubleFlag("--budget-sec", "0.25"), 0.25);
    EXPECT_DOUBLE_EQ(parseDoubleFlag("--budget-sec", ".5"), 0.5);
}

TEST(CheckedParse, RejectsGarbageNegativesAndOverflow)
{
    // Garbage and partial numbers.
    EXPECT_THROW(parseU64Flag("--seeds", ""), CliError);
    EXPECT_THROW(parseU64Flag("--seeds", "abc"), CliError);
    EXPECT_THROW(parseU64Flag("--seeds", "1o0"), CliError);
    EXPECT_THROW(parseU64Flag("--seeds", "25 "), CliError);
    EXPECT_THROW(parseU64Flag("--seeds", " 25"), CliError);
    EXPECT_THROW(parseU64Flag("--instrs", "0x10"), CliError);
    // Negatives must not wrap into huge unsigneds.
    EXPECT_THROW(parseU64Flag("--seeds", "-1"), CliError);
    EXPECT_THROW(parseUnsignedFlag("--threads", "-4"), CliError);
    // Signs in general (strtoull would happily take "+5").
    EXPECT_THROW(parseU64Flag("--seeds", "+5"), CliError);
    // Overflow: 2^64 and beyond.
    EXPECT_THROW(parseU64Flag("--seed", "18446744073709551616"),
                 CliError);
    EXPECT_THROW(parseU64Flag("--seed", "99999999999999999999999"),
                 CliError);
    // unsigned-ranged flags reject 2^32.
    EXPECT_THROW(parseUnsignedFlag("--seeds", "4294967296"), CliError);

    // Doubles: garbage, trailing junk, non-finite values.
    EXPECT_THROW(parseDoubleFlag("--budget-sec", "abc"), CliError);
    EXPECT_THROW(parseDoubleFlag("--budget-sec", "1.5x"), CliError);
    EXPECT_THROW(parseDoubleFlag("--budget-sec", "-1.5"), CliError);
    EXPECT_THROW(parseDoubleFlag("--budget-sec", "nan"), CliError);
    EXPECT_THROW(parseDoubleFlag("--budget-sec", "inf"), CliError);
    EXPECT_THROW(parseDoubleFlag("--budget-sec", "1e999"), CliError);
    // strtod would parse C99 hex floats ("0x8" == 8.0); the decimal
    // contract rejects them like the integer parsers do.
    EXPECT_THROW(parseDoubleFlag("--budget-sec", "0x8"), CliError);
    EXPECT_THROW(parseDoubleFlag("--budget-sec", "0X1p4"), CliError);

    // The error names the offending flag.
    try {
        parseU64Flag("--snapshot-every", "soon");
        FAIL() << "expected CliError";
    } catch (const CliError &e) {
        EXPECT_NE(std::string(e.what()).find("--snapshot-every"),
                  std::string::npos);
    }
}

TEST(CheckedParse, EveryNumericFlagGoesThroughTheCheckedPath)
{
    EXPECT_THROW(parseCliArgs({"verify", "--seeds", "1o0"}), CliError);
    EXPECT_THROW(parseCliArgs({"fig6", "--threads", "-4"}), CliError);
    EXPECT_THROW(parseCliArgs({"fig6", "--instrs", "5k"}), CliError);
    EXPECT_THROW(parseCliArgs({"verify", "--seed",
                               "18446744073709551616"}),
                 CliError);
    EXPECT_THROW(parseCliArgs({"verify", "--snapshot-every", "256x"}),
                 CliError);
    EXPECT_THROW(parseCliArgs({"verify", "--budget-sec", "soon"}),
                 CliError);
    EXPECT_THROW(parseCliArgs({"verify", "--budget-sec", "nan"}),
                 CliError);
    // The historical behaviour: all of these silently became 0 or
    // wrapped — and then half of them "worked".
    EXPECT_THROW(parseCliArgs({"matrix", "--workloads", "gzip",
                               "--configs", "cpr", "--seed", "-7"}),
                 CliError);
}

TEST(ConfigByName, ResolvesEveryPresetFamily)
{
    EXPECT_EQ(configByName("baseline", PredictorKind::Gshare).core.kind,
              CoreKind::Baseline);
    EXPECT_EQ(configByName("cpr", PredictorKind::Gshare).core.kind,
              CoreKind::Cpr);
    EXPECT_EQ(configByName("ideal", PredictorKind::Tage).core.kind,
              CoreKind::Msp);

    const MachineConfig sp = configByName("16sp", PredictorKind::Gshare);
    EXPECT_EQ(sp.core.kind, CoreKind::Msp);
    EXPECT_EQ(sp.core.regsPerBank, 16u);
    EXPECT_TRUE(sp.core.arbitration);

    const MachineConfig noarb =
        configByName("64sp-noarb", PredictorKind::Gshare);
    EXPECT_EQ(noarb.core.regsPerBank, 64u);
    EXPECT_FALSE(noarb.core.arbitration);
}

TEST(ConfigByName, RejectsUnknownNames)
{
    EXPECT_THROW(configByName("turbo", PredictorKind::Gshare), CliError);
    EXPECT_THROW(configByName("sp", PredictorKind::Gshare), CliError);
    EXPECT_THROW(configByName("0sp", PredictorKind::Gshare), CliError);
    EXPECT_THROW(configByName("16sp-bogus", PredictorKind::Gshare),
                 CliError);
}

TEST(ParseCliArgs, ScenarioModeWithOptions)
{
    const CliOptions o =
        parseCliArgs({"fig6", "--threads", "4", "--instrs", "5000",
                      "--json", "out.json", "--quiet"});
    EXPECT_EQ(o.mode, "fig6");
    EXPECT_EQ(o.threads, 4u);
    EXPECT_EQ(o.instrs, 5000u);
    EXPECT_EQ(o.jsonPath, "out.json");
    EXPECT_TRUE(o.quiet);
}

TEST(ParseCliArgs, MatrixMode)
{
    const CliOptions o = parseCliArgs(
        {"matrix", "--workloads", "gzip,gcc", "--configs",
         "baseline,16sp", "--predictor", "tage", "--seed", "7"});
    EXPECT_EQ(o.mode, "matrix");
    EXPECT_EQ(o.workloads, (std::vector<std::string>{"gzip", "gcc"}));
    EXPECT_EQ(o.configNames,
              (std::vector<std::string>{"baseline", "16sp"}));
    EXPECT_EQ(o.predictor, PredictorKind::Tage);
    EXPECT_EQ(o.seed, 7u);
}

TEST(ParseCliArgs, VerifyModeDefaultsAndFlags)
{
    const CliOptions defaults = parseCliArgs({"verify"});
    EXPECT_EQ(defaults.seeds, 100u);
    EXPECT_TRUE(defaults.configNames.empty());
    EXPECT_TRUE(defaults.mixNames.empty());

    const CliOptions o = parseCliArgs(
        {"verify", "--seeds", "25", "--mixes", "branchy,memory",
         "--configs", "cpr,8sp"});
    EXPECT_EQ(o.seeds, 25u);
    EXPECT_EQ(o.mixNames,
              (std::vector<std::string>{"branchy", "memory"}));
    EXPECT_EQ(o.configNames, (std::vector<std::string>{"cpr", "8sp"}));
}

TEST(ParseCliArgs, VerifyTriageFlags)
{
    const CliOptions defaults = parseCliArgs({"verify"});
    EXPECT_FALSE(defaults.failFast);
    EXPECT_EQ(defaults.snapshotEvery, 0u);
    EXPECT_EQ(defaults.budgetSec, 0.0);
    EXPECT_TRUE(defaults.reproPath.empty());

    const CliOptions o = parseCliArgs(
        {"verify", "--fail-fast", "--snapshot-every", "256",
         "--budget-sec", "1.5"});
    EXPECT_TRUE(o.failFast);
    EXPECT_EQ(o.snapshotEvery, 256u);
    EXPECT_DOUBLE_EQ(o.budgetSec, 1.5);

    const CliOptions r = parseCliArgs({"verify", "--repro", "div.json"});
    EXPECT_EQ(r.reproPath, "div.json");

    // Fpedge joined the standard mixes swept by verify.
    EXPECT_EQ(parseCliArgs({"verify", "--mixes", "fpedge"}).mixNames,
              (std::vector<std::string>{"fpedge"}));

    // Second-tier triage: exact-commit bisection + structural
    // reduction.
    EXPECT_FALSE(defaults.bisectExact);
    EXPECT_FALSE(defaults.reduce);
    const CliOptions t = parseCliArgs(
        {"verify", "--bisect-exact", "--reduce", "--snapshot-every",
         "128"});
    EXPECT_TRUE(t.bisectExact);
    EXPECT_TRUE(t.reduce);
}

TEST(ParseCliArgs, TriageFlagErrors)
{
    EXPECT_THROW(parseCliArgs({"verify", "--snapshot-every", "0"}),
                 CliError);
    EXPECT_THROW(parseCliArgs({"verify", "--budget-sec", "0"}), CliError);
    EXPECT_THROW(parseCliArgs({"verify", "--repro"}), CliError);
    // Triage flags are verify-only.
    EXPECT_THROW(parseCliArgs({"fig6", "--fail-fast"}), CliError);
    EXPECT_THROW(parseCliArgs({"matrix", "--workloads", "gzip",
                               "--configs", "cpr", "--snapshot-every",
                               "64"}),
                 CliError);
    // --repro replays the recorded spec; sweep axes don't combine.
    EXPECT_THROW(parseCliArgs({"verify", "--repro", "d.json", "--seeds",
                               "5"}),
                 CliError);
    EXPECT_THROW(parseCliArgs({"verify", "--repro", "d.json", "--mixes",
                               "branchy"}),
                 CliError);
    // --repro replays every recorded reproducer; campaign-shaping
    // flags would be silently ignored, so they are rejected.
    EXPECT_THROW(parseCliArgs({"verify", "--repro", "d.json",
                               "--fail-fast"}),
                 CliError);
    EXPECT_THROW(parseCliArgs({"verify", "--repro", "d.json",
                               "--budget-sec", "5"}),
                 CliError);
    EXPECT_THROW(parseCliArgs({"verify", "--repro", "d.json",
                               "--threads", "8"}),
                 CliError);
    // The second-tier stages re-search; replay just replays.
    EXPECT_THROW(parseCliArgs({"verify", "--repro", "d.json",
                               "--reduce"}),
                 CliError);
    EXPECT_THROW(parseCliArgs({"verify", "--repro", "d.json",
                               "--bisect-exact"}),
                 CliError);
    // Verify-only, like the other triage flags.
    EXPECT_THROW(parseCliArgs({"fig6", "--reduce"}), CliError);
    EXPECT_THROW(parseCliArgs({"fig6", "--bisect-exact"}), CliError);
    EXPECT_THROW(parseCliArgs({"matrix", "--workloads", "gzip",
                               "--configs", "cpr", "--reduce"}),
                 CliError);
    EXPECT_THROW(parseCliArgs({"spec", "--configs", "16sp",
                               "--bisect-exact"}),
                 CliError);
}

TEST(ParseCliArgs, MachineSpecFlags)
{
    const CliOptions o = parseCliArgs(
        {"verify", "--set", "lcs.latency=3", "--set",
         "cpr.checkpoints=4", "--machine", "spec.json"});
    EXPECT_EQ(o.sets, (std::vector<std::string>{"lcs.latency=3",
                                                "cpr.checkpoints=4"}));
    EXPECT_EQ(o.machinePath, "spec.json");

    // Matrix needs a machine source, but --machine alone suffices.
    const CliOptions m = parseCliArgs(
        {"matrix", "--workloads", "gzip", "--machine", "spec.json"});
    EXPECT_EQ(m.machinePath, "spec.json");
    EXPECT_TRUE(m.configNames.empty());
}

TEST(ParseCliArgs, BadSetOverridesFailAtParse)
{
    // Syntax, unknown key, bad value, out-of-range — all rejected
    // before any campaign starts.
    EXPECT_THROW(parseCliArgs({"verify", "--set", "lcs.latency"}),
                 CliError);
    EXPECT_THROW(parseCliArgs({"verify", "--set", "=3"}), CliError);
    EXPECT_THROW(parseCliArgs({"verify", "--set", "bogus.knob=1"}),
                 CliError);
    EXPECT_THROW(parseCliArgs({"verify", "--set", "width.fetch=abc"}),
                 CliError);
    EXPECT_THROW(parseCliArgs({"verify", "--set", "width.fetch=0"}),
                 CliError);
}

TEST(ParseCliArgs, SpecMode)
{
    const CliOptions o = parseCliArgs(
        {"spec", "--configs", "16sp", "--set", "lcs.latency=3",
         "--json", "out.json", "--quiet"});
    EXPECT_EQ(o.mode, "spec");
    EXPECT_EQ(o.configNames, (std::vector<std::string>{"16sp"}));

    EXPECT_NO_THROW(parseCliArgs({"spec", "--machine", "m.json"}));
    // Exactly one machine source.
    EXPECT_THROW(parseCliArgs({"spec"}), CliError);
    EXPECT_THROW(parseCliArgs({"spec", "--configs", "16sp,cpr"}),
                 CliError);
    EXPECT_THROW(parseCliArgs({"spec", "--configs", "16sp", "--machine",
                               "m.json"}),
                 CliError);
    // Campaign-only flags don't apply.
    EXPECT_THROW(parseCliArgs({"spec", "--configs", "16sp",
                               "--workloads", "gzip"}),
                 CliError);
    EXPECT_THROW(parseCliArgs({"spec", "--configs", "16sp", "--seeds",
                               "5"}),
                 CliError);
    EXPECT_THROW(parseCliArgs({"spec", "--configs", "16sp", "--threads",
                               "2"}),
                 CliError);
}

TEST(ParseCliArgs, SpecFlagsAreModeChecked)
{
    // Scenario modes fix their own machines.
    EXPECT_THROW(parseCliArgs({"fig6", "--set", "lcs.latency=3"}),
                 CliError);
    EXPECT_THROW(parseCliArgs({"fig6", "--machine", "m.json"}), CliError);
    // --repro replays the recorded spec; machine sources don't combine.
    EXPECT_THROW(parseCliArgs({"verify", "--repro", "d.json", "--set",
                               "lcs.latency=3"}),
                 CliError);
    EXPECT_THROW(parseCliArgs({"verify", "--repro", "d.json",
                               "--machine", "m.json"}),
                 CliError);
}

TEST(ParseCliArgs, HelpAndListNeedNoMode)
{
    EXPECT_TRUE(parseCliArgs({"--help"}).help);
    EXPECT_TRUE(parseCliArgs({"-h"}).help);
    EXPECT_TRUE(parseCliArgs({"--list"}).list);
}

TEST(ParseCliArgs, MissingModeThrows)
{
    EXPECT_THROW(parseCliArgs({}), CliError);
    EXPECT_THROW(parseCliArgs({"--threads", "2"}), CliError);
}

TEST(ParseCliArgs, UnknownScenarioThrows)
{
    EXPECT_THROW(parseCliArgs({"fig99"}), CliError);
    EXPECT_THROW(parseCliArgs({"bogus-sweep"}), CliError);
}

TEST(ParseCliArgs, BadMatrixSpecThrows)
{
    // Missing both axes / either axis.
    EXPECT_THROW(parseCliArgs({"matrix"}), CliError);
    EXPECT_THROW(parseCliArgs({"matrix", "--workloads", "gzip"}),
                 CliError);
    EXPECT_THROW(parseCliArgs({"matrix", "--configs", "cpr"}), CliError);
    // Unknown preset inside the list.
    EXPECT_THROW(parseCliArgs({"matrix", "--workloads", "gzip",
                               "--configs", "warp9"}),
                 CliError);
}

TEST(ParseCliArgs, ScenarioModeRejectsMatrixAndVerifyFlags)
{
    EXPECT_THROW(parseCliArgs({"fig6", "--workloads", "gzip"}), CliError);
    EXPECT_THROW(parseCliArgs({"fig6", "--configs", "cpr"}), CliError);
    EXPECT_THROW(parseCliArgs({"fig6", "--predictor", "tage"}), CliError);
    EXPECT_THROW(parseCliArgs({"fig6", "--seed", "3"}), CliError);
    EXPECT_THROW(parseCliArgs({"fig6", "--seeds", "10"}), CliError);
    EXPECT_THROW(parseCliArgs({"fig6", "--mixes", "branchy"}), CliError);
}

TEST(ParseCliArgs, VerifyModeFlagErrors)
{
    EXPECT_THROW(parseCliArgs({"verify", "--seeds", "0"}), CliError);
    // --workloads on its own is valid (named verification); combining
    // it with the fuzz-campaign flags is not (GridFlagGrammar).
    EXPECT_NO_THROW(parseCliArgs({"verify", "--workloads", "gzip"}));
    EXPECT_THROW(parseCliArgs({"verify", "--csv", "out.csv"}), CliError);
    EXPECT_THROW(parseCliArgs({"verify", "--mixes", "warp"}), CliError);
    EXPECT_THROW(parseCliArgs({"matrix", "--workloads", "gzip",
                               "--configs", "cpr", "--seeds", "5"}),
                 CliError);
}

TEST(ParseCliArgs, CampaignStateFlags)
{
    const CliOptions o = parseCliArgs(
        {"matrix", "--workloads", "gzip", "--configs", "cpr",
         "--checkpoint", "c.jsonl", "--checkpoint-every", "8",
         "--shard", "1/3"});
    EXPECT_EQ(o.checkpointPath, "c.jsonl");
    EXPECT_EQ(o.checkpointEvery, 8u);
    EXPECT_EQ(o.shardIndex, 1u);
    EXPECT_EQ(o.shardCount, 3u);

    // --resume alone checkpoints back into the file it resumes from.
    const CliOptions r = parseCliArgs({"verify", "--resume", "c.jsonl"});
    EXPECT_EQ(r.resumePath, "c.jsonl");
    EXPECT_EQ(r.checkpointPath, "c.jsonl");
}

TEST(ParseCliArgs, CampaignStateFlagErrors)
{
    // --checkpoint-every is meaningless without durable state.
    EXPECT_THROW(parseCliArgs({"matrix", "--workloads", "gzip",
                               "--configs", "cpr",
                               "--checkpoint-every", "8"}),
                 CliError);
    EXPECT_THROW(parseCliArgs({"matrix", "--workloads", "gzip",
                               "--configs", "cpr", "--checkpoint",
                               "c.jsonl", "--checkpoint-every", "0"}),
                 CliError);
    // Bad --shard spellings: not i/N, shard out of range, zero shards.
    for (const char *bad : {"3", "1-3", "3/3", "4/3", "0/0", "a/3",
                            "1/b", "1/3x"})
        EXPECT_THROW(parseCliArgs({"matrix", "--workloads", "gzip",
                                   "--configs", "cpr", "--shard", bad}),
                     CliError);
    // State is a campaign feature: spec/scenario/--repro reject it.
    EXPECT_THROW(parseCliArgs({"fig6", "--checkpoint", "c.jsonl"}),
                 CliError);
    EXPECT_THROW(parseCliArgs({"spec", "--configs", "cpr", "--shard",
                               "0/2"}),
                 CliError);
    EXPECT_THROW(parseCliArgs({"verify", "--repro", "d.json",
                               "--resume", "c.jsonl"}),
                 CliError);
}

TEST(ParseCliArgs, CoverageFlags)
{
    const CliOptions o = parseCliArgs(
        {"verify", "--coverage", "--corpus", "corpus.jsonl", "--waves",
         "3", "--tune"});
    EXPECT_TRUE(o.coverage);
    EXPECT_EQ(o.corpusPath, "corpus.jsonl");
    EXPECT_EQ(o.waves, 3u);
    EXPECT_TRUE(o.tune);

    // Defaults: coverage off, one wave, no corpus, no tuning.
    const CliOptions d = parseCliArgs({"verify"});
    EXPECT_FALSE(d.coverage);
    EXPECT_TRUE(d.corpusPath.empty());
    EXPECT_EQ(d.waves, 1u);
    EXPECT_FALSE(d.tune);

    // --coverage alone is a valid single-wave campaign.
    EXPECT_TRUE(parseCliArgs({"verify", "--coverage"}).coverage);
}

TEST(ParseCliArgs, CoverageFlagErrors)
{
    // Values are checked and the error names the flag.
    EXPECT_THROW(parseCliArgs({"verify", "--coverage", "--waves", "2x"}),
                 CliError);
    EXPECT_THROW(parseCliArgs({"verify", "--coverage", "--waves", "-1"}),
                 CliError);
    EXPECT_THROW(parseCliArgs({"verify", "--corpus"}), CliError);
    try {
        parseCliArgs({"verify", "--coverage", "--waves", "0"});
        FAIL() << "expected CliError";
    } catch (const CliError &e) {
        EXPECT_NE(std::string(e.what()).find("--waves"),
                  std::string::npos);
    }

    // --corpus/--waves/--tune steer the coverage map; without
    // --coverage there is nothing to steer.
    EXPECT_THROW(parseCliArgs({"verify", "--corpus", "c.jsonl"}),
                 CliError);
    EXPECT_THROW(parseCliArgs({"verify", "--waves", "2"}), CliError);
    EXPECT_THROW(parseCliArgs({"verify", "--tune"}), CliError);

    // Coverage is a verify-campaign feature: every other mode — and
    // --repro replay — rejects it.
    EXPECT_THROW(parseCliArgs({"matrix", "--workloads", "gzip",
                               "--configs", "cpr", "--coverage"}),
                 CliError);
    EXPECT_THROW(parseCliArgs({"bench", "--coverage"}), CliError);
    EXPECT_THROW(parseCliArgs({"spec", "--configs", "cpr", "--tune"}),
                 CliError);
    EXPECT_THROW(parseCliArgs({"fig6", "--coverage"}), CliError);
    EXPECT_THROW(parseCliArgs({"merge", "a.json", "--coverage"}),
                 CliError);
    EXPECT_THROW(parseCliArgs({"verify", "--repro", "d.json",
                               "--coverage"}),
                 CliError);

    // Wave retuning changes the job list mid-campaign, which durable
    // checkpoint identity cannot describe.
    EXPECT_THROW(parseCliArgs({"verify", "--coverage", "--checkpoint",
                               "c.jsonl"}),
                 CliError);
    EXPECT_THROW(parseCliArgs({"verify", "--coverage", "--resume",
                               "c.jsonl"}),
                 CliError);
    EXPECT_THROW(parseCliArgs({"verify", "--coverage", "--shard", "0/2"}),
                 CliError);
}

TEST(ParseCliArgs, MergeMode)
{
    const CliOptions o =
        parseCliArgs({"merge", "a.json", "b.json", "--json", "out.json"});
    EXPECT_EQ(o.mode, "merge");
    ASSERT_EQ(o.mergeInputs.size(), 2u);
    EXPECT_EQ(o.mergeInputs[0], "a.json");
    EXPECT_EQ(o.mergeInputs[1], "b.json");
    EXPECT_EQ(o.jsonPath, "out.json");

    // No inputs, and flags that make no sense when only folding files.
    EXPECT_THROW(parseCliArgs({"merge"}), CliError);
    EXPECT_THROW(parseCliArgs({"merge", "a.json", "--threads", "2"}),
                 CliError);
    EXPECT_THROW(parseCliArgs({"merge", "a.json", "--checkpoint",
                               "c.jsonl"}),
                 CliError);
}

TEST(ParseCliArgs, BenchMode)
{
    const CliOptions o = parseCliArgs(
        {"bench", "--configs", "baseline,16sp", "--workloads", "gzip",
         "--instrs", "50000", "--reps", "5", "--baseline", "base.json",
         "--gate-pct", "10", "--threads", "1", "--json", "out.json"});
    EXPECT_EQ(o.mode, "bench");
    EXPECT_EQ(o.reps, 5u);
    EXPECT_EQ(o.baselinePath, "base.json");
    EXPECT_DOUBLE_EQ(o.gatePct, 10.0);
    EXPECT_EQ(o.threads, 1u);
    EXPECT_EQ(o.instrs, 50000u);

    // Defaults: everything optional.
    const CliOptions d = parseCliArgs({"bench"});
    EXPECT_EQ(d.reps, 3u);
    EXPECT_DOUBLE_EQ(d.gatePct, 15.0);
    EXPECT_TRUE(d.baselinePath.empty());
}

TEST(ParseCliArgs, BenchModeFlagErrors)
{
    // Throughput is measured sequentially; a worker pool would time
    // the scheduler.
    EXPECT_THROW(parseCliArgs({"bench", "--threads", "2"}), CliError);
    EXPECT_THROW(parseCliArgs({"bench", "--reps", "0"}), CliError);
    EXPECT_THROW(parseCliArgs({"bench", "--reps", "3x"}), CliError);
    EXPECT_THROW(parseCliArgs({"bench", "--gate-pct", "0"}), CliError);
    EXPECT_THROW(parseCliArgs({"bench", "--gate-pct", "100"}), CliError);
    // Campaign/verify machinery does not apply to a timing run.
    EXPECT_THROW(parseCliArgs({"bench", "--seeds", "10"}), CliError);
    EXPECT_THROW(parseCliArgs({"bench", "--checkpoint", "c.jsonl"}),
                 CliError);
    EXPECT_THROW(parseCliArgs({"bench", "--set", "cpr.checkpoints=4"}),
                 CliError);
    // And the bench flags stay bench-only in both directions.
    EXPECT_THROW(parseCliArgs({"matrix", "--workloads", "gzip",
                               "--configs", "cpr", "--reps", "3"}),
                 CliError);
    EXPECT_THROW(parseCliArgs({"verify", "--baseline", "b.json"}),
                 CliError);
    EXPECT_THROW(parseCliArgs({"fig6", "--gate-pct", "10"}), CliError);
    EXPECT_THROW(parseCliArgs({"merge", "a.json", "--reps", "2"}),
                 CliError);
}

TEST(ParseCliArgs, GridFlagGrammar)
{
    // matrix: --grid replaces --configs/--machine (and, for a bound
    // grid, --workloads — enforced at expansion, not parse).
    const CliOptions o = parseCliArgs({"matrix", "--grid", "g.json"});
    EXPECT_EQ(o.mode, "matrix");
    EXPECT_EQ(o.gridPath, "g.json");
    EXPECT_NO_THROW(parseCliArgs({"matrix", "--grid", "g.json",
                                  "--workloads", "gzip"}));
    EXPECT_THROW(parseCliArgs({"matrix", "--grid", "g.json", "--configs",
                               "cpr"}),
                 CliError);
    EXPECT_THROW(parseCliArgs({"matrix", "--grid", "g.json", "--machine",
                               "m.json"}),
                 CliError);

    // verify: --grid XOR --workloads selects deterministic named
    // verification; campaign-style triage flags don't combine.
    EXPECT_NO_THROW(parseCliArgs({"verify", "--grid", "g.json"}));
    EXPECT_NO_THROW(parseCliArgs({"verify", "--workloads",
                                  "gzip,trace:t.jsonl"}));
    EXPECT_THROW(parseCliArgs({"verify", "--grid", "g.json",
                               "--workloads", "gzip"}),
                 CliError);
    EXPECT_THROW(parseCliArgs({"verify", "--grid", "g.json", "--seeds",
                               "4"}),
                 CliError);
    EXPECT_THROW(parseCliArgs({"verify", "--workloads", "gzip",
                               "--mixes", "fpedge"}),
                 CliError);
    EXPECT_THROW(parseCliArgs({"verify", "--workloads", "gzip",
                               "--fail-fast"}),
                 CliError);
    EXPECT_THROW(parseCliArgs({"verify", "--workloads", "gzip",
                               "--coverage"}),
                 CliError);
    EXPECT_NO_THROW(parseCliArgs({"verify", "--workloads", "gzip",
                                  "--snapshot-every", "256", "--configs",
                                  "cpr,16sp"}));

    // Workload names are validated at parse time.
    EXPECT_THROW(parseCliArgs({"verify", "--workloads", "frobnicate"}),
                 CliError);
    EXPECT_THROW(parseCliArgs({"matrix", "--grid", "g.json",
                               "--workloads", "trace:"}),
                 CliError);

    // The other modes reject --grid outright.
    EXPECT_THROW(parseCliArgs({"fig6", "--grid", "g.json"}), CliError);
    EXPECT_THROW(parseCliArgs({"merge", "a.json", "--grid", "g.json"}),
                 CliError);
    EXPECT_THROW(parseCliArgs({"bench", "--grid", "g.json"}), CliError);
    EXPECT_THROW(parseCliArgs({"spec", "--configs", "cpr", "--grid",
                               "g.json"}),
                 CliError);
}

TEST(ParseCliArgs, TraceMode)
{
    const CliOptions o = parseCliArgs(
        {"trace", "--workloads", "ptrchase", "--seed", "9", "--json",
         "out.jsonl"});
    EXPECT_EQ(o.mode, "trace");
    EXPECT_EQ(o.workloads, (std::vector<std::string>{"ptrchase"}));
    EXPECT_EQ(o.seed, 9u);
    EXPECT_EQ(o.jsonPath, "out.jsonl");

    EXPECT_THROW(parseCliArgs({"trace"}), CliError);
    EXPECT_THROW(parseCliArgs({"trace", "--workloads", "gzip,gcc"}),
                 CliError);
    EXPECT_THROW(parseCliArgs({"trace", "--workloads", "gzip",
                               "--configs", "cpr"}),
                 CliError);
    EXPECT_THROW(parseCliArgs({"trace", "--workloads", "gzip",
                               "--threads", "2"}),
                 CliError);
    EXPECT_THROW(parseCliArgs({"trace", "--workloads", "gzip", "--grid",
                               "g.json"}),
                 CliError);
}

TEST(ParseCliArgs, MalformedFlagsThrow)
{
    EXPECT_THROW(parseCliArgs({"fig6", "--bogus"}), CliError);
    EXPECT_THROW(parseCliArgs({"fig6", "--threads"}), CliError);
    EXPECT_THROW(parseCliArgs({"fig6", "extra-positional"}), CliError);
    EXPECT_THROW(parseCliArgs({"matrix", "--workloads", "gzip",
                               "--configs", "cpr", "--predictor",
                               "oracle"}),
                 CliError);
}

} // namespace
} // namespace msp
