/**
 * @file
 * Unit tests for BitVector (the RelIQ storage primitive).
 */

#include <gtest/gtest.h>

#include "common/bitvector.hh"

namespace msp {
namespace {

TEST(BitVector, StartsEmpty)
{
    BitVector v(130);
    EXPECT_EQ(v.size(), 130u);
    EXPECT_TRUE(v.none());
    EXPECT_FALSE(v.any());
    EXPECT_EQ(v.count(), 0u);
    EXPECT_EQ(v.findFirst(), 130u);
}

TEST(BitVector, SetTestClear)
{
    BitVector v(128);
    v.set(0);
    v.set(63);
    v.set(64);
    v.set(127);
    EXPECT_TRUE(v.test(0));
    EXPECT_TRUE(v.test(63));
    EXPECT_TRUE(v.test(64));
    EXPECT_TRUE(v.test(127));
    EXPECT_FALSE(v.test(1));
    EXPECT_EQ(v.count(), 4u);
    v.clear(63);
    EXPECT_FALSE(v.test(63));
    EXPECT_EQ(v.count(), 3u);
}

TEST(BitVector, FindFirstScansWordBoundaries)
{
    BitVector v(200);
    v.set(150);
    EXPECT_EQ(v.findFirst(), 150u);
    v.set(70);
    EXPECT_EQ(v.findFirst(), 70u);
    v.set(3);
    EXPECT_EQ(v.findFirst(), 3u);
}

TEST(BitVector, ResetClearsEverything)
{
    BitVector v(90);
    for (std::size_t i = 0; i < 90; i += 7)
        v.set(i);
    EXPECT_TRUE(v.any());
    v.reset();
    EXPECT_TRUE(v.none());
}

TEST(BitVector, OrAssignMerges)
{
    BitVector a(64), b(64);
    a.set(1);
    b.set(2);
    a |= b;
    EXPECT_TRUE(a.test(1));
    EXPECT_TRUE(a.test(2));
}

TEST(BitVector, EqualityComparesContent)
{
    BitVector a(64), b(64);
    EXPECT_EQ(a, b);
    a.set(5);
    EXPECT_FALSE(a == b);
    b.set(5);
    EXPECT_EQ(a, b);
}

TEST(BitVectorDeath, OutOfRangePanics)
{
    BitVector v(10);
    EXPECT_DEATH(v.set(10), "out of range");
    EXPECT_DEATH(v.test(99), "out of range");
}

class BitVectorSizes : public ::testing::TestWithParam<std::size_t>
{};

TEST_P(BitVectorSizes, CountMatchesSetBits)
{
    const std::size_t n = GetParam();
    BitVector v(n);
    std::size_t expect = 0;
    for (std::size_t i = 0; i < n; i += 3) {
        v.set(i);
        ++expect;
    }
    EXPECT_EQ(v.count(), expect);
}

INSTANTIATE_TEST_SUITE_P(Sizes, BitVectorSizes,
                         ::testing::Values(1, 63, 64, 65, 127, 128, 129,
                                           255, 256, 1000));

} // namespace
} // namespace msp
