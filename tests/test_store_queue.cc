/**
 * @file
 * Unit tests for the hierarchical store queue: program-order
 * allocation, forwarding semantics (including the conservative
 * unknown-address rule), L2-region search latency, drain and squash.
 */

#include <gtest/gtest.h>

#include "lsq/store_queue.hh"

namespace msp {
namespace {

TEST(StoreQueue, ForwardFromYoungestOlderMatch)
{
    HierStoreQueue sq(4, 8, false);
    sq.allocate(1);
    sq.allocate(2);
    sq.resolve(1, 0x100, 11);
    sq.resolve(2, 0x100, 22);
    ForwardResult r = sq.probe(3, 0x100);
    EXPECT_EQ(r.kind, ForwardResult::Kind::Forward);
    EXPECT_EQ(r.data, 22u);   // youngest older store wins
}

TEST(StoreQueue, LoadSeesOnlyOlderStores)
{
    HierStoreQueue sq(4, 8, false);
    sq.allocate(5);
    sq.resolve(5, 0x80, 7);
    ForwardResult r = sq.probe(4, 0x80);   // load older than the store
    EXPECT_EQ(r.kind, ForwardResult::Kind::None);
}

TEST(StoreQueue, UnknownOlderAddressBlocksLoads)
{
    HierStoreQueue sq(4, 8, false);
    sq.allocate(1);                      // address not yet resolved
    ForwardResult r = sq.probe(2, 0x40);
    EXPECT_EQ(r.kind, ForwardResult::Kind::Unknown);
}

TEST(StoreQueue, L2RegionForwardCostsExtraLatency)
{
    HierStoreQueue sq(2, 8, false, 4);
    for (SeqNum s = 1; s <= 5; ++s) {
        sq.allocate(s);
        sq.resolve(s, 0x1000 + 64 * s, s);
    }
    // Store 1 is now outside the youngest-2 (L1) region.
    ForwardResult far = sq.probe(10, 0x1000 + 64);
    EXPECT_EQ(far.kind, ForwardResult::Kind::Forward);
    EXPECT_EQ(far.extraLatency, 4u);
    // Store 5 is in the L1 region.
    ForwardResult near = sq.probe(10, 0x1000 + 64 * 5);
    EXPECT_EQ(near.extraLatency, 0u);
}

TEST(StoreQueue, DrainInOrder)
{
    HierStoreQueue sq(4, 4, false);
    sq.allocate(1);
    sq.allocate(2);
    sq.resolve(1, 0x8, 1);
    sq.resolve(2, 0x10, 2);
    ASSERT_NE(sq.oldest(), nullptr);
    EXPECT_EQ(sq.oldest()->seq, 1u);
    sq.drainOldest(1);
    EXPECT_EQ(sq.oldest()->seq, 2u);
    sq.drainOldest(2);
    EXPECT_TRUE(sq.empty());
}

TEST(StoreQueue, SquashRemovesYoungerAndReportsL2Scan)
{
    HierStoreQueue sq(2, 8, false);
    for (SeqNum s = 1; s <= 6; ++s)
        sq.allocate(s);
    // Entries 1..4 are in the L2 region (6 - l1Cap 2).
    const std::size_t scanned = sq.squashAfter(2);
    EXPECT_EQ(sq.size(), 2u);
    EXPECT_EQ(scanned, 4u);   // four squashed entries sat in L2 space
}

TEST(StoreQueue, CapacityAndInfiniteMode)
{
    HierStoreQueue sq(1, 1, false);
    sq.allocate(1);
    sq.allocate(2);
    EXPECT_FALSE(sq.canAllocate());

    HierStoreQueue inf(1, 1, true);
    for (SeqNum s = 1; s <= 100; ++s)
        inf.allocate(s);
    EXPECT_TRUE(inf.canAllocate());
}

TEST(StoreQueueDeath, OutOfOrderAllocationPanics)
{
    HierStoreQueue sq(4, 4, false);
    sq.allocate(5);
    EXPECT_DEATH(sq.allocate(3), "program order");
}

TEST(StoreQueueDeath, DrainUnresolvedPanics)
{
    HierStoreQueue sq(4, 4, false);
    sq.allocate(1);
    EXPECT_DEATH(sq.drainOldest(1), "unresolved");
}

} // namespace
} // namespace msp
