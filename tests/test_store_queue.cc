/**
 * @file
 * Unit tests for the hierarchical store queue: program-order
 * allocation, forwarding semantics (including the conservative
 * unknown-address rule), L2-region search latency, drain and squash.
 */

#include <gtest/gtest.h>

#include "lsq/store_queue.hh"

namespace msp {
namespace {

TEST(StoreQueue, ForwardFromYoungestOlderMatch)
{
    HierStoreQueue sq(4, 8, false);
    sq.allocate(1);
    sq.allocate(2);
    sq.resolve(1, 0x100, 11);
    sq.resolve(2, 0x100, 22);
    ForwardResult r = sq.probe(3, 0x100);
    EXPECT_EQ(r.kind, ForwardResult::Kind::Forward);
    EXPECT_EQ(r.data, 22u);   // youngest older store wins
}

TEST(StoreQueue, LoadSeesOnlyOlderStores)
{
    HierStoreQueue sq(4, 8, false);
    sq.allocate(5);
    sq.resolve(5, 0x80, 7);
    ForwardResult r = sq.probe(4, 0x80);   // load older than the store
    EXPECT_EQ(r.kind, ForwardResult::Kind::None);
}

TEST(StoreQueue, UnknownOlderAddressBlocksLoads)
{
    HierStoreQueue sq(4, 8, false);
    sq.allocate(1);                      // address not yet resolved
    ForwardResult r = sq.probe(2, 0x40);
    EXPECT_EQ(r.kind, ForwardResult::Kind::Unknown);
}

TEST(StoreQueue, L2RegionForwardCostsExtraLatency)
{
    HierStoreQueue sq(2, 8, false, 4);
    for (SeqNum s = 1; s <= 5; ++s) {
        sq.allocate(s);
        sq.resolve(s, 0x1000 + 64 * s, s);
    }
    // Store 1 is now outside the youngest-2 (L1) region.
    ForwardResult far = sq.probe(10, 0x1000 + 64);
    EXPECT_EQ(far.kind, ForwardResult::Kind::Forward);
    EXPECT_EQ(far.extraLatency, 4u);
    // Store 5 is in the L1 region.
    ForwardResult near = sq.probe(10, 0x1000 + 64 * 5);
    EXPECT_EQ(near.extraLatency, 0u);
}

TEST(StoreQueue, DrainInOrder)
{
    HierStoreQueue sq(4, 4, false);
    sq.allocate(1);
    sq.allocate(2);
    sq.resolve(1, 0x8, 1);
    sq.resolve(2, 0x10, 2);
    ASSERT_NE(sq.oldest(), nullptr);
    EXPECT_EQ(sq.oldest()->seq, 1u);
    sq.drainOldest(1);
    EXPECT_EQ(sq.oldest()->seq, 2u);
    sq.drainOldest(2);
    EXPECT_TRUE(sq.empty());
}

TEST(StoreQueue, SquashRemovesYoungerAndReportsL2Scan)
{
    HierStoreQueue sq(2, 8, false);
    for (SeqNum s = 1; s <= 6; ++s)
        sq.allocate(s);
    // Entries 1..4 are in the L2 region (6 - l1Cap 2).
    const std::size_t scanned = sq.squashAfter(2);
    EXPECT_EQ(sq.size(), 2u);
    EXPECT_EQ(scanned, 4u);   // four squashed entries sat in L2 space
}

TEST(StoreQueue, CapacityAndInfiniteMode)
{
    HierStoreQueue sq(1, 1, false);
    sq.allocate(1);
    sq.allocate(2);
    EXPECT_FALSE(sq.canAllocate());

    HierStoreQueue inf(1, 1, true);
    for (SeqNum s = 1; s <= 100; ++s)
        inf.allocate(s);
    EXPECT_TRUE(inf.canAllocate());
}

// ---- full-queue behaviour --------------------------------------------------

TEST(StoreQueue, FullQueueRecoversThroughDrain)
{
    HierStoreQueue sq(2, 2, false);
    for (SeqNum s = 1; s <= 4; ++s) {
        sq.allocate(s);
        sq.resolve(s, 0x100 + 8 * s, s);
    }
    EXPECT_FALSE(sq.canAllocate());
    sq.drainOldest(1);
    EXPECT_TRUE(sq.canAllocate());
    sq.allocate(5);
    EXPECT_FALSE(sq.canAllocate());
}

TEST(StoreQueue, FullQueueRecoversThroughSquash)
{
    HierStoreQueue sq(2, 2, false);
    for (SeqNum s = 1; s <= 4; ++s)
        sq.allocate(s);
    EXPECT_FALSE(sq.canAllocate());
    sq.squashAfter(1);
    EXPECT_EQ(sq.size(), 1u);
    EXPECT_TRUE(sq.canAllocate());
    // Re-filling after the squash keeps program order from seq 2 on.
    sq.allocate(6);
    sq.allocate(7);
    sq.allocate(8);
    EXPECT_FALSE(sq.canAllocate());
}

TEST(StoreQueue, SquashOfEverythingLeavesAnEmptyReusableQueue)
{
    HierStoreQueue sq(1, 1, false);
    sq.allocate(3);
    sq.allocate(4);
    sq.squashAfter(0);
    EXPECT_TRUE(sq.empty());
    EXPECT_TRUE(sq.canAllocate());
    sq.allocate(1);   // older seq is legal again: the queue is empty
    EXPECT_EQ(sq.oldest()->seq, 1u);
}

TEST(StoreQueueDeath, AllocatePastCapacityPanics)
{
    HierStoreQueue sq(1, 1, false);
    sq.allocate(1);
    sq.allocate(2);
    EXPECT_DEATH(sq.allocate(3), "overflow");
}

// ---- forwarding granularity and partial overlap ----------------------------

TEST(StoreQueue, AdjacentWordsNeverForward)
{
    // The ISA is word-granular (every effective address is 8-byte
    // aligned), so "partial overlap" means adjacent-word accesses —
    // which must miss the queue and go to the cache, not forward.
    HierStoreQueue sq(4, 4, false);
    sq.allocate(1);
    sq.resolve(1, 0x100, 77);
    EXPECT_EQ(sq.probe(2, 0x0f8).kind, ForwardResult::Kind::None);
    EXPECT_EQ(sq.probe(2, 0x108).kind, ForwardResult::Kind::None);
    EXPECT_EQ(sq.probe(2, 0x100).kind, ForwardResult::Kind::Forward);
}

TEST(StoreQueue, YoungerResolvedMatchMasksOlderUnknown)
{
    // The youngest-first walk stops at the first *matching* resolved
    // store; an older unresolved address only blocks loads that reach
    // it. A load covered by a younger match forwards immediately.
    HierStoreQueue sq(4, 4, false);
    sq.allocate(1);                 // address still unknown
    sq.allocate(2);
    sq.resolve(2, 0x40, 22);
    ForwardResult covered = sq.probe(3, 0x40);
    EXPECT_EQ(covered.kind, ForwardResult::Kind::Forward);
    EXPECT_EQ(covered.data, 22u);
    // A different word walks past store 2 and hits the unknown.
    EXPECT_EQ(sq.probe(3, 0x48).kind, ForwardResult::Kind::Unknown);
}

TEST(StoreQueueDeath, OutOfOrderAllocationPanics)
{
    HierStoreQueue sq(4, 4, false);
    sq.allocate(5);
    EXPECT_DEATH(sq.allocate(3), "program order");
}

TEST(StoreQueueDeath, DrainUnresolvedPanics)
{
    HierStoreQueue sq(4, 4, false);
    sq.allocate(1);
    EXPECT_DEATH(sq.drainOldest(1), "unresolved");
}

} // namespace
} // namespace msp
