/**
 * @file
 * Tests for the simulation-campaign driver: determinism under
 * parallelism (the same job matrix must produce bit-identical results
 * on 1 and N worker threads), matrix construction, seeding, and the
 * JSON/CSV report serialisers.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "driver/campaign.hh"
#include "driver/report.hh"
#include "driver/scenario.hh"
#include "isa/builder.hh"
#include "sim/presets.hh"

namespace msp {
namespace {

using driver::CampaignJob;
using driver::JobResult;
using driver::SimCampaign;

constexpr std::uint64_t kBudget = 3000;

std::vector<MachineConfig>
smallLadder()
{
    return {
        baselineConfig(PredictorKind::Gshare),
        cprConfig(PredictorKind::Gshare),
        nspConfig(16, PredictorKind::Gshare),
    };
}

std::vector<JobResult>
runMatrixWith(unsigned threads)
{
    SimCampaign c(threads);
    c.addMatrix({"gzip", "swim"}, smallLadder(), kBudget);
    return c.run();
}

TEST(SimCampaign, MatrixIsWorkloadMajor)
{
    SimCampaign c(1);
    c.addMatrix({"gzip", "gcc"}, smallLadder(), kBudget, 1, "t");
    ASSERT_EQ(c.size(), 6u);
    const auto &jobs = c.pending();
    EXPECT_EQ(jobs[0].workload, "gzip");
    EXPECT_EQ(jobs[2].workload, "gzip");
    EXPECT_EQ(jobs[3].workload, "gcc");
    EXPECT_EQ(jobs[0].config.name, "Baseline");
    EXPECT_EQ(jobs[4].config.name, "CPR");
    EXPECT_EQ(jobs[5].scenario, "t");
}

TEST(SimCampaign, ResultsComeBackInSubmissionOrder)
{
    const auto results = runMatrixWith(4);
    ASSERT_EQ(results.size(), 6u);
    for (std::size_t i = 0; i < results.size(); ++i) {
        EXPECT_EQ(results[i].index, i);
        EXPECT_EQ(results[i].result.config, results[i].job.config.name);
        EXPECT_EQ(results[i].result.workload, results[i].job.workload);
        EXPECT_GT(results[i].result.committed, 0u);
    }
}

// The headline property: a campaign is bit-deterministic regardless of
// worker count — every job owns its machine, program copy and RNGs.
TEST(SimCampaign, ParallelRunMatchesSingleThreaded)
{
    const auto ref = runMatrixWith(1);
    for (unsigned threads : {2u, 4u, 8u}) {
        const auto par = runMatrixWith(threads);
        ASSERT_EQ(par.size(), ref.size());
        for (std::size_t i = 0; i < ref.size(); ++i) {
            SCOPED_TRACE(ref[i].job.config.name + "/" +
                         ref[i].job.workload);
            EXPECT_EQ(par[i].result.committed, ref[i].result.committed);
            EXPECT_EQ(par[i].result.cycles, ref[i].result.cycles);
            EXPECT_DOUBLE_EQ(par[i].result.ipc(), ref[i].result.ipc());
            EXPECT_EQ(par[i].result.mispredicts,
                      ref[i].result.mispredicts);
            EXPECT_EQ(par[i].result.totalExecuted,
                      ref[i].result.totalExecuted);
        }
    }
}

TEST(SimCampaign, RepeatedRunsAreDeterministic)
{
    const auto a = runMatrixWith(3);
    const auto b = runMatrixWith(3);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].result.cycles, b[i].result.cycles);
        EXPECT_EQ(a[i].result.committed, b[i].result.committed);
    }
}

TEST(SimCampaign, CustomProgramJobsRun)
{
    ProgramBuilder b("tiny-loop");
    b.li(1, 0);
    b.li(2, 1);
    b.li(3, 1000000);
    Label loop = b.newLabel();
    Label end = b.newLabel();
    b.bind(loop);
    b.blt(3, 2, end);
    b.add(1, 1, 2);
    b.addi(2, 2, 1);
    b.j(loop);
    b.bind(end);
    b.halt();
    auto prog = std::make_shared<Program>(b.finish());

    SimCampaign c(2);
    for (int i = 0; i < 3; ++i) {
        CampaignJob j;
        j.workload = "tiny-loop";
        j.config = nspConfig(16, PredictorKind::Gshare);
        j.maxInsts = kBudget;
        j.program = prog;
        c.add(std::move(j));
    }
    const auto results = c.run();
    ASSERT_EQ(results.size(), 3u);
    for (const auto &jr : results) {
        EXPECT_EQ(jr.result.workload, "tiny-loop");
        EXPECT_GT(jr.result.committed, 0u);
        EXPECT_EQ(jr.result.committed, results[0].result.committed);
    }
}

TEST(SimCampaign, ProgressReportsEveryJobOnce)
{
    SimCampaign c(4);
    c.addMatrix({"gzip"}, smallLadder(), kBudget);
    std::set<std::size_t> seen;
    std::size_t lastDone = 0;
    const auto results =
        c.run([&](const JobResult &jr, std::size_t done,
                  std::size_t total) {
            EXPECT_EQ(total, 3u);
            EXPECT_GT(done, lastDone);
            lastDone = done;
            seen.insert(jr.index);
        });
    EXPECT_EQ(results.size(), 3u);
    EXPECT_EQ(seen.size(), 3u);
    EXPECT_EQ(lastDone, 3u);
}

TEST(SimCampaign, JobSeedIsDeterministicAndDistinct)
{
    EXPECT_EQ(driver::jobSeed(1, 0), driver::jobSeed(1, 0));
    EXPECT_NE(driver::jobSeed(1, 0), driver::jobSeed(1, 1));
    EXPECT_NE(driver::jobSeed(1, 0), driver::jobSeed(2, 0));
    EXPECT_NE(driver::jobSeed(1, 5), 0u);
}

TEST(SimCampaign, EffectiveThreadsNeverExceedsJobs)
{
    SimCampaign c(64);
    c.addMatrix({"gzip"}, smallLadder(), kBudget);
    EXPECT_EQ(c.effectiveThreads(), 3u);
    SimCampaign empty(0);
    EXPECT_EQ(empty.effectiveThreads(), 1u);
}

TEST(Report, JsonAndCsvCarryTheJobRecord)
{
    SimCampaign c(1);
    c.addMatrix({"gzip"}, {nspConfig(16, PredictorKind::Tage)}, kBudget);
    const auto results = c.run();

    const std::string json = driver::toJson(results);
    EXPECT_NE(json.find("\"workload\": \"gzip\""), std::string::npos);
    EXPECT_NE(json.find("\"config\": \"16-SP+Arb\""), std::string::npos);
    EXPECT_NE(json.find("\"predictor\": \"TAGE\""), std::string::npos);
    EXPECT_NE(json.find("\"ipc\": "), std::string::npos);
    EXPECT_NE(json.find("\"max_insts\": 3000"), std::string::npos);

    const std::string csv = driver::toCsv(results);
    EXPECT_NE(csv.find("workload,config,predictor"), std::string::npos);
    EXPECT_NE(csv.find("gzip,16-SP+Arb,TAGE"), std::string::npos);
    // Header plus one data row.
    EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 2);
}

TEST(Report, JsonEscapesControlCharacters)
{
    EXPECT_EQ(driver::jsonEscape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
}

TEST(Scenario, RegistryKnowsTheFigureSweeps)
{
    EXPECT_NE(driver::findScenario("fig6"), nullptr);
    EXPECT_NE(driver::findScenario("fig9"), nullptr);
    EXPECT_NE(driver::findScenario("ablation-rename"), nullptr);
    EXPECT_EQ(driver::findScenario("nope"), nullptr);
    EXPECT_GE(driver::scenarios().size(), 8u);
}

TEST(Scenario, Fig6BuildsTheFullLadderMatrix)
{
    const auto *s = driver::findScenario("fig6");
    ASSERT_NE(s, nullptr);
    const auto jobs = s->build(kBudget);
    // 12 SPECint benchmarks x 8-machine ladder would be 96; whatever
    // the workload list is, the matrix must be workload-major over the
    // 8-config ladder.
    const auto ladder = driver::figureLadder(PredictorKind::Gshare);
    ASSERT_EQ(jobs.size() % ladder.size(), 0u);
    for (std::size_t i = 0; i < ladder.size(); ++i) {
        EXPECT_EQ(jobs[i].config.name, ladder[i].name);
        EXPECT_EQ(jobs[i].workload, jobs[0].workload);
        EXPECT_EQ(jobs[i].maxInsts, kBudget);
    }
    EXPECT_NE(jobs[ladder.size()].workload, jobs[0].workload);
}

} // namespace
} // namespace msp
