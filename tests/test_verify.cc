/**
 * @file
 * Differential-verification subsystem tests: fuzzer determinism and
 * termination, clean cross-model runs, injected-fault detection (the
 * "does the oracle actually catch bugs?" property), thread-count
 * invariance of DiffCampaign, and the JSON divergence report.
 */

#include <gtest/gtest.h>

#include <set>

#include "functional/executor.hh"
#include "sim/presets.hh"
#include "verify/diff_campaign.hh"
#include "verify/fuzzer.hh"
#include "verify/oracle.hh"
#include "verify/report.hh"

namespace msp {
namespace {

using verify::DiffCampaign;
using verify::DiffOutcome;
using verify::FuzzMix;

bool
sameProgram(const Program &a, const Program &b)
{
    if (a.name != b.name || a.code.size() != b.code.size() ||
        a.initData != b.initData || a.memWords != b.memWords) {
        return false;
    }
    for (std::size_t i = 0; i < a.code.size(); ++i) {
        const Instruction &x = a.code[i];
        const Instruction &y = b.code[i];
        if (x.op != y.op || x.rd != y.rd || x.rs1 != y.rs1 ||
            x.rs2 != y.rs2 || x.imm != y.imm) {
            return false;
        }
    }
    return true;
}

TEST(Fuzzer, SameSeedIsBitIdentical)
{
    for (const FuzzMix &mix : verify::standardMixes()) {
        Program a = verify::fuzzProgram(7, mix);
        Program b = verify::fuzzProgram(7, mix);
        EXPECT_TRUE(sameProgram(a, b)) << mix.name;
    }
}

TEST(Fuzzer, DifferentSeedsDiffer)
{
    Program a = verify::fuzzProgram(1);
    Program b = verify::fuzzProgram(2);
    EXPECT_FALSE(sameProgram(a, b));
}

TEST(Fuzzer, GeneratedProgramsTerminate)
{
    // Every backward branch is a countdown loop, so any seed of any
    // mix must reach HALT well inside the safety budget.
    for (const FuzzMix &mix : verify::standardMixes()) {
        for (std::uint64_t seed = 1; seed <= 10; ++seed) {
            Program p = verify::fuzzProgram(seed, mix);
            FunctionalExecutor ref(p);
            ref.run(1u << 20);
            EXPECT_TRUE(ref.halted())
                << mix.name << " seed " << seed << " did not halt";
        }
    }
}

TEST(Fuzzer, MixedMixCoversTheIsaFeatureClasses)
{
    // Across a handful of seeds the default mix must exercise every
    // class the differential oracle is meant to stress.
    bool condBranch = false, load = false, store = false, fp = false,
         call = false, indirect = false, trap = false;
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
        Program p = verify::fuzzProgram(seed);
        for (const Instruction &in : p.code) {
            const OpInfo &oi = in.info();
            condBranch |= oi.isCondBranch;
            load |= oi.isLoad;
            store |= oi.isStore;
            fp |= oi.fu == FuClass::FpAlu;
            call |= oi.isCall;
            indirect |= oi.isIndirect;
            trap |= oi.isTrap;
        }
    }
    EXPECT_TRUE(condBranch);
    EXPECT_TRUE(load);
    EXPECT_TRUE(store);
    EXPECT_TRUE(fp);
    EXPECT_TRUE(call);
    EXPECT_TRUE(indirect);
    EXPECT_TRUE(trap);
}

TEST(Fuzzer, MixLookup)
{
    EXPECT_NE(verify::findMix("branchy"), nullptr);
    EXPECT_NE(verify::findMix("fploop"), nullptr);
    EXPECT_EQ(verify::findMix("nope"), nullptr);
    EXPECT_EQ(verify::standardMixes().size(), 4u);
}

TEST(DiffOracle, AllCoreKindsMatchTheFunctionalModel)
{
    const std::vector<MachineConfig> configs = {
        baselineConfig(PredictorKind::Gshare),
        cprConfig(PredictorKind::Gshare),
        nspConfig(16, PredictorKind::Gshare),
    };
    for (const auto &cfg : configs) {
        for (std::uint64_t seed = 11; seed <= 14; ++seed) {
            Program p = verify::fuzzProgram(seed);
            DiffOutcome out = verify::diffRun(p, cfg);
            EXPECT_TRUE(out.ok())
                << cfg.name << " seed " << seed << ": "
                << (out.divergences.empty()
                        ? ""
                        : out.divergences[0].kind + " " +
                              out.divergences[0].detail);
            EXPECT_EQ(out.committedCore, out.committedRef);
            EXPECT_GT(out.committedCore, 0u);
        }
    }
}

// The acceptance property: an intentionally injected, *silent* commit-
// path bug (applied after the internal lock-step check) must be caught
// by the external differential oracle.
TEST(DiffOracle, CatchesAnInjectedCommitFault)
{
    Program p = verify::fuzzProgram(42);
    MachineConfig cfg = nspConfig(16, PredictorKind::Gshare);
    cfg.core.commitFaultAt = 100;
    DiffOutcome out = verify::diffRun(p, cfg);
    ASSERT_FALSE(out.ok());
    // The stream hash always sees the corruption, even when a later
    // write masks it from the final-state compare.
    bool streamCaught = false;
    for (const auto &d : out.divergences)
        streamCaught |= d.kind == "stream";
    EXPECT_TRUE(streamCaught);
}

TEST(DiffOracle, FaultInjectionCatchesOnEveryCoreKind)
{
    Program p = verify::fuzzProgram(43);
    for (auto cfg : {baselineConfig(PredictorKind::Gshare),
                     cprConfig(PredictorKind::Gshare),
                     nspConfig(8, PredictorKind::Gshare)}) {
        cfg.core.commitFaultAt = 37;
        DiffOutcome out = verify::diffRun(p, cfg);
        EXPECT_FALSE(out.ok()) << cfg.name;
    }
}

TEST(DiffOracle, RefBudgetExhaustionIsReported)
{
    Program p = verify::fuzzProgram(5);
    DiffOutcome out =
        verify::diffRun(p, nspConfig(16, PredictorKind::Gshare), 50);
    ASSERT_FALSE(out.ok());
    EXPECT_EQ(out.divergences[0].kind, "ref-no-halt");
}

TEST(DiffCampaign, SweepShapeAndDistinctSeeds)
{
    DiffCampaign c(1);
    const std::vector<FuzzMix> mixes = {verify::standardMixes()[0],
                                        verify::standardMixes()[1]};
    c.addSweep(mixes, 3, 1,
               {baselineConfig(PredictorKind::Gshare),
                nspConfig(16, PredictorKind::Gshare)});
    ASSERT_EQ(c.size(), 2u * 3u * 2u);

    std::set<std::uint64_t> seeds;
    for (const auto &j : c.pending())
        seeds.insert(j.seed);
    EXPECT_EQ(seeds.size(), 6u);   // distinct per (mix, seed index)
}

TEST(DiffCampaign, ProgramsAreSharedAcrossConfigsOfOneSeed)
{
    DiffCampaign c(1);
    c.addSweep({verify::standardMixes()[0]}, 1, 1,
               {baselineConfig(PredictorKind::Gshare),
                nspConfig(16, PredictorKind::Gshare)});
    (void)c.run();
    ASSERT_EQ(c.pending().size(), 2u);
    EXPECT_EQ(c.pending()[0].program.get(), c.pending()[1].program.get());
    EXPECT_NE(c.pending()[0].program.get(), nullptr);
}

// The headline property, mirrored from SimCampaign: outcomes are
// bit-identical regardless of worker count.
TEST(DiffCampaign, ParallelRunMatchesSingleThreaded)
{
    auto sweep = [](unsigned threads) {
        DiffCampaign c(threads);
        c.addSweep({verify::standardMixes()[0],
                    verify::standardMixes()[2]},
                   4, 9,
                   {baselineConfig(PredictorKind::Gshare),
                    nspConfig(16, PredictorKind::Gshare)});
        return c.run();
    };
    const auto ref = sweep(1);
    for (unsigned threads : {2u, 4u}) {
        const auto par = sweep(threads);
        ASSERT_EQ(par.size(), ref.size());
        for (std::size_t i = 0; i < ref.size(); ++i) {
            SCOPED_TRACE(ref[i].config + "/" + ref[i].workload);
            EXPECT_EQ(par[i].streamHash, ref[i].streamHash);
            EXPECT_EQ(par[i].committedCore, ref[i].committedCore);
            EXPECT_EQ(par[i].cycles, ref[i].cycles);
            EXPECT_EQ(par[i].divergences.size(),
                      ref[i].divergences.size());
        }
    }
}

TEST(DiffCampaign, ProgressReportsEveryJobOnce)
{
    DiffCampaign c(2);
    c.addSweep({verify::standardMixes()[0]}, 3, 2,
               {nspConfig(16, PredictorKind::Gshare)});
    std::set<std::uint64_t> seen;
    std::size_t calls = 0;
    (void)c.run([&](const DiffOutcome &o, std::size_t done,
                    std::size_t total) {
        EXPECT_EQ(total, 3u);
        EXPECT_LE(done, total);
        seen.insert(o.seed);
        ++calls;
    });
    EXPECT_EQ(calls, 3u);
    EXPECT_EQ(seen.size(), 3u);
}

TEST(VerifyReport, JsonCarriesOutcomesAndDivergences)
{
    Program p = verify::fuzzProgram(42);
    MachineConfig good = nspConfig(16, PredictorKind::Gshare);
    MachineConfig bad = good;
    bad.core.commitFaultAt = 100;

    std::vector<DiffOutcome> outcomes;
    outcomes.push_back(verify::diffRun(p, good));
    outcomes.back().mix = "mixed";
    outcomes.back().seed = 42;
    outcomes.push_back(verify::diffRun(p, bad));
    outcomes.back().mix = "mixed";
    outcomes.back().seed = 42;

    EXPECT_GE(verify::countDivergences(outcomes), 1u);

    const std::string json = verify::toJson(outcomes);
    EXPECT_NE(json.find("\"jobs\": 2"), std::string::npos);
    EXPECT_NE(json.find("\"divergent\": 1"), std::string::npos);
    EXPECT_NE(json.find("\"mix\": \"mixed\""), std::string::npos);
    EXPECT_NE(json.find("\"config\": \"16-SP+Arb\""), std::string::npos);
    EXPECT_NE(json.find("\"kind\": \"stream\""), std::string::npos);
    EXPECT_NE(json.find("\"stream_hash\": "), std::string::npos);
}

} // namespace
} // namespace msp
