/**
 * @file
 * Differential-verification subsystem tests: fuzzer determinism and
 * termination, clean cross-model runs, injected-fault detection (the
 * "does the oracle actually catch bugs?" property), thread-count
 * invariance of DiffCampaign, and the JSON divergence report.
 */

#include <gtest/gtest.h>

#include <set>

#include "functional/executor.hh"
#include "sim/presets.hh"
#include "sim/spec.hh"
#include "verify/bisect.hh"
#include "verify/diff_campaign.hh"
#include "verify/fuzzer.hh"
#include "verify/oracle.hh"
#include "verify/report.hh"
#include "verify/shrink.hh"

namespace msp {
namespace {

using verify::DiffCampaign;
using verify::DiffOutcome;
using verify::FuzzMix;

bool
sameProgram(const Program &a, const Program &b)
{
    if (a.name != b.name || a.code.size() != b.code.size() ||
        a.initData != b.initData || a.memWords != b.memWords) {
        return false;
    }
    for (std::size_t i = 0; i < a.code.size(); ++i) {
        const Instruction &x = a.code[i];
        const Instruction &y = b.code[i];
        if (x.op != y.op || x.rd != y.rd || x.rs1 != y.rs1 ||
            x.rs2 != y.rs2 || x.imm != y.imm) {
            return false;
        }
    }
    return true;
}

TEST(Fuzzer, SameSeedIsBitIdentical)
{
    for (const FuzzMix &mix : verify::standardMixes()) {
        Program a = verify::fuzzProgram(7, mix);
        Program b = verify::fuzzProgram(7, mix);
        EXPECT_TRUE(sameProgram(a, b)) << mix.name;
    }
}

TEST(Fuzzer, DifferentSeedsDiffer)
{
    Program a = verify::fuzzProgram(1);
    Program b = verify::fuzzProgram(2);
    EXPECT_FALSE(sameProgram(a, b));
}

TEST(Fuzzer, GeneratedProgramsTerminate)
{
    // Every backward branch is a countdown loop, so any seed of any
    // mix must reach HALT well inside the safety budget.
    for (const FuzzMix &mix : verify::standardMixes()) {
        for (std::uint64_t seed = 1; seed <= 10; ++seed) {
            Program p = verify::fuzzProgram(seed, mix);
            FunctionalExecutor ref(p);
            ref.run(1u << 20);
            EXPECT_TRUE(ref.halted())
                << mix.name << " seed " << seed << " did not halt";
        }
    }
}

TEST(Fuzzer, MixedMixCoversTheIsaFeatureClasses)
{
    // Across a handful of seeds the default mix must exercise every
    // class the differential oracle is meant to stress.
    bool condBranch = false, load = false, store = false, fp = false,
         call = false, indirect = false, trap = false;
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
        Program p = verify::fuzzProgram(seed);
        for (const Instruction &in : p.code) {
            const OpInfo &oi = in.info();
            condBranch |= oi.isCondBranch;
            load |= oi.isLoad;
            store |= oi.isStore;
            fp |= oi.fu == FuClass::FpAlu;
            call |= oi.isCall;
            indirect |= oi.isIndirect;
            trap |= oi.isTrap;
        }
    }
    EXPECT_TRUE(condBranch);
    EXPECT_TRUE(load);
    EXPECT_TRUE(store);
    EXPECT_TRUE(fp);
    EXPECT_TRUE(call);
    EXPECT_TRUE(indirect);
    EXPECT_TRUE(trap);
}

TEST(Fuzzer, MixLookup)
{
    EXPECT_NE(verify::findMix("branchy"), nullptr);
    EXPECT_NE(verify::findMix("fploop"), nullptr);
    EXPECT_NE(verify::findMix("fpedge"), nullptr);
    EXPECT_EQ(verify::findMix("nope"), nullptr);
    EXPECT_EQ(verify::standardMixes().size(), 5u);
}

TEST(Fuzzer, FpedgeSeedsCraftedBitPatterns)
{
    const verify::FuzzMix *fpedge = verify::findMix("fpedge");
    ASSERT_NE(fpedge, nullptr);
    EXPECT_GT(fpedge->fpEdgeProb, 0.0);

    // Every seed's data image must carry several distinct crafted
    // patterns — corner cases are reached by construction, not luck.
    const auto &pats = verify::fpEdgePatterns();
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        Program p = verify::fuzzProgram(seed, *fpedge);
        std::set<std::uint64_t> found;
        for (std::uint64_t w : p.initData)
            for (std::uint64_t pat : pats)
                if (w == pat && pat != 0)
                    found.insert(w);
        EXPECT_GE(found.size(), 3u) << "seed " << seed;
    }
}

TEST(Fuzzer, FpedgeRunsCleanDifferentially)
{
    const verify::FuzzMix *fpedge = verify::findMix("fpedge");
    ASSERT_NE(fpedge, nullptr);
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
        Program p = verify::fuzzProgram(seed, *fpedge);
        verify::DiffOptions opt;
        opt.snapshotEvery = 256;
        DiffOutcome out =
            verify::diffRun(p, nspConfig(16, PredictorKind::Gshare), opt);
        EXPECT_TRUE(out.ok())
            << "seed " << seed << ": "
            << (out.divergences.empty()
                    ? ""
                    : out.divergences[0].kind + " " +
                          out.divergences[0].detail);
    }
}

// Regression for the hash asymmetry: the functional side used to feed
// raw StepResult fields while the core side zeroed non-memory fields at
// the call site. Masking now happens inside commit(), so records that
// differ only in fields meaningless for the op hash identically.
TEST(StreamHasher, StaleFieldsOfNonMemoryOpsDoNotChangeTheHash)
{
    verify::StreamHasher clean, stale;
    // An ALU op: memAddr/storeValue are don't-care.
    clean.commit(10, true, 42, false, false, 0, 0);
    stale.commit(10, true, 42, false, false, 0xdeadbeef, 0x1234);
    EXPECT_EQ(clean.h, stale.h);

    // A load: storeValue is don't-care, memAddr is not.
    verify::StreamHasher loadClean, loadStale, loadOther;
    loadClean.commit(11, true, 7, true, false, 0x40, 0);
    loadStale.commit(11, true, 7, true, false, 0x40, 0x9999);
    loadOther.commit(11, true, 7, true, false, 0x48, 0);
    EXPECT_EQ(loadClean.h, loadStale.h);
    EXPECT_NE(loadClean.h, loadOther.h);

    // A store hashes both address and data.
    verify::StreamHasher st1, st2;
    st1.commit(12, false, 0, false, true, 0x40, 5);
    st2.commit(12, false, 0, false, true, 0x40, 6);
    EXPECT_NE(st1.h, st2.h);
}

TEST(DiffOracle, AllCoreKindsMatchTheFunctionalModel)
{
    const std::vector<MachineConfig> configs = {
        baselineConfig(PredictorKind::Gshare),
        cprConfig(PredictorKind::Gshare),
        nspConfig(16, PredictorKind::Gshare),
    };
    for (const auto &cfg : configs) {
        for (std::uint64_t seed = 11; seed <= 14; ++seed) {
            Program p = verify::fuzzProgram(seed);
            DiffOutcome out = verify::diffRun(p, cfg);
            EXPECT_TRUE(out.ok())
                << cfg.name << " seed " << seed << ": "
                << (out.divergences.empty()
                        ? ""
                        : out.divergences[0].kind + " " +
                              out.divergences[0].detail);
            EXPECT_EQ(out.committedCore, out.committedRef);
            EXPECT_GT(out.committedCore, 0u);
        }
    }
}

// The acceptance property: an intentionally injected, *silent* commit-
// path bug (applied after the internal lock-step check) must be caught
// by the external differential oracle.
TEST(DiffOracle, CatchesAnInjectedCommitFault)
{
    Program p = verify::fuzzProgram(42);
    MachineConfig cfg = nspConfig(16, PredictorKind::Gshare);
    cfg.core.commitFaultAt = 100;
    DiffOutcome out = verify::diffRun(p, cfg);
    ASSERT_FALSE(out.ok());
    // The stream hash always sees the corruption, even when a later
    // write masks it from the final-state compare.
    bool streamCaught = false;
    for (const auto &d : out.divergences)
        streamCaught |= d.kind == "stream";
    EXPECT_TRUE(streamCaught);
}

TEST(DiffOracle, FaultInjectionCatchesOnEveryCoreKind)
{
    Program p = verify::fuzzProgram(43);
    for (auto cfg : {baselineConfig(PredictorKind::Gshare),
                     cprConfig(PredictorKind::Gshare),
                     nspConfig(8, PredictorKind::Gshare)}) {
        cfg.core.commitFaultAt = 37;
        DiffOutcome out = verify::diffRun(p, cfg);
        EXPECT_FALSE(out.ok()) << cfg.name;
    }
}

TEST(DiffOracle, SnapshotCompareIsCleanOnCorrectCores)
{
    // Mid-run compares must never false-positive on a correct core.
    for (const auto &cfg : {baselineConfig(PredictorKind::Gshare),
                            cprConfig(PredictorKind::Gshare),
                            nspConfig(16, PredictorKind::Gshare)}) {
        Program p = verify::fuzzProgram(21);
        verify::DiffOptions opt;
        opt.snapshotEvery = 128;
        DiffOutcome out = verify::diffRun(p, cfg, opt);
        EXPECT_TRUE(out.ok()) << cfg.name;
        EXPECT_FALSE(out.localized) << cfg.name;
        EXPECT_EQ(out.snapshotEvery, 128u);
    }
}

// The tentpole property: snapshot compare pins an injected fault to a
// commit window no wider than the snapshot cadence, instead of "the
// whole ~6k-instruction run diverged somewhere".
TEST(DiffOracle, SnapshotCompareLocalizesAnInjectedFault)
{
    constexpr std::uint64_t cadence = 64;
    Program p = verify::fuzzProgram(42);
    MachineConfig cfg = nspConfig(16, PredictorKind::Gshare);
    cfg.core.commitFaultAt = 100;   // Nth reg-writing commit

    verify::DiffOptions opt;
    opt.snapshotEvery = cadence;
    DiffOutcome out = verify::diffRun(p, cfg, opt);
    ASSERT_FALSE(out.ok());
    ASSERT_TRUE(out.localized);
    EXPECT_LE(out.badWindowHi - out.badWindowLo, cadence);
    // The corrupted commit is the 100th register write, so it cannot
    // sit below commit index 100: the window must end past it...
    EXPECT_GE(out.badWindowHi, 100u);
    // ...and a correctly-localizing window starts well under the full
    // run length.
    EXPECT_LT(out.badWindowLo, out.committedRef);
    bool snapshotKind = false;
    for (const auto &d : out.divergences)
        snapshotKind |= d.kind == "snapshot";
    EXPECT_TRUE(snapshotKind);
}

// A commit bypassing the observer tap used to abort the whole campaign
// process via msp_assert, contradicting the module contract that
// divergences surface as reports. It must now be an "observer-count"
// divergence.
TEST(DiffOracle, DroppedObserverCallbackIsReportedNotFatal)
{
    Program p = verify::fuzzProgram(42);
    MachineConfig cfg = nspConfig(16, PredictorKind::Gshare);
    cfg.core.observerFaultAt = 50;
    DiffOutcome out = verify::diffRun(p, cfg);
    ASSERT_FALSE(out.ok());
    bool counted = false;
    for (const auto &d : out.divergences)
        counted |= d.kind == "observer-count";
    EXPECT_TRUE(counted);
}

TEST(DiffOracle, RefBudgetExhaustionIsReported)
{
    Program p = verify::fuzzProgram(5);
    DiffOutcome out =
        verify::diffRun(p, nspConfig(16, PredictorKind::Gshare), 50);
    ASSERT_FALSE(out.ok());
    EXPECT_EQ(out.divergences[0].kind, "ref-no-halt");
}

TEST(DiffCampaign, SweepShapeAndDistinctSeeds)
{
    DiffCampaign c(1);
    const std::vector<FuzzMix> mixes = {verify::standardMixes()[0],
                                        verify::standardMixes()[1]};
    c.addSweep(mixes, 3, 1,
               {baselineConfig(PredictorKind::Gshare),
                nspConfig(16, PredictorKind::Gshare)});
    ASSERT_EQ(c.size(), 2u * 3u * 2u);

    std::set<std::uint64_t> seeds;
    for (const auto &j : c.pending())
        seeds.insert(j.seed);
    EXPECT_EQ(seeds.size(), 6u);   // distinct per (mix, seed index)
}

TEST(DiffCampaign, ProgramsAreSharedAcrossConfigsOfOneSeed)
{
    DiffCampaign c(1);
    c.addSweep({verify::standardMixes()[0]}, 1, 1,
               {baselineConfig(PredictorKind::Gshare),
                nspConfig(16, PredictorKind::Gshare)});
    (void)c.run();
    ASSERT_EQ(c.pending().size(), 2u);
    EXPECT_EQ(c.pending()[0].program.get(), c.pending()[1].program.get());
    EXPECT_NE(c.pending()[0].program.get(), nullptr);
}

// The headline property, mirrored from SimCampaign: outcomes are
// bit-identical regardless of worker count.
TEST(DiffCampaign, ParallelRunMatchesSingleThreaded)
{
    auto sweep = [](unsigned threads) {
        DiffCampaign c(threads);
        c.addSweep({verify::standardMixes()[0],
                    verify::standardMixes()[2]},
                   4, 9,
                   {baselineConfig(PredictorKind::Gshare),
                    nspConfig(16, PredictorKind::Gshare)});
        return c.run();
    };
    const auto ref = sweep(1);
    for (unsigned threads : {2u, 4u}) {
        const auto par = sweep(threads);
        ASSERT_EQ(par.size(), ref.size());
        for (std::size_t i = 0; i < ref.size(); ++i) {
            SCOPED_TRACE(ref[i].config + "/" + ref[i].workload);
            EXPECT_EQ(par[i].streamHash, ref[i].streamHash);
            EXPECT_EQ(par[i].committedCore, ref[i].committedCore);
            EXPECT_EQ(par[i].cycles, ref[i].cycles);
            EXPECT_EQ(par[i].divergences.size(),
                      ref[i].divergences.size());
        }
    }
}

TEST(DiffCampaign, ProgressReportsEveryJobOnce)
{
    DiffCampaign c(2);
    c.addSweep({verify::standardMixes()[0]}, 3, 2,
               {nspConfig(16, PredictorKind::Gshare)});
    std::set<std::uint64_t> seen;
    std::size_t calls = 0;
    (void)c.run([&](const DiffOutcome &o, std::size_t done,
                    std::size_t total) {
        EXPECT_EQ(total, 3u);
        EXPECT_LE(done, total);
        seen.insert(o.seed);
        ++calls;
    });
    EXPECT_EQ(calls, 3u);
    EXPECT_EQ(seen.size(), 3u);
}

TEST(DiffCampaign, FailFastSkipsAfterTheFirstDivergence)
{
    MachineConfig bad = nspConfig(16, PredictorKind::Gshare);
    bad.core.commitFaultAt = 50;   // every job diverges

    DiffCampaign c(1);             // deterministic in-order execution
    c.addSweep({verify::standardMixes()[0]}, 4, 1, {bad});
    c.setFailFast(true);
    const auto outcomes = c.run();
    ASSERT_EQ(outcomes.size(), 4u);
    EXPECT_FALSE(outcomes[0].ok());
    EXPECT_FALSE(outcomes[0].skipped);
    for (std::size_t i = 1; i < outcomes.size(); ++i) {
        EXPECT_TRUE(outcomes[i].skipped) << i;
        EXPECT_TRUE(outcomes[i].ok()) << i;
    }
    EXPECT_EQ(verify::countSkipped(outcomes), 3u);
}

TEST(DiffCampaign, ExhaustedBudgetSkipsEverything)
{
    DiffCampaign c(1);
    c.addSweep({verify::standardMixes()[0]}, 3, 1,
               {nspConfig(16, PredictorKind::Gshare)});
    c.setBudgetSec(1e-9);          // expires before the first job starts
    const auto outcomes = c.run();
    ASSERT_EQ(outcomes.size(), 3u);
    for (const auto &o : outcomes) {
        EXPECT_TRUE(o.skipped);
        EXPECT_TRUE(o.ok());
    }
    // Skipped jobs still carry their identity for the report.
    EXPECT_EQ(outcomes[0].config, "16-SP+Arb");
    EXPECT_NE(outcomes[0].seed, 0u);
}

TEST(DiffCampaign, SnapshotEveryIsAppliedToEveryJob)
{
    DiffCampaign c(1);
    c.addSweep({verify::standardMixes()[0]}, 2, 1,
               {nspConfig(16, PredictorKind::Gshare)});
    c.setSnapshotEvery(128);
    for (const auto &j : c.pending())
        EXPECT_EQ(j.snapshotEvery, 128u);
    const auto outcomes = c.run();
    for (const auto &o : outcomes) {
        EXPECT_TRUE(o.ok());
        EXPECT_EQ(o.snapshotEvery, 128u);
    }
}

// The shrinking acceptance property: from a diverging job, the shrinker
// must emit a reproducing program strictly smaller than the original
// that replays to the same divergence kind.
TEST(Shrink, EmitsAStrictlySmallerReproducerOfTheSameKind)
{
    verify::DiffJob job;
    job.mix = verify::standardMixes()[0];
    job.seed = 42;
    job.config = nspConfig(16, PredictorKind::Gshare);
    job.config.core.commitFaultAt = 100;
    job.snapshotEvery = 64;

    Program p = verify::fuzzProgram(job.seed, job.mix);
    verify::DiffOptions dopt;
    dopt.snapshotEvery = job.snapshotEvery;
    const DiffOutcome orig = verify::diffRun(p, job.config, dopt);
    ASSERT_FALSE(orig.ok());

    const verify::ShrinkResult res = verify::shrinkDivergence(job, orig);
    EXPECT_TRUE(res.reproduced);
    EXPECT_TRUE(res.shrunk);
    EXPECT_LT(res.shrunkDynamic, res.origDynamic);
    EXPECT_GT(res.attempts, 1u);
    EXPECT_FALSE(res.repro.kind.empty());
    // The injected fault makes this config deliberately *not*
    // CLI-reachable, so no preset may be recorded — replaying "16sp"
    // would show clean and the repro would lie.
    EXPECT_EQ(res.repro.preset, "");
    EXPECT_EQ(verify::shrinkDivergence(
                  [&] {
                      verify::DiffJob clean = job;
                      clean.config = nspConfig(16, PredictorKind::Gshare);
                      return clean;
                  }(),
                  orig)
                  .repro.preset,
              "16sp");

    // The recorded kind is one the original run reported...
    bool inOrig = false;
    for (const auto &d : orig.divergences)
        inOrig |= d.kind == res.repro.kind;
    EXPECT_TRUE(inOrig);

    // ...and regenerating the program from (seed, shrunk mix) replays
    // to that same kind deterministically.
    Program small = verify::fuzzProgram(res.repro.seed, res.repro.mix);
    EXPECT_LT(small.code.size(), p.code.size());
    const DiffOutcome replay = verify::diffRun(small, job.config, dopt);
    bool sameKind = false;
    for (const auto &d : replay.divergences)
        sameKind |= d.kind == res.repro.kind;
    EXPECT_TRUE(sameKind);

    // The fault still fires in the shrunk program, so its dynamic
    // length cannot go below the fault's commit index.
    EXPECT_GE(res.shrunkDynamic, 100u);
}

TEST(Shrink, NonReproducingDivergenceIsReportedAsSuch)
{
    // A clean job handed to the shrinker (as if the divergence were a
    // one-off of a flaky host) must come back reproduced=false rather
    // than looping.
    verify::DiffJob job;
    job.mix = verify::standardMixes()[0];
    job.seed = 7;
    job.config = nspConfig(16, PredictorKind::Gshare);

    DiffOutcome fake;
    fake.divergences.push_back({"stream", "synthetic"});
    const verify::ShrinkResult res = verify::shrinkDivergence(job, fake);
    EXPECT_FALSE(res.reproduced);
    EXPECT_FALSE(res.shrunk);
    EXPECT_EQ(res.attempts, 1u);
}

TEST(Shrink, ShrinkFailuresSelectsOnlyShrinkableOutcomes)
{
    MachineConfig good = nspConfig(16, PredictorKind::Gshare);
    MachineConfig bad = good;
    bad.core.commitFaultAt = 60;

    std::vector<verify::DiffJob> jobs(3);
    for (auto &j : jobs) {
        j.mix = verify::standardMixes()[0];
        j.seed = 42;
        j.config = good;
    }
    jobs[1].config = bad;

    std::vector<DiffOutcome> outcomes(3);
    Program p = verify::fuzzProgram(42, jobs[0].mix);
    outcomes[0] = verify::diffRun(p, jobs[0].config);   // clean
    outcomes[1] = verify::diffRun(p, jobs[1].config);   // divergent
    outcomes[2].skipped = true;                         // never ran

    std::size_t calls = 0;
    const auto results = verify::shrinkFailures(
        jobs, outcomes, verify::ShrinkOptions{},
        [&](const verify::ShrinkResult &, std::size_t done,
            std::size_t total) {
            ++calls;
            EXPECT_EQ(total, 1u);
            EXPECT_LE(done, total);
        });
    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(calls, 1u);
    EXPECT_TRUE(results[0].reproduced);
}

TEST(Shrink, ExpiredBudgetMarksRemainingJobsTimedOutInsteadOfDropping)
{
    // The wall-clock budget is one deadline across every failing job,
    // not a fresh grant per job. An expired budget used to silently
    // *drop* the remaining failing jobs from the result list — a
    // partial triage pass that read as a complete one. Every failing
    // job must now come back, the unreached ones carrying
    // timedOut=true plus their full repro identity.
    MachineConfig bad = nspConfig(16, PredictorKind::Gshare);
    bad.core.commitFaultAt = 60;

    std::vector<verify::DiffJob> jobs(2);
    for (auto &j : jobs) {
        j.mix = verify::standardMixes()[0];
        j.seed = 42;
        j.config = bad;
    }
    Program p = verify::fuzzProgram(42, jobs[0].mix);
    std::vector<DiffOutcome> outcomes(2);
    outcomes[0] = verify::diffRun(p, bad);
    outcomes[1] = outcomes[0];
    ASSERT_FALSE(outcomes[0].ok());

    verify::ShrinkOptions sopt;
    sopt.budgetSec = 1e-9;
    std::size_t progressCalls = 0;
    const auto results = verify::shrinkFailures(
        jobs, outcomes, sopt,
        [&](const verify::ShrinkResult &, std::size_t, std::size_t total) {
            ++progressCalls;
            EXPECT_EQ(total, 2u);
        });
    ASSERT_EQ(results.size(), 2u);
    EXPECT_EQ(progressCalls, 2u);
    for (std::size_t i = 0; i < results.size(); ++i) {
        const verify::ShrinkResult &r = results[i];
        EXPECT_TRUE(r.timedOut) << i;
        EXPECT_FALSE(r.shrunk) << i;
        EXPECT_EQ(r.jobIndex, i);
        // Identity survives so the report still names the failure.
        EXPECT_EQ(r.repro.seed, 42u);
        EXPECT_TRUE(r.repro.hasMachine);
        EXPECT_TRUE(sameSpec(r.repro.machine, bad));
        EXPECT_FALSE(r.repro.kind.empty());
    }

    // The report surfaces the count and flags each entry.
    const std::string json = verify::toJson(outcomes, results);
    EXPECT_NE(json.find("\"shrink_timed_out\": 2"), std::string::npos);
    EXPECT_NE(json.find("\"timed_out\": true"), std::string::npos);
}

TEST(VerifyReport, ReproRoundTripsThroughJson)
{
    verify::DiffJob job;
    job.mix = verify::standardMixes()[0];
    job.seed = 42;
    job.config = nspConfig(16, PredictorKind::Gshare);
    job.config.core.commitFaultAt = 100;

    Program p = verify::fuzzProgram(job.seed, job.mix);
    const DiffOutcome orig = verify::diffRun(p, job.config);
    ASSERT_FALSE(orig.ok());
    verify::ShrinkOptions sopt;
    sopt.maxAttempts = 8;   // a partial shrink round-trips just as well
    const verify::ShrinkResult res =
        verify::shrinkDivergence(job, orig, sopt);
    ASSERT_TRUE(res.reproduced);

    const std::string json = verify::toJson({orig}, {res});
    EXPECT_NE(json.find("\"repros\": ["), std::string::npos);

    const auto specs = verify::parseRepros(json);
    ASSERT_EQ(specs.size(), 1u);
    const verify::ReproSpec &spec = specs[0];
    EXPECT_EQ(spec.seed, res.repro.seed);
    // Fault-injected configs match no preset, so the cosmetic label is
    // empty — but the complete machine spec round-trips regardless.
    EXPECT_EQ(spec.preset, "");
    EXPECT_EQ(spec.predictor, "gshare");
    ASSERT_TRUE(spec.hasMachine);
    EXPECT_TRUE(sameSpec(spec.machine, job.config));
    EXPECT_EQ(spec.machine.core.commitFaultAt, 100u);
    EXPECT_EQ(spec.kind, res.repro.kind);
    EXPECT_EQ(spec.mix.name, res.repro.mix.name);
    EXPECT_EQ(spec.mix.targetDynamic, res.repro.mix.targetDynamic);
    EXPECT_EQ(spec.mix.blocksMax, res.repro.mix.blocksMax);
    EXPECT_EQ(spec.mix.segMax, res.repro.mix.segMax);
    EXPECT_EQ(spec.mix.tripMax, res.repro.mix.tripMax);
    EXPECT_EQ(spec.mix.memWords, res.repro.mix.memWords);
    EXPECT_DOUBLE_EQ(spec.mix.loopProb, res.repro.mix.loopProb);
    EXPECT_DOUBLE_EQ(spec.mix.weights.fp, res.repro.mix.weights.fp);
    EXPECT_DOUBLE_EQ(spec.mix.fpEdgeProb, res.repro.mix.fpEdgeProb);

    // The parsed spec regenerates a byte-identical program: replaying
    // it on the same (faulty) machine reproduces the divergence.
    Program replayProg = verify::fuzzProgram(spec.seed, spec.mix);
    EXPECT_TRUE(sameProgram(
        replayProg, verify::fuzzProgram(res.repro.seed, res.repro.mix)));
    const DiffOutcome replay = verify::diffRun(replayProg, job.config);
    bool sameKind = false;
    for (const auto &d : replay.divergences)
        sameKind |= d.kind == spec.kind;
    EXPECT_TRUE(sameKind);
}

TEST(VerifyReport, ParseReprosToleratesForeignDocuments)
{
    EXPECT_TRUE(verify::parseRepros("").empty());
    EXPECT_TRUE(verify::parseRepros("{\"jobs\": []}").empty());
    EXPECT_TRUE(verify::parseRepros("{\"verify\": {\"repros\": []}}")
                    .empty());
}

TEST(VerifyReport, ParseReprosFallsBackToPresetForLegacyDocuments)
{
    // Pre-spec reports carried only the preset label; they still parse
    // (hasMachine=false) and the CLI replays them through the preset.
    const std::string legacy =
        "{\"verify\": {\"repros\": [{\"kind\": \"stream\", \"seed\": 9, "
        "\"preset\": \"16sp\", \"predictor\": \"tage\", "
        "\"max_insts\": 4096}]}}";
    const auto specs = verify::parseRepros(legacy);
    ASSERT_EQ(specs.size(), 1u);
    EXPECT_FALSE(specs[0].hasMachine);
    EXPECT_EQ(specs[0].preset, "16sp");
    EXPECT_EQ(specs[0].predictor, "tage");
}

TEST(VerifyReport, ParseReprosErrorsLoudlyOnUnparseableMachineSpecs)
{
    // A corrupt machine spec must throw (the CLI turns this into exit
    // 2), never silently fall back to the preset label: that could
    // replay a different machine and read as "fixed".
    const std::string unknownKey =
        "{\"verify\": {\"repros\": [{\"kind\": \"stream\", \"seed\": 1, "
        "\"preset\": \"16sp\", \"machine\": {\"bogus.knob\": 3}}]}}";
    EXPECT_THROW(verify::parseRepros(unknownKey), SpecError);

    const std::string badRange =
        "{\"verify\": {\"repros\": [{\"kind\": \"stream\", \"seed\": 1, "
        "\"machine\": {\"width.fetch\": 0}}]}}";
    EXPECT_THROW(verify::parseRepros(badRange), SpecError);
}

// The acceptance property of the MachineSpec redesign: a divergence
// recorded on a machine *no preset can name* — a custom ablation
// config with an injected commit fault — round-trips through the JSON
// report and replays to the identical divergence kind and bad_window.
TEST(VerifyReport, CustomAblationMachineRoundTripsAndReplays)
{
    verify::DiffJob job;
    job.mix = verify::standardMixes()[0];
    job.seed = 42;
    job.snapshotEvery = 64;
    // An ablation-style machine: a 16-SP with a halved IQ, extra LCS
    // latency and a silent commit fault. presetNameFor has no name for
    // it; before the spec API this was unreplayable by design.
    job.config = nspConfig(16, PredictorKind::Gshare);
    job.config.core.iqSize = 96;
    job.config.core.lcsLatency = 2;
    job.config.core.commitFaultAt = 100;
    job.config.name = describeSpec(job.config);
    ASSERT_EQ(presetNameFor(job.config), "");

    Program p = verify::fuzzProgram(job.seed, job.mix);
    verify::DiffOptions dopt;
    dopt.snapshotEvery = job.snapshotEvery;
    const DiffOutcome orig = verify::diffRun(p, job.config, dopt);
    ASSERT_FALSE(orig.ok());
    ASSERT_TRUE(orig.localized);

    verify::ShrinkOptions sopt;
    sopt.maxAttempts = 8;
    const verify::ShrinkResult res =
        verify::shrinkDivergence(job, orig, sopt);
    ASSERT_TRUE(res.reproduced);

    // Through the report and back: the spec survives verbatim.
    const auto specs =
        verify::parseRepros(verify::toJson({orig}, {res}));
    ASSERT_EQ(specs.size(), 1u);
    const verify::ReproSpec &spec = specs[0];
    ASSERT_TRUE(spec.hasMachine);
    EXPECT_TRUE(sameSpec(spec.machine, job.config));
    EXPECT_EQ(spec.preset, "");
    EXPECT_EQ(spec.snapshotEvery, 64u);

    // Replaying the parsed spec (program, machine and options all
    // rebuilt from the report alone) reproduces the recorded outcome
    // exactly: same divergence kind, same localised bad_window.
    Program replayProg = verify::fuzzProgram(spec.seed, spec.mix);
    verify::DiffOptions ropt;
    ropt.maxInsts = spec.maxInsts;
    ropt.snapshotEvery = spec.snapshotEvery;
    const DiffOutcome replay =
        verify::diffRun(replayProg, spec.machine, ropt);
    ASSERT_FALSE(replay.ok());
    bool sameKind = false;
    for (const auto &d : replay.divergences)
        sameKind |= d.kind == spec.kind;
    EXPECT_TRUE(sameKind);
    EXPECT_EQ(replay.localized, res.outcome.localized);
    EXPECT_EQ(replay.badWindowLo, res.outcome.badWindowLo);
    EXPECT_EQ(replay.badWindowHi, res.outcome.badWindowHi);
    EXPECT_EQ(replay.streamHash, res.outcome.streamHash);
}

TEST(TimingInvariant, FlagsAnIdealMspSlowerThanSixteenSp)
{
    // Forged outcomes: the ideal MSP comes back slower than 16-SP on
    // the same fuzzed program — the invariant must flag exactly that
    // pair and attach a "timing" divergence to the ideal outcome.
    std::vector<verify::DiffJob> jobs(3);
    jobs[0].mix.name = "mixed";
    jobs[0].seed = 7;
    jobs[0].config = idealMspConfig(PredictorKind::Gshare);
    jobs[1].mix.name = "mixed";
    jobs[1].seed = 7;
    jobs[1].config = nspConfig(16, PredictorKind::Gshare);
    jobs[2].mix.name = "mixed";
    jobs[2].seed = 8;                       // different program: no pair
    jobs[2].config = nspConfig(16, PredictorKind::Gshare);

    std::vector<DiffOutcome> outcomes(3);
    for (std::size_t i = 0; i < 3; ++i) {
        outcomes[i].config = jobs[i].config.name;
        outcomes[i].committedCore = 6000;
    }
    outcomes[0].cycles = 4000;              // ideal IPC 1.5
    outcomes[1].cycles = 3000;              // 16-SP IPC 2.0: violation
    outcomes[2].cycles = 1000;

    EXPECT_EQ(verify::applyTimingInvariant(jobs, outcomes), 1u);
    ASSERT_EQ(outcomes[0].divergences.size(), 1u);
    EXPECT_EQ(outcomes[0].divergences[0].kind, "timing");
    EXPECT_TRUE(outcomes[1].ok());
    EXPECT_TRUE(outcomes[2].ok());

    // Within the coarse slack, no violation: predictor-timing noise
    // between the two frontends is not a regression.
    outcomes[0].divergences.clear();
    outcomes[0].cycles = 3300;              // ~9% slower than 16-SP
    EXPECT_EQ(verify::applyTimingInvariant(jobs, outcomes), 0u);

    // Tiny programs are skipped: one extra mispredict swings their
    // IPC far past any sensible slack.
    outcomes[0].cycles = 4000;
    outcomes[0].committedCore = outcomes[1].committedCore = 500;
    EXPECT_EQ(verify::applyTimingInvariant(jobs, outcomes), 0u);
    outcomes[0].committedCore = outcomes[1].committedCore = 6000;

    // Skipped or already-divergent outcomes never pair up.
    outcomes[1].skipped = true;
    EXPECT_EQ(verify::applyTimingInvariant(jobs, outcomes), 0u);
    outcomes[1].skipped = false;

    // A custom ablation of the ideal machine (--set degrading it)
    // gives up resource dominance on purpose: only the *exact* ideal
    // preset pairs up, so no spurious violation.
    jobs[0].config.core.issueWidth = 1;
    EXPECT_EQ(verify::applyTimingInvariant(jobs, outcomes), 0u);
}

TEST(TimingInvariant, HoldsOnRealCleanRuns)
{
    // The invariant the paper's resource argument implies: on real
    // fuzzed programs the ideal MSP (infinite banks/SQ, 0-cycle LCS,
    // full ports) dominates the finite 16-SP machine.
    verify::DiffCampaign c(1);
    c.addSweep({verify::standardMixes()[0]}, 2, 1,
               {nspConfig(16, PredictorKind::Gshare),
                idealMspConfig(PredictorKind::Gshare)});
    auto outcomes = c.run();
    for (const auto &o : outcomes)
        ASSERT_TRUE(o.ok());
    EXPECT_EQ(verify::applyTimingInvariant(c.pending(), outcomes), 0u);
}

/**
 * 1-based commit-stream index of the Nth register-writing instruction
 * of @p p — the stream position where CoreParams::commitFaultAt = N
 * plants its corruption.
 */
std::uint64_t
faultStreamIndex(const Program &p, std::uint64_t nthRegWrite)
{
    FunctionalExecutor ref(p);
    std::uint64_t regWrites = 0;
    while (!ref.halted()) {
        const StepResult sr = ref.step();
        if (sr.wroteReg && ++regWrites == nthRegWrite)
            return ref.instCount();
    }
    return 0;
}

// The tentpole property: bisection closes the gap from "a window no
// wider than the cadence" to "exactly this commit".
TEST(Bisect, PinsAnInjectedFaultToItsExactCommit)
{
    Program p = verify::fuzzProgram(42);
    MachineConfig cfg = nspConfig(16, PredictorKind::Gshare);
    cfg.core.commitFaultAt = 100;
    const std::uint64_t expected = faultStreamIndex(p, 100);
    ASSERT_GT(expected, 0u);

    verify::DiffOptions dopt;
    dopt.snapshotEvery = 256;
    const DiffOutcome orig = verify::diffRun(p, cfg, dopt);
    ASSERT_FALSE(orig.ok());
    ASSERT_TRUE(orig.localized);
    // The cadence window brackets the fault but does not pin it.
    ASSERT_GT(orig.badWindowHi - orig.badWindowLo, 1u);

    const verify::BisectResult b =
        verify::bisectFirstBadCommit(p, cfg, orig, dopt);
    EXPECT_TRUE(b.exact);
    EXPECT_EQ(b.firstBadCommit, expected);
    EXPECT_EQ(b.windowHi, b.windowLo + 1);
    EXPECT_GT(b.probes, 0u);
    // ceil(log2(window)) probes suffice; 256-wide window -> <= 8.
    EXPECT_LE(b.probes, 9u);
    EXPECT_TRUE(b.outcome.exactLocalized);
    EXPECT_EQ(b.outcome.firstBadCommit, expected);
    // The probe window the search converged to is inside the original.
    EXPECT_GE(b.firstBadCommit, orig.badWindowLo);
    EXPECT_LE(b.firstBadCommit, orig.badWindowHi);
}

TEST(Bisect, PrepassRecoversAWindowWhenSnapshotsWereOff)
{
    // A campaign run without --snapshot-every carries no bad window;
    // the bisection pre-pass re-runs with a coarse cadence first and
    // still converges to the same exact commit.
    Program p = verify::fuzzProgram(42);
    MachineConfig cfg = nspConfig(16, PredictorKind::Gshare);
    cfg.core.commitFaultAt = 100;
    const std::uint64_t expected = faultStreamIndex(p, 100);

    verify::DiffOptions dopt;   // no snapshots
    const DiffOutcome orig = verify::diffRun(p, cfg, dopt);
    ASSERT_FALSE(orig.ok());
    ASSERT_FALSE(orig.localized);

    const verify::BisectResult b =
        verify::bisectFirstBadCommit(p, cfg, orig, dopt);
    EXPECT_TRUE(b.exact);
    EXPECT_EQ(b.firstBadCommit, expected);
}

TEST(Bisect, CleanPrefixDivergenceComesBackInexact)
{
    // A divergence with no mid-run signature (forged: the outcome says
    // "divergent" but the machine is actually clean, so every probe
    // compares equal) must come back exact=false, not loop or lie.
    Program p = verify::fuzzProgram(7);
    MachineConfig cfg = nspConfig(16, PredictorKind::Gshare);
    verify::DiffOptions dopt;
    DiffOutcome fake = verify::diffRun(p, cfg, dopt);
    ASSERT_TRUE(fake.ok());
    fake.divergences.push_back({"commit-count", "synthetic"});

    const verify::BisectResult b =
        verify::bisectFirstBadCommit(p, cfg, fake, dopt);
    EXPECT_FALSE(b.exact);
    EXPECT_EQ(b.firstBadCommit, 0u);
}

// The full two-tier pipeline through shrinkDivergence: mix shrink,
// then exact bisection, then structural reduction — and the strict
// ordering the acceptance criterion demands: reduced < mix-shrunk.
TEST(Shrink, TierTwoBisectsAndTierThreeReducesBelowTheMixShrunkProgram)
{
    verify::DiffJob job;
    job.mix = verify::standardMixes()[0];
    job.seed = 42;
    job.config = nspConfig(16, PredictorKind::Gshare);
    job.config.core.commitFaultAt = 100;
    job.snapshotEvery = 64;

    Program p = verify::fuzzProgram(job.seed, job.mix);
    const std::uint64_t expected = faultStreamIndex(p, 100);
    verify::DiffOptions dopt;
    dopt.snapshotEvery = job.snapshotEvery;
    const DiffOutcome orig = verify::diffRun(p, job.config, dopt);
    ASSERT_FALSE(orig.ok());

    verify::ShrinkOptions sopt;
    sopt.bisectExact = true;
    sopt.reduce = true;
    const verify::ShrinkResult res =
        verify::shrinkDivergence(job, orig, sopt);
    ASSERT_TRUE(res.reproduced);
    EXPECT_FALSE(res.timedOut);

    // Tier 2: the exact first bad commit, against the original job.
    EXPECT_TRUE(res.exactBisected);
    EXPECT_EQ(res.firstBadCommit, expected);
    EXPECT_GT(res.bisectProbes, 0u);

    // Tier 3: strictly smaller than the mix-shrunk program, same kind.
    EXPECT_TRUE(res.reduced);
    ASSERT_NE(res.repro.program, nullptr);
    EXPECT_LT(res.reducedStatic, res.shrunkStatic);
    EXPECT_EQ(res.repro.program->code.size(), res.reducedStatic);

    // The repro's own first_bad_commit indexes the *replay* program —
    // the embedded reduced image — where the fault is still the 100th
    // register-writing commit.
    EXPECT_EQ(res.repro.firstBadCommit,
              faultStreamIndex(*res.repro.program, 100));
    EXPECT_LE(res.repro.firstBadCommit, res.reducedDynamic);

    // The reduced image still honours the termination guarantee...
    FunctionalExecutor ref(*res.repro.program);
    ref.run(1u << 20);
    EXPECT_TRUE(ref.halted());

    // ...and replays to the recorded kind with the recorded stream.
    const DiffOutcome replay =
        verify::diffRun(*res.repro.program, job.config, dopt);
    bool sameKind = false;
    for (const auto &d : replay.divergences)
        sameKind |= d.kind == res.repro.kind;
    EXPECT_TRUE(sameKind);
    EXPECT_EQ(replay.streamHash, res.outcome.streamHash);
}

TEST(VerifyReport, FirstBadCommitAndReducedProgramRoundTripThroughJson)
{
    verify::DiffJob job;
    job.mix = verify::standardMixes()[0];
    job.seed = 42;
    job.config = nspConfig(16, PredictorKind::Gshare);
    job.config.core.commitFaultAt = 100;
    job.snapshotEvery = 64;

    Program p = verify::fuzzProgram(job.seed, job.mix);
    verify::DiffOptions dopt;
    dopt.snapshotEvery = job.snapshotEvery;
    std::vector<DiffOutcome> outcomes = {
        verify::diffRun(p, job.config, dopt)};
    ASSERT_FALSE(outcomes[0].ok());

    verify::ShrinkOptions sopt;
    sopt.bisectExact = true;
    sopt.reduce = true;
    const std::vector<verify::ShrinkResult> shrinks =
        verify::shrinkFailures({job}, outcomes, sopt);
    ASSERT_EQ(shrinks.size(), 1u);
    const verify::ShrinkResult &res = shrinks[0];
    ASSERT_TRUE(res.exactBisected);
    ASSERT_TRUE(res.reduced);
    ASSERT_NE(res.repro.program, nullptr);

    // shrinkFailures writes the exact localisation back onto the
    // job's own outcome, so the result row carries it too.
    EXPECT_TRUE(outcomes[0].exactLocalized);
    EXPECT_EQ(outcomes[0].firstBadCommit, res.firstBadCommit);

    const std::string json = verify::toJson(outcomes, shrinks);
    EXPECT_NE(json.find("\"first_bad_commit\": "), std::string::npos);
    EXPECT_NE(json.find("\"reduced\": true"), std::string::npos);
    EXPECT_NE(json.find("\"program\": {"), std::string::npos);

    const auto specs = verify::parseRepros(json);
    ASSERT_EQ(specs.size(), 1u);
    const verify::ReproSpec &spec = specs[0];
    // The repro-level index (valid for the embedded replay program)
    // round-trips; the job-level index lives on the result row.
    EXPECT_EQ(spec.firstBadCommit, res.repro.firstBadCommit);
    EXPECT_GT(spec.firstBadCommit, 0u);
    ASSERT_NE(spec.program, nullptr);
    EXPECT_TRUE(sameProgram(*spec.program, *res.repro.program));
    ASSERT_TRUE(spec.hasMachine);
    EXPECT_TRUE(sameSpec(spec.machine, job.config));

    // Replaying the parsed embedded program is bit-identical to the
    // recorded reduction outcome: same kind, same stream hash.
    verify::DiffOptions ropt;
    ropt.maxInsts = spec.maxInsts;
    ropt.snapshotEvery = spec.snapshotEvery;
    const DiffOutcome replay =
        verify::diffRun(*spec.program, spec.machine, ropt);
    ASSERT_FALSE(replay.ok());
    bool sameKind = false;
    for (const auto &d : replay.divergences)
        sameKind |= d.kind == spec.kind;
    EXPECT_TRUE(sameKind);
    EXPECT_EQ(replay.streamHash, res.outcome.streamHash);
}

TEST(VerifyReport, ProgramJsonRoundTripsBitIdentically)
{
    const Program p = verify::fuzzProgram(11);
    const Program back = verify::programFromJson(verify::programToJson(p));
    EXPECT_TRUE(sameProgram(p, back));

    EXPECT_THROW(verify::programFromJson("{\"name\": \"x\"}"), SpecError);
    EXPECT_THROW(verify::programFromJson(
                     "{\"mem_words\": 3, \"code\": [[\"halt\", -1, -1, "
                     "-1, 0]]}"),
                 SpecError);
    EXPECT_THROW(verify::programFromJson(
                     "{\"code\": [[\"warp\", 1, 2, 3, 0]]}"),
                 SpecError);
    // Out-of-range register operands must fail loudly, not narrow to
    // int8_t and replay a silently different program.
    EXPECT_THROW(verify::programFromJson(
                     "{\"code\": [[\"add\", 300, 1, 2, 0]]}"),
                 SpecError);
    EXPECT_THROW(verify::programFromJson(
                     "{\"code\": [[\"add\", 1, -2, 2, 0]]}"),
                 SpecError);
    // Corrupt operand text must not silently truncate at the first
    // bad character (strtoll would read "1junk" as 1).
    EXPECT_THROW(verify::programFromJson(
                     "{\"code\": [[\"add\", 1junk, 2, 3, 0]]}"),
                 SpecError);
    EXPECT_THROW(verify::programFromJson(
                     "{\"code\": [[\"add\", , 2, 3, 0]]}"),
                 SpecError);
    EXPECT_THROW(verify::programFromJson(
                     "{\"init_data\": [\"zz5f\"], "
                     "\"code\": [[\"halt\", -1, -1, -1, 0]]}"),
                 SpecError);
    // A fifth operand must not be silently dropped.
    EXPECT_THROW(verify::programFromJson(
                     "{\"code\": [[\"add\", 1, 2, 3, 0, 99]]}"),
                 SpecError);
    // Geometry is validated at parse time, not left to blow up (or
    // corrupt memory) when ArchState materialises the image:
    // init_data longer than mem_words, and absurd mem_words.
    EXPECT_THROW(verify::programFromJson(
                     "{\"mem_words\": 1, \"init_data\": [\"1\", \"2\"], "
                     "\"code\": [[\"halt\", -1, -1, -1, 0]]}"),
                 SpecError);
    EXPECT_THROW(verify::programFromJson(
                     "{\"mem_words\": 9223372036854775808, "
                     "\"code\": [[\"halt\", -1, -1, -1, 0]]}"),
                 SpecError);
}

TEST(VerifyReport, LocalisationFieldsAreOmittedWhenSnapshotsWereOff)
{
    // A divergent run without snapshot compares must not emit a
    // meaningless "bad_window": [0, 0) / "snapshot_every": 0 — and
    // parseRepros must tolerate their absence.
    Program p = verify::fuzzProgram(42);
    MachineConfig bad = nspConfig(16, PredictorKind::Gshare);
    bad.core.commitFaultAt = 100;

    verify::DiffJob job;
    job.mix = verify::standardMixes()[0];
    job.seed = 42;
    job.config = bad;   // snapshotEvery stays 0

    const DiffOutcome out = verify::diffRun(p, bad);
    ASSERT_FALSE(out.ok());
    verify::ShrinkOptions sopt;
    sopt.maxAttempts = 4;
    const verify::ShrinkResult res =
        verify::shrinkDivergence(job, out, sopt);
    ASSERT_TRUE(res.reproduced);

    const std::string json = verify::toJson({out}, {res});
    EXPECT_EQ(json.find("\"bad_window\""), std::string::npos);
    EXPECT_EQ(json.find("\"snapshot_every\""), std::string::npos);
    EXPECT_EQ(json.find("\"first_bad_commit\""), std::string::npos);

    const auto specs = verify::parseRepros(json);
    ASSERT_EQ(specs.size(), 1u);
    EXPECT_EQ(specs[0].snapshotEvery, 0u);
    EXPECT_EQ(specs[0].firstBadCommit, 0u);
    EXPECT_EQ(specs[0].program, nullptr);
}

TEST(VerifyReport, JsonCarriesOutcomesAndDivergences)
{
    Program p = verify::fuzzProgram(42);
    MachineConfig good = nspConfig(16, PredictorKind::Gshare);
    MachineConfig bad = good;
    bad.core.commitFaultAt = 100;

    std::vector<DiffOutcome> outcomes;
    outcomes.push_back(verify::diffRun(p, good));
    outcomes.back().mix = "mixed";
    outcomes.back().seed = 42;
    outcomes.push_back(verify::diffRun(p, bad));
    outcomes.back().mix = "mixed";
    outcomes.back().seed = 42;

    EXPECT_GE(verify::countDivergences(outcomes), 1u);

    const std::string json = verify::toJson(outcomes);
    EXPECT_NE(json.find("\"jobs\": 2"), std::string::npos);
    EXPECT_NE(json.find("\"divergent\": 1"), std::string::npos);
    EXPECT_NE(json.find("\"mix\": \"mixed\""), std::string::npos);
    EXPECT_NE(json.find("\"config\": \"16-SP+Arb\""), std::string::npos);
    EXPECT_NE(json.find("\"kind\": \"stream\""), std::string::npos);
    EXPECT_NE(json.find("\"stream_hash\": "), std::string::npos);
}

} // namespace
} // namespace msp
