/**
 * @file
 * Tests for driver/bench.{hh,cc}: the BENCH_throughput.json schema
 * must round-trip exactly, repeated measurements must see a
 * deterministic simulator, and the regression gate must fire on real
 * throughput drops only.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "common/json.hh"
#include "driver/bench.hh"
#include "sim/machine.hh"
#include "sim/presets.hh"
#include "workload/spec.hh"

namespace msp {
namespace driver {
namespace {

BenchReport
sampleReport()
{
    BenchReport r;
    r.host = "x86_64/Example CPU @ 2.0GHz/8t";
    r.sanitized = false;
    r.predictor = "gshare";
    r.instrs = 200000;
    r.reps = 3;
    r.seed = 1;
    r.workloads = {"gzip", "gcc"};
    BenchConfigResult base;
    base.config = "baseline";
    base.committed = 400000;
    base.cycles = 1300000;
    base.wallSec = {0.50, 0.45, 0.47};
    BenchConfigResult msp16;
    msp16.config = "16sp";
    msp16.committed = 400100;
    msp16.cycles = 1200000;
    msp16.wallSec = {0.90, 0.85, 0.88};
    r.configs = {base, msp16};
    return r;
}

TEST(BenchReport, BestRepetitionIsTheThroughputFigure)
{
    const BenchReport r = sampleReport();
    EXPECT_DOUBLE_EQ(r.configs[0].bestWallSec(), 0.45);
    EXPECT_NEAR(r.configs[0].minstrPerSec(), 400000 / 0.45 / 1e6, 1e-9);
    EXPECT_NEAR(r.configs[0].mcyclesPerSec(), 1300000 / 0.45 / 1e6,
                1e-9);
}

TEST(BenchReport, JsonRoundTripsEveryField)
{
    const BenchReport r = sampleReport();
    const BenchReport back = benchReportFromJson(benchReportToJson(r));
    EXPECT_EQ(back.host, r.host);
    EXPECT_EQ(back.sanitized, r.sanitized);
    EXPECT_EQ(back.predictor, r.predictor);
    EXPECT_EQ(back.instrs, r.instrs);
    EXPECT_EQ(back.reps, r.reps);
    EXPECT_EQ(back.seed, r.seed);
    EXPECT_EQ(back.workloads, r.workloads);
    ASSERT_EQ(back.configs.size(), r.configs.size());
    for (std::size_t i = 0; i < r.configs.size(); ++i) {
        EXPECT_EQ(back.configs[i].config, r.configs[i].config);
        EXPECT_EQ(back.configs[i].committed, r.configs[i].committed);
        EXPECT_EQ(back.configs[i].cycles, r.configs[i].cycles);
        ASSERT_EQ(back.configs[i].wallSec.size(),
                  r.configs[i].wallSec.size());
        for (std::size_t j = 0; j < r.configs[i].wallSec.size(); ++j)
            EXPECT_NEAR(back.configs[i].wallSec[j],
                        r.configs[i].wallSec[j], 1e-6);
        // The derived figures survive the round trip through the
        // stored wall times, not the serialised derived fields.
        EXPECT_NEAR(back.configs[i].minstrPerSec(),
                    r.configs[i].minstrPerSec(), 1e-3);
    }
}

TEST(BenchReport, FromJsonRejectsForeignAndCorruptDocuments)
{
    EXPECT_THROW((void)benchReportFromJson("{}"), json::JsonError);
    EXPECT_THROW(
        (void)benchReportFromJson("{\"schema\": \"msp-verify-v1\"}"),
        json::JsonError);
    // Right schema, no configs.
    EXPECT_THROW((void)benchReportFromJson(
                     "{\"schema\": \"msp-bench-v1\", \"configs\": []}"),
                 json::JsonError);
    // A garbled committed count must not decode as zero.
    std::string doc = benchReportToJson(sampleReport());
    const std::size_t pos = doc.find("\"committed\": 400000");
    ASSERT_NE(pos, std::string::npos);
    doc.replace(pos, 19, "\"committed\": 40x000");
    EXPECT_THROW((void)benchReportFromJson(doc), json::JsonError);
    // A garbled wall time likewise.
    std::string doc2 = benchReportToJson(sampleReport());
    const std::size_t wpos = doc2.find("0.500000");
    ASSERT_NE(wpos, std::string::npos);
    doc2.replace(wpos, 8, "0.5zz000");
    EXPECT_THROW((void)benchReportFromJson(doc2), json::JsonError);
}

TEST(BenchGate, FlagsOnlyRegressionsPastTheThreshold)
{
    const BenchReport base = sampleReport();
    BenchReport cur = sampleReport();

    // Identical throughput: clean gate.
    EXPECT_TRUE(benchRegressions(base, cur, 15.0).empty());

    // 10% slower: inside a 15% gate, outside a 5% gate.
    for (double &w : cur.configs[0].wallSec)
        w *= 1.0 / 0.9;
    EXPECT_TRUE(benchRegressions(base, cur, 15.0).empty());
    const auto tight = benchRegressions(base, cur, 5.0);
    ASSERT_EQ(tight.size(), 1u);
    EXPECT_NE(tight[0].find("baseline"), std::string::npos);

    // 30% slower on the second config: caught at 15%.
    for (double &w : cur.configs[1].wallSec)
        w *= 1.0 / 0.7;
    const auto res = benchRegressions(base, cur, 15.0);
    ASSERT_EQ(res.size(), 1u);
    EXPECT_NE(res[0].find("16sp"), std::string::npos);

    // A config absent from the baseline is not a regression (ladders
    // may grow), and a *faster* run never is.
    BenchConfigResult fresh;
    fresh.config = "32sp";
    fresh.committed = 400000;
    fresh.wallSec = {1.0};
    cur.configs.push_back(fresh);
    cur.configs[0].wallSec = {0.10};
    const auto still = benchRegressions(base, cur, 15.0);
    ASSERT_EQ(still.size(), 1u);
    EXPECT_NE(still[0].find("16sp"), std::string::npos);
}

TEST(BenchRun, RepetitionsAreDeterministic)
{
    BenchOptions o;
    o.configNames = {"baseline", "16sp"};
    o.workloads = {"gzip"};
    o.instrs = 3000;
    o.reps = 2;
    // runThroughputBench fatals internally if committed/cycle counts
    // diverge between repetitions; surviving it with both repetitions
    // recorded is the assertion.
    const BenchReport r = runThroughputBench(o);
    ASSERT_EQ(r.configs.size(), 2u);
    for (const BenchConfigResult &c : r.configs) {
        EXPECT_EQ(c.wallSec.size(), 2u);
        EXPECT_GT(c.committed, 0u);
        EXPECT_GT(c.cycles, 0u);
        EXPECT_GT(c.bestWallSec(), 0.0);
    }
    // And a second measurement sees the same simulated counts.
    const BenchReport r2 = runThroughputBench(o);
    for (std::size_t i = 0; i < r.configs.size(); ++i) {
        EXPECT_EQ(r2.configs[i].committed, r.configs[i].committed);
        EXPECT_EQ(r2.configs[i].cycles, r.configs[i].cycles);
    }
}

TEST(BenchRun, HostFingerprintIsStableAndDescriptive)
{
    const std::string fp = hostFingerprint();
    EXPECT_FALSE(fp.empty());
    EXPECT_EQ(fp, hostFingerprint());
    // arch/model/threads — at least the two separators.
    EXPECT_GE(std::count(fp.begin(), fp.end(), '/'), 2);
}

TEST(BenchRun, DynInstPoolKeepsRunsBitIdentical)
{
    // The arena-allocated instruction window must not perturb results:
    // two back-to-back machines over the same program commit the same
    // stream (the golden-stats fixtures pin the absolute values; this
    // guards the pool against nondeterministic reuse orders).
    const Program prog = spec::build("gcc", 1);
    const MachineConfig cfg = nspConfig(8, PredictorKind::Gshare);
    Machine a(cfg, prog);
    Machine b(cfg, prog);
    const RunResult ra = a.run(20000);
    const RunResult rb = b.run(20000);
    EXPECT_EQ(ra.committed, rb.committed);
    EXPECT_EQ(ra.cycles, rb.cycles);
    EXPECT_EQ(ra.mispredicts, rb.mispredicts);
    EXPECT_EQ(ra.recoveries, rb.recoveries);
}

} // namespace
} // namespace driver
} // namespace msp
