/**
 * @file
 * Golden-stats regression fixture: the Fig. 6-9 scenario IPCs at a
 * reduced budget are checked into tests/golden/golden_stats.json;
 * this test re-runs the scenarios and compares within a relative
 * tolerance, so perf-affecting regressions fail CTest instead of
 * passing silently.
 *
 * Refreshing the baselines after an *intended* perf change:
 *
 *   MSP_UPDATE_GOLDEN=1 ./build/test_golden_stats
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/logging.hh"
#include "driver/campaign.hh"
#include "driver/report.hh"
#include "driver/scenario.hh"

namespace msp {
namespace {

// Small enough to keep the four sweeps a few seconds on one thread,
// large enough that the predictors and register files warm up and the
// IPC ladder looks like the full-budget one.
constexpr std::uint64_t kBudget = 2000;

// The simulator is bit-deterministic, so any drift is a real behaviour
// change; 2% allows intended micro-tweaks while catching regressions.
constexpr double kRelTol = 0.02;

const char *const kScenarios[] = {"fig6", "fig7", "fig8", "fig9"};

struct Entry
{
    std::string scenario, workload, config;
    double ipc = 0.0;

    std::string
    key() const
    {
        return scenario + "/" + workload + "/" + config;
    }
};

std::string
goldenPath()
{
    return std::string(MSP_SOURCE_DIR) + "/tests/golden/golden_stats.json";
}

std::vector<Entry>
collect()
{
    std::vector<Entry> entries;
    for (const char *name : kScenarios) {
        const driver::Scenario *s = driver::findScenario(name);
        if (s == nullptr)
            msp_panic("scenario %s vanished from the registry", name);
        driver::SimCampaign campaign(0);
        for (auto &j : s->build(kBudget))
            campaign.add(std::move(j));
        for (const auto &jr : campaign.run()) {
            entries.push_back(Entry{name, jr.job.workload,
                                    jr.job.config.name,
                                    jr.result.ipc()});
        }
    }
    return entries;
}

std::string
serialize(const std::vector<Entry> &entries)
{
    std::string out = "{\n  \"budget\": " + std::to_string(kBudget) +
                      ",\n  \"entries\": [\n";
    for (std::size_t i = 0; i < entries.size(); ++i) {
        const Entry &e = entries[i];
        out += csprintf("    {\"scenario\": \"%s\", \"workload\": "
                        "\"%s\", \"config\": \"%s\", \"ipc\": %.6f}%s\n",
                        e.scenario.c_str(), e.workload.c_str(),
                        e.config.c_str(), e.ipc,
                        i + 1 < entries.size() ? "," : "");
    }
    out += "  ]\n}\n";
    return out;
}

std::string
quotedField(const std::string &line, const std::string &field)
{
    const std::string tag = "\"" + field + "\": \"";
    const std::size_t at = line.find(tag);
    if (at == std::string::npos)
        return "";
    const std::size_t start = at + tag.size();
    const std::size_t end = line.find('"', start);
    return line.substr(start, end - start);
}

std::vector<Entry>
parse(std::istream &in)
{
    std::vector<Entry> entries;
    std::string line;
    while (std::getline(in, line)) {
        if (line.find("\"scenario\"") == std::string::npos)
            continue;
        Entry e;
        e.scenario = quotedField(line, "scenario");
        e.workload = quotedField(line, "workload");
        e.config = quotedField(line, "config");
        const std::size_t at = line.find("\"ipc\": ");
        e.ipc = at == std::string::npos
                    ? 0.0
                    : std::strtod(line.c_str() + at + 7, nullptr);
        entries.push_back(std::move(e));
    }
    return entries;
}

TEST(GoldenStats, Fig6To9IpcsMatchTheCheckedInBaselines)
{
    const std::vector<Entry> current = collect();
    ASSERT_FALSE(current.empty());

    if (std::getenv("MSP_UPDATE_GOLDEN") != nullptr) {
        driver::writeFile(goldenPath(), serialize(current));
        GTEST_SKIP() << "golden baselines rewritten to " << goldenPath();
    }

    std::ifstream f(goldenPath());
    ASSERT_TRUE(f.good())
        << goldenPath() << " is missing — regenerate it with "
        << "MSP_UPDATE_GOLDEN=1 ./test_golden_stats";
    const std::vector<Entry> golden = parse(f);

    ASSERT_EQ(current.size(), golden.size())
        << "scenario job tables changed shape; refresh the golden file";
    for (std::size_t i = 0; i < current.size(); ++i) {
        SCOPED_TRACE(current[i].key());
        ASSERT_EQ(current[i].key(), golden[i].key())
            << "job ordering changed; refresh the golden file";
        const double tol =
            kRelTol * std::max(golden[i].ipc, 1e-6) + 1e-9;
        EXPECT_NEAR(current[i].ipc, golden[i].ipc, tol)
            << "IPC drifted beyond " << kRelTol * 100 << "% — a perf "
            << "regression, or an intended change needing "
            << "MSP_UPDATE_GOLDEN=1";
    }
}

} // namespace
} // namespace msp
