/**
 * @file
 * Tests for sim/presets.cc: the four Table I machine configurations
 * must encode the paper's parameters — baseline ROB 128 / IQ 48 /
 * 96+96 registers, CPR with 8 out-of-order-release checkpoints and
 * 192+192 registers, n-SP banking with the arbitration pipeline
 * stage, and the idealised MSP limits.
 */

#include <gtest/gtest.h>

#include "sim/presets.hh"
#include "sim/spec.hh"

namespace msp {
namespace {

TEST(Presets, BaselineMatchesTableI)
{
    const MachineConfig m = baselineConfig(PredictorKind::Gshare);
    EXPECT_EQ(m.name, "Baseline");
    EXPECT_EQ(m.predictor, PredictorKind::Gshare);
    EXPECT_EQ(m.core.kind, CoreKind::Baseline);
    EXPECT_EQ(m.core.robSize, 128u);
    EXPECT_EQ(m.core.iqSize, 48u);
    EXPECT_EQ(m.core.numIntPhys, 96u);
    EXPECT_EQ(m.core.numFpPhys, 96u);
    EXPECT_EQ(m.core.ldqSize, 48u);
    EXPECT_EQ(m.core.sq1Size, 24u);
    EXPECT_EQ(m.core.sq2Size, 0u);
    // ROB semantics: load-queue entries hold until retire.
    EXPECT_FALSE(m.core.ldqReleaseAtExec);
}

TEST(Presets, TableIWidthsAreSharedByAllMachines)
{
    for (const auto &m :
         {baselineConfig(PredictorKind::Gshare),
          cprConfig(PredictorKind::Gshare),
          nspConfig(16, PredictorKind::Gshare),
          idealMspConfig(PredictorKind::Gshare)}) {
        SCOPED_TRACE(m.name);
        EXPECT_EQ(m.core.fetchWidth, 3u);
        EXPECT_EQ(m.core.renameWidth, 3u);
        EXPECT_EQ(m.core.issueWidth, 5u);
        EXPECT_EQ(m.core.intUnits, 4u);
        EXPECT_EQ(m.core.fpUnits, 4u);
        EXPECT_EQ(m.core.memUnits, 2u);
    }
}

TEST(Presets, CprMatchesTableI)
{
    const MachineConfig m = cprConfig(PredictorKind::Tage);
    EXPECT_EQ(m.name, "CPR");
    EXPECT_EQ(m.predictor, PredictorKind::Tage);
    EXPECT_EQ(m.core.kind, CoreKind::Cpr);
    EXPECT_EQ(m.core.numCheckpoints, 8u);
    EXPECT_EQ(m.core.numIntPhys, 192u);
    EXPECT_EQ(m.core.numFpPhys, 192u);
    EXPECT_EQ(m.core.iqSize, 128u);
    // Hierarchical store queue: 48-entry L1 backed by a 256-entry L2.
    EXPECT_EQ(m.core.sq1Size, 48u);
    EXPECT_EQ(m.core.sq2Size, 256u);
    EXPECT_EQ(m.core.frontendDepth, 5u);
}

TEST(Presets, CprRegisterSweepRenames)
{
    EXPECT_EQ(cprConfig(PredictorKind::Tage, 256).name, "CPR-256");
    EXPECT_EQ(cprConfig(PredictorKind::Tage, 512).core.numIntPhys, 512u);
    EXPECT_EQ(cprConfig(PredictorKind::Gshare, 192, 16).core
                  .numCheckpoints, 16u);
}

TEST(Presets, NspBankingMatchesTableI)
{
    const MachineConfig m = nspConfig(16, PredictorKind::Gshare);
    EXPECT_EQ(m.name, "16-SP+Arb");
    EXPECT_EQ(m.core.kind, CoreKind::Msp);
    EXPECT_EQ(m.core.regsPerBank, 16u);
    EXPECT_FALSE(m.core.infiniteBanks);
    EXPECT_TRUE(m.core.arbitration);
    EXPECT_EQ(m.core.lcsLatency, 1u);
    EXPECT_EQ(m.core.iqSize, 128u);
    // The arbitration stage deepens the front end by one cycle.
    EXPECT_EQ(m.core.frontendDepth, 6u);

    const MachineConfig noArb =
        nspConfig(8, PredictorKind::Gshare, false);
    EXPECT_EQ(noArb.name, "8-SP");
    EXPECT_EQ(noArb.core.regsPerBank, 8u);
    EXPECT_FALSE(noArb.core.arbitration);
    EXPECT_EQ(noArb.core.frontendDepth, 5u);
}

TEST(Presets, IdealMspLiftsEveryLimit)
{
    const MachineConfig m = idealMspConfig(PredictorKind::Tage);
    EXPECT_EQ(m.name, "ideal MSP");
    EXPECT_EQ(m.core.kind, CoreKind::Msp);
    EXPECT_TRUE(m.core.infiniteBanks);
    EXPECT_TRUE(m.core.infiniteSq);
    EXPECT_EQ(m.core.lcsLatency, 0u);
    EXPECT_FALSE(m.core.arbitration);
    EXPECT_EQ(m.core.frontendDepth, 5u);
}

TEST(Presets, PredictorNames)
{
    EXPECT_STREQ(predictorName(PredictorKind::Gshare), "gshare");
    EXPECT_STREQ(predictorName(PredictorKind::Tage), "TAGE");
}

TEST(Presets, PresetNameForRoundTripsEveryCliPreset)
{
    for (const auto p : {PredictorKind::Gshare, PredictorKind::Tage}) {
        EXPECT_EQ(presetNameFor(baselineConfig(p)), "baseline");
        EXPECT_EQ(presetNameFor(cprConfig(p)), "cpr");
        EXPECT_EQ(presetNameFor(idealMspConfig(p)), "ideal");
        EXPECT_EQ(presetNameFor(nspConfig(16, p)), "16sp");
        EXPECT_EQ(presetNameFor(nspConfig(8, p, false)), "8sp-noarb");
    }
}

TEST(Presets, PresetNameForRejectsModifiedConfigs)
{
    // The contract: "" unless the name rebuilds this exact machine.
    // A repro recorded under a near-miss name would replay the wrong
    // config and could show clean for a still-live divergence.
    MachineConfig m = nspConfig(16, PredictorKind::Gshare);
    m.core.iqSize /= 2;
    EXPECT_EQ(presetNameFor(m), "");

    MachineConfig fault = nspConfig(16, PredictorKind::Gshare);
    fault.core.commitFaultAt = 100;   // test-only injection knob
    EXPECT_EQ(presetNameFor(fault), "");

    MachineConfig cpr = cprConfig(PredictorKind::Gshare, 256);
    EXPECT_EQ(presetNameFor(cpr), "");
}

TEST(Presets, PresetByNameResolvesTheNspFamily)
{
    EXPECT_EQ(presetByName("4sp", PredictorKind::Gshare).core.regsPerBank,
              4u);
    EXPECT_FALSE(presetByName("8sp-noarb", PredictorKind::Gshare)
                     .core.arbitration);
}

TEST(Presets, PresetByNameRejectsMalformedSpCounts)
{
    // The historical atoi() parse accepted every one of these: "+16sp"
    // ran as 16sp, "1o6sp" as 1sp, "0sp" divided by zero downstream,
    // and a 21-digit count wrapped to an arbitrary bank size. Each
    // must now throw a SpecError that names the bad count and preset.
    for (const char *bad :
         {"+16sp", "-4sp", "1o6sp", "0sp", " 8sp", "sp",
          "99999999999999999999sp", "4294967296sp", "0x10sp",
          "16sp ", "16 sp"}) {
        EXPECT_THROW((void)presetByName(bad, PredictorKind::Gshare),
                     SpecError)
            << "accepted '" << bad << "'";
    }
    // The diagnostic carries the offending count and the full name.
    try {
        (void)presetByName("1o6sp", PredictorKind::Gshare);
        FAIL() << "no SpecError for '1o6sp'";
    } catch (const SpecError &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("1o6"), std::string::npos) << what;
        EXPECT_NE(what.find("1o6sp"), std::string::npos) << what;
    }
}

} // namespace
} // namespace msp
