/**
 * @file
 * Unit tests for the cache model and the Table I memory hierarchy.
 */

#include <gtest/gtest.h>

#include "common/stats.hh"
#include "memory/cache.hh"
#include "memory/memory_system.hh"

namespace msp {
namespace {

TEST(Cache, MissThenHit)
{
    StatGroup sg("t");
    Cache c({"c", 1024, 2, 64, 3}, sg);
    EXPECT_FALSE(c.access(0x100, false));
    EXPECT_TRUE(c.access(0x100, false));
    EXPECT_TRUE(c.access(0x13F, false));   // same 64B line
    EXPECT_FALSE(c.access(0x140, false));  // next line
    EXPECT_EQ(sg.get("c.hits"), 2u);
    EXPECT_EQ(sg.get("c.misses"), 2u);
}

TEST(Cache, LruEvictsOldest)
{
    StatGroup sg("t");
    // 2-way, 64B lines, 2 sets (256 B total).
    Cache c({"c", 256, 2, 64, 1}, sg);
    // Three lines mapping to set 0: 0x000, 0x080, 0x100.
    c.access(0x000, false);
    c.access(0x080, false);
    c.access(0x000, false);       // refresh line 0
    c.access(0x100, false);       // evicts 0x080 (LRU)
    EXPECT_TRUE(c.probe(0x000));
    EXPECT_FALSE(c.probe(0x080));
    EXPECT_TRUE(c.probe(0x100));
}

TEST(Cache, DirtyEvictionCountsWriteback)
{
    StatGroup sg("t");
    Cache c({"c", 256, 2, 64, 1}, sg);
    c.access(0x000, true);        // dirty
    c.access(0x080, false);
    c.access(0x100, false);       // evicts dirty 0x000
    c.access(0x180, false);       // evicts clean 0x080
    EXPECT_EQ(sg.get("c.writebacks"), 1u);
}

TEST(Cache, FlushInvalidatesAll)
{
    StatGroup sg("t");
    Cache c({"c", 1024, 4, 64, 1}, sg);
    c.access(0x40, false);
    c.flush();
    EXPECT_FALSE(c.probe(0x40));
}

TEST(MemorySystem, LatenciesFollowTableI)
{
    StatGroup sg("t");
    MemorySystem m(MemoryParams{}, sg);
    // Cold: L1 miss + L2 miss -> memory.
    EXPECT_EQ(m.loadLatency(0x1000), 4u + 16u + 380u);
    // Now L1-resident.
    EXPECT_EQ(m.loadLatency(0x1000), 4u);
    // Fetch path: cold then hot.
    EXPECT_EQ(m.fetchLatency(0x800000), 1u + 16u + 380u);
    EXPECT_EQ(m.fetchLatency(0x800000), 1u);
}

TEST(MemorySystem, L2CatchesL1Evictions)
{
    StatGroup sg("t");
    MemorySystem m(MemoryParams{}, sg);
    m.loadLatency(0x0);              // cold fill into L1+L2
    // Walk far past L1 capacity (64 KB) but within L2 (1 MB).
    for (Addr a = 64; a < (512 << 10); a += 64)
        m.loadLatency(a);
    // 0x0 fell out of L1 but is still in L2: 4 + 16.
    EXPECT_EQ(m.loadLatency(0x0), 20u);
}

TEST(MemorySystem, StoreCommitAllocates)
{
    StatGroup sg("t");
    MemorySystem m(MemoryParams{}, sg);
    m.storeCommit(0x2000);
    EXPECT_EQ(m.loadLatency(0x2000), 4u);   // write-allocated
}

} // namespace
} // namespace msp
