/**
 * @file
 * Structural program reduction tests (src/verify/reduce.cc): the
 * delta-debugging pass over emitted images must shrink an injected-
 * fault reproducer strictly, preserve the divergence kind and the
 * functional termination guarantee, stay bit-identical across worker
 * thread counts, and refuse gracefully when nothing reproduces.
 */

#include <gtest/gtest.h>

#include "functional/executor.hh"
#include "sim/presets.hh"
#include "verify/fuzzer.hh"
#include "verify/oracle.hh"
#include "verify/reduce.hh"

namespace msp {
namespace {

using verify::DiffOutcome;

bool
sameProgram(const Program &a, const Program &b)
{
    if (a.code.size() != b.code.size() || a.initData != b.initData ||
        a.memWords != b.memWords || a.entry != b.entry) {
        return false;
    }
    for (std::size_t i = 0; i < a.code.size(); ++i) {
        const Instruction &x = a.code[i];
        const Instruction &y = b.code[i];
        if (x.op != y.op || x.rd != y.rd || x.rs1 != y.rs1 ||
            x.rs2 != y.rs2 || x.imm != y.imm) {
            return false;
        }
    }
    return true;
}

// The tentpole acceptance property: the reducer emits a strictly
// smaller image that still terminates and still reproduces the same
// divergence kind.
TEST(Reduce, EmitsAStrictlySmallerTerminatingReproducer)
{
    Program p = verify::fuzzProgram(42);
    MachineConfig cfg = nspConfig(16, PredictorKind::Gshare);
    cfg.core.commitFaultAt = 100;

    verify::DiffOptions dopt;
    const DiffOutcome orig = verify::diffRun(p, cfg, dopt);
    ASSERT_FALSE(orig.ok());

    const verify::ReduceResult res =
        verify::reduceDivergence(p, cfg, orig, dopt);
    EXPECT_TRUE(res.reproduced);
    EXPECT_TRUE(res.reduced);
    EXPECT_LT(res.reducedStatic, res.origStatic);
    EXPECT_EQ(res.program.code.size(), res.reducedStatic);
    EXPECT_EQ(res.origStatic, p.code.size());
    EXPECT_GT(res.attempts, 1u);
    EXPECT_GE(res.rounds, 1u);
    EXPECT_FALSE(res.kind.empty());

    // The kind is one the original run reported.
    bool inOrig = false;
    for (const auto &d : orig.divergences)
        inOrig |= d.kind == res.kind;
    EXPECT_TRUE(inOrig);

    // Termination guarantee, re-established by validation.
    FunctionalExecutor ref(res.program);
    ref.run(1u << 20);
    ASSERT_TRUE(ref.halted());
    EXPECT_EQ(ref.instCount(), res.reducedDynamic);

    // The corrupted commit is the 100th register write, so the reduced
    // program must still perform at least 100 of them.
    EXPECT_GE(res.reducedDynamic, 100u);

    // Replaying the reduced image reproduces the recorded outcome.
    const DiffOutcome replay =
        verify::diffRun(res.program, cfg, dopt);
    bool sameKind = false;
    for (const auto &d : replay.divergences)
        sameKind |= d.kind == res.kind;
    EXPECT_TRUE(sameKind);
    EXPECT_EQ(replay.streamHash, res.outcome.streamHash);
}

TEST(Reduce, ResultIsBitIdenticalAcrossThreadCounts)
{
    // Candidate batches fan across the worker pool, but the winner of
    // a batch is picked by submission index: the reduced image must
    // not depend on the thread count (the repo-wide determinism
    // contract campaigns keep).
    Program p = verify::fuzzProgram(42);
    MachineConfig cfg = nspConfig(16, PredictorKind::Gshare);
    cfg.core.commitFaultAt = 100;
    verify::DiffOptions dopt;
    const DiffOutcome orig = verify::diffRun(p, cfg, dopt);
    ASSERT_FALSE(orig.ok());

    auto reduceWith = [&](unsigned threads) {
        verify::ReduceOptions ropt;
        ropt.threads = threads;
        ropt.maxAttempts = 64;   // keep the test quick
        return verify::reduceDivergence(p, cfg, orig, dopt, ropt);
    };
    const verify::ReduceResult ref = reduceWith(1);
    ASSERT_TRUE(ref.reproduced);
    for (unsigned threads : {2u, 4u}) {
        const verify::ReduceResult par = reduceWith(threads);
        EXPECT_TRUE(sameProgram(ref.program, par.program))
            << threads << " threads";
        EXPECT_EQ(ref.attempts, par.attempts) << threads << " threads";
        EXPECT_EQ(ref.reducedStatic, par.reducedStatic);
        EXPECT_EQ(ref.outcome.streamHash, par.outcome.streamHash);
    }
}

TEST(Reduce, NonReproducingInputIsReportedNotSearched)
{
    // A clean program handed to the reducer with a forged divergence
    // must come back untouched instead of burning the attempt budget.
    Program p = verify::fuzzProgram(7);
    MachineConfig cfg = nspConfig(16, PredictorKind::Gshare);
    verify::DiffOptions dopt;
    DiffOutcome fake = verify::diffRun(p, cfg, dopt);
    ASSERT_TRUE(fake.ok());
    fake.divergences.push_back({"stream", "synthetic"});

    const verify::ReduceResult res =
        verify::reduceDivergence(p, cfg, fake, dopt);
    EXPECT_FALSE(res.reproduced);
    EXPECT_FALSE(res.reduced);
    EXPECT_EQ(res.attempts, 1u);
    EXPECT_TRUE(sameProgram(res.program, p));
}

TEST(Reduce, HonoursTheAttemptCap)
{
    Program p = verify::fuzzProgram(42);
    MachineConfig cfg = nspConfig(16, PredictorKind::Gshare);
    cfg.core.commitFaultAt = 100;
    verify::DiffOptions dopt;
    const DiffOutcome orig = verify::diffRun(p, cfg, dopt);
    ASSERT_FALSE(orig.ok());

    verify::ReduceOptions ropt;
    ropt.maxAttempts = 5;
    ropt.threads = 1;
    const verify::ReduceResult res =
        verify::reduceDivergence(p, cfg, orig, dopt, ropt);
    EXPECT_LE(res.attempts, 5u);
    // Even a truncated search never returns a non-reproducing image.
    EXPECT_TRUE(res.reproduced);
}

TEST(Reduce, ExpiredBudgetReturnsTheInputUnchanged)
{
    Program p = verify::fuzzProgram(42);
    MachineConfig cfg = nspConfig(16, PredictorKind::Gshare);
    cfg.core.commitFaultAt = 100;
    verify::DiffOptions dopt;
    const DiffOutcome orig = verify::diffRun(p, cfg, dopt);
    ASSERT_FALSE(orig.ok());

    verify::ReduceOptions ropt;
    ropt.budgetSec = 1e-9;
    const verify::ReduceResult res =
        verify::reduceDivergence(p, cfg, orig, dopt, ropt);
    EXPECT_FALSE(res.reduced);
    EXPECT_TRUE(sameProgram(res.program, p));
}

} // namespace
} // namespace msp
