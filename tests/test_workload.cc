/**
 * @file
 * Workload-generator tests: every synthetic benchmark and Table II
 * kernel must build, run on the functional simulator, and exhibit its
 * intended character (branch density, memory behaviour, fp mix).
 */

#include <gtest/gtest.h>

#include "functional/executor.hh"
#include "workload/kernels.hh"
#include "workload/micro.hh"
#include "workload/spec.hh"

namespace msp {
namespace {

/** Profile a program functionally. */
struct Profile
{
    std::uint64_t insts = 0;
    std::uint64_t branches = 0;
    std::uint64_t taken = 0;
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t fpOps = 0;
};

Profile
profile(const Program &p, std::uint64_t n)
{
    FunctionalExecutor fx(p);
    Profile pr;
    while (pr.insts < n && !fx.halted()) {
        const Instruction &in = p.at(fx.pc());
        const OpInfo &oi = in.info();
        StepResult sr = fx.step();
        ++pr.insts;
        if (oi.isCondBranch) {
            ++pr.branches;
            if (sr.taken)
                ++pr.taken;
        }
        if (oi.isLoad)
            ++pr.loads;
        if (oi.isStore)
            ++pr.stores;
        if (oi.fu == FuClass::FpAlu)
            ++pr.fpOps;
    }
    return pr;
}

class SpecBench : public ::testing::TestWithParam<std::string>
{};

TEST_P(SpecBench, BuildsAndRuns)
{
    Program p = spec::build(GetParam());
    ASSERT_GT(p.size(), 50u);
    Profile pr = profile(p, 100000);
    EXPECT_EQ(pr.insts, 100000u) << "program terminated early";
    // Every benchmark does some memory work and has conditional
    // branches (at minimum the loop back-edges).
    EXPECT_GT(pr.loads, 1000u);
    EXPECT_GT(pr.branches, 1000u);
}

TEST_P(SpecBench, FpBenchmarksDoFpWork)
{
    const std::string name = GetParam();
    Program p = spec::build(name);
    Profile pr = profile(p, 50000);
    if (spec::isFp(name))
        EXPECT_GT(pr.fpOps, 2000u) << name << " should be fp-heavy";
    else if (name != "eon")   // eon mixes some fp, as the C++ original
        EXPECT_LT(pr.fpOps, pr.insts / 4);
}

std::vector<std::string>
allBenchNames()
{
    std::vector<std::string> v = spec::intBenchmarks();
    for (const auto &n : spec::fpBenchmarks())
        v.push_back(n);
    return v;
}

INSTANTIATE_TEST_SUITE_P(AllBenches, SpecBench,
                         ::testing::ValuesIn(allBenchNames()),
                         [](const auto &info) { return info.param; });

TEST(SpecWorkloads, DeterministicForFixedSeed)
{
    Program a = spec::build("gzip", 5);
    Program b = spec::build("gzip", 5);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a.code[i].op, b.code[i].op);
        EXPECT_EQ(a.code[i].imm, b.code[i].imm);
    }
    EXPECT_EQ(a.initData, b.initData);
}

TEST(SpecWorkloads, SeedChangesData)
{
    Program a = spec::build("gzip", 1);
    Program b = spec::build("gzip", 2);
    EXPECT_NE(a.initData, b.initData);
}

TEST(SpecWorkloads, RegisterSpreadDiffersAcrossBenchmarks)
{
    // bzip2/twolf are the paper's tight-register-reuse examples.
    EXPECT_LT(spec::specFor("bzip2").regSpread,
              spec::specFor("vortex").regSpread);
    EXPECT_LT(spec::specFor("swim").fpRegSpread,
              spec::specFor("fma3d").fpRegSpread);
}

class KernelCase
    : public ::testing::TestWithParam<std::tuple<std::string, bool>>
{};

TEST_P(KernelCase, BuildsAndRuns)
{
    const auto &[name, modified] = GetParam();
    Program p = kernels::build(name, modified);
    Profile pr = profile(p, 50000);
    EXPECT_EQ(pr.insts, 50000u);
    EXPECT_GT(pr.branches, 500u);
}

INSTANTIATE_TEST_SUITE_P(
    AllKernels, KernelCase,
    ::testing::Combine(::testing::Values("bzip2", "twolf", "swim",
                                         "mgrid", "equake"),
                       ::testing::Bool()),
    [](const auto &info) {
        return std::get<0>(info.param) +
               (std::get<1>(info.param) ? "_mod" : "_orig");
    });

TEST(Kernels, Table2MetadataMatchesPaper)
{
    const auto &ks = kernels::table2Kernels();
    ASSERT_EQ(ks.size(), 5u);
    EXPECT_EQ(ks[0].function, "generateMTFValues");
    EXPECT_EQ(ks[0].loopsUnrolled, 1);
    EXPECT_EQ(ks[1].loopsUnrolled, 3);
    EXPECT_EQ(ks[2].loopsUnrolled, 0);  // swim: register re-allocation
    EXPECT_EQ(ks[4].pctExecTime, 54);
}

TEST(MicroPrograms, KnownResults)
{
    {
        Program p = micro::sumLoop(100);
        FunctionalExecutor fx(p);
        fx.run(10000);
        EXPECT_EQ(fx.state().load(0), 5050u);
    }
    {
        Program p = micro::fibonacci(20);
        FunctionalExecutor fx(p);
        fx.run(10000);
        EXPECT_EQ(fx.state().load(0), 6765u);
    }
    {
        Program p = micro::tightRename(10);
        FunctionalExecutor fx(p);
        fx.run(10000);
        EXPECT_EQ(fx.state().load(0), 40u);
    }
}

} // namespace
} // namespace msp
