/**
 * @file
 * Long-running sweep tests, carrying the CTest label "slow" (skip with
 * `ctest -LE slow`). Budgets are trimmed to the smallest values at
 * which the swept property still holds robustly.
 */

#include <gtest/gtest.h>

#include "driver/scenario.hh"
#include "sim/machine.hh"
#include "sim/presets.hh"
#include "verify/diff_campaign.hh"
#include "workload/kernels.hh"

namespace msp {
namespace {

TEST(SlowSweeps, MoreRegistersPerBankHelpStarvedLoops)
{
    // The Fig. 8 property: a register-starved fp loop (the original
    // swim kernel reuses 2 fp registers) improves monotonically with n.
    Program prog = kernels::build("swim", false);
    double prev = 0.0;
    for (unsigned n : {4u, 8u, 16u, 64u}) {
        Machine m(nspConfig(n, PredictorKind::Tage), prog);
        RunResult r = m.run(25000);
        EXPECT_GE(r.ipc(), prev * 0.98)
            << "IPC regressed growing banks to " << n;
        prev = r.ipc();
    }
}

TEST(SlowSweeps, DifferentialSweepAcrossTheFullLadder)
{
    // A fuzzed differential batch over every Table I machine — the
    // open-ended scenario generator run at unit-test scale. The full
    // campaign is `msp_sim verify --seeds 100`.
    verify::DiffCampaign campaign(0);
    campaign.addSweep(verify::standardMixes(), 4, 2024,
                      driver::figureLadder(PredictorKind::Gshare));
    const auto outcomes = campaign.run();
    ASSERT_EQ(outcomes.size(),
              verify::standardMixes().size() * 4 *
                  driver::figureLadder(PredictorKind::Gshare).size());
    for (const auto &out : outcomes) {
        EXPECT_TRUE(out.ok())
            << out.config << " mix=" << out.mix << " seed=" << out.seed
            << ": "
            << (out.divergences.empty() ? ""
                                        : out.divergences[0].detail);
    }
}

} // namespace
} // namespace msp
