/**
 * @file
 * Unit tests for the common utilities: saturating counters, the
 * deterministic RNG, statistics, and the table printer.
 */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "common/sat_counter.hh"
#include "common/stats.hh"
#include "common/table.hh"

namespace msp {
namespace {

TEST(SatCounter, SaturatesBothEnds)
{
    SatCounter c(2, 0);
    EXPECT_EQ(c.max(), 3u);
    c.decrement();
    EXPECT_EQ(c.value(), 0u);
    for (int i = 0; i < 10; ++i)
        c.increment();
    EXPECT_EQ(c.value(), 3u);
    EXPECT_TRUE(c.saturated());
}

TEST(SatCounter, TakenThreshold)
{
    SatCounter c(2, 1);
    EXPECT_FALSE(c.taken());   // 1 of 3
    c.increment();
    EXPECT_TRUE(c.taken());    // 2 of 3
}

TEST(SatCounter, ResetAndSet)
{
    SatCounter c(4, 9);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
    c.set(99);
    EXPECT_EQ(c.value(), 15u);   // clamped
}

TEST(Rng, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, SeedsDiffer)
{
    Rng a(1), b(2);
    EXPECT_NE(a.next(), b.next());
}

TEST(Rng, BelowInRange)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, ChanceApproximatesProbability)
{
    Rng r(9);
    int hits = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        hits += r.chance(0.25);
    EXPECT_NEAR(hits / double(n), 0.25, 0.02);
}

TEST(Rng, ZeroSeedIsRemapped)
{
    Rng r(0);
    EXPECT_NE(r.next(), 0u);
}

TEST(Stats, AddAndAccumulate)
{
    StatGroup g("core");
    Stat &s = g.add("commits", "committed instructions");
    ++s;
    s += 9;
    EXPECT_EQ(g.get("commits"), 10u);
    EXPECT_EQ(g.get("absent"), 0u);
}

TEST(Stats, AddIsIdempotentPerName)
{
    StatGroup g("x");
    Stat &a = g.add("n");
    Stat &b = g.add("n");
    EXPECT_EQ(&a, &b);
    EXPECT_EQ(g.all().size(), 1u);
}

TEST(Stats, ResetAllZeroes)
{
    StatGroup g("x");
    g.add("a") += 5;
    g.add("b") += 7;
    g.resetAll();
    EXPECT_EQ(g.get("a"), 0u);
    EXPECT_EQ(g.get("b"), 0u);
}

TEST(Stats, DumpContainsPrefixAndValues)
{
    StatGroup g("l1");
    g.add("hits", "cache hits") += 3;
    const std::string d = g.dump();
    EXPECT_NE(d.find("l1.hits 3"), std::string::npos);
    EXPECT_NE(d.find("cache hits"), std::string::npos);
}

TEST(Table, AlignsColumns)
{
    Table t("demo");
    t.header({"name", "value"});
    t.row({"a", "1"});
    t.row({"longer", "22"});
    const std::string s = t.str();
    EXPECT_NE(s.find("demo"), std::string::npos);
    EXPECT_NE(s.find("longer"), std::string::npos);
    // Header separator present.
    EXPECT_NE(s.find("----"), std::string::npos);
}

TEST(Table, CsvRoundTrip)
{
    Table t;
    t.header({"a", "b"});
    t.row({"1", "2"});
    EXPECT_EQ(t.csv(), "a,b\n1,2\n");
}

TEST(Table, NumFormatsPrecision)
{
    EXPECT_EQ(Table::num(1.23456, 2), "1.23");
    EXPECT_EQ(Table::num(2.0, 3), "2.000");
}

} // namespace
} // namespace msp
