/**
 * @file
 * Baseline (ROB) core tests: in-order retire, ROB occupancy limits,
 * free-list behaviour and precise recovery.
 */

#include <gtest/gtest.h>

#include "baseline/baseline_core.hh"
#include "isa/builder.hh"
#include "sim/machine.hh"
#include "sim/presets.hh"
#include "workload/micro.hh"

namespace msp {
namespace {

TEST(BaselineCore, MatchesOracleOnBranchyCode)
{
    Program prog = micro::branchy(4000, 19);
    Machine m(baselineConfig(PredictorKind::Gshare), prog);
    RunResult r = m.run(10000000);
    FunctionalExecutor ref(prog);
    ref.run(10000000);
    EXPECT_EQ(r.committed, ref.instCount());
    EXPECT_TRUE(m.core().oracleRef().state() == ref.state());
}

TEST(BaselineCore, RetireWidthBoundsIpc)
{
    // IPC can never exceed the retire width.
    Program prog = micro::sumLoop(20000);
    MachineConfig cfg = baselineConfig(PredictorKind::Tage);
    Machine m(cfg, prog);
    RunResult r = m.run(10000000);
    EXPECT_LE(r.ipc(), cfg.core.retireWidth);
    EXPECT_GT(r.ipc(), 0.3);
}

TEST(BaselineCore, SmallRobLimitsWindow)
{
    // A pointer chase with DRAM misses: a 16-entry ROB can overlap far
    // fewer misses than a 128-entry one.
    Program prog = micro::pointerChase(1 << 15, 4000, 3);
    MachineConfig small = baselineConfig(PredictorKind::Gshare);
    small.core.robSize = 16;
    MachineConfig big = baselineConfig(PredictorKind::Gshare);

    Machine ms(small, prog);
    Machine mb(big, prog);
    RunResult rs = ms.run(200000);
    RunResult rb = mb.run(200000);
    EXPECT_LE(rs.ipc(), rb.ipc() * 1.02);
}

TEST(BaselineCore, PreciseRecoveryNoReExecution)
{
    Program prog = micro::branchy(4000, 7);
    Machine m(baselineConfig(PredictorKind::Gshare), prog);
    RunResult r = m.run(10000000);
    EXPECT_GT(r.recoveries, 20u);
    EXPECT_EQ(r.reExecuted, 0u);
}

TEST(BaselineCore, ExceptionsFlushAtCommit)
{
    Program prog = micro::trapLoop(300, 17);
    Machine m(baselineConfig(PredictorKind::Gshare), prog);
    RunResult r = m.run(10000000);
    EXPECT_GT(r.exceptions, 10u);
    FunctionalExecutor ref(prog);
    ref.run(10000000);
    EXPECT_TRUE(m.core().oracleRef().state() == ref.state());
}

TEST(BaselineCore, RegisterStallWhenFileTooSmall)
{
    // 33 int registers leaves one rename register: rename serialises.
    Program prog = micro::sumLoop(5000);
    MachineConfig tiny = baselineConfig(PredictorKind::Gshare);
    tiny.core.numIntPhys = 34;
    Machine m(tiny, prog);
    RunResult r = m.run(10000000);
    EXPECT_GT(r.regStallCycles, 1000u);
}

TEST(BaselineCore, StoreForwardingWorks)
{
    Program prog = micro::storeForward(2000);
    Machine m(baselineConfig(PredictorKind::Gshare), prog);
    RunResult r = m.run(10000000);
    FunctionalExecutor ref(prog);
    ref.run(10000000);
    EXPECT_EQ(r.committed, ref.instCount());
    EXPECT_TRUE(m.core().oracleRef().state() == ref.state());
}

} // namespace
} // namespace msp
