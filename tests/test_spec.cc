/**
 * @file
 * MachineSpec registry tests (sim/spec.{hh,cc}): exhaustive per-field
 * round-trips proven with a randomised spec generator, the unknown-key
 * / out-of-range / type-mismatch error paths, deterministic
 * (registration-order) key emission, preset resolution through the
 * registry, diff-based pretty-printing, and the CLI precedence
 * contract `--set` over `--machine` over preset.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <set>

#include "common/random.hh"
#include "driver/cli.hh"
#include "sim/presets.hh"
#include "sim/spec.hh"

namespace msp {
namespace {

/** A uniformly random valid value for @p p. */
ParamValue
randomValue(const ParamSpec &p, Rng &rng)
{
    switch (p.type) {
      case ParamValue::Type::Bool:
        return ParamValue::ofBool(rng.chance(0.5));
      case ParamValue::Type::U64: {
        // Mostly near the low end (realistic machines), occasionally
        // the exact range bounds.
        const std::uint64_t span = p.maxU - p.minU;
        std::uint64_t v;
        switch (rng.below(8)) {
          case 0:  v = p.minU; break;
          case 1:  v = p.maxU; break;
          default:
            v = p.minU +
                rng.below(std::min<std::uint64_t>(span, 4096) + 1);
        }
        return ParamValue::ofU64(v);
      }
      case ParamValue::Type::F64:
        return ParamValue::ofF64(p.minF +
                                 rng.toDouble() * (p.maxF - p.minF));
      case ParamValue::Type::Str:
        return ParamValue::ofStr(p.choices[rng.below(p.choices.size())]);
    }
    return ParamValue{};
}

/** A machine no preset can name: every knob randomised. */
MachineConfig
randomSpec(std::uint64_t seed)
{
    Rng rng(seed);
    static const char *bases[] = {"default", "baseline", "cpr", "ideal",
                                  "16sp", "8sp-noarb"};
    MachineConfig m = presetByName(bases[rng.below(6)],
                                   rng.chance(0.5) ? PredictorKind::Tage
                                                   : PredictorKind::Gshare);
    for (const ParamSpec &p : machineParams())
        if (rng.chance(0.7))
            setParam(m, p.key, randomValue(p, rng));
    m.name = describeSpec(m);
    return m;
}

TEST(SpecRegistry, KeysAreUniqueAndResolvable)
{
    std::set<std::string> keys;
    for (const ParamSpec &p : machineParams()) {
        EXPECT_TRUE(keys.insert(p.key).second) << "duplicate " << p.key;
        EXPECT_EQ(findParam(p.key), &p);
        EXPECT_TRUE(p.get && p.set) << p.key;
        EXPECT_FALSE(p.doc.empty()) << p.key;
    }
    // The registry covers every CoreParams knob plus the predictor; a
    // new field must be registered (this count is the reminder).
    EXPECT_EQ(machineParams().size(), 36u);
    EXPECT_EQ(findParam("nope"), nullptr);
}

TEST(SpecRegistry, EveryKeyRoundTripsThroughItsTextForm)
{
    Rng rng(7);
    for (const ParamSpec &p : machineParams()) {
        for (int i = 0; i < 16; ++i) {
            const ParamValue v = randomValue(p, rng);
            MachineConfig m;
            setParam(m, p.key, v);
            EXPECT_EQ(getParam(m, p.key), v) << p.key;

            // The text form ("--set key=value") rebuilds the same
            // value bit-exactly, doubles included.
            MachineConfig m2;
            setParamFromString(m2, p.key, paramValueStr(v));
            EXPECT_EQ(getParam(m2, p.key), v) << p.key;
        }
    }
}

// The exhaustive round-trip property: any machine — randomised over
// every registered field — serialises to JSON and re-parses to an
// identical spec, label included.
TEST(SpecRegistry, RandomisedSpecsRoundTripThroughJson)
{
    for (std::uint64_t seed = 1; seed <= 50; ++seed) {
        const MachineConfig m = randomSpec(seed);
        const std::string json = specToJson(m);
        const MachineConfig back = specFromJson(json);
        EXPECT_TRUE(sameSpec(m, back)) << "seed " << seed << ": " << json;
        EXPECT_EQ(back.name, m.name) << seed;
        // And the round-trip is a fixpoint: re-serialising is
        // byte-identical (CI diffs specs).
        EXPECT_EQ(specToJson(back), json) << seed;
    }
}

TEST(SpecRegistry, JsonKeysFollowRegistrationOrder)
{
    // Deterministic key order is a contract: spec diffs in CI must be
    // stable across runs and builds.
    const std::string json = specToJson(nspConfig(16, PredictorKind::Gshare));
    std::size_t last = 0;
    for (const ParamSpec &p : machineParams()) {
        const std::size_t at = json.find("\"" + p.key + "\":");
        ASSERT_NE(at, std::string::npos) << p.key;
        EXPECT_GT(at, last) << p.key << " out of registration order";
        last = at;
    }
}

TEST(SpecRegistry, SameSpecIgnoresTheCosmeticLabel)
{
    MachineConfig a = nspConfig(16, PredictorKind::Gshare);
    MachineConfig b = a;
    b.name = "anything else";
    EXPECT_TRUE(sameSpec(a, b));
    b.core.lcsLatency++;
    EXPECT_FALSE(sameSpec(a, b));
}

TEST(SpecFromJson, ResolvesBasePresetsAndOverrides)
{
    const MachineConfig m =
        specFromJson("{\"base\": \"16sp\", \"lcs.latency\": 3}");
    MachineConfig expect = nspConfig(16, PredictorKind::Gshare);
    expect.core.lcsLatency = 3;
    EXPECT_TRUE(sameSpec(m, expect));
    EXPECT_EQ(m.name, "16sp+lcs.latency=3");   // no label -> describeSpec

    // "base" resolves first regardless of its position in the file.
    const MachineConfig late =
        specFromJson("{\"lcs.latency\": 5, \"base\": \"16sp\"}");
    EXPECT_EQ(late.core.lcsLatency, 5u);
    EXPECT_EQ(late.core.iqSize, 128u);

    // The predictor is an ordinary parameter.
    const MachineConfig tage =
        specFromJson("{\"base\": \"cpr\", \"predictor\": \"tage\"}");
    EXPECT_EQ(tage.predictor, PredictorKind::Tage);
    EXPECT_EQ(tage.core.kind, CoreKind::Cpr);

    // A full-dump wrapper document parses the nested "machine" object.
    const MachineConfig wrapped = specFromJson(
        "{\"machine\": {\"base\": \"baseline\", \"label\": \"X\"}}");
    EXPECT_TRUE(sameSpec(wrapped, baselineConfig(PredictorKind::Gshare)));
    EXPECT_EQ(wrapped.name, "X");
}

TEST(SpecFromJson, UnknownKeysErrorByName)
{
    try {
        specFromJson("{\"bogus.knob\": 1}");
        FAIL() << "no SpecError";
    } catch (const SpecError &e) {
        EXPECT_NE(std::string(e.what()).find("bogus.knob"),
                  std::string::npos);
    }
    MachineConfig m;
    EXPECT_THROW(setParamFromString(m, "bogus", "1"), SpecError);
    EXPECT_THROW(specFromJson("{\"base\": \"warp9\"}"), SpecError);
}

TEST(SpecFromJson, OutOfRangeValuesErrorByName)
{
    try {
        specFromJson("{\"width.fetch\": 0}");
        FAIL() << "no SpecError";
    } catch (const SpecError &e) {
        EXPECT_NE(std::string(e.what()).find("width.fetch"),
                  std::string::npos);
        EXPECT_NE(std::string(e.what()).find("out of range"),
                  std::string::npos);
    }
    EXPECT_THROW(specFromJson("{\"lcs.latency\": 9999}"), SpecError);
    MachineConfig m;
    EXPECT_THROW(setParamFromString(m, "cpr.sq_scan_penalty", "-1"),
                 SpecError);
}

TEST(SpecFromJson, TypeMismatchesErrorByName)
{
    // Number where a string (enum) is required, and vice versa.
    EXPECT_THROW(specFromJson("{\"predictor\": 3}"), SpecError);
    EXPECT_THROW(specFromJson("{\"width.fetch\": \"3\"}"), SpecError);
    EXPECT_THROW(specFromJson("{\"predictor\": \"oracle\"}"), SpecError);
    MachineConfig m;
    EXPECT_THROW(setParamFromString(m, "width.fetch", "abc"), SpecError);
    EXPECT_THROW(setParamFromString(m, "width.fetch", "-3"), SpecError);
    EXPECT_THROW(setParamFromString(m, "sq.infinite", "yes"), SpecError);
    EXPECT_THROW(setParamFromString(m, "width.fetch", "3.5"), SpecError);
}

TEST(SpecFromJson, MalformedDocumentsError)
{
    EXPECT_THROW(specFromJson(""), SpecError);
    EXPECT_THROW(specFromJson("not json"), SpecError);
    EXPECT_THROW(specFromJson("{\"width.fetch\": 3"), SpecError);
    EXPECT_THROW(specFromJson("{\"width.fetch\": {\"nested\": 1}}"),
                 SpecError);
    // Truncated wrappers and trailing content must not half-load: the
    // machine parsed would not be the machine in the file.
    EXPECT_THROW(specFromJson("{\"machine\": {\"base\": \"cpr\"}"),
                 SpecError);
    EXPECT_THROW(specFromJson("{\"kind\": \"msp\"} trailing"), SpecError);
    EXPECT_THROW(specFromJson("{\"kind\": \"msp\"}{\"kind\": \"cpr\"}"),
                 SpecError);
    EXPECT_THROW(specFromJson("{\"label\": \"x\\q\"}"), SpecError);
    EXPECT_THROW(specFromJson("{\"label\": \"\\u00g0\"}"), SpecError);
}

TEST(SpecFromJson, DecodesStandardJsonStringEscapes)
{
    // Labels written by standard JSON producers round-trip: escapes
    // decode to characters, not to the letter after the backslash.
    EXPECT_EQ(specFromJson("{\"label\": \"a\\nb\\tc\"}").name,
              "a\nb\tc");
    EXPECT_EQ(specFromJson("{\"label\": \"q\\\"\\\\e\"}").name,
              "q\"\\e");
    EXPECT_EQ(specFromJson("{\"label\": \"\\u0041\\u000a\"}").name,
              "A\n");

    MachineConfig m = nspConfig(16, PredictorKind::Gshare);
    m.name = "odd \"label\"\nwith\tcontrol";
    const MachineConfig back = specFromJson(specToJson(m));
    EXPECT_EQ(back.name, m.name);
}

TEST(SpecFromJson, DefaultPredictorSeedsPartialDocuments)
{
    // The CLI's --predictor reaches machines loaded from partial spec
    // files (and their "base" preset)...
    EXPECT_EQ(specFromJson("{\"base\": \"16sp\"}",
                           PredictorKind::Tage).predictor,
              PredictorKind::Tage);
    EXPECT_EQ(specFromJson("{}", PredictorKind::Tage).predictor,
              PredictorKind::Tage);
    // ...but an explicit "predictor" key always wins: a full dump is a
    // complete machine.
    EXPECT_EQ(specFromJson("{\"predictor\": \"gshare\"}",
                           PredictorKind::Tage).predictor,
              PredictorKind::Gshare);
}

TEST(SpecDiff, DescribesOverridesAgainstTheNearestPreset)
{
    MachineConfig m = nspConfig(16, PredictorKind::Gshare);
    EXPECT_EQ(describeSpec(m), "16sp");
    EXPECT_TRUE(specDiff(m, nspConfig(16, PredictorKind::Gshare)).empty());

    m.core.lcsLatency = 3;
    m.core.numCheckpoints = 4;
    const auto deltas =
        specDiff(m, nearestPreset(m).second);
    ASSERT_EQ(deltas.size(), 2u);
    // Registration order: lcs.latency is registered before
    // cpr.checkpoints.
    EXPECT_EQ(deltas[0].key, "lcs.latency");
    EXPECT_EQ(deltas[0].value, "3");
    EXPECT_EQ(deltas[0].baseValue, "1");
    EXPECT_EQ(deltas[1].key, "cpr.checkpoints");
    EXPECT_EQ(describeSpec(m), "16sp+lcs.latency=3+cpr.checkpoints=4");

    const std::string report = specDiffReport(m);
    EXPECT_NE(report.find("preset 16sp with 2 override(s)"),
              std::string::npos);
    EXPECT_NE(report.find("lcs.latency"), std::string::npos);
    EXPECT_NE(report.find("(preset: 1)"), std::string::npos);

    // presetNameFor is demoted to a cosmetic label: custom machines
    // simply have none, they are no longer second-class.
    EXPECT_EQ(presetNameFor(m), "");
}

TEST(SpecCli, SetOverridesMachineFileOverridesPreset)
{
    // A spec file that itself overrides its base preset...
    const std::string path = "/tmp/msp_test_machine_spec.json";
    {
        std::FILE *f = std::fopen(path.c_str(), "w");
        ASSERT_NE(f, nullptr);
        std::fputs("{\"base\": \"16sp\", \"lcs.latency\": 3, "
                   "\"cpr.checkpoints\": 4}", f);
        std::fclose(f);
    }

    driver::CliOptions o;
    o.configNames = {"16sp"};
    o.machinePath = path;

    // ...loads on top of the preset list (machine file beats preset
    // defaults for the machine it defines)...
    auto machines = driver::resolveMachines(o);
    ASSERT_EQ(machines.size(), 2u);
    EXPECT_EQ(machines[0].core.lcsLatency, 1u);   // preset untouched
    EXPECT_EQ(machines[1].core.lcsLatency, 3u);   // file override
    EXPECT_EQ(machines[1].core.numCheckpoints, 4u);

    // ...and --set beats both, applied to every selected machine.
    o.sets = {"lcs.latency=7"};
    machines = driver::resolveMachines(o);
    ASSERT_EQ(machines.size(), 2u);
    EXPECT_EQ(machines[0].core.lcsLatency, 7u);
    EXPECT_EQ(machines[1].core.lcsLatency, 7u);
    EXPECT_EQ(machines[1].core.numCheckpoints, 4u);   // file keeps its win
    // Changed machines are relabelled with their spec identity.
    EXPECT_EQ(machines[0].name, "16sp+lcs.latency=7");

    std::remove(path.c_str());
}

TEST(SpecCli, ResolutionErrorsAreCliErrors)
{
    driver::CliOptions o;
    o.machinePath = "/tmp/msp_test_no_such_spec.json";
    EXPECT_THROW(driver::resolveMachines(o), driver::CliError);

    const std::string path = "/tmp/msp_test_bad_spec.json";
    {
        std::FILE *f = std::fopen(path.c_str(), "w");
        ASSERT_NE(f, nullptr);
        std::fputs("{\"bogus\": 1}", f);
        std::fclose(f);
    }
    driver::CliOptions bad;
    bad.machinePath = path;
    EXPECT_THROW(driver::resolveMachines(bad), driver::CliError);
    std::remove(path.c_str());

    driver::CliOptions badSet;
    badSet.configNames = {"16sp"};
    badSet.sets = {"lcs.latency"};   // no '='
    EXPECT_THROW(driver::resolveMachines(badSet), driver::CliError);
    badSet.sets = {"bogus=1"};
    EXPECT_THROW(driver::resolveMachines(badSet), driver::CliError);
}

TEST(Presets, PresetByNameResolvesEveryFamily)
{
    EXPECT_TRUE(sameSpec(presetByName("default", PredictorKind::Gshare),
                         MachineConfig{}));
    EXPECT_TRUE(sameSpec(presetByName("baseline", PredictorKind::Tage),
                         baselineConfig(PredictorKind::Tage)));
    EXPECT_TRUE(sameSpec(presetByName("cpr", PredictorKind::Gshare),
                         cprConfig(PredictorKind::Gshare)));
    EXPECT_TRUE(sameSpec(presetByName("ideal", PredictorKind::Gshare),
                         idealMspConfig(PredictorKind::Gshare)));
    EXPECT_TRUE(sameSpec(presetByName("64sp-noarb", PredictorKind::Gshare),
                         nspConfig(64, PredictorKind::Gshare, false)));
    EXPECT_THROW(presetByName("turbo", PredictorKind::Gshare), SpecError);
    EXPECT_THROW(presetByName("0sp", PredictorKind::Gshare), SpecError);
}

} // namespace
} // namespace msp
