/**
 * @file
 * Register-file power/area/timing model tests — the Table III claims
 * that must hold independent of calibration constants.
 */

#include <gtest/gtest.h>

#include "power/regfile_model.hh"

namespace msp {
namespace {

TEST(RegFileModel, MspFileBeatsCprDespiteMoreRegisters)
{
    // Table III's message: 512 entries at 1R/1W x 32 banks cost less
    // and read faster than 192 entries at 8R/4W x 4-or-8 banks.
    for (TechNode node : {TechNode::Nm65, TechNode::Nm45}) {
        RegFileCosts cpr4 = evaluateRegFile(cpr4BankOrg(), node);
        RegFileCosts cpr8 = evaluateRegFile(cpr8BankOrg(), node);
        RegFileCosts mspc = evaluateRegFile(msp16SpOrg(), node);
        EXPECT_LT(mspc.readPowerMw, cpr4.readPowerMw);
        EXPECT_LT(mspc.readPowerMw, cpr8.readPowerMw);
        EXPECT_LT(mspc.writePowerMw, cpr4.writePowerMw);
        EXPECT_LT(mspc.readTimeFo4, cpr4.readTimeFo4);
        EXPECT_LT(mspc.readTimeFo4, cpr8.readTimeFo4);
        EXPECT_LT(mspc.writeTimeFo4, cpr4.writeTimeFo4);
    }
}

TEST(RegFileModel, WritesAreFasterThanReads)
{
    // Table III shows ~1 FO4 writes vs ~5-6 FO4 reads (no sensing).
    for (TechNode node : {TechNode::Nm65, TechNode::Nm45}) {
        for (const RegFileOrg &org :
             {cpr4BankOrg(), cpr8BankOrg(), msp16SpOrg()}) {
            RegFileCosts c = evaluateRegFile(org, node);
            EXPECT_LT(c.writeTimeFo4, c.readTimeFo4);
        }
    }
}

TEST(RegFileModel, MoreBanksLowerAccessPower)
{
    // Banking shrinks the active array; idle banks only leak.
    RegFileCosts b4 = evaluateRegFile(cpr4BankOrg(), TechNode::Nm65);
    RegFileCosts b8 = evaluateRegFile(cpr8BankOrg(), TechNode::Nm65);
    EXPECT_LT(b8.readPowerMw, b4.readPowerMw);
    EXPECT_LT(b8.writePowerMw, b4.writePowerMw);
}

TEST(RegFileModel, PortScalingGrowsCellArea)
{
    RegFileOrg narrow{"1r1w", 192, 64, 4, 1, 1};
    RegFileOrg wide{"8r4w", 192, 64, 4, 8, 4};
    RegFileCosts cn = evaluateRegFile(narrow, TechNode::Nm65);
    RegFileCosts cw = evaluateRegFile(wide, TechNode::Nm65);
    // 12 ports vs 2: quadratic cell growth means >> 4x area.
    EXPECT_GT(cw.areaMm2, cn.areaMm2 * 4.0);
}

TEST(RegFileModel, TechShrinkReducesArea)
{
    RegFileCosts c65 = evaluateRegFile(msp16SpOrg(), TechNode::Nm65);
    RegFileCosts c45 = evaluateRegFile(msp16SpOrg(), TechNode::Nm45);
    EXPECT_LT(c45.areaMm2, c65.areaMm2);
}

TEST(RegFileModel, InBallparkOfPaperValues)
{
    // Loose absolute calibration: within ~2.5x of the published mW /
    // FO4 numbers (the model substitutes for SPICE + layout).
    RegFileCosts c = evaluateRegFile(msp16SpOrg(), TechNode::Nm65);
    EXPECT_GT(c.readPowerMw, 2.10 / 2.5);
    EXPECT_LT(c.readPowerMw, 2.10 * 2.5);
    EXPECT_GT(c.readTimeFo4, 4.44 / 2.5);
    EXPECT_LT(c.readTimeFo4, 4.44 * 2.5);
}

TEST(RegFileModelDeath, IndivisibleBankingPanics)
{
    RegFileOrg bad{"bad", 100, 64, 3, 1, 1};
    EXPECT_DEATH(evaluateRegFile(bad, TechNode::Nm65), "divisible");
}

} // namespace
} // namespace msp
