/**
 * @file
 * Unit tests for SctBank — allocation order, RelIQ use bits, the RelP
 * "done" predicate, LCS contribution, commit release (keep the newest
 * committed mapping), recovery release, and Sb flash-clear.
 */

#include <gtest/gtest.h>

#include "core/sct.hh"

namespace msp {
namespace {

SctBank
freshBank(unsigned cap = 4)
{
    SctBank b(2, cap);
    int s = b.allocate(0);   // architectural reset entry
    b.entry(s).ready = true;
    return b;
}

TEST(SctBank, AllocatesInOrderUntilFull)
{
    SctBank b = freshBank(3);
    b.allocate(1);
    b.allocate(2);
    EXPECT_TRUE(b.full());
    EXPECT_EQ(b.occupancy(), 3u);
    // Oldest-to-newest order by StateId.
    std::uint32_t prev = 0;
    bool first = true;
    for (int slot : b.liveOrder()) {
        if (!first)
            EXPECT_GT(b.entry(slot).stateId, prev);
        prev = b.entry(slot).stateId;
        first = false;
    }
}

TEST(SctBank, RenameSlotIsNewest)
{
    SctBank b = freshBank();
    int s1 = b.allocate(1);
    EXPECT_EQ(b.renameSlot(), s1);
    int s2 = b.allocate(2);
    EXPECT_EQ(b.renameSlot(), s2);
    EXPECT_NE(s1, s2);
}

TEST(SctBank, UseBitsGateDone)
{
    SctBank b = freshBank();
    int s = b.allocate(1);
    SctEntry &e = b.entry(s);
    EXPECT_FALSE(e.done());        // not ready
    e.ready = true;
    EXPECT_TRUE(e.done());
    EXPECT_TRUE(b.setUse(s, 7));   // consumer in IQ slot 7
    EXPECT_FALSE(e.done());
    EXPECT_FALSE(b.setUse(s, 7));  // duplicate: not newly set
    b.clearUse(s, 7);
    EXPECT_TRUE(e.done());
}

TEST(SctBank, PendingOpsGateDone)
{
    SctBank b = freshBank();
    int s = b.allocate(1);
    SctEntry &e = b.entry(s);
    e.ready = true;
    e.pendingOps = 2;              // two same-state stores/branches
    EXPECT_FALSE(e.done());
    e.pendingOps = 0;
    EXPECT_TRUE(e.done());
}

TEST(SctBank, LcsContributionIsFirstNotDone)
{
    SctBank b = freshBank();
    int s1 = b.allocate(1);
    int s2 = b.allocate(2);
    b.entry(s2).ready = true;
    b.markLcsDirty();              // direct entry() mutation contract
    // Entry 1 not ready: it is the oldest not-done.
    ASSERT_TRUE(b.lcsContribution().has_value());
    EXPECT_EQ(*b.lcsContribution(), 1u);
    b.entry(s1).ready = true;
    b.markLcsDirty();
    // Everything done: the bank is excluded (RenP==RelP condition).
    EXPECT_FALSE(b.lcsContribution().has_value());
}

TEST(SctBank, ReleaseKeepsNewestCommittedMapping)
{
    SctBank b = freshBank(4);
    int s1 = b.allocate(1);
    int s2 = b.allocate(2);
    b.entry(s1).ready = true;
    b.entry(s2).ready = true;
    // LCS passed state 2: version 1's successor committed, so the
    // reset entry and version 1 release; version 2 is the
    // architectural mapping and must survive.
    EXPECT_EQ(b.releaseCommitted(3), 2);
    EXPECT_EQ(b.occupancy(), 1u);
    EXPECT_EQ(b.renameSlot(), s2);
    // Nothing further releases: the last mapping always stays.
    EXPECT_EQ(b.releaseCommitted(100), 0);
}

TEST(SctBank, ReleaseStopsAtUncommittedSuccessor)
{
    SctBank b = freshBank(4);
    int s1 = b.allocate(5);
    b.entry(s1).ready = true;
    // LCS = 5: version at state 5 is *committable* but its own
    // successor hasn't committed; the reset entry must stay (it is
    // still the newest entry with a committed state).
    EXPECT_EQ(b.releaseCommitted(5), 0);
    EXPECT_EQ(b.releaseCommitted(6), 1);   // now state 5 committed
}

TEST(SctBank, RecoveryReleasesFromTail)
{
    SctBank b = freshBank(4);
    b.allocate(3);
    int s2 = b.allocate(7);
    // Recovery StateId 4: state 7 squashes.
    b.releaseTail(s2);
    EXPECT_EQ(b.occupancy(), 2u);
    EXPECT_EQ(b.entry(b.renameSlot()).stateId, 3u);
}

TEST(SctBank, SlotsAreReusedAfterRelease)
{
    SctBank b = freshBank(2);
    int s1 = b.allocate(1);
    b.entry(s1).ready = true;
    EXPECT_TRUE(b.full());
    b.releaseCommitted(2);         // reset entry leaves
    EXPECT_FALSE(b.full());
    int s2 = b.allocate(2);
    EXPECT_GE(s2, 0);
    EXPECT_TRUE(b.full());
}

TEST(SctBank, FlashClearSaturatesAtZero)
{
    SctBank b = freshBank(4);
    int s1 = b.allocate(100);
    int s2 = b.allocate(600);
    b.flashClearStateIds(512);
    EXPECT_EQ(b.entry(s1).stateId, 0u);     // clamped (committed-old)
    EXPECT_EQ(b.entry(s2).stateId, 88u);    // shifted
}

// ---- exhaustion paths ------------------------------------------------------

TEST(SctBank, ExhaustionIsVisibleBeforeAllocation)
{
    // The rename stage must gate on full() — a bank never reports
    // full() while a slot is free, and always does once the last
    // physical register is handed out.
    SctBank b = freshBank(3);
    EXPECT_FALSE(b.full());
    b.allocate(1);
    EXPECT_FALSE(b.full());
    b.allocate(2);
    EXPECT_TRUE(b.full());
}

TEST(SctBank, ExhaustedBankDrainsThroughCommitRelease)
{
    // Full bank, every entry locally complete: commit release (LCS
    // passing the successors) must free all but the newest mapping,
    // ending the stall without recovery.
    SctBank b = freshBank(3);
    int s1 = b.allocate(1);
    int s2 = b.allocate(2);
    b.entry(s1).ready = true;
    b.entry(s2).ready = true;
    ASSERT_TRUE(b.full());
    EXPECT_EQ(b.releaseCommitted(3), 2);
    EXPECT_FALSE(b.full());
    EXPECT_EQ(b.renameSlot(), s2);
}

TEST(SctBank, ExhaustedBankDrainsThroughRecoveryRelease)
{
    // Full bank whose youngest allocator squashes: tail release frees
    // the slot even while older entries are still in flight.
    SctBank b = freshBank(3);
    b.allocate(1);
    int s2 = b.allocate(2);
    ASSERT_TRUE(b.full());
    b.releaseTail(s2);
    EXPECT_FALSE(b.full());
    EXPECT_EQ(b.entry(b.renameSlot()).stateId, 1u);
}

TEST(SctBankDeath, AllocateOnFullBankPanics)
{
    SctBank b = freshBank(2);
    b.allocate(1);
    ASSERT_TRUE(b.full());
    EXPECT_DEATH(b.allocate(2), "full bank");
}

TEST(SctBankDeath, ReleaseTailWithPendingConsumersPanics)
{
    SctBank b = freshBank();
    int s = b.allocate(1);
    b.setUse(s, 3);
    EXPECT_DEATH(b.releaseTail(s), "pending consumers");
}

TEST(SctBankDeath, CommitReleaseOfNotDoneEntryPanics)
{
    SctBank b = freshBank(4);
    int s0 = b.allocate(1);        // never becomes ready
    int s1 = b.allocate(2);
    b.entry(s1).ready = true;
    // Drop the architectural reset entry legally first.
    b.entry(s0).ready = true;
    b.releaseCommitted(2);
    b.entry(s0).ready = false;     // oldest live entry not done again
    EXPECT_DEATH(b.releaseCommitted(4), "not-done");
}

TEST(SctBankDeath, CapacityBelowTwoPanics)
{
    EXPECT_DEATH(SctBank(0, 1), "too small");
}

TEST(SctBankDeath, InvalidSlotAccessPanics)
{
    SctBank b = freshBank();
    EXPECT_DEATH(b.entry(99), "invalid slot");
}

TEST(SctBankDeath, NonMonotonicAllocationPanics)
{
    SctBank b = freshBank();
    b.allocate(5);
    EXPECT_DEATH(b.allocate(4), "non-monotonic");
}

TEST(SctBankDeath, TailMismatchPanics)
{
    SctBank b = freshBank();
    int s1 = b.allocate(1);
    b.allocate(2);
    EXPECT_DEATH(b.releaseTail(s1), "mismatch");
}

} // namespace
} // namespace msp
