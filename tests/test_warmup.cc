/**
 * @file
 * Fast-forward warmup tests: the warmup.instrs spec key round-trips,
 * warmed differential runs stay bit-clean on every core kind, warmup
 * replays are deterministic, the handoff composes with fastForward()
 * (post-warmup commits == functional suffix), and the fault-injection
 * oracle still bites through a warmed run.
 */

#include <gtest/gtest.h>

#include <cstdint>

#include "functional/executor.hh"
#include "functional/warmup.hh"
#include "sim/machine.hh"
#include "sim/presets.hh"
#include "sim/spec.hh"
#include "verify/fuzzer.hh"
#include "verify/oracle.hh"

namespace msp {
namespace {

TEST(Warmup, SpecKeyRoundTripsThroughJson)
{
    MachineConfig cfg = nspConfig(16, PredictorKind::Gshare);
    setParamFromString(cfg, "warmup.instrs", "12345");
    EXPECT_EQ(cfg.core.warmupInstrs, 12345u);
    EXPECT_EQ(getParam(cfg, "warmup.instrs"),
              ParamValue::ofU64(12345));

    const std::string json = specToJson(cfg);
    EXPECT_NE(json.find("\"warmup.instrs\": 12345"), std::string::npos);
    const MachineConfig back = specFromJson(json);
    EXPECT_EQ(back.core.warmupInstrs, 12345u);
    EXPECT_TRUE(sameSpec(cfg, back));
}

TEST(Warmup, DifferentialRunsStayCleanOnEveryCoreKind)
{
    const Program p = verify::fuzzProgram(42);
    for (const std::uint64_t warm : {std::uint64_t{1}, std::uint64_t{7},
                                     std::uint64_t{500}}) {
        for (auto cfg : {baselineConfig(PredictorKind::Gshare),
                         cprConfig(PredictorKind::Gshare),
                         nspConfig(8, PredictorKind::Gshare),
                         nspConfig(16, PredictorKind::Gshare),
                         idealMspConfig(PredictorKind::Gshare)}) {
            cfg.core.warmupInstrs = warm;
            const verify::DiffOutcome out = verify::diffRun(p, cfg);
            EXPECT_TRUE(out.ok())
                << cfg.name << " warm=" << warm << " first: "
                << (out.divergences.empty()
                        ? "-"
                        : out.divergences.front().detail);
            EXPECT_GT(out.committedCore, 0u);
        }
    }
}

TEST(Warmup, SnapshotComparesStayCleanThroughAWarmedRun)
{
    const Program p = verify::fuzzProgram(21);
    MachineConfig cfg = nspConfig(16, PredictorKind::Gshare);
    cfg.core.warmupInstrs = 300;
    verify::DiffOptions opt;
    opt.snapshotEvery = 64;
    const verify::DiffOutcome out = verify::diffRun(p, cfg, opt);
    EXPECT_TRUE(out.ok());
    EXPECT_FALSE(out.localized);
}

TEST(Warmup, ReplaysAreBitIdentical)
{
    const Program p = verify::fuzzProgram(7);
    MachineConfig cfg = nspConfig(16, PredictorKind::Gshare);
    cfg.core.warmupInstrs = 200;
    const verify::DiffOutcome a = verify::diffRun(p, cfg);
    const verify::DiffOutcome b = verify::diffRun(p, cfg);
    ASSERT_TRUE(a.ok());
    EXPECT_EQ(a.streamHash, b.streamHash);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.committedCore, b.committedCore);
}

TEST(Warmup, CommitCountEqualsTheFunctionalSuffix)
{
    // The timing run after a warmup of N must commit exactly what the
    // functional model executes after the same fast-forward — including
    // when N overshoots the program (warmup stops just before HALT and
    // the core still commits at least the HALT itself).
    const Program p = verify::fuzzProgram(11);

    FunctionalExecutor whole(p);
    whole.run(~std::uint64_t{0} >> 1);
    ASSERT_TRUE(whole.halted());
    const std::uint64_t total = whole.instCount();

    for (const std::uint64_t warm :
         {std::uint64_t{100}, total - 1, total + 1000000}) {
        FunctionalExecutor ff(p);
        const std::uint64_t warmDone = fastForward(ff, p, warm);
        EXPECT_LE(warmDone, warm);
        EXPECT_LT(warmDone, total);   // never swallows the HALT

        MachineConfig cfg = nspConfig(16, PredictorKind::Gshare);
        cfg.core.warmupInstrs = warm;
        Machine m(cfg, p);
        const RunResult r = m.run(~std::uint64_t{0}, ~std::uint64_t{0});
        EXPECT_TRUE(m.core().halted()) << "warm=" << warm;
        EXPECT_EQ(r.committed, total - warmDone) << "warm=" << warm;
        EXPECT_GT(r.committed, 0u);
    }
}

TEST(Warmup, ZeroWarmupMatchesTheUnwarmedRun)
{
    const Program p = verify::fuzzProgram(5);
    MachineConfig plain = nspConfig(16, PredictorKind::Gshare);
    MachineConfig zero = plain;
    zero.core.warmupInstrs = 0;

    const verify::DiffOutcome a = verify::diffRun(p, plain);
    const verify::DiffOutcome b = verify::diffRun(p, zero);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a.streamHash, b.streamHash);
    EXPECT_EQ(a.cycles, b.cycles);
}

TEST(Warmup, InjectedFaultIsStillCaughtThroughWarmup)
{
    const Program p = verify::fuzzProgram(42);
    MachineConfig cfg = nspConfig(16, PredictorKind::Gshare);
    cfg.core.warmupInstrs = 200;
    cfg.core.commitFaultAt = 50;   // counts post-warmup commits
    const verify::DiffOutcome out = verify::diffRun(p, cfg);
    EXPECT_FALSE(out.ok());
}

TEST(Warmup, FastForwardStopsBeforeHalt)
{
    const Program p = verify::fuzzProgram(3);
    FunctionalExecutor ex(p);
    const std::uint64_t done =
        fastForward(ex, p, ~std::uint64_t{0} >> 1);
    EXPECT_FALSE(ex.halted());
    EXPECT_FALSE(warmupCanStep(ex, p));
    EXPECT_TRUE(p.at(ex.pc() % p.size()).info().isHalt);
    EXPECT_EQ(ex.instCount(), done);

    // One more architectural step retires the HALT.
    const StepResult sr = ex.step();
    EXPECT_TRUE(sr.halted);
    EXPECT_TRUE(ex.halted());
}

} // anonymous namespace
} // namespace msp
