/**
 * @file
 * Coverage-guided fuzzing subsystem tests (verify/coverage.hh,
 * verify/corpus.hh): bitmap semantics and hex codec, harvest
 * determinism across thread counts, corpus novelty admission and JSONL
 * persistence (incl. torn-tail quarantine), tuner purity and knob
 * bounds, and divergence dedup folding.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>

#include "common/json.hh"
#include "driver/report.hh"
#include "driver/state.hh"
#include "isa/program.hh"
#include "pipeline/core_base.hh"
#include "sim/presets.hh"
#include "verify/corpus.hh"
#include "verify/coverage.hh"
#include "verify/diff_campaign.hh"
#include "verify/fuzzer.hh"
#include "verify/report.hh"

namespace msp {
namespace {

using driver::CheckpointError;
using json::JsonError;
using verify::Corpus;
using verify::CoverageMap;
using verify::coverageBucket;
using verify::dedupShrinks;
using verify::FeatureGroup;
using verify::FuzzMix;
using verify::groupHitFraction;
using verify::harvestCoverage;
using verify::programShapeHash;
using verify::ShrinkResult;
using verify::tuneMixes;

// ---------------------------------------------------------------------------
// CoverageMap

TEST(CoverageMap, SetTestAndCounts)
{
    CoverageMap m;
    EXPECT_TRUE(m.empty());
    EXPECT_EQ(m.bitsSet(), 0u);
    EXPECT_EQ(m.featuresHit(), 0u);

    m.set(0, 0);
    m.set(0, 7);
    m.set(CoverageMap::numFeatures - 1, 3);
    EXPECT_TRUE(m.test(0, 0));
    EXPECT_TRUE(m.test(0, 7));
    EXPECT_FALSE(m.test(0, 1));
    EXPECT_EQ(m.bitsSet(), 3u);
    EXPECT_EQ(m.featuresHit(), 2u);  // feature 0 counts once

    CoverageMap base;
    base.set(0, 0);
    EXPECT_EQ(m.newBitsVs(base), 2u);
    EXPECT_EQ(base.newBitsVs(m), 0u);

    base.orWith(m);
    EXPECT_EQ(base.bitsSet(), 3u);
    EXPECT_EQ(m.newBitsVs(base), 0u);
}

TEST(CoverageMap, BucketsAreAflLog2Classes)
{
    EXPECT_EQ(coverageBucket(1), 0u);
    EXPECT_EQ(coverageBucket(2), 1u);
    EXPECT_EQ(coverageBucket(3), 2u);
    EXPECT_EQ(coverageBucket(4), 3u);
    EXPECT_EQ(coverageBucket(7), 3u);
    EXPECT_EQ(coverageBucket(8), 4u);
    EXPECT_EQ(coverageBucket(15), 4u);
    EXPECT_EQ(coverageBucket(16), 5u);
    EXPECT_EQ(coverageBucket(31), 5u);
    EXPECT_EQ(coverageBucket(32), 6u);
    EXPECT_EQ(coverageBucket(127), 6u);
    EXPECT_EQ(coverageBucket(128), 7u);
    EXPECT_EQ(coverageBucket(~std::uint64_t{0}), 7u);
}

TEST(CoverageMap, HexRoundTripsExactly)
{
    CoverageMap m;
    m.set(0, 0);
    m.set(48, 6);
    m.set(81, 7);
    const std::string hex = m.toHex();
    EXPECT_EQ(hex.size(), CoverageMap::numWords * 16u);
    EXPECT_EQ(CoverageMap::fromHex(hex), m);
    EXPECT_EQ(CoverageMap::fromHex(CoverageMap{}.toHex()), CoverageMap{});
}

TEST(CoverageMap, FromHexRejectsMalformedInput)
{
    const std::string good = CoverageMap{}.toHex();
    EXPECT_THROW(CoverageMap::fromHex(""), JsonError);
    EXPECT_THROW(CoverageMap::fromHex(good.substr(1)), JsonError);
    EXPECT_THROW(CoverageMap::fromHex(good + "0"), JsonError);
    std::string bad = good;
    bad[5] = 'g';
    EXPECT_THROW(CoverageMap::fromHex(bad), JsonError);
    bad = good;
    bad[0] = ' ';
    EXPECT_THROW(CoverageMap::fromHex(bad), JsonError);
}

TEST(CoverageMap, HarvestFoldsCountersIntoBuckets)
{
    // A zeroed counter block sets no bit at all.
    PathEvents ev{};
    EXPECT_TRUE(harvestCoverage(ev).empty());

    ev.stallEdge[0] = 1;        // feature 0, count 1 -> bucket 0
    ev.predEdge[3] = 8;         // feature 49 + 3, count 8 -> bucket 4
    ev.squashDepth[2] = 200;    // feature 65 + 2 -> bucket 7
    ev.exceptionSquash = 2;     // feature 73 -> bucket 1
    ev.sqProbe[1] = 3;          // feature 74 + 1 -> bucket 2
    ev.sqL2Forward = 5;         // feature 78 -> bucket 3
    ev.sctGateRelease = 16;     // feature 79 -> bucket 5
    ev.lcsDirtyBank = 40;       // feature 80 -> bucket 6
    ev.lcsRecompute = 1;        // feature 81 -> bucket 0
    const CoverageMap m = harvestCoverage(ev);
    EXPECT_TRUE(m.test(0, 0));
    EXPECT_TRUE(m.test(49 + 3, 4));
    EXPECT_TRUE(m.test(65 + 2, 7));
    EXPECT_TRUE(m.test(73, 1));
    EXPECT_TRUE(m.test(74 + 1, 2));
    EXPECT_TRUE(m.test(78, 3));
    EXPECT_TRUE(m.test(79, 5));
    EXPECT_TRUE(m.test(80, 6));
    EXPECT_TRUE(m.test(81, 0));
    EXPECT_EQ(m.bitsSet(), 9u);
    EXPECT_EQ(m.featuresHit(), 9u);
}

TEST(FeatureGroups, PartitionTheLayout)
{
    EXPECT_EQ(verify::featureGroup(0), FeatureGroup::Stall);
    EXPECT_EQ(verify::featureGroup(48), FeatureGroup::Stall);
    EXPECT_EQ(verify::featureGroup(49), FeatureGroup::Pred);
    EXPECT_EQ(verify::featureGroup(64), FeatureGroup::Pred);
    EXPECT_EQ(verify::featureGroup(65), FeatureGroup::Squash);
    EXPECT_EQ(verify::featureGroup(73), FeatureGroup::Squash);
    EXPECT_EQ(verify::featureGroup(74), FeatureGroup::Sq);
    EXPECT_EQ(verify::featureGroup(78), FeatureGroup::Sq);
    EXPECT_EQ(verify::featureGroup(79), FeatureGroup::Sct);
    EXPECT_EQ(verify::featureGroup(81), FeatureGroup::Sct);

    CoverageMap m;
    EXPECT_DOUBLE_EQ(groupHitFraction(m, FeatureGroup::Sct), 0.0);
    // All 8 buckets of all 3 Sct features: fraction 1.
    for (unsigned f = 79; f <= 81; ++f)
        for (unsigned b = 0; b < CoverageMap::numBuckets; ++b)
            m.set(f, b);
    EXPECT_DOUBLE_EQ(groupHitFraction(m, FeatureGroup::Sct), 1.0);
    EXPECT_DOUBLE_EQ(groupHitFraction(m, FeatureGroup::Stall), 0.0);
}

// The bitmap a campaign harvests must not depend on worker scheduling:
// same sweep at 1 and 4 threads, same maps bit for bit.
TEST(CoverageHarvest, DeterministicAcrossThreadCounts)
{
    const std::vector<FuzzMix> mixes = {*verify::findMix("mixed")};
    const std::vector<MachineConfig> cfgs = {
        presetByName("16sp", PredictorKind::Gshare)};

    const auto sweep = [&](unsigned threads) {
        verify::DiffCampaign c(threads);
        c.addSweep(mixes, 3, 7, cfgs, 40000);
        c.setCollectCoverage(true);
        return c.run();
    };
    const auto a = sweep(1);
    const auto b = sweep(4);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_TRUE(a[i].hasCoverage);
        ASSERT_TRUE(b[i].hasCoverage);
        EXPECT_FALSE(a[i].coverage.empty());
        EXPECT_EQ(a[i].coverage, b[i].coverage);
    }
}

// ---------------------------------------------------------------------------
// Corpus

struct TempCorpus
{
    std::string path;
    explicit TempCorpus(const char *name)
        : path(std::string("/tmp/msp_test_") + name + ".jsonl")
    {
        std::remove(path.c_str());
        std::remove((path + ".torn").c_str());
    }
    ~TempCorpus()
    {
        std::remove(path.c_str());
        std::remove((path + ".torn").c_str());
    }
};

TEST(Corpus, AdmitsOnlyCoverageNovelRuns)
{
    const FuzzMix mix = *verify::findMix("mixed");
    Corpus c;

    CoverageMap m1;
    m1.set(0, 0);
    m1.set(5, 3);
    EXPECT_TRUE(c.consider(mix, 1, 0, m1));
    // Identical map: nothing new, rejected.
    EXPECT_FALSE(c.consider(mix, 2, 0, m1));
    // A subset: rejected too.
    CoverageMap sub;
    sub.set(5, 3);
    EXPECT_FALSE(c.consider(mix, 3, 0, sub));
    // One fresh bit is enough.
    CoverageMap m2 = m1;
    m2.set(7, 1);
    EXPECT_TRUE(c.consider(mix, 4, 1, m2));
    // An all-zero map is never novel.
    EXPECT_FALSE(c.consider(mix, 5, 1, CoverageMap{}));

    ASSERT_EQ(c.entries().size(), 2u);
    EXPECT_EQ(c.entries()[0].newBits, 2u);
    EXPECT_EQ(c.entries()[1].newBits, 1u);
    EXPECT_EQ(c.entries()[1].seed, 4u);
    EXPECT_EQ(c.entries()[1].wave, 1u);
    EXPECT_EQ(c.aggregate().bitsSet(), 3u);
}

TEST(Corpus, JsonlRoundTripsExactly)
{
    TempCorpus f("corpus_roundtrip");
    Corpus c;
    CoverageMap m1;
    m1.set(3, 2);
    CoverageMap m2;
    m2.set(80, 7);
    FuzzMix tuned = *verify::findMix("branchy");
    tuned.name = "branchy~w1";
    tuned.condProb = 0.625;
    ASSERT_TRUE(c.consider(*verify::findMix("mixed"), 11, 0, m1));
    ASSERT_TRUE(c.consider(tuned, 22, 1, m2));
    c.save(f.path);

    Corpus r;
    ASSERT_TRUE(r.load(f.path));
    EXPECT_EQ(r.tornRecords(), 0u);
    ASSERT_EQ(r.entries().size(), 2u);
    for (std::size_t i = 0; i < 2; ++i) {
        EXPECT_EQ(r.entries()[i].seed, c.entries()[i].seed);
        EXPECT_EQ(r.entries()[i].wave, c.entries()[i].wave);
        EXPECT_EQ(r.entries()[i].newBits, c.entries()[i].newBits);
        EXPECT_EQ(r.entries()[i].coverage, c.entries()[i].coverage);
        EXPECT_EQ(verify::mixToJson(r.entries()[i].mix),
                  verify::mixToJson(c.entries()[i].mix));
    }
    EXPECT_EQ(r.aggregate(), c.aggregate());

    // Save of the reloaded corpus is byte-identical.
    TempCorpus g("corpus_roundtrip2");
    r.save(g.path);
    EXPECT_EQ(driver::readFile(f.path), driver::readFile(g.path));
}

TEST(Corpus, MissingFileIsAFreshCorpus)
{
    Corpus c;
    EXPECT_FALSE(c.load("/tmp/msp_test_no_such_corpus.jsonl"));
    EXPECT_TRUE(c.entries().empty());
}

TEST(Corpus, TornTrailingRecordIsQuarantinedNotFatal)
{
    TempCorpus f("corpus_torn");
    Corpus c;
    CoverageMap m1, m2;
    m1.set(1, 1);
    m2.set(2, 2);
    ASSERT_TRUE(c.consider(*verify::findMix("mixed"), 1, 0, m1));
    ASSERT_TRUE(c.consider(*verify::findMix("mixed"), 2, 0, m2));
    c.save(f.path);

    // Chop the tail mid-record: a crash between write and newline.
    const std::string content = driver::readFile(f.path);
    driver::writeFile(f.path, content.substr(0, content.size() - 9));

    Corpus r;
    ASSERT_TRUE(r.load(f.path));
    ASSERT_EQ(r.entries().size(), 1u);
    EXPECT_EQ(r.entries()[0].seed, 1u);
    EXPECT_EQ(r.tornRecords(), 1u);
    // The torn bytes are quarantined next to the corpus.
    std::string torn;
    ASSERT_TRUE(driver::tryReadFile(f.path + ".torn", torn));
    EXPECT_NE(torn.find("\"seed\": 2"), std::string::npos);
}

TEST(Corpus, MidFileCorruptionThrows)
{
    TempCorpus f("corpus_corrupt");
    Corpus c;
    CoverageMap m1, m2;
    m1.set(1, 1);
    m2.set(2, 2);
    ASSERT_TRUE(c.consider(*verify::findMix("mixed"), 1, 0, m1));
    ASSERT_TRUE(c.consider(*verify::findMix("mixed"), 2, 0, m2));
    c.save(f.path);

    // Garble the *first* record (not the tail): unrecoverable.
    std::string content = driver::readFile(f.path);
    const std::size_t at = content.find("\"seed\": 1");
    ASSERT_NE(at, std::string::npos);
    content.replace(at, 9, "\"sXXd\": 1");
    driver::writeFile(f.path, content);
    Corpus r;
    EXPECT_THROW(r.load(f.path), CheckpointError);
}

TEST(Corpus, RejectsForeignAndMismatchedFiles)
{
    TempCorpus f("corpus_foreign");
    // Not a corpus at all.
    driver::writeFile(f.path, "{\"msp_checkpoint\": 1}\n");
    {
        Corpus r;
        EXPECT_THROW(r.load(f.path), CheckpointError);
    }
    // A corpus from a build with a different coverage shape: the
    // bitmaps are uninterpretable, not quietly truncatable.
    driver::writeFile(f.path, "{\"msp_corpus\": 1, \"features\": 10, "
                              "\"buckets\": 8, \"entries\": 0}\n");
    {
        Corpus r;
        EXPECT_THROW(r.load(f.path), CheckpointError);
    }
    // An empty file is not a corpus either.
    driver::writeFile(f.path, "");
    {
        Corpus r;
        EXPECT_THROW(r.load(f.path), CheckpointError);
    }
}

// ---------------------------------------------------------------------------
// Mix auto-tuner

TEST(TuneMixes, IsAPureFunctionOfItsArguments)
{
    CoverageMap agg;
    agg.set(0, 0);  // a lone Stall bit; everything else is a hole
    const auto a = tuneMixes(verify::standardMixes(), agg, 1, 42);
    const auto b = tuneMixes(verify::standardMixes(), agg, 1, 42);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(verify::mixToJson(a[i]), verify::mixToJson(b[i]));

    // A different wave (or seed) tunes differently.
    const auto c = tuneMixes(verify::standardMixes(), agg, 2, 42);
    EXPECT_NE(verify::mixToJson(a[0]), verify::mixToJson(c[0]));
}

TEST(TuneMixes, RenamesAndKeepsKnobsInRange)
{
    const auto tuned = tuneMixes(verify::standardMixes(), CoverageMap{},
                                 3, 7);
    const auto base = verify::standardMixes();
    ASSERT_EQ(tuned.size(), base.size());
    for (std::size_t i = 0; i < tuned.size(); ++i) {
        const FuzzMix &t = tuned[i];
        EXPECT_EQ(t.name, base[i].name + "~w3");
        EXPECT_GE(t.condProb, 0.0);
        EXPECT_LE(t.condProb, 0.9);
        EXPECT_LE(t.indirectProb, 1.0);
        EXPECT_LE(t.callProb, 0.5);
        EXPECT_LE(t.loopProb, 0.8);
        EXPECT_LE(t.trapProb, 0.05);
        EXPECT_LE(t.hotProb, 0.95);
        EXPECT_GE(t.weights.load, 0.05);
        EXPECT_LE(t.weights.load, 8.0);
        EXPECT_GE(t.weights.store, 0.05);
        EXPECT_LE(t.weights.store, 8.0);
        EXPECT_GE(t.weights.fp, 0.05);
        EXPECT_LE(t.weights.fp, 8.0);
        EXPECT_GE(t.hotWords, 1u);
        EXPECT_GE(t.segMax, t.segMin);
        EXPECT_GE(t.memWords, t.hotWords);
        // An empty aggregate is all holes: control-flow pressure rises.
        EXPECT_GT(t.condProb, base[i].condProb);
    }
}

TEST(TuneMixes, FullCoverageLeavesKnobsAlone)
{
    CoverageMap full;
    for (unsigned f = 0; f < CoverageMap::numFeatures; ++f)
        for (unsigned b = 0; b < CoverageMap::numBuckets; ++b)
            full.set(f, b);
    const auto base = verify::standardMixes();
    const auto tuned = tuneMixes(base, full, 1, 7);
    for (std::size_t i = 0; i < tuned.size(); ++i) {
        FuzzMix renamed = tuned[i];
        renamed.name = base[i].name;  // only the wave suffix may differ
        EXPECT_EQ(verify::mixToJson(renamed), verify::mixToJson(base[i]));
    }
}

// ---------------------------------------------------------------------------
// Divergence dedup

TEST(Dedup, SameRootCauseFoldsToOneRepro)
{
    ShrinkResult a, b, c;
    a.repro.kind = "stream";
    a.repro.firstBadCommit = 100;
    a.jobIndex = 0;
    b.repro.kind = "stream";
    b.repro.firstBadCommit = 100;
    b.jobIndex = 3;
    c.repro.kind = "int-reg";
    c.repro.firstBadCommit = 100;
    c.jobIndex = 5;

    std::vector<ShrinkResult> v{a, b, c};
    EXPECT_EQ(dedupShrinks(v), 1u);
    ASSERT_EQ(v.size(), 2u);
    // Lowest-jobIndex representative survives with the group size.
    EXPECT_EQ(v[0].jobIndex, 0u);
    EXPECT_EQ(v[0].duplicates, 2u);
    EXPECT_EQ(v[1].jobIndex, 5u);
    EXPECT_EQ(v[1].duplicates, 1u);
}

TEST(Dedup, ProgramShapeSeparatesOtherwiseEqualKeys)
{
    Program p1;
    p1.code.resize(1);
    Program p2;
    p2.code.resize(2);
    EXPECT_NE(programShapeHash(p1), programShapeHash(p2));

    ShrinkResult a, b;
    a.repro.kind = "stream";
    a.repro.firstBadCommit = 50;
    a.repro.program = std::make_shared<const Program>(p1);
    b = a;
    b.repro.program = std::make_shared<const Program>(p2);
    b.jobIndex = 1;
    std::vector<ShrinkResult> v{a, b};
    EXPECT_EQ(dedupShrinks(v), 0u);
    EXPECT_EQ(v.size(), 2u);
    // No embedded program at all is its own key component.
    b.repro.program = nullptr;
    EXPECT_NE(verify::dedupKey(a), verify::dedupKey(b));
}

TEST(Dedup, FoldedReprosCarryDuplicatesInTheReport)
{
    ShrinkResult a, b;
    a.repro.kind = "stream";
    a.jobIndex = 0;
    b.repro.kind = "stream";
    b.jobIndex = 1;
    std::vector<ShrinkResult> v{a, b};
    ASSERT_EQ(dedupShrinks(v), 1u);

    verify::CoverageReport cov;
    cov.enabled = true;
    const std::string doc = verify::toJson({}, v, cov);
    EXPECT_NE(doc.find("\"duplicates\": 2"), std::string::npos);

    // Unfolded repros never emit the field (duplicates 1 would just
    // restate "this row exists"; 0 means dedup never ran).
    const std::string clean = verify::toJson({}, {a});
    EXPECT_EQ(clean.find("\"duplicates\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Checkpoint payload round trip

TEST(OutcomeCodec, CoverageRoundTripsExactly)
{
    verify::DiffOutcome o;
    o.mix = "mixed";
    o.seed = 9;
    o.config = "16-SP";
    o.hasCoverage = true;
    o.coverage.set(3, 4);
    o.coverage.set(81, 7);
    o.covNovel = true;   // deliberately NOT persisted (recomputed
    o.covNewBits = 17;   // against the corpus on every run)

    const verify::DiffOutcome r =
        verify::outcomeFromJson(verify::outcomeToJson(o));
    EXPECT_TRUE(r.hasCoverage);
    EXPECT_EQ(r.coverage, o.coverage);
    EXPECT_FALSE(r.covNovel);
    EXPECT_EQ(r.covNewBits, 0u);

    verify::DiffOutcome plain;
    const verify::DiffOutcome rp =
        verify::outcomeFromJson(verify::outcomeToJson(plain));
    EXPECT_FALSE(rp.hasCoverage);
    EXPECT_TRUE(rp.coverage.empty());
}

TEST(OutcomeCodec, MalformedCoverageFieldsThrow)
{
    verify::DiffOutcome o;
    o.hasCoverage = true;
    o.coverage.set(0, 0);
    const std::string good = verify::outcomeToJson(o);

    // Corrupt hex digit.
    std::string bad = good;
    const std::size_t at = bad.find("\"coverage\": \"");
    ASSERT_NE(at, std::string::npos);
    bad[at + 13] = 'z';
    EXPECT_THROW(verify::outcomeFromJson(bad), JsonError);

    // Truncated bitmap.
    std::string shorter = good;
    shorter.replace(at, shorter.find('"', at + 13) + 1 - at,
                    "\"coverage\": \"ab\"");
    EXPECT_THROW(verify::outcomeFromJson(shorter), JsonError);

    // has_coverage set but the bitmap missing entirely.
    std::string missing = good;
    const std::size_t covAt = missing.find("\"coverage\": \"");
    const std::size_t covEnd = missing.find('"', covAt + 13) + 3;
    missing.erase(covAt, covEnd - covAt);
    EXPECT_THROW(verify::outcomeFromJson(missing), JsonError);
}

} // anonymous namespace
} // namespace msp
