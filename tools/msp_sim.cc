/**
 * @file
 * msp_sim — the simulation-campaign CLI.
 *
 * One multi-threaded invocation reproduces any registered scenario
 * (the paper's Figs. 6-9 and the ablation sweeps) or runs a custom
 * preset × workload matrix, with optional JSON/CSV reports:
 *
 *   msp_sim --list
 *   msp_sim fig6 --threads 8 --json fig6.json
 *   msp_sim matrix --workloads gzip,gcc --configs baseline,cpr,16sp \
 *           --predictor tage --instrs 100000 --csv out.csv
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/table.hh"
#include "driver/campaign.hh"
#include "driver/report.hh"
#include "driver/scenario.hh"
#include "sim/presets.hh"
#include "workload/spec.hh"

namespace {

using namespace msp;
using namespace msp::driver;

[[noreturn]] void
usage(int code)
{
    std::fputs(
        "usage: msp_sim <scenario> [options]\n"
        "       msp_sim matrix --workloads A,B --configs C,D [options]\n"
        "       msp_sim --list\n"
        "\n"
        "options:\n"
        "  --threads N    worker threads (default: all hardware threads;\n"
        "                 1 = single-threaded reference run)\n"
        "  --instrs N     committed-instruction budget per run\n"
        "                 (default: 60000, or MSP_BENCH_INSTRS)\n"
        "  --json FILE    write per-job results as JSON\n"
        "  --csv FILE     write per-job results as CSV\n"
        "  --quiet        suppress the header and per-job progress\n"
        "\n"
        "matrix mode:\n"
        "  --workloads    comma-separated spec benchmarks "
        "(e.g. gzip,gcc,swim)\n"
        "  --configs      comma-separated presets: baseline, cpr, ideal,\n"
        "                 <n>sp (e.g. 16sp), <n>sp-noarb\n"
        "  --predictor    gshare (default) or tage\n"
        "  --seed N       workload-synthesis seed (default 1)\n",
        code == 0 ? stdout : stderr);
    std::exit(code);
}

std::vector<std::string>
splitCommas(const std::string &s)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= s.size()) {
        const std::size_t comma = s.find(',', start);
        const std::string item =
            s.substr(start, comma == std::string::npos ? std::string::npos
                                                       : comma - start);
        if (!item.empty())
            out.push_back(item);
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
    return out;
}

MachineConfig
configByName(const std::string &name, PredictorKind predictor)
{
    if (name == "baseline")
        return baselineConfig(predictor);
    if (name == "cpr")
        return cprConfig(predictor);
    if (name == "ideal")
        return idealMspConfig(predictor);
    // <n>sp or <n>sp-noarb, e.g. "16sp", "64sp-noarb".
    const std::size_t sp = name.find("sp");
    if (sp != std::string::npos && sp > 0) {
        const unsigned n =
            static_cast<unsigned>(std::atoi(name.substr(0, sp).c_str()));
        const std::string suffix = name.substr(sp);
        if (n > 0 && (suffix == "sp" || suffix == "sp-noarb"))
            return nspConfig(n, predictor, suffix == "sp");
    }
    msp_fatal("unknown config '%s' (want baseline, cpr, ideal, <n>sp "
              "or <n>sp-noarb)", name.c_str());
}

struct Options
{
    std::string mode;          // scenario name or "matrix"
    unsigned threads = 0;
    std::uint64_t instrs = 0;
    std::uint64_t seed = 1;
    std::string jsonPath;
    std::string csvPath;
    bool quiet = false;
    std::vector<std::string> workloads;
    std::vector<std::string> configNames;
    PredictorKind predictor = PredictorKind::Gshare;
};

Options
parseArgs(int argc, char **argv)
{
    Options o;
    auto value = [&](int &i) -> const char * {
        if (i + 1 >= argc) {
            std::fprintf(stderr, "msp_sim: %s needs a value\n", argv[i]);
            usage(2);
        }
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--help" || a == "-h") {
            usage(0);
        } else if (a == "--list") {
            for (const auto &s : scenarios())
                std::printf("%-22s %s\n", s.name.c_str(),
                            s.title.c_str());
            std::exit(0);
        } else if (a == "--threads") {
            o.threads = static_cast<unsigned>(std::atoi(value(i)));
        } else if (a == "--instrs") {
            o.instrs = std::strtoull(value(i), nullptr, 10);
        } else if (a == "--seed") {
            o.seed = std::strtoull(value(i), nullptr, 10);
        } else if (a == "--json") {
            o.jsonPath = value(i);
        } else if (a == "--csv") {
            o.csvPath = value(i);
        } else if (a == "--quiet") {
            o.quiet = true;
        } else if (a == "--workloads") {
            o.workloads = splitCommas(value(i));
        } else if (a == "--configs") {
            o.configNames = splitCommas(value(i));
        } else if (a == "--predictor") {
            const std::string p = value(i);
            if (p == "gshare")
                o.predictor = PredictorKind::Gshare;
            else if (p == "tage")
                o.predictor = PredictorKind::Tage;
            else
                msp_fatal("unknown predictor '%s'", p.c_str());
        } else if (!a.empty() && a[0] == '-') {
            std::fprintf(stderr, "msp_sim: unknown option %s\n",
                         argv[i]);
            usage(2);
        } else if (o.mode.empty()) {
            o.mode = a;
        } else {
            std::fprintf(stderr, "msp_sim: unexpected argument %s\n",
                         argv[i]);
            usage(2);
        }
    }
    if (o.mode.empty())
        usage(2);
    if (o.mode != "matrix" &&
        (!o.workloads.empty() || !o.configNames.empty() ||
         o.predictor != PredictorKind::Gshare || o.seed != 1)) {
        // Scenarios fix their own matrix; silently ignoring these
        // flags would mislabel the results the user asked for.
        msp_fatal("--workloads/--configs/--predictor/--seed only apply "
                  "to matrix mode, not scenario '%s'", o.mode.c_str());
    }
    return o;
}

std::vector<JobResult>
runMatrix(const Options &o)
{
    if (o.workloads.empty() || o.configNames.empty())
        msp_fatal("matrix mode needs --workloads and --configs");
    std::vector<MachineConfig> configs;
    for (const auto &n : o.configNames)
        configs.push_back(configByName(n, o.predictor));

    SimCampaign campaign(o.threads);
    campaign.addMatrix(o.workloads, configs, o.instrs, o.seed, "matrix");
    if (!o.quiet) {
        std::printf("Custom matrix: %zu workload(s) x %zu config(s) "
                    "(%s). Jobs: %zu on %u thread(s).\n\n",
                    o.workloads.size(), configs.size(),
                    predictorName(o.predictor), campaign.size(),
                    campaign.effectiveThreads());
        std::fflush(stdout);
    }
    auto results = campaign.run(
        o.quiet ? ProgressFn{} : SimCampaign::stderrProgress());

    {
        msp::Table t("IPC");
        t.header({"workload", "config", "ipc", "cycles", "committed"});
        for (const auto &jr : results)
            t.row({jr.result.workload, jr.result.config,
                   msp::Table::num(jr.result.ipc(), 3),
                   std::to_string(jr.result.cycles),
                   std::to_string(jr.result.committed)});
        std::fputs(t.str().c_str(), stdout);
    }
    return results;
}

} // namespace

int
main(int argc, char **argv)
{
    const Options o = parseArgs(argc, argv);

    std::vector<JobResult> results;
    if (o.mode == "matrix")
        results = runMatrix(o);
    else
        results = runScenario(o.mode, o.threads, o.instrs, !o.quiet);

    if (!o.jsonPath.empty())
        driver::writeFile(o.jsonPath, driver::toJson(results));
    if (!o.csvPath.empty())
        driver::writeFile(o.csvPath, driver::toCsv(results));
    return 0;
}
