/**
 * @file
 * msp_sim — the simulation-campaign CLI.
 *
 * One multi-threaded invocation reproduces any registered scenario
 * (the paper's Figs. 6-9 and the ablation sweeps), runs a custom
 * preset × workload matrix, or differentially verifies every core
 * against the functional executor on fuzzed programs:
 *
 *   msp_sim --list
 *   msp_sim fig6 --threads 8 --json fig6.json
 *   msp_sim matrix --workloads gzip,gcc --configs baseline,cpr,16sp \
 *           --predictor tage --instrs 100000 --csv out.csv
 *   msp_sim verify --seeds 100 --json divergences.json
 *
 * Argument parsing lives in src/driver/cli.{hh,cc} (unit-tested);
 * this file only renders usage/reports and wires the campaigns.
 */

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#ifdef __linux__
#include <sched.h>
#endif

#include "common/json.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "driver/bench.hh"
#include "driver/campaign.hh"
#include "driver/cli.hh"
#include "driver/report.hh"
#include "driver/scenario.hh"
#include "driver/state.hh"
#include "sim/grid.hh"
#include "sim/presets.hh"
#include "sim/spec.hh"
#include "verify/corpus.hh"
#include "verify/diff_campaign.hh"
#include "verify/report.hh"
#include "verify/shrink.hh"
#include "workload/registry.hh"
#include "workload/trace.hh"

namespace {

using namespace msp;
using namespace msp::driver;

/** Exit status of a campaign stopped by SIGINT/SIGTERM. */
constexpr int exitInterrupted = 3;

extern "C" void
handleStopSignal(int sig)
{
    // First signal: cooperative stop — campaigns stop starting jobs,
    // in-flight jobs finish and are checkpointed, and a partial report
    // is written before exiting with a distinct status. Second signal:
    // the user really means it; quit without unwinding. Both paths are
    // async-signal-safe (a lock-free atomic, then _Exit).
    if (driver::campaignStopRequested())
        std::_Exit(128 + sig);
    driver::setCampaignStop(true);
}

/** Shared --checkpoint/--resume wiring for matrix and verify. */
void
configureState(CampaignState &state, const CliOptions &o)
{
    if (o.checkpointPath.empty())
        return;
    state.configure(o.checkpointPath, o.checkpointEvery,
                    !o.resumePath.empty(), o.resumePath);
}

void
printUsage(std::FILE *to)
{
    std::fputs(
        "usage: msp_sim <scenario> [options]\n"
        "       msp_sim matrix --workloads A,B --configs C,D [options]\n"
        "       msp_sim matrix --grid FILE [options]\n"
        "       msp_sim verify [--seeds N] [--mixes M,N] [options]\n"
        "       msp_sim verify (--workloads A,B | --grid FILE) [options]\n"
        "       msp_sim trace --workloads NAME [--seed N] [--json FILE]\n"
        "       msp_sim bench [--reps N] [--baseline FILE] [options]\n"
        "       msp_sim spec (--configs P | --machine FILE) [--set k=v]\n"
        "       msp_sim merge SHARD.json... [--json FILE]\n"
        "       msp_sim --list\n"
        "\n"
        "options:\n"
        "  --threads N    worker threads (default: all hardware threads;\n"
        "                 1 = single-threaded reference run)\n"
        "  --instrs N     committed-instruction budget per run\n"
        "                 (default: 60000, or MSP_BENCH_INSTRS;\n"
        "                 verify default: 1M as a safety bound)\n"
        "  --json FILE    write per-job results as JSON\n"
        "  --csv FILE     write per-job results as CSV (not verify)\n"
        "  --quiet        suppress the header and per-job progress\n"
        "\n"
        "campaign state (matrix and verify modes):\n"
        "  --checkpoint FILE\n"
        "                 append per-job completion records to FILE as\n"
        "                 the campaign runs (atomic header rewrite, then\n"
        "                 flushed appends)\n"
        "  --checkpoint-every N\n"
        "                 flush cadence in completed jobs (default 32)\n"
        "  --resume FILE  skip jobs already recorded in FILE and keep\n"
        "                 checkpointing to it; the final report is\n"
        "                 byte-identical to an uninterrupted run at any\n"
        "                 thread count. A torn trailing record (crash\n"
        "                 mid-append) is quarantined to FILE.torn; any\n"
        "                 other corruption or a checkpoint from a\n"
        "                 different command line fails with exit 2\n"
        "  --shard i/N    run only shard i of N (deterministic split;\n"
        "                 verify shards by fuzzed program so the timing\n"
        "                 invariant stays intra-shard); write each\n"
        "                 shard's --json, then fold them with merge\n"
        "  merge mode reassembles shard reports into one document\n"
        "  byte-identical to the unsharded run's (--json FILE or stdout)\n"
        "  SIGINT/SIGTERM stop a campaign cooperatively: in-flight jobs\n"
        "  finish and are checkpointed, a partial report is written, and\n"
        "  msp_sim exits 3; a second signal force-quits\n"
        "\n"
        "machine specs (matrix, verify and spec modes):\n"
        "  --machine FILE load a machine from a JSON spec file (flat\n"
        "                 {\"key\": value} object of registered dotted\n"
        "                 parameters; optional \"base\" preset and\n"
        "                 \"label\"); added to the --configs machines\n"
        "  --set k=v      override one registered parameter (e.g.\n"
        "                 --set cpr.checkpoints=4 --set lcs.latency=3)\n"
        "                 on every selected machine; repeatable.\n"
        "                 Precedence: --set over --machine over preset\n"
        "  spec mode dumps the resolved machine as JSON (--json FILE or\n"
        "  stdout) plus its diff against the nearest preset baseline —\n"
        "  the file round-trips through --machine bit-identically\n"
        "\n"
        "matrix mode:\n"
        "  --workloads    comma-separated workload-registry names:\n"
        "                 SPEC benchmarks (gzip, gcc, swim, ...),\n"
        "                 tight-loop, ptrchase, prodcons, interp, or\n"
        "                 trace:FILE (a JSONL trace; see trace mode)\n"
        "  --configs      comma-separated presets: baseline, cpr, ideal,\n"
        "                 <n>sp (e.g. 16sp), <n>sp-noarb\n"
        "  --predictor    gshare (default) or tage\n"
        "  --seed N       workload-synthesis seed (default 1)\n"
        "  --grid FILE    expand a grid document (named axes of dotted\n"
        "                 spec keys, crossed or zipped) into the job\n"
        "                 list; the per-figure documents ship in\n"
        "                 examples/grids/. A grid with a workload.name\n"
        "                 or workload.trace axis is a complete campaign;\n"
        "                 one without is a machine list crossed with\n"
        "                 --workloads. Composes with --set (applied on\n"
        "                 top of every point), --shard, --checkpoint/\n"
        "                 --resume and merge\n"
        "\n"
        "trace mode (dump a registry workload as an editable trace):\n"
        "  --workloads NAME   the workload to dump (one name)\n"
        "  --seed N           synthesis seed (default 1)\n"
        "  --json FILE        write the JSONL trace (default: stdout);\n"
        "                     re-ingest it with workload trace:FILE or\n"
        "                     a workload.trace grid axis\n"
        "\n"
        "bench mode (simulator throughput, MInstr/s per config):\n"
        "  --configs      presets to time (default: baseline, cpr,\n"
        "                 ideal, 4sp, 8sp, 16sp)\n"
        "  --workloads    workloads per timed sweep (default:\n"
        "                 gzip,gcc,swim,mcf)\n"
        "  --instrs N     committed budget per run (default 200000)\n"
        "  --reps N       timed repetitions per config (default 3);\n"
        "                 the best repetition is the throughput figure,\n"
        "                 and committed/cycle counts must be identical\n"
        "                 across repetitions (determinism check)\n"
        "  --threads 1    pin the process to one CPU before timing\n"
        "                 (bench always runs sequentially)\n"
        "  --json FILE    write the BENCH_throughput.json report\n"
        "                 (refused with a warning in sanitized builds:\n"
        "                 those timings must never become a baseline)\n"
        "  --baseline FILE\n"
        "                 gate against a previous report: exit 1 when\n"
        "                 any config's MInstr/s fell more than the gate\n"
        "                 percentage; skipped loudly when the host\n"
        "                 fingerprint differs from the baseline's\n"
        "  --gate-pct P   regression threshold (default 15)\n"
        "\n"
        "verify mode (differential fuzzing against the functional "
        "executor):\n"
        "  --seeds N      fuzzed programs per mix (default 100)\n"
        "  --mixes A,B    fuzz mixes: mixed, branchy, memory, fploop,\n"
        "                 fpedge (default: all)\n"
        "  --configs      presets to verify (default: the full Table I\n"
        "                 ladder incl. Baseline and CPR)\n"
        "  --predictor    gshare (default) or tage\n"
        "  --seed N       base seed for program generation (default 1)\n"
        "  --workloads A,B\n"
        "                 verify named registry workloads instead of\n"
        "                 fuzzed programs: each workload runs on each\n"
        "                 selected machine under the differential\n"
        "                 oracle, sequentially (exit 1 on divergence)\n"
        "  --grid FILE    verify every point of a workload-binding grid\n"
        "                 document (point machine x point workload)\n"
        "  --snapshot-every N\n"
        "                 compare architectural state against the\n"
        "                 functional model every N commits, localising\n"
        "                 a divergence to a commit window\n"
        "  --fail-fast    stop starting new jobs after the first\n"
        "                 divergence (remaining jobs report skipped)\n"
        "  --budget-sec S wall-clock budget; jobs not started in time\n"
        "                 report skipped\n"
        "  --repro FILE   replay the reproducers recorded in a --json\n"
        "                 divergence report (each carries its complete\n"
        "                 machine spec — and, for structurally reduced\n"
        "                 failures, the reduced program image itself —\n"
        "                 so custom ablation machines and reduced\n"
        "                 programs replay bit-identically; exit 2 on\n"
        "                 unparseable specs)\n"
        "  --bisect-exact after shrinking, re-run each divergent job\n"
        "                 with binary-searched probe points until the\n"
        "                 single first divergent commit is found\n"
        "                 (first_bad_commit in the report)\n"
        "  --reduce       after shrinking, structurally reduce the\n"
        "                 program image itself (drop whole blocks /\n"
        "                 helpers / loop bodies, relink branches) and\n"
        "                 embed the reduced program in the report\n"
        "  --coverage     harvest per-run path coverage (stall\n"
        "                 transitions, predictor edges, squash depths,\n"
        "                 SQ forwarding, SCT/LCS activity) into a\n"
        "                 (feature, bucket) bitmap; adds a \"coverage\"\n"
        "                 summary and per-row coverage to the report and\n"
        "                 canonicalises repros by root cause (duplicate\n"
        "                 failures fold into one repro with a\n"
        "                 \"duplicates\" count). Does not combine with\n"
        "                 --checkpoint/--resume/--shard\n"
        "  --corpus FILE  keep the coverage-novel (mix, seed) entries in\n"
        "                 a JSONL corpus (atomic rewrite; a torn\n"
        "                 trailing record is quarantined to FILE.torn);\n"
        "                 an existing corpus seeds the aggregate map\n"
        "  --waves N      run the sweep N times (needs --coverage);\n"
        "                 corpus admission happens between waves\n"
        "  --tune         reweight the fuzz mixes between waves toward\n"
        "                 coverage holes (pure function of the\n"
        "                 aggregated map and --seed, so campaigns stay\n"
        "                 bit-identical at any --threads)\n"
        "  Divergent jobs are re-fuzzed through the shrinker; minimal\n"
        "  reproducers land in the --json report under \"repros\".\n"
        "  After a clean sweep that ran both machines, a coarse timing\n"
        "  invariant (ideal-MSP IPC >= 16-SP IPC per fuzzed program)\n"
        "  is asserted; violations report as \"timing\" divergences.\n"
        "  exit status 1 when any run diverges\n",
        to);
}

/** Dump one resolved machine spec as JSON plus its preset diff. */
int
runSpec(const CliOptions &o)
{
    const std::vector<MachineConfig> machines = resolveMachines(o);
    // parseCliArgs guarantees exactly one machine source in spec mode.
    const MachineConfig &m = machines.front();
    const std::string json = specToJson(m) + "\n";
    if (!o.quiet)
        std::fputs(specDiffReport(m).c_str(), stdout);
    if (o.jsonPath.empty())
        std::fputs(json.c_str(), stdout);
    else
        driver::writeFile(o.jsonPath, json);
    return 0;
}

/** Simulator-throughput measurement (see driver/bench.hh). */
int
runBench(const CliOptions &o)
{
    const bool sanitized = sanitizedBuild();
    if (sanitized) {
        std::fprintf(stderr,
                     "msp_sim: warning: sanitized build — timings are "
                     "not comparable and no report will be written\n");
    }

    if (o.threads == 1) {
#ifdef __linux__
        cpu_set_t set;
        CPU_ZERO(&set);
        CPU_SET(0, &set);
        if (sched_setaffinity(0, sizeof set, &set) != 0)
            std::fprintf(stderr, "msp_sim: warning: could not pin to "
                                 "CPU 0; timings may be noisier\n");
#else
        std::fprintf(stderr, "msp_sim: warning: CPU pinning is not "
                             "supported on this platform\n");
#endif
    }

    BenchOptions b;
    b.configNames = o.configNames;
    b.workloads = o.workloads;
    b.predictor = o.predictor;
    if (o.instrs)
        b.instrs = o.instrs;
    b.reps = o.reps;
    b.seed = o.seed;

    if (!o.quiet) {
        std::printf("Throughput bench: %zu config(s) x %u rep(s), "
                    "%llu instrs/run (%s).\n",
                    o.configNames.empty() ? 6 : o.configNames.size(),
                    b.reps,
                    static_cast<unsigned long long>(b.instrs),
                    predictorName(o.predictor));
        std::fflush(stdout);
    }
    const BenchReport report = runThroughputBench(
        b, o.quiet ? BenchProgressFn{}
                   : [](const std::string &cfg, unsigned rep,
                        unsigned reps, double wall) {
                         std::fprintf(stderr, "  [%s %u/%u] %.3f s\n",
                                      cfg.c_str(), rep, reps, wall);
                     });

    msp::Table t("Simulator throughput");
    t.header({"config", "committed", "cycles", "best_wall_s",
              "MInstr/s", "Mcycles/s"});
    for (const auto &c : report.configs) {
        t.row({c.config, std::to_string(c.committed),
               std::to_string(c.cycles),
               msp::Table::num(c.bestWallSec(), 3),
               msp::Table::num(c.minstrPerSec(), 2),
               msp::Table::num(c.mcyclesPerSec(), 2)});
    }
    std::fputs(t.str().c_str(), stdout);

    if (!o.jsonPath.empty() && !sanitized)
        driver::writeFile(o.jsonPath, benchReportToJson(report));

    if (!o.baselinePath.empty()) {
        if (sanitized) {
            std::fprintf(stderr,
                         "msp_sim: sanitized build — regression gate "
                         "skipped\n");
            return 0;
        }
        std::string doc;
        if (!driver::tryReadFile(o.baselinePath, doc)) {
            std::fprintf(stderr, "msp_sim: cannot read baseline %s\n",
                         o.baselinePath.c_str());
            return 2;
        }
        const BenchReport base = benchReportFromJson(doc);
        if (base.host != report.host) {
            // MInstr/s on a different machine is not a regression
            // signal; gating on it would fail every contributor whose
            // laptop differs from the baseline host.
            std::fprintf(stderr,
                         "msp_sim: warning: baseline host '%s' differs "
                         "from this host '%s' — regression gate "
                         "skipped\n",
                         base.host.c_str(), report.host.c_str());
            return 0;
        }
        const auto regressions =
            benchRegressions(base, report, o.gatePct);
        for (const std::string &r : regressions)
            std::fprintf(stderr, "msp_sim: throughput regression: %s\n",
                         r.c_str());
        if (!regressions.empty())
            return 1;
        if (!o.quiet)
            std::printf("Regression gate passed (threshold %.0f%%).\n",
                        o.gatePct);
    }
    return 0;
}

/** Read and expand --grid FILE (grammar errors become CliError). */
grid::Grid
loadGrid(const CliOptions &o)
{
    std::string doc;
    if (!driver::tryReadFile(o.gridPath, doc)) {
        throw CliError(csprintf("cannot read grid spec %s",
                                o.gridPath.c_str()));
    }
    try {
        // --predictor seeds the document like it seeds --machine
        // files; a grid that sets its own "predictor" keeps it.
        return grid::expand(doc, o.predictor);
    } catch (const SpecError &e) {
        throw CliError(csprintf("%s: %s", o.gridPath.c_str(), e.what()));
    }
}

std::vector<JobResult>
runMatrix(const CliOptions &o)
{
    SimCampaign campaign(o.threads);
    std::string headline;   ///< header sentence, sans the job count
    std::string specDiffs;  ///< non-preset machines, as preset diffs
    if (!o.gridPath.empty()) {
        grid::Grid g = loadGrid(o);
        // --set applies on top of every expanded point, the same
        // precedence it has over presets and --machine files; a point
        // whose spec actually changed is relabelled with its
        // describeSpec() identity so the grid label cannot lie.
        if (!o.sets.empty()) {
            std::vector<MachineConfig> machines;
            machines.reserve(g.points.size());
            for (const grid::GridPoint &pt : g.points)
                machines.push_back(pt.machine);
            applySpecSets(machines, o.sets);
            for (std::size_t i = 0; i < machines.size(); ++i)
                g.points[i].machine = machines[i];
        }
        const bool bound =
            !g.points.empty() && !g.points.front().workload.empty();
        if (bound && !o.workloads.empty()) {
            throw CliError(csprintf("grid '%s' binds its own workloads; "
                                    "--workloads does not combine with "
                                    "it", g.name.c_str()));
        }
        if (!bound && o.workloads.empty()) {
            throw CliError(csprintf("grid '%s' binds no workloads; add "
                                    "a workload.name/workload.trace "
                                    "axis or pass --workloads",
                                    g.name.c_str()));
        }
        const std::string scen = g.name.empty() ? "matrix" : g.name;
        if (bound) {
            for (CampaignJob &j : gridJobs(scen, g, o.instrs, o.seed))
                campaign.add(std::move(j));
        } else {
            std::vector<MachineConfig> configs;
            configs.reserve(g.points.size());
            for (const grid::GridPoint &pt : g.points)
                configs.push_back(pt.machine);
            campaign.addMatrix(o.workloads, configs, o.instrs, o.seed,
                               scen);
        }
        headline = csprintf("Grid '%s': %zu point(s)%s.",
                            g.name.c_str(), g.points.size(),
                            bound ? ""
                                  : csprintf(" x %zu workload(s)",
                                             o.workloads.size())
                                        .c_str());
    } else {
        const std::vector<MachineConfig> configs = resolveMachines(o);
        campaign.addMatrix(o.workloads, configs, o.instrs, o.seed,
                           "matrix");
        headline = csprintf("Custom matrix: %zu workload(s) x %zu "
                            "config(s) (%s).",
                            o.workloads.size(), configs.size(),
                            predictorName(o.predictor));
        // Custom machines print as a diff against their preset
        // baseline, so a report reader sees exactly what was ablated.
        for (const MachineConfig &cfg : configs)
            if (presetNameFor(cfg).empty())
                specDiffs += specDiffReport(cfg);
    }
    if (o.shardCount)
        campaign.restrictToShard(o.shardIndex, o.shardCount);
    CampaignState state;
    configureState(state, o);
    campaign.attachState(&state);
    if (!o.quiet) {
        std::printf("%s Jobs: %zu on %u thread(s).\n", headline.c_str(),
                    campaign.size(), campaign.effectiveThreads());
        std::fputs(specDiffs.c_str(), stdout);
        std::printf("\n");
        std::fflush(stdout);
    }
    auto results = campaign.run(
        o.quiet ? ProgressFn{} : SimCampaign::stderrProgress());

    {
        msp::Table t("IPC");
        t.header({"workload", "config", "ipc", "cycles", "committed"});
        for (const auto &jr : results) {
            if (!jr.ran)   // interrupted before this job started
                continue;
            t.row({jr.result.workload, jr.result.config,
                   msp::Table::num(jr.result.ipc(), 3),
                   std::to_string(jr.result.cycles),
                   std::to_string(jr.result.committed)});
        }
        std::fputs(t.str().c_str(), stdout);
    }
    return results;
}

void
printDivergences(const verify::DiffOutcome &out, std::size_t done,
                 std::size_t total)
{
    if (out.ok() || out.skipped)
        return;
    std::fprintf(stderr, "  DIVERGENCE [%zu/%zu] %s seed=%llu %s:\n",
                 done, total, out.mix.c_str(),
                 static_cast<unsigned long long>(out.seed),
                 out.config.c_str());
    for (const auto &d : out.divergences)
        std::fprintf(stderr, "    %-14s %s\n", d.kind.c_str(),
                     d.detail.c_str());
}

/** Replay the shrunk reproducers of a saved divergence report. */
int
runRepro(const CliOptions &o)
{
    std::string doc;
    if (!driver::tryReadFile(o.reproPath, doc)) {
        std::fprintf(stderr, "msp_sim: cannot read repro report %s\n",
                     o.reproPath.c_str());
        return 2;
    }
    std::vector<verify::ReproSpec> specs;
    try {
        specs = verify::parseRepros(doc);
    } catch (const SpecError &e) {
        // A repro whose machine spec does not parse must fail loudly:
        // silently skipping (or falling back to a preset) could replay
        // a different machine and read as "fixed".
        std::fprintf(stderr,
                     "msp_sim: unparseable machine spec in %s: %s\n",
                     o.reproPath.c_str(), e.what());
        return 2;
    }
    if (specs.empty()) {
        std::fprintf(stderr,
                     "msp_sim: no repros found in %s (a clean report, "
                     "or not a verify --json report)\n",
                     o.reproPath.c_str());
        return 2;
    }

    std::vector<verify::DiffOutcome> outcomes;
    std::size_t unreplayable = 0;
    for (std::size_t i = 0; i < specs.size(); ++i) {
        const verify::ReproSpec &spec = specs[i];
        MachineConfig cfg;
        if (spec.hasMachine) {
            // The embedded spec is the replay authority: any machine
            // replays, whether or not a preset names it.
            cfg = spec.machine;
        } else if (spec.preset.empty()) {
            // Legacy pre-spec report entry for a non-preset machine:
            // nothing recorded can rebuild it.
            std::fprintf(stderr,
                         "  repro %zu: no machine spec and no CLI "
                         "preset recorded; skipping\n", i);
            ++unreplayable;
            continue;
        } else {
            const PredictorKind pred = spec.predictor == "tage"
                                           ? PredictorKind::Tage
                                           : PredictorKind::Gshare;
            try {
                cfg = configByName(spec.preset, pred);
            } catch (const CliError &e) {
                // A hand-edited or cross-version report names a preset
                // this binary does not know; skip it like a missing one.
                std::fprintf(stderr, "  repro %zu: %s; skipping\n", i,
                             e.what());
                ++unreplayable;
                continue;
            }
        }
        // A structurally reduced image is the program authority: no
        // (seed, mix) pair can regenerate it, so it replays verbatim.
        const Program prog = spec.program
                                 ? *spec.program
                                 : verify::fuzzProgram(spec.seed,
                                                       spec.mix);

        verify::DiffOptions dopt;
        dopt.maxInsts = o.instrs ? o.instrs : spec.maxInsts;
        dopt.snapshotEvery =
            o.snapshotEvery ? o.snapshotEvery : spec.snapshotEvery;
        verify::DiffOutcome out = verify::diffRun(prog, cfg, dopt);
        out.mix = spec.mix.name;
        out.seed = spec.seed;

        if (!o.quiet) {
            std::printf("repro %zu/%zu: mix=%s seed=%llu %s%s expecting "
                        "'%s' -> %s\n",
                        i + 1, specs.size(), spec.mix.name.c_str(),
                        static_cast<unsigned long long>(spec.seed),
                        cfg.name.c_str(),
                        spec.program ? " (reduced program)" : "",
                        spec.kind.c_str(),
                        out.ok() ? "clean"
                                 : out.divergences[0].kind.c_str());
        }
        printDivergences(out, i + 1, specs.size());
        outcomes.push_back(std::move(out));
    }

    if (!o.jsonPath.empty())
        driver::writeFile(o.jsonPath, verify::toJson(outcomes));
    if (outcomes.empty()) {
        // Exit 0 here would read as "replayed clean" when nothing ran.
        std::fprintf(stderr,
                     "msp_sim: none of the %zu repro(s) were "
                     "replayable (%zu with no usable machine spec)\n",
                     specs.size(), unreplayable);
        return 2;
    }
    return verify::countDivergences(outcomes) == 0 ? 0 : 1;
}

/**
 * Deterministic named-workload verification (verify --workloads or a
 * workload-binding --grid): each (workload, machine) pair runs once
 * under the differential oracle, sequentially — there is no fuzzing,
 * shrinking or campaign state, just the plain divergence check.
 */
int
runVerifyNamed(const CliOptions &o)
{
    struct NamedJob
    {
        std::string workload;
        std::uint64_t seed;
        MachineConfig config;
    };
    std::vector<NamedJob> jobs;
    if (!o.gridPath.empty()) {
        const grid::Grid g = loadGrid(o);
        for (const grid::GridPoint &pt : g.points) {
            if (pt.workload.empty()) {
                throw CliError(csprintf("grid '%s' binds no workloads; "
                                        "verify --grid needs a "
                                        "workload.name or "
                                        "workload.trace axis",
                                        g.name.c_str()));
            }
            jobs.push_back({pt.workload, pt.hasSeed ? pt.seed : o.seed,
                            pt.machine});
        }
    } else {
        std::vector<MachineConfig> configs;
        if (o.configNames.empty() && o.machinePath.empty()) {
            configs = figureLadder(o.predictor);
            applySpecSets(configs, o.sets);
        } else {
            configs = resolveMachines(o);
        }
        for (const std::string &w : o.workloads)
            for (const MachineConfig &cfg : configs)
                jobs.push_back({w, o.seed, cfg});
    }

    if (!o.quiet) {
        std::printf("Differential verification: %zu named workload "
                    "job(s), sequential.\n", jobs.size());
        std::fflush(stdout);
    }
    std::vector<verify::DiffOutcome> outcomes;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        const NamedJob &j = jobs[i];
        const Program prog = workload::build(j.workload, j.seed);
        verify::DiffOptions dopt;
        dopt.maxInsts = o.instrs ? o.instrs : (1u << 20);
        dopt.snapshotEvery = o.snapshotEvery;
        // Registry workloads include unbounded IPC loops (the SPEC
        // synthetics); verify them over the budget-bounded prefix.
        dopt.boundedOk = true;
        verify::DiffOutcome out = verify::diffRun(prog, j.config, dopt);
        out.mix = "";   // named runs have no fuzz mix (see DiffOutcome)
        out.seed = j.seed;
        if (!o.quiet) {
            std::printf("  [%zu/%zu] %s on %s seed=%llu -> %s\n",
                        i + 1, jobs.size(), j.workload.c_str(),
                        j.config.name.c_str(),
                        static_cast<unsigned long long>(j.seed),
                        out.ok() ? "clean"
                                 : out.divergences[0].kind.c_str());
        }
        printDivergences(out, i + 1, jobs.size());
        outcomes.push_back(std::move(out));
    }

    if (!o.jsonPath.empty())
        driver::writeFile(o.jsonPath, verify::toJson(outcomes));
    const std::size_t divergences = verify::countDivergences(outcomes);
    if (!o.quiet) {
        std::printf("\n%zu run(s), %zu divergence(s).\n",
                    outcomes.size(), divergences);
    }
    return divergences == 0 ? 0 : 1;
}

int
runVerify(const CliOptions &o)
{
    if (!o.reproPath.empty())
        return runRepro(o);
    if (!o.workloads.empty() || !o.gridPath.empty())
        return runVerifyNamed(o);

    // Machine selection: named presets and/or a --machine spec file,
    // defaulting to the full Table I ladder; --set overrides apply on
    // top of whichever machines were selected.
    std::vector<MachineConfig> configs;
    if (o.configNames.empty() && o.machinePath.empty()) {
        configs = figureLadder(o.predictor);
        applySpecSets(configs, o.sets);
    } else {
        configs = resolveMachines(o);
    }

    std::vector<verify::FuzzMix> mixes;
    if (o.mixNames.empty()) {
        mixes = verify::standardMixes();
    } else {
        for (const auto &n : o.mixNames)
            mixes.push_back(*verify::findMix(n));   // validated by parse
    }

    const std::vector<verify::FuzzMix> baseMixes = mixes;

    // Coverage-guided campaigns grow a corpus of coverage-novel
    // (mix, seed) runs; an existing --corpus file seeds the aggregate
    // map, so repeated campaigns only chase what is still unreached.
    verify::Corpus corpus;
    if (!o.corpusPath.empty() && corpus.load(o.corpusPath)) {
        if (corpus.tornRecords() > 0) {
            std::fprintf(stderr,
                         "msp_sim: corpus %s had a torn trailing record "
                         "(quarantined to %s.torn)\n",
                         o.corpusPath.c_str(), o.corpusPath.c_str());
        }
        if (!o.quiet) {
            std::printf("Corpus: %zu entr%s, %zu coverage bit(s).\n",
                        corpus.entries().size(),
                        corpus.entries().size() == 1 ? "y" : "ies",
                        corpus.aggregate().bitsSet());
        }
    }

    verify::CoverageReport covReport;
    covReport.enabled = o.coverage;
    covReport.waves = o.waves;

    CampaignState state;
    configureState(state, o);

    const auto campaignStart = std::chrono::steady_clock::now();
    std::vector<verify::DiffJob> allJobs;
    std::vector<verify::DiffOutcome> outcomes;

    for (unsigned w = 0; w < o.waves; ++w) {
        // Wave 0 always fuzzes the user's mixes; later waves reweight
        // them toward the aggregate map's holes under --tune. Tuning is
        // a pure function of (mixes, aggregate, wave, seed) and corpus
        // admission is sequential, so the whole multi-wave campaign is
        // bit-identical at any --threads.
        const std::vector<verify::FuzzMix> waveMixes =
            (w > 0 && o.tune)
                ? verify::tuneMixes(baseMixes, corpus.aggregate(), w,
                                    o.seed)
                : baseMixes;

        verify::DiffCampaign campaign(o.threads);
        campaign.addSweep(waveMixes, o.seeds, o.seed, configs,
                          o.instrs ? o.instrs : (1u << 20));
        campaign.setSnapshotEvery(o.snapshotEvery);
        campaign.setFailFast(o.failFast);
        campaign.setCollectCoverage(o.coverage);
        if (o.budgetSec > 0.0) {
            // One budget spans every wave; a token floor because 0
            // means "no budget" (the same rule the shrink slice uses).
            const std::chrono::duration<double> spent =
                std::chrono::steady_clock::now() - campaignStart;
            campaign.setBudgetSec(
                w == 0 ? o.budgetSec
                       : std::max(1e-3, o.budgetSec - spent.count()));
        }
        if (o.shardCount)
            campaign.restrictToShard(o.shardIndex, o.shardCount);
        campaign.attachState(&state);
        if (!o.quiet && w == 0) {
            std::printf("Differential verification: %u seed(s) x %zu "
                        "mix(es) x %zu config(s) (%s). Jobs: %zu on %u "
                        "thread(s).\n",
                        o.seeds, baseMixes.size(), configs.size(),
                        predictorName(o.predictor), campaign.size(),
                        campaign.effectiveThreads());
            for (const MachineConfig &cfg : configs)
                if (presetNameFor(cfg).empty())
                    std::fputs(specDiffReport(cfg).c_str(), stdout);
            std::printf("\n");
            std::fflush(stdout);
        } else if (!o.quiet) {
            std::printf("\nWave %u/%u: %zu job(s)%s.\n", w + 1, o.waves,
                        campaign.size(),
                        o.tune ? " (mixes retuned toward coverage holes)"
                               : "");
            std::fflush(stdout);
        }

        // Progress: stay silent per job (campaigns run thousands), but
        // report every divergence the moment it is found.
        auto waveOutcomes = campaign.run(printDivergences);
        const std::vector<verify::DiffJob> &waveJobs = campaign.pending();

        const bool interrupted = driver::campaignStopRequested();

        // Coarse timing invariant, only meaningful after a clean batch
        // (correctness divergences already fail the run and would make
        // an IPC comparison moot): the ideal MSP must dominate 16-SP on
        // every fuzzed program both machines ran.
        if (!interrupted &&
            verify::countDivergences(waveOutcomes) == 0) {
            const std::size_t violations = verify::applyTimingInvariant(
                waveJobs, waveOutcomes);
            if (violations > 0) {
                std::fprintf(stderr,
                             "msp_sim: %zu timing-invariant "
                             "violation(s) — ideal MSP slower than "
                             "16-SP\n", violations);
                for (std::size_t i = 0; i < waveOutcomes.size(); ++i)
                    if (!waveOutcomes[i].ok())
                        printDivergences(waveOutcomes[i], i + 1,
                                         waveOutcomes.size());
            }
        }

        // Corpus admission: sequential, in submission order, after the
        // parallel wave — the aggregate (and everything tuned from it)
        // never depends on worker scheduling.
        if (o.coverage && !interrupted) {
            const std::size_t before = corpus.aggregate().bitsSet();
            for (std::size_t i = 0; i < waveOutcomes.size(); ++i) {
                verify::DiffOutcome &out = waveOutcomes[i];
                if (!out.hasCoverage)
                    continue;
                out.covNewBits =
                    out.coverage.newBitsVs(corpus.aggregate());
                out.covNovel = corpus.consider(waveJobs[i].mix, out.seed,
                                               w, out.coverage);
                covReport.novelRuns += out.covNovel ? 1 : 0;
            }
            covReport.waveBits.push_back(corpus.aggregate().bitsSet() -
                                         before);
            if (!o.quiet) {
                std::printf("Wave %u coverage: +%llu new bit(s), "
                            "aggregate %zu/%u features, %zu bit(s), "
                            "corpus %zu entr%s.\n",
                            w + 1,
                            static_cast<unsigned long long>(
                                covReport.waveBits.back()),
                            corpus.aggregate().featuresHit(),
                            verify::CoverageMap::numFeatures,
                            corpus.aggregate().bitsSet(),
                            corpus.entries().size(),
                            corpus.entries().size() == 1 ? "y" : "ies");
                std::fflush(stdout);
            }
        }

        allJobs.insert(allJobs.end(), waveJobs.begin(), waveJobs.end());
        for (auto &out : waveOutcomes)
            outcomes.push_back(std::move(out));

        // An interrupted sweep writes its partial report and stops:
        // the timing invariant and the shrinker both reason over the
        // whole sweep, which this run no longer is — the --resume run
        // redoes them over the complete set.
        if (interrupted) {
            if (!o.jsonPath.empty())
                driver::writeFile(o.jsonPath, verify::toJson(outcomes));
            std::fprintf(stderr,
                         "msp_sim: interrupted — %zu of %zu job(s) "
                         "done%s\n",
                         outcomes.size() - verify::countSkipped(outcomes),
                         outcomes.size(),
                         o.checkpointPath.empty()
                             ? ""
                             : "; resume with --resume");
            return exitInterrupted;
        }
    }

    if (!o.corpusPath.empty())
        corpus.save(o.corpusPath);
    if (o.coverage) {
        covReport.featuresHit = corpus.aggregate().featuresHit();
        covReport.bitsSet = corpus.aggregate().bitsSet();
        covReport.corpusEntries = corpus.entries().size();
    }

    // Re-fuzz every divergent job through the shrinker so the report
    // carries a minimal reproducer, not just a whole-run mismatch.
    // --budget-sec bounds campaign *and* shrinking together: the
    // shrinker gets whatever the campaign left over.
    std::vector<verify::ShrinkResult> shrinks;
    if (verify::countDivergences(outcomes) > 0) {
        if (!o.quiet)
            std::printf("\nShrinking divergent job(s)...\n");
        verify::ShrinkOptions sopt;
        sopt.bisectExact = o.bisectExact;
        sopt.reduce = o.reduce;
        sopt.threads = o.threads;
        if (o.budgetSec > 0.0) {
            const std::chrono::duration<double> spent =
                std::chrono::steady_clock::now() - campaignStart;
            // Never go below a token slice: shrinkFailures treats an
            // expired deadline as "skip everything", and 0 means
            // "no budget" — an exhausted campaign should not unbound
            // the shrinker.
            sopt.budgetSec = std::max(1e-3, o.budgetSec - spent.count());
        }
        shrinks = verify::shrinkFailures(
            allJobs, outcomes, sopt,
            [&](const verify::ShrinkResult &s, std::size_t done,
                std::size_t total) {
                if (o.quiet)
                    return;
                std::printf("  [%zu/%zu] seed=%llu %s: %s '%s' "
                            "dynamic %llu -> %llu (%u attempts)%s\n",
                            done, total,
                            static_cast<unsigned long long>(s.repro.seed),
                            s.outcome.config.c_str(),
                            s.reproduced
                                ? (s.shrunk ? "shrunk" : "reproduced")
                                : (s.timedOut ? "budget expired before"
                                              : "did not re-reproduce"),
                            s.repro.kind.c_str(),
                            static_cast<unsigned long long>(s.origDynamic),
                            static_cast<unsigned long long>(
                                s.shrunkDynamic),
                            s.attempts,
                            s.timedOut ? " [timed out]" : "");
                if (s.exactBisected) {
                    std::printf("           first bad commit: %llu "
                                "(%u probes)\n",
                                static_cast<unsigned long long>(
                                    s.firstBadCommit),
                                s.bisectProbes);
                }
                if (s.reduced) {
                    std::printf("           reduced program: %llu -> "
                                "%llu static instrs (dynamic %llu)\n",
                                static_cast<unsigned long long>(
                                    s.shrunkStatic),
                                static_cast<unsigned long long>(
                                    s.reducedStatic),
                                static_cast<unsigned long long>(
                                    s.reducedDynamic));
                }
            });

        std::size_t shrinkTimedOut = 0;
        for (const verify::ShrinkResult &s : shrinks)
            shrinkTimedOut += s.timedOut ? 1 : 0;
        if (shrinkTimedOut > 0) {
            // Even under --quiet: a triage pass the budget cut short
            // must leave a trace, or the report reads as complete.
            std::fprintf(stderr,
                         "msp_sim: shrink budget expired — %zu of %zu "
                         "failing job(s) not fully shrunk (timed_out in "
                         "report)\n",
                         shrinkTimedOut, shrinks.size());
        }

        // Coverage campaigns canonicalise each failure to its root
        // cause (kind | first bad commit | reduced-program shape) and
        // fold duplicates into one representative repro.
        if (o.coverage && !shrinks.empty()) {
            const std::size_t before = shrinks.size();
            const std::size_t folded = verify::dedupShrinks(shrinks);
            if (folded > 0 && !o.quiet) {
                std::printf("  deduplicated %zu failure(s) into %zu "
                            "distinct root cause(s)\n",
                            before, shrinks.size());
            }
        }
    }

    // Per-config summary.
    struct Tally { std::size_t jobs = 0, divergent = 0, skipped = 0; };
    std::vector<std::pair<std::string, Tally>> tallies;
    for (const auto &out : outcomes) {
        Tally *t = nullptr;
        for (auto &[name, tally] : tallies)
            if (name == out.config)
                t = &tally;
        if (!t) {
            tallies.emplace_back(out.config, Tally{});
            t = &tallies.back().second;
        }
        ++t->jobs;
        t->divergent += out.ok() ? 0 : 1;
        t->skipped += out.skipped ? 1 : 0;
    }
    msp::Table t("Differential verification");
    t.header({"config", "runs", "divergent", "skipped"});
    for (const auto &[name, tally] : tallies)
        t.row({name, std::to_string(tally.jobs),
               std::to_string(tally.divergent),
               std::to_string(tally.skipped)});
    if (!o.quiet)
        std::fputs(t.str().c_str(), stdout);

    if (!o.jsonPath.empty()) {
        driver::writeFile(o.jsonPath,
                          verify::toJson(outcomes, shrinks, covReport));
    }

    const std::size_t divergences = verify::countDivergences(outcomes);
    const std::size_t skipped = verify::countSkipped(outcomes);
    if (!o.quiet) {
        std::printf("\n%zu run(s), %zu divergence(s), %zu skipped.\n",
                    outcomes.size(), divergences, skipped);
    }
    if (divergences == 0 && skipped == outcomes.size() &&
        !outcomes.empty()) {
        // An exhausted --budget-sec must not read as a clean sweep:
        // nothing was actually verified.
        std::fprintf(stderr,
                     "msp_sim: budget expired before any job ran — "
                     "nothing was verified\n");
        return 2;
    }
    if (skipped > 0) {
        // Even under --quiet: a partial sweep that exits 0 must leave
        // a trace that it was partial.
        std::fprintf(stderr,
                     "msp_sim: partial sweep — %zu of %zu job(s) "
                     "skipped (fail-fast/budget)\n",
                     skipped, outcomes.size());
    }
    return divergences == 0 ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    CliOptions o;
    try {
        o = parseCliArgs(std::vector<std::string>(argv + 1, argv + argc));
    } catch (const CliError &e) {
        std::fprintf(stderr, "msp_sim: %s\n", e.what());
        printUsage(stderr);
        return 2;
    }

    if (o.help) {
        printUsage(stdout);
        return 0;
    }
    if (o.list) {
        for (const auto &s : scenarios())
            std::printf("%-22s %s\n", s.name.c_str(), s.title.c_str());
        return 0;
    }
    if (o.mode == "merge") {
        try {
            std::vector<std::string> docs;
            for (const std::string &p : o.mergeInputs) {
                std::string doc;
                if (!driver::tryReadFile(p, doc)) {
                    std::fprintf(stderr,
                                 "msp_sim: cannot read shard report "
                                 "%s\n", p.c_str());
                    return 2;
                }
                docs.push_back(std::move(doc));
            }
            const std::string merged = driver::mergeReports(docs);
            if (o.jsonPath.empty())
                std::fputs(merged.c_str(), stdout);
            else
                driver::writeFile(o.jsonPath, merged);
            return 0;
        } catch (const CheckpointError &e) {
            std::fprintf(stderr, "msp_sim: %s\n", e.what());
            return 2;
        } catch (const json::JsonError &e) {
            // A shard report with a garbled number must not fold into
            // the merge as zeros.
            std::fprintf(stderr, "msp_sim: %s\n", e.what());
            return 2;
        }
    }

    // Campaign modes run long enough that ^C deserves better than a
    // lost run: the first signal drains in-flight jobs, flushes the
    // final checkpoint and writes a partial report (exit 3); the
    // second force-quits.
    std::signal(SIGINT, handleStopSignal);
    std::signal(SIGTERM, handleStopSignal);

    if (o.mode == "spec") {
        try {
            return runSpec(o);
        } catch (const CliError &e) {
            std::fprintf(stderr, "msp_sim: %s\n", e.what());
            return 2;
        }
    }
    if (o.mode == "bench") {
        try {
            return runBench(o);
        } catch (const SpecError &e) {
            std::fprintf(stderr, "msp_sim: %s\n", e.what());
            return 2;
        } catch (const json::JsonError &e) {
            // A corrupt baseline report must fail the gate run loudly,
            // not silently pass it.
            std::fprintf(stderr, "msp_sim: %s\n", e.what());
            return 2;
        }
    }
    if (o.mode == "trace") {
        try {
            const Program prog =
                workload::build(o.workloads.front(), o.seed);
            const std::string doc = trace::toJsonl(prog);
            // Round-trip guard: what is written must re-ingest as the
            // exact same program, or the dump is not a usable trace.
            if (trace::toJsonl(trace::fromJsonl(doc)) != doc) {
                std::fprintf(stderr, "msp_sim: internal error: trace "
                                     "round-trip mismatch\n");
                return 2;
            }
            if (o.jsonPath.empty()) {
                std::fputs(doc.c_str(), stdout);
            } else {
                driver::writeFile(o.jsonPath, doc);
                if (!o.quiet) {
                    std::printf("Wrote %s: %zu static instr(s), "
                                "%zu mem word(s).\n",
                                o.jsonPath.c_str(), prog.code.size(),
                                prog.memWords);
                }
            }
            return 0;
        } catch (const workload::WorkloadError &e) {
            std::fprintf(stderr, "msp_sim: %s\n", e.what());
            return 2;
        } catch (const trace::TraceError &e) {
            std::fprintf(stderr, "msp_sim: %s\n", e.what());
            return 2;
        }
    }
    if (o.mode == "verify") {
        try {
            return runVerify(o);
        } catch (const CliError &e) {
            // Machine resolution (--machine file errors) happens at
            // run time, past the grammar check above.
            std::fprintf(stderr, "msp_sim: %s\n", e.what());
            return 2;
        } catch (const CheckpointError &e) {
            // A checkpoint that cannot be resumed (corrupt mid-file,
            // or from a different campaign) must not silently rerun
            // from scratch under a flag that promised to resume.
            std::fprintf(stderr, "msp_sim: %s\n", e.what());
            return 2;
        } catch (const SpecError &e) {
            // Corrupt repro / checkpoint payload fields (stream_hash,
            // embedded program or spec) fail loudly, never replay as
            // zeros.
            std::fprintf(stderr, "msp_sim: %s\n", e.what());
            return 2;
        } catch (const workload::WorkloadError &e) {
            std::fprintf(stderr, "msp_sim: %s\n", e.what());
            return 2;
        } catch (const trace::TraceError &e) {
            // A missing or malformed trace file behind a trace:FILE
            // workload (or workload.trace grid axis).
            std::fprintf(stderr, "msp_sim: %s\n", e.what());
            return 2;
        } catch (const json::JsonError &e) {
            std::fprintf(stderr, "msp_sim: %s\n", e.what());
            return 2;
        }
    }

    std::vector<JobResult> results;
    try {
        if (o.mode == "matrix")
            results = runMatrix(o);
        else
            results = runScenario(o.mode, o.threads, o.instrs, !o.quiet);
    } catch (const CliError &e) {
        std::fprintf(stderr, "msp_sim: %s\n", e.what());
        return 2;
    } catch (const CheckpointError &e) {
        std::fprintf(stderr, "msp_sim: %s\n", e.what());
        return 2;
    } catch (const SpecError &e) {
        // A grid document that fails spec-level validation (bad axis
        // value, unknown preset) past the CLI grammar check.
        std::fprintf(stderr, "msp_sim: %s\n", e.what());
        return 2;
    } catch (const workload::WorkloadError &e) {
        std::fprintf(stderr, "msp_sim: %s\n", e.what());
        return 2;
    } catch (const trace::TraceError &e) {
        std::fprintf(stderr, "msp_sim: %s\n", e.what());
        return 2;
    } catch (const json::JsonError &e) {
        std::fprintf(stderr, "msp_sim: %s\n", e.what());
        return 2;
    }

    if (!o.jsonPath.empty())
        driver::writeFile(o.jsonPath, driver::toJson(results));
    if (!o.csvPath.empty())
        driver::writeFile(o.csvPath, driver::toCsv(results));
    if (driver::campaignStopRequested()) {
        std::size_t ran = 0;
        for (const JobResult &jr : results)
            ran += jr.ran ? 1 : 0;
        std::fprintf(stderr,
                     "msp_sim: interrupted — %zu of %zu job(s) done%s\n",
                     ran, results.size(),
                     o.checkpointPath.empty() ? ""
                                              : "; resume with --resume");
        return exitInterrupted;
    }
    return 0;
}
