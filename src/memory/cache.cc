#include "memory/cache.hh"

#include <bit>

#include "common/logging.hh"

namespace msp {

Cache::Cache(const CacheParams &p, StatGroup &stats)
    : assoc(p.assoc),
      lineShift(std::countr_zero(static_cast<unsigned>(p.lineBytes))),
      numSets(p.sizeBytes / (p.lineBytes * p.assoc)),
      lat(p.hitLatency),
      lines(numSets * p.assoc),
      hits(stats.add(p.name + ".hits")),
      misses(stats.add(p.name + ".misses")),
      writebacks(stats.add(p.name + ".writebacks"))
{
    msp_assert(std::has_single_bit(numSets), "%s: sets not a power of two",
               p.name.c_str());
    msp_assert(std::has_single_bit(static_cast<unsigned>(p.lineBytes)),
               "%s: line size not a power of two", p.name.c_str());
}

std::size_t
Cache::setIndex(Addr addr) const
{
    return (addr >> lineShift) & (numSets - 1);
}

Addr
Cache::tagOf(Addr addr) const
{
    return addr >> lineShift;
}

bool
Cache::access(Addr addr, bool isWrite)
{
    const std::size_t set = setIndex(addr);
    const Addr tag = tagOf(addr);
    Line *base = &lines[set * assoc];

    ++stamp;
    for (unsigned w = 0; w < assoc; ++w) {
        if (base[w].tag == tag) {
            base[w].lruStamp = stamp;
            base[w].dirty = base[w].dirty || isWrite;
            ++hits;
            return true;
        }
    }

    // Miss: evict LRU.
    Line *victim = base;
    for (unsigned w = 1; w < assoc; ++w) {
        if (base[w].lruStamp < victim->lruStamp)
            victim = &base[w];
    }
    if (victim->tag != invalidAddr && victim->dirty)
        ++writebacks;
    victim->tag = tag;
    victim->lruStamp = stamp;
    victim->dirty = isWrite;
    ++misses;
    return false;
}

bool
Cache::probe(Addr addr) const
{
    const std::size_t set = setIndex(addr);
    const Addr tag = tagOf(addr);
    const Line *base = &lines[set * assoc];
    for (unsigned w = 0; w < assoc; ++w)
        if (base[w].tag == tag)
            return true;
    return false;
}

void
Cache::flush()
{
    for (auto &l : lines)
        l = Line{};
    stamp = 0;
}

} // namespace msp
