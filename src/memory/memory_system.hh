/**
 * @file
 * The Table I memory subsystem: split 64 KB L1s, unified 1 MB L2,
 * 380-cycle main memory, 64-byte lines.
 */

#ifndef MSPLIB_MEMORY_MEMORY_SYSTEM_HH
#define MSPLIB_MEMORY_MEMORY_SYSTEM_HH

#include "common/stats.hh"
#include "common/types.hh"
#include "memory/cache.hh"

namespace msp {

/** Timing parameters for the full hierarchy (Table I defaults). */
struct MemoryParams
{
    std::size_t l1iSize = 64 * 1024;
    unsigned l1iAssoc = 4;
    Cycle l1iHit = 1;

    std::size_t l1dSize = 64 * 1024;
    unsigned l1dAssoc = 4;
    Cycle l1dHit = 4;

    std::size_t l2Size = 1024 * 1024;
    unsigned l2Assoc = 8;
    Cycle l2Hit = 16;

    unsigned lineBytes = 64;
    Cycle memLatency = 380;
};

/**
 * Composes the caches and answers latency queries from the cores.
 *
 * Latencies are *additional* cycles beyond the request cycle; an L1 hit
 * with hitLatency 4 makes the value ready 4 cycles after issue.
 */
class MemorySystem
{
  public:
    MemorySystem(const MemoryParams &params, StatGroup &stats);

    /** Latency of an instruction fetch at byte address @p addr. */
    Cycle fetchLatency(Addr addr);

    /** Latency of a data load at byte address @p addr. */
    Cycle loadLatency(Addr addr);

    /** Account a committed store (write-allocate into L1D). */
    void storeCommit(Addr addr);

    /** Reset cache contents (fresh run). */
    void flush();

    const MemoryParams &params() const { return cfg; }

  private:
    MemoryParams cfg;
    Cache l1i;
    Cache l1d;
    Cache l2;
};

} // namespace msp

#endif // MSPLIB_MEMORY_MEMORY_SYSTEM_HH
