#include "memory/memory_system.hh"

namespace msp {

MemorySystem::MemorySystem(const MemoryParams &p, StatGroup &stats)
    : cfg(p),
      l1i({"l1i", p.l1iSize, p.l1iAssoc, p.lineBytes, p.l1iHit}, stats),
      l1d({"l1d", p.l1dSize, p.l1dAssoc, p.lineBytes, p.l1dHit}, stats),
      l2({"l2", p.l2Size, p.l2Assoc, p.lineBytes, p.l2Hit}, stats)
{}

Cycle
MemorySystem::fetchLatency(Addr addr)
{
    if (l1i.access(addr, false))
        return cfg.l1iHit;
    if (l2.access(addr, false))
        return cfg.l1iHit + cfg.l2Hit;
    return cfg.l1iHit + cfg.l2Hit + cfg.memLatency;
}

Cycle
MemorySystem::loadLatency(Addr addr)
{
    if (l1d.access(addr, false))
        return cfg.l1dHit;
    if (l2.access(addr, false))
        return cfg.l1dHit + cfg.l2Hit;
    return cfg.l1dHit + cfg.l2Hit + cfg.memLatency;
}

void
MemorySystem::storeCommit(Addr addr)
{
    if (!l1d.access(addr, true))
        l2.access(addr, true);
}

void
MemorySystem::flush()
{
    l1i.flush();
    l1d.flush();
    l2.flush();
}

} // namespace msp
