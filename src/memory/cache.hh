/**
 * @file
 * Set-associative cache timing model with LRU replacement.
 *
 * The model tracks tags only (data correctness is handled by the store
 * queue / backing memory); its job is latency and miss statistics.
 * Write policy is write-back, write-allocate.
 */

#ifndef MSPLIB_MEMORY_CACHE_HH
#define MSPLIB_MEMORY_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace msp {

/** Geometry and timing of one cache level. */
struct CacheParams
{
    std::string name;
    std::size_t sizeBytes;
    unsigned assoc;
    unsigned lineBytes = 64;
    Cycle hitLatency;
};

/** One level of tag-only set-associative cache. */
class Cache
{
  public:
    /**
     * @param params Geometry/timing.
     * @param stats  Group receiving hit/miss counters.
     */
    Cache(const CacheParams &params, StatGroup &stats);

    /**
     * Access the line containing @p addr.
     *
     * @param addr    Byte address.
     * @param isWrite Marks the line dirty on hit/fill.
     * @retval true  on hit.
     * @retval false on miss (the line is filled and an LRU victim is
     *               evicted; a dirty eviction bumps the writeback stat).
     */
    bool access(Addr addr, bool isWrite);

    /** Probe without modifying state (for tests). */
    bool probe(Addr addr) const;

    /** Hit latency of this level. */
    Cycle hitLatency() const { return lat; }

    /** Invalidate everything (between benchmark runs). */
    void flush();

  private:
    struct Line
    {
        Addr tag = invalidAddr;
        std::uint64_t lruStamp = 0;
        bool dirty = false;
    };

    std::size_t setIndex(Addr addr) const;
    Addr tagOf(Addr addr) const;

    unsigned assoc;
    unsigned lineShift;
    std::size_t numSets;
    Cycle lat;
    std::uint64_t stamp = 0;
    std::vector<Line> lines;  // numSets * assoc

    Stat &hits;
    Stat &misses;
    Stat &writebacks;
};

} // namespace msp

#endif // MSPLIB_MEMORY_CACHE_HH
