#include "pipeline/core_base.hh"

#include <cstdlib>

#include <algorithm>

#include "common/logging.hh"
#include "functional/semantics.hh"
#include "functional/warmup.hh"

namespace msp {

CoreBase::CoreBase(const CoreParams &p, const Program &program,
                   PredictorKind predictor, StatGroup &statGroup)
    : params(p), prog(&program), stats(statGroup),
      memSys(MemoryParams{}, statGroup),
      branchUnit(predictor, statGroup),
      iq(p.iqSize),
      fuPool(p.intUnits, p.fpUnits, p.memUnits),
      sq(p.sq1Size, p.sq2Size, p.infiniteSq),
      oracle(program),
      fetchPc(program.entry)
{
    commitTap = p.commitFaultAt != 0 || p.observerFaultAt != 0;
    progSize = program.size();
    progAddrMask = program.addrMask();
    fetchQCap = 8 * p.fetchWidth;
    wbScratch.reserve(64);
    squashScratch.reserve(64);
}

// ---------------------------------------------------------------------------
// Fetch
// ---------------------------------------------------------------------------

void
CoreBase::doFetch()
{
    if (fetchStopped || now < fetchStallUntil)
        return;

    // Predictor state only changes when a control instruction is
    // predicted, so the straight-line snapshot (global history + RAS
    // top) is computed once per run of non-control slots instead of
    // per slot.
    BpSnapshot lineSnap;
    bool lineSnapValid = false;

    for (unsigned i = 0; i < params.fetchWidth; ++i) {
        if (fetchQ.size() >= fetchQCap)
            break;

        const Addr pc = fetchPc % progSize;
        const Instruction &si = prog->at(pc);

        // I-cache: one access per new line.
        const Addr lineAddr = prog->pcToAddr(pc) / 64;
        if (lineAddr != lastFetchLine) {
            lastFetchLine = lineAddr;
            const Cycle lat = memSys.fetchLatency(prog->pcToAddr(pc));
            if (lat > memSys.params().l1iHit) {
                // Miss: deliver this instruction when the line returns.
                fetchStallUntil = now + lat;
                break;
            }
        }

        DynInst &d = *instPool.alloc();
        d.seq = nextSeq++;
        d.pc = pc;
        d.si = si;
        d.renameReadyAt = now + params.frontendDepth;

        const OpInfo &oi = si.info();
        d.isControl = oi.isControl();
        if (d.isControl) {
            lineSnapValid = false;   // prediction mutates history/RAS
            bool ovTaken = false;
            Addr ovTarget = 0;
            const bool hasOverride = fetchOverride(pc, ovTaken, ovTarget);
            if (oi.isCondBranch && hasOverride) {
                BpPrediction p2 =
                    branchUnit.forceOutcome(pc, si, ovTaken, ovTarget);
                d.predTaken = p2.taken;
                d.predNextPc = p2.target;
                d.lowConfidence = false;
                d.forcedOutcome = true;
                d.bpSnap = p2.snap;
            } else {
                BpPrediction p2 = branchUnit.predictControl(pc, si);
                d.predTaken = p2.taken;
                d.predNextPc = p2.target;
                d.lowConfidence = p2.lowConfidence;
                d.bpSnap = p2.snap;
                if (hasOverride) {
                    // Indirect jump / return re-fetched after a CPR
                    // rollback: the resolved target is known. RAS/
                    // history side effects above stay as predicted.
                    d.predNextPc = ovTarget;
                    d.forcedOutcome = true;
                }
            }
            fetchPc = d.predNextPc;
        } else {
            if (!lineSnapValid) {
                lineSnap.hist = branchUnit.history();
                lineSnap.ras = branchUnit.ras().snapshot();
                lineSnapValid = true;
            }
            d.bpSnap = lineSnap;
            d.predNextPc = pc + 1;
            fetchPc = pc + 1;
        }

        const bool halt = oi.isHalt;
        const bool takenControl = d.isControl && d.predTaken;
        fetchQ.push_back(&d);

        if (halt) {
            fetchStopped = true;
            break;
        }
        // A predicted-taken control transfer ends the fetch group.
        if (takenControl)
            break;
    }
}

// ---------------------------------------------------------------------------
// Rename
// ---------------------------------------------------------------------------

void
CoreBase::doRename()
{
    if (hookFlags & kHookRenameCycleBegin)
        renameCycleBegin();

    unsigned renamed = 0;
    bool stalled = false;
    while (renamed < params.renameWidth && !fetchQ.empty()) {
        DynInst &f = *fetchQ.front();
        if (f.renameReadyAt > now)
            return;   // head not yet through the front end: not a stall

        stallReason = StallReason::None;
        stallBank = -1;
        if (!windowHasRoom()) {
            stallReason = StallReason::Window;
            stalled = true;
            break;
        }
        if (f.needsExecution() && iq.full()) {
            stallReason = StallReason::Iq;
            stalled = true;
            break;
        }
        if (f.isLoad() && ldqUsed >= params.ldqSize) {
            stallReason = StallReason::LoadQueue;
            stalled = true;
            break;
        }
        if (f.isStore() && !sq.canAllocate()) {
            stallReason = StallReason::StoreQueue;
            stalled = true;
            break;
        }
        if (!canRename(f)) {
            stalled = true;   // core set stallReason/stallBank
            break;
        }

        // Rename moves the pointer, not the record: the DynInst stays
        // put in the pool, so IQ/inExec references stay valid for free.
        window.push_back(&f);
        fetchQ.pop_front();
        DynInst &d = f;

        // IQ slot first: MSP rename indexes RelIQ use bits by it.
        if (d.needsExecution()) {
            iq.insert(&d);
        } else {
            // NOP / HALT complete at rename.
            d.executed = true;
            d.execDoneAt = now;
        }

        renameOne(d);

        if (d.inIq) {
            iq.fillTags(d.iqSlot, d.src1.phys, d.src2.phys,
                        static_cast<unsigned char>(d.info().fu));
            initWakeup(d);
        }

        if (d.isLoad())
            ++ldqUsed;
        if (d.isStore())
            sq.allocate(d.seq);
        ++renamed;
    }

    if (renamed > 0)
        prevStall = StallReason::None;
    if (stalled && renamed == 0) {
        ++renameStallCycles;
        ++pathEvents.stallEdge[static_cast<unsigned>(prevStall) *
                                   PathEvents::stallKinds +
                               static_cast<unsigned>(stallReason)];
        prevStall = stallReason;
        switch (stallReason) {
          case StallReason::Registers:
            ++regStallCycles;
            if (stallBank >= 0 && stallBank < numLogRegs)
                ++bankStallCycles[stallBank];
            break;
          case StallReason::Iq:
            ++iqStallCycles;
            break;
          case StallReason::StoreQueue:
            ++sqStallCycles;
            break;
          default:
            break;
        }
    }
}

// ---------------------------------------------------------------------------
// Issue / execute
// ---------------------------------------------------------------------------

void
CoreBase::executeInst(DynInst &d)
{
    const OpInfo &oi = d.info();
    if (d.isControl) {
        d.taken = oi.isCondBranch
                      ? semantics::branchTaken(d.si, d.srcVal1, d.srcVal2)
                      : true;
        d.actualNextPc = semantics::controlTarget(d.si, d.srcVal1, d.taken,
                                                  d.pc) % progSize;
        if (d.si.writesReg())
            d.result = semantics::aluResult(d.si, d.srcVal1, d.srcVal2, d.pc);
        d.mispredicted = d.actualNextPc != d.predNextPc % progSize;
    } else if (oi.isLoad) {
        d.effAddr = semantics::effectiveAddr(d.si, d.srcVal1,
                                             progAddrMask);
        d.actualNextPc = d.pc + 1;
    } else if (oi.isStore) {
        d.effAddr = semantics::effectiveAddr(d.si, d.srcVal1,
                                             progAddrMask);
        d.storeData = d.srcVal2;
        d.actualNextPc = d.pc + 1;
    } else if (oi.isTrap || oi.isHalt || d.si.op == Opcode::NOP) {
        d.actualNextPc = d.pc + 1;
    } else {
        d.result = semantics::aluResult(d.si, d.srcVal1, d.srcVal2, d.pc);
        d.actualNextPc = d.pc + 1;
    }
}

void
CoreBase::doIssueStage()
{
    // Select scans the ready bitvector in age order. The bits are
    // maintained event-driven (initWakeup at rename, wakeSrc at
    // writeback); most stalled cycles exit on the anyReady() test
    // without touching the age list at all.
    if (!iq.anyReady())
        return;
    unsigned issuedThisCycle = 0;
    const auto &order = iq.ageOrder();
    for (const std::int32_t slot : order) {
        if (issuedThisCycle >= params.issueWidth)
            break;
        if (slot < 0 || !iq.ready(slot))
            continue;
        DynInst &d = *iq.at(slot);
        msp_assert(!d.squashed && !d.issued, "stale IQ entry");
        msp_assert(operandsReady(d),
                   "IQ slot %d ready bit set with operands not ready",
                   slot);

        readOperands(d);
        executeInst(d);

        const OpInfo &oi = d.info();
        Cycle latency = oi.latency;
        if (oi.isLoad) {
            ForwardResult fw = sq.probe(d.seq, d.effAddr);
            ++pathEvents.sqProbe[static_cast<unsigned>(fw.kind)];
            if (fw.kind == ForwardResult::Kind::Unknown ||
                fw.kind == ForwardResult::Kind::Stall) {
                continue;   // retry when the blocking store resolves
            }
            if (!issuePortsAvailable(d) || !fuPool.tryAcquire(FuClass::Mem))
                continue;
            if (fw.kind == ForwardResult::Kind::Forward) {
                if (fw.extraLatency > 0)
                    ++pathEvents.sqL2Forward;
                d.result = fw.data;
                latency = 2 + fw.extraLatency;
            } else {
                d.result = oracle.state().load(d.effAddr);
                latency = memSys.loadLatency(d.effAddr);
            }
        } else {
            if (!issuePortsAvailable(d) ||
                !fuPool.tryAcquire(oi.fu)) {
                continue;
            }
            if (oi.isStore) {
                sq.resolve(d.seq, d.effAddr, d.storeData);
                latency = 1;
            }
        }

        d.issued = true;
        d.execDoneAt = now + latency;
        onIssued(d);
        iq.remove(&d);
        inExec.push_back(&d);
        ++issuedThisCycle;
    }
}

// ---------------------------------------------------------------------------
// Writeback / branch resolution
// ---------------------------------------------------------------------------

void
CoreBase::doWritebackStage()
{
    // Gather completions for this cycle, oldest first. Sequence numbers
    // are copied out: a recovery triggered mid-loop pops squashed
    // instructions from the window, so younger pointers in this list
    // become invalid and must be filtered by seq *before* dereference.
    std::vector<std::pair<SeqNum, DynInst *>> &done = wbScratch;
    done.clear();
    for (DynInst *d : inExec) {
        if (!d->squashed && !d->executed && d->execDoneAt <= now)
            done.emplace_back(d->seq, d);
    }
    std::sort(done.begin(), done.end());

    SeqNum liveBound = invalidSeqNum;
    for (auto &[seq, dp] : done) {
        if (seq > liveBound)
            continue;   // squashed (and freed) by an older recovery
        DynInst &d = *dp;
        if (d.squashed)
            continue;

        if (d.si.writesReg() && !writebackDest(d)) {
            d.execDoneAt = now + 1;   // register-file write-port conflict
            continue;
        }
        d.executed = true;
        if (params.ldqReleaseAtExec && d.isLoad() && !d.ldqReleased) {
            d.ldqReleased = true;
            msp_assert(ldqUsed > 0, "ldq underflow");
            --ldqUsed;
        }
        onExecuted(d);

        if (d.isControl) {
            branchUnit.resolveControl(d.pc, d.si, d.taken,
                                      d.actualNextPc, d.bpSnap);
            if (d.mispredicted) {
                ++mispredictsResolved;
                recoverBranch(d);
                if (lastSquashBoundary < liveBound)
                    liveBound = lastSquashBoundary;
            }
        }
    }

    // Purge finished or squashed entries.
    std::erase_if(inExec, [](const DynInst *d) {
        return d->executed || d->squashed;
    });
}

// ---------------------------------------------------------------------------
// Squash / recovery plumbing
// ---------------------------------------------------------------------------

void
CoreBase::squashAndRedirect(SeqNum boundary, SeqNum classifySeq, Addr newPc,
                            Cycle extraPenalty, bool exception,
                            const DynInst &triggerRef)
{
    // The trigger may itself be squashed (a CPR rollback restarts at a
    // checkpoint *older* than the mispredicted branch), and callers
    // pass a reference into the window this function pops — so copy it
    // before any entry is freed.
    const DynInst trigger = triggerRef;

    // Collect the doomed instructions youngest-first.
    std::vector<DynInst *> &dead = squashScratch;
    dead.clear();
    for (auto it = window.rbegin();
         it != window.rend() && (*it)->seq > boundary; ++it) {
        dead.push_back(*it);
    }

    for (DynInst *d : dead) {
        d->squashed = true;
        // Per-core release first: MSP clears RelIQ bits via the IQ slot.
        onSquashInst(*d);
        if (d->inIq)
            iq.remove(d);
        if (d->isLoad() && !d->ldqReleased)
            --ldqUsed;
        if (d->issued || d->executed) {
            if (d->seq > classifySeq)
                ++wrongPathExec;
            else
                ++reExecuted;
        }
    }

    // inExec holds raw pointers into the window: purge before popping.
    std::erase_if(inExec, [](const DynInst *d) { return d->squashed; });

    lastSqScanned = sq.squashAfter(boundary);

    while (!window.empty() && window.back()->seq > boundary) {
        instPool.free(window.back());
        window.pop_back();
    }
    for (DynInst *f : fetchQ)
        instPool.free(f);
    fetchQ.clear();

    // Branch-history repair.
    if (exception) {
        branchUnit.setHistory(trigger.bpSnap.hist);
        branchUnit.ras().restore(trigger.bpSnap.ras);
    } else if (trigger.isControl) {
        branchUnit.squashRepair(trigger.bpSnap, trigger.si, trigger.pc,
                                trigger.taken);
    }

    fetchPc = newPc % prog->size();
    fetchStopped = false;
    fetchStallUntil = now + 1 + extraPenalty + params.recoveryPenalty;
    lastFetchLine = invalidAddr;
    lastSquashBoundary = boundary;
    ++recoveries;
    {
        // log2 depth bucket: 0 -> [0], 1 -> [1], 2..3 -> [2], ... 64+ -> [7].
        const std::size_t depth = dead.size();
        unsigned b = 0;
        for (std::size_t v = depth; v != 0 && b < 7; v >>= 1)
            ++b;
        ++pathEvents.squashDepth[b];
    }

    afterSquash(trigger, exception);
}

// ---------------------------------------------------------------------------
// Commit helpers
// ---------------------------------------------------------------------------

void
CoreBase::commitOne()
{
    msp_assert(!window.empty(), "commit on empty window");
    DynInst &d = *window.front();
    msp_assert(!d.squashed, "committing a squashed instruction");
    msp_assert(d.executed, "committing an unexecuted instruction");

    // The oracle steps with every commit: loads read committed memory
    // through it. A core bug can commit *past* the architectural HALT;
    // stepping the halted oracle would abort, so freeze it instead —
    // with the lock-step check on that bug is fatal here, with it off
    // (differential verification) the run continues and the external
    // oracle reports the commit-count/stream divergence.
    StepResult sr{};
    if (!oracle.halted()) {
        sr = oracle.step();
    } else if (params.oracleCheck) {
        msp_panic("commit past the oracle's HALT (pc %llu, seq %llu)",
                  static_cast<unsigned long long>(d.pc),
                  static_cast<unsigned long long>(d.seq));
    }
    if (params.oracleCheck) {
        msp_assert(sr.pc == d.pc,
                   "commit pc mismatch: core @%llu oracle @%llu (seq %llu)",
                   static_cast<unsigned long long>(d.pc),
                   static_cast<unsigned long long>(sr.pc),
                   static_cast<unsigned long long>(d.seq));
        if (d.si.writesReg()) {
            msp_assert(d.result == sr.value,
                       "result mismatch at pc %llu (%s): core %llx "
                       "oracle %llx",
                       static_cast<unsigned long long>(d.pc),
                       opName(d.si.op),
                       static_cast<unsigned long long>(d.result),
                       static_cast<unsigned long long>(sr.value));
        }
        if (d.isStore()) {
            msp_assert(d.effAddr == sr.memAddr &&
                           d.storeData == sr.storeValue,
                       "store mismatch at pc %llu",
                       static_cast<unsigned long long>(d.pc));
        }
        if (d.isControl) {
            msp_assert(d.actualNextPc == sr.nextPc % prog->size(),
                       "control-flow mismatch at pc %llu",
                       static_cast<unsigned long long>(d.pc));
        }
    }

    // The observer / fault-injection tap is off in plain simulation
    // runs; one cached flag keeps its three tests out of the per-commit
    // fast path (commitTap is recomputed whenever the observer or the
    // fault knobs change).
    if (commitTap) {
        if (params.commitFaultAt != 0 && d.si.writesReg() &&
            ++commitFaultSeen == params.commitFaultAt) {
            d.result ^= 1;
        }
        const bool dropObserved =
            params.observerFaultAt != 0 &&
            ++observerFaultSeen == params.observerFaultAt;
        if (commitObserver && !dropObserved)
            commitObserver(d);
    }

    if (d.isStore()) {
        sq.drainOldest(d.seq);
        memSys.storeCommit(d.effAddr);
    }
    if (d.isLoad() && !d.ldqReleased)
        --ldqUsed;
    if (d.isControl) {
        ++pathEvents.predEdge[(d.predTaken ? 8u : 0u) |
                              (d.taken ? 4u : 0u) |
                              (d.mispredicted ? 2u : 0u) |
                              (d.lowConfidence ? 1u : 0u)];
        // A branch committed through a CPR rollback override was
        // mispredicted by the real predictor: count and train it so.
        const bool predicted = !d.mispredicted && !d.forcedOutcome;
        branchUnit.commitControl(d.pc, d.si, d.taken, d.actualNextPc,
                                 d.bpSnap, predicted);
        if (d.isBranch())
            ++branchesCommitted;
    }
    onCommitted(d);
    ++committedCount;
    lastCommitCycle = now;
    if (d.isHalt())
        haltCommitted = true;

    window.pop_front();
    // Retired and popped: nothing references the record any more (it
    // left the IQ at issue and inExec when it executed).
    instPool.free(&d);
}

void
CoreBase::takeException()
{
    msp_assert(!window.empty() && window.front()->isTrap(),
               "takeException without a trap at head");
    DynInst trap = *window.front();   // copy: commitOne pops and frees it
    commitOne();
    ++exceptionsTaken;
    ++pathEvents.exceptionSquash;
    squashAndRedirect(trap.seq, trap.seq, trap.pc + 1, 0, true, trap);
}

// ---------------------------------------------------------------------------
// Top level
// ---------------------------------------------------------------------------

void
CoreBase::dumpDeadlock() const
{
    std::fprintf(stderr,
                 "deadlock dump: cycle=%llu committed=%llu window=%zu "
                 "fetchQ=%zu iqFree=%u sq=%zu ldq=%u stall=%d "
                 "fetchStopped=%d fetchStallUntil=%llu fetchPc=%llu\n",
                 static_cast<unsigned long long>(now),
                 static_cast<unsigned long long>(committedCount),
                 window.size(), fetchQ.size(), iq.freeCount(), sq.size(),
                 ldqUsed, static_cast<int>(stallReason), fetchStopped,
                 static_cast<unsigned long long>(fetchStallUntil),
                 static_cast<unsigned long long>(fetchPc));
    int shown = 0;
    for (const DynInst *d : window) {
        if (d->executed)
            continue;
        std::fprintf(stderr,
                     "  unexec seq=%llu pc=%llu op=%s issued=%d inIq=%d "
                     "execDoneAt=%llu\n",
                     static_cast<unsigned long long>(d->seq),
                     static_cast<unsigned long long>(d->pc),
                     opName(d->si.op), d->issued, d->inIq,
                     static_cast<unsigned long long>(d->execDoneAt));
        if (++shown >= 5)
            break;
    }
    if (!window.empty()) {
        const DynInst &h = *window.front();
        std::fprintf(stderr,
                     "  head seq=%llu pc=%llu op=%s executed=%d\n",
                     static_cast<unsigned long long>(h.seq),
                     static_cast<unsigned long long>(h.pc),
                     opName(h.si.op), h.executed);
    }
}

void
CoreBase::stepCycle()
{
    fuPool.reset();
    if (hookFlags & kHookCycleBegin)
        cycleBegin();
    doCommit();
    doWritebackStage();
    doIssueStage();
    doRename();
    doFetch();
    ++now;
}

void
CoreBase::applyWarmup()
{
    warmupApplied = true;
    std::uint64_t stepped = 0;
    while (stepped < params.warmupInstrs && warmupCanStep(oracle, *prog)) {
        const Addr pc = oracle.pc() % progSize;
        const Instruction &in = prog->at(pc);
        if (in.info().isControl()) {
            // Train exactly like the pipeline would on this path:
            // predict (pushes speculative history/RAS), resolve-time
            // direction/confidence update against the actual outcome,
            // and the mispredict repair that rewinds speculative state
            // and pushes the truth. Commit-order counters stay
            // untouched — warmup is not part of the measured run.
            const BpPrediction p = branchUnit.predictControl(pc, in);
            const StepResult sr = oracle.step();
            const Addr actualNext = sr.nextPc % progSize;
            branchUnit.resolveControl(pc, in, sr.taken, actualNext,
                                      p.snap);
            if (actualNext != p.target % progSize)
                branchUnit.squashRepair(p.snap, in, pc, sr.taken);
        } else {
            oracle.step();
        }
        ++stepped;
    }
    // Handoff: architectural values into the reset-state rename
    // structures, fetch restarted at the first unexecuted instruction.
    // The oracle itself already sits at the handoff point, so the
    // commit-time lock-step check continues seamlessly.
    warmArchState(oracle.state());
    fetchPc = oracle.pc() % progSize;
}

RunResult
CoreBase::run(std::uint64_t maxCommits, std::uint64_t maxCycles)
{
    if (params.warmupInstrs != 0 && !warmupApplied)
        applyWarmup();
    lastCommitCycle = 0;
    while (!haltCommitted && committedCount < maxCommits &&
           now < maxCycles) {
        stepCycle();
        if (now - lastCommitCycle > 1000000) {
            dumpDeadlock();
            msp_panic("no commit progress for 1M cycles (cycle %llu, "
                      "committed %llu, window %zu, fetchQ %zu)",
                      static_cast<unsigned long long>(now),
                      static_cast<unsigned long long>(committedCount),
                      window.size(), fetchQ.size());
        }
    }

    RunResult r;
    r.workload = prog->name;
    r.cycles = now;
    r.committed = committedCount;
    r.wrongPathExec = wrongPathExec;
    r.reExecuted = reExecuted;
    r.totalExecuted = committedCount + wrongPathExec + reExecuted;
    r.branches = branchesCommitted;
    r.mispredicts = stats.get("condMispredicted");
    r.recoveries = recoveries;
    r.exceptions = exceptionsTaken;
    r.renameStallCycles = renameStallCycles;
    r.regStallCycles = regStallCycles;
    r.iqStallCycles = iqStallCycles;
    r.sqStallCycles = sqStallCycles;
    r.checkpointsTaken = checkpointsTaken;
    r.l2Misses = stats.get("l2.misses");
    r.bankStallCycles = bankStallCycles;
    return r;
}

} // namespace msp
