/**
 * @file
 * Chunked arena for DynInst records.
 *
 * The window and fetch queue used to hold DynInst by value in
 * std::deque: at ~200 bytes per record a libstdc++ deque block holds
 * only two of them, so steady-state fetch/commit churned a heap
 * allocation roughly every other instruction, and renaming moved the
 * whole record from one deque to the other. The pool fixes both: it
 * hands out pointers into fixed chunks (never freed until the core is
 * destroyed, so pointers are stable for the IQ and inExec lists), the
 * pipeline queues become pointer deques, and "rename" is a pointer
 * move instead of a 200-byte copy.
 */

#ifndef MSPLIB_PIPELINE_DYNINST_POOL_HH
#define MSPLIB_PIPELINE_DYNINST_POOL_HH

#include <memory>
#include <vector>

#include "pipeline/dyninst.hh"

namespace msp {

/** Free-list arena; alloc() returns a default-initialised DynInst. */
class DynInstPool
{
  public:
    DynInstPool() = default;
    DynInstPool(const DynInstPool &) = delete;
    DynInstPool &operator=(const DynInstPool &) = delete;

    /** A fresh record, reset to its default-constructed state. */
    DynInst *
    alloc()
    {
        if (freeList.empty())
            grow();
        DynInst *p = freeList.back();
        freeList.pop_back();
        *p = DynInst{};
        return p;
    }

    /** Return @p p to the free list. Memory is only reclaimed at
     *  destruction, so stale pointers never alias a *different*
     *  object's storage until re-allocation reuses the slot. */
    void free(DynInst *p) { freeList.push_back(p); }

  private:
    static constexpr std::size_t chunkInsts = 256;

    void
    grow()
    {
        chunks.push_back(std::make_unique<DynInst[]>(chunkInsts));
        DynInst *base = chunks.back().get();
        freeList.reserve(freeList.size() + chunkInsts);
        for (std::size_t i = 0; i < chunkInsts; ++i)
            freeList.push_back(base + (chunkInsts - 1 - i));
    }

    std::vector<std::unique_ptr<DynInst[]>> chunks;
    std::vector<DynInst *> freeList;
};

} // namespace msp

#endif // MSPLIB_PIPELINE_DYNINST_POOL_HH
