/**
 * @file
 * Per-cycle functional-unit issue-bandwidth pool.
 */

#ifndef MSPLIB_PIPELINE_FU_POOL_HH
#define MSPLIB_PIPELINE_FU_POOL_HH

#include "isa/opcodes.hh"

namespace msp {

/**
 * Tracks how many operations of each class issued this cycle.
 *
 * All units are fully pipelined, so the pool only constrains issue
 * bandwidth; reset() is called at the start of every cycle.
 */
class FuPool
{
  public:
    FuPool(unsigned intUnits, unsigned fpUnits, unsigned memUnits)
        : intCap(intUnits), fpCap(fpUnits), memCap(memUnits)
    {}

    /** Start a new cycle. */
    void
    reset()
    {
        intUsed = fpUsed = memUsed = 0;
    }

    /** Try to claim a unit for @p cls this cycle. */
    bool
    tryAcquire(FuClass cls)
    {
        switch (cls) {
          case FuClass::IntAlu:
          case FuClass::IntMul:
            if (intUsed >= intCap)
                return false;
            ++intUsed;
            return true;
          case FuClass::FpAlu:
            if (fpUsed >= fpCap)
                return false;
            ++fpUsed;
            return true;
          case FuClass::Mem:
            if (memUsed >= memCap)
                return false;
            ++memUsed;
            return true;
          case FuClass::None:
            return true;
        }
        return false;
    }

  private:
    unsigned intCap, fpCap, memCap;
    unsigned intUsed = 0, fpUsed = 0, memUsed = 0;
};

} // namespace msp

#endif // MSPLIB_PIPELINE_FU_POOL_HH
