/**
 * @file
 * CoreBase — the out-of-order pipeline skeleton shared by the baseline,
 * CPR and MSP cores.
 *
 * The base class owns everything the paper holds constant across the
 * compared architectures (Table I): the front end and branch predictor,
 * the instruction queue and functional units, the load/store machinery
 * and the memory hierarchy, plus the commit-time functional oracle.
 * Subclasses implement exactly what the paper varies: register
 * allocation/renaming, release/commit, and recovery.
 *
 * Cycle model: each cycle runs commit -> writeback -> issue -> rename ->
 * fetch, so values complete before dependents try to issue (modelling
 * the bypass network) and commit uses state as of the end of the
 * previous cycle.
 */

#ifndef MSPLIB_PIPELINE_CORE_BASE_HH
#define MSPLIB_PIPELINE_CORE_BASE_HH

#include <deque>
#include <functional>
#include <vector>

#include "bpred/branch_unit.hh"
#include "common/stats.hh"
#include "functional/executor.hh"
#include "isa/program.hh"
#include "lsq/store_queue.hh"
#include "memory/memory_system.hh"
#include "pipeline/dyninst.hh"
#include "pipeline/dyninst_pool.hh"
#include "pipeline/fu_pool.hh"
#include "pipeline/inst_queue.hh"
#include "pipeline/params.hh"

namespace msp {

/** Reason the rename stage could not accept an instruction. */
enum class StallReason {
    None,
    Registers,    ///< out of physical registers (bank or free list)
    Iq,
    StoreQueue,
    LoadQueue,
    Window,       ///< ROB (baseline) full
    Checkpoint,   ///< CPR: no checkpoint for a must-checkpoint inst
};

/**
 * Raw microarchitectural path-event counters, harvested once per run by
 * the coverage-guided fuzzer (verify/coverage.{hh,cc}) and folded into
 * its (feature, bucket) bitmap. Pure observation: every increment sits
 * on an already-branchy path and never feeds back into timing, so
 * cycle-for-cycle behaviour is identical with or without a harvester.
 */
struct PathEvents
{
    /** StallReason cardinality (None..Checkpoint). */
    static constexpr unsigned stallKinds = 7;

    /**
     * Rename-stall transition matrix [prev * stallKinds + cur], one
     * count per fully stalled rename cycle. prev is the reason of the
     * previous stalled cycle, reset to None whenever rename makes
     * progress — so the matrix distinguishes "stuck on the IQ after the
     * store queue" from "stuck on the IQ out of nowhere".
     */
    std::array<std::uint64_t, stallKinds * stallKinds> stallEdge{};

    /**
     * Predictor outcome edges at control commit:
     * [predTaken*8 + taken*4 + mispredicted*2 + lowConfidence].
     */
    std::array<std::uint64_t, 16> predEdge{};

    /**
     * Squash depth (instructions killed per recovery), log2 buckets:
     * [0]=0, [1]=1, [2]=2..3, [3]=4..7, ... [7]=64+.
     */
    std::array<std::uint64_t, 8> squashDepth{};

    /** Exception-path squashes (takeException). */
    std::uint64_t exceptionSquash = 0;

    /**
     * Store-queue probe outcomes at load issue, indexed by
     * ForwardResult::Kind (None / Forward / Stall / Unknown).
     */
    std::array<std::uint64_t, 4> sqProbe{};

    /** Store-to-load forwards served from the L2 region of the SQ. */
    std::uint64_t sqL2Forward = 0;

    /** MSP: SCT bank release gates opened at commit. */
    std::uint64_t sctGateRelease = 0;

    /** MSP: dirty banks drained by LCS recomputation. */
    std::uint64_t lcsDirtyBank = 0;

    /** MSP: LCS recomputations that found at least one dirty bank. */
    std::uint64_t lcsRecompute = 0;
};

/** Shared out-of-order core skeleton. */
class CoreBase
{
  public:
    CoreBase(const CoreParams &params, const Program &program,
             PredictorKind predictor, StatGroup &statGroup);
    virtual ~CoreBase() = default;

    /**
     * Simulate until @p maxCommits instructions commit, HALT commits,
     * or @p maxCycles elapse.
     */
    RunResult run(std::uint64_t maxCommits, std::uint64_t maxCycles);

    /** Current cycle (for tests). */
    Cycle cycle() const { return now; }

    /** Committed instruction count so far. */
    std::uint64_t committed() const { return committedCount; }

    /** True once a HALT instruction has committed. */
    bool halted() const { return haltCommitted; }

    /** The lock-step functional oracle (for final-state checks). */
    const FunctionalExecutor &oracleRef() const { return oracle; }

    /**
     * Observer invoked for every committed instruction, in commit
     * order, with the retiring DynInst (pc, result, effAddr, storeData,
     * actualNextPc all final). The differential-verification subsystem
     * uses this to reconstruct the core's committed architectural state
     * without trusting the internal oracle.
     */
    using CommitObserver = std::function<void(const DynInst &)>;

    /** Install @p obs (replacing any previous observer). */
    void setCommitObserver(CommitObserver obs)
    {
        commitObserver = std::move(obs);
        commitTap = static_cast<bool>(commitObserver) ||
                    params.commitFaultAt != 0 || params.observerFaultAt != 0;
    }

    /** Path-event counters accumulated so far (coverage harvesting). */
    const PathEvents &events() const { return pathEvents; }

  protected:
    // ---- per-core policy hooks ------------------------------------------

    /**
     * Per-cycle hook opt-in bits. The cycle loop is hot enough that
     * even an empty virtual call per cycle shows up, so cores that
     * implement cycleBegin()/renameCycleBegin() must also set the
     * matching flag in their constructor; unset hooks are skipped
     * without the indirect call.
     */
    enum HookFlag : unsigned char {
        kHookCycleBegin = 1u << 0,
        kHookRenameCycleBegin = 1u << 1,
    };

    /** Start-of-cycle reset (MSP register-file port masks). */
    virtual void cycleBegin() {}

    /** Reset per-cycle rename bookkeeping (MSP dual-rename counters). */
    virtual void renameCycleBegin() {}

    /**
     * Can @p d rename this cycle? Must not mutate state. On failure the
     * implementation reports the reason via stallReason (and stallBank
     * for MSP register-bank stalls).
     */
    virtual bool canRename(const DynInst &d) = 0;

    /** Allocate rename resources for @p d; must succeed after canRename. */
    virtual void renameOne(DynInst &d) = 0;

    /** Are @p d's source operands ready (register state only)?
     *  Readiness is tracked event-driven in the IQ lanes; this
     *  predicate remains as the oracle the issue stage cross-checks
     *  ready bits against (and as the naive reference for tests). */
    virtual bool operandsReady(const DynInst &d) const = 0;

    /**
     * Initialise @p d's wakeup state right after rename: count the
     * distinct source tags that are not yet ready, subscribe to their
     * producers, and hand the count to the IQ via iq.setPending().
     * Called only for instructions inserted into the IQ.
     */
    virtual void initWakeup(DynInst &d) = 0;

    /**
     * Issue-time structural check (MSP register-file read-port
     * arbitration). Called after operandsReady passes; claiming happens
     * in onIssued.
     */
    virtual bool issuePortsAvailable(const DynInst &d) { return true; }

    /** Copy source values into @p d (register read / bypass). */
    virtual void readOperands(DynInst &d) = 0;

    /** Per-core issue bookkeeping (use-bit clear, refcount release). */
    virtual void onIssued(DynInst &d) {}

    /**
     * Write @p d's result to its destination register. Returns false if
     * the write must retry next cycle (MSP write-port conflict).
     */
    virtual bool writebackDest(DynInst &d) = 0;

    /** Completion bookkeeping (SCT ready bit, checkpoint counters). */
    virtual void onExecuted(DynInst &d) {}

    /** Commit stage. Implementations call commitOne()/takeException(). */
    virtual void doCommit() = 0;

    /** Branch-misprediction recovery policy. */
    virtual void recoverBranch(DynInst &branch) = 0;

    /** Per-instruction resource release during a squash
     *  (called youngest-to-oldest, before the window pops). */
    virtual void onSquashInst(DynInst &d) = 0;

    /** Global repair after a squash (RAT restore, SC reset, ...). */
    virtual void afterSquash(const DynInst &trigger, bool exception) {}

    /** Extra per-instruction commit work (free superseded register). */
    virtual void onCommitted(DynInst &d) {}

    /** Baseline ROB-style window limit. */
    virtual bool windowHasRoom() const { return true; }

    /**
     * Pour the post-warmup architectural register values into the
     * core's renamed storage. Called exactly once, before any timing
     * cycle, with every rename structure still at reset: each logical
     * register's current mapping simply takes its architectural value.
     */
    virtual void warmArchState(const ArchState &warm) = 0;

    /** CPR resolved-branch fetch override (see cpr_core.cc). */
    virtual bool
    fetchOverride(Addr pc, bool &taken, Addr &target)
    {
        return false;
    }

    /** Diagnostic dump printed before a no-progress panic. */
    virtual void dumpDeadlock() const;

    // ---- shared machinery (used by subclasses) ---------------------------

    /**
     * Commit the window head: oracle check, predictor training, store
     * drain, stat accounting. Pops the window.
     */
    void commitOne();

    /**
     * Take a precise exception at the window-head TRAP: commits the
     * trap (handler semantics: skip), squashes everything younger and
     * redirects to pc + 1.
     */
    void takeException();

    /**
     * Squash all instructions with seq > @p boundary and redirect fetch.
     *
     * @param boundary    Youngest surviving sequence number.
     * @param classifySeq Squashed-and-executed instructions with
     *                    seq <= classifySeq count as re-executed work;
     *                    younger ones as wrong-path work.
     * @param newPc       Fetch restart pc.
     * @param extraPenalty Added to the fetch restart delay.
     * @param exception   Squash caused by an exception.
     * @param trigger     The instruction causing the recovery.
     */
    void squashAndRedirect(SeqNum boundary, SeqNum classifySeq, Addr newPc,
                           Cycle extraPenalty, bool exception,
                           const DynInst &trigger);

    /** L2-region entries scanned by the most recent SQ squash. */
    std::size_t lastSqScan() const { return lastSqScanned; }

    // ---- pipeline stages --------------------------------------------------

    void stepCycle();
    void doFetch();
    void doRename();
    void doIssueStage();
    void doWritebackStage();

    /** Execute @p d's semantics using its captured source values. */
    void executeInst(DynInst &d);

    // ---- shared state -------------------------------------------------------

    CoreParams params;
    const Program *prog;
    StatGroup &stats;
    MemorySystem memSys;
    BranchUnit branchUnit;
    InstQueue iq;
    FuPool fuPool;
    HierStoreQueue sq;
    FunctionalExecutor oracle;

    /** Arena owning every in-flight DynInst (stable pointers). */
    DynInstPool instPool;

    /** All renamed, in-flight instructions in fetch order. */
    std::deque<DynInst *> window;

    /** Fetched but not yet renamed. */
    std::deque<DynInst *> fetchQ;

    /** Issued instructions awaiting completion. */
    std::vector<DynInst *> inExec;

    /** Per-cycle hook opt-ins (HookFlag bits, set by subclass ctors). */
    unsigned char hookFlags = 0;

    Cycle now = 0;
    SeqNum nextSeq = 1;
    Addr fetchPc = 0;
    bool fetchStopped = false;
    Cycle fetchStallUntil = 0;
    Addr lastFetchLine = invalidAddr;
    unsigned ldqUsed = 0;

    std::uint64_t committedCount = 0;
    bool haltCommitted = false;

    /** Set by canRename() on failure. */
    StallReason stallReason = StallReason::None;
    int stallBank = -1;

    /** Path-event counters (see PathEvents); subclasses bump the
     *  MSP-specific fields directly. */
    PathEvents pathEvents;

    /** Reason of the previous fully stalled rename cycle (None after
     *  any rename progress) — the row index of the stallEdge matrix. */
    StallReason prevStall = StallReason::None;

    // Run counters surfaced into RunResult.
    std::uint64_t wrongPathExec = 0;
    std::uint64_t reExecuted = 0;
    std::uint64_t branchesCommitted = 0;
    std::uint64_t mispredictsResolved = 0;
    std::uint64_t recoveries = 0;
    std::uint64_t exceptionsTaken = 0;
    std::uint64_t renameStallCycles = 0;
    std::uint64_t regStallCycles = 0;
    std::uint64_t iqStallCycles = 0;
    std::uint64_t sqStallCycles = 0;
    std::uint64_t checkpointsTaken = 0;
    std::array<std::uint64_t, numLogRegs> bankStallCycles{};

  private:
    /**
     * Fast-forward warmup (CoreParams::warmupInstrs): run the prefix on
     * the internal oracle, training the branch predictor at every
     * control instruction, then hand over the architectural state and
     * the restart pc. Timing caches stay cold by design — warmup is an
     * architectural contract, not a microarchitectural one.
     */
    void applyWarmup();
    bool warmupApplied = false;

    std::size_t lastSqScanned = 0;
    SeqNum lastSquashBoundary = invalidSeqNum;
    Cycle lastCommitCycle = 0;
    CommitObserver commitObserver;
    std::uint64_t commitFaultSeen = 0;  ///< commitFaultAt progress counter
    std::uint64_t observerFaultSeen = 0;///< observerFaultAt progress counter

    /** True when commitOne must run the observer/fault-injection tap. */
    bool commitTap = false;

    // Loop-invariant values hoisted out of the fetch/execute paths.
    Addr progSize = 0;
    Addr progAddrMask = 0;
    std::size_t fetchQCap = 0;

    // Reused per-cycle scratch (doWritebackStage / squashAndRedirect).
    std::vector<std::pair<SeqNum, DynInst *>> wbScratch;
    std::vector<DynInst *> squashScratch;
};

} // namespace msp

#endif // MSPLIB_PIPELINE_CORE_BASE_HH
