/**
 * @file
 * Core configuration (Table I) and per-run results.
 */

#ifndef MSPLIB_PIPELINE_PARAMS_HH
#define MSPLIB_PIPELINE_PARAMS_HH

#include <array>
#include <cstdint>
#include <string>

#include "common/types.hh"

namespace msp {

/** Which microarchitecture a Machine instantiates. */
enum class CoreKind {
    Baseline,  ///< ROB-based out-of-order core
    Cpr,       ///< Checkpoint Processing and Recovery
    Msp,       ///< Multi-State Processor (the paper's contribution)
};

/** All knobs of a simulated core; defaults follow Table I. */
struct CoreParams
{
    CoreKind kind = CoreKind::Msp;

    // Pipeline widths (Table I: 3 | 3 | 5 | 3).
    unsigned fetchWidth = 3;
    unsigned renameWidth = 3;
    unsigned issueWidth = 5;
    unsigned retireWidth = 3;      ///< baseline only; CPR/MSP bulk-commit

    /** Fetch-to-rename depth in cycles (mispredict refill penalty). */
    unsigned frontendDepth = 5;

    // Capacities.
    unsigned iqSize = 128;         ///< 48 for the baseline
    unsigned robSize = 128;        ///< baseline only
    unsigned numIntPhys = 192;     ///< baseline: 96; flat-file cores only
    unsigned numFpPhys = 192;
    unsigned ldqSize = 48;
    unsigned sq1Size = 48;         ///< L1 store-queue entries
    unsigned sq2Size = 256;        ///< L2 store-queue entries
    bool infiniteSq = false;       ///< ideal MSP

    // Functional units (Table I: 4 int, 4 fp, 2 ld/st).
    unsigned intUnits = 4;
    unsigned fpUnits = 4;
    unsigned memUnits = 2;

    // ---- MSP-specific ----------------------------------------------------
    unsigned regsPerBank = 16;     ///< n of n-SP
    bool infiniteBanks = false;    ///< ideal MSP
    unsigned lcsLatency = 1;       ///< LCS propagation delay (0 for ideal)
    bool arbitration = true;       ///< banked RF port arbitration stage
    unsigned maxSameRegRenames = 2;///< same-logical-register renames/cycle
    unsigned maxRenameDests = 4;   ///< destination registers renamed/cycle

    // ---- CPR-specific ----------------------------------------------------
    unsigned numCheckpoints = 8;
    unsigned ckptInterval = 256;   ///< force a checkpoint after this many
    unsigned minCkptDist = 8;      ///< min instructions between checkpoints
    double sqScanPenaltyPerEntry = 0.125; ///< L2 SQ rollback scan cycles
    Cycle rollbackRestorePenalty = 6; ///< RAT copy + free-list repair

    // ---- misc -------------------------------------------------------------
    /**
     * Release load-buffer entries at execution rather than commit.
     * With conservative (violation-free) disambiguation a load entry
     * has no post-execution role; both large-window cores (CPR, MSP)
     * recycle it early, the ROB baseline holds it to retire.
     */
    bool ldqReleaseAtExec = true;

    bool oracleCheck = true;       ///< lock-step functional comparison
    Cycle recoveryPenalty = 2;     ///< extra cycles on any recovery

    /**
     * Fast-forward warmup: before the first timing cycle, execute this
     * many instructions architecturally (functional model), training the
     * branch predictor along the way, then hand the warmed architectural
     * state to the core and start timing at the handoff pc. Committed
     * counts, cycles and the commit-observer stream cover only the
     * post-warmup region. 0 disables warmup. Stops early (before the
     * HALT) if the program is shorter than the requested warmup.
     */
    std::uint64_t warmupInstrs = 0;
    std::uint64_t maxIntraStateId = 31; ///< 5-bit same-state ordering ids

    // ---- verification-only fault injection --------------------------------
    /**
     * When nonzero, flip the low bit of the result of the Nth committed
     * register-writing instruction. The corruption is applied *after*
     * the internal lock-step check, so it models a silent commit-path
     * bug that only an external differential oracle (src/verify/) can
     * observe. Test-only; must stay 0 in real runs.
     */
    std::uint64_t commitFaultAt = 0;

    /**
     * When nonzero, silently drop the commit-observer callback of the
     * Nth committed instruction. Models commit-path work that bypasses
     * the observer tap (the failure the differential oracle reports as
     * an "observer-count" divergence). Test-only; must stay 0 in real
     * runs.
     */
    std::uint64_t observerFaultAt = 0;
};

/** Statistics of one simulation run. */
struct RunResult
{
    std::string workload;
    std::string config;

    std::uint64_t cycles = 0;
    std::uint64_t committed = 0;       ///< correct-path committed
    std::uint64_t wrongPathExec = 0;   ///< executed, squashed as wrong-path
    std::uint64_t reExecuted = 0;      ///< correct-path work thrown away
    std::uint64_t totalExecuted = 0;   ///< every execution event
    std::uint64_t branches = 0;
    std::uint64_t mispredicts = 0;
    std::uint64_t recoveries = 0;
    std::uint64_t exceptions = 0;
    std::uint64_t renameStallCycles = 0;   ///< cycles rename fully blocked
    std::uint64_t regStallCycles = 0;      ///< blocked on registers
    std::uint64_t sqStallCycles = 0;       ///< blocked on store queue
    std::uint64_t iqStallCycles = 0;       ///< blocked on IQ
    std::uint64_t checkpointsTaken = 0;    ///< CPR
    std::uint64_t l2Misses = 0;

    /** MSP: rename-blocked cycles attributed to the stalling bank. */
    std::array<std::uint64_t, numLogRegs> bankStallCycles{};

    double
    ipc() const
    {
        return cycles == 0 ? 0.0
                           : static_cast<double>(committed) / cycles;
    }

    double
    mispredictRate() const
    {
        return branches == 0 ? 0.0
                             : static_cast<double>(mispredicts) / branches;
    }
};

} // namespace msp

#endif // MSPLIB_PIPELINE_PARAMS_HH
