/**
 * @file
 * Unified out-of-order instruction queue with explicit slot ids.
 *
 * Slot ids matter: the MSP RelIQ use-bit matrix is indexed by IQ slot,
 * exactly as in the paper (one bit of storage per physical register per
 * instruction-queue entry).
 *
 * The implementation is the structure-of-arrays WindowLanes: the
 * scheduler-scanned hot fields live in dense parallel lanes and
 * readiness is event-driven (see window_lanes.hh). This header keeps
 * the historical name for the pipeline's member and includes.
 */

#ifndef MSPLIB_PIPELINE_INST_QUEUE_HH
#define MSPLIB_PIPELINE_INST_QUEUE_HH

#include "pipeline/window_lanes.hh"

namespace msp {

using InstQueue = WindowLanes;

} // namespace msp

#endif // MSPLIB_PIPELINE_INST_QUEUE_HH
