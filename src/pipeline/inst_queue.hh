/**
 * @file
 * Unified out-of-order instruction queue with explicit slot ids.
 *
 * Slot ids matter: the MSP RelIQ use-bit matrix is indexed by IQ slot,
 * exactly as in the paper (one bit of storage per physical register per
 * instruction-queue entry).
 */

#ifndef MSPLIB_PIPELINE_INST_QUEUE_HH
#define MSPLIB_PIPELINE_INST_QUEUE_HH

#include <algorithm>
#include <vector>

#include "common/logging.hh"
#include "pipeline/dyninst.hh"

namespace msp {

/** Fixed-capacity instruction queue; entries leave at issue. */
class InstQueue
{
  public:
    explicit InstQueue(unsigned capacity) : slots(capacity, nullptr)
    {
        freeSlots.reserve(capacity);
        for (unsigned i = 0; i < capacity; ++i)
            freeSlots.push_back(capacity - 1 - i);
    }

    /** Remaining capacity. */
    unsigned freeCount() const { return freeSlots.size(); }

    bool full() const { return freeSlots.empty(); }

    /** Insert @p d; assigns and returns its slot id. */
    int
    insert(DynInst *d)
    {
        msp_assert(!freeSlots.empty(), "IQ overflow");
        int slot = static_cast<int>(freeSlots.back());
        freeSlots.pop_back();
        slots[slot] = d;
        d->iqSlot = slot;
        d->inIq = true;
        return slot;
    }

    /** Remove @p d (at issue or squash). */
    void
    remove(DynInst *d)
    {
        msp_assert(d->inIq && d->iqSlot >= 0, "IQ remove of absent inst");
        msp_assert(slots[d->iqSlot] == d, "IQ slot mismatch");
        slots[d->iqSlot] = nullptr;
        freeSlots.push_back(d->iqSlot);
        d->inIq = false;
        d->iqSlot = -1;
    }

    /**
     * Collect current occupants sorted oldest-first (for select).
     * The returned vector is reused between calls.
     */
    const std::vector<DynInst *> &
    occupantsBySeq()
    {
        scratch.clear();
        for (DynInst *d : slots)
            if (d)
                scratch.push_back(d);
        std::sort(scratch.begin(), scratch.end(),
                  [](const DynInst *a, const DynInst *b) {
                      return a->seq < b->seq;
                  });
        return scratch;
    }

    /** Total slots. */
    unsigned capacity() const { return slots.size(); }

  private:
    std::vector<DynInst *> slots;
    std::vector<unsigned> freeSlots;
    std::vector<DynInst *> scratch;
};

} // namespace msp

#endif // MSPLIB_PIPELINE_INST_QUEUE_HH
