/**
 * @file
 * Unified out-of-order instruction queue with explicit slot ids.
 *
 * Slot ids matter: the MSP RelIQ use-bit matrix is indexed by IQ slot,
 * exactly as in the paper (one bit of storage per physical register per
 * instruction-queue entry).
 */

#ifndef MSPLIB_PIPELINE_INST_QUEUE_HH
#define MSPLIB_PIPELINE_INST_QUEUE_HH

#include <vector>

#include "common/logging.hh"
#include "pipeline/dyninst.hh"

namespace msp {

/** Fixed-capacity instruction queue; entries leave at issue. */
class InstQueue
{
  public:
    explicit InstQueue(unsigned capacity) : slots(capacity, nullptr)
    {
        freeSlots.reserve(capacity);
        for (unsigned i = 0; i < capacity; ++i)
            freeSlots.push_back(capacity - 1 - i);
        order.reserve(2 * capacity);
        scratch.reserve(capacity);
    }

    /** Remaining capacity. */
    unsigned freeCount() const { return freeSlots.size(); }

    bool full() const { return freeSlots.empty(); }

    /** Insert @p d; assigns and returns its slot id. */
    int
    insert(DynInst *d)
    {
        msp_assert(!freeSlots.empty(), "IQ overflow");
        int slot = static_cast<int>(freeSlots.back());
        freeSlots.pop_back();
        slots[slot] = d;
        d->iqSlot = slot;
        d->inIq = true;
        // Rename inserts in seq order (seq is assigned at fetch and the
        // fetchQ is a FIFO), so the age list stays sorted by
        // construction — occupantsBySeq never needs a sort.
        msp_assert(order.empty() || !order.back() ||
                       order.back()->seq < d->seq,
                   "IQ insert out of age order");
        d->iqOrderIdx = static_cast<int>(order.size());
        order.push_back(d);
        return slot;
    }

    /** Remove @p d (at issue or squash). */
    void
    remove(DynInst *d)
    {
        msp_assert(d->inIq && d->iqSlot >= 0, "IQ remove of absent inst");
        msp_assert(slots[d->iqSlot] == d, "IQ slot mismatch");
        msp_assert(d->iqOrderIdx >= 0 &&
                       order[d->iqOrderIdx] == d, "IQ age-list mismatch");
        slots[d->iqSlot] = nullptr;
        freeSlots.push_back(d->iqSlot);
        order[d->iqOrderIdx] = nullptr;   // hole; compacted lazily
        d->inIq = false;
        d->iqSlot = -1;
        d->iqOrderIdx = -1;
    }

    /**
     * Collect current occupants sorted oldest-first (for select).
     * The returned vector is reused between calls.
     */
    const std::vector<DynInst *> &
    occupantsBySeq()
    {
        scratch.clear();
        for (DynInst *d : order)
            if (d)
                scratch.push_back(d);
        if (scratch.size() != order.size()) {
            // Compact the holes out so the age list stays bounded.
            order = scratch;
            for (std::size_t i = 0; i < order.size(); ++i)
                order[i]->iqOrderIdx = static_cast<int>(i);
        }
        return scratch;
    }

    /** Total slots. */
    unsigned capacity() const { return slots.size(); }

  private:
    std::vector<DynInst *> slots;
    std::vector<unsigned> freeSlots;

    /** Occupants oldest-first, with nullptr holes where entries left. */
    std::vector<DynInst *> order;
    std::vector<DynInst *> scratch;
};

} // namespace msp

#endif // MSPLIB_PIPELINE_INST_QUEUE_HH
