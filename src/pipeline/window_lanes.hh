/**
 * @file
 * WindowLanes — structure-of-arrays hot state of the instruction queue.
 *
 * The issue stage used to re-poll every IQ occupant's operand readiness
 * through a virtual call and two pointer-chased register-file lookups,
 * every cycle; the profile showed that polling loop (doIssueStage +
 * operandsReady) costing about half of the whole simulation. This class
 * splits the scheduler-scanned fields out of DynInst (the cold record,
 * which stays in the DynInstPool arena) into dense parallel lanes
 * indexed by IQ slot id:
 *
 *   - a ready bitvector (one bit per slot) the select loop scans,
 *   - a pending-source counter driving event-driven wakeup,
 *   - a generation counter guarding against stale wakeups on slot reuse,
 *   - seq / source-tag / FU-class lanes for asserts and diagnostics,
 *   - the age-ordered slot list (sorted by construction, holes
 *     compacted lazily) that fixes select priority.
 *
 * Readiness becomes *event-driven*: a slot's pending count is set once
 * at insert (counting distinct not-yet-ready source tags) and
 * decremented by wakeSrc() when a producer writes back. This is
 * cycle-exact with the old polling because of two structural facts:
 * (1) the cycle order is commit -> writeback -> issue -> rename, so a
 * value written in cycle T is visible to the poll in cycle T exactly
 * when the wakeup also lands in T; and (2) no core ever un-readies a
 * physical register while a consumer is live in the IQ (registers are
 * only reallocated after their last IQ consumer issued or squashed), so
 * ready can never regress between insert and issue.
 *
 * Slot ids are stable while an instruction waits, which is what lets
 * the MSP RelIQ use-bit rows double as the wakeup CAM: the bits the
 * paper already stores per (physical register, IQ slot) are exactly
 * the consumers to wake when the entry's value arrives.
 */

#ifndef MSPLIB_PIPELINE_WINDOW_LANES_HH
#define MSPLIB_PIPELINE_WINDOW_LANES_HH

#include <cstdint>
#include <vector>

#include "common/logging.hh"
#include "pipeline/dyninst.hh"

namespace msp {

/** SoA instruction-queue window: hot lanes + age-ordered ready select. */
class WindowLanes
{
  public:
    explicit WindowLanes(unsigned capacity)
        : cap(capacity), orderLimit(2 * capacity)
    {
        inst.assign(capacity, nullptr);
        seqLane.assign(capacity, invalidSeqNum);
        src1Lane.assign(capacity, noReg);
        src2Lane.assign(capacity, noReg);
        fuLane.assign(capacity, 0);
        pendingLane.assign(capacity, 0);
        genLane.assign(capacity, 0);
        readyWords.assign((capacity + 63) / 64, 0);
        freeSlots.reserve(capacity);
        for (unsigned i = 0; i < capacity; ++i)
            freeSlots.push_back(capacity - 1 - i);
        order.reserve(orderLimit + 1);
    }

    /** Remaining capacity. */
    unsigned freeCount() const { return freeSlots.size(); }

    bool full() const { return freeSlots.empty(); }

    /** Total slots. */
    unsigned capacity() const { return cap; }

    /** Any slot ready? (cheap per-cycle early-out for the select loop) */
    bool anyReady() const { return readyCount != 0; }

    /** Insert @p d; assigns and returns its slot id. Pending sources
     *  are not known yet — the core calls setPending() after rename. */
    int
    insert(DynInst *d)
    {
        msp_assert(!freeSlots.empty(), "IQ overflow");
        const int slot = static_cast<int>(freeSlots.back());
        freeSlots.pop_back();
        inst[slot] = d;
        seqLane[slot] = d->seq;
        d->iqSlot = slot;
        d->inIq = true;
        // Rename inserts in seq order (seq is assigned at fetch and the
        // fetchQ is a FIFO), so the age list stays sorted by
        // construction. Squashes only remove younger entries, so the
        // last live element is always older than a new insert.
        msp_assert(order.empty() || order.back() < 0 ||
                       seqLane[order.back()] < d->seq,
                   "IQ insert out of age order");
        if (order.size() >= orderLimit)
            compact();
        d->iqOrderIdx = static_cast<int>(order.size());
        order.push_back(slot);
        ++liveCount;
        return slot;
    }

    /** Record the hot source/FU lanes once rename assigned the tags. */
    void
    fillTags(int slot, PhysReg src1, PhysReg src2, unsigned char fu)
    {
        src1Lane[slot] = src1;
        src2Lane[slot] = src2;
        fuLane[slot] = fu;
    }

    /**
     * Set the wakeup counter: @p n distinct source tags not yet ready.
     * Zero marks the slot ready for select immediately.
     */
    void
    setPending(int slot, unsigned n)
    {
        pendingLane[slot] = static_cast<std::uint8_t>(n);
        if (n == 0)
            markReady(slot);
    }

    /** A producer of one of @p slot's pending sources wrote back. */
    void
    wakeSrc(int slot)
    {
        msp_assert(inst[slot] != nullptr, "wake of empty IQ slot %d", slot);
        msp_assert(pendingLane[slot] > 0,
                   "wake underflow on IQ slot %d", slot);
        if (--pendingLane[slot] == 0)
            markReady(slot);
    }

    /**
     * Generation-checked wakeup for subscription-based wakers
     * (baseline/CPR register waiter lists): ignores the wake when the
     * slot was reused since the subscription was taken.
     */
    void
    wakeSrcIfCurrent(int slot, std::uint32_t gen)
    {
        if (inst[slot] != nullptr && genLane[slot] == gen)
            wakeSrc(slot);
    }

    /** Generation of the current occupancy (captured by subscribers). */
    std::uint32_t generation(int slot) const { return genLane[slot]; }

    bool
    ready(int slot) const
    {
        return readyWords[slot >> 6] >> (slot & 63) & 1;
    }

    /** Pending distinct unready sources (tests/diagnostics). */
    unsigned pendingOf(int slot) const { return pendingLane[slot]; }

    DynInst *at(int slot) const { return inst[slot]; }

    SeqNum seqOf(int slot) const { return seqLane[slot]; }
    PhysReg src1Of(int slot) const { return src1Lane[slot]; }
    PhysReg src2Of(int slot) const { return src2Lane[slot]; }
    unsigned char fuOf(int slot) const { return fuLane[slot]; }

    /** Remove @p d (at issue or squash). */
    void
    remove(DynInst *d)
    {
        msp_assert(d->inIq && d->iqSlot >= 0, "IQ remove of absent inst");
        const int slot = d->iqSlot;
        msp_assert(inst[slot] == d, "IQ slot mismatch");
        msp_assert(d->iqOrderIdx >= 0 && order[d->iqOrderIdx] == slot,
                   "IQ age-list mismatch");
        if (ready(slot)) {
            readyWords[slot >> 6] &= ~(std::uint64_t{1} << (slot & 63));
            --readyCount;
        }
        inst[slot] = nullptr;
        seqLane[slot] = invalidSeqNum;
        src1Lane[slot] = noReg;
        src2Lane[slot] = noReg;
        pendingLane[slot] = 0;
        ++genLane[slot];   // invalidate outstanding subscriptions
        freeSlots.push_back(slot);
        order[d->iqOrderIdx] = -1;   // hole; compacted lazily
        --liveCount;
        d->inIq = false;
        d->iqSlot = -1;
        d->iqOrderIdx = -1;
    }

    /**
     * Age-ordered slot list for the select scan: oldest first, holes
     * are -1. Bounded at twice the capacity by lazy compaction.
     */
    const std::vector<std::int32_t> &ageOrder() const { return order; }

  private:
    void
    markReady(int slot)
    {
        std::uint64_t &w = readyWords[slot >> 6];
        const std::uint64_t bit = std::uint64_t{1} << (slot & 63);
        msp_assert(!(w & bit), "slot %d marked ready twice", slot);
        w |= bit;
        ++readyCount;
    }

    void
    compact()
    {
        std::size_t out = 0;
        for (std::size_t i = 0; i < order.size(); ++i) {
            if (order[i] < 0)
                continue;
            order[out] = order[i];
            inst[order[out]]->iqOrderIdx = static_cast<int>(out);
            ++out;
        }
        order.resize(out);
    }

    unsigned cap;
    std::size_t orderLimit;

    // Hot lanes, indexed by slot id.
    std::vector<DynInst *> inst;
    std::vector<SeqNum> seqLane;
    std::vector<PhysReg> src1Lane;
    std::vector<PhysReg> src2Lane;
    std::vector<std::uint8_t> fuLane;
    std::vector<std::uint8_t> pendingLane;
    std::vector<std::uint32_t> genLane;
    std::vector<std::uint64_t> readyWords;
    unsigned readyCount = 0;
    unsigned liveCount = 0;

    std::vector<unsigned> freeSlots;

    /** Live slots oldest-first, with -1 holes where entries left. */
    std::vector<std::int32_t> order;
};

/**
 * Per-physical-register wakeup subscription lists for the flat-file
 * cores (baseline/CPR). MSP needs none of this: its RelIQ use-bit rows
 * already record exactly the consumers to wake.
 *
 * Subscriptions are only ever *appended* (at rename, for each source
 * tag not yet ready) and *drained* (when the producer writes back);
 * consumers that left the IQ in between are skipped by the generation
 * check. Lists of squashed producers persist until the register is
 * reallocated and written again, where the drain discards them — so
 * memory stays bounded without any removal path.
 */
class RegWaiters
{
  public:
    void init(std::size_t numPhys) { lists.assign(numPhys, {}); }

    void
    watch(PhysReg p, int slot, std::uint32_t gen)
    {
        lists[p].push_back(Sub{slot, gen});
    }

    void
    drain(PhysReg p, WindowLanes &iq)
    {
        auto &l = lists[p];
        for (const Sub &s : l)
            iq.wakeSrcIfCurrent(s.slot, s.gen);
        l.clear();
    }

  private:
    struct Sub
    {
        std::int32_t slot;
        std::uint32_t gen;
    };
    std::vector<std::vector<Sub>> lists;
};

} // namespace msp

#endif // MSPLIB_PIPELINE_WINDOW_LANES_HH
