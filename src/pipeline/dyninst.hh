/**
 * @file
 * DynInst — the in-flight record of one fetched instruction.
 *
 * One struct serves all three cores; the rename fields are interpreted
 * per-core (flat physical index for baseline/CPR, bank:entry for MSP).
 */

#ifndef MSPLIB_PIPELINE_DYNINST_HH
#define MSPLIB_PIPELINE_DYNINST_HH

#include <cstdint>

#include "bpred/branch_unit.hh"
#include "common/types.hh"
#include "isa/instruction.hh"

namespace msp {

/** Encoded physical register id; -1 when absent. */
using PhysReg = std::int32_t;
constexpr PhysReg noReg = -1;

/** Per-source rename bookkeeping. */
struct SrcInfo
{
    PhysReg phys = noReg;
    bool useBitSet = false;   ///< MSP: RelIQ bit currently set
};

/** An in-flight dynamic instruction. */
struct DynInst
{
    SeqNum seq = invalidSeqNum;
    Addr pc = 0;
    Instruction si;

    // ---- fetch / prediction ----------------------------------------------
    Cycle renameReadyAt = 0;   ///< earliest cycle it may rename
    bool isControl = false;
    bool predTaken = false;
    Addr predNextPc = 0;
    bool lowConfidence = false;
    bool forcedOutcome = false; ///< CPR override: originally mispredicted
    BpSnapshot bpSnap;

    // ---- rename ------------------------------------------------------------
    SrcInfo src1, src2;
    PhysReg dstPhys = noReg;
    PhysReg oldDstPhys = noReg;     ///< superseded mapping (baseline/CPR)
    int iqSlot = -1;
    int iqOrderIdx = -1;            ///< position in the IQ age list

    // MSP state management.
    std::uint32_t stateId = 0;
    std::uint32_t intraId = 0;
    bool createsState = false;
    std::int32_t ownerBank = -1;    ///< bank of the state-owning SCT entry
    std::int32_t ownerIdx = -1;     ///< entry index of the owner

    // CPR.
    int ckptId = -1;

    // ---- status -------------------------------------------------------------
    bool inIq = false;
    bool issued = false;
    bool executed = false;
    bool squashed = false;
    bool ldqReleased = false;   ///< CPR: load-buffer entry freed early
    Cycle execDoneAt = 0;

    // ---- values -------------------------------------------------------------
    std::uint64_t srcVal1 = 0;
    std::uint64_t srcVal2 = 0;
    std::uint64_t result = 0;

    // ---- memory -------------------------------------------------------------
    Addr effAddr = invalidAddr;
    std::uint64_t storeData = 0;
    int sqIndex = -1;               ///< store-queue handle (stores)

    // ---- control resolution ---------------------------------------------------
    bool taken = false;
    Addr actualNextPc = 0;
    bool mispredicted = false;

    const OpInfo &info() const { return si.info(); }
    bool isLoad() const { return info().isLoad; }
    bool isStore() const { return info().isStore; }
    bool isBranch() const { return info().isCondBranch; }
    bool isHalt() const { return info().isHalt; }
    bool isTrap() const { return info().isTrap; }

    /** Instructions that occupy an IQ entry and execute on an FU. */
    bool
    needsExecution() const
    {
        return info().fu != FuClass::None;
    }
};

} // namespace msp

#endif // MSPLIB_PIPELINE_DYNINST_HH
