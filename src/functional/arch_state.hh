/**
 * @file
 * Architectural state: logical registers plus data memory.
 */

#ifndef MSPLIB_FUNCTIONAL_ARCH_STATE_HH
#define MSPLIB_FUNCTIONAL_ARCH_STATE_HH

#include <cstdint>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"
#include "isa/program.hh"

namespace msp {

/**
 * The architectural register file and memory of a running program.
 *
 * Register words are raw 64-bit values; fp registers hold IEEE doubles
 * reinterpreted as bits. Memory is word-granular (8 bytes).
 */
class ArchState
{
  public:
    /** Initialize from a program image (zero registers, load initData). */
    explicit ArchState(const Program &prog)
        : intRegs(numIntRegs, 0), fpRegs(numFpRegs, 0),
          mem(prog.memWords, 0), mask(prog.addrMask())
    {
        for (std::size_t i = 0; i < prog.initData.size(); ++i)
            mem[i] = prog.initData[i];
    }

    /** Read integer register @p r (r0 reads as zero). */
    std::uint64_t
    readInt(int r) const
    {
        msp_assert(r >= 0 && r < numIntRegs, "int reg %d out of range", r);
        return r == 0 ? 0 : intRegs[r];
    }

    /** Write integer register @p r (writes to r0 are discarded). */
    void
    writeInt(int r, std::uint64_t v)
    {
        msp_assert(r >= 0 && r < numIntRegs, "int reg %d out of range", r);
        if (r != 0)
            intRegs[r] = v;
    }

    /** Read fp register @p r as raw bits. */
    std::uint64_t
    readFp(int r) const
    {
        msp_assert(r >= 0 && r < numFpRegs, "fp reg %d out of range", r);
        return fpRegs[r];
    }

    /** Write fp register @p r with raw bits. */
    void
    writeFp(int r, std::uint64_t v)
    {
        msp_assert(r >= 0 && r < numFpRegs, "fp reg %d out of range", r);
        fpRegs[r] = v;
    }

    /** Read a register by class. */
    std::uint64_t
    read(RegClass cls, int r) const
    {
        return cls == RegClass::Fp ? readFp(r) : readInt(r);
    }

    /** Write a register by class. */
    void
    write(RegClass cls, int r, std::uint64_t v)
    {
        if (cls == RegClass::Fp)
            writeFp(r, v);
        else
            writeInt(r, v);
    }

    /** Load the word at byte address @p a (already masked/aligned). */
    std::uint64_t
    load(Addr a) const
    {
        return mem[(a & mask) / wordBytes];
    }

    /** Store the word at byte address @p a. */
    void
    store(Addr a, std::uint64_t v)
    {
        mem[(a & mask) / wordBytes] = v;
    }

    /** Address mask of the owning program. */
    Addr addrMask() const { return mask; }

    bool
    operator==(const ArchState &o) const
    {
        return intRegs == o.intRegs && fpRegs == o.fpRegs && mem == o.mem;
    }

  private:
    std::vector<std::uint64_t> intRegs;
    std::vector<std::uint64_t> fpRegs;
    std::vector<std::uint64_t> mem;
    Addr mask;
};

} // namespace msp

#endif // MSPLIB_FUNCTIONAL_ARCH_STATE_HH
