/**
 * @file
 * Fast-forward warmup helpers.
 *
 * Warmup executes a prefix of the program on the functional model only,
 * then hands the architectural state to a timing core (see
 * CoreParams::warmupInstrs). Both the cores and the differential
 * verifier must agree *exactly* on where the handoff lands, so the
 * stepping rule lives here and nowhere else: stop after the requested
 * instruction count, or just before the HALT, whichever comes first.
 * Stopping before (not on) the HALT keeps the committed-instruction
 * stream non-empty — the timing run always retires at least the HALT,
 * and a run's reported state is always the core's own commit path.
 */

#ifndef MSPLIB_FUNCTIONAL_WARMUP_HH
#define MSPLIB_FUNCTIONAL_WARMUP_HH

#include <cstdint>

#include "functional/executor.hh"
#include "isa/program.hh"

namespace msp {

/** True while @p ex may take another warmup step (next inst not HALT). */
inline bool
warmupCanStep(const FunctionalExecutor &ex, const Program &prog)
{
    return !ex.halted() &&
           !prog.at(ex.pc() % prog.size()).info().isHalt;
}

/**
 * Architecturally execute up to @p n instructions of @p prog on @p ex,
 * stopping early just before a HALT.
 * @return Number of instructions actually stepped.
 */
inline std::uint64_t
fastForward(FunctionalExecutor &ex, const Program &prog, std::uint64_t n)
{
    std::uint64_t done = 0;
    while (done < n && warmupCanStep(ex, prog)) {
        ex.step();
        ++done;
    }
    return done;
}

} // namespace msp

#endif // MSPLIB_FUNCTIONAL_WARMUP_HH
