#include "functional/semantics.hh"

#include <cmath>
#include <limits>

#include "common/logging.hh"

namespace msp {
namespace semantics {

std::uint64_t
aluResult(const Instruction &in, std::uint64_t a, std::uint64_t b, Addr pc)
{
    using U = std::uint64_t;
    using S = std::int64_t;
    const U imm = static_cast<U>(in.imm);

    switch (in.op) {
      case Opcode::ADD:  return a + b;
      case Opcode::SUB:  return a - b;
      case Opcode::MUL:  return a * b;
      case Opcode::DIV:  return b == 0 ? ~U{0} : a / b;
      case Opcode::AND:  return a & b;
      case Opcode::OR:   return a | b;
      case Opcode::XOR:  return a ^ b;
      case Opcode::SLL:  return a << (b & 63);
      case Opcode::SRL:  return a >> (b & 63);
      case Opcode::SLT:  return static_cast<S>(a) < static_cast<S>(b);
      case Opcode::ADDI: return a + imm;
      case Opcode::ANDI: return a & imm;
      case Opcode::ORI:  return a | imm;
      case Opcode::XORI: return a ^ imm;
      case Opcode::SLLI: return a << (imm & 63);
      case Opcode::SRLI: return a >> (imm & 63);
      case Opcode::SLTI: return static_cast<S>(a) < in.imm;
      case Opcode::LI:   return imm;
      case Opcode::MOV:  return a;
      case Opcode::JAL:  return pc + 1;

      case Opcode::FADD: return asBits(asDouble(a) + asDouble(b));
      case Opcode::FSUB: return asBits(asDouble(a) - asDouble(b));
      case Opcode::FMUL: return asBits(asDouble(a) * asDouble(b));
      case Opcode::FDIV:
        return asBits(asDouble(b) == 0.0 ? 0.0 : asDouble(a) / asDouble(b));
      case Opcode::FMOV: return a;
      case Opcode::FNEG: return asBits(-asDouble(a));
      case Opcode::FITOF:
        return asBits(static_cast<double>(static_cast<S>(a)));
      case Opcode::FFTOI: {
        // Saturating conversion: a plain static_cast is undefined
        // behaviour for NaN and out-of-range doubles, which randomly
        // generated fp values (fuzzer, wrong-path garbage) do produce.
        const double d = asDouble(a);
        if (std::isnan(d))
            return 0;
        if (d >= 9223372036854775808.0)            // 2^63
            return static_cast<U>(std::numeric_limits<S>::max());
        if (d < -9223372036854775808.0)
            return static_cast<U>(std::numeric_limits<S>::min());
        return static_cast<U>(static_cast<S>(d));
      }
      case Opcode::FCMPLT:
        return asDouble(a) < asDouble(b) ? 1 : 0;

      default:
        msp_panic("aluResult on non-ALU opcode %s", opName(in.op));
    }
}

bool
branchTaken(const Instruction &in, std::uint64_t a, std::uint64_t b)
{
    using S = std::int64_t;
    switch (in.op) {
      case Opcode::BEQ: return a == b;
      case Opcode::BNE: return a != b;
      case Opcode::BLT: return static_cast<S>(a) < static_cast<S>(b);
      case Opcode::BGE: return static_cast<S>(a) >= static_cast<S>(b);
      default:
        msp_panic("branchTaken on non-branch opcode %s", opName(in.op));
    }
}

Addr
controlTarget(const Instruction &in, std::uint64_t a, bool taken, Addr pc)
{
    const OpInfo &oi = in.info();
    if (oi.isCondBranch)
        return taken ? in.target() : pc + 1;
    if (oi.isUncondDirect)
        return in.target();
    if (oi.isIndirect)
        return a;
    msp_panic("controlTarget on non-control opcode %s", opName(in.op));
}

} // namespace semantics
} // namespace msp
