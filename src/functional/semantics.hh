/**
 * @file
 * Pure-function instruction semantics.
 *
 * Both the functional (oracle) executor and the out-of-order cores'
 * execute stages call these helpers, guaranteeing that speculative
 * execution and the commit-time oracle can never disagree about what an
 * operation computes.
 */

#ifndef MSPLIB_FUNCTIONAL_SEMANTICS_HH
#define MSPLIB_FUNCTIONAL_SEMANTICS_HH

#include <bit>
#include <cstdint>

#include "common/types.hh"
#include "isa/instruction.hh"

namespace msp {
namespace semantics {

/** Reinterpret a register word as a double. */
inline double
asDouble(std::uint64_t bits)
{
    return std::bit_cast<double>(bits);
}

/** Reinterpret a double as a register word. */
inline std::uint64_t
asBits(double v)
{
    return std::bit_cast<std::uint64_t>(v);
}

/**
 * Compute the result of a register-writing, non-memory operation.
 *
 * @param in   Static instruction (for opcode and immediate).
 * @param a    Value of source 1 (register word).
 * @param b    Value of source 2 (register word).
 * @param pc   The instruction's own pc (JAL writes pc + 1).
 * @return The destination register word.
 */
std::uint64_t aluResult(const Instruction &in, std::uint64_t a,
                        std::uint64_t b, Addr pc);

/**
 * Conditional-branch direction.
 *
 * @param in Static instruction; must be a conditional branch.
 */
bool branchTaken(const Instruction &in, std::uint64_t a, std::uint64_t b);

/**
 * Effective byte address of a load or store, masked into data memory
 * and aligned to the 8-byte word size.
 *
 * @param base Value of the base register.
 * @param in   Static instruction (for the offset immediate).
 * @param mask Program::addrMask() of the running program.
 */
inline Addr
effectiveAddr(const Instruction &in, std::uint64_t base, Addr mask)
{
    return (base + static_cast<std::uint64_t>(in.imm)) & mask & ~Addr{7};
}

/**
 * Resolved target of any control transfer.
 *
 * @param in  The control instruction.
 * @param a   Value of rs1 (used by indirect jumps).
 * @param taken Direction for conditional branches.
 * @return The next pc.
 */
Addr controlTarget(const Instruction &in, std::uint64_t a, bool taken,
                   Addr pc);

} // namespace semantics
} // namespace msp

#endif // MSPLIB_FUNCTIONAL_SEMANTICS_HH
