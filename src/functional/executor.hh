/**
 * @file
 * Functional (1-instruction-per-step) executor.
 *
 * Serves three roles: the reference model for ISA tests, the commit-time
 * oracle that every out-of-order core is checked against, and a fast way
 * to profile workload characteristics (branch/load mix etc.).
 */

#ifndef MSPLIB_FUNCTIONAL_EXECUTOR_HH
#define MSPLIB_FUNCTIONAL_EXECUTOR_HH

#include <cstdint>
#include <optional>

#include "functional/arch_state.hh"
#include "isa/program.hh"

namespace msp {

/** Everything one functional step produced (for oracle comparison). */
struct StepResult
{
    Addr pc = 0;                ///< pc of the executed instruction
    Addr nextPc = 0;            ///< pc after the instruction
    bool wroteReg = false;      ///< destination register was written
    std::uint64_t value = 0;    ///< destination value (if wroteReg)
    bool isStore = false;
    bool isLoad = false;
    Addr memAddr = 0;           ///< effective address (loads/stores)
    std::uint64_t storeValue = 0;
    bool taken = false;         ///< branch direction (control only)
    bool trapped = false;       ///< instruction raised an exception
    bool halted = false;
};

/** Steps a program one instruction at a time over an ArchState. */
class FunctionalExecutor
{
  public:
    explicit FunctionalExecutor(const Program &prog)
        : program(&prog), archState(prog), curPc(prog.entry)
    {}

    /** The executor keeps a reference: temporaries are rejected. */
    explicit FunctionalExecutor(Program &&) = delete;

    /**
     * Execute one instruction.
     *
     * TRAP is architecturally defined to be a no-op that raises a precise
     * exception: the reported handler behaviour is "skip and continue",
     * so the functional model simply steps past it with trapped=true.
     */
    StepResult step();

    /** Run up to @p maxInsts instructions or until HALT. */
    std::uint64_t run(std::uint64_t maxInsts);

    /** Current pc. */
    Addr pc() const { return curPc; }

    /** True once a HALT has been executed. */
    bool halted() const { return isHalted; }

    /** Architectural state (for inspection and oracle comparison). */
    ArchState &state() { return archState; }
    const ArchState &state() const { return archState; }

    /** Number of instructions executed so far. */
    std::uint64_t instCount() const { return numInsts; }

  private:
    const Program *program;
    ArchState archState;
    Addr curPc;
    bool isHalted = false;
    std::uint64_t numInsts = 0;
};

} // namespace msp

#endif // MSPLIB_FUNCTIONAL_EXECUTOR_HH
