#include "functional/executor.hh"

#include "common/logging.hh"
#include "functional/semantics.hh"

namespace msp {

StepResult
FunctionalExecutor::step()
{
    msp_assert(!isHalted, "step() after HALT");

    const Instruction &in = program->at(curPc);
    const OpInfo &oi = in.info();
    StepResult res;
    res.pc = curPc;
    res.nextPc = curPc + 1;

    const std::uint64_t a =
        oi.src1 == RegClass::None ? 0 : archState.read(oi.src1, in.rs1);
    const std::uint64_t b =
        oi.src2 == RegClass::None ? 0 : archState.read(oi.src2, in.rs2);

    if (oi.isHalt) {
        isHalted = true;
        res.halted = true;
    } else if (oi.isTrap) {
        res.trapped = true;
    } else if (oi.isLoad) {
        res.isLoad = true;
        res.memAddr = semantics::effectiveAddr(in, a, archState.addrMask());
        res.value = archState.load(res.memAddr);
        res.wroteReg = in.writesReg();
        if (res.wroteReg)
            archState.write(oi.dst, in.rd, res.value);
    } else if (oi.isStore) {
        res.isStore = true;
        res.memAddr = semantics::effectiveAddr(in, a, archState.addrMask());
        res.storeValue = b;
        archState.store(res.memAddr, b);
    } else if (oi.isCondBranch) {
        res.taken = semantics::branchTaken(in, a, b);
        res.nextPc = semantics::controlTarget(in, a, res.taken, curPc);
    } else if (oi.isControl()) {
        res.taken = true;
        res.nextPc = semantics::controlTarget(in, a, true, curPc);
        if (in.writesReg()) {
            res.wroteReg = true;
            res.value = semantics::aluResult(in, a, b, curPc);
            archState.write(oi.dst, in.rd, res.value);
        }
    } else if (in.op == Opcode::NOP) {
        // nothing
    } else {
        msp_assert(oi.dst != RegClass::None, "unclassified opcode %s",
                   opName(in.op));
        res.value = semantics::aluResult(in, a, b, curPc);
        res.wroteReg = in.writesReg();
        if (res.wroteReg)
            archState.write(oi.dst, in.rd, res.value);
    }

    curPc = res.nextPc;
    ++numInsts;
    return res;
}

std::uint64_t
FunctionalExecutor::run(std::uint64_t maxInsts)
{
    std::uint64_t n = 0;
    while (n < maxInsts && !isHalted) {
        step();
        ++n;
    }
    return n;
}

} // namespace msp
