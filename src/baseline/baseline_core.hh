/**
 * @file
 * BaselineCore — the paper's "reasonably standard out-of-order,
 * single-thread superscalar processor": 128-entry ROB, RAT + free-list
 * renaming, precise branch recovery via shadow maps, in-order retire
 * of up to 3 instructions per cycle, 96+96 physical registers.
 */

#ifndef MSPLIB_BASELINE_BASELINE_CORE_HH
#define MSPLIB_BASELINE_BASELINE_CORE_HH

#include <array>
#include <vector>

#include "pipeline/core_base.hh"

namespace msp {

/** ROB-based reference core. */
class BaselineCore : public CoreBase
{
  public:
    BaselineCore(const CoreParams &params, const Program &program,
                 PredictorKind predictor, StatGroup &stats);

  protected:
    bool canRename(const DynInst &d) override;
    void renameOne(DynInst &d) override;
    bool operandsReady(const DynInst &d) const override;
    void initWakeup(DynInst &d) override;
    void readOperands(DynInst &d) override;
    bool writebackDest(DynInst &d) override;
    void doCommit() override;
    void recoverBranch(DynInst &branch) override;
    void onSquashInst(DynInst &d) override;
    void onCommitted(DynInst &d) override;
    bool windowHasRoom() const override;
    void warmArchState(const ArchState &warm) override;

  private:
    bool dstIsFp(const DynInst &d) const;
    void freeReg(PhysReg p);

    std::vector<std::uint64_t> regVal;
    std::vector<std::uint8_t> regReady;
    std::array<PhysReg, numLogRegs> rat{};
    std::vector<PhysReg> freeInt;
    std::vector<PhysReg> freeFp;
    RegWaiters waiters;   ///< per-physreg IQ wakeup subscriptions
};

} // namespace msp

#endif // MSPLIB_BASELINE_BASELINE_CORE_HH
