#include "baseline/baseline_core.hh"

#include "common/logging.hh"

namespace msp {

BaselineCore::BaselineCore(const CoreParams &p, const Program &program,
                           PredictorKind predictor, StatGroup &statGroup)
    : CoreBase(p, program, predictor, statGroup)
{
    msp_assert(p.numIntPhys > numIntRegs && p.numFpPhys > numFpRegs,
               "physical register files too small for the RAT");
    const unsigned total = p.numIntPhys + p.numFpPhys;
    regVal.assign(total, 0);
    regReady.assign(total, 0);

    for (int i = 0; i < numIntRegs; ++i) {
        rat[i] = i;
        regReady[i] = 1;
    }
    for (int i = 0; i < numFpRegs; ++i) {
        rat[numIntRegs + i] = p.numIntPhys + i;
        regReady[p.numIntPhys + i] = 1;
    }
    for (unsigned i = numIntRegs; i < p.numIntPhys; ++i)
        freeInt.push_back(i);
    for (unsigned i = p.numIntPhys + numFpRegs; i < total; ++i)
        freeFp.push_back(i);
    waiters.init(total);
}

bool
BaselineCore::dstIsFp(const DynInst &d) const
{
    return d.info().dst == RegClass::Fp;
}

void
BaselineCore::freeReg(PhysReg p)
{
    msp_assert(p != noReg, "freeing noReg");
    if (p < static_cast<PhysReg>(params.numIntPhys))
        freeInt.push_back(p);
    else
        freeFp.push_back(p);
}

bool
BaselineCore::windowHasRoom() const
{
    return window.size() < params.robSize;
}

void
BaselineCore::warmArchState(const ArchState &warm)
{
    // Reset-state RAT: every logical register maps to a ready physical
    // register; the warmed value lands straight in it.
    for (int r = 0; r < numIntRegs; ++r)
        regVal[rat[r]] = warm.readInt(r);
    for (int r = 0; r < numFpRegs; ++r)
        regVal[rat[numIntRegs + r]] = warm.readFp(r);
}

bool
BaselineCore::canRename(const DynInst &d)
{
    if (!d.si.writesReg())
        return true;
    const auto &pool = dstIsFp(d) ? freeFp : freeInt;
    if (pool.empty()) {
        stallReason = StallReason::Registers;
        return false;
    }
    return true;
}

void
BaselineCore::renameOne(DynInst &d)
{
    auto takeSrc = [&](int unified, SrcInfo &src) {
        if (unified >= 0)
            src.phys = rat[unified];
    };
    takeSrc(d.si.src1Unified(), d.src1);
    takeSrc(d.si.src2Unified(), d.src2);

    if (d.si.writesReg()) {
        auto &pool = dstIsFp(d) ? freeFp : freeInt;
        const PhysReg p = pool.back();
        pool.pop_back();
        const int u = d.si.dstUnified();
        d.oldDstPhys = rat[u];
        d.dstPhys = p;
        rat[u] = p;
        regReady[p] = 0;
    }
}

bool
BaselineCore::operandsReady(const DynInst &d) const
{
    auto rdy = [&](const SrcInfo &s) {
        return s.phys == noReg || regReady[s.phys];
    };
    return rdy(d.src1) && rdy(d.src2);
}

void
BaselineCore::initWakeup(DynInst &d)
{
    // Count distinct not-yet-ready source tags and subscribe each to
    // its producer's writeback. Readiness never regresses for a live
    // consumer (a physical register is only recycled after its last IQ
    // consumer left), so insert-time state plus wakeups is exact.
    const std::uint32_t gen = iq.generation(d.iqSlot);
    unsigned pending = 0;
    if (d.src1.phys != noReg && !regReady[d.src1.phys]) {
        waiters.watch(d.src1.phys, d.iqSlot, gen);
        ++pending;
    }
    if (d.src2.phys != noReg && d.src2.phys != d.src1.phys &&
        !regReady[d.src2.phys]) {
        waiters.watch(d.src2.phys, d.iqSlot, gen);
        ++pending;
    }
    iq.setPending(d.iqSlot, pending);
}

void
BaselineCore::readOperands(DynInst &d)
{
    d.srcVal1 = d.src1.phys == noReg ? 0 : regVal[d.src1.phys];
    d.srcVal2 = d.src2.phys == noReg ? 0 : regVal[d.src2.phys];
}

bool
BaselineCore::writebackDest(DynInst &d)
{
    regVal[d.dstPhys] = d.result;
    regReady[d.dstPhys] = 1;
    waiters.drain(d.dstPhys, iq);
    return true;
}

void
BaselineCore::doCommit()
{
    for (unsigned n = 0; n < params.retireWidth && !window.empty(); ++n) {
        DynInst &h = *window.front();
        if (!h.executed || h.squashed)
            break;
        if (h.isTrap()) {
            takeException();
            break;
        }
        commitOne();
        if (haltCommitted)
            break;
    }
}

void
BaselineCore::onCommitted(DynInst &d)
{
    // Classic ROB freeing: the superseded mapping dies at retire.
    if (d.oldDstPhys != noReg)
        freeReg(d.oldDstPhys);
}

void
BaselineCore::recoverBranch(DynInst &branch)
{
    // Shadow-map recovery: precise and immediate.
    squashAndRedirect(branch.seq, branch.seq, branch.actualNextPc, 0,
                      false, branch);
}

void
BaselineCore::onSquashInst(DynInst &d)
{
    // Walked youngest-to-oldest: undo the RAT update and reclaim the
    // allocated register (equivalent to restoring a shadow map).
    if (d.dstPhys != noReg) {
        rat[d.si.dstUnified()] = d.oldDstPhys;
        freeReg(d.dstPhys);
    }
}

} // namespace msp
