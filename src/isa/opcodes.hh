/**
 * @file
 * Opcode set of the msplib RISC ISA.
 *
 * The ISA is deliberately small: a register-assigning / non-assigning
 * split (which drives MSP state creation), loads/stores, conditional and
 * indirect control flow, and integer/floating-point arithmetic. This is
 * everything the paper's mechanisms are sensitive to.
 */

#ifndef MSPLIB_ISA_OPCODES_HH
#define MSPLIB_ISA_OPCODES_HH

#include <cstdint>

namespace msp {

/** Operand / destination register class. */
enum class RegClass : std::uint8_t {
    None,   ///< operand not used
    Int,    ///< integer register r0..r31 (r0 reads as zero)
    Fp,     ///< floating-point register f0..f31
};

/** Functional-unit class an operation executes on. */
enum class FuClass : std::uint8_t {
    IntAlu,  ///< simple integer ops, branches, address generation
    IntMul,  ///< integer multiply/divide (shares the IntAlu pool)
    FpAlu,   ///< floating-point ops
    Mem,     ///< loads and stores
    None,    ///< NOP / HALT consume no unit
};

/** All machine operations. */
enum class Opcode : std::uint8_t {
    // Integer ALU, register-register.
    ADD, SUB, MUL, DIV, AND, OR, XOR, SLL, SRL, SLT,
    // Integer ALU, register-immediate.
    ADDI, ANDI, ORI, XORI, SLLI, SRLI, SLTI, LI, MOV,
    // Memory.
    LD, ST, FLD, FST,
    // Control flow. Conditional branches test two int registers.
    BEQ, BNE, BLT, BGE,
    // Unconditional direct jump / call, indirect jump, return.
    J, JAL, JR, RET,
    // Floating point.
    FADD, FSUB, FMUL, FDIV, FMOV, FNEG, FITOF, FFTOI, FCMPLT,
    // Miscellaneous.
    NOP, TRAP, HALT,

    NumOpcodes,
};

/** Static properties of an opcode. */
struct OpInfo
{
    const char *mnemonic;
    FuClass fu;
    std::uint8_t latency;      ///< execute latency in cycles (cache extra)
    RegClass dst;              ///< destination class (None if non-assigning)
    RegClass src1;
    RegClass src2;
    bool isLoad;
    bool isStore;
    bool isCondBranch;
    bool isUncondDirect;       ///< J / JAL
    bool isIndirect;           ///< JR / RET
    bool isCall;               ///< JAL
    bool isReturn;             ///< RET
    bool isTrap;
    bool isHalt;

    /** Any kind of control transfer. */
    bool
    isControl() const
    {
        return isCondBranch || isUncondDirect || isIndirect;
    }
};

/** Lookup table of opcode properties. */
const OpInfo &opInfo(Opcode op);

/** Short mnemonic for printing. */
const char *opName(Opcode op);

} // namespace msp

#endif // MSPLIB_ISA_OPCODES_HH
