/**
 * @file
 * Opcode set of the msplib RISC ISA.
 *
 * The ISA is deliberately small: a register-assigning / non-assigning
 * split (which drives MSP state creation), loads/stores, conditional and
 * indirect control flow, and integer/floating-point arithmetic. This is
 * everything the paper's mechanisms are sensitive to.
 */

#ifndef MSPLIB_ISA_OPCODES_HH
#define MSPLIB_ISA_OPCODES_HH

#include <cstdint>

namespace msp {

/** Operand / destination register class. */
enum class RegClass : std::uint8_t {
    None,   ///< operand not used
    Int,    ///< integer register r0..r31 (r0 reads as zero)
    Fp,     ///< floating-point register f0..f31
};

/** Functional-unit class an operation executes on. */
enum class FuClass : std::uint8_t {
    IntAlu,  ///< simple integer ops, branches, address generation
    IntMul,  ///< integer multiply/divide (shares the IntAlu pool)
    FpAlu,   ///< floating-point ops
    Mem,     ///< loads and stores
    None,    ///< NOP / HALT consume no unit
};

/** All machine operations. */
enum class Opcode : std::uint8_t {
    // Integer ALU, register-register.
    ADD, SUB, MUL, DIV, AND, OR, XOR, SLL, SRL, SLT,
    // Integer ALU, register-immediate.
    ADDI, ANDI, ORI, XORI, SLLI, SRLI, SLTI, LI, MOV,
    // Memory.
    LD, ST, FLD, FST,
    // Control flow. Conditional branches test two int registers.
    BEQ, BNE, BLT, BGE,
    // Unconditional direct jump / call, indirect jump, return.
    J, JAL, JR, RET,
    // Floating point.
    FADD, FSUB, FMUL, FDIV, FMOV, FNEG, FITOF, FFTOI, FCMPLT,
    // Miscellaneous.
    NOP, TRAP, HALT,

    NumOpcodes,
};

/** Static properties of an opcode. */
struct OpInfo
{
    const char *mnemonic;
    FuClass fu;
    std::uint8_t latency;      ///< execute latency in cycles (cache extra)
    RegClass dst;              ///< destination class (None if non-assigning)
    RegClass src1;
    RegClass src2;
    bool isLoad;
    bool isStore;
    bool isCondBranch;
    bool isUncondDirect;       ///< J / JAL
    bool isIndirect;           ///< JR / RET
    bool isCall;               ///< JAL
    bool isReturn;             ///< RET
    bool isTrap;
    bool isHalt;

    /** Any kind of control transfer. */
    bool
    isControl() const
    {
        return isCondBranch || isUncondDirect || isIndirect;
    }
};

namespace detail {

// Columns: mnemonic, fu, lat, dst, s1, s2, load, store, condBr,
//          uncondDirect, indirect, call, ret, trap, halt
// (I/F/N = Int/Fp/None register class.) Lives in the header so the
// per-instruction info() lookup — the single most frequent call in the
// cycle loop — inlines to one indexed load.
inline constexpr RegClass opI = RegClass::Int;
inline constexpr RegClass opF = RegClass::Fp;
inline constexpr RegClass opN = RegClass::None;

inline constexpr OpInfo opTable[] = {
    {"add",    FuClass::IntAlu, 1,  opI, opI, opI, 0,0,0,0,0,0,0,0,0},
    {"sub",    FuClass::IntAlu, 1,  opI, opI, opI, 0,0,0,0,0,0,0,0,0},
    {"mul",    FuClass::IntMul, 3,  opI, opI, opI, 0,0,0,0,0,0,0,0,0},
    {"div",    FuClass::IntMul, 12, opI, opI, opI, 0,0,0,0,0,0,0,0,0},
    {"and",    FuClass::IntAlu, 1,  opI, opI, opI, 0,0,0,0,0,0,0,0,0},
    {"or",     FuClass::IntAlu, 1,  opI, opI, opI, 0,0,0,0,0,0,0,0,0},
    {"xor",    FuClass::IntAlu, 1,  opI, opI, opI, 0,0,0,0,0,0,0,0,0},
    {"sll",    FuClass::IntAlu, 1,  opI, opI, opI, 0,0,0,0,0,0,0,0,0},
    {"srl",    FuClass::IntAlu, 1,  opI, opI, opI, 0,0,0,0,0,0,0,0,0},
    {"slt",    FuClass::IntAlu, 1,  opI, opI, opI, 0,0,0,0,0,0,0,0,0},
    {"addi",   FuClass::IntAlu, 1,  opI, opI, opN, 0,0,0,0,0,0,0,0,0},
    {"andi",   FuClass::IntAlu, 1,  opI, opI, opN, 0,0,0,0,0,0,0,0,0},
    {"ori",    FuClass::IntAlu, 1,  opI, opI, opN, 0,0,0,0,0,0,0,0,0},
    {"xori",   FuClass::IntAlu, 1,  opI, opI, opN, 0,0,0,0,0,0,0,0,0},
    {"slli",   FuClass::IntAlu, 1,  opI, opI, opN, 0,0,0,0,0,0,0,0,0},
    {"srli",   FuClass::IntAlu, 1,  opI, opI, opN, 0,0,0,0,0,0,0,0,0},
    {"slti",   FuClass::IntAlu, 1,  opI, opI, opN, 0,0,0,0,0,0,0,0,0},
    {"li",     FuClass::IntAlu, 1,  opI, opN, opN, 0,0,0,0,0,0,0,0,0},
    {"mov",    FuClass::IntAlu, 1,  opI, opI, opN, 0,0,0,0,0,0,0,0,0},
    {"ld",     FuClass::Mem,    1,  opI, opI, opN, 1,0,0,0,0,0,0,0,0},
    {"st",     FuClass::Mem,    1,  opN, opI, opI, 0,1,0,0,0,0,0,0,0},
    {"fld",    FuClass::Mem,    1,  opF, opI, opN, 1,0,0,0,0,0,0,0,0},
    {"fst",    FuClass::Mem,    1,  opN, opI, opF, 0,1,0,0,0,0,0,0,0},
    {"beq",    FuClass::IntAlu, 1,  opN, opI, opI, 0,0,1,0,0,0,0,0,0},
    {"bne",    FuClass::IntAlu, 1,  opN, opI, opI, 0,0,1,0,0,0,0,0,0},
    {"blt",    FuClass::IntAlu, 1,  opN, opI, opI, 0,0,1,0,0,0,0,0,0},
    {"bge",    FuClass::IntAlu, 1,  opN, opI, opI, 0,0,1,0,0,0,0,0,0},
    {"j",      FuClass::IntAlu, 1,  opN, opN, opN, 0,0,0,1,0,0,0,0,0},
    {"jal",    FuClass::IntAlu, 1,  opI, opN, opN, 0,0,0,1,0,1,0,0,0},
    {"jr",     FuClass::IntAlu, 1,  opN, opI, opN, 0,0,0,0,1,0,0,0,0},
    {"ret",    FuClass::IntAlu, 1,  opN, opI, opN, 0,0,0,0,1,0,1,0,0},
    {"fadd",   FuClass::FpAlu,  2,  opF, opF, opF, 0,0,0,0,0,0,0,0,0},
    {"fsub",   FuClass::FpAlu,  2,  opF, opF, opF, 0,0,0,0,0,0,0,0,0},
    {"fmul",   FuClass::FpAlu,  4,  opF, opF, opF, 0,0,0,0,0,0,0,0,0},
    {"fdiv",   FuClass::FpAlu,  12, opF, opF, opF, 0,0,0,0,0,0,0,0,0},
    {"fmov",   FuClass::FpAlu,  1,  opF, opF, opN, 0,0,0,0,0,0,0,0,0},
    {"fneg",   FuClass::FpAlu,  1,  opF, opF, opN, 0,0,0,0,0,0,0,0,0},
    {"fitof",  FuClass::FpAlu,  2,  opF, opI, opN, 0,0,0,0,0,0,0,0,0},
    {"fftoi",  FuClass::FpAlu,  2,  opI, opF, opN, 0,0,0,0,0,0,0,0,0},
    {"fcmplt", FuClass::FpAlu,  2,  opI, opF, opF, 0,0,0,0,0,0,0,0,0},
    {"nop",    FuClass::None,   1,  opN, opN, opN, 0,0,0,0,0,0,0,0,0},
    {"trap",   FuClass::IntAlu, 1,  opN, opN, opN, 0,0,0,0,0,0,0,1,0},
    {"halt",   FuClass::None,   1,  opN, opN, opN, 0,0,0,0,0,0,0,0,1},
};

static_assert(sizeof(opTable) / sizeof(opTable[0]) ==
                  static_cast<std::size_t>(Opcode::NumOpcodes),
              "opTable out of sync with Opcode enum");

} // namespace detail

/** Lookup table of opcode properties. */
inline const OpInfo &
opInfo(Opcode op)
{
    return detail::opTable[static_cast<std::size_t>(op)];
}

/** Short mnemonic for printing. */
const char *opName(Opcode op);

} // namespace msp

#endif // MSPLIB_ISA_OPCODES_HH
