#include "isa/instruction.hh"

#include "common/logging.hh"

namespace msp {

std::string
Instruction::toString() const
{
    const OpInfo &oi = info();
    std::string s = oi.mnemonic;
    auto reg = [](RegClass c, int r) {
        return csprintf("%c%d", c == RegClass::Fp ? 'f' : 'r', r);
    };
    if (oi.dst != RegClass::None)
        s += " " + reg(oi.dst, rd);
    if (oi.src1 != RegClass::None)
        s += (oi.dst != RegClass::None ? ", " : " ") + reg(oi.src1, rs1);
    if (oi.src2 != RegClass::None)
        s += ", " + reg(oi.src2, rs2);
    if (oi.isCondBranch || oi.isUncondDirect) {
        s += csprintf(" -> @%lld", static_cast<long long>(imm));
    } else if (oi.isLoad || oi.isStore || op == Opcode::ADDI ||
               op == Opcode::LI || op == Opcode::SLLI || op == Opcode::SRLI ||
               op == Opcode::SLTI || op == Opcode::ANDI ||
               op == Opcode::ORI || op == Opcode::XORI) {
        s += csprintf(", #%lld", static_cast<long long>(imm));
    }
    return s;
}

} // namespace msp
