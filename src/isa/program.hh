/**
 * @file
 * A complete executable image: code, initial data, and memory geometry.
 */

#ifndef MSPLIB_ISA_PROGRAM_HH
#define MSPLIB_ISA_PROGRAM_HH

#include <string>
#include <vector>

#include "common/types.hh"
#include "isa/instruction.hh"

namespace msp {

/**
 * An executable program.
 *
 * PCs are instruction indices into @ref code. Data memory is a flat
 * array of 8-byte words at byte addresses [0, memWords * 8); every
 * effective address is masked into this range so that wrong-path
 * execution can never fault the simulator. The instruction stream is
 * mapped at @ref codeBase for I-cache purposes.
 */
struct Program
{
    std::string name;
    std::vector<Instruction> code;
    std::vector<std::uint64_t> initData;  ///< initial words at address 0
    std::size_t memWords = 1 << 16;       ///< must be a power of two
    Addr entry = 0;                       ///< starting pc (instruction index)
    Addr codeBase = 0x4000000;            ///< byte base of the code image

    /** Byte address of the instruction at @p pc (for the I-cache). */
    Addr
    pcToAddr(Addr pc) const
    {
        return codeBase + pc * 4;
    }

    /** Mask that keeps any byte address inside data memory. */
    Addr
    addrMask() const
    {
        return static_cast<Addr>(memWords) * wordBytes - 1;
    }

    /** Fetch the static instruction at @p pc (clamped into the image). */
    const Instruction &
    at(Addr pc) const
    {
        return code[pc % code.size()];
    }

    /** Number of static instructions. */
    std::size_t size() const { return code.size(); }
};

} // namespace msp

#endif // MSPLIB_ISA_PROGRAM_HH
