/**
 * @file
 * ProgramBuilder — a tiny in-memory assembler with label fix-ups.
 *
 * All workload generators and tests construct programs through this
 * class; it is the only way to create control transfers, so targets are
 * always validated.
 */

#ifndef MSPLIB_ISA_BUILDER_HH
#define MSPLIB_ISA_BUILDER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "isa/program.hh"

namespace msp {

/** Opaque label handle returned by ProgramBuilder::newLabel(). */
struct Label
{
    int id = -1;
    bool valid() const { return id >= 0; }
};

/** Incremental program constructor. */
class ProgramBuilder
{
  public:
    /** @param name Program name recorded in the image. */
    explicit ProgramBuilder(std::string name);

    // ---- labels ---------------------------------------------------------
    /** Allocate a new, unbound label. */
    Label newLabel();

    /** Bind @p l to the current emission point. */
    void bind(Label l);

    /** Pc of a bound label (for building indirect-jump tables). */
    Addr labelAddr(Label l) const;

    /** Current pc (index of the next emitted instruction). */
    Addr here() const { return code.size(); }

    // ---- raw emission ---------------------------------------------------
    /** Append an instruction verbatim; returns its pc. */
    Addr emit(const Instruction &inst);

    // ---- integer ops ----------------------------------------------------
    void add(int rd, int rs1, int rs2);
    void sub(int rd, int rs1, int rs2);
    void mul(int rd, int rs1, int rs2);
    void div(int rd, int rs1, int rs2);
    void and_(int rd, int rs1, int rs2);
    void or_(int rd, int rs1, int rs2);
    void xor_(int rd, int rs1, int rs2);
    void sll(int rd, int rs1, int rs2);
    void srl(int rd, int rs1, int rs2);
    void slt(int rd, int rs1, int rs2);
    void addi(int rd, int rs1, std::int64_t imm);
    void andi(int rd, int rs1, std::int64_t imm);
    void ori(int rd, int rs1, std::int64_t imm);
    void xori(int rd, int rs1, std::int64_t imm);
    void slli(int rd, int rs1, std::int64_t imm);
    void srli(int rd, int rs1, std::int64_t imm);
    void slti(int rd, int rs1, std::int64_t imm);
    void li(int rd, std::int64_t imm);
    void mov(int rd, int rs1);

    // ---- memory ---------------------------------------------------------
    void ld(int rd, int base, std::int64_t off);
    void st(int data, int base, std::int64_t off);
    void fld(int fd, int base, std::int64_t off);
    void fst(int fdata, int base, std::int64_t off);

    // ---- control flow ---------------------------------------------------
    void beq(int rs1, int rs2, Label target);
    void bne(int rs1, int rs2, Label target);
    void blt(int rs1, int rs2, Label target);
    void bge(int rs1, int rs2, Label target);
    void j(Label target);
    void jal(int rd, Label target);
    void jr(int rs1);
    void ret(int rs1);

    // ---- floating point -------------------------------------------------
    void fadd(int fd, int fs1, int fs2);
    void fsub(int fd, int fs1, int fs2);
    void fmul(int fd, int fs1, int fs2);
    void fdiv(int fd, int fs1, int fs2);
    void fmov(int fd, int fs1);
    void fneg(int fd, int fs1);
    void fitof(int fd, int rs1);
    void fftoi(int rd, int fs1);
    void fcmplt(int rd, int fs1, int fs2);

    // ---- misc -----------------------------------------------------------
    void nop();
    void trap();
    void halt();

    // ---- data -----------------------------------------------------------
    /** Set the data-memory size (rounded up to a power of two). */
    void memSize(std::size_t words);

    /** Set the initial value of data word @p wordIdx. */
    void data(std::size_t wordIdx, std::uint64_t value);

    /** Fill words [first, first+count) with generator-provided values. */
    template <typename Fn>
    void
    dataFill(std::size_t first, std::size_t count, Fn fn)
    {
        for (std::size_t i = 0; i < count; ++i)
            data(first + i, fn(i));
    }

    /** Finalize: patch labels, validate, and return the image. */
    Program finish();

  private:
    void emitBranch(Opcode op, int rs1, int rs2, Label target);

    std::string progName;
    std::vector<Instruction> code;
    std::vector<std::int64_t> labelPc;       // -1 while unbound
    std::vector<std::pair<Addr, int>> fixups; // (pc, label id)
    std::vector<std::uint64_t> init;
    std::size_t words = 1 << 16;
    bool finished = false;
};

} // namespace msp

#endif // MSPLIB_ISA_BUILDER_HH
