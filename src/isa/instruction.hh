/**
 * @file
 * Static instruction representation and logical-register helpers.
 */

#ifndef MSPLIB_ISA_INSTRUCTION_HH
#define MSPLIB_ISA_INSTRUCTION_HH

#include <cstdint>
#include <string>

#include "common/types.hh"
#include "isa/opcodes.hh"

namespace msp {

/**
 * Index of a logical register in the unified (int + fp) space.
 *
 * Integer register k maps to k; fp register k maps to numIntRegs + k.
 * The MSP core allocates one SCT (bank) per unified index.
 */
inline int
unifiedReg(RegClass cls, int idx)
{
    return cls == RegClass::Fp ? numIntRegs + idx : idx;
}

/** A static (decoded) instruction. PCs are instruction indices. */
struct Instruction
{
    Opcode op = Opcode::NOP;
    std::int8_t rd = -1;   ///< destination register (class-local), -1 none
    std::int8_t rs1 = -1;  ///< first source, -1 none
    std::int8_t rs2 = -1;  ///< second source, -1 none
    std::int64_t imm = 0;  ///< immediate / absolute branch target pc

    const OpInfo &info() const { return opInfo(op); }

    /**
     * True when the instruction assigns a destination register — the MSP
     * state-creation condition. Writes to the hard-wired zero register
     * r0 do not allocate and therefore do not create a state.
     */
    bool
    writesReg() const
    {
        const OpInfo &oi = info();
        if (oi.dst == RegClass::None)
            return false;
        return !(oi.dst == RegClass::Int && rd == 0);
    }

    /** Unified index of the destination register; -1 if none. */
    int
    dstUnified() const
    {
        return writesReg() ? unifiedReg(info().dst, rd) : -1;
    }

    /** Unified index of source 1; -1 if unused (or int r0). */
    int
    src1Unified() const
    {
        const OpInfo &oi = info();
        if (oi.src1 == RegClass::None || rs1 < 0)
            return -1;
        if (oi.src1 == RegClass::Int && rs1 == 0)
            return -1;
        return unifiedReg(oi.src1, rs1);
    }

    /** Unified index of source 2; -1 if unused (or int r0). */
    int
    src2Unified() const
    {
        const OpInfo &oi = info();
        if (oi.src2 == RegClass::None || rs2 < 0)
            return -1;
        if (oi.src2 == RegClass::Int && rs2 == 0)
            return -1;
        return unifiedReg(oi.src2, rs2);
    }

    /** Direct-branch / jump target (valid for cond branches, J, JAL). */
    Addr target() const { return static_cast<Addr>(imm); }

    /** Disassemble for debugging. */
    std::string toString() const;
};

} // namespace msp

#endif // MSPLIB_ISA_INSTRUCTION_HH
