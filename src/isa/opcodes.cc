#include "isa/opcodes.hh"

namespace msp {

const char *
opName(Opcode op)
{
    return opInfo(op).mnemonic;
}

} // namespace msp
