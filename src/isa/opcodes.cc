#include "isa/opcodes.hh"

#include "common/logging.hh"

namespace msp {

namespace {

constexpr RegClass I = RegClass::Int;
constexpr RegClass F = RegClass::Fp;
constexpr RegClass N = RegClass::None;

// Columns: mnemonic, fu, lat, dst, s1, s2, load, store, condBr,
//          uncondDirect, indirect, call, ret, trap, halt
const OpInfo opTable[] = {
    {"add",    FuClass::IntAlu, 1,  I, I, I, 0,0,0,0,0,0,0,0,0},
    {"sub",    FuClass::IntAlu, 1,  I, I, I, 0,0,0,0,0,0,0,0,0},
    {"mul",    FuClass::IntMul, 3,  I, I, I, 0,0,0,0,0,0,0,0,0},
    {"div",    FuClass::IntMul, 12, I, I, I, 0,0,0,0,0,0,0,0,0},
    {"and",    FuClass::IntAlu, 1,  I, I, I, 0,0,0,0,0,0,0,0,0},
    {"or",     FuClass::IntAlu, 1,  I, I, I, 0,0,0,0,0,0,0,0,0},
    {"xor",    FuClass::IntAlu, 1,  I, I, I, 0,0,0,0,0,0,0,0,0},
    {"sll",    FuClass::IntAlu, 1,  I, I, I, 0,0,0,0,0,0,0,0,0},
    {"srl",    FuClass::IntAlu, 1,  I, I, I, 0,0,0,0,0,0,0,0,0},
    {"slt",    FuClass::IntAlu, 1,  I, I, I, 0,0,0,0,0,0,0,0,0},
    {"addi",   FuClass::IntAlu, 1,  I, I, N, 0,0,0,0,0,0,0,0,0},
    {"andi",   FuClass::IntAlu, 1,  I, I, N, 0,0,0,0,0,0,0,0,0},
    {"ori",    FuClass::IntAlu, 1,  I, I, N, 0,0,0,0,0,0,0,0,0},
    {"xori",   FuClass::IntAlu, 1,  I, I, N, 0,0,0,0,0,0,0,0,0},
    {"slli",   FuClass::IntAlu, 1,  I, I, N, 0,0,0,0,0,0,0,0,0},
    {"srli",   FuClass::IntAlu, 1,  I, I, N, 0,0,0,0,0,0,0,0,0},
    {"slti",   FuClass::IntAlu, 1,  I, I, N, 0,0,0,0,0,0,0,0,0},
    {"li",     FuClass::IntAlu, 1,  I, N, N, 0,0,0,0,0,0,0,0,0},
    {"mov",    FuClass::IntAlu, 1,  I, I, N, 0,0,0,0,0,0,0,0,0},
    {"ld",     FuClass::Mem,    1,  I, I, N, 1,0,0,0,0,0,0,0,0},
    {"st",     FuClass::Mem,    1,  N, I, I, 0,1,0,0,0,0,0,0,0},
    {"fld",    FuClass::Mem,    1,  F, I, N, 1,0,0,0,0,0,0,0,0},
    {"fst",    FuClass::Mem,    1,  N, I, F, 0,1,0,0,0,0,0,0,0},
    {"beq",    FuClass::IntAlu, 1,  N, I, I, 0,0,1,0,0,0,0,0,0},
    {"bne",    FuClass::IntAlu, 1,  N, I, I, 0,0,1,0,0,0,0,0,0},
    {"blt",    FuClass::IntAlu, 1,  N, I, I, 0,0,1,0,0,0,0,0,0},
    {"bge",    FuClass::IntAlu, 1,  N, I, I, 0,0,1,0,0,0,0,0,0},
    {"j",      FuClass::IntAlu, 1,  N, N, N, 0,0,0,1,0,0,0,0,0},
    {"jal",    FuClass::IntAlu, 1,  I, N, N, 0,0,0,1,0,1,0,0,0},
    {"jr",     FuClass::IntAlu, 1,  N, I, N, 0,0,0,0,1,0,0,0,0},
    {"ret",    FuClass::IntAlu, 1,  N, I, N, 0,0,0,0,1,0,1,0,0},
    {"fadd",   FuClass::FpAlu,  2,  F, F, F, 0,0,0,0,0,0,0,0,0},
    {"fsub",   FuClass::FpAlu,  2,  F, F, F, 0,0,0,0,0,0,0,0,0},
    {"fmul",   FuClass::FpAlu,  4,  F, F, F, 0,0,0,0,0,0,0,0,0},
    {"fdiv",   FuClass::FpAlu,  12, F, F, F, 0,0,0,0,0,0,0,0,0},
    {"fmov",   FuClass::FpAlu,  1,  F, F, N, 0,0,0,0,0,0,0,0,0},
    {"fneg",   FuClass::FpAlu,  1,  F, F, N, 0,0,0,0,0,0,0,0,0},
    {"fitof",  FuClass::FpAlu,  2,  F, I, N, 0,0,0,0,0,0,0,0,0},
    {"fftoi",  FuClass::FpAlu,  2,  I, F, N, 0,0,0,0,0,0,0,0,0},
    {"fcmplt", FuClass::FpAlu,  2,  I, F, F, 0,0,0,0,0,0,0,0,0},
    {"nop",    FuClass::None,   1,  N, N, N, 0,0,0,0,0,0,0,0,0},
    {"trap",   FuClass::IntAlu, 1,  N, N, N, 0,0,0,0,0,0,0,1,0},
    {"halt",   FuClass::None,   1,  N, N, N, 0,0,0,0,0,0,0,0,1},
};

static_assert(sizeof(opTable) / sizeof(opTable[0]) ==
                  static_cast<std::size_t>(Opcode::NumOpcodes),
              "opTable out of sync with Opcode enum");

} // anonymous namespace

const OpInfo &
opInfo(Opcode op)
{
    auto idx = static_cast<std::size_t>(op);
    msp_assert(idx < static_cast<std::size_t>(Opcode::NumOpcodes),
               "bad opcode %zu", idx);
    return opTable[idx];
}

const char *
opName(Opcode op)
{
    return opInfo(op).mnemonic;
}

} // namespace msp
