#include "isa/builder.hh"

#include <bit>

#include "common/logging.hh"

namespace msp {

namespace {

void
checkReg(int r, const char *what)
{
    msp_assert(r >= 0 && r < numIntRegs, "%s register %d out of range",
               what, r);
}

Instruction
make(Opcode op, int rd, int rs1, int rs2, std::int64_t imm = 0)
{
    Instruction in;
    in.op = op;
    in.rd = static_cast<std::int8_t>(rd);
    in.rs1 = static_cast<std::int8_t>(rs1);
    in.rs2 = static_cast<std::int8_t>(rs2);
    in.imm = imm;
    return in;
}

} // anonymous namespace

ProgramBuilder::ProgramBuilder(std::string name) : progName(std::move(name))
{}

Label
ProgramBuilder::newLabel()
{
    labelPc.push_back(-1);
    return Label{static_cast<int>(labelPc.size()) - 1};
}

void
ProgramBuilder::bind(Label l)
{
    msp_assert(l.valid() && l.id < static_cast<int>(labelPc.size()),
               "bind of invalid label");
    msp_assert(labelPc[l.id] < 0, "label %d bound twice", l.id);
    labelPc[l.id] = static_cast<std::int64_t>(code.size());
}

Addr
ProgramBuilder::labelAddr(Label l) const
{
    msp_assert(l.valid() && l.id < static_cast<int>(labelPc.size()) &&
                   labelPc[l.id] >= 0,
               "labelAddr of unbound label");
    return static_cast<Addr>(labelPc[l.id]);
}

Addr
ProgramBuilder::emit(const Instruction &inst)
{
    msp_assert(!finished, "emit after finish()");
    code.push_back(inst);
    return code.size() - 1;
}

// ---- integer ops ---------------------------------------------------------

#define MSP_RRR(fn, OP)                                                     \
    void ProgramBuilder::fn(int rd, int rs1, int rs2)                       \
    {                                                                       \
        checkReg(rd, "dst"); checkReg(rs1, "src1"); checkReg(rs2, "src2");  \
        emit(make(Opcode::OP, rd, rs1, rs2));                               \
    }

MSP_RRR(add, ADD)
MSP_RRR(sub, SUB)
MSP_RRR(mul, MUL)
MSP_RRR(div, DIV)
MSP_RRR(and_, AND)
MSP_RRR(or_, OR)
MSP_RRR(xor_, XOR)
MSP_RRR(sll, SLL)
MSP_RRR(srl, SRL)
MSP_RRR(slt, SLT)
#undef MSP_RRR

#define MSP_RRI(fn, OP)                                                     \
    void ProgramBuilder::fn(int rd, int rs1, std::int64_t imm)              \
    {                                                                       \
        checkReg(rd, "dst"); checkReg(rs1, "src1");                         \
        emit(make(Opcode::OP, rd, rs1, -1, imm));                           \
    }

MSP_RRI(addi, ADDI)
MSP_RRI(andi, ANDI)
MSP_RRI(ori, ORI)
MSP_RRI(xori, XORI)
MSP_RRI(slli, SLLI)
MSP_RRI(srli, SRLI)
MSP_RRI(slti, SLTI)
#undef MSP_RRI

void
ProgramBuilder::li(int rd, std::int64_t imm)
{
    checkReg(rd, "dst");
    emit(make(Opcode::LI, rd, -1, -1, imm));
}

void
ProgramBuilder::mov(int rd, int rs1)
{
    checkReg(rd, "dst");
    checkReg(rs1, "src1");
    emit(make(Opcode::MOV, rd, rs1, -1));
}

// ---- memory --------------------------------------------------------------

void
ProgramBuilder::ld(int rd, int base, std::int64_t off)
{
    checkReg(rd, "dst");
    checkReg(base, "base");
    emit(make(Opcode::LD, rd, base, -1, off));
}

void
ProgramBuilder::st(int dataReg, int base, std::int64_t off)
{
    checkReg(dataReg, "data");
    checkReg(base, "base");
    emit(make(Opcode::ST, -1, base, dataReg, off));
}

void
ProgramBuilder::fld(int fd, int base, std::int64_t off)
{
    checkReg(fd, "dst");
    checkReg(base, "base");
    emit(make(Opcode::FLD, fd, base, -1, off));
}

void
ProgramBuilder::fst(int fdata, int base, std::int64_t off)
{
    checkReg(fdata, "data");
    checkReg(base, "base");
    emit(make(Opcode::FST, -1, base, fdata, off));
}

// ---- control flow ----------------------------------------------------------

void
ProgramBuilder::emitBranch(Opcode op, int rs1, int rs2, Label target)
{
    msp_assert(target.valid(), "branch to invalid label");
    Addr pc = emit(make(op, -1, rs1, rs2, 0));
    fixups.emplace_back(pc, target.id);
}

void
ProgramBuilder::beq(int rs1, int rs2, Label t)
{
    checkReg(rs1, "src1");
    checkReg(rs2, "src2");
    emitBranch(Opcode::BEQ, rs1, rs2, t);
}

void
ProgramBuilder::bne(int rs1, int rs2, Label t)
{
    checkReg(rs1, "src1");
    checkReg(rs2, "src2");
    emitBranch(Opcode::BNE, rs1, rs2, t);
}

void
ProgramBuilder::blt(int rs1, int rs2, Label t)
{
    checkReg(rs1, "src1");
    checkReg(rs2, "src2");
    emitBranch(Opcode::BLT, rs1, rs2, t);
}

void
ProgramBuilder::bge(int rs1, int rs2, Label t)
{
    checkReg(rs1, "src1");
    checkReg(rs2, "src2");
    emitBranch(Opcode::BGE, rs1, rs2, t);
}

void
ProgramBuilder::j(Label t)
{
    msp_assert(t.valid(), "jump to invalid label");
    Addr pc = emit(make(Opcode::J, -1, -1, -1, 0));
    fixups.emplace_back(pc, t.id);
}

void
ProgramBuilder::jal(int rd, Label t)
{
    checkReg(rd, "link");
    msp_assert(t.valid(), "jal to invalid label");
    Addr pc = emit(make(Opcode::JAL, rd, -1, -1, 0));
    fixups.emplace_back(pc, t.id);
}

void
ProgramBuilder::jr(int rs1)
{
    checkReg(rs1, "target");
    emit(make(Opcode::JR, -1, rs1, -1));
}

void
ProgramBuilder::ret(int rs1)
{
    checkReg(rs1, "link");
    emit(make(Opcode::RET, -1, rs1, -1));
}

// ---- floating point --------------------------------------------------------

#define MSP_FFF(fn, OP)                                                     \
    void ProgramBuilder::fn(int fd, int fs1, int fs2)                       \
    {                                                                       \
        checkReg(fd, "dst"); checkReg(fs1, "src1"); checkReg(fs2, "src2");  \
        emit(make(Opcode::OP, fd, fs1, fs2));                               \
    }

MSP_FFF(fadd, FADD)
MSP_FFF(fsub, FSUB)
MSP_FFF(fmul, FMUL)
MSP_FFF(fdiv, FDIV)
MSP_FFF(fcmplt, FCMPLT)
#undef MSP_FFF

void
ProgramBuilder::fmov(int fd, int fs1)
{
    checkReg(fd, "dst");
    checkReg(fs1, "src1");
    emit(make(Opcode::FMOV, fd, fs1, -1));
}

void
ProgramBuilder::fneg(int fd, int fs1)
{
    checkReg(fd, "dst");
    checkReg(fs1, "src1");
    emit(make(Opcode::FNEG, fd, fs1, -1));
}

void
ProgramBuilder::fitof(int fd, int rs1)
{
    checkReg(fd, "dst");
    checkReg(rs1, "src1");
    emit(make(Opcode::FITOF, fd, rs1, -1));
}

void
ProgramBuilder::fftoi(int rd, int fs1)
{
    checkReg(rd, "dst");
    checkReg(fs1, "src1");
    emit(make(Opcode::FFTOI, rd, fs1, -1));
}

// ---- misc ------------------------------------------------------------------

void
ProgramBuilder::nop()
{
    emit(make(Opcode::NOP, -1, -1, -1));
}

void
ProgramBuilder::trap()
{
    emit(make(Opcode::TRAP, -1, -1, -1));
}

void
ProgramBuilder::halt()
{
    emit(make(Opcode::HALT, -1, -1, -1));
}

// ---- data ------------------------------------------------------------------

void
ProgramBuilder::memSize(std::size_t w)
{
    words = std::bit_ceil(w);
}

void
ProgramBuilder::data(std::size_t wordIdx, std::uint64_t value)
{
    if (init.size() <= wordIdx)
        init.resize(wordIdx + 1, 0);
    init[wordIdx] = value;
}

Program
ProgramBuilder::finish()
{
    msp_assert(!finished, "finish() called twice");
    msp_assert(!code.empty(), "empty program");
    finished = true;

    for (auto [pc, id] : fixups) {
        msp_assert(labelPc[id] >= 0, "label %d never bound", id);
        code[pc].imm = labelPc[id];
    }
    if (init.size() > words)
        words = std::bit_ceil(init.size());

    Program p;
    p.name = progName;
    p.code = std::move(code);
    p.initData = std::move(init);
    p.memWords = words;
    p.entry = 0;
    return p;
}

} // namespace msp
