#include "core/msp_core.hh"

#include <algorithm>
#include <bit>

#include "common/logging.hh"

namespace msp {

namespace {

/** Bank capacity used to emulate the ideal (infinite) MSP. */
constexpr unsigned idealBankCapacity = 1u << 18;

unsigned
bankCapacity(const CoreParams &p)
{
    return p.infiniteBanks ? idealBankCapacity : p.regsPerBank;
}

} // anonymous namespace

MspCore::MspCore(const CoreParams &p, const Program &program,
                 PredictorKind predictor, StatGroup &statGroup)
    : CoreBase(p, program, predictor, statGroup),
      lcs(p.lcsLatency),
      stateM(p.infiniteBanks
                 ? (1u << 24)
                 : static_cast<std::uint32_t>(numLogRegs) * p.regsPerBank),
      intraOverflowStat(statGroup.add("msp.intraIdOverflow",
                                      "5-bit intra-state id saturations")),
      portConflictStat(statGroup.add("msp.portConflicts",
                                     "read-port arbitration losses"))
{
    msp_assert(p.iqSize <= maxIqSlots, "IQ larger than RelIQ rows");
    // Per-cycle hooks are pay-for-use: rename bookkeeping always, the
    // port-mask reset only when arbitration is modelled.
    hookFlags |= kHookRenameCycleBegin;
    if (p.arbitration)
        hookFlags |= kHookCycleBegin;
    banks.reserve(numLogRegs);
    for (int b = 0; b < numLogRegs; ++b) {
        banks.emplace_back(b, bankCapacity(p));
        // Architectural reset: one live physical register per logical
        // register, holding zero, valid for state 0 (the R1.0 / R2.0
        // entries of Fig. 2).
        int slot = banks[b].allocate(0);
        SctEntry &e = banks[b].entry(slot);
        e.ready = true;
        e.value = 0;
    }
    bankLcs.fill(SctBank::noHotState);
    for (int b = 0; b < numLogRegs; ++b)
        banks[b].bindHot(&bankGate[b], &bankDirtyWord,
                         static_cast<unsigned>(b));
}

// ---------------------------------------------------------------------------
// StateId counter (Sec. 3.6)
// ---------------------------------------------------------------------------

void
MspCore::flashClear(const DynInst &renaming)
{
    const std::uint32_t m = stateM;
    for (auto &bk : banks)
        bk.flashClearStateIds(m);
    // Every mirrored lcsContribution() shifted; refresh them all on the
    // next scan. (Gates were republished by flashClearStateIds itself.)
    bankDirtyWord = numLogRegs == 64
                        ? ~std::uint64_t{0}
                        : (std::uint64_t{1} << numLogRegs) - 1;
    for (DynInst *d : window) {
        if (d == &renaming)
            continue;   // mid-rename: StateId assigned just after this
        msp_assert(d->stateId >= m,
                   "flash-clear: in-flight StateId %u below M", d->stateId);
        d->stateId -= m;
    }
    msp_assert(sc >= m, "flash-clear with small SC");
    sc -= m;
    lcs.flashClear(m);
    if (anchorPending > 0) {
        msp_assert(anchorState >= m, "flash-clear: live anchor below M");
        anchorState -= m;
    } else {
        anchorState = 0;
    }
    ++numFlashClears;
}

std::uint32_t
MspCore::bumpState(const DynInst &renaming)
{
    if (sc == 2 * stateM - 1)
        flashClear(renaming);
    return ++sc;
}

// ---------------------------------------------------------------------------
// Per-cycle resets
// ---------------------------------------------------------------------------

void
MspCore::cycleBegin()
{
    if (params.arbitration) {
        readPortUsed.fill(0);
        writePortUsed.fill(0);
    }
}

void
MspCore::renameCycleBegin()
{
    destsThisCycle = 0;
    bankRenamesThisCycle.fill(0);
}

// ---------------------------------------------------------------------------
// Rename (Sec. 3.3)
// ---------------------------------------------------------------------------

bool
MspCore::canRename(const DynInst &d)
{
    if (!d.si.writesReg())
        return true;
    const int b = d.si.dstUnified();
    if (destsThisCycle >= params.maxRenameDests)
        return false;   // width limit, not a head-of-queue stall
    if (bankRenamesThisCycle[b] >= params.maxSameRegRenames)
        return false;   // >2 renames of one logical register this cycle
    if (banks[b].full()) {
        stallReason = StallReason::Registers;
        stallBank = b;
        return false;
    }
    if (sc == 2 * stateM - 1) {
        // About to saturate the SC: the Sb flash-clear needs every live
        // StateId to have its saturation bit set. Extremely old
        // stragglers (possible only after an exception resumed inside a
        // committed state) briefly stall renaming instead.
        const bool safe =
            (anchorPending == 0 || anchorState >= stateM) &&
            (window.empty() || window.front()->stateId >= stateM);
        if (!safe) {
            stallReason = StallReason::Registers;
            stallBank = -1;
            return false;
        }
    }
    return true;
}

void
MspCore::renameOne(DynInst &d)
{
    // Source lookup first: a destination that names the same logical
    // register must not shadow its own source (read-then-shift RenP).
    auto takeSrc = [&](int unified, SrcInfo &src) {
        if (unified < 0)
            return;
        SctBank &bk = banks[unified];
        const int slot = bk.renameSlot();
        msp_assert(slot >= 0, "bank %d has no live mapping", unified);
        src.phys = encode(unified, slot);
        if (d.iqSlot >= 0)
            src.useBitSet = bk.setUse(slot, d.iqSlot);
    };
    takeSrc(d.si.src1Unified(), d.src1);
    takeSrc(d.si.src2Unified(), d.src2);

    if (d.si.writesReg()) {
        const int b = d.si.dstUnified();
        const std::uint32_t s = bumpState(d);
        const int slot = banks[b].allocate(s);
        d.dstPhys = encode(b, slot);
        d.stateId = s;
        d.intraId = 0;
        d.createsState = true;
        curOwnerBank = b;
        curOwnerSlot = slot;
        intraNext = 1;
        ++destsThisCycle;
        ++bankRenamesThisCycle[b];
    } else {
        d.stateId = sc;
        d.intraId = intraNext++;
        if (d.intraId > params.maxIntraStateId)
            ++intraOverflowStat;
        d.ownerBank = curOwnerBank;
        d.ownerIdx = curOwnerSlot;
        if (d.needsExecution()) {
            if (curOwnerBank < 0) {
                ++anchorPending;
            } else {
                ++banks[curOwnerBank].entry(curOwnerSlot).pendingOps;
                banks[curOwnerBank].markLcsDirty();
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Issue / register read (banked file, 1R/1W per bank)
// ---------------------------------------------------------------------------

bool
MspCore::operandsReady(const DynInst &d) const
{
    auto ready = [&](const SrcInfo &s) {
        if (s.phys == noReg)
            return true;
        return banks[bankOf(s.phys)].entry(slotOf(s.phys)).ready;
    };
    return ready(d.src1) && ready(d.src2);
}

void
MspCore::initWakeup(DynInst &d)
{
    // No subscription lists needed: the RelIQ use bits set during
    // rename are exactly the consumers to wake when an SCT entry's
    // value arrives. Count the distinct not-yet-ready source entries;
    // writebackDest broadcasts one wake per use-bit holder when the
    // entry's ready bit flips (exactly once per allocation — committed
    // releases stop at done() entries, so a live consumer never
    // outlives its entry).
    unsigned pending = 0;
    auto unready = [&](PhysReg p) {
        return p != noReg && !banks[bankOf(p)].entry(slotOf(p)).ready;
    };
    if (unready(d.src1.phys))
        ++pending;
    if (d.src2.phys != d.src1.phys && unready(d.src2.phys))
        ++pending;
    iq.setPending(d.iqSlot, pending);
}

bool
MspCore::issuePortsAvailable(const DynInst &d)
{
    if (!params.arbitration)
        return true;
    const int b1 = d.src1.phys == noReg ? -1 : bankOf(d.src1.phys);
    const int b2 = d.src2.phys == noReg ? -1 : bankOf(d.src2.phys);
    if (b1 >= 0 && readPortUsed[b1]) {
        ++portConflictStat;
        return false;
    }
    if (b2 >= 0 && b2 != b1 && readPortUsed[b2]) {
        ++portConflictStat;
        return false;
    }
    return true;
}

void
MspCore::readOperands(DynInst &d)
{
    auto read = [&](const SrcInfo &s) -> std::uint64_t {
        if (s.phys == noReg)
            return 0;
        return banks[bankOf(s.phys)].entry(slotOf(s.phys)).value;
    };
    d.srcVal1 = read(d.src1);
    d.srcVal2 = read(d.src2);
}

void
MspCore::onIssued(DynInst &d)
{
    auto consume = [&](SrcInfo &s) {
        if (s.useBitSet) {
            banks[bankOf(s.phys)].clearUse(slotOf(s.phys), d.iqSlot);
            s.useBitSet = false;
        }
    };
    consume(d.src1);
    consume(d.src2);

    if (params.arbitration) {
        if (d.src1.phys != noReg)
            readPortUsed[bankOf(d.src1.phys)] = 1;
        if (d.src2.phys != noReg)
            readPortUsed[bankOf(d.src2.phys)] = 1;
    }
}

bool
MspCore::writebackDest(DynInst &d)
{
    const int b = bankOf(d.dstPhys);
    if (params.arbitration) {
        if (writePortUsed[b])
            return false;   // 1 write port per bank: retry next cycle
        writePortUsed[b] = 1;
    }
    SctEntry &e = banks[b].entry(slotOf(d.dstPhys));
    e.value = d.result;
    e.ready = true;
    banks[b].markLcsDirty();
    // RelIQ wakeup broadcast: every use-bit holder counted this entry
    // as a pending source at insert (the ready bit was false then and
    // flips exactly once, here).
    for (unsigned w = 0; w < maxIqSlots / 64; ++w) {
        std::uint64_t bits = e.useBits[w];
        while (bits) {
            const int iqSlot =
                static_cast<int>(w * 64) + std::countr_zero(bits);
            bits &= bits - 1;
            iq.wakeSrc(iqSlot);
        }
    }
    return true;
}

void
MspCore::ownerPendingDec(const DynInst &d)
{
    if (d.ownerBank < 0) {
        msp_assert(anchorPending > 0, "anchorPending underflow");
        --anchorPending;
    } else {
        SctEntry &e = banks[d.ownerBank].entry(d.ownerIdx);
        msp_assert(e.pendingOps > 0, "pendingOps underflow (bank %d)",
                   static_cast<int>(d.ownerBank));
        --e.pendingOps;
        banks[d.ownerBank].markLcsDirty();
    }
}

void
MspCore::onExecuted(DynInst &d)
{
    if (!d.createsState && d.needsExecution())
        ownerPendingDec(d);
}

// ---------------------------------------------------------------------------
// Commit (LCS, Sec. 3.2.2)
// ---------------------------------------------------------------------------

std::uint32_t
MspCore::computeRawLcs()
{
    // The current state is still "open": instructions in the front end
    // may yet join it (Fig. 3 tracks pre-rename instructions for this
    // reason). It may only commit once fetch has drained.
    std::uint32_t m =
        (fetchStopped && fetchQ.empty()) ? sc + 1 : sc;
    if (anchorPending > 0)
        m = std::min(m, anchorState);
    // Refresh only the banks whose contribution changed since the last
    // scan, then take the minimum over the dense mirror. Live StateIds
    // are far below noHotState, so contribution-less banks drop out of
    // the minimum without a branch.
    std::uint64_t dirty = bankDirtyWord;
    bankDirtyWord = 0;
    if (dirty)
        ++pathEvents.lcsRecompute;
    while (dirty) {
        const int b = std::countr_zero(dirty);
        dirty &= dirty - 1;
        ++pathEvents.lcsDirtyBank;
        const auto c = banks[b].lcsContribution();
        bankLcs[b] = c ? *c : SctBank::noHotState;
    }
    for (int b = 0; b < numLogRegs; ++b)
        m = std::min(m, bankLcs[b]);
    return m;
}

void
MspCore::doCommit()
{
    const std::uint32_t eff = lcs.advance(computeRawLcs());

    // Commit every state older than LCS (possibly many per cycle).
    while (!window.empty() && !haltCommitted) {
        DynInst &h = *window.front();
        if (h.stateId >= eff)
            break;
        if (h.isTrap()) {
            takeException();
            break;
        }
        msp_assert(h.executed,
                   "MSP commit of unexecuted head (state %u, lcs %u)",
                   h.stateId, eff);
        commitOne();
    }

    // Broadcast LCS: release superseded physical registers. The limit
    // is additionally bounded by what actually retired from the window:
    // StateId < LCS means *committable*, and an exception taken between
    // two committable states must still find the older mapping alive.
    std::uint32_t releaseLimit = lcs.effective();
    if (!window.empty())
        releaseLimit = std::min(releaseLimit, window.front()->stateId);
    // The gate mirrors each bank's releaseCommitted() early-out (the
    // successor StateId of the head entry), so the common all-banks-idle
    // cycle touches only this flat array.
    for (int b = 0; b < numLogRegs; ++b) {
        if (bankGate[b] < releaseLimit) {
            ++pathEvents.sctGateRelease;
            banks[b].releaseCommitted(releaseLimit);
        }
    }
}

// ---------------------------------------------------------------------------
// Recovery (Sec. 3.5)
// ---------------------------------------------------------------------------

void
MspCore::recoverBranch(DynInst &branch)
{
    // Precise: the Recovery StateId is the branch's own state; only
    // strictly younger work (greater StateId, or equal StateId with a
    // greater intra-state id — i.e., greater seq) is squashed.
    squashAndRedirect(branch.seq, branch.seq, branch.actualNextPc, 0,
                      false, branch);
}

void
MspCore::onSquashInst(DynInst &d)
{
    auto unconsume = [&](SrcInfo &s) {
        if (s.useBitSet) {
            banks[bankOf(s.phys)].clearUse(slotOf(s.phys), d.iqSlot);
            s.useBitSet = false;
        }
    };
    unconsume(d.src1);
    unconsume(d.src2);

    if (!d.createsState && d.needsExecution() && !d.executed)
        ownerPendingDec(d);

    if (d.createsState) {
        // Recovery release: StateId > Recovery StateId. Squash runs
        // youngest-to-oldest, so this is always the bank tail.
        banks[bankOf(d.dstPhys)].releaseTail(slotOf(d.dstPhys));
    }
}

void
MspCore::afterSquash(const DynInst &trigger, bool exception)
{
    sc = trigger.stateId;
    if (exception) {
        // The trap was committed; fetch resumes inside an
        // already-committed state. Re-anchor pending tracking there.
        intraNext = trigger.intraId;
        curOwnerBank = -1;
        curOwnerSlot = -1;
        msp_assert(anchorPending == 0,
                   "exception with a live state-0 anchor");
        anchorState = sc;
        lcs.clamp(sc);
    } else if (trigger.createsState) {
        intraNext = 1;
        curOwnerBank = bankOf(trigger.dstPhys);
        curOwnerSlot = slotOf(trigger.dstPhys);
    } else {
        intraNext = trigger.intraId + 1;
        curOwnerBank = trigger.ownerBank;
        curOwnerSlot = trigger.ownerIdx;
    }
    lcs.flush();
}

void
MspCore::warmArchState(const ArchState &warm)
{
    // Reset state: one live, ready entry per bank (the architectural
    // mapping). Only its value changes — readiness and StateIds are
    // untouched, so no LCS invalidation is needed.
    for (int b = 0; b < numLogRegs; ++b) {
        SctEntry &e = banks[b].entry(banks[b].renameSlot());
        e.value = b < numIntRegs ? warm.readInt(b)
                                 : warm.readFp(b - numIntRegs);
    }
}

} // namespace msp
