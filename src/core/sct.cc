#include "core/sct.hh"

namespace msp {

SctBank::SctBank(int bankId, unsigned capacity) : id(bankId), cap(capacity)
{
    msp_assert(capacity >= 2, "bank %d: capacity %u too small", bankId,
               capacity);
}

int
SctBank::freeSlot()
{
    if (!freeSlots.empty()) {
        int s = freeSlots.back();
        freeSlots.pop_back();
        return s;
    }
    slots.emplace_back();
    return static_cast<int>(slots.size()) - 1;
}

int
SctBank::allocate(std::uint32_t stateId)
{
    msp_assert(!full(), "bank %d: allocate on full bank", id);
    msp_assert(order.empty() || slots[order.back()].stateId < stateId,
               "bank %d: non-monotonic StateId allocation", id);
    int s = freeSlot();
    SctEntry &e = slots[s];
    e = SctEntry{};
    e.stateId = stateId;
    e.valid = true;
    order.push_back(s);
    markLcsDirty();   // new not-ready tail; previous tail loses exclusion
    publishHotGate();
    return s;
}

bool
SctBank::setUse(int slot, int iqSlot)
{
    msp_assert(iqSlot >= 0 && iqSlot < static_cast<int>(maxIqSlots),
               "bad IQ slot %d", iqSlot);
    SctEntry &e = entry(slot);
    std::uint64_t &w = e.useBits[iqSlot >> 6];
    const std::uint64_t bit = std::uint64_t{1} << (iqSlot & 63);
    if (w & bit)
        return false;
    w |= bit;
    ++e.useCount;
    markLcsDirty();
    return true;
}

void
SctBank::clearUse(int slot, int iqSlot)
{
    SctEntry &e = entry(slot);
    std::uint64_t &w = e.useBits[iqSlot >> 6];
    const std::uint64_t bit = std::uint64_t{1} << (iqSlot & 63);
    msp_assert(w & bit, "bank %d: clearing unset use bit", id);
    w &= ~bit;
    msp_assert(e.useCount > 0, "bank %d: useCount underflow", id);
    --e.useCount;
    markLcsDirty();
}

std::optional<std::uint32_t>
SctBank::scanLcsContribution() const
{
    const int tail = order.empty() ? -1 : order.back();
    for (int s : order) {
        const SctEntry &e = slots[s];
        const bool holding = !e.ready || e.pendingOps > 0 ||
                             (e.useCount > 0 && s != tail);
        if (holding)
            return e.stateId;
    }
    return std::nullopt;
}

int
SctBank::releaseCommittedSlow(std::uint32_t lcs)
{
    int released = 0;
    markLcsDirty();
    while (order.size() >= 2) {
        const SctEntry &succ = slots[order[1]];
        if (succ.stateId >= lcs)
            break;
        SctEntry &head = slots[order.front()];
        msp_assert(head.done(),
                   "bank %d: releasing a not-done entry (state %u, "
                   "lcs %u)", id, head.stateId, lcs);
        head.valid = false;
        freeSlots.push_back(order.front());
        order.pop_front();
        ++released;
    }
    publishHotGate();
    return released;
}

void
SctBank::releaseTail(int expectedSlot)
{
    msp_assert(!order.empty(), "bank %d: releaseTail on empty bank", id);
    msp_assert(order.back() == expectedSlot,
               "bank %d: releaseTail slot mismatch (%d vs %d)", id,
               order.back(), expectedSlot);
    SctEntry &e = slots[order.back()];
    msp_assert(e.useCount == 0 && e.pendingOps == 0,
               "bank %d: releasing tail with pending consumers", id);
    e.valid = false;
    freeSlots.push_back(order.back());
    order.pop_back();
    markLcsDirty();
    publishHotGate();
}

void
SctBank::flashClearStateIds(std::uint32_t sub)
{
    // Saturating subtract: entries whose state committed long ago (the
    // architectural mapping of a rarely-written register) may still
    // carry a pre-saturation StateId. They are older than everything in
    // flight, so clamping to zero preserves every ordering the id is
    // used for. Uncommitted states are guaranteed >= sub (asserted by
    // the caller on the instruction window).
    for (int s : order) {
        SctEntry &e = slots[s];
        e.stateId = e.stateId >= sub ? e.stateId - sub : 0;
    }
    // The first holding entry is unchanged (no flags moved); its
    // StateId shifted exactly like the cache must.
    if (!lcsDirty && lcsCache)
        *lcsCache = *lcsCache >= sub ? *lcsCache - sub : 0;
    // The release gate shifted with every StateId; the hot
    // lcsContribution copies are refreshed by the core, which marks
    // every bank dirty after a flash clear.
    publishHotGate();
}

} // namespace msp
