/**
 * @file
 * MspCore — the Multi-State Processor (the paper's contribution).
 *
 * Distributed register and state management: one SctBank per logical
 * register, a global StateId counter with the Sec. 3.6 saturation-bit
 * overflow scheme, the LCS commit mechanism, RelIQ use-bit dependence
 * tracking, banked-register-file port arbitration, and precise
 * misprediction/exception recovery by Recovery-StateId broadcast.
 */

#ifndef MSPLIB_CORE_MSP_CORE_HH
#define MSPLIB_CORE_MSP_CORE_HH

#include <array>
#include <vector>

#include "core/lcs_unit.hh"
#include "core/sct.hh"
#include "pipeline/core_base.hh"

namespace msp {

/** The Multi-State Processor core. */
class MspCore : public CoreBase
{
  public:
    MspCore(const CoreParams &params, const Program &program,
            PredictorKind predictor, StatGroup &stats);

    /** Effective LCS this cycle (for tests). */
    std::uint32_t effectiveLcs() const { return lcs.effective(); }

    /** Current StateId counter (for tests). */
    std::uint32_t stateCounter() const { return sc; }

    /** Bank accessor (for tests). */
    const SctBank &bank(int b) const { return banks[b]; }

    /** Number of Sb flash-clears performed (for tests). */
    std::uint64_t flashClears() const { return numFlashClears; }

  protected:
    void cycleBegin() override;
    void renameCycleBegin() override;
    bool canRename(const DynInst &d) override;
    void renameOne(DynInst &d) override;
    bool operandsReady(const DynInst &d) const override;
    void initWakeup(DynInst &d) override;
    bool issuePortsAvailable(const DynInst &d) override;
    void readOperands(DynInst &d) override;
    void onIssued(DynInst &d) override;
    bool writebackDest(DynInst &d) override;
    void onExecuted(DynInst &d) override;
    void doCommit() override;
    void recoverBranch(DynInst &branch) override;
    void onSquashInst(DynInst &d) override;
    void afterSquash(const DynInst &trigger, bool exception) override;
    void warmArchState(const ArchState &warm) override;

  private:
    static constexpr int slotShift = 20;

    static PhysReg
    encode(int bankIdx, int slot)
    {
        return (bankIdx << slotShift) | slot;
    }

    static int bankOf(PhysReg p) { return p >> slotShift; }
    static int slotOf(PhysReg p) { return p & ((1 << slotShift) - 1); }

    /** Advance the StateId counter, flash-clearing on saturation.
     *  @p renaming is the instruction being renamed (already in the
     *  window but without a StateId yet; exempt from the sweep). */
    std::uint32_t bumpState(const DynInst &renaming);

    /** Subtract M from every live StateId (Sec. 3.6). */
    void flashClear(const DynInst &renaming);

    /** Raw LCS minimum over all banks plus the state-0 anchor. */
    std::uint32_t computeRawLcs();

    /** Decrement the pending-operation count of @p d's owning state. */
    void ownerPendingDec(const DynInst &d);

    std::vector<SctBank> banks;
    LcsUnit lcs;

    // Dense commit-path mirrors of per-bank state (see SctBank::bindHot):
    // the per-cycle LCS minimum and release-gate scan walk these flat
    // arrays instead of 64 scattered bank objects. bankLcs entries are
    // refreshed lazily — bankDirtyWord has one bit per bank whose cached
    // lcsContribution() was invalidated since the last computeRawLcs().
    static_assert(numLogRegs <= 64, "bank dirty bits held in one word");
    std::array<std::uint32_t, numLogRegs> bankLcs{};
    std::array<std::uint32_t, numLogRegs> bankGate{};
    std::uint64_t bankDirtyWord = 0;

    std::uint32_t sc = 0;          ///< State Counter (SC)
    std::uint32_t stateM;          ///< M: total physical registers
    std::uint32_t intraNext = 1;   ///< next intra-state id in current state
    std::uint32_t anchorPending = 0; ///< unexecuted anchor-state followers
    std::uint32_t anchorState = 0;   ///< state tracked by the anchor

    /** Owner entry of the current state (-1 bank = state-0 anchor). */
    int curOwnerBank = -1;
    int curOwnerSlot = -1;

    // Per-cycle register-file port arbitration state.
    std::array<std::uint8_t, numLogRegs> readPortUsed{};
    std::array<std::uint8_t, numLogRegs> writePortUsed{};

    // Per-cycle rename limits.
    unsigned destsThisCycle = 0;
    std::array<std::uint8_t, numLogRegs> bankRenamesThisCycle{};

    std::uint64_t numFlashClears = 0;
    Stat &intraOverflowStat;
    Stat &portConflictStat;
};

} // namespace msp

#endif // MSPLIB_CORE_MSP_CORE_HH
