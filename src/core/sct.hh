/**
 * @file
 * SctBank — the State Control Table for one logical register (Sec. 3.2.1).
 *
 * Each logical register owns a fixed bank of physical registers. An SCT
 * entry is the descriptor of one physical register: its Lower StateId
 * (the Upper StateId is implicit — the next entry's StateId minus one),
 * a valid bit, the Ready bit (value produced), the RelIQ use-bit row
 * (one bit per instruction-queue slot) and the count of non-assigning
 * instructions belonging to the entry's state.
 *
 * Physical registers are allocated and released in order within the
 * bank (constraint (b) of Sec. 3.1): allocation pushes at the tail
 * (RenP), commit-release pops at the head, recovery-release pops at the
 * tail. Entry *slots* are stable indices so in-flight instructions can
 * name their operands as (bank, slot) pairs.
 */

#ifndef MSPLIB_CORE_SCT_HH
#define MSPLIB_CORE_SCT_HH

#include <array>
#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"

namespace msp {

/** Maximum instruction-queue size supported by the RelIQ rows. */
constexpr unsigned maxIqSlots = 256;

/** Descriptor of one physical register in a bank. */
struct SctEntry
{
    std::uint32_t stateId = 0;   ///< Lower StateId
    bool valid = false;
    bool ready = false;          ///< Rb: value produced
    std::uint64_t value = 0;
    std::uint32_t useCount = 0;  ///< set bits in the RelIQ row
    std::uint32_t pendingOps = 0;///< unexecuted same-state non-assigners
    std::array<std::uint64_t, maxIqSlots / 64> useBits{};

    /**
     * Local completion: value produced, consumed by every dependent in
     * the IQ, and every same-state instruction executed. This is the
     * predicate the Release Pointer (RelP) stops at.
     */
    bool
    done() const
    {
        return ready && useCount == 0 && pendingOps == 0;
    }
};

/** One logical register's bank of physical registers. */
class SctBank
{
  public:
    /**
     * @param bankId   Unified logical register index (for diagnostics).
     * @param capacity Physical registers in the bank (n of n-SP).
     */
    SctBank(int bankId, unsigned capacity);

    /** True when no more physical registers can be allocated. */
    bool full() const { return order.size() >= cap; }

    /** Live (valid) entries. */
    std::size_t occupancy() const { return order.size(); }

    /**
     * Allocate the next physical register (advance RenP).
     * @return Stable slot index of the new entry.
     */
    int allocate(std::uint32_t stateId);

    /** Slot of the current mapping (RenP target); -1 if bank empty. */
    int
    renameSlot() const
    {
        return order.empty() ? -1 : order.back();
    }

    /** Slot of the oldest live entry (RelP scan base); -1 if empty. */
    int
    oldestSlot() const
    {
        return order.empty() ? -1 : order.front();
    }

    SctEntry &
    entry(int slot)
    {
        msp_assert(slot >= 0 && slot < static_cast<int>(slots.size()) &&
                       slots[slot].valid,
                   "bank %d: access to invalid slot %d", id, slot);
        return slots[slot];
    }

    const SctEntry &
    entry(int slot) const
    {
        return const_cast<SctBank *>(this)->entry(slot);
    }

    /**
     * Set the RelIQ use bit (consumer @p iqSlot depends on @p slot).
     * @return true if the bit was newly set (caller must clear it).
     */
    bool setUse(int slot, int iqSlot);

    /** Clear a use bit (consumer issued, or squashed). */
    void clearUse(int slot, int iqSlot);

    /**
     * StateId this bank contributes to the LCS minimum: the StateId of
     * the first (oldest) entry that still holds its state back. A bank
     * whose entries are all clear is excluded (the RenP==RelP special
     * condition of Sec. 3.2.2 and its multi-entry generalisation).
     *
     * The *tail* entry (current mapping, RenP target) only holds the
     * LCS until its value is produced — not until consumed: a live
     * architectural value (e.g. a loop-invariant constant) gains new
     * consumers forever, and each consumer already gates the LCS
     * through its own instruction's state. Without this exclusion a
     * single loop-invariant register deadlocks commit.
     *
     * The result is cached: the commit stage queries every bank every
     * cycle, but most banks don't change state in most cycles. Every
     * mutation that can move the first holding entry (allocate,
     * use-bit set/clear, pendingOps and ready transitions, releases)
     * marks the cache dirty; the scan reruns only then.
     */
    std::optional<std::uint32_t>
    lcsContribution() const
    {
        if (lcsDirty) {
            lcsCache = scanLcsContribution();
            lcsDirty = false;
        }
        return lcsCache;
    }

    /**
     * Invalidate the cached lcsContribution(). Public because the MSP
     * core mutates ready/pendingOps directly through entry().
     */
    void
    markLcsDirty()
    {
        lcsDirty = true;
        if (hotDirtyWord)
            *hotDirtyWord |= hotDirtyMask;
    }

    /** Sentinel for "no release gate / no contribution" in hot lanes. */
    static constexpr std::uint32_t noHotState = ~std::uint32_t{0};

    /**
     * Bind this bank's hot commit-path state into core-owned dense
     * arrays. The commit stage queries all banks every cycle; touching
     * 64 scattered bank objects per cycle is most of its cost, so the
     * bank pushes the two scanned values out instead:
     *
     *  - @p gateSlot receives the successor StateId that gates
     *    releaseCommitted() (noHotState when fewer than two entries),
     *    updated whenever the live order changes;
     *  - @p dirtyWord gets bit @p bitIndex set whenever the cached
     *    lcsContribution() is invalidated, so the core recomputes only
     *    dirty banks (and clears the bits itself).
     */
    void
    bindHot(std::uint32_t *gateSlot, std::uint64_t *dirtyWord,
            unsigned bitIndex)
    {
        hotGate = gateSlot;
        hotDirtyWord = dirtyWord;
        hotDirtyMask = std::uint64_t{1} << bitIndex;
        publishHotGate();
        *hotDirtyWord |= hotDirtyMask;
    }

    /**
     * Commit-time release: release head entries that have a *committed
     * successor* (successor StateId < @p lcs). The newest entry with
     * StateId < lcs is kept — it holds the architectural value.
     * @return Number of entries released.
     *
     * The no-op case (nothing committed in this bank since the last
     * broadcast) is decided inline — it is the common case for all 64
     * banks, every cycle.
     */
    int
    releaseCommitted(std::uint32_t lcs)
    {
        if (order.size() < 2 || slots[order[1]].stateId >= lcs)
            return 0;
        return releaseCommittedSlow(lcs);
    }

    /** Recovery-time release of the tail entry (squashed allocator). */
    void releaseTail(int expectedSlot);

    /** Subtract @p sub from every stored StateId (Sb flash-clear). */
    void flashClearStateIds(std::uint32_t sub);

    /** Oldest-to-newest slot order (for tests/diagnostics). */
    const std::deque<int> &liveOrder() const { return order; }

    int bankId() const { return id; }

  private:
    int freeSlot();
    int releaseCommittedSlow(std::uint32_t lcs);
    std::optional<std::uint32_t> scanLcsContribution() const;

    void
    publishHotGate()
    {
        if (hotGate) {
            *hotGate = order.size() >= 2 ? slots[order[1]].stateId
                                         : noHotState;
        }
    }

    int id;
    std::size_t cap;
    std::vector<SctEntry> slots;
    std::vector<int> freeSlots;
    std::deque<int> order;   ///< live slots, oldest first

    mutable bool lcsDirty = true;
    mutable std::optional<std::uint32_t> lcsCache;

    // Core-owned hot commit-path slots (see bindHot).
    std::uint32_t *hotGate = nullptr;
    std::uint64_t *hotDirtyWord = nullptr;
    std::uint64_t hotDirtyMask = 0;
};

} // namespace msp

#endif // MSPLIB_CORE_SCT_HH
