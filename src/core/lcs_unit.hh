/**
 * @file
 * LcsUnit — the Last Committed StateId computation (Sec. 3.2.2).
 *
 * Hardware computes LCS = min over banks of SCT[RelP].StateId with a
 * pipelined comparator tree; the paper notes that even a 4-cycle
 * pipelined computation costs under 1% IPC. This model exposes that
 * latency as a configurable delay line: the LCS *used* in cycle t is
 * the minimum *computed* in cycle t - latency.
 */

#ifndef MSPLIB_CORE_LCS_UNIT_HH
#define MSPLIB_CORE_LCS_UNIT_HH

#include <cstdint>
#include <deque>

#include "common/types.hh"

namespace msp {

/** Pipelined minimum-of-StateIds unit. */
class LcsUnit
{
  public:
    /** @param latency Propagation delay in cycles (0 = combinational). */
    explicit LcsUnit(unsigned latency) : lat(latency) {}

    /**
     * Feed the freshly computed minimum and return the effective LCS
     * (the value that emerged from the comparator pipeline this cycle).
     */
    std::uint32_t
    advance(std::uint32_t rawMin)
    {
        if (lat == 0) {
            eff = rawMin;
            return eff;
        }
        pipe.push_back(rawMin);
        if (pipe.size() > lat) {
            eff = pipe.front();
            pipe.pop_front();
        }
        return eff;
    }

    /** Effective (pipeline-output) LCS. */
    std::uint32_t effective() const { return eff; }

    /**
     * Flush the pipeline on a recovery; stale in-flight minima may
     * exceed the recovery StateId. The effective value is kept — it is
     * monotonically safe (it only ever names already-committed states).
     */
    void flush() { pipe.clear(); }

    /**
     * Lower the effective value (exception recovery resumes inside an
     * already-committed state; the stale effective LCS must not commit
     * the re-fetched instructions before they execute).
     */
    void
    clamp(std::uint32_t v)
    {
        if (eff > v)
            eff = v;
    }

    /** Flash-clear support: shift every latched value down by @p sub. */
    void
    flashClear(std::uint32_t sub)
    {
        eff = eff >= sub ? eff - sub : 0;
        for (auto &v : pipe)
            v = v >= sub ? v - sub : 0;
    }

  private:
    unsigned lat;
    std::uint32_t eff = 0;
    std::deque<std::uint32_t> pipe;
};

} // namespace msp

#endif // MSPLIB_CORE_LCS_UNIT_HH
