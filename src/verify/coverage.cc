#include "verify/coverage.hh"

#include <bit>

#include "common/json.hh"
#include "common/logging.hh"
#include "pipeline/core_base.hh"

namespace msp {
namespace verify {

namespace {

// Feature layout offsets (see the header comment).
constexpr unsigned stallBase = 0;
constexpr unsigned predBase = 49;
constexpr unsigned squashBase = 65;
constexpr unsigned exceptionFeature = 73;
constexpr unsigned sqProbeBase = 74;
constexpr unsigned sqL2Feature = 78;
constexpr unsigned sctGateFeature = 79;
constexpr unsigned lcsDirtyFeature = 80;
constexpr unsigned lcsRecomputeFeature = 81;

static_assert(PathEvents::stallKinds == 7,
              "coverage layout assumes 7 StallReason values");
static_assert(stallBase + PathEvents::stallKinds * PathEvents::stallKinds ==
              predBase);
static_assert(predBase + 16 == squashBase);
static_assert(squashBase + 8 == exceptionFeature);
static_assert(lcsRecomputeFeature + 1 == CoverageMap::numFeatures);

void
fold(CoverageMap &m, unsigned feature, std::uint64_t count)
{
    if (count)
        m.set(feature, coverageBucket(count));
}

} // anonymous namespace

std::size_t
CoverageMap::bitsSet() const
{
    std::size_t n = 0;
    for (const std::uint64_t w : words)
        n += static_cast<std::size_t>(std::popcount(w));
    return n;
}

std::size_t
CoverageMap::featuresHit() const
{
    std::size_t n = 0;
    for (unsigned f = 0; f < numFeatures; ++f) {
        const unsigned bit = f * numBuckets;
        const std::uint64_t byte = (words[bit / 64] >> (bit % 64)) & 0xff;
        if (byte)
            ++n;
    }
    return n;
}

std::size_t
CoverageMap::newBitsVs(const CoverageMap &base) const
{
    std::size_t n = 0;
    for (unsigned w = 0; w < numWords; ++w)
        n += static_cast<std::size_t>(
            std::popcount(words[w] & ~base.words[w]));
    return n;
}

std::string
CoverageMap::toHex() const
{
    std::string out;
    out.reserve(numWords * 16);
    for (const std::uint64_t w : words)
        out += csprintf("%016llx", static_cast<unsigned long long>(w));
    return out;
}

CoverageMap
CoverageMap::fromHex(const std::string &hex)
{
    if (hex.size() != numWords * 16) {
        throw json::JsonError(csprintf(
            "coverage bitmap has %zu hex digits, expected %u", hex.size(),
            numWords * 16));
    }
    CoverageMap m;
    for (unsigned w = 0; w < numWords; ++w) {
        std::uint64_t v = 0;
        for (unsigned i = 0; i < 16; ++i) {
            const char c = hex[w * 16 + i];
            unsigned digit;
            if (c >= '0' && c <= '9')
                digit = static_cast<unsigned>(c - '0');
            else if (c >= 'a' && c <= 'f')
                digit = static_cast<unsigned>(c - 'a') + 10;
            else if (c >= 'A' && c <= 'F')
                digit = static_cast<unsigned>(c - 'A') + 10;
            else
                throw json::JsonError(csprintf(
                    "coverage bitmap has non-hex character at offset %u",
                    w * 16 + i));
            v = (v << 4) | digit;
        }
        m.words[w] = v;
    }
    return m;
}

unsigned
coverageBucket(std::uint64_t count)
{
    if (count <= 3)
        return static_cast<unsigned>(count - 1);   // 1, 2, 3 -> 0, 1, 2
    if (count < 8)
        return 3;
    if (count < 16)
        return 4;
    if (count < 32)
        return 5;
    if (count < 128)
        return 6;
    return 7;
}

FeatureGroup
featureGroup(unsigned feature)
{
    if (feature < predBase)
        return FeatureGroup::Stall;
    if (feature < squashBase)
        return FeatureGroup::Pred;
    if (feature <= exceptionFeature)
        return FeatureGroup::Squash;
    if (feature <= sqL2Feature)
        return FeatureGroup::Sq;
    return FeatureGroup::Sct;
}

double
groupHitFraction(const CoverageMap &m, FeatureGroup g)
{
    std::size_t set = 0;
    std::size_t total = 0;
    for (unsigned f = 0; f < CoverageMap::numFeatures; ++f) {
        if (featureGroup(f) != g)
            continue;
        for (unsigned b = 0; b < CoverageMap::numBuckets; ++b) {
            ++total;
            set += m.test(f, b) ? 1 : 0;
        }
    }
    return total ? static_cast<double>(set) / static_cast<double>(total)
                 : 0.0;
}

CoverageMap
harvestCoverage(const PathEvents &ev)
{
    CoverageMap m;
    for (unsigned i = 0; i < ev.stallEdge.size(); ++i)
        fold(m, stallBase + i, ev.stallEdge[i]);
    for (unsigned i = 0; i < ev.predEdge.size(); ++i)
        fold(m, predBase + i, ev.predEdge[i]);
    for (unsigned i = 0; i < ev.squashDepth.size(); ++i)
        fold(m, squashBase + i, ev.squashDepth[i]);
    fold(m, exceptionFeature, ev.exceptionSquash);
    for (unsigned i = 0; i < ev.sqProbe.size(); ++i)
        fold(m, sqProbeBase + i, ev.sqProbe[i]);
    fold(m, sqL2Feature, ev.sqL2Forward);
    fold(m, sctGateFeature, ev.sctGateRelease);
    fold(m, lcsDirtyFeature, ev.lcsDirtyBank);
    fold(m, lcsRecomputeFeature, ev.lcsRecompute);
    return m;
}

} // namespace verify
} // namespace msp
