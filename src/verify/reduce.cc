#include "verify/reduce.hh"

#include <algorithm>
#include <set>
#include <vector>

#include "driver/campaign.hh"
#include "functional/executor.hh"
#include "verify/budget.hh"

namespace msp {
namespace verify {

namespace {

using Clock = TriageClock;

/** A half-open candidate deletion range of instruction indices. */
struct Range
{
    std::size_t lo = 0;
    std::size_t hi = 0;
    std::size_t size() const { return hi - lo; }
};

/**
 * Registers ever read by an indirect control transfer (JR rs1, RET
 * rs1). An LI of a code address into one of these is an indirect
 * branch target / link value and must be relinked across a deletion;
 * an LI of the same numeric value into any other register is plain
 * data (loop trip counts collide with low pcs all the time) and must
 * be left alone.
 */
std::set<int>
indirectSourceRegs(const Program &p)
{
    std::set<int> regs;
    for (const Instruction &in : p.code)
        if (in.info().isIndirect && in.rs1 >= 0)
            regs.insert(in.rs1);
    return regs;
}

/**
 * Candidate deletion ranges of @p p, largest first: basic blocks
 * (leaders = entry, branch targets, fallthroughs after control,
 * indirect-target LI immediates), runs of consecutive blocks, and
 * whole loop bodies including their backward branch. The whole-program
 * range is excluded; everything else is allowed — validation, not
 * construction, decides what survives. @p ind is
 * indirectSourceRegs(p) — shared with dropRange so leader detection
 * and relinking classify target immediates identically.
 */
std::vector<Range>
candidateRanges(const Program &p, const std::set<int> &ind)
{
    const std::size_t n = p.code.size();
    if (n < 2)
        return {};

    std::set<std::size_t> leaders;
    leaders.insert(0);
    leaders.insert(static_cast<std::size_t>(p.entry) % n);
    for (std::size_t pc = 0; pc < n; ++pc) {
        const Instruction &in = p.code[pc];
        const OpInfo &oi = in.info();
        if ((oi.isControl() || oi.isHalt) && pc + 1 < n)
            leaders.insert(pc + 1);
        const bool targetImm = oi.isCondBranch || oi.isUncondDirect ||
                               (in.op == Opcode::LI &&
                                ind.count(in.rd) != 0);
        if (targetImm && in.imm >= 0 &&
            static_cast<std::uint64_t>(in.imm) < n) {
            leaders.insert(static_cast<std::size_t>(in.imm));
        }
    }

    std::vector<Range> blocks;
    for (auto it = leaders.begin(); it != leaders.end(); ++it) {
        auto next = std::next(it);
        const std::size_t hi = next == leaders.end() ? n : *next;
        if (hi > *it)
            blocks.push_back({*it, hi});
    }

    std::vector<Range> ranges = blocks;
    for (std::size_t k : {std::size_t{16}, std::size_t{8},
                          std::size_t{4}, std::size_t{2}}) {
        if (blocks.size() <= k)
            continue;
        const std::size_t step = std::max<std::size_t>(1, k / 2);
        for (std::size_t i = 0; i + k <= blocks.size(); i += step)
            ranges.push_back({blocks[i].lo, blocks[i + k - 1].hi});
    }
    for (std::size_t pc = 0; pc < n; ++pc) {
        const Instruction &in = p.code[pc];
        if (in.info().isCondBranch && in.imm >= 0 &&
            static_cast<std::uint64_t>(in.imm) <= pc) {
            ranges.push_back({static_cast<std::size_t>(in.imm), pc + 1});
        }
    }

    std::sort(ranges.begin(), ranges.end(),
              [](const Range &a, const Range &b) {
                  return a.lo != b.lo ? a.lo < b.lo : a.hi < b.hi;
              });
    ranges.erase(std::unique(ranges.begin(), ranges.end(),
                             [](const Range &a, const Range &b) {
                                 return a.lo == b.lo && a.hi == b.hi;
                             }),
                 ranges.end());
    ranges.erase(std::remove_if(ranges.begin(), ranges.end(),
                                [&](const Range &r) {
                                    return r.size() == 0 ||
                                           (r.lo == 0 && r.hi == n);
                                }),
                 ranges.end());
    std::stable_sort(ranges.begin(), ranges.end(),
                     [](const Range &a, const Range &b) {
                         return a.size() != b.size()
                                    ? a.size() > b.size()
                                    : a.lo < b.lo;
                     });
    return ranges;
}

/**
 * @p p with code [lo, hi) removed and every surviving pc-valued
 * immediate relinked across the gap: branch / direct-jump targets
 * always, LI immediates only when they feed an indirect transfer.
 * Targets inside the gap land on the first surviving instruction.
 */
Program
dropRange(const Program &p, const Range &r,
          const std::set<int> &indirectRegs)
{
    const std::size_t n = p.code.size();
    const std::size_t cut = r.size();
    const auto remap = [&](std::uint64_t pc) -> std::uint64_t {
        if (pc < r.lo)
            return pc;
        if (pc >= r.hi)
            return pc - cut;
        return r.lo;
    };

    Program out = p;
    out.code.clear();
    out.code.reserve(n - cut);
    for (std::size_t pc = 0; pc < n; ++pc) {
        if (pc >= r.lo && pc < r.hi)
            continue;
        Instruction in = p.code[pc];
        const OpInfo &oi = in.info();
        const bool isTargetImm =
            oi.isCondBranch || oi.isUncondDirect ||
            (in.op == Opcode::LI && indirectRegs.count(in.rd) != 0);
        if (isTargetImm && in.imm >= 0 &&
            static_cast<std::uint64_t>(in.imm) <= n) {
            in.imm = static_cast<std::int64_t>(
                remap(static_cast<std::uint64_t>(in.imm)));
        }
        out.code.push_back(in);
    }
    out.entry = remap(p.entry);
    return out;
}

/** One evaluated candidate of a scan batch. */
struct Candidate
{
    bool evaluated = false;   ///< false when the deadline skipped it
    bool ok = false;          ///< halts and reproduces a shared kind
    std::string kind;
    Program prog;
    DiffOutcome out;
    std::uint64_t dyn = 0;    ///< functional dynamic length
};

/**
 * Validate one deletion candidate: must terminate functionally within
 * @p dynCap instructions and reproduce one of @p orig's divergence
 * kinds under diffRun.
 */
void
evaluate(Candidate &c, const Program &base, const Range &r,
         const std::set<int> &indirectRegs, const MachineConfig &config,
         const DiffOutcome &orig, const DiffOptions &dopt,
         std::uint64_t dynCap)
{
    c.evaluated = true;
    c.prog = dropRange(base, r, indirectRegs);
    if (c.prog.code.empty())
        return;
    {
        FunctionalExecutor ref(c.prog);
        ref.run(dynCap);
        if (!ref.halted())
            return;   // lost the termination guarantee: reject
        c.dyn = ref.instCount();
    }
    c.out = diffRun(c.prog, config, dopt);
    c.kind = sharedDivergenceKind(orig, c.out);
    c.ok = !c.kind.empty();
}

} // anonymous namespace

ReduceResult
reduceDivergence(const Program &prog, const MachineConfig &config,
                 const DiffOutcome &orig, const DiffOptions &dopt,
                 const ReduceOptions &opt, const DiffOutcome *baseline)
{
    const Clock::time_point deadline = triageDeadline(opt.budgetSec);

    ReduceResult res;
    res.program = prog;
    res.origStatic = prog.code.size();
    res.reducedStatic = prog.code.size();

    // Baseline: the input must halt and reproduce before a search is
    // worth anything (and its dynamic length anchors the growth cap).
    {
        FunctionalExecutor ref(prog);
        ref.run(dopt.maxInsts);
        if (!ref.halted())
            return res;
        res.origDynamic = ref.instCount();
        res.reducedDynamic = res.origDynamic;
    }
    if (baseline) {
        // The caller already diffRan this exact program (the shrinker
        // hands over its last successful attempt): no need to re-run a
        // full timing simulation just to re-derive its outcome.
        res.outcome = *baseline;
    } else {
        ++res.attempts;
        res.outcome = diffRun(prog, config, dopt);
    }
    res.kind = sharedDivergenceKind(orig, res.outcome);
    if (res.kind.empty())
        return res;
    res.reproduced = true;

    const std::uint64_t dynCap = std::min(
        dopt.maxInsts,
        res.origDynamic * std::max<std::uint64_t>(1, opt.maxGrowFactor));

    Program cur = prog;
    bool improvedAny = true;
    while (improvedAny && res.attempts < opt.maxAttempts &&
           Clock::now() < deadline) {
        improvedAny = false;
        ++res.rounds;
        const std::set<int> indirectRegs = indirectSourceRegs(cur);
        const std::vector<Range> ranges =
            candidateRanges(cur, indirectRegs);

        std::size_t cursor = 0;
        while (cursor < ranges.size() &&
               res.attempts < opt.maxAttempts &&
               Clock::now() < deadline) {
            const std::size_t room = opt.maxAttempts - res.attempts;
            const std::size_t left = ranges.size() - cursor;
            const std::size_t batch = std::min(
                {left, room,
                 static_cast<std::size_t>(driver::effectivePoolThreads(
                     opt.threads, left))});

            std::vector<Candidate> cands(batch);
            driver::parallelFor(opt.threads, batch, [&](std::size_t i) {
                if (Clock::now() >= deadline)
                    return;
                evaluate(cands[i], cur, ranges[cursor + i], indirectRegs,
                         config, orig, dopt, dynCap);
            });

            std::size_t winner = batch;
            for (std::size_t i = 0; i < batch; ++i) {
                if (cands[i].evaluated && cands[i].ok) {
                    winner = i;
                    break;
                }
            }
            // Attempts are counted as if the scan were sequential
            // (candidates past the winner are free), so the
            // maxAttempts cutoff does not depend on the thread count.
            if (winner < batch) {
                res.attempts +=
                    static_cast<unsigned>(std::min<std::size_t>(
                        winner + 1, room));
                cur = std::move(cands[winner].prog);
                res.outcome = std::move(cands[winner].out);
                res.kind = std::move(cands[winner].kind);
                res.reducedDynamic = cands[winner].dyn;
                improvedAny = true;
                break;   // block structure changed: rescan from scratch
            }
            res.attempts += static_cast<unsigned>(
                std::min<std::size_t>(batch, room));
            cursor += batch;
        }
    }

    // ---- data tier: memory geometry, then unread init words --------------
    // Block deletion shrinks code; the embedded repro also carries a
    // data footprint (memWords geometry + init_data image). Both are
    // validated the same way as deletions — a smaller address mask
    // changes where every access lands, and even an architecturally
    // inert zeroing can perturb wrong-path load values and thus timing.
    const auto validateImage = [&](Candidate &c, Program cand) {
        c.evaluated = true;
        c.prog = std::move(cand);
        FunctionalExecutor ref(c.prog);
        ref.run(dynCap);
        if (!ref.halted())
            return;
        c.dyn = ref.instCount();
        c.out = diffRun(c.prog, config, dopt);
        c.kind = sharedDivergenceKind(orig, c.out);
        c.ok = !c.kind.empty();
    };
    const auto accept = [&](Candidate &c) {
        cur = std::move(c.prog);
        res.outcome = std::move(c.out);
        res.kind = std::move(c.kind);
        res.reducedDynamic = c.dyn;
    };

    res.memWordsBefore = cur.memWords;
    while (cur.memWords >= 2 && res.attempts < opt.maxAttempts &&
           Clock::now() < deadline) {
        Program cand = cur;
        cand.memWords /= 2;   // stays a power of two
        if (cand.initData.size() > cand.memWords)
            cand.initData.resize(cand.memWords);
        ++res.attempts;
        Candidate c;
        validateImage(c, std::move(cand));
        if (!c.ok)
            break;
        accept(c);
    }
    res.memWordsAfter = cur.memWords;

    bool initShrank = false;
    if (!cur.initData.empty() && res.attempts < opt.maxAttempts &&
        Clock::now() < deadline) {
        // Words the functional run never loads cannot reach the
        // committed stream: zero them and drop the zero tail.
        std::vector<bool> read(cur.memWords, false);
        FunctionalExecutor ref(cur);
        while (!ref.halted() && ref.instCount() < dynCap) {
            const StepResult sr = ref.step();
            if (sr.isLoad) {
                read[static_cast<std::size_t>(
                    (sr.memAddr & cur.addrMask()) / wordBytes)] = true;
            }
        }
        Program cand = cur;
        std::size_t zeroed = 0;
        for (std::size_t w = 0; w < cand.initData.size(); ++w) {
            if (!read[w] && cand.initData[w] != 0) {
                cand.initData[w] = 0;
                ++zeroed;
            }
        }
        while (!cand.initData.empty() && cand.initData.back() == 0)
            cand.initData.pop_back();
        if (zeroed != 0 || cand.initData.size() != cur.initData.size()) {
            ++res.attempts;
            Candidate c;
            validateImage(c, std::move(cand));
            if (c.ok) {
                accept(c);
                res.zeroedWords = zeroed;
                initShrank = true;
            }
        }
    }
    res.dataReduced =
        res.memWordsAfter < res.memWordsBefore || initShrank;

    res.program = std::move(cur);
    res.reducedStatic = res.program.code.size();
    // The embedded image is the replay authority whenever it differs
    // from the mix-shrunk program — structurally or in its data tier.
    res.reduced = res.reducedStatic < res.origStatic || res.dataReduced;
    return res;
}

} // namespace verify
} // namespace msp
