/**
 * @file
 * DiffCampaign — fuzzed differential-verification batches on the
 * driver worker pool.
 *
 * A campaign is the cross product (mix × seed × machine config); each
 * job generates nothing itself — programs are synthesised once per
 * (mix, seed) pair, sequentially, before the pool starts, then shared
 * read-only — so outcomes are bit-identical regardless of thread count
 * (the same contract SimCampaign keeps, asserted by
 * tests/test_verify.cc).
 */

#ifndef MSPLIB_VERIFY_DIFF_CAMPAIGN_HH
#define MSPLIB_VERIFY_DIFF_CAMPAIGN_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/machine.hh"
#include "verify/fuzzer.hh"
#include "verify/oracle.hh"

namespace msp {

namespace driver { class CampaignState; }

namespace verify {

/** One differential job: one generated program on one machine. */
struct DiffJob
{
    FuzzMix mix;
    std::uint64_t seed = 1;        ///< program-generation seed
    MachineConfig config;
    std::uint64_t maxInsts = 1u << 20;
    std::uint64_t maxCycles = ~std::uint64_t{0};

    /** Mid-run snapshot-compare cadence (see DiffOptions); 0 = off. */
    std::uint64_t snapshotEvery = 0;

    /** Pre-built program; filled by run() (shared across configs). */
    std::shared_ptr<const Program> program;
};

/** Called after each job finishes (under a lock, so it may print). */
using DiffProgressFn =
    std::function<void(const DiffOutcome &, std::size_t done,
                       std::size_t total)>;

/** A batch of differential runs on the driver worker pool. */
class DiffCampaign
{
  public:
    /** @param threads Worker count; 0 = one per hardware thread. */
    explicit DiffCampaign(unsigned threads = 0);

    /** Append one job; returns its submission index. */
    std::size_t add(DiffJob job);

    /**
     * Append the full sweep mixes × seeds × configs. Job seeds are
     * derived deterministically from @p baseSeed with driver::jobSeed,
     * so sweep i of any base always fuzzes the same programs.
     */
    void addSweep(const std::vector<FuzzMix> &mixes, unsigned seeds,
                  std::uint64_t baseSeed,
                  const std::vector<MachineConfig> &configs,
                  std::uint64_t maxInsts = 1u << 20);

    std::size_t size() const { return jobs.size(); }
    const std::vector<DiffJob> &pending() const { return jobs; }

    /** Effective worker count for size() jobs. */
    unsigned effectiveThreads() const;

    /** Apply a snapshot-compare cadence to every job (0 = off). */
    void setSnapshotEvery(std::uint64_t every);

    /**
     * Keep only shard @p shard of @p shards. Unlike the per-job sim
     * sharding, the unit here is the (mix, seed) *group* — the
     * contiguous run of configs fuzzing one program — so
     * applyTimingInvariant's ideal/16-SP pairs always land in the same
     * shard and a merged report carries the same timing divergences as
     * the unsharded run. Surviving jobs remember their global index.
     */
    void restrictToShard(unsigned shard, unsigned shards);

    /**
     * Checkpoint per-job completion through @p st (not owned; may be
     * null to detach). run() skips jobs whose outcomes the backend
     * restored and records each fresh, non-skipped completion —
     * skipped outcomes are never persisted, so a resume re-runs them.
     */
    void attachState(driver::CampaignState *st) { state = st; }

    /**
     * Stop starting new jobs once any job diverges (already-running
     * jobs finish; unstarted jobs come back with skipped=true). For CI
     * bisection loops; trades the full sweep for a fast first answer.
     */
    void setFailFast(bool on) { failFast = on; }

    /**
     * Wall-clock budget: jobs not *started* within @p seconds of run()
     * come back with skipped=true. 0 disables the budget.
     */
    void setBudgetSec(double seconds) { budgetSec = seconds; }

    /**
     * Harvest each run's path coverage into DiffOutcome::coverage
     * (DiffOptions::collectCoverage). Observation only — executed
     * outcomes stay bit-identical with it on or off.
     */
    void setCollectCoverage(bool on) { collectCoverage = on; }

    /**
     * Generate every distinct (mix, seed) program, fan the jobs across
     * the pool, and return outcomes in submission order.
     *
     * Note fail-fast and budget make the *set of skipped jobs* depend
     * on scheduling; executed jobs still produce bit-identical
     * outcomes for any thread count.
     */
    std::vector<DiffOutcome> run(const DiffProgressFn &progress = nullptr);

  private:
    unsigned requestedThreads;
    bool failFast = false;
    double budgetSec = 0.0;
    bool collectCoverage = false;
    std::vector<DiffJob> jobs;
    std::vector<std::uint64_t> globalIndex;  ///< empty = identity
    driver::CampaignState *state = nullptr;
};

/**
 * Stable identity hash of one differential job: the full serialised
 * fuzz mix, seed, budgets, snapshot cadence and machine spec — the
 * checkpoint-record identity (see driver::simJobKey for the contract).
 */
std::string diffJobKey(const DiffJob &job);

/**
 * Coarse fuzzed timing invariant: the ideal MSP (infinite banks) can
 * never be meaningfully slower than a finite 16-SP machine on the same
 * program — it strictly dominates it in resources. For every fuzzed
 * (mix, seed) program where the sweep ran both machines cleanly,
 * assert idealIpc >= 16spIpc * (1 - slack) and append a "timing"
 * divergence to the ideal machine's outcome on violation (a perf
 * regression the golden fixtures' curated workloads can miss).
 *
 * Deliberately coarse: the machines differ in frontend depth (the
 * arbitration stage), so branch-resolution timing — and with it
 * predictor state — legitimately diverges; on short programs a
 * handful of extra mispredicts swings IPC by >10%. Hence the
 * @p minCommits floor (tiny programs are skipped) and the wide
 * default @p slack, both calibrated against a clean 100-seed sweep
 * whose worst legitimate ratio was 0.90 at >=1000 commits.
 *
 * @p jobs and @p outcomes are parallel arrays in submission order
 * (DiffCampaign::pending() / run()). Returns the violation count.
 */
std::size_t applyTimingInvariant(const std::vector<DiffJob> &jobs,
                                 std::vector<DiffOutcome> &outcomes,
                                 double slack = 0.15,
                                 std::uint64_t minCommits = 1000);

} // namespace verify
} // namespace msp

#endif // MSPLIB_VERIFY_DIFF_CAMPAIGN_HH
