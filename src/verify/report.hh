/**
 * @file
 * Structured JSON serialisation of differential-verification outcomes.
 *
 * The report carries every job (so a clean sweep is still auditable:
 * seeds, stream hashes, commit counts) plus the full divergence list
 * of any failing job, in a shape plotting/triage scripts can consume.
 */

#ifndef MSPLIB_VERIFY_REPORT_HH
#define MSPLIB_VERIFY_REPORT_HH

#include <string>
#include <vector>

#include "verify/oracle.hh"

namespace msp {
namespace verify {

/**
 * Serialise outcomes as one JSON document:
 * {"verify": {"jobs": N, "divergent": M, "results": [{...}, ...]}}.
 */
std::string toJson(const std::vector<DiffOutcome> &outcomes);

/** Total divergences across @p outcomes. */
std::size_t countDivergences(const std::vector<DiffOutcome> &outcomes);

} // namespace verify
} // namespace msp

#endif // MSPLIB_VERIFY_REPORT_HH
