/**
 * @file
 * Structured JSON serialisation of differential-verification outcomes.
 *
 * The report carries every job (so a clean sweep is still auditable:
 * seeds, stream hashes, commit counts), the full divergence list of any
 * failing job — including the snapshot-localised commit window — and a
 * "repros" array of shrunk reproducers (seed + reduced fuzz mix +
 * machine preset) that parseRepros() reads back so
 * `msp_sim verify --repro <report>` can replay a failure verbatim.
 */

#ifndef MSPLIB_VERIFY_REPORT_HH
#define MSPLIB_VERIFY_REPORT_HH

#include <string>
#include <vector>

#include "verify/oracle.hh"
#include "verify/shrink.hh"

namespace msp {
namespace verify {

/**
 * Campaign-level coverage summary for toJson (default: disabled, in
 * which case the report is byte-identical to the pre-coverage schema).
 */
struct CoverageReport
{
    bool enabled = false;           ///< emit the "coverage" object at all
    unsigned waves = 1;             ///< campaign waves run
    std::uint64_t featuresHit = 0;  ///< features with >=1 bucket hit
    std::uint64_t bitsSet = 0;      ///< aggregate (feature, bucket) bits
    std::uint64_t novelRuns = 0;    ///< runs admitted to the corpus
    std::uint64_t corpusEntries = 0;///< corpus size after this campaign

    /** Cumulative aggregate bits after each wave (strictly growing
     *  iff every wave reached something new). */
    std::vector<std::uint64_t> waveBits;
};

/**
 * Serialise outcomes (plus any shrink results) as one JSON document:
 * {"verify": {"jobs": N, "divergent": M, "skipped": K,
 *             "results": [...], "repros": [...]}}. With
 * @p coverage.enabled, a "coverage" summary object and per-row
 * "coverage" objects (features hit, new bits, novelty) are added, and
 * repros folded by dedupShrinks carry their "duplicates" count.
 */
std::string toJson(const std::vector<DiffOutcome> &outcomes,
                   const std::vector<ShrinkResult> &shrinks = {},
                   const CoverageReport &coverage = {});

/**
 * Parse the "repros" array back out of a toJson() document (the
 * `--repro` replay path). Only the schema toJson() emits is supported;
 * a document without a repros array parses as empty. Each entry's
 * embedded "machine" spec (the replay authority — any machine replays,
 * preset or not) parses through sim/spec.hh; an unparseable spec — or
 * an unparseable embedded "program" image — throws SpecError rather
 * than silently falling back to something replayable-but-different.
 * Optional fields (snapshot_every, bad_window, first_bad_commit,
 * timed_out, program) may be absent; absence means "off"/"unknown".
 */
std::vector<ReproSpec> parseRepros(const std::string &json);

/**
 * Serialise one executable image as a self-contained JSON object
 * (name, geometry, init data as hex words, code as
 * ["mnemonic", rd, rs1, rs2, imm] tuples) — the "program" embedding of
 * structurally reduced reproducers, which cannot be regenerated from
 * (seed, mix).
 */
std::string programToJson(const Program &prog);

/**
 * Parse a programToJson() document back into a bit-identical image.
 * @throws SpecError naming the defect on malformed documents (unknown
 * mnemonic, missing code, non-power-of-two memory geometry).
 */
Program programFromJson(const std::string &json);

/**
 * One FuzzMix as a flat JSON object (the schema the repro parser reads
 * back). Also the mix component of diffJobKey's identity string.
 */
std::string mixToJson(const FuzzMix &m);

/**
 * Parse a mixToJson() object back into a FuzzMix (absent keys keep
 * their defaults). Shared by the repro parser and the corpus loader.
 */
FuzzMix mixFromJson(const std::string &obj);

/**
 * Serialise / parse one DiffOutcome as a checkpoint payload
 * (driver::CampaignState). Integer counters, flags and escaped strings
 * only — the round trip is exact, so a report rendered from restored
 * outcomes is byte-identical to one rendered from fresh outcomes.
 * Pre-triage state only: "timing" divergences (applyTimingInvariant)
 * and exact bisection results (shrinkFailures) are recomputed on
 * resume, not persisted.
 */
std::string outcomeToJson(const DiffOutcome &o);
DiffOutcome outcomeFromJson(const std::string &json);

/** Total divergences across @p outcomes. */
std::size_t countDivergences(const std::vector<DiffOutcome> &outcomes);

/** Jobs skipped (fail-fast / budget) across @p outcomes. */
std::size_t countSkipped(const std::vector<DiffOutcome> &outcomes);

} // namespace verify
} // namespace msp

#endif // MSPLIB_VERIFY_REPORT_HH
