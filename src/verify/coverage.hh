/**
 * @file
 * Path-coverage bitmap for the coverage-guided fuzzer.
 *
 * Each differential run harvests the core's PathEvents counters (stall
 * transitions, predictor outcome edges, squash depths, store-queue
 * forwarding cases, SCT/LCS activity) into a compact (feature, bucket)
 * bitset: one feature per counter, AFL-style log2 hit-count classes as
 * buckets. A run that only pushes a counter from 5 to 6 adds nothing; a
 * run that first crosses a class boundary (or first touches a feature)
 * sets a new bit — exactly the novelty signal the corpus keeps.
 *
 * Feature index layout (stable; documented in the README and relied on
 * by the corpus JSONL format):
 *
 *   [ 0, 49)  rename-stall transitions, prev * 7 + cur (StallReason)
 *   [49, 65)  predictor edges, predTaken*8 + taken*4 + misp*2 + lowConf
 *   [65, 73)  squash-depth log2 buckets
 *    73       exception-path squashes
 *   [74, 78)  SQ probe outcomes (None / Forward / Stall / Unknown)
 *    78       SQ forwards served from the L2 region
 *    79       SCT bank release gates opened
 *    80       LCS dirty banks drained
 *    81       LCS recomputations with dirty banks
 */

#ifndef MSPLIB_VERIFY_COVERAGE_HH
#define MSPLIB_VERIFY_COVERAGE_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>

namespace msp {

struct PathEvents;

namespace verify {

/** Which tuner knob family a feature index belongs to. */
enum class FeatureGroup { Stall, Pred, Squash, Sq, Sct };

/** Compact (feature, bucket) path-coverage bitset. */
struct CoverageMap
{
    static constexpr unsigned numFeatures = 82;
    static constexpr unsigned numBuckets = 8;
    static constexpr unsigned numBits = numFeatures * numBuckets;
    static constexpr unsigned numWords = (numBits + 63) / 64;

    std::array<std::uint64_t, numWords> words{};

    void
    set(unsigned feature, unsigned bucket)
    {
        const unsigned bit = feature * numBuckets + bucket;
        words[bit / 64] |= std::uint64_t{1} << (bit % 64);
    }

    bool
    test(unsigned feature, unsigned bucket) const
    {
        const unsigned bit = feature * numBuckets + bucket;
        return (words[bit / 64] >> (bit % 64)) & 1;
    }

    /** Fold @p m into this map (set union; order-independent). */
    void
    orWith(const CoverageMap &m)
    {
        for (unsigned w = 0; w < numWords; ++w)
            words[w] |= m.words[w];
    }

    /** Total (feature, bucket) bits set. */
    std::size_t bitsSet() const;

    /** Features with at least one bucket bit set. */
    std::size_t featuresHit() const;

    /** Bits set here that @p base does not have (the novelty count). */
    std::size_t newBitsVs(const CoverageMap &base) const;

    bool
    empty() const
    {
        for (const std::uint64_t w : words)
            if (w)
                return false;
        return true;
    }

    bool operator==(const CoverageMap &) const = default;

    /** Fixed-length lowercase hex rendering (numWords * 16 chars). */
    std::string toHex() const;

    /**
     * Parse a toHex() rendering.
     * @throws json::JsonError on wrong length or non-hex characters.
     */
    static CoverageMap fromHex(const std::string &hex);
};

/**
 * AFL-style log2 hit class of a counter value: 1 -> 0, 2 -> 1, 3 -> 2,
 * 4..7 -> 3, 8..15 -> 4, 16..31 -> 5, 32..127 -> 6, 128+ -> 7.
 * Precondition: @p count > 0 (a zero counter sets no bit at all).
 */
unsigned coverageBucket(std::uint64_t count);

/** Tuner knob family of feature index @p feature (see layout above). */
FeatureGroup featureGroup(unsigned feature);

/** Fraction of @p g's (feature, bucket) bits that @p m has set. */
double groupHitFraction(const CoverageMap &m, FeatureGroup g);

/** Fold one run's PathEvents counters into a coverage map. */
CoverageMap harvestCoverage(const PathEvents &ev);

} // namespace verify
} // namespace msp

#endif // MSPLIB_VERIFY_COVERAGE_HH
