/**
 * @file
 * Shared wall-clock budget plumbing of the triage tiers.
 *
 * Shrinking, bisection and reduction all bound themselves by the same
 * convention: a budgetSec of 0 means "unbounded" (encoded as a
 * deadline ~30 years out so every comparison site can just test
 * against the deadline), and a stage handed the remainder of a shared
 * deadline never receives 0 by accident — an exhausted budget yields a
 * token epsilon instead, because 0 would *unbound* the stage.
 */

#ifndef MSPLIB_VERIFY_BUDGET_HH
#define MSPLIB_VERIFY_BUDGET_HH

#include <algorithm>
#include <chrono>

namespace msp {
namespace verify {

using TriageClock = std::chrono::steady_clock;

/** Deadline @p budgetSec from now; 0 = effectively never. */
inline TriageClock::time_point
triageDeadline(double budgetSec)
{
    return TriageClock::now() +
           std::chrono::duration_cast<TriageClock::duration>(
               std::chrono::duration<double>(
                   budgetSec > 0 ? budgetSec : 1e9));
}

/**
 * Seconds left until @p deadline as a budgetSec value for a sub-stage.
 * When no budget was set (@p budgetSec <= 0) returns 0 ("unbounded");
 * an expired deadline yields a token epsilon, never 0.
 */
inline double
remainingBudget(double budgetSec, TriageClock::time_point deadline)
{
    if (budgetSec <= 0)
        return 0.0;
    const std::chrono::duration<double> left =
        deadline - TriageClock::now();
    return std::max(1e-3, left.count());
}

} // namespace verify
} // namespace msp

#endif // MSPLIB_VERIFY_BUDGET_HH
