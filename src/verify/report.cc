#include "verify/report.hh"

#include "common/logging.hh"
#include "driver/report.hh"

namespace msp {
namespace verify {

std::size_t
countDivergences(const std::vector<DiffOutcome> &outcomes)
{
    std::size_t n = 0;
    for (const DiffOutcome &o : outcomes)
        n += o.divergences.size();
    return n;
}

std::string
toJson(const std::vector<DiffOutcome> &outcomes)
{
    using driver::jsonEscape;

    std::size_t divergent = 0;
    for (const DiffOutcome &o : outcomes)
        divergent += o.ok() ? 0 : 1;

    std::string out = "{\n  \"verify\": {\n";
    out += csprintf("    \"jobs\": %zu,\n", outcomes.size());
    out += csprintf("    \"divergent\": %zu,\n", divergent);
    out += "    \"results\": [";
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
        const DiffOutcome &o = outcomes[i];
        out += i ? ",\n      {" : "\n      {";
        out += csprintf("\"mix\": \"%s\", ", jsonEscape(o.mix).c_str());
        out += csprintf("\"seed\": %llu, ",
                        static_cast<unsigned long long>(o.seed));
        out += csprintf("\"config\": \"%s\", ",
                        jsonEscape(o.config).c_str());
        out += csprintf("\"workload\": \"%s\", ",
                        jsonEscape(o.workload).c_str());
        out += csprintf("\"committed_core\": %llu, ",
                        static_cast<unsigned long long>(o.committedCore));
        out += csprintf("\"committed_ref\": %llu, ",
                        static_cast<unsigned long long>(o.committedRef));
        out += csprintf("\"cycles\": %llu, ",
                        static_cast<unsigned long long>(o.cycles));
        out += csprintf("\"stream_hash\": \"%016llx\", ",
                        static_cast<unsigned long long>(o.streamHash));
        out += "\"divergences\": [";
        for (std::size_t d = 0; d < o.divergences.size(); ++d) {
            out += d ? ", {" : "{";
            out += csprintf("\"kind\": \"%s\", \"detail\": \"%s\"}",
                            jsonEscape(o.divergences[d].kind).c_str(),
                            jsonEscape(o.divergences[d].detail).c_str());
        }
        out += "]}";
    }
    out += "\n    ]\n  }\n}\n";
    return out;
}

} // namespace verify
} // namespace msp
