#include "verify/report.hh"

#include <cerrno>
#include <cstdlib>
#include <memory>

#include "common/json.hh"
#include "common/logging.hh"
#include "common/parse.hh"
#include "driver/report.hh"
#include "sim/spec.hh"

namespace msp {
namespace verify {

// Extraction runs on the shared primitives (common/json.hh): one
// escape/unescape pair for the whole tree, so every label this file
// writes reads back byte-identical. (The historical local reader
// decoded "\n" to a literal 'n'.)
using json::balancedSlice;
using json::getNum;
using json::getStr;
using json::getU64;
using json::innerArrays;
using json::innerStrings;
using json::valuePos;

std::string
mixToJson(const FuzzMix &m)
{
    std::string out = "{";
    out += csprintf("\"name\": \"%s\", ",
                    driver::jsonEscape(m.name).c_str());
    out += csprintf("\"alu\": %.17g, \"fp\": %.17g, \"load\": %.17g, "
                    "\"store\": %.17g, ",
                    m.weights.alu, m.weights.fp, m.weights.load,
                    m.weights.store);
    out += csprintf("\"blocks_min\": %u, \"blocks_max\": %u, "
                    "\"seg_min\": %u, \"seg_max\": %u, ",
                    m.blocksMin, m.blocksMax, m.segMin, m.segMax);
    out += csprintf("\"loop_prob\": %.17g, \"max_loop_depth\": %u, "
                    "\"trip_min\": %u, \"trip_max\": %u, ",
                    m.loopProb, m.maxLoopDepth, m.tripMin, m.tripMax);
    out += csprintf("\"cond_prob\": %.17g, \"call_prob\": %.17g, "
                    "\"indirect_prob\": %.17g, \"trap_prob\": %.17g, ",
                    m.condProb, m.callProb, m.indirectProb, m.trapProb);
    out += csprintf("\"mem_words\": %u, \"hot_words\": %u, "
                    "\"hot_prob\": %.17g, \"fp_edge_prob\": %.17g, ",
                    m.memWords, m.hotWords, m.hotProb, m.fpEdgeProb);
    out += csprintf("\"target_dynamic\": %llu}",
                    static_cast<unsigned long long>(m.targetDynamic));
    return out;
}

FuzzMix
mixFromJson(const std::string &obj)
{
    FuzzMix m;
    m.name = getStr(obj, "name", m.name);
    m.weights.alu = getNum(obj, "alu", m.weights.alu);
    m.weights.fp = getNum(obj, "fp", m.weights.fp);
    m.weights.load = getNum(obj, "load", m.weights.load);
    m.weights.store = getNum(obj, "store", m.weights.store);
    m.blocksMin = static_cast<unsigned>(
        getU64(obj, "blocks_min", m.blocksMin));
    m.blocksMax = static_cast<unsigned>(
        getU64(obj, "blocks_max", m.blocksMax));
    m.segMin = static_cast<unsigned>(getU64(obj, "seg_min", m.segMin));
    m.segMax = static_cast<unsigned>(getU64(obj, "seg_max", m.segMax));
    m.loopProb = getNum(obj, "loop_prob", m.loopProb);
    m.maxLoopDepth = static_cast<unsigned>(
        getU64(obj, "max_loop_depth", m.maxLoopDepth));
    m.tripMin = static_cast<unsigned>(getU64(obj, "trip_min", m.tripMin));
    m.tripMax = static_cast<unsigned>(getU64(obj, "trip_max", m.tripMax));
    m.condProb = getNum(obj, "cond_prob", m.condProb);
    m.callProb = getNum(obj, "call_prob", m.callProb);
    m.indirectProb = getNum(obj, "indirect_prob", m.indirectProb);
    m.trapProb = getNum(obj, "trap_prob", m.trapProb);
    m.memWords = static_cast<unsigned>(
        getU64(obj, "mem_words", m.memWords));
    m.hotWords = static_cast<unsigned>(
        getU64(obj, "hot_words", m.hotWords));
    m.hotProb = getNum(obj, "hot_prob", m.hotProb);
    m.fpEdgeProb = getNum(obj, "fp_edge_prob", m.fpEdgeProb);
    m.targetDynamic = getU64(obj, "target_dynamic", m.targetDynamic);
    return m;
}

namespace {

/** Opcode whose mnemonic is @p name; false when unknown. */
bool
opcodeByName(const std::string &name, Opcode &out)
{
    for (int i = 0; i < static_cast<int>(Opcode::NumOpcodes); ++i) {
        if (name == opName(static_cast<Opcode>(i))) {
            out = static_cast<Opcode>(i);
            return true;
        }
    }
    return false;
}

/** One ["mnemonic", rd, rs1, rs2, imm] tuple. */
Instruction
parseCodeEntry(const std::string &e)
{
    const std::size_t q1 = e.find('"');
    const std::size_t q2 =
        q1 == std::string::npos ? std::string::npos : e.find('"', q1 + 1);
    if (q2 == std::string::npos)
        throw SpecError("program code entry without a mnemonic: " + e);
    const std::string mn = e.substr(q1 + 1, q2 - q1 - 1);
    Instruction in;
    if (!opcodeByName(mn, in.op))
        throw SpecError("unknown opcode mnemonic '" + mn + "'");
    std::int64_t v[4] = {0, 0, 0, 0};
    std::size_t p = q2 + 1;
    for (int i = 0; i < 4; ++i) {
        p = e.find(',', p);
        if (p == std::string::npos)
            throw SpecError("short program code entry: " + e);
        ++p;
        while (p < e.size() && e[p] == ' ')
            ++p;
        errno = 0;
        char *end = nullptr;
        v[i] = std::strtoll(e.c_str() + p, &end, 10);
        if (errno == ERANGE)
            throw SpecError("immediate overflows in code entry: " + e);
        // The number must run up to the next delimiter: "1junk" would
        // otherwise silently parse as 1 and replay a different program.
        // The last operand must be followed by the closing bracket —
        // a fifth field would be silently dropped otherwise.
        std::size_t q = static_cast<std::size_t>(end - e.c_str());
        if (q == p)
            throw SpecError("non-numeric operand in code entry: " + e);
        while (q < e.size() && e[q] == ' ')
            ++q;
        const char delim = i < 3 ? ',' : ']';
        if (q >= e.size() || e[q] != delim)
            throw SpecError("trailing garbage in code entry: " + e);
        p = q;
    }
    // Operands must fail loudly, not narrow: an int8_t cast would wrap
    // ["add", 300, ...] to r44 and silently replay a different program.
    for (int i = 0; i < 3; ++i) {
        if (v[i] < -1 || v[i] >= numLogRegs / 2) {
            throw SpecError(csprintf("register operand %lld out of "
                                     "range in code entry: %s",
                                     static_cast<long long>(v[i]),
                                     e.c_str()));
        }
    }
    in.rd = static_cast<std::int8_t>(v[0]);
    in.rs1 = static_cast<std::int8_t>(v[1]);
    in.rs2 = static_cast<std::int8_t>(v[2]);
    in.imm = v[3];
    return in;
}

} // anonymous namespace

std::string
programToJson(const Program &prog)
{
    std::string out = "{";
    out += csprintf("\"name\": \"%s\", ",
                    driver::jsonEscape(prog.name).c_str());
    out += csprintf("\"mem_words\": %zu, ", prog.memWords);
    out += csprintf("\"entry\": %llu, ",
                    static_cast<unsigned long long>(prog.entry));
    out += csprintf("\"code_base\": %llu, ",
                    static_cast<unsigned long long>(prog.codeBase));
    out += "\"init_data\": [";
    for (std::size_t i = 0; i < prog.initData.size(); ++i) {
        out += csprintf("%s\"%016llx\"", i ? ", " : "",
                        static_cast<unsigned long long>(
                            prog.initData[i]));
    }
    out += "], \"code\": [";
    for (std::size_t i = 0; i < prog.code.size(); ++i) {
        const Instruction &in = prog.code[i];
        out += csprintf("%s[\"%s\", %d, %d, %d, %lld]",
                        i ? ", " : "", opName(in.op),
                        static_cast<int>(in.rd),
                        static_cast<int>(in.rs1),
                        static_cast<int>(in.rs2),
                        static_cast<long long>(in.imm));
    }
    out += "]}";
    return out;
}

Program
programFromJson(const std::string &json)
{
    Program prog;
    prog.name = getStr(json, "name");
    prog.memWords =
        static_cast<std::size_t>(getU64(json, "mem_words", prog.memWords));
    if (prog.memWords == 0 ||
        (prog.memWords & (prog.memWords - 1)) != 0) {
        throw SpecError(csprintf("program mem_words %zu is not a power "
                                 "of two", prog.memWords));
    }
    // Geometry must fail loudly here, not as a bad_alloc (or worse)
    // when ArchState materialises it: 2^24 words = 128 MiB is far
    // beyond anything the fuzzer emits.
    if (prog.memWords > (std::size_t{1} << 24)) {
        throw SpecError(csprintf("program mem_words %zu is implausibly "
                                 "large", prog.memWords));
    }
    prog.entry = getU64(json, "entry", 0);
    prog.codeBase = getU64(json, "code_base", prog.codeBase);

    const std::size_t dataAt = valuePos(json, "init_data");
    if (dataAt != std::string::npos && json[dataAt] == '[') {
        for (const std::string &w :
             innerStrings(balancedSlice(json, dataAt))) {
            char *end = nullptr;
            const std::uint64_t word =
                std::strtoull(w.c_str(), &end, 16);
            if (w.empty() || end != w.c_str() + w.size()) {
                throw SpecError("non-hexadecimal init_data word '" + w +
                                "'");
            }
            prog.initData.push_back(word);
        }
    }
    // ArchState copies initData into a mem_words-sized image: excess
    // words would write out of bounds.
    if (prog.initData.size() > prog.memWords) {
        throw SpecError(csprintf("program init_data (%zu words) "
                                 "exceeds mem_words (%zu)",
                                 prog.initData.size(), prog.memWords));
    }

    const std::size_t codeAt = valuePos(json, "code");
    if (codeAt == std::string::npos || json[codeAt] != '[')
        throw SpecError("embedded program carries no code array");
    for (const std::string &e : innerArrays(balancedSlice(json, codeAt)))
        prog.code.push_back(parseCodeEntry(e));
    if (prog.code.empty())
        throw SpecError("embedded program code array is empty");
    return prog;
}

std::size_t
countDivergences(const std::vector<DiffOutcome> &outcomes)
{
    std::size_t n = 0;
    for (const DiffOutcome &o : outcomes)
        n += o.divergences.size();
    return n;
}

std::size_t
countSkipped(const std::vector<DiffOutcome> &outcomes)
{
    std::size_t n = 0;
    for (const DiffOutcome &o : outcomes)
        n += o.skipped ? 1 : 0;
    return n;
}

std::string
toJson(const std::vector<DiffOutcome> &outcomes,
       const std::vector<ShrinkResult> &shrinks,
       const CoverageReport &coverage)
{
    using driver::jsonEscape;

    std::size_t divergent = 0;
    for (const DiffOutcome &o : outcomes)
        divergent += o.ok() ? 0 : 1;
    std::size_t shrinkTimedOut = 0;
    for (const ShrinkResult &s : shrinks)
        shrinkTimedOut += s.timedOut ? 1 : 0;

    std::string out = "{\n  \"verify\": {\n";
    out += csprintf("    \"jobs\": %zu,\n", outcomes.size());
    out += csprintf("    \"divergent\": %zu,\n", divergent);
    out += csprintf("    \"skipped\": %zu,\n", countSkipped(outcomes));
    if (shrinkTimedOut)
        out += csprintf("    \"shrink_timed_out\": %zu,\n",
                        shrinkTimedOut);
    if (coverage.enabled) {
        out += csprintf("    \"coverage\": {\"features\": %u, "
                        "\"buckets\": %u, \"features_hit\": %llu, "
                        "\"bits_set\": %llu, \"novel_runs\": %llu, "
                        "\"corpus_entries\": %llu, \"waves\": %u, "
                        "\"wave_bits\": [",
                        CoverageMap::numFeatures, CoverageMap::numBuckets,
                        static_cast<unsigned long long>(
                            coverage.featuresHit),
                        static_cast<unsigned long long>(coverage.bitsSet),
                        static_cast<unsigned long long>(
                            coverage.novelRuns),
                        static_cast<unsigned long long>(
                            coverage.corpusEntries),
                        coverage.waves);
        for (std::size_t w = 0; w < coverage.waveBits.size(); ++w) {
            out += csprintf("%s%llu", w ? ", " : "",
                            static_cast<unsigned long long>(
                                coverage.waveBits[w]));
        }
        out += "]},\n";
    }
    out += "    \"results\": [";
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
        const DiffOutcome &o = outcomes[i];
        out += i ? ",\n      {" : "\n      {";
        // The global submission index leads every row: it is the merge
        // key driver::mergeReports orders shard rows by.
        out += csprintf("\"index\": %llu, ",
                        static_cast<unsigned long long>(o.index));
        out += csprintf("\"mix\": \"%s\", ", jsonEscape(o.mix).c_str());
        out += csprintf("\"seed\": %llu, ",
                        static_cast<unsigned long long>(o.seed));
        out += csprintf("\"config\": \"%s\", ",
                        jsonEscape(o.config).c_str());
        out += csprintf("\"workload\": \"%s\", ",
                        jsonEscape(o.workload).c_str());
        if (o.skipped)
            out += "\"skipped\": true, ";
        out += csprintf("\"committed_core\": %llu, ",
                        static_cast<unsigned long long>(o.committedCore));
        out += csprintf("\"committed_ref\": %llu, ",
                        static_cast<unsigned long long>(o.committedRef));
        out += csprintf("\"cycles\": %llu, ",
                        static_cast<unsigned long long>(o.cycles));
        out += csprintf("\"stream_hash\": \"%016llx\", ",
                        static_cast<unsigned long long>(o.streamHash));
        if (o.snapshotEvery) {
            out += csprintf("\"snapshot_every\": %llu, ",
                            static_cast<unsigned long long>(
                                o.snapshotEvery));
        }
        // Localisation fields only when localisation actually ran and
        // fired: a meaningless "bad_window": [0, 0) on a run without
        // snapshots would read as "divergent at commit 0".
        if (o.localized) {
            out += csprintf("\"bad_window\": [%llu, %llu], ",
                            static_cast<unsigned long long>(o.badWindowLo),
                            static_cast<unsigned long long>(
                                o.badWindowHi));
        }
        if (o.exactLocalized) {
            out += csprintf("\"first_bad_commit\": %llu, ",
                            static_cast<unsigned long long>(
                                o.firstBadCommit));
        }
        // Coverage only when harvested: a fixed {"hit": 0} on plain
        // runs would read as "this run touched nothing".
        if (o.hasCoverage) {
            out += csprintf("\"coverage\": {\"hit\": %zu, "
                            "\"total\": %u, \"new_bits\": %llu, "
                            "\"novel\": %s}, ",
                            o.coverage.featuresHit(),
                            CoverageMap::numFeatures,
                            static_cast<unsigned long long>(o.covNewBits),
                            o.covNovel ? "true" : "false");
        }
        out += "\"divergences\": [";
        for (std::size_t d = 0; d < o.divergences.size(); ++d) {
            out += d ? ", {" : "{";
            out += csprintf("\"kind\": \"%s\", \"detail\": \"%s\"}",
                            jsonEscape(o.divergences[d].kind).c_str(),
                            jsonEscape(o.divergences[d].detail).c_str());
        }
        out += "]}";
    }
    out += "\n    ],\n";
    out += "    \"repros\": [";
    for (std::size_t i = 0; i < shrinks.size(); ++i) {
        const ShrinkResult &s = shrinks[i];
        out += i ? ",\n      {" : "\n      {";
        // Global index of the job this repro shrinks (jobIndex is the
        // campaign-local submission index; the outcome row carries the
        // sharded campaign's global one).
        out += csprintf("\"index\": %llu, ",
                        static_cast<unsigned long long>(
                            s.jobIndex < outcomes.size()
                                ? outcomes[s.jobIndex].index
                                : s.jobIndex));
        out += csprintf("\"kind\": \"%s\", ",
                        jsonEscape(s.repro.kind).c_str());
        out += csprintf("\"seed\": %llu, ",
                        static_cast<unsigned long long>(s.repro.seed));
        out += csprintf("\"preset\": \"%s\", ",
                        jsonEscape(s.repro.preset).c_str());
        out += csprintf("\"predictor\": \"%s\", ",
                        jsonEscape(s.repro.predictor).c_str());
        // The complete serialised spec (keys in registration order) is
        // the replay authority; preset/predictor above are cosmetic.
        if (s.repro.hasMachine)
            out += "\"machine\": " + specToJson(s.repro.machine) + ", ";
        out += csprintf("\"max_insts\": %llu, ",
                        static_cast<unsigned long long>(
                            s.repro.maxInsts));
        // Omitted when localisation was off: an explicit 0 invites
        // "replay with cadence 0" readings and stale-field drift.
        if (s.repro.snapshotEvery) {
            out += csprintf("\"snapshot_every\": %llu, ",
                            static_cast<unsigned long long>(
                                s.repro.snapshotEvery));
        }
        if (s.repro.firstBadCommit) {
            out += csprintf("\"first_bad_commit\": %llu, ",
                            static_cast<unsigned long long>(
                                s.repro.firstBadCommit));
        }
        if (s.timedOut)
            out += "\"timed_out\": true, ";
        // Only for actual folds: "duplicates": 1 on every repro would
        // just restate "this row exists".
        if (s.duplicates >= 2) {
            out += csprintf("\"duplicates\": %llu, ",
                            static_cast<unsigned long long>(
                                s.duplicates));
        }
        out += csprintf("\"reproduced\": %s, \"shrunk\": %s, ",
                        s.reproduced ? "true" : "false",
                        s.shrunk ? "true" : "false");
        out += csprintf("\"attempts\": %u, ", s.attempts);
        out += csprintf("\"orig_dynamic\": %llu, "
                        "\"shrunk_dynamic\": %llu, ",
                        static_cast<unsigned long long>(s.origDynamic),
                        static_cast<unsigned long long>(s.shrunkDynamic));
        out += csprintf("\"orig_static\": %llu, "
                        "\"shrunk_static\": %llu, ",
                        static_cast<unsigned long long>(s.origStatic),
                        static_cast<unsigned long long>(s.shrunkStatic));
        if (s.reduced) {
            out += csprintf("\"reduced\": true, "
                            "\"reduced_static\": %llu, "
                            "\"reduced_dynamic\": %llu, ",
                            static_cast<unsigned long long>(
                                s.reducedStatic),
                            static_cast<unsigned long long>(
                                s.reducedDynamic));
        }
        // The structurally reduced image replays bit-identically even
        // though no (seed, mix) pair can regenerate it.
        if (s.repro.program)
            out += "\"program\": " + programToJson(*s.repro.program) +
                   ", ";
        out += "\"mix\": " + mixToJson(s.repro.mix) + "}";
    }
    out += "\n    ]\n  }\n}\n";
    return out;
}

std::string
outcomeToJson(const DiffOutcome &o)
{
    using driver::jsonEscape;
    const auto u64 = [](std::uint64_t v) {
        return static_cast<unsigned long long>(v);
    };
    // Every field is emitted unconditionally — a checkpoint payload is
    // a machine artefact, and a fixed shape keeps the round trip (and
    // its test) total rather than schema-dependent.
    std::string out = "{";
    out += csprintf("\"mix\": \"%s\", ", jsonEscape(o.mix).c_str());
    out += csprintf("\"seed\": %llu, ", u64(o.seed));
    out += csprintf("\"config\": \"%s\", ", jsonEscape(o.config).c_str());
    out += csprintf("\"workload\": \"%s\", ",
                    jsonEscape(o.workload).c_str());
    out += csprintf("\"committed_core\": %llu, ", u64(o.committedCore));
    out += csprintf("\"committed_ref\": %llu, ", u64(o.committedRef));
    out += csprintf("\"cycles\": %llu, ", u64(o.cycles));
    out += csprintf("\"stream_hash\": \"%016llx\", ", u64(o.streamHash));
    out += csprintf("\"skipped\": %s, ", o.skipped ? "true" : "false");
    out += csprintf("\"snapshot_every\": %llu, ", u64(o.snapshotEvery));
    out += csprintf("\"localized\": %s, ", o.localized ? "true" : "false");
    out += csprintf("\"bad_window_lo\": %llu, ", u64(o.badWindowLo));
    out += csprintf("\"bad_window_hi\": %llu, ", u64(o.badWindowHi));
    out += csprintf("\"exact_localized\": %s, ",
                    o.exactLocalized ? "true" : "false");
    out += csprintf("\"first_bad_commit\": %llu, ",
                    u64(o.firstBadCommit));
    // Novelty (covNovel/covNewBits) is deliberately not persisted: it
    // is relative to the corpus, which the campaign recomputes in
    // submission order on every run.
    out += csprintf("\"has_coverage\": %s, ",
                    o.hasCoverage ? "true" : "false");
    out += csprintf("\"coverage\": \"%s\", ", o.coverage.toHex().c_str());
    out += "\"divergences\": [";
    for (std::size_t d = 0; d < o.divergences.size(); ++d) {
        out += d ? ", {" : "{";
        out += csprintf("\"kind\": \"%s\", \"detail\": \"%s\"}",
                        jsonEscape(o.divergences[d].kind).c_str(),
                        jsonEscape(o.divergences[d].detail).c_str());
    }
    out += "]}";
    return out;
}

DiffOutcome
outcomeFromJson(const std::string &doc)
{
    DiffOutcome o;
    o.mix = getStr(doc, "mix");
    o.seed = getU64(doc, "seed", 0);
    o.config = getStr(doc, "config");
    o.workload = getStr(doc, "workload");
    o.committedCore = getU64(doc, "committed_core", 0);
    o.committedRef = getU64(doc, "committed_ref", 0);
    o.cycles = getU64(doc, "cycles", 0);
    // The writer always emits stream_hash as 16 hex digits; decoding
    // garbage as 0 here would make a corrupt repro "replay clean"
    // (hash comparisons against 0 on both sides).
    const std::string hash = getStr(doc, "stream_hash");
    if (!hash.empty()) {
        const parse::Status st = parse::hexU64(hash, o.streamHash);
        if (st != parse::Status::Ok || hash.size() != 16) {
            throw SpecError(csprintf(
                "malformed stream_hash '%s' (want 16 hex digits)",
                hash.c_str()));
        }
    }
    o.skipped = json::getBool(doc, "skipped", false);
    o.snapshotEvery = getU64(doc, "snapshot_every", 0);
    o.localized = json::getBool(doc, "localized", false);
    o.badWindowLo = getU64(doc, "bad_window_lo", 0);
    o.badWindowHi = getU64(doc, "bad_window_hi", 0);
    o.exactLocalized = json::getBool(doc, "exact_localized", false);
    o.firstBadCommit = getU64(doc, "first_bad_commit", 0);
    // Same no-silent-garbage rule as stream_hash: a malformed bitmap
    // must throw (json::JsonError from fromHex), never decode as "this
    // run covered nothing" — that would poison the corpus aggregate.
    o.hasCoverage = json::getBool(doc, "has_coverage", false);
    const std::string cov = getStr(doc, "coverage");
    if (!cov.empty())
        o.coverage = CoverageMap::fromHex(cov);
    else if (o.hasCoverage)
        throw json::JsonError(
            "outcome has_coverage set without a coverage bitmap");
    const std::size_t divAt = valuePos(doc, "divergences");
    if (divAt != std::string::npos && divAt < doc.size() &&
        doc[divAt] == '[') {
        for (const std::string &d :
             json::innerObjects(balancedSlice(doc, divAt))) {
            o.divergences.push_back(
                Divergence{getStr(d, "kind"), getStr(d, "detail")});
        }
    }
    return o;
}

std::vector<ReproSpec>
parseRepros(const std::string &json)
{
    std::vector<ReproSpec> specs;
    const std::size_t key = json.find("\"repros\":");
    if (key == std::string::npos)
        return specs;
    const std::size_t open = json.find('[', key);
    if (open == std::string::npos)
        return specs;
    const std::string arr = balancedSlice(json, open);

    // Walk top-level objects of the array.
    int depth = 0;
    bool inStr = false;
    for (std::size_t p = 0; p < arr.size(); ++p) {
        const char c = arr[p];
        if (inStr) {
            if (c == '\\')
                ++p;
            else if (c == '"')
                inStr = false;
        } else if (c == '"') {
            inStr = true;
        } else if (c == '[') {
            ++depth;
        } else if (c == ']') {
            --depth;
        } else if (c == '{' && depth == 1) {
            const std::string obj = balancedSlice(arr, p);
            if (obj.empty())
                break;
            ReproSpec spec;
            spec.kind = getStr(obj, "kind");
            spec.seed = getU64(obj, "seed", 1);
            spec.preset = getStr(obj, "preset");
            spec.predictor = getStr(obj, "predictor", "gshare");
            spec.maxInsts = getU64(obj, "max_insts", 1u << 20);
            // Optional triage fields: absent means the corresponding
            // stage was off (no cadence, no exact bisection).
            spec.snapshotEvery = getU64(obj, "snapshot_every", 0);
            spec.firstBadCommit = getU64(obj, "first_bad_commit", 0);
            // The full machine spec wins over the cosmetic preset
            // name. An unparseable spec propagates as SpecError — a
            // repro that silently fell back to a preset could replay a
            // different machine and lie about the divergence.
            const std::size_t machineAt = valuePos(obj, "machine");
            if (machineAt != std::string::npos && obj[machineAt] == '{') {
                spec.machine =
                    specFromJson(balancedSlice(obj, machineAt));
                spec.hasMachine = true;
            }
            const std::size_t mixAt = valuePos(obj, "mix");
            if (mixAt != std::string::npos && obj[mixAt] == '{')
                spec.mix = mixFromJson(balancedSlice(obj, mixAt));
            // A structurally reduced image is the program authority:
            // like the machine spec, it must parse or fail loudly
            // (programFromJson throws SpecError) — regenerating from
            // (seed, mix) instead would replay a different program.
            const std::size_t progAt = valuePos(obj, "program");
            if (progAt != std::string::npos && obj[progAt] == '{') {
                spec.program = std::make_shared<Program>(
                    programFromJson(balancedSlice(obj, progAt)));
            }
            specs.push_back(std::move(spec));
            p += obj.size() - 1;
        }
    }
    return specs;
}

} // namespace verify
} // namespace msp
