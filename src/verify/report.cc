#include "verify/report.hh"

#include <cstdlib>

#include "common/logging.hh"
#include "driver/report.hh"
#include "sim/spec.hh"

namespace msp {
namespace verify {

namespace {

/** FuzzMix as a flat JSON object (the schema parseMix() reads back). */
std::string
mixToJson(const FuzzMix &m)
{
    std::string out = "{";
    out += csprintf("\"name\": \"%s\", ",
                    driver::jsonEscape(m.name).c_str());
    out += csprintf("\"alu\": %.17g, \"fp\": %.17g, \"load\": %.17g, "
                    "\"store\": %.17g, ",
                    m.weights.alu, m.weights.fp, m.weights.load,
                    m.weights.store);
    out += csprintf("\"blocks_min\": %u, \"blocks_max\": %u, "
                    "\"seg_min\": %u, \"seg_max\": %u, ",
                    m.blocksMin, m.blocksMax, m.segMin, m.segMax);
    out += csprintf("\"loop_prob\": %.17g, \"max_loop_depth\": %u, "
                    "\"trip_min\": %u, \"trip_max\": %u, ",
                    m.loopProb, m.maxLoopDepth, m.tripMin, m.tripMax);
    out += csprintf("\"cond_prob\": %.17g, \"call_prob\": %.17g, "
                    "\"indirect_prob\": %.17g, \"trap_prob\": %.17g, ",
                    m.condProb, m.callProb, m.indirectProb, m.trapProb);
    out += csprintf("\"mem_words\": %u, \"hot_words\": %u, "
                    "\"hot_prob\": %.17g, \"fp_edge_prob\": %.17g, ",
                    m.memWords, m.hotWords, m.hotProb, m.fpEdgeProb);
    out += csprintf("\"target_dynamic\": %llu}",
                    static_cast<unsigned long long>(m.targetDynamic));
    return out;
}

// ---- minimal extraction for the schema this file emits --------------------

/** Position of the value after "key": inside @p obj; npos if absent. */
std::size_t
valuePos(const std::string &obj, const std::string &key)
{
    const std::string needle = "\"" + key + "\":";
    const std::size_t at = obj.find(needle);
    if (at == std::string::npos)
        return std::string::npos;
    std::size_t p = at + needle.size();
    while (p < obj.size() && (obj[p] == ' ' || obj[p] == '\n'))
        ++p;
    return p;
}

double
getNum(const std::string &obj, const std::string &key, double def)
{
    const std::size_t p = valuePos(obj, key);
    return p == std::string::npos ? def : std::strtod(obj.c_str() + p,
                                                      nullptr);
}

std::uint64_t
getU64(const std::string &obj, const std::string &key, std::uint64_t def)
{
    const std::size_t p = valuePos(obj, key);
    return p == std::string::npos
               ? def
               : std::strtoull(obj.c_str() + p, nullptr, 10);
}

std::string
getStr(const std::string &obj, const std::string &key,
       const std::string &def = "")
{
    std::size_t p = valuePos(obj, key);
    if (p == std::string::npos || p >= obj.size() || obj[p] != '"')
        return def;
    std::string out;
    for (++p; p < obj.size() && obj[p] != '"'; ++p) {
        if (obj[p] == '\\' && p + 1 < obj.size())
            ++p;   // jsonEscape escapes: keep the char after backslash
        out += obj[p];
    }
    return out;
}

/**
 * The balanced {...} or [...] starting at @p open (which must index the
 * opening bracket). Quote-aware, so braces inside strings don't count.
 */
std::string
balancedSlice(const std::string &s, std::size_t open)
{
    const char up = s[open];
    const char down = up == '{' ? '}' : ']';
    int depth = 0;
    bool inStr = false;
    for (std::size_t p = open; p < s.size(); ++p) {
        const char c = s[p];
        if (inStr) {
            if (c == '\\')
                ++p;
            else if (c == '"')
                inStr = false;
        } else if (c == '"') {
            inStr = true;
        } else if (c == up) {
            ++depth;
        } else if (c == down && --depth == 0) {
            return s.substr(open, p - open + 1);
        }
    }
    return "";
}

FuzzMix
parseMix(const std::string &obj)
{
    FuzzMix m;
    m.name = getStr(obj, "name", m.name);
    m.weights.alu = getNum(obj, "alu", m.weights.alu);
    m.weights.fp = getNum(obj, "fp", m.weights.fp);
    m.weights.load = getNum(obj, "load", m.weights.load);
    m.weights.store = getNum(obj, "store", m.weights.store);
    m.blocksMin = static_cast<unsigned>(
        getU64(obj, "blocks_min", m.blocksMin));
    m.blocksMax = static_cast<unsigned>(
        getU64(obj, "blocks_max", m.blocksMax));
    m.segMin = static_cast<unsigned>(getU64(obj, "seg_min", m.segMin));
    m.segMax = static_cast<unsigned>(getU64(obj, "seg_max", m.segMax));
    m.loopProb = getNum(obj, "loop_prob", m.loopProb);
    m.maxLoopDepth = static_cast<unsigned>(
        getU64(obj, "max_loop_depth", m.maxLoopDepth));
    m.tripMin = static_cast<unsigned>(getU64(obj, "trip_min", m.tripMin));
    m.tripMax = static_cast<unsigned>(getU64(obj, "trip_max", m.tripMax));
    m.condProb = getNum(obj, "cond_prob", m.condProb);
    m.callProb = getNum(obj, "call_prob", m.callProb);
    m.indirectProb = getNum(obj, "indirect_prob", m.indirectProb);
    m.trapProb = getNum(obj, "trap_prob", m.trapProb);
    m.memWords = static_cast<unsigned>(
        getU64(obj, "mem_words", m.memWords));
    m.hotWords = static_cast<unsigned>(
        getU64(obj, "hot_words", m.hotWords));
    m.hotProb = getNum(obj, "hot_prob", m.hotProb);
    m.fpEdgeProb = getNum(obj, "fp_edge_prob", m.fpEdgeProb);
    m.targetDynamic = getU64(obj, "target_dynamic", m.targetDynamic);
    return m;
}

} // anonymous namespace

std::size_t
countDivergences(const std::vector<DiffOutcome> &outcomes)
{
    std::size_t n = 0;
    for (const DiffOutcome &o : outcomes)
        n += o.divergences.size();
    return n;
}

std::size_t
countSkipped(const std::vector<DiffOutcome> &outcomes)
{
    std::size_t n = 0;
    for (const DiffOutcome &o : outcomes)
        n += o.skipped ? 1 : 0;
    return n;
}

std::string
toJson(const std::vector<DiffOutcome> &outcomes,
       const std::vector<ShrinkResult> &shrinks)
{
    using driver::jsonEscape;

    std::size_t divergent = 0;
    for (const DiffOutcome &o : outcomes)
        divergent += o.ok() ? 0 : 1;

    std::string out = "{\n  \"verify\": {\n";
    out += csprintf("    \"jobs\": %zu,\n", outcomes.size());
    out += csprintf("    \"divergent\": %zu,\n", divergent);
    out += csprintf("    \"skipped\": %zu,\n", countSkipped(outcomes));
    out += "    \"results\": [";
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
        const DiffOutcome &o = outcomes[i];
        out += i ? ",\n      {" : "\n      {";
        out += csprintf("\"mix\": \"%s\", ", jsonEscape(o.mix).c_str());
        out += csprintf("\"seed\": %llu, ",
                        static_cast<unsigned long long>(o.seed));
        out += csprintf("\"config\": \"%s\", ",
                        jsonEscape(o.config).c_str());
        out += csprintf("\"workload\": \"%s\", ",
                        jsonEscape(o.workload).c_str());
        if (o.skipped)
            out += "\"skipped\": true, ";
        out += csprintf("\"committed_core\": %llu, ",
                        static_cast<unsigned long long>(o.committedCore));
        out += csprintf("\"committed_ref\": %llu, ",
                        static_cast<unsigned long long>(o.committedRef));
        out += csprintf("\"cycles\": %llu, ",
                        static_cast<unsigned long long>(o.cycles));
        out += csprintf("\"stream_hash\": \"%016llx\", ",
                        static_cast<unsigned long long>(o.streamHash));
        if (o.snapshotEvery) {
            out += csprintf("\"snapshot_every\": %llu, ",
                            static_cast<unsigned long long>(
                                o.snapshotEvery));
        }
        if (o.localized) {
            out += csprintf("\"bad_window\": [%llu, %llu], ",
                            static_cast<unsigned long long>(o.badWindowLo),
                            static_cast<unsigned long long>(
                                o.badWindowHi));
        }
        out += "\"divergences\": [";
        for (std::size_t d = 0; d < o.divergences.size(); ++d) {
            out += d ? ", {" : "{";
            out += csprintf("\"kind\": \"%s\", \"detail\": \"%s\"}",
                            jsonEscape(o.divergences[d].kind).c_str(),
                            jsonEscape(o.divergences[d].detail).c_str());
        }
        out += "]}";
    }
    out += "\n    ],\n";
    out += "    \"repros\": [";
    for (std::size_t i = 0; i < shrinks.size(); ++i) {
        const ShrinkResult &s = shrinks[i];
        out += i ? ",\n      {" : "\n      {";
        out += csprintf("\"kind\": \"%s\", ",
                        jsonEscape(s.repro.kind).c_str());
        out += csprintf("\"seed\": %llu, ",
                        static_cast<unsigned long long>(s.repro.seed));
        out += csprintf("\"preset\": \"%s\", ",
                        jsonEscape(s.repro.preset).c_str());
        out += csprintf("\"predictor\": \"%s\", ",
                        jsonEscape(s.repro.predictor).c_str());
        // The complete serialised spec (keys in registration order) is
        // the replay authority; preset/predictor above are cosmetic.
        if (s.repro.hasMachine)
            out += "\"machine\": " + specToJson(s.repro.machine) + ", ";
        out += csprintf("\"max_insts\": %llu, ",
                        static_cast<unsigned long long>(
                            s.repro.maxInsts));
        out += csprintf("\"snapshot_every\": %llu, ",
                        static_cast<unsigned long long>(
                            s.repro.snapshotEvery));
        out += csprintf("\"reproduced\": %s, \"shrunk\": %s, ",
                        s.reproduced ? "true" : "false",
                        s.shrunk ? "true" : "false");
        out += csprintf("\"attempts\": %u, ", s.attempts);
        out += csprintf("\"orig_dynamic\": %llu, "
                        "\"shrunk_dynamic\": %llu, ",
                        static_cast<unsigned long long>(s.origDynamic),
                        static_cast<unsigned long long>(s.shrunkDynamic));
        out += csprintf("\"orig_static\": %llu, "
                        "\"shrunk_static\": %llu, ",
                        static_cast<unsigned long long>(s.origStatic),
                        static_cast<unsigned long long>(s.shrunkStatic));
        out += "\"mix\": " + mixToJson(s.repro.mix) + "}";
    }
    out += "\n    ]\n  }\n}\n";
    return out;
}

std::vector<ReproSpec>
parseRepros(const std::string &json)
{
    std::vector<ReproSpec> specs;
    const std::size_t key = json.find("\"repros\":");
    if (key == std::string::npos)
        return specs;
    const std::size_t open = json.find('[', key);
    if (open == std::string::npos)
        return specs;
    const std::string arr = balancedSlice(json, open);

    // Walk top-level objects of the array.
    int depth = 0;
    bool inStr = false;
    for (std::size_t p = 0; p < arr.size(); ++p) {
        const char c = arr[p];
        if (inStr) {
            if (c == '\\')
                ++p;
            else if (c == '"')
                inStr = false;
        } else if (c == '"') {
            inStr = true;
        } else if (c == '[') {
            ++depth;
        } else if (c == ']') {
            --depth;
        } else if (c == '{' && depth == 1) {
            const std::string obj = balancedSlice(arr, p);
            if (obj.empty())
                break;
            ReproSpec spec;
            spec.kind = getStr(obj, "kind");
            spec.seed = getU64(obj, "seed", 1);
            spec.preset = getStr(obj, "preset");
            spec.predictor = getStr(obj, "predictor", "gshare");
            spec.maxInsts = getU64(obj, "max_insts", 1u << 20);
            spec.snapshotEvery = getU64(obj, "snapshot_every", 0);
            // The full machine spec wins over the cosmetic preset
            // name. An unparseable spec propagates as SpecError — a
            // repro that silently fell back to a preset could replay a
            // different machine and lie about the divergence.
            const std::size_t machineAt = valuePos(obj, "machine");
            if (machineAt != std::string::npos && obj[machineAt] == '{') {
                spec.machine =
                    specFromJson(balancedSlice(obj, machineAt));
                spec.hasMachine = true;
            }
            const std::size_t mixAt = valuePos(obj, "mix");
            if (mixAt != std::string::npos && obj[mixAt] == '{')
                spec.mix = parseMix(balancedSlice(obj, mixAt));
            specs.push_back(std::move(spec));
            p += obj.size() - 1;
        }
    }
    return specs;
}

} // namespace verify
} // namespace msp
