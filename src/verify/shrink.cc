#include "verify/shrink.hh"

#include <algorithm>

#include "common/logging.hh"
#include "sim/presets.hh"
#include "verify/bisect.hh"
#include "verify/budget.hh"
#include "verify/reduce.hh"

namespace msp {
namespace verify {

namespace {

/**
 * First chaseable divergence kind of @p o ("" when none).
 * "ref-no-halt" is a fuzzer/budget problem; "timing" is a cross-
 * machine IPC comparison diffRun can never reproduce on one machine.
 * Neither is a correctness disagreement to chase.
 */
std::string
firstShrinkableKind(const DiffOutcome &o)
{
    for (const Divergence &d : o.divergences)
        if (d.kind != "ref-no-halt" && d.kind != "timing")
            return d.kind;
    return "";
}

/** Does @p orig contain any kind worth chasing with a re-fuzz? */
bool
shrinkable(const DiffOutcome &o)
{
    return !o.skipped && !firstShrinkableKind(o).empty();
}

using ShrinkClock = TriageClock;

/** The identity part of a repro (no search yet). */
ReproSpec
initRepro(const DiffJob &job)
{
    ReproSpec repro;
    repro.seed = job.seed;
    repro.mix = job.mix;
    repro.machine = job.config;
    repro.hasMachine = true;
    repro.preset = presetNameFor(job.config);
    repro.predictor =
        job.config.predictor == PredictorKind::Tage ? "tage" : "gshare";
    repro.maxInsts = job.maxInsts;
    repro.snapshotEvery = job.snapshotEvery;
    return repro;
}

ShrinkResult
shrinkToDeadline(const DiffJob &job, const DiffOutcome &orig,
                 const ShrinkOptions &opt,
                 ShrinkClock::time_point deadline)
{
    using Clock = ShrinkClock;

    ShrinkResult res;
    res.repro = initRepro(job);

    DiffOptions dopt;
    dopt.maxInsts = job.maxInsts;
    dopt.maxCycles = job.maxCycles;
    dopt.snapshotEvery = job.snapshotEvery;

    // Re-fuzz + re-run one candidate mix; "" when it does not
    // reproduce any of the original divergence kinds.
    const auto attempt = [&](const FuzzMix &mix, DiffOutcome &outOut,
                             std::uint64_t &staticOut) -> std::string {
        ++res.attempts;
        const Program p = fuzzProgram(job.seed, mix);
        staticOut = p.code.size();
        DiffOutcome o = diffRun(p, job.config, dopt);
        o.mix = mix.name;
        o.seed = job.seed;
        outOut = o;
        return sharedDivergenceKind(orig, o);
    };

    // Confirm the divergence reproduces from (seed, mix) at all before
    // spending a search on it.
    DiffOutcome cur;
    std::uint64_t curStatic = 0;
    res.repro.kind = attempt(job.mix, cur, curStatic);
    if (res.repro.kind.empty()) {
        res.outcome = cur;
        return res;
    }
    res.reproduced = true;
    res.origDynamic = cur.committedRef;
    res.origStatic = curStatic;

    FuzzMix best = job.mix;
    DiffOutcome bestOut = cur;
    std::uint64_t bestStatic = curStatic;

    // One reduction step per knob; the fixpoint loop below re-applies
    // them (so e.g. targetDynamic keeps halving) until nothing that
    // still reproduces can be reduced further.
    using Reducer = bool (*)(FuzzMix &);
    static const Reducer reducers[] = {
        [](FuzzMix &m) {
            if (m.targetDynamic <= 16)
                return false;
            m.targetDynamic = std::max<std::uint64_t>(16,
                                                      m.targetDynamic / 2);
            return true;
        },
        [](FuzzMix &m) {
            if (m.blocksMax <= 1)
                return false;
            m.blocksMax = std::max(1u, m.blocksMax / 2);
            m.blocksMin = std::min(m.blocksMin, m.blocksMax);
            return true;
        },
        [](FuzzMix &m) {
            if (m.segMax <= 1)
                return false;
            m.segMax = std::max(1u, m.segMax / 2);
            m.segMin = std::min(m.segMin, m.segMax);
            return true;
        },
        [](FuzzMix &m) {
            if (m.tripMax <= 1)
                return false;
            m.tripMax = std::max(1u, m.tripMax / 2);
            m.tripMin = std::min(m.tripMin, m.tripMax);
            return true;
        },
        [](FuzzMix &m) {
            if (m.maxLoopDepth == 0)
                return false;
            --m.maxLoopDepth;
            return true;
        },
        [](FuzzMix &m) {
            if (m.memWords <= std::max(m.hotWords, 1u))
                return false;
            m.memWords = std::max(std::max(m.hotWords, 1u),
                                  m.memWords / 2);
            return true;
        },
        [](FuzzMix &m) {
            if (m.callProb == 0.0)
                return false;
            m.callProb = 0.0;
            return true;
        },
        [](FuzzMix &m) {
            if (m.trapProb == 0.0)
                return false;
            m.trapProb = 0.0;
            return true;
        },
        [](FuzzMix &m) {
            if (m.condProb == 0.0)
                return false;
            m.condProb = 0.0;
            return true;
        },
        [](FuzzMix &m) {
            if (m.loopProb == 0.0)
                return false;
            m.loopProb = 0.0;
            return true;
        },
        [](FuzzMix &m) {
            if (m.weights.fp == 0.0)
                return false;
            m.weights.fp = 0.0;
            return true;
        },
        [](FuzzMix &m) {
            if (m.weights.load == 0.0 && m.weights.store == 0.0)
                return false;
            m.weights.load = 0.0;
            m.weights.store = 0.0;
            return true;
        },
    };

    bool improved = true;
    while (improved && res.attempts < opt.maxAttempts &&
           Clock::now() < deadline) {
        improved = false;
        for (const Reducer &reduce : reducers) {
            if (res.attempts >= opt.maxAttempts ||
                Clock::now() >= deadline) {
                break;
            }
            FuzzMix cand = best;
            if (!reduce(cand))
                continue;
            DiffOutcome candOut;
            std::uint64_t candStatic = 0;
            const std::string kind = attempt(cand, candOut, candStatic);
            if (kind.empty())
                continue;   // reduction lost the bug: keep the old mix
            best = cand;
            bestOut = candOut;
            bestStatic = candStatic;
            res.repro.kind = kind;
            improved = true;
        }
    }

    res.repro.mix = best;
    res.outcome = bestOut;
    res.shrunkDynamic = bestOut.committedRef;
    res.shrunkStatic = bestStatic;
    res.shrunk = res.shrunkDynamic < res.origDynamic;

    // ---- tier 2: exact-commit bisection of the original job --------------
    if (opt.bisectExact && Clock::now() < deadline) {
        const Program origProg =
            job.program ? *job.program : fuzzProgram(job.seed, job.mix);
        BisectOptions bopt;
        bopt.budgetSec = remainingBudget(opt.budgetSec, deadline);
        // `cur` is the confirmed re-run of the original job, window
        // and all — the divergence the bisection chases.
        const BisectResult b =
            bisectFirstBadCommit(origProg, job.config, cur, dopt, bopt);
        res.attempts += b.probes;
        res.bisectProbes = b.probes;
        if (b.exact) {
            res.exactBisected = true;
            res.firstBadCommit = b.firstBadCommit;
        }
    }

    // ---- tier 3: structural reduction of the mix-shrunk program ----------
    if (opt.reduce && Clock::now() < deadline) {
        const Program bestProg = fuzzProgram(job.seed, best);
        ReduceOptions ropt;
        ropt.maxAttempts = opt.reduceMaxAttempts;
        ropt.budgetSec = remainingBudget(opt.budgetSec, deadline);
        ropt.threads = opt.threads;
        // bestOut is the diffRun of bestProg the search just produced:
        // hand it over so the reducer skips its baseline re-run.
        const ReduceResult rr =
            reduceDivergence(bestProg, job.config, orig, dopt, ropt,
                             &bestOut);
        res.attempts += rr.attempts;
        if (rr.reproduced) {
            res.reducedStatic = rr.reducedStatic;
            res.reducedDynamic = rr.reducedDynamic;
            res.outcome = rr.outcome;
            res.repro.kind = rr.kind;
            if (rr.reduced) {
                res.reduced = true;
                res.repro.program =
                    std::make_shared<Program>(rr.program);
            }
        }
    }

    // The repro entry's first_bad_commit must index into the program
    // the repro actually replays — the shrunk-mix regeneration or the
    // embedded reduced image — not into the original ~Nk-commit run
    // (that index lives on the job's result row). The replay programs
    // are tiny by now, so this re-bisection costs a few short probes.
    if (opt.bisectExact && res.reproduced && Clock::now() < deadline) {
        const Program replayProg =
            res.repro.program ? *res.repro.program
                              : fuzzProgram(job.seed, best);
        BisectOptions bopt;
        bopt.budgetSec = remainingBudget(opt.budgetSec, deadline);
        // res.outcome is the diffRun of exactly this replay program.
        const BisectResult b = bisectFirstBadCommit(
            replayProg, job.config, res.outcome, dopt, bopt);
        res.attempts += b.probes;
        res.bisectProbes += b.probes;
        if (b.exact)
            res.repro.firstBadCommit = b.firstBadCommit;
    }

    if (Clock::now() >= deadline)
        res.timedOut = true;   // the search above was cut short
    return res;
}

} // anonymous namespace

ShrinkResult
shrinkDivergence(const DiffJob &job, const DiffOutcome &orig,
                 const ShrinkOptions &opt)
{
    return shrinkToDeadline(job, orig, opt, triageDeadline(opt.budgetSec));
}

std::vector<ShrinkResult>
shrinkFailures(const std::vector<DiffJob> &jobs,
               std::vector<DiffOutcome> &outcomes,
               const ShrinkOptions &opt, const ShrinkProgressFn &progress)
{
    msp_assert(jobs.size() == outcomes.size(),
               "jobs/outcomes not parallel: %zu vs %zu", jobs.size(),
               outcomes.size());

    std::vector<std::size_t> failing;
    for (std::size_t i = 0; i < outcomes.size(); ++i)
        if (shrinkable(outcomes[i]))
            failing.push_back(i);

    // One deadline across every failing job: the budget bounds the
    // whole triage pass, not each search.
    const ShrinkClock::time_point deadline = triageDeadline(opt.budgetSec);

    std::vector<ShrinkResult> results;
    results.reserve(failing.size());
    for (std::size_t n = 0; n < failing.size(); ++n) {
        const std::size_t i = failing[n];
        if (ShrinkClock::now() >= deadline) {
            // Budget spent. The job still gets a result — identity,
            // original kind, timedOut=true — so a partial triage pass
            // is visible in the report instead of silently shorter.
            ShrinkResult r;
            r.jobIndex = i;
            r.timedOut = true;
            r.repro = initRepro(jobs[i]);
            r.repro.kind = firstShrinkableKind(outcomes[i]);
            r.outcome = outcomes[i];
            results.push_back(std::move(r));
        } else {
            results.push_back(
                shrinkToDeadline(jobs[i], outcomes[i], opt, deadline));
            results.back().jobIndex = i;
            // The exact localisation belongs to the job's own result
            // row too, not just its repro entry.
            if (results.back().exactBisected) {
                outcomes[i].exactLocalized = true;
                outcomes[i].firstBadCommit =
                    results.back().firstBadCommit;
            }
        }
        if (progress)
            progress(results.back(), n + 1, failing.size());
    }
    return results;
}

} // namespace verify
} // namespace msp
