#include "verify/shrink.hh"

#include <algorithm>
#include <chrono>

#include "common/logging.hh"
#include "sim/presets.hh"

namespace msp {
namespace verify {

namespace {

/** First divergence kind of @p cand that @p orig also reported. */
std::string
sharedKind(const DiffOutcome &orig, const DiffOutcome &cand)
{
    for (const Divergence &c : cand.divergences)
        for (const Divergence &o : orig.divergences)
            if (c.kind == o.kind)
                return c.kind;
    return "";
}

/** Does @p orig contain any kind worth chasing with a re-fuzz? */
bool
shrinkable(const DiffOutcome &o)
{
    if (o.skipped)
        return false;
    // "ref-no-halt" is a fuzzer/budget problem; "timing" is a cross-
    // machine IPC comparison diffRun can never reproduce on one
    // machine. Neither is a correctness disagreement to chase.
    for (const Divergence &d : o.divergences)
        if (d.kind != "ref-no-halt" && d.kind != "timing")
            return true;   // a core-vs-functional disagreement
    return false;
}

} // anonymous namespace

namespace {

using ShrinkClock = std::chrono::steady_clock;

ShrinkClock::time_point
deadlineFrom(double budgetSec)
{
    return ShrinkClock::now() +
           std::chrono::duration_cast<ShrinkClock::duration>(
               std::chrono::duration<double>(
                   budgetSec > 0 ? budgetSec : 1e9));
}

ShrinkResult
shrinkToDeadline(const DiffJob &job, const DiffOutcome &orig,
                 const ShrinkOptions &opt,
                 ShrinkClock::time_point deadline)
{
    using Clock = ShrinkClock;

    ShrinkResult res;
    res.repro.seed = job.seed;
    res.repro.mix = job.mix;
    res.repro.machine = job.config;
    res.repro.hasMachine = true;
    res.repro.preset = presetNameFor(job.config);
    res.repro.predictor =
        job.config.predictor == PredictorKind::Tage ? "tage" : "gshare";
    res.repro.maxInsts = job.maxInsts;
    res.repro.snapshotEvery = job.snapshotEvery;

    DiffOptions dopt;
    dopt.maxInsts = job.maxInsts;
    dopt.maxCycles = job.maxCycles;
    dopt.snapshotEvery = job.snapshotEvery;

    // Re-fuzz + re-run one candidate mix; "" when it does not
    // reproduce any of the original divergence kinds.
    const auto attempt = [&](const FuzzMix &mix, DiffOutcome &outOut,
                             std::uint64_t &staticOut) -> std::string {
        ++res.attempts;
        const Program p = fuzzProgram(job.seed, mix);
        staticOut = p.code.size();
        DiffOutcome o = diffRun(p, job.config, dopt);
        o.mix = mix.name;
        o.seed = job.seed;
        outOut = o;
        return sharedKind(orig, o);
    };

    // Confirm the divergence reproduces from (seed, mix) at all before
    // spending a search on it.
    DiffOutcome cur;
    std::uint64_t curStatic = 0;
    res.repro.kind = attempt(job.mix, cur, curStatic);
    if (res.repro.kind.empty()) {
        res.outcome = cur;
        return res;
    }
    res.reproduced = true;
    res.origDynamic = cur.committedRef;
    res.origStatic = curStatic;

    FuzzMix best = job.mix;
    DiffOutcome bestOut = cur;
    std::uint64_t bestStatic = curStatic;

    // One reduction step per knob; the fixpoint loop below re-applies
    // them (so e.g. targetDynamic keeps halving) until nothing that
    // still reproduces can be reduced further.
    using Reducer = bool (*)(FuzzMix &);
    static const Reducer reducers[] = {
        [](FuzzMix &m) {
            if (m.targetDynamic <= 16)
                return false;
            m.targetDynamic = std::max<std::uint64_t>(16,
                                                      m.targetDynamic / 2);
            return true;
        },
        [](FuzzMix &m) {
            if (m.blocksMax <= 1)
                return false;
            m.blocksMax = std::max(1u, m.blocksMax / 2);
            m.blocksMin = std::min(m.blocksMin, m.blocksMax);
            return true;
        },
        [](FuzzMix &m) {
            if (m.segMax <= 1)
                return false;
            m.segMax = std::max(1u, m.segMax / 2);
            m.segMin = std::min(m.segMin, m.segMax);
            return true;
        },
        [](FuzzMix &m) {
            if (m.tripMax <= 1)
                return false;
            m.tripMax = std::max(1u, m.tripMax / 2);
            m.tripMin = std::min(m.tripMin, m.tripMax);
            return true;
        },
        [](FuzzMix &m) {
            if (m.maxLoopDepth == 0)
                return false;
            --m.maxLoopDepth;
            return true;
        },
        [](FuzzMix &m) {
            if (m.memWords <= std::max(m.hotWords, 1u))
                return false;
            m.memWords = std::max(std::max(m.hotWords, 1u),
                                  m.memWords / 2);
            return true;
        },
        [](FuzzMix &m) {
            if (m.callProb == 0.0)
                return false;
            m.callProb = 0.0;
            return true;
        },
        [](FuzzMix &m) {
            if (m.trapProb == 0.0)
                return false;
            m.trapProb = 0.0;
            return true;
        },
        [](FuzzMix &m) {
            if (m.condProb == 0.0)
                return false;
            m.condProb = 0.0;
            return true;
        },
        [](FuzzMix &m) {
            if (m.loopProb == 0.0)
                return false;
            m.loopProb = 0.0;
            return true;
        },
        [](FuzzMix &m) {
            if (m.weights.fp == 0.0)
                return false;
            m.weights.fp = 0.0;
            return true;
        },
        [](FuzzMix &m) {
            if (m.weights.load == 0.0 && m.weights.store == 0.0)
                return false;
            m.weights.load = 0.0;
            m.weights.store = 0.0;
            return true;
        },
    };

    bool improved = true;
    while (improved && res.attempts < opt.maxAttempts &&
           Clock::now() < deadline) {
        improved = false;
        for (const Reducer &reduce : reducers) {
            if (res.attempts >= opt.maxAttempts ||
                Clock::now() >= deadline) {
                break;
            }
            FuzzMix cand = best;
            if (!reduce(cand))
                continue;
            DiffOutcome candOut;
            std::uint64_t candStatic = 0;
            const std::string kind = attempt(cand, candOut, candStatic);
            if (kind.empty())
                continue;   // reduction lost the bug: keep the old mix
            best = cand;
            bestOut = candOut;
            bestStatic = candStatic;
            res.repro.kind = kind;
            improved = true;
        }
    }

    res.repro.mix = best;
    res.outcome = bestOut;
    res.shrunkDynamic = bestOut.committedRef;
    res.shrunkStatic = bestStatic;
    res.shrunk = res.shrunkDynamic < res.origDynamic;
    return res;
}

} // anonymous namespace

ShrinkResult
shrinkDivergence(const DiffJob &job, const DiffOutcome &orig,
                 const ShrinkOptions &opt)
{
    return shrinkToDeadline(job, orig, opt, deadlineFrom(opt.budgetSec));
}

std::vector<ShrinkResult>
shrinkFailures(const std::vector<DiffJob> &jobs,
               const std::vector<DiffOutcome> &outcomes,
               const ShrinkOptions &opt, const ShrinkProgressFn &progress)
{
    msp_assert(jobs.size() == outcomes.size(),
               "jobs/outcomes not parallel: %zu vs %zu", jobs.size(),
               outcomes.size());

    std::vector<std::size_t> failing;
    for (std::size_t i = 0; i < outcomes.size(); ++i)
        if (shrinkable(outcomes[i]))
            failing.push_back(i);

    // One deadline across every failing job: the budget bounds the
    // whole triage pass, not each search.
    const ShrinkClock::time_point deadline = deadlineFrom(opt.budgetSec);

    std::vector<ShrinkResult> results;
    results.reserve(failing.size());
    for (std::size_t n = 0; n < failing.size(); ++n) {
        if (ShrinkClock::now() >= deadline)
            break;   // budget spent: leave the remaining jobs unshrunk
        const std::size_t i = failing[n];
        results.push_back(
            shrinkToDeadline(jobs[i], outcomes[i], opt, deadline));
        if (progress)
            progress(results.back(), n + 1, failing.size());
    }
    return results;
}

} // namespace verify
} // namespace msp
