/**
 * @file
 * Structural program reduction: delta-debugging over the emitted image.
 *
 * Mix shrinking (verify/shrink.hh) can only move along the fuzzer's
 * parameter axes — it always re-fuzzes a whole well-formed program.
 * This stage operates on the emitted isa::Program itself: it computes
 * the block structure (basic-block leaders from branch targets,
 * fallthroughs and indirect-target LIs), proposes whole deletable
 * ranges — single blocks, runs of consecutive blocks, complete loop
 * bodies including their backward branch — and relinks every surviving
 * branch / jump / indirect-target immediate across the deleted gap. A
 * candidate survives only if it (1) still terminates in the functional
 * executor within a bounded dynamic length and (2) still reproduces a
 * divergence of the original kind under diffRun, so the guarantees the
 * fuzzer gives by construction are re-established by validation.
 *
 * Independent candidates of one scan batch are fanned across the
 * driver::parallelFor worker pool; the winner of a batch is chosen by
 * submission index, so the reduced program is bit-identical for any
 * thread count (with a wall-clock budget, how far the search gets can
 * depend on scheduling — the same caveat DiffCampaign's budget has).
 */

#ifndef MSPLIB_VERIFY_REDUCE_HH
#define MSPLIB_VERIFY_REDUCE_HH

#include <cstdint>
#include <string>

#include "isa/program.hh"
#include "sim/machine.hh"
#include "verify/oracle.hh"

namespace msp {
namespace verify {

/** Bounds on one structural-reduction search. */
struct ReduceOptions
{
    /** Hard cap on candidate evaluations (each is at most one
     *  functional run plus one diffRun). Counted as if the scan were
     *  sequential, so the cutoff is thread-count independent. */
    unsigned maxAttempts = 192;

    /** Wall-clock budget in seconds; 0 = none. */
    double budgetSec = 0.0;

    /** Worker count for candidate batches; 0 = one per hardware
     *  thread. */
    unsigned threads = 0;

    /**
     * Reject a candidate whose functional dynamic length exceeds this
     * multiple of the input program's: a deletion that *lengthens*
     * execution (e.g. by unbalancing a loop) is never a reduction, and
     * the cap keeps broken candidates from burning the whole budget in
     * the timing model.
     */
    std::uint64_t maxGrowFactor = 4;
};

/** Outcome of structurally reducing one diverging program. */
struct ReduceResult
{
    Program program;        ///< smallest reproducing image found
    DiffOutcome outcome;    ///< diffRun of @ref program (if reproduced)
    std::string kind;       ///< divergence kind the reduction preserves

    bool reproduced = false;  ///< the input itself reproduces orig
    bool reduced = false;     ///< program is strictly smaller

    std::uint64_t origStatic = 0;     ///< input static instructions
    std::uint64_t reducedStatic = 0;  ///< output static instructions
    std::uint64_t origDynamic = 0;    ///< input functional length
    std::uint64_t reducedDynamic = 0; ///< output functional length
    unsigned attempts = 0;            ///< candidate evaluations spent
    unsigned rounds = 0;              ///< fixpoint rounds completed

    // ---- data tier (after structural reduction) --------------------------
    bool dataReduced = false;         ///< memory geometry / init data shrank
    std::size_t memWordsBefore = 0;   ///< input memory geometry (words)
    std::size_t memWordsAfter = 0;    ///< output memory geometry (words)
    std::size_t zeroedWords = 0;      ///< init words proven unread, zeroed
};

/**
 * Reduce @p prog — whose run on @p config produced the divergences in
 * @p orig — to a structurally smaller program that still reproduces a
 * divergence of one of @p orig's kinds under @p dopt.
 *
 * The returned program is the input when nothing could be removed
 * (reduced=false); it is never larger. All validation runs use
 * @p dopt's budgets, so a repro spec recording (program, machine,
 * dopt) replays the reduced divergence bit-identically.
 *
 * @p baseline, when given, must be the diffRun outcome of running
 * @p prog on @p config under @p dopt — callers that just produced it
 * (the shrinker) hand it over instead of paying one more timing
 * simulation for the input's own outcome.
 */
ReduceResult reduceDivergence(const Program &prog,
                              const MachineConfig &config,
                              const DiffOutcome &orig,
                              const DiffOptions &dopt,
                              const ReduceOptions &opt = ReduceOptions{},
                              const DiffOutcome *baseline = nullptr);

} // namespace verify
} // namespace msp

#endif // MSPLIB_VERIFY_REDUCE_HH
