#include "verify/bisect.hh"

#include <algorithm>

#include "verify/budget.hh"

namespace msp {
namespace verify {

BisectResult
bisectFirstBadCommit(const Program &prog, const MachineConfig &config,
                     const DiffOutcome &orig, const DiffOptions &base,
                     const BisectOptions &opt)
{
    using Clock = TriageClock;
    const Clock::time_point deadline = triageDeadline(opt.budgetSec);

    BisectResult res;
    res.outcome = orig;

    // Establish the starting window. A campaign that ran with a
    // snapshot cadence already carries one; otherwise a coarse pre-pass
    // recovers it (one extra run, cadence scaled to the run length).
    std::uint64_t lo, hi;
    if (orig.localized) {
        lo = orig.badWindowLo;
        hi = orig.badWindowHi;
    } else {
        const std::uint64_t commits =
            std::max<std::uint64_t>(1, std::max(orig.committedCore,
                                                orig.committedRef));
        DiffOptions popt = base;
        popt.probeCommit = 0;
        popt.snapshotEvery = std::max<std::uint64_t>(
            1, commits / std::max<std::uint64_t>(1, opt.prepassDivisor));
        const DiffOutcome pre = diffRun(prog, config, popt);
        ++res.probes;
        if (!pre.localized) {
            // No mid-run signature: the common prefix is clean and the
            // disagreement lives at the very end (commit count, final
            // halt). There is no "first bad commit" to converge on.
            res.windowLo = 0;
            res.windowHi = 0;
            return res;
        }
        lo = pre.badWindowLo;
        hi = pre.badWindowHi;
        res.outcome = pre;
    }

    // Invariant: state+hash clean after lo commits, bad after hi.
    while (hi - lo > 1 && res.probes < opt.maxProbes &&
           Clock::now() < deadline) {
        const std::uint64_t mid = lo + (hi - lo) / 2;
        DiffOptions popt = base;
        popt.snapshotEvery = 0;
        popt.probeCommit = mid;
        const DiffOutcome probe = diffRun(prog, config, popt);
        ++res.probes;
        if (probe.localized && probe.badWindowHi == mid) {
            hi = mid;
            res.outcome = probe;
        } else {
            // Clean at mid (the probe compared and matched — by
            // determinism the run always reaches mid < hi commits).
            lo = mid;
        }
    }

    res.windowLo = lo;
    res.windowHi = hi;
    if (hi - lo == 1) {
        res.exact = true;
        res.firstBadCommit = hi;
        res.outcome.exactLocalized = true;
        res.outcome.firstBadCommit = hi;
        res.outcome.localized = true;
        res.outcome.badWindowLo = lo;
        res.outcome.badWindowHi = hi;
    }
    return res;
}

} // namespace verify
} // namespace msp
