#include "verify/fuzzer.hh"

#include "common/logging.hh"
#include "common/random.hh"
#include "isa/builder.hh"

namespace msp {
namespace verify {

namespace {

// Register convention of generated programs. Scratch registers carry
// random data; everything the generator relies on for termination or
// control flow (loop counters, bases, link) lives outside the scratch
// pool so no random write can corrupt it.
constexpr int firstScratch = 1;
constexpr int lastScratch = 19;
constexpr int loopCounterBase = 20;  ///< r20 + depth
constexpr int hotBaseReg = 24;       ///< -> hot-region byte base
constexpr int farBaseReg = 25;       ///< -> data byte 0
constexpr int linkReg = 26;          ///< JAL / RET link
constexpr int jrTargetReg = 27;      ///< indirect-call target
constexpr int condTmpReg = 28;       ///< branch-condition temporary
constexpr int numFpScratch = 12;     ///< f0..f11

/** One in-progress generation: builder + RNG + dynamic-length budget. */
class Gen
{
  public:
    Gen(ProgramBuilder &b, Rng &rng, const FuzzMix &mix)
        : b(b), rng(rng), mix(mix)
    {}

    /** Emit the helper functions callable from anywhere in the body. */
    void
    emitHelpers()
    {
        constexpr unsigned numHelpers = 4;
        for (unsigned h = 0; h < numHelpers; ++h) {
            helperPc.push_back(b.here());
            const unsigned n = static_cast<unsigned>(rng.range(2, 5));
            for (unsigned i = 0; i < n; ++i)
                emitComputeOp();
            b.ret(linkReg);
        }
    }

    /** Initialise every register the body may read. */
    void
    emitInit()
    {
        for (int r = firstScratch; r <= lastScratch; ++r) {
            // Mix small values (interesting for shifts, compares and
            // loop-ish arithmetic) with full-width randoms.
            const std::int64_t v =
                rng.chance(0.5) ? rng.range(-512, 512)
                                : static_cast<std::int64_t>(rng.next());
            b.li(r, v);
        }
        b.li(hotBaseReg, 0);
        b.li(farBaseReg,
             static_cast<std::int64_t>(mix.hotWords) * wordBytes);
        for (int f = 0; f < numFpScratch; ++f) {
            if (rng.chance(mix.fpEdgeProb)) {
                // There is no int->fp bit-move op, so bounce the
                // pattern through memory: li + st + fld. The store also
                // plants the pattern in the aliasing hot region, where
                // later loads and stores will churn it.
                const std::vector<std::uint64_t> &pats = fpEdgePatterns();
                const std::uint64_t bits = pats[rng.below(pats.size())];
                const std::int64_t off =
                    static_cast<std::int64_t>(rng.below(mix.hotWords)) *
                    wordBytes;
                b.li(condTmpReg, static_cast<std::int64_t>(bits));
                b.st(condTmpReg, hotBaseReg, off);
                b.fld(f, hotBaseReg, off);
            } else {
                b.fitof(f, scratch());
            }
        }
    }

    /** Emit the top-level block sequence until the budget is spent. */
    void
    emitBody()
    {
        const unsigned blocks = static_cast<unsigned>(
            rng.range(mix.blocksMin, mix.blocksMax));
        for (unsigned i = 0; i < blocks && estDyn < mix.targetDynamic;
             ++i) {
            emitBlock(0, 1);
        }
    }

  private:
    int scratch() { return static_cast<int>(
        rng.range(firstScratch, lastScratch)); }
    int fpScratch() { return static_cast<int>(
        rng.range(0, numFpScratch - 1)); }

    /** Random non-memory, non-control op writing a scratch register. */
    void
    emitComputeOp()
    {
        if (rng.chance(mix.weights.fp /
                       (mix.weights.fp + mix.weights.alu))) {
            emitFpOp();
        } else {
            emitAluOp();
        }
    }

    void
    emitAluOp()
    {
        const int rd = scratch();
        const int a = scratch();
        const int c = scratch();
        switch (rng.below(15)) {
          case 0: b.add(rd, a, c); break;
          case 1: b.sub(rd, a, c); break;
          case 2: b.mul(rd, a, c); break;
          case 3: b.div(rd, a, c); break;   // semantics guard /0
          case 4: b.and_(rd, a, c); break;
          case 5: b.or_(rd, a, c); break;
          case 6: b.xor_(rd, a, c); break;
          case 7: b.sll(rd, a, c); break;
          case 8: b.srl(rd, a, c); break;
          case 9: b.slt(rd, a, c); break;
          case 10: b.addi(rd, a, rng.range(-1024, 1024)); break;
          case 11: b.xori(rd, a, rng.range(0, 0xffff)); break;
          case 12: b.slli(rd, a, rng.range(0, 63)); break;
          case 13: b.srli(rd, a, rng.range(0, 63)); break;
          default: b.slti(rd, a, rng.range(-64, 64)); break;
        }
    }

    void
    emitFpOp()
    {
        const int fd = fpScratch();
        const int a = fpScratch();
        const int c = fpScratch();
        switch (rng.below(9)) {
          case 0: b.fadd(fd, a, c); break;
          case 1: b.fsub(fd, a, c); break;
          case 2: b.fmul(fd, a, c); break;
          case 3: b.fdiv(fd, a, c); break;  // semantics guard /0.0
          case 4: b.fmov(fd, a); break;
          case 5: b.fneg(fd, a); break;
          case 6: b.fitof(fd, scratch()); break;
          case 7: b.fftoi(scratch(), a); break;
          default: b.fcmplt(scratch(), a, c); break;
        }
    }

    /** Byte offset of a memory access (hot region or whole image). */
    std::int64_t
    memOffset(int &baseReg)
    {
        if (rng.chance(mix.hotProb)) {
            baseReg = hotBaseReg;
            return static_cast<std::int64_t>(rng.below(mix.hotWords)) *
                   wordBytes;
        }
        baseReg = farBaseReg;
        return static_cast<std::int64_t>(rng.below(mix.memWords)) *
               wordBytes;
    }

    void
    emitMemOp(bool isStore)
    {
        int base = 0;
        const std::int64_t off = memOffset(base);
        const bool fp = rng.chance(
            mix.weights.fp / (mix.weights.fp + mix.weights.alu));
        if (isStore) {
            if (fp)
                b.fst(fpScratch(), base, off);
            else
                b.st(scratch(), base, off);
        } else {
            if (fp)
                b.fld(fpScratch(), base, off);
            else
                b.ld(scratch(), base, off);
        }
    }

    /** A straight-line segment of weighted random instructions. */
    void
    emitSegment(std::uint64_t multiplier)
    {
        const unsigned n =
            static_cast<unsigned>(rng.range(mix.segMin, mix.segMax));
        const FuzzWeights &w = mix.weights;
        const double total = w.alu + w.fp + w.load + w.store;
        for (unsigned i = 0; i < n; ++i) {
            if (mix.trapProb > 0.0 && rng.chance(mix.trapProb)) {
                b.trap();
                continue;
            }
            const double pick = rng.toDouble() * total;
            if (pick < w.alu)
                emitAluOp();
            else if (pick < w.alu + w.fp)
                emitFpOp();
            else if (pick < w.alu + w.fp + w.load)
                emitMemOp(false);
            else
                emitMemOp(true);
        }
        estDyn += static_cast<std::uint64_t>(n) * multiplier;
    }

    /**
     * A data-dependent forward branch over a segment. The condition is
     * derived from evolving scratch data, so the direction stream is
     * effectively random — the high-misprediction case.
     */
    void
    emitCondSkip(unsigned depth, std::uint64_t multiplier)
    {
        if (rng.chance(0.5))
            b.andi(condTmpReg, scratch(), 1);
        else
            b.slt(condTmpReg, scratch(), scratch());
        Label skip = b.newLabel();
        if (rng.chance(0.5))
            b.beq(condTmpReg, 0, skip);
        else
            b.bne(condTmpReg, 0, skip);
        estDyn += 2 * multiplier;
        emitSegment(multiplier);
        if (depth < mix.maxLoopDepth && rng.chance(0.25))
            emitBlock(depth, multiplier);
        b.bind(skip);
    }

    /** A call to one of the pre-built helpers (direct or via JR). */
    void
    emitCall(std::uint64_t multiplier)
    {
        msp_assert(!helperPc.empty(), "helpers not emitted");
        const Addr target = helperPc[rng.below(helperPc.size())];
        if (rng.chance(mix.indirectProb)) {
            // Data-dependent indirect call: pick between two helper
            // addresses on a random bit, then JR. The link register is
            // set with the (statically known) return pc.
            const Addr alt = helperPc[rng.below(helperPc.size())];
            b.li(jrTargetReg, static_cast<std::int64_t>(target));
            b.andi(condTmpReg, scratch(), 1);
            Label keep = b.newLabel();
            b.beq(condTmpReg, 0, keep);
            b.li(jrTargetReg, static_cast<std::int64_t>(alt));
            b.bind(keep);
            b.li(linkReg, static_cast<std::int64_t>(b.here() + 2));
            b.jr(jrTargetReg);
            estDyn += 6 * multiplier;
        } else {
            // Direct call. The helper pc is already known, so the jal
            // is emitted raw with an absolute target (the Label fixup
            // path is only needed for forward references).
            Instruction jal;
            jal.op = Opcode::JAL;
            jal.rd = static_cast<std::int8_t>(linkReg);
            jal.imm = static_cast<std::int64_t>(target);
            b.emit(jal);
            estDyn += 1 * multiplier;
        }
        // Helper body length is bounded by 6; count the average.
        estDyn += 5 * multiplier;
    }

    /** A countdown loop with a reserved counter register. */
    void
    emitLoop(unsigned depth, std::uint64_t multiplier)
    {
        const int cnt = loopCounterBase + static_cast<int>(depth);
        const std::int64_t trip = rng.range(mix.tripMin, mix.tripMax);
        b.li(cnt, trip);
        Label top = b.newLabel();
        b.bind(top);
        const std::uint64_t bodyMult =
            multiplier * static_cast<std::uint64_t>(trip);
        const unsigned bodyBlocks = static_cast<unsigned>(rng.range(1, 2));
        for (unsigned i = 0; i < bodyBlocks; ++i)
            emitBlock(depth + 1, bodyMult);
        b.addi(cnt, cnt, -1);
        b.bne(cnt, 0, top);
        estDyn += 2 * bodyMult + multiplier;
    }

    /** One block: a loop, a conditional skip, a call, or a segment. */
    void
    emitBlock(unsigned depth, std::uint64_t multiplier)
    {
        if (estDyn >= mix.targetDynamic) {
            emitSegment(multiplier);   // budget spent: no more nesting
            return;
        }
        if (depth < mix.maxLoopDepth && rng.chance(mix.loopProb)) {
            emitLoop(depth, multiplier);
        } else if (rng.chance(mix.condProb)) {
            emitCondSkip(depth, multiplier);
        } else if (rng.chance(mix.callProb)) {
            emitCall(multiplier);
        } else {
            emitSegment(multiplier);
        }
    }

    ProgramBuilder &b;
    Rng &rng;
    const FuzzMix &mix;
    std::vector<Addr> helperPc;
    std::uint64_t estDyn = 0;
};

} // anonymous namespace

Program
fuzzProgram(std::uint64_t seed, const FuzzMix &mix)
{
    msp_assert(mix.segMin >= 1 && mix.segMax >= mix.segMin,
               "bad segment bounds");
    msp_assert(mix.tripMin >= 1 && mix.tripMax >= mix.tripMin,
               "bad trip bounds");
    msp_assert(mix.hotWords >= 1 && mix.memWords >= mix.hotWords,
               "bad memory shape");

    ProgramBuilder b(csprintf("fuzz/%s/%llu", mix.name.c_str(),
                              static_cast<unsigned long long>(seed)));
    Rng rng(seed);

    b.memSize(mix.memWords);
    b.dataFill(0, mix.memWords, [&](std::size_t) -> std::uint64_t {
        if (rng.chance(mix.fpEdgeProb)) {
            const std::vector<std::uint64_t> &pats = fpEdgePatterns();
            return pats[rng.below(pats.size())];
        }
        return rng.next();
    });

    Gen gen(b, rng, mix);
    Label start = b.newLabel();
    b.j(start);
    gen.emitHelpers();
    b.bind(start);
    gen.emitInit();
    gen.emitBody();
    b.halt();
    return b.finish();
}

const std::vector<std::uint64_t> &
fpEdgePatterns()
{
    static const std::vector<std::uint64_t> patterns = {
        0x0000000000000000ull,  // +0.0
        0x8000000000000000ull,  // -0.0
        0x0000000000000001ull,  // smallest subnormal
        0x000fffffffffffffull,  // largest subnormal
        0x0010000000000000ull,  // smallest normal
        0x7fefffffffffffffull,  // largest finite
        0x7ff0000000000000ull,  // +inf
        0xfff0000000000000ull,  // -inf
        0x7ff8000000000000ull,  // canonical qNaN
        0x7ff8dead0000beefull,  // qNaN with payload
        0xfff4000000000001ull,  // -sNaN with payload
        0x43e0000000000000ull,  // 2^63 (FFTOI saturates)
        0xc3e0000000000000ull,  // -2^63 (FFTOI boundary)
        0x43dfffffffffffffull,  // largest double < 2^63
        0xc3e0000000000001ull,  // first double < -2^63
        0x3ff0000000000001ull,  // 1.0 + 1 ulp
    };
    return patterns;
}

const std::vector<FuzzMix> &
standardMixes()
{
    static const std::vector<FuzzMix> mixes = [] {
        std::vector<FuzzMix> v;

        FuzzMix mixed;             // the FuzzMix defaults *are* "mixed"
        v.push_back(mixed);

        FuzzMix branchy;
        branchy.name = "branchy";
        branchy.segMin = 1;
        branchy.segMax = 4;
        branchy.condProb = 0.8;
        branchy.loopProb = 0.3;
        branchy.callProb = 0.2;
        branchy.weights.fp = 0.1;
        branchy.weights.load = 0.2;
        branchy.weights.store = 0.15;
        branchy.blocksMax = 24;
        v.push_back(branchy);

        FuzzMix memory;
        memory.name = "memory";
        memory.weights.load = 1.2;
        memory.weights.store = 0.9;
        memory.weights.fp = 0.15;
        memory.hotWords = 8;
        memory.hotProb = 0.85;
        memory.memWords = 256;
        memory.loopProb = 0.45;
        v.push_back(memory);

        FuzzMix fploop;
        fploop.name = "fploop";
        fploop.weights.fp = 1.5;
        fploop.weights.load = 0.4;
        fploop.weights.store = 0.3;
        fploop.loopProb = 0.55;
        fploop.tripMax = 8;
        fploop.trapProb = 0.005;
        v.push_back(fploop);

        // fploop shape, but data memory and the initial fp registers
        // are salted with crafted corner-case bit patterns so every
        // seed hits denormals, infinities, NaN payloads and the FFTOI
        // saturation boundaries on purpose.
        FuzzMix fpedge = fploop;
        fpedge.name = "fpedge";
        fpedge.weights.load = 0.6;
        fpedge.weights.store = 0.4;
        fpedge.fpEdgeProb = 0.35;
        fpedge.memWords = 256;
        v.push_back(fpedge);

        return v;
    }();
    return mixes;
}

const FuzzMix *
findMix(const std::string &name)
{
    for (const FuzzMix &m : standardMixes())
        if (m.name == name)
            return &m;
    return nullptr;
}

} // namespace verify
} // namespace msp
