/**
 * @file
 * Exact-commit bisection of a localised divergence.
 *
 * Snapshot compares (DiffOptions::snapshotEvery) pin a divergence to a
 * [badWindowLo, badWindowHi) commit window no wider than the cadence.
 * This stage closes the remaining gap: it re-runs the job with
 * binary-searched probe points (window/2, window/4, ...) restricted to
 * the bad window — each probe is one deterministic diffRun with a
 * single extra snapshot compare (DiffOptions::probeCommit) — until the
 * window is one commit wide. The result is the 1-based index of the
 * first divergent commit, recorded as DiffOutcome::firstBadCommit and
 * carried into the JSON report as "first_bad_commit".
 *
 * The search exploits determinism: the same (program, machine) pair
 * always commits the same stream, so "clean after N commits" answered
 * by one run composes with answers from other runs. The running
 * commit-stream hash is folded into every probe compare, so transient
 * corruption (a wrong value overwritten again before the probe point)
 * moves the window exactly like persistent corruption does.
 */

#ifndef MSPLIB_VERIFY_BISECT_HH
#define MSPLIB_VERIFY_BISECT_HH

#include <cstdint>

#include "isa/program.hh"
#include "sim/machine.hh"
#include "verify/oracle.hh"

namespace msp {
namespace verify {

/** Bounds on one bisection search. */
struct BisectOptions
{
    /**
     * Hard cap on probe runs. A window of width W needs ceil(log2(W))
     * probes, so the default never binds for realistic programs; it is
     * a backstop against pathological windows.
     */
    unsigned maxProbes = 64;

    /** Wall-clock budget in seconds; 0 = none. */
    double budgetSec = 0.0;

    /**
     * Cadence of the pre-pass that is run when the original outcome
     * carries no bad window (the campaign ran without --snapshot-every)
     * as a fraction of the diverging run's commit count: cadence =
     * max(1, commits / prepassDivisor).
     */
    std::uint64_t prepassDivisor = 4;
};

/** Outcome of bisecting one localised divergence. */
struct BisectResult
{
    bool exact = false;            ///< converged to a single commit
    std::uint64_t firstBadCommit = 0;  ///< 1-based first divergent commit

    /** Final window (exact: [firstBadCommit-1, firstBadCommit)). */
    std::uint64_t windowLo = 0;
    std::uint64_t windowHi = 0;

    unsigned probes = 0;           ///< diffRun re-executions spent

    /**
     * Outcome of the last failing probe, with exactLocalized /
     * firstBadCommit set when the search converged. When no probe ran
     * (the window was already one commit wide) this is @p orig with the
     * exact fields filled in.
     */
    DiffOutcome outcome;
};

/**
 * Bisect @p orig — a diverging outcome of running @p prog on
 * @p config under @p base — down to its first divergent commit.
 *
 * When @p orig is not localised (no snapshot cadence was active), a
 * pre-pass re-runs the job with a coarse cadence first; a divergence
 * with no mid-run signature at all (e.g. a pure commit-count mismatch
 * whose common prefix is clean) comes back exact=false.
 *
 * Deterministic: probes depend only on (prog, config, base) and the
 * window, never on scheduling. @p base is used with its snapshotEvery
 * cleared and probeCommit set per probe.
 */
BisectResult bisectFirstBadCommit(const Program &prog,
                                  const MachineConfig &config,
                                  const DiffOutcome &orig,
                                  const DiffOptions &base,
                                  const BisectOptions &opt = BisectOptions{});

} // namespace verify
} // namespace msp

#endif // MSPLIB_VERIFY_BISECT_HH
