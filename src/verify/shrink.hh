/**
 * @file
 * Automatic shrinking of diverging differential jobs.
 *
 * A raw divergence is a whole-run fact: one stream-hash mismatch over a
 * multi-thousand-instruction fuzzed program. The shrinker turns it into
 * a minimal bug report by bisecting the fuzz mix — program length
 * (targetDynamic), block/segment/trip shape, loop depth, memory
 * footprint and feature probabilities — and re-fuzzing with the same
 * seed until no reduction still reproduces a divergence of the original
 * kind. The result is a ReproSpec (seed + reduced mix + machine preset)
 * small enough to read, serialisable into the JSON report, and
 * replayable with `msp_sim verify --repro <report>`.
 */

#ifndef MSPLIB_VERIFY_SHRINK_HH
#define MSPLIB_VERIFY_SHRINK_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "verify/diff_campaign.hh"
#include "verify/fuzzer.hh"
#include "verify/oracle.hh"

namespace msp {
namespace verify {

/** Everything needed to regenerate and re-run one diverging program. */
struct ReproSpec
{
    FuzzMix mix;                 ///< (possibly reduced) fuzz mix
    std::uint64_t seed = 1;      ///< program-generation seed

    /**
     * The complete machine spec (serialised through sim/spec.hh), so a
     * repro replays bit-identically even when no CLI preset names the
     * machine — ablation configs, fault-injected test machines, any
     * custom spec. This is the replay authority.
     */
    MachineConfig machine;
    bool hasMachine = false;     ///< false only for pre-spec legacy docs

    std::string preset;          ///< cosmetic CLI label ("" if custom)
    std::string predictor;       ///< cosmetic: "gshare" or "tage"
    std::string kind;            ///< divergence kind this reproduces
    std::uint64_t maxInsts = 1u << 20;
    std::uint64_t snapshotEvery = 0;
};

/** Bounds on one shrink search. */
struct ShrinkOptions
{
    /** Hard cap on re-fuzz + re-run attempts (each is one diffRun). */
    unsigned maxAttempts = 48;

    /**
     * Wall-clock budget in seconds; 0 = none. The budget spans one
     * whole shrinkFailures() invocation — it is *not* re-granted per
     * failing job — so a many-failure run stays bounded. On expiry the
     * best reproducers found so far are returned and the remaining
     * failing jobs are left unshrunk.
     */
    double budgetSec = 0.0;
};

/** Outcome of shrinking one diverging job. */
struct ShrinkResult
{
    ReproSpec repro;             ///< minimal reproducing spec found
    DiffOutcome outcome;         ///< outcome of replaying @ref repro

    bool reproduced = false;     ///< re-fuzzing hit the original kind
    bool shrunk = false;         ///< repro is strictly smaller

    std::uint64_t origDynamic = 0;    ///< original dynamic length
    std::uint64_t shrunkDynamic = 0;  ///< reproducer dynamic length
    std::uint64_t origStatic = 0;     ///< original static instructions
    std::uint64_t shrunkStatic = 0;   ///< reproducer static instructions
    unsigned attempts = 0;            ///< diffRun re-executions spent
};

/**
 * Shrink one diverging job. @p orig is the divergence being chased; a
 * candidate counts as reproducing when it reports at least one
 * divergence of a kind @p orig also reported.
 */
ShrinkResult shrinkDivergence(const DiffJob &job, const DiffOutcome &orig,
                              const ShrinkOptions &opt = ShrinkOptions{});

/** Called after each failing job finishes shrinking. */
using ShrinkProgressFn =
    std::function<void(const ShrinkResult &, std::size_t done,
                       std::size_t total)>;

/**
 * Run every failing (non-skipped, non-"ref-no-halt") outcome of a
 * campaign through the shrinker. @p jobs and @p outcomes are parallel
 * arrays in submission order (DiffCampaign::pending() / run()).
 */
std::vector<ShrinkResult>
shrinkFailures(const std::vector<DiffJob> &jobs,
               const std::vector<DiffOutcome> &outcomes,
               const ShrinkOptions &opt = ShrinkOptions{},
               const ShrinkProgressFn &progress = nullptr);

} // namespace verify
} // namespace msp

#endif // MSPLIB_VERIFY_SHRINK_HH
