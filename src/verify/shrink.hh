/**
 * @file
 * Automatic shrinking of diverging differential jobs.
 *
 * A raw divergence is a whole-run fact: one stream-hash mismatch over a
 * multi-thousand-instruction fuzzed program. The shrinker turns it into
 * a minimal bug report in up to three tiers:
 *
 *  1. *Mix shrinking* (always): bisect the fuzz mix — program length
 *     (targetDynamic), block/segment/trip shape, loop depth, memory
 *     footprint and feature probabilities — re-fuzzing with the same
 *     seed until no reduction still reproduces a divergence of the
 *     original kind.
 *  2. *Exact-commit bisection* (ShrinkOptions::bisectExact): re-run
 *     the original job with binary-searched probe points until the
 *     snapshot-localised bad window is one commit wide
 *     (verify/bisect.hh), pinning firstBadCommit.
 *  3. *Structural reduction* (ShrinkOptions::reduce): delta-debug the
 *     mix-shrunk program image itself — drop whole blocks, helpers and
 *     loop bodies, relinking branch targets — for a reproducer smaller
 *     than any mix can express (verify/reduce.hh).
 *
 * The result is a ReproSpec (seed + reduced mix + machine spec, plus
 * the reduced image when tier 3 removed anything) small enough to
 * read, serialisable into the JSON report, and replayable with
 * `msp_sim verify --repro <report>`.
 */

#ifndef MSPLIB_VERIFY_SHRINK_HH
#define MSPLIB_VERIFY_SHRINK_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "verify/diff_campaign.hh"
#include "verify/fuzzer.hh"
#include "verify/oracle.hh"

namespace msp {
namespace verify {

/** Everything needed to regenerate and re-run one diverging program. */
struct ReproSpec
{
    FuzzMix mix;                 ///< (possibly reduced) fuzz mix
    std::uint64_t seed = 1;      ///< program-generation seed

    /**
     * Structurally reduced image (verify/reduce.hh). When set, this is
     * the replay authority for the *program* — a reduced image cannot
     * be regenerated from (seed, mix) — and it is embedded verbatim in
     * the JSON report. Null for mix-only reproducers.
     */
    std::shared_ptr<const Program> program;

    /**
     * 1-based first divergent commit of *this repro's replay program*
     * (the embedded image when set, the (seed, mix) regeneration
     * otherwise) — so the index is valid for what `--repro` actually
     * runs. The original job's index lives on its result row
     * (DiffOutcome::firstBadCommit). 0 = not exactly bisected.
     */
    std::uint64_t firstBadCommit = 0;

    /**
     * The complete machine spec (serialised through sim/spec.hh), so a
     * repro replays bit-identically even when no CLI preset names the
     * machine — ablation configs, fault-injected test machines, any
     * custom spec. This is the replay authority.
     */
    MachineConfig machine;
    bool hasMachine = false;     ///< false only for pre-spec legacy docs

    std::string preset;          ///< cosmetic CLI label ("" if custom)
    std::string predictor;       ///< cosmetic: "gshare" or "tage"
    std::string kind;            ///< divergence kind this reproduces
    std::uint64_t maxInsts = 1u << 20;
    std::uint64_t snapshotEvery = 0;
};

/** Bounds on one shrink search. */
struct ShrinkOptions
{
    /** Hard cap on re-fuzz + re-run attempts (each is one diffRun). */
    unsigned maxAttempts = 48;

    /**
     * Wall-clock budget in seconds; 0 = none. The budget spans one
     * whole shrinkFailures() invocation — it is *not* re-granted per
     * failing job — so a many-failure run stays bounded. On expiry the
     * best reproducers found so far are returned and every failing job
     * whose search never ran (or was cut short) is returned with
     * timedOut=true.
     */
    double budgetSec = 0.0;

    /** Tier 2: bisect each divergence to its exact first bad commit. */
    bool bisectExact = false;

    /** Tier 3: structurally reduce the mix-shrunk program image. */
    bool reduce = false;

    /** Candidate-evaluation cap per job for tier 3 (ReduceOptions). */
    unsigned reduceMaxAttempts = 192;

    /**
     * Worker count for fanning tier-3 candidates across the
     * driver::parallelFor pool; 0 = one per hardware thread.
     */
    unsigned threads = 0;
};

/** Outcome of shrinking one diverging job. */
struct ShrinkResult
{
    ReproSpec repro;             ///< minimal reproducing spec found
    DiffOutcome outcome;         ///< outcome of replaying @ref repro

    std::size_t jobIndex = 0;    ///< submission index of the job

    bool reproduced = false;     ///< re-fuzzing hit the original kind
    bool shrunk = false;         ///< repro is strictly smaller

    /**
     * The shared shrinkFailures() deadline expired before this job's
     * search ran to completion: the fields below describe a partial
     * (possibly empty) search, not a finished one.
     */
    bool timedOut = false;

    std::uint64_t origDynamic = 0;    ///< original dynamic length
    std::uint64_t shrunkDynamic = 0;  ///< mix-shrunk dynamic length
    std::uint64_t origStatic = 0;     ///< original static instructions
    std::uint64_t shrunkStatic = 0;   ///< mix-shrunk static instructions
    unsigned attempts = 0;            ///< diffRun re-executions spent

    // ---- tier 2: exact-commit bisection (opt.bisectExact) ----------------
    bool exactBisected = false;       ///< converged to a single commit
    std::uint64_t firstBadCommit = 0; ///< 1-based first divergent commit
                                      ///< of the *original job's* run
                                      ///< (repro.firstBadCommit indexes
                                      ///< the replay program instead)
    unsigned bisectProbes = 0;        ///< probe runs spent

    // ---- tier 3: structural reduction (opt.reduce) -----------------------
    bool reduced = false;             ///< image strictly smaller than
                                      ///< the mix-shrunk program
    std::uint64_t reducedStatic = 0;  ///< reduced static instructions
    std::uint64_t reducedDynamic = 0; ///< reduced dynamic length

    // ---- divergence dedup (verify/corpus.hh, --coverage) -----------------
    /**
     * Size of this repro's dedup group — how many failures folded into
     * this one representative (>= 2 on an actual fold). 0 = dedup did
     * not run.
     */
    std::uint64_t duplicates = 0;
};

/**
 * Shrink one diverging job. @p orig is the divergence being chased; a
 * candidate counts as reproducing when it reports at least one
 * divergence of a kind @p orig also reported.
 */
ShrinkResult shrinkDivergence(const DiffJob &job, const DiffOutcome &orig,
                              const ShrinkOptions &opt = ShrinkOptions{});

/** Called after each failing job finishes shrinking. */
using ShrinkProgressFn =
    std::function<void(const ShrinkResult &, std::size_t done,
                       std::size_t total)>;

/**
 * Run every failing (non-skipped, non-"ref-no-halt") outcome of a
 * campaign through the shrinker. @p jobs and @p outcomes are parallel
 * arrays in submission order (DiffCampaign::pending() / run()).
 *
 * Returns one ShrinkResult per failing job, always: jobs the shared
 * budget never reached come back with timedOut=true and an unshrunk
 * repro (identity only), never silently dropped — a partial triage
 * pass must be visible in the report.
 *
 * With opt.bisectExact, a converged bisection is also written back
 * onto the job's own outcome (exactLocalized / firstBadCommit), so
 * toJson emits first_bad_commit on the result row as well as the
 * repro entry for every caller — hence the mutable @p outcomes (the
 * same contract applyTimingInvariant has).
 */
std::vector<ShrinkResult>
shrinkFailures(const std::vector<DiffJob> &jobs,
               std::vector<DiffOutcome> &outcomes,
               const ShrinkOptions &opt = ShrinkOptions{},
               const ShrinkProgressFn &progress = nullptr);

} // namespace verify
} // namespace msp

#endif // MSPLIB_VERIFY_SHRINK_HH
