/**
 * @file
 * Seeded program fuzzer for differential verification.
 *
 * Generates well-formed random programs through isa/builder: every
 * control transfer targets a bound label or a known helper pc, every
 * backward branch is a countdown loop with a dedicated counter
 * register, and every program ends in HALT — so generated programs are
 * guaranteed to terminate with a statically bounded dynamic length,
 * regardless of what the random data computes.
 *
 * The instruction mix (ALU / fp / memory / control weights, loop-nest
 * depth, store-to-load aliasing pressure) is parameterised by FuzzMix
 * so one generator covers branchy integer code, aliasing memory
 * traffic and fp loop nests alike.
 */

#ifndef MSPLIB_VERIFY_FUZZER_HH
#define MSPLIB_VERIFY_FUZZER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "isa/program.hh"

namespace msp {
namespace verify {

/** Relative instruction-selection weights of one straight-line slot. */
struct FuzzWeights
{
    double alu = 1.0;      ///< integer reg-reg / reg-imm ops
    double fp = 0.35;      ///< fp arithmetic, converts, compares
    double load = 0.35;    ///< LD / FLD
    double store = 0.25;   ///< ST / FST
};

/** Everything that shapes one generated program. */
struct FuzzMix
{
    std::string name = "mixed";   ///< mix id carried into reports

    FuzzWeights weights;

    // Control-flow shape.
    unsigned blocksMin = 8;       ///< top-level blocks per program
    unsigned blocksMax = 16;
    unsigned segMin = 3;          ///< instructions per straight segment
    unsigned segMax = 10;
    double loopProb = 0.35;       ///< chance a block is a countdown loop
    unsigned maxLoopDepth = 3;    ///< loop-nest depth limit
    unsigned tripMin = 2;         ///< loop trip counts (static)
    unsigned tripMax = 6;
    double condProb = 0.45;       ///< chance a block is a forward branch
    double callProb = 0.10;       ///< chance a block calls a helper
    double indirectProb = 0.5;    ///< fraction of calls made via JR tables
    double trapProb = 0.01;       ///< per-segment-slot TRAP probability

    // Memory shape.
    unsigned memWords = 512;      ///< data-memory words (rounded to 2^k)
    unsigned hotWords = 12;       ///< aliasing hot-region size
    double hotProb = 0.65;        ///< memory ops hitting the hot region

    /**
     * Probability that a data word / initial fp register is seeded with
     * a crafted fp bit pattern (denormals, ±0, ±inf, NaN payloads,
     * FFTOI-saturation boundaries) instead of a uniform random, so fp
     * corner cases are reached deliberately rather than by accident.
     */
    double fpEdgeProb = 0.0;

    /** Stop opening new blocks past this estimated dynamic length. */
    std::uint64_t targetDynamic = 6000;
};

/**
 * Generate one program. The same (seed, mix) pair always produces a
 * bit-identical image; the mix name and seed are encoded in the
 * program name ("fuzz/<mix>/<seed>").
 */
Program fuzzProgram(std::uint64_t seed, const FuzzMix &mix = FuzzMix{});

/**
 * The crafted IEEE-754 bit patterns fpEdgeProb draws from: signed
 * zeros, min/max subnormals, min normal, max finite, ±inf, quiet and
 * signalling NaNs with payloads, and the FFTOI saturation boundaries
 * around ±2^63.
 */
const std::vector<std::uint64_t> &fpEdgePatterns();

/**
 * The standard mix set swept by `msp_sim verify`: "mixed" (everything),
 * "branchy" (short segments, dense hard-to-predict control flow),
 * "memory" (high load/store weight on a tiny hot region), "fploop"
 * (fp-heavy loop nests) and "fpedge" (fp loops over data and registers
 * seeded with crafted corner-case bit patterns).
 */
const std::vector<FuzzMix> &standardMixes();

/** Look up a standard mix by name; nullptr when unknown. */
const FuzzMix *findMix(const std::string &name);

} // namespace verify
} // namespace msp

#endif // MSPLIB_VERIFY_FUZZER_HH
