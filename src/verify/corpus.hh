/**
 * @file
 * Coverage-guided campaign corpus, mix auto-tuner and divergence dedup.
 *
 * The corpus keeps exactly the (mix, seed) runs whose coverage map
 * added at least one new (feature, bucket) bit over everything admitted
 * before — the minimal seed set that reproduces the campaign's whole
 * path coverage deterministically (every entry carries its full FuzzMix,
 * so `fuzzProgram(seed, mix)` regenerates the program bit-identically).
 *
 * Persistence is JSONL with the driver/state checkpoint conventions: a
 * header line, one record per entry, atomic rewrite on save, and a torn
 * *trailing* record on load is quarantined to FILE.torn while anything
 * torn earlier fails loudly (driver::CheckpointError).
 *
 * Admission order is the campaign's submission order — deliberately
 * sequential, after the parallel wave completes — so the corpus (and
 * everything tuned from it) is bit-identical at any --threads.
 */

#ifndef MSPLIB_VERIFY_CORPUS_HH
#define MSPLIB_VERIFY_CORPUS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "isa/program.hh"
#include "verify/coverage.hh"
#include "verify/fuzzer.hh"
#include "verify/shrink.hh"

namespace msp {
namespace verify {

/** One coverage-novel run the corpus kept. */
struct CorpusEntry
{
    FuzzMix mix;                 ///< full mix (deterministic replay)
    std::uint64_t seed = 0;      ///< program-generation seed
    std::uint64_t wave = 0;      ///< campaign wave that found it
    std::uint64_t newBits = 0;   ///< bits this entry added at admission
    CoverageMap coverage;        ///< the run's own map
};

/** The coverage-novel seed set plus its aggregated map. */
class Corpus
{
  public:
    /**
     * Load a corpus file. Returns false when @p path does not exist
     * (a fresh corpus — not an error). A torn trailing record is
     * dropped and quarantined to @p path + ".torn".
     *
     * @throws driver::CheckpointError when the file is not a corpus,
     * its (features, buckets) shape does not match this build, or a
     * non-trailing record is corrupt.
     */
    bool load(const std::string &path);

    /** Atomically rewrite @p path (driver::writeFile temp + rename). */
    void save(const std::string &path) const;

    /**
     * Offer one run: admitted (true) iff @p cov sets at least one bit
     * the aggregate lacks; the aggregate absorbs it either way only on
     * admission (a non-novel run adds nothing by definition).
     */
    bool consider(const FuzzMix &mix, std::uint64_t seed,
                  std::uint64_t wave, const CoverageMap &cov);

    /** Union of every admitted entry's map. */
    const CoverageMap &aggregate() const { return agg; }

    const std::vector<CorpusEntry> &entries() const { return list; }

    /** Records dropped from the torn tail of the loaded file. */
    std::size_t tornRecords() const { return torn; }

  private:
    CoverageMap agg;
    std::vector<CorpusEntry> list;
    std::size_t torn = 0;
};

/**
 * Between-wave mix auto-tuner: reweight @p base toward the coverage
 * holes of @p aggregate. Each knob family (control-flow probabilities,
 * memory aliasing pressure, fp/SCT pressure, …) is boosted in
 * proportion to how empty its feature group still is, with bounded
 * jitter from a seeded Rng. A pure function of its arguments — same
 * (base, aggregate, wave, seed) always returns the same mixes, so
 * multi-wave campaigns stay bit-identical at any --threads. Returned
 * mixes are renamed "<name>~w<wave>" so wave jobs (and their generated
 * program names) stay distinct from wave 0's.
 */
std::vector<FuzzMix> tuneMixes(const std::vector<FuzzMix> &base,
                               const CoverageMap &aggregate,
                               unsigned wave, std::uint64_t seed);

/** FNV-1a over the opcode sequence of @p p — its control "shape". */
std::uint64_t programShapeHash(const Program &p);

/**
 * Canonical identity of one triaged failure:
 * kind | first_bad_commit | shape hash of the embedded reduced program
 * ("-" when none is embedded). Two failures with the same key are the
 * same root cause *as far as the triage that ran can tell* — without
 * --bisect-exact / --reduce the last two components degenerate and
 * dedup folds by kind alone.
 */
std::string dedupKey(const ShrinkResult &s);

/**
 * Fold duplicate repros in place: for each dedupKey group, keep the
 * lowest-jobIndex representative and set its ShrinkResult::duplicates
 * to the group size (every survivor gets duplicates >= 1). Returns the
 * number of repros folded away.
 */
std::size_t dedupShrinks(std::vector<ShrinkResult> &shrinks);

} // namespace verify
} // namespace msp

#endif // MSPLIB_VERIFY_CORPUS_HH
