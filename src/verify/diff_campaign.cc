#include "verify/diff_campaign.hh"

#include <atomic>
#include <chrono>
#include <map>
#include <mutex>
#include <utility>

#include "driver/campaign.hh"

namespace msp {
namespace verify {

DiffCampaign::DiffCampaign(unsigned threads) : requestedThreads(threads)
{
}

std::size_t
DiffCampaign::add(DiffJob job)
{
    jobs.push_back(std::move(job));
    return jobs.size() - 1;
}

void
DiffCampaign::addSweep(const std::vector<FuzzMix> &mixes, unsigned seeds,
                       std::uint64_t baseSeed,
                       const std::vector<MachineConfig> &configs,
                       std::uint64_t maxInsts)
{
    std::uint64_t index = 0;
    for (const FuzzMix &mix : mixes) {
        for (unsigned s = 0; s < seeds; ++s) {
            const std::uint64_t seed = driver::jobSeed(baseSeed, index++);
            for (const MachineConfig &cfg : configs) {
                DiffJob j;
                j.mix = mix;
                j.seed = seed;
                j.config = cfg;
                j.maxInsts = maxInsts;
                add(std::move(j));
            }
        }
    }
}

unsigned
DiffCampaign::effectiveThreads() const
{
    return driver::effectivePoolThreads(requestedThreads, jobs.size());
}

void
DiffCampaign::setSnapshotEvery(std::uint64_t every)
{
    for (DiffJob &j : jobs)
        j.snapshotEvery = every;
}

std::vector<DiffOutcome>
DiffCampaign::run(const DiffProgressFn &progress)
{
    // The wall clock starts before program generation: fuzzing the
    // images is part of the work --budget-sec promises to bound.
    const auto startTime = std::chrono::steady_clock::now();
    const auto overBudget = [&] {
        if (budgetSec <= 0.0)
            return false;
        const std::chrono::duration<double> elapsed =
            std::chrono::steady_clock::now() - startTime;
        return elapsed.count() >= budgetSec;
    };

    // Fuzz each distinct (mix, seed) program once, sequentially, before
    // the pool starts: program images never depend on worker
    // scheduling, and configs sharing a program share one image. An
    // expired budget stops generation too — jobs left without a
    // program are skipped below.
    std::map<std::pair<std::string, std::uint64_t>,
             std::shared_ptr<const Program>> programs;
    for (DiffJob &j : jobs) {
        if (j.program || overBudget())
            continue;
        const auto key = std::make_pair(j.mix.name, j.seed);
        auto it = programs.find(key);
        if (it == programs.end()) {
            it = programs.emplace(key, std::make_shared<Program>(
                                      fuzzProgram(j.seed, j.mix)))
                     .first;
        }
        j.program = it->second;
    }

    std::vector<DiffOutcome> out(jobs.size());
    std::size_t done = 0;
    std::mutex mu;              // guards done + progress callback

    // Cooperative cancellation for fail-fast / budget: checked before a
    // job *starts*; running jobs always finish, so executed outcomes
    // stay bit-identical for any thread count.
    std::atomic<bool> stop{false};

    driver::parallelFor(requestedThreads, jobs.size(),
                        [&](std::size_t i) {
        const DiffJob &j = jobs[i];
        DiffOutcome o;
        if (stop.load(std::memory_order_relaxed) || !j.program ||
            overBudget()) {
            o.skipped = true;
            o.config = j.config.name;
            o.workload = j.program ? j.program->name : "";
        } else {
            DiffOptions opt;
            opt.maxInsts = j.maxInsts;
            opt.maxCycles = j.maxCycles;
            opt.snapshotEvery = j.snapshotEvery;
            o = diffRun(*j.program, j.config, opt);
            if (failFast && !o.ok())
                stop.store(true, std::memory_order_relaxed);
        }
        o.mix = j.mix.name;
        o.seed = j.seed;
        out[i] = std::move(o);

        std::lock_guard<std::mutex> lock(mu);
        ++done;
        if (progress)
            progress(out[i], done, jobs.size());
    });
    return out;
}

} // namespace verify
} // namespace msp
