#include "verify/diff_campaign.hh"

#include <atomic>
#include <chrono>
#include <map>
#include <mutex>
#include <utility>

#include "common/logging.hh"
#include "driver/campaign.hh"
#include "driver/state.hh"
#include "sim/presets.hh"
#include "sim/spec.hh"
#include "verify/report.hh"

namespace msp {
namespace verify {

DiffCampaign::DiffCampaign(unsigned threads) : requestedThreads(threads)
{
}

std::size_t
DiffCampaign::add(DiffJob job)
{
    jobs.push_back(std::move(job));
    return jobs.size() - 1;
}

void
DiffCampaign::addSweep(const std::vector<FuzzMix> &mixes, unsigned seeds,
                       std::uint64_t baseSeed,
                       const std::vector<MachineConfig> &configs,
                       std::uint64_t maxInsts)
{
    std::uint64_t index = 0;
    for (const FuzzMix &mix : mixes) {
        for (unsigned s = 0; s < seeds; ++s) {
            const std::uint64_t seed = driver::jobSeed(baseSeed, index++);
            for (const MachineConfig &cfg : configs) {
                DiffJob j;
                j.mix = mix;
                j.seed = seed;
                j.config = cfg;
                j.maxInsts = maxInsts;
                add(std::move(j));
            }
        }
    }
}

unsigned
DiffCampaign::effectiveThreads() const
{
    return driver::effectivePoolThreads(requestedThreads, jobs.size());
}

void
DiffCampaign::setSnapshotEvery(std::uint64_t every)
{
    for (DiffJob &j : jobs)
        j.snapshotEvery = every;
}

void
DiffCampaign::restrictToShard(unsigned shard, unsigned shards)
{
    // Group jobs by fuzzed program: addSweep keeps every config of one
    // (mix, seed) contiguous, so a group is a maximal run of equal
    // keys. Sharding whole groups keeps applyTimingInvariant's
    // ideal/16-SP comparisons intra-shard.
    std::vector<std::size_t> groupOf(jobs.size());
    std::size_t groups = 0;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        if (i > 0 && (jobs[i].mix.name != jobs[i - 1].mix.name ||
                      jobs[i].seed != jobs[i - 1].seed)) {
            ++groups;
        }
        groupOf[i] = groups;
    }
    if (!jobs.empty())
        ++groups;

    std::vector<bool> keepGroup(groups, false);
    for (std::size_t g : driver::shardSelect(groups, shard, shards))
        keepGroup[g] = true;

    std::vector<DiffJob> kept;
    std::vector<std::uint64_t> indices;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        if (!keepGroup[groupOf[i]])
            continue;
        indices.push_back(globalIndex.empty() ? i : globalIndex[i]);
        kept.push_back(std::move(jobs[i]));
    }
    jobs = std::move(kept);
    globalIndex = std::move(indices);
}

std::string
diffJobKey(const DiffJob &job)
{
    std::string identity = mixToJson(job.mix) + "|";
    identity += csprintf("%llu|%llu|%llu|%llu|",
                         static_cast<unsigned long long>(job.seed),
                         static_cast<unsigned long long>(job.maxInsts),
                         static_cast<unsigned long long>(job.maxCycles),
                         static_cast<unsigned long long>(
                             job.snapshotEvery));
    if (job.program)
        identity += job.program->name + "|";
    identity += specToJson(job.config);
    return driver::stateHash(identity);
}

std::vector<DiffOutcome>
DiffCampaign::run(const DiffProgressFn &progress)
{
    const auto gidx = [&](std::size_t i) {
        return globalIndex.empty() ? i : globalIndex[i];
    };

    // Bind the state backend: job identity keys, then any restored
    // records (see driver::CampaignState). Only completed, non-skipped
    // outcomes were ever recorded, so a restored payload is always a
    // real run.
    std::vector<std::string> keys;
    const bool durable = state && state->enabled();
    if (durable) {
        std::vector<std::uint64_t> indices;
        indices.reserve(jobs.size());
        keys.reserve(jobs.size());
        for (std::size_t i = 0; i < jobs.size(); ++i) {
            indices.push_back(gidx(i));
            keys.push_back(diffJobKey(jobs[i]));
        }
        state->begin("verify", indices, keys);
    }
    const auto restored = [&](std::size_t i) -> const std::string * {
        return durable ? state->completedPayload(gidx(i)) : nullptr;
    };

    // The wall clock starts before program generation: fuzzing the
    // images is part of the work --budget-sec promises to bound.
    const auto startTime = std::chrono::steady_clock::now();
    const auto overBudget = [&] {
        if (budgetSec <= 0.0)
            return false;
        const std::chrono::duration<double> elapsed =
            std::chrono::steady_clock::now() - startTime;
        return elapsed.count() >= budgetSec;
    };

    // Fuzz each distinct (mix, seed) program once, sequentially, before
    // the pool starts: program images never depend on worker
    // scheduling, and configs sharing a program share one image. An
    // expired budget stops generation too — jobs left without a
    // program are skipped below. Restored jobs need no image (the
    // shrinker regenerates from (seed, mix) on demand, deterministically
    // identical to what this loop would build).
    std::map<std::pair<std::string, std::uint64_t>,
             std::shared_ptr<const Program>> programs;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        DiffJob &j = jobs[i];
        if (j.program || restored(i) || overBudget())
            continue;
        const auto key = std::make_pair(j.mix.name, j.seed);
        auto it = programs.find(key);
        if (it == programs.end()) {
            it = programs.emplace(key, std::make_shared<Program>(
                                      fuzzProgram(j.seed, j.mix)))
                     .first;
        }
        j.program = it->second;
    }

    std::vector<DiffOutcome> out(jobs.size());
    std::size_t done = 0;
    std::mutex mu;              // guards done + progress + state

    // Cooperative cancellation for fail-fast / budget: checked before a
    // job *starts*; running jobs always finish, so executed outcomes
    // stay bit-identical for any thread count.
    std::atomic<bool> stop{false};

    driver::parallelFor(requestedThreads, jobs.size(),
                        [&](std::size_t i) {
        const DiffJob &j = jobs[i];
        DiffOutcome o;
        bool fresh = false;
        if (const std::string *payload = restored(i)) {
            o = outcomeFromJson(*payload);
        } else if (stop.load(std::memory_order_relaxed) || !j.program ||
                   overBudget() || driver::campaignStopRequested()) {
            o.skipped = true;
            o.config = j.config.name;
            o.workload = j.program ? j.program->name : "";
        } else {
            DiffOptions opt;
            opt.maxInsts = j.maxInsts;
            opt.maxCycles = j.maxCycles;
            opt.snapshotEvery = j.snapshotEvery;
            opt.collectCoverage = collectCoverage;
            o = diffRun(*j.program, j.config, opt);
            if (failFast && !o.ok())
                stop.store(true, std::memory_order_relaxed);
            fresh = true;
        }
        o.index = gidx(i);
        o.mix = j.mix.name;
        o.seed = j.seed;
        out[i] = std::move(o);

        std::lock_guard<std::mutex> lock(mu);
        // Skipped outcomes are never persisted: a --resume must re-run
        // jobs that fail-fast, the budget or an interrupt passed over.
        if (fresh && durable && !out[i].skipped)
            state->recordDone(gidx(i), keys[i], outcomeToJson(out[i]));
        ++done;
        if (progress)
            progress(out[i], done, jobs.size());
    });
    if (durable)
        state->finalFlush();
    return out;
}

std::size_t
applyTimingInvariant(const std::vector<DiffJob> &jobs,
                     std::vector<DiffOutcome> &outcomes, double slack,
                     std::uint64_t minCommits)
{
    msp_assert(jobs.size() == outcomes.size(),
               "jobs/outcomes not parallel: %zu vs %zu", jobs.size(),
               outcomes.size());

    const auto usable = [&](std::size_t i) {
        return outcomes[i].ok() && !outcomes[i].skipped &&
               outcomes[i].cycles > 0 &&
               outcomes[i].committedCore >= minCommits;
    };
    const auto ipc = [&](std::size_t i) {
        return static_cast<double>(outcomes[i].committedCore) /
               static_cast<double>(outcomes[i].cycles);
    };

    // Index the sweep by fuzzed program: one ideal-MSP slot and the
    // 16-SP machines that ran the same (mix, seed). Only *exact*
    // presets pair up — a custom ablation of the ideal machine (say,
    // --set width.issue=1) deliberately gives up the resource
    // dominance the invariant rests on, so structural matching
    // (infiniteBanks / regsPerBank) would flag it spuriously.
    struct Group { std::size_t ideal = SIZE_MAX; std::vector<std::size_t> sp16; };
    std::map<std::pair<std::string, std::uint64_t>, Group> groups;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        if (!usable(i))
            continue;
        const std::string preset = presetNameFor(jobs[i].config);
        if (preset != "ideal" && preset != "16sp" &&
            preset != "16sp-noarb") {
            continue;
        }
        Group &g = groups[{jobs[i].mix.name, jobs[i].seed}];
        if (preset == "ideal")
            g.ideal = i;
        else
            g.sp16.push_back(i);
    }

    std::size_t violations = 0;
    for (const auto &[key, g] : groups) {
        if (g.ideal == SIZE_MAX)
            continue;
        for (std::size_t sp : g.sp16) {
            if (ipc(g.ideal) >= ipc(sp) * (1.0 - slack))
                continue;
            ++violations;
            outcomes[g.ideal].divergences.push_back(Divergence{
                "timing",
                csprintf("%s IPC %.4f < %s IPC %.4f on %s (%llu "
                         "commits; ideal MSP must dominate within "
                         "%.0f%% slack)",
                         outcomes[g.ideal].config.c_str(), ipc(g.ideal),
                         outcomes[sp].config.c_str(), ipc(sp),
                         outcomes[sp].workload.c_str(),
                         static_cast<unsigned long long>(
                             outcomes[g.ideal].committedCore),
                         slack * 100.0)});
        }
    }
    return violations;
}

} // namespace verify
} // namespace msp
