/**
 * @file
 * Commit-stream oracle: differential verification of one timing core
 * against the functional executor.
 *
 * The timing cores carry an *internal* lock-step oracle
 * (CoreBase::oracle) whose ArchState doubles as the committed data
 * memory — so that state is correct by construction and useless as an
 * external check. This module instead taps the commit stream through
 * CoreBase::setCommitObserver, replays it into an independent
 * ArchState, and cross-checks the result against a from-scratch
 * functional execution of the same program: final architectural
 * register state, final memory image, committed-instruction count, and
 * an order-sensitive hash of the full commit stream (pc, value, store
 * address/data per commit). Any silent commit-path corruption — wrong
 * result, wrong store, wrong pc sequence, extra or missing commits —
 * surfaces as a structured Divergence instead of an assertion abort.
 *
 * With DiffOptions::snapshotEvery set, the replayed state is also
 * compared against a functional reference advanced to the same commit
 * index every N commits, so a divergence is localised to a
 * [badWindowLo, badWindowHi) commit range instead of a whole run.
 */

#ifndef MSPLIB_VERIFY_ORACLE_HH
#define MSPLIB_VERIFY_ORACLE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "isa/program.hh"
#include "sim/machine.hh"
#include "verify/coverage.hh"

namespace msp {
namespace verify {

/**
 * FNV-1a over 64-bit words of the commit stream.
 *
 * Field masking happens *inside* commit(), from the isLoad/isStore
 * flags, so both models can pass their raw per-commit records —
 * including fields that are stale or meaningless for the opcode — and
 * still hash identically. Masking at the call sites (the historical
 * layout) made the hash depend on each side's incidental zeroing.
 */
struct StreamHasher
{
    std::uint64_t h = 1469598103934665603ull;

    void
    word(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (8 * i)) & 0xff;
            h *= 1099511628211ull;
        }
    }

    /** One commit record; identical layout for both models. */
    void
    commit(Addr pc, bool wroteReg, std::uint64_t value, bool isLoad,
           bool isStore, Addr memAddr, std::uint64_t storeValue)
    {
        word(pc);
        word(wroteReg ? value : 0);
        word(isLoad || isStore ? memAddr : 0);
        word(isStore ? storeValue : 0);
    }
};

/** One observed disagreement between a core and the functional model. */
struct Divergence
{
    std::string kind;    ///< "commit-count" | "stream" | "int-reg" |
                         ///< "fp-reg" | "mem" | "no-halt" | "ref-no-halt" |
                         ///< "snapshot" | "observer-count" | "timing"
                         ///< (the last from applyTimingInvariant, not
                         ///< diffRun: ideal-MSP IPC fell below 16-SP)
    std::string detail;  ///< human-readable specifics
};

/** Knobs of one differential run. */
struct DiffOptions
{
    /** Instruction bound for both executions ("no-halt" past it). */
    std::uint64_t maxInsts = 1u << 20;

    /** Hard cycle cap on the timing run. */
    std::uint64_t maxCycles = ~std::uint64_t{0};

    /**
     * When nonzero, compare the replayed architectural state against a
     * functional reference at every N commits and record the first bad
     * [lo, hi) commit window as a "snapshot" divergence. 0 disables
     * mid-run compares (final-state checks always run).
     */
    std::uint64_t snapshotEvery = 0;

    /**
     * When nonzero, run one extra snapshot compare at exactly this
     * commit index (in addition to any snapshotEvery cadence). This is
     * the probe primitive of exact-commit bisection (verify/bisect.hh):
     * a probe run answers "is the replayed state/stream still clean
     * after exactly N commits?" for an arbitrary N inside a bad window.
     */
    std::uint64_t probeCommit = 0;

    /**
     * Harvest the core's PathEvents counters into
     * DiffOutcome::coverage after the timing run. Pure observation —
     * the run itself is bit-identical either way.
     */
    bool collectCoverage = false;

    /**
     * Treat running into the maxInsts bound as a clean end of program
     * instead of a "no-halt"/"ref-no-halt" divergence: both executions
     * cover exactly the first maxInsts commits of the same
     * deterministic program, so the stream/state cross-checks still
     * hold over that prefix. Named-workload verification sets this so
     * the unbounded IPC workloads (the synthetic SPEC loops,
     * tight-loop) can be verified; fuzzed sweeps keep it off — a
     * fuzzed program that fails to HALT is itself the bug.
     */
    bool boundedOk = false;
};

/** Outcome of one differential run (one program on one machine). */
struct DiffOutcome
{
    /**
     * Global submission index in the campaign that produced this
     * outcome (the parent campaign's index when sharded); emitted on
     * every report row so driver::mergeReports can reassemble shard
     * reports in the unsharded order.
     */
    std::uint64_t index = 0;

    std::string mix;         ///< fuzz mix name ("" for external programs)
    std::uint64_t seed = 0;  ///< program-generation seed
    std::string config;      ///< machine-configuration name
    std::string workload;    ///< program name

    std::uint64_t committedCore = 0;  ///< core committed-instruction count
    std::uint64_t committedRef = 0;   ///< functional instruction count
    std::uint64_t cycles = 0;         ///< core cycles
    std::uint64_t streamHash = 0;     ///< FNV-1a over the commit stream

    /** Job skipped before running (campaign fail-fast / budget). */
    bool skipped = false;

    // ---- mid-run snapshot localisation (snapshotEvery only) --------------
    std::uint64_t snapshotEvery = 0;  ///< cadence this run used (0 = off)
    bool localized = false;           ///< a first bad window was found
    std::uint64_t badWindowLo = 0;    ///< last commit index seen good
    std::uint64_t badWindowHi = 0;    ///< first commit index seen bad

    // ---- exact-commit localisation (verify/bisect.hh) --------------------
    bool exactLocalized = false;      ///< bisection converged to one commit
    std::uint64_t firstBadCommit = 0; ///< 1-based index of the first
                                      ///< divergent commit (exact only)

    // ---- path coverage (DiffOptions::collectCoverage only) ---------------
    bool hasCoverage = false;         ///< coverage was harvested
    CoverageMap coverage;             ///< (feature, bucket) bits this run hit
    bool covNovel = false;            ///< run was admitted to the corpus
    std::uint64_t covNewBits = 0;     ///< bits new vs the corpus at admission

    std::vector<Divergence> divergences;

    bool ok() const { return divergences.empty(); }
};

/** Divergences recorded per job before truncation (bounded reports). */
constexpr unsigned maxDivergencesPerJob = 8;

/**
 * Run @p prog on the functional executor (golden) and on a machine
 * built from @p config with the internal oracle check disabled, then
 * cross-check the two (see DiffOptions for the knobs).
 */
DiffOutcome diffRun(const Program &prog, const MachineConfig &config,
                    const DiffOptions &opt);

/** Convenience overload with the historical (maxInsts, maxCycles) form. */
DiffOutcome diffRun(const Program &prog, const MachineConfig &config,
                    std::uint64_t maxInsts = 1u << 20,
                    std::uint64_t maxCycles = ~std::uint64_t{0});

/**
 * First divergence kind of @p cand that @p orig also reported ("" when
 * they share none). The triage stages (shrink, bisect, reduce) all use
 * this as their "still the same bug?" predicate.
 */
std::string sharedDivergenceKind(const DiffOutcome &orig,
                                 const DiffOutcome &cand);

} // namespace verify
} // namespace msp

#endif // MSPLIB_VERIFY_ORACLE_HH
