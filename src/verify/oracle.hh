/**
 * @file
 * Commit-stream oracle: differential verification of one timing core
 * against the functional executor.
 *
 * The timing cores carry an *internal* lock-step oracle
 * (CoreBase::oracle) whose ArchState doubles as the committed data
 * memory — so that state is correct by construction and useless as an
 * external check. This module instead taps the commit stream through
 * CoreBase::setCommitObserver, replays it into an independent
 * ArchState, and cross-checks the result against a from-scratch
 * functional execution of the same program: final architectural
 * register state, final memory image, committed-instruction count, and
 * an order-sensitive hash of the full commit stream (pc, value, store
 * address/data per commit). Any silent commit-path corruption — wrong
 * result, wrong store, wrong pc sequence, extra or missing commits —
 * surfaces as a structured Divergence instead of an assertion abort.
 */

#ifndef MSPLIB_VERIFY_ORACLE_HH
#define MSPLIB_VERIFY_ORACLE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "isa/program.hh"
#include "sim/machine.hh"

namespace msp {
namespace verify {

/** One observed disagreement between a core and the functional model. */
struct Divergence
{
    std::string kind;    ///< "commit-count" | "stream" | "int-reg" |
                         ///< "fp-reg" | "mem" | "no-halt" | "ref-no-halt"
    std::string detail;  ///< human-readable specifics
};

/** Outcome of one differential run (one program on one machine). */
struct DiffOutcome
{
    std::string mix;         ///< fuzz mix name ("" for external programs)
    std::uint64_t seed = 0;  ///< program-generation seed
    std::string config;      ///< machine-configuration name
    std::string workload;    ///< program name

    std::uint64_t committedCore = 0;  ///< core committed-instruction count
    std::uint64_t committedRef = 0;   ///< functional instruction count
    std::uint64_t cycles = 0;         ///< core cycles
    std::uint64_t streamHash = 0;     ///< FNV-1a over the commit stream

    std::vector<Divergence> divergences;

    bool ok() const { return divergences.empty(); }
};

/** Divergences recorded per job before truncation (bounded reports). */
constexpr unsigned maxDivergencesPerJob = 8;

/**
 * Run @p prog on the functional executor (golden) and on a machine
 * built from @p config with the internal oracle check disabled, then
 * cross-check the two. @p maxInsts bounds both executions ("no-halt"
 * divergence when either fails to HALT inside it); @p maxCycles bounds
 * the timing run.
 */
DiffOutcome diffRun(const Program &prog, const MachineConfig &config,
                    std::uint64_t maxInsts = 1u << 20,
                    std::uint64_t maxCycles = ~std::uint64_t{0});

} // namespace verify
} // namespace msp

#endif // MSPLIB_VERIFY_ORACLE_HH
