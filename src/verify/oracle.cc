#include "verify/oracle.hh"

#include "common/logging.hh"
#include "functional/executor.hh"
#include "functional/warmup.hh"
#include "pipeline/core_base.hh"

namespace msp {
namespace verify {

namespace {

void
addDivergence(DiffOutcome &out, const char *kind, std::string detail)
{
    if (out.divergences.size() < maxDivergencesPerJob)
        out.divergences.push_back(Divergence{kind, std::move(detail)});
}

/** First architectural difference between two states ("" when equal). */
std::string
firstStateDiff(const ArchState &a, const ArchState &b,
               std::size_t memWords)
{
    for (int reg = 0; reg < numIntRegs; ++reg) {
        if (a.readInt(reg) != b.readInt(reg)) {
            return csprintf("r%d: core %016llx functional %016llx", reg,
                            static_cast<unsigned long long>(a.readInt(reg)),
                            static_cast<unsigned long long>(
                                b.readInt(reg)));
        }
    }
    for (int reg = 0; reg < numFpRegs; ++reg) {
        if (a.readFp(reg) != b.readFp(reg)) {
            return csprintf("f%d: core %016llx functional %016llx", reg,
                            static_cast<unsigned long long>(a.readFp(reg)),
                            static_cast<unsigned long long>(
                                b.readFp(reg)));
        }
    }
    for (std::size_t w = 0; w < memWords; ++w) {
        const Addr addr = static_cast<Addr>(w) * wordBytes;
        if (a.load(addr) != b.load(addr)) {
            return csprintf("word %zu: core %016llx functional %016llx", w,
                            static_cast<unsigned long long>(a.load(addr)),
                            static_cast<unsigned long long>(b.load(addr)));
        }
    }
    return "";
}

} // anonymous namespace

std::string
sharedDivergenceKind(const DiffOutcome &orig, const DiffOutcome &cand)
{
    for (const Divergence &c : cand.divergences)
        for (const Divergence &o : orig.divergences)
            if (c.kind == o.kind)
                return c.kind;
    return "";
}

DiffOutcome
diffRun(const Program &prog, const MachineConfig &config,
        std::uint64_t maxInsts, std::uint64_t maxCycles)
{
    DiffOptions opt;
    opt.maxInsts = maxInsts;
    opt.maxCycles = maxCycles;
    return diffRun(prog, config, opt);
}

DiffOutcome
diffRun(const Program &prog, const MachineConfig &config,
        const DiffOptions &opt)
{
    DiffOutcome out;
    out.config = config.name;
    out.workload = prog.name;
    out.snapshotEvery = opt.snapshotEvery;

    // ---- golden pass: from-scratch functional execution ------------------
    // With warmup configured, the timing core only commits (and the
    // observer only sees) the post-warmup suffix, so the reference
    // fast-forwards the identical prefix unhashed — fastForward() is
    // the single definition of where the handoff lands on both sides.
    FunctionalExecutor ref(prog);
    const std::uint64_t warmSteps =
        fastForward(ref, prog, config.core.warmupInstrs);
    const ArchState warmState = ref.state();   // handoff snapshot
    StreamHasher refHash;
    while (!ref.halted() && ref.instCount() < warmSteps + opt.maxInsts) {
        const StepResult sr = ref.step();
        refHash.commit(sr.pc, sr.wroteReg, sr.value, sr.isLoad,
                       sr.isStore, sr.memAddr, sr.storeValue);
    }
    out.committedRef = ref.instCount() - warmSteps;
    if (!ref.halted() && !opt.boundedOk) {
        addDivergence(out, "ref-no-halt",
                      csprintf("functional model did not HALT within "
                               "%llu instructions",
                               static_cast<unsigned long long>(
                                   opt.maxInsts)));
        return out;
    }

    // ---- timing pass: commit stream replayed into its own state ----------
    MachineConfig cfg = config;
    // A divergence must surface as a report, not an internal assertion
    // abort, so the lock-step check is off for differential runs.
    cfg.core.oracleCheck = false;
    Machine m(cfg, prog);

    ArchState replay = warmState;   // commits replay on top of warmup
    StreamHasher coreHash;
    std::uint64_t replayed = 0;

    // Snapshot reference, advanced lazily to each compare point while
    // folding its own commit-stream hash. It re-executes the functional
    // program a second time, but only up to the committed length —
    // noise next to the timing simulation. Comparing the running hash
    // as well as the state catches *transient* corruption (a wrong
    // value overwritten again before the boundary) that a pure state
    // snapshot would miss.
    FunctionalExecutor snapRef(prog);
    fastForward(snapRef, prog, warmSteps);
    StreamHasher snapRefHash;
    std::uint64_t lastGoodSnap = 0;

    m.core().setCommitObserver([&](const DynInst &d) {
        if (d.si.writesReg())
            replay.write(d.si.info().dst, d.si.rd, d.result);
        if (d.isStore())
            replay.store(d.effAddr, d.storeData);
        coreHash.commit(d.pc, d.si.writesReg(), d.result, d.isLoad(),
                        d.isStore(), d.effAddr, d.storeData);
        ++replayed;

        const bool cadenceHit =
            opt.snapshotEvery != 0 && replayed % opt.snapshotEvery == 0;
        const bool probeHit =
            opt.probeCommit != 0 && replayed == opt.probeCommit;
        if (out.localized || (!cadenceHit && !probeHit))
            return;
        while (!snapRef.halted() &&
               snapRef.instCount() < warmSteps + replayed) {
            const StepResult sr = snapRef.step();
            snapRefHash.commit(sr.pc, sr.wroteReg, sr.value, sr.isLoad,
                               sr.isStore, sr.memAddr, sr.storeValue);
        }
        // A commit count past the reference HALT point can never match.
        std::string diff;
        if (snapRef.instCount() - warmSteps != replayed) {
            diff = csprintf("functional model halted after %llu "
                            "instructions",
                            static_cast<unsigned long long>(
                                snapRef.instCount() - warmSteps));
        } else {
            diff = firstStateDiff(replay, snapRef.state(), prog.memWords);
            if (diff.empty() && coreHash.h != snapRefHash.h) {
                diff = csprintf("commit streams diverge (hash %016llx "
                                "!= functional %016llx) but the window's "
                                "final states match (transient "
                                "corruption)",
                                static_cast<unsigned long long>(
                                    coreHash.h),
                                static_cast<unsigned long long>(
                                    snapRefHash.h));
            }
        }
        if (diff.empty()) {
            lastGoodSnap = replayed;
            return;
        }
        out.localized = true;
        out.badWindowLo = lastGoodSnap;
        out.badWindowHi = replayed;
        addDivergence(out, "snapshot",
                      csprintf("first state mismatch inside commits "
                               "[%llu, %llu): %s",
                               static_cast<unsigned long long>(
                                   out.badWindowLo),
                               static_cast<unsigned long long>(
                                   out.badWindowHi),
                               diff.c_str()));
    });

    const RunResult r = m.run(opt.maxInsts, opt.maxCycles);
    out.committedCore = r.committed;
    out.cycles = r.cycles;

    // The core's cycle loop retires whole groups, so a budget-bounded
    // run can overshoot maxInsts by up to one retire width. Under
    // boundedOk, walk the reference forward over the same extra
    // commits so both sides cover the identical prefix.
    if (opt.boundedOk) {
        while (!ref.halted() &&
               ref.instCount() < warmSteps + r.committed) {
            const StepResult sr = ref.step();
            refHash.commit(sr.pc, sr.wroteReg, sr.value, sr.isLoad,
                           sr.isStore, sr.memAddr, sr.storeValue);
        }
        out.committedRef = ref.instCount() - warmSteps;
    }
    out.streamHash = coreHash.h;
    if (opt.collectCoverage) {
        out.hasCoverage = true;
        out.coverage = harvestCoverage(m.core().events());
    }

    // ---- cross-checks ----------------------------------------------------
    if (replayed != r.committed) {
        // Every commit is contracted to pass through the observer; a
        // miss means commit-path work the replayed state never saw.
        // Reported, not asserted: the whole point of this module is
        // that divergences surface as reports (campaigns must outlive
        // them), and the stated contract above promises exactly that.
        addDivergence(out, "observer-count",
                      csprintf("commit observer saw %llu of %llu commits",
                               static_cast<unsigned long long>(replayed),
                               static_cast<unsigned long long>(
                                   r.committed)));
    }
    // Under boundedOk, stopping at the commit budget is the expected
    // end; falling short of it (a stall/deadlock) is still a failure.
    if (!m.core().halted() &&
        !(opt.boundedOk && r.committed >= opt.maxInsts)) {
        addDivergence(out, "no-halt",
                      csprintf("core committed %llu instructions in %llu "
                               "cycles without reaching HALT",
                               static_cast<unsigned long long>(r.committed),
                               static_cast<unsigned long long>(r.cycles)));
    }
    if (out.committedCore != out.committedRef) {
        addDivergence(out, "commit-count",
                      csprintf("core committed %llu, functional %llu",
                               static_cast<unsigned long long>(
                                   out.committedCore),
                               static_cast<unsigned long long>(
                                   out.committedRef)));
    }
    if (coreHash.h != refHash.h) {
        addDivergence(out, "stream",
                      csprintf("commit-stream hash %016llx != functional "
                               "%016llx",
                               static_cast<unsigned long long>(coreHash.h),
                               static_cast<unsigned long long>(refHash.h)));
    }

    const ArchState &gold = ref.state();
    for (int reg = 0; reg < numIntRegs; ++reg) {
        if (replay.readInt(reg) != gold.readInt(reg)) {
            addDivergence(out, "int-reg",
                          csprintf("r%d: core %016llx functional %016llx",
                                   reg,
                                   static_cast<unsigned long long>(
                                       replay.readInt(reg)),
                                   static_cast<unsigned long long>(
                                       gold.readInt(reg))));
        }
    }
    for (int reg = 0; reg < numFpRegs; ++reg) {
        if (replay.readFp(reg) != gold.readFp(reg)) {
            addDivergence(out, "fp-reg",
                          csprintf("f%d: core %016llx functional %016llx",
                                   reg,
                                   static_cast<unsigned long long>(
                                       replay.readFp(reg)),
                                   static_cast<unsigned long long>(
                                       gold.readFp(reg))));
        }
    }
    for (std::size_t w = 0; w < prog.memWords; ++w) {
        const Addr a = static_cast<Addr>(w) * wordBytes;
        if (replay.load(a) != gold.load(a)) {
            addDivergence(out, "mem",
                          csprintf("word %zu: core %016llx functional "
                                   "%016llx", w,
                                   static_cast<unsigned long long>(
                                       replay.load(a)),
                                   static_cast<unsigned long long>(
                                       gold.load(a))));
        }
    }
    return out;
}

} // namespace verify
} // namespace msp
