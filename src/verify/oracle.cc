#include "verify/oracle.hh"

#include "common/logging.hh"
#include "functional/executor.hh"
#include "pipeline/core_base.hh"

namespace msp {
namespace verify {

namespace {

/** FNV-1a, folded over 64-bit words of the commit stream. */
struct StreamHasher
{
    std::uint64_t h = 1469598103934665603ull;

    void
    word(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (8 * i)) & 0xff;
            h *= 1099511628211ull;
        }
    }

    /** One commit record; identical layout for both models. */
    void
    commit(Addr pc, bool wroteReg, std::uint64_t value, bool isMem,
           Addr memAddr, std::uint64_t storeValue)
    {
        word(pc);
        word(wroteReg ? value : 0);
        word(isMem ? memAddr : 0);
        word(storeValue);
    }
};

void
addDivergence(DiffOutcome &out, const char *kind, std::string detail)
{
    if (out.divergences.size() < maxDivergencesPerJob)
        out.divergences.push_back(Divergence{kind, std::move(detail)});
}

} // anonymous namespace

DiffOutcome
diffRun(const Program &prog, const MachineConfig &config,
        std::uint64_t maxInsts, std::uint64_t maxCycles)
{
    DiffOutcome out;
    out.config = config.name;
    out.workload = prog.name;

    // ---- golden pass: from-scratch functional execution ------------------
    FunctionalExecutor ref(prog);
    StreamHasher refHash;
    while (!ref.halted() && ref.instCount() < maxInsts) {
        const StepResult sr = ref.step();
        refHash.commit(sr.pc, sr.wroteReg, sr.value,
                       sr.isLoad || sr.isStore, sr.memAddr,
                       sr.storeValue);
    }
    out.committedRef = ref.instCount();
    if (!ref.halted()) {
        addDivergence(out, "ref-no-halt",
                      csprintf("functional model did not HALT within "
                               "%llu instructions",
                               static_cast<unsigned long long>(maxInsts)));
        return out;
    }

    // ---- timing pass: commit stream replayed into its own state ----------
    MachineConfig cfg = config;
    // A divergence must surface as a report, not an internal assertion
    // abort, so the lock-step check is off for differential runs.
    cfg.core.oracleCheck = false;
    Machine m(cfg, prog);

    ArchState replay(prog);
    StreamHasher coreHash;
    std::uint64_t replayed = 0;
    m.core().setCommitObserver([&](const DynInst &d) {
        const bool isMem = d.isLoad() || d.isStore();
        if (d.si.writesReg())
            replay.write(d.si.info().dst, d.si.rd, d.result);
        if (d.isStore())
            replay.store(d.effAddr, d.storeData);
        coreHash.commit(d.pc, d.si.writesReg(), d.result, isMem,
                        d.effAddr, d.isStore() ? d.storeData : 0);
        ++replayed;
    });

    const RunResult r = m.run(maxInsts, maxCycles);
    out.committedCore = r.committed;
    out.cycles = r.cycles;
    out.streamHash = coreHash.h;
    msp_assert(replayed == r.committed,
               "commit observer saw %llu of %llu commits",
               static_cast<unsigned long long>(replayed),
               static_cast<unsigned long long>(r.committed));

    // ---- cross-checks ----------------------------------------------------
    if (!m.core().halted()) {
        addDivergence(out, "no-halt",
                      csprintf("core committed %llu instructions in %llu "
                               "cycles without reaching HALT",
                               static_cast<unsigned long long>(r.committed),
                               static_cast<unsigned long long>(r.cycles)));
    }
    if (out.committedCore != out.committedRef) {
        addDivergence(out, "commit-count",
                      csprintf("core committed %llu, functional %llu",
                               static_cast<unsigned long long>(
                                   out.committedCore),
                               static_cast<unsigned long long>(
                                   out.committedRef)));
    }
    if (coreHash.h != refHash.h) {
        addDivergence(out, "stream",
                      csprintf("commit-stream hash %016llx != functional "
                               "%016llx",
                               static_cast<unsigned long long>(coreHash.h),
                               static_cast<unsigned long long>(refHash.h)));
    }

    const ArchState &gold = ref.state();
    for (int reg = 0; reg < numIntRegs; ++reg) {
        if (replay.readInt(reg) != gold.readInt(reg)) {
            addDivergence(out, "int-reg",
                          csprintf("r%d: core %016llx functional %016llx",
                                   reg,
                                   static_cast<unsigned long long>(
                                       replay.readInt(reg)),
                                   static_cast<unsigned long long>(
                                       gold.readInt(reg))));
        }
    }
    for (int reg = 0; reg < numFpRegs; ++reg) {
        if (replay.readFp(reg) != gold.readFp(reg)) {
            addDivergence(out, "fp-reg",
                          csprintf("f%d: core %016llx functional %016llx",
                                   reg,
                                   static_cast<unsigned long long>(
                                       replay.readFp(reg)),
                                   static_cast<unsigned long long>(
                                       gold.readFp(reg))));
        }
    }
    for (std::size_t w = 0; w < prog.memWords; ++w) {
        const Addr a = static_cast<Addr>(w) * wordBytes;
        if (replay.load(a) != gold.load(a)) {
            addDivergence(out, "mem",
                          csprintf("word %zu: core %016llx functional "
                                   "%016llx", w,
                                   static_cast<unsigned long long>(
                                       replay.load(a)),
                                   static_cast<unsigned long long>(
                                       gold.load(a))));
        }
    }
    return out;
}

} // namespace verify
} // namespace msp
