#include "verify/corpus.hh"

#include <algorithm>
#include <map>

#include "common/json.hh"
#include "common/logging.hh"
#include "common/random.hh"
#include "driver/report.hh"
#include "driver/state.hh"
#include "verify/report.hh"

namespace msp {
namespace verify {

namespace {

/** One complete line per entry; a missing trailing \n marks a tear
 *  (the driver/state checkpoint convention). */
std::vector<std::string>
splitLines(const std::string &content, bool &lastComplete)
{
    std::vector<std::string> lines;
    std::size_t start = 0;
    while (start < content.size()) {
        const std::size_t nl = content.find('\n', start);
        if (nl == std::string::npos) {
            lines.push_back(content.substr(start));
            lastComplete = false;
            return lines;
        }
        if (nl > start)
            lines.push_back(content.substr(start, nl - start));
        start = nl + 1;
    }
    lastComplete = true;
    return lines;
}

std::string
renderEntry(const CorpusEntry &e)
{
    return csprintf("{\"seed\": %llu, \"wave\": %llu, \"new_bits\": "
                    "%llu, \"coverage\": \"%s\", \"mix\": ",
                    static_cast<unsigned long long>(e.seed),
                    static_cast<unsigned long long>(e.wave),
                    static_cast<unsigned long long>(e.newBits),
                    e.coverage.toHex().c_str()) +
           mixToJson(e.mix) + "}\n";
}

} // anonymous namespace

bool
Corpus::load(const std::string &path)
{
    std::string content;
    if (!driver::tryReadFile(path, content))
        return false;   // no file yet: a fresh corpus, not an error

    bool lastComplete = true;
    const std::vector<std::string> lines =
        splitLines(content, lastComplete);
    if (lines.empty())
        throw driver::CheckpointError("corpus " + path + " is empty");

    // Header: a garbled version token is just as much "not a corpus"
    // as a missing one; a shape mismatch means the bitmap layout of
    // this build cannot interpret the stored maps.
    const std::string &head = lines.front();
    std::uint64_t version = 0;
    std::uint64_t features = 0;
    std::uint64_t buckets = 0;
    try {
        version = json::getU64(head, "msp_corpus", 0);
        features = json::getU64(head, "features", 0);
        buckets = json::getU64(head, "buckets", 0);
    } catch (const json::JsonError &) {}
    if (version != 1)
        throw driver::CheckpointError(path + " is not a corpus file");
    if (features != CoverageMap::numFeatures ||
        buckets != CoverageMap::numBuckets) {
        throw driver::CheckpointError(csprintf(
            "corpus %s has coverage shape %llu x %llu, this build uses "
            "%u x %u", path.c_str(),
            static_cast<unsigned long long>(features),
            static_cast<unsigned long long>(buckets),
            CoverageMap::numFeatures, CoverageMap::numBuckets));
    }

    std::string tornBytes;
    for (std::size_t li = 1; li < lines.size(); ++li) {
        const std::string &line = lines[li];
        const bool isLast = li + 1 == lines.size();

        CorpusEntry e;
        bool parsed = true;
        try {
            e.seed = json::getU64(line, "seed", ~std::uint64_t{0});
            e.wave = json::getU64(line, "wave", 0);
            e.newBits = json::getU64(line, "new_bits", 0);
            const std::string cov = json::getStr(line, "coverage");
            const std::size_t mixAt = json::valuePos(line, "mix");
            if (e.seed == ~std::uint64_t{0} || cov.empty() ||
                mixAt == std::string::npos || mixAt >= line.size() ||
                line[mixAt] != '{') {
                parsed = false;
            } else {
                e.coverage = CoverageMap::fromHex(cov);
                e.mix = mixFromJson(json::balancedSlice(line, mixAt));
            }
        } catch (const json::JsonError &) {
            // Torn mid-field is "not parsed"; whether that is
            // recoverable is the trailing-record test's call.
            parsed = false;
        }
        if (!parsed || (isLast && !lastComplete)) {
            if (!isLast) {
                throw driver::CheckpointError(csprintf(
                    "corpus %s is corrupt at record %zu (only a torn "
                    "*trailing* record is recoverable)", path.c_str(),
                    li));
            }
            ++torn;
            tornBytes = line;
            break;
        }
        agg.orWith(e.coverage);
        list.push_back(std::move(e));
    }
    if (torn > 0) {
        // Quarantine rather than silently discard: the torn bytes land
        // next to the corpus for post-mortems.
        driver::writeFile(path + ".torn", tornBytes + "\n");
    }
    return true;
}

void
Corpus::save(const std::string &path) const
{
    std::string content = csprintf(
        "{\"msp_corpus\": 1, \"features\": %u, \"buckets\": %u, "
        "\"entries\": %zu}\n",
        CoverageMap::numFeatures, CoverageMap::numBuckets, list.size());
    for (const CorpusEntry &e : list)
        content += renderEntry(e);
    driver::writeFile(path, content);
}

bool
Corpus::consider(const FuzzMix &mix, std::uint64_t seed,
                 std::uint64_t wave, const CoverageMap &cov)
{
    const std::size_t fresh = cov.newBitsVs(agg);
    if (fresh == 0)
        return false;
    agg.orWith(cov);
    CorpusEntry e;
    e.mix = mix;
    e.seed = seed;
    e.wave = wave;
    e.newBits = fresh;
    e.coverage = cov;
    list.push_back(std::move(e));
    return true;
}

std::vector<FuzzMix>
tuneMixes(const std::vector<FuzzMix> &base, const CoverageMap &aggregate,
          unsigned wave, std::uint64_t seed)
{
    // How empty each knob family's feature group still is, in [0, 1].
    // The boost for a family scales with its hole: a fully covered
    // group leaves its knobs (almost) alone, an untouched one nearly
    // doubles the pressure on it.
    const double stallHole =
        1.0 - groupHitFraction(aggregate, FeatureGroup::Stall);
    const double predHole =
        1.0 - groupHitFraction(aggregate, FeatureGroup::Pred);
    const double squashHole =
        1.0 - groupHitFraction(aggregate, FeatureGroup::Squash);
    const double sqHole =
        1.0 - groupHitFraction(aggregate, FeatureGroup::Sq);
    const double sctHole =
        1.0 - groupHitFraction(aggregate, FeatureGroup::Sct);

    const auto clampP = [](double v, double hi) {
        return std::min(std::max(v, 0.0), hi);
    };
    const auto clampW = [](double v) {
        return std::min(std::max(v, 0.05), 8.0);
    };

    std::vector<FuzzMix> out;
    out.reserve(base.size());
    for (std::size_t mi = 0; mi < base.size(); ++mi) {
        // One private stream per (wave, mix): purely a function of the
        // arguments, so the tuned sweep is reproducible anywhere.
        Rng rng(seed ^ (0x9e3779b97f4a7c15ull *
                        (static_cast<std::uint64_t>(wave) * 8191 +
                         mi + 1)));
        const auto boost = [&](double hole) {
            return 1.0 + hole * (0.9 + 0.2 * rng.toDouble());
        };

        FuzzMix t = base[mi];
        t.name = csprintf("%s~w%u", t.name.c_str(), wave);

        // Predictor edges missing: denser, harder control flow.
        t.condProb = clampP(t.condProb * boost(predHole), 0.9);
        t.indirectProb = clampP(t.indirectProb * boost(predHole), 1.0);
        t.callProb = clampP(t.callProb * boost(predHole), 0.5);

        // Squash depths / exception paths missing: deeper loop nests,
        // more TRAPs to take.
        t.loopProb = clampP(t.loopProb * boost(squashHole), 0.8);
        t.trapProb = clampP(t.trapProb * boost(squashHole), 0.05);

        // SQ forwarding / alias cases missing: more memory traffic on
        // a *smaller* hot region.
        t.weights.load = clampW(t.weights.load * boost(sqHole));
        t.weights.store = clampW(t.weights.store * boost(sqHole));
        t.hotProb = clampP(t.hotProb * boost(sqHole), 0.95);
        t.hotWords = std::max(
            1u, static_cast<unsigned>(t.hotWords / boost(sqHole)));

        // Stall transitions / SCT activity missing: longer segments
        // and more value-producing work to pressure every queue.
        t.weights.fp =
            clampW(t.weights.fp * boost(std::max(stallHole, sctHole)));
        t.segMax = std::max(
            t.segMin,
            std::min(32u,
                     static_cast<unsigned>(t.segMax * boost(stallHole))));
        if (t.memWords < t.hotWords)
            t.memWords = t.hotWords;
        out.push_back(std::move(t));
    }
    return out;
}

std::uint64_t
programShapeHash(const Program &p)
{
    std::uint64_t h = 1469598103934665603ull;
    for (const Instruction &in : p.code) {
        h ^= static_cast<unsigned char>(in.op);
        h *= 1099511628211ull;
    }
    return h;
}

std::string
dedupKey(const ShrinkResult &s)
{
    std::string key = s.repro.kind + "|";
    key += csprintf("%llu|", static_cast<unsigned long long>(
                                 s.repro.firstBadCommit));
    key += s.repro.program
               ? csprintf("%016llx",
                          static_cast<unsigned long long>(
                              programShapeHash(*s.repro.program)))
               : "-";
    return key;
}

std::size_t
dedupShrinks(std::vector<ShrinkResult> &shrinks)
{
    // shrinkFailures returns results in submission order, so the first
    // occurrence of a key is the lowest-jobIndex representative.
    std::map<std::string, std::size_t> firstOf;
    std::vector<ShrinkResult> kept;
    kept.reserve(shrinks.size());
    for (ShrinkResult &s : shrinks) {
        const std::string key = dedupKey(s);
        const auto it = firstOf.find(key);
        if (it == firstOf.end()) {
            s.duplicates = 1;
            firstOf.emplace(key, kept.size());
            kept.push_back(std::move(s));
        } else {
            ++kept[it->second].duplicates;
        }
    }
    const std::size_t folded = shrinks.size() - kept.size();
    shrinks = std::move(kept);
    return folded;
}

} // namespace verify
} // namespace msp
