/**
 * @file
 * CprCore — Checkpoint Processing and Recovery (Akkary, Rajwar,
 * Srinivasan, MICRO-36), the paper's main comparison point.
 *
 * No ROB: a small set of checkpoints (8, Table I) taken selectively at
 * low-confidence branches (JRS estimator), at forced intervals, and at
 * likely-excepting instructions. Physical registers are released
 * aggressively through reference counting; commit is bulk, per
 * checkpoint interval. Branch misprediction rolls the machine back to
 * the youngest checkpoint at or before the branch, re-executing any
 * correct-path instructions in between — the imprecision the MSP
 * eliminates.
 */

#ifndef MSPLIB_CPR_CPR_CORE_HH
#define MSPLIB_CPR_CPR_CORE_HH

#include <array>
#include <deque>
#include <vector>

#include "pipeline/core_base.hh"

namespace msp {

/** The CPR core. */
class CprCore : public CoreBase
{
  public:
    CprCore(const CoreParams &params, const Program &program,
            PredictorKind predictor, StatGroup &stats);

    /** Live checkpoints (for tests). */
    std::size_t liveCheckpoints() const { return ckptOrder.size(); }

    /** Reference count of a physical register (for tests). */
    int refCountOf(PhysReg p) const { return refCount[p]; }

    /** Debug invariant: recompute refcounts and compare. */
    bool verifyRefCounts() const;

  protected:
    bool canRename(const DynInst &d) override;
    void renameOne(DynInst &d) override;
    bool operandsReady(const DynInst &d) const override;
    void initWakeup(DynInst &d) override;
    void readOperands(DynInst &d) override;
    void onIssued(DynInst &d) override;
    bool writebackDest(DynInst &d) override;
    void onExecuted(DynInst &d) override;
    void doCommit() override;
    void recoverBranch(DynInst &branch) override;
    void onSquashInst(DynInst &d) override {}
    void afterSquash(const DynInst &trigger, bool exception) override;
    bool fetchOverride(Addr pc, bool &taken, Addr &target) override;
    void dumpDeadlock() const override;
    void warmArchState(const ArchState &warm) override;

  private:
    /** One checkpoint: full RAT copy plus front-end state. */
    struct Ckpt
    {
        bool valid = false;
        SeqNum startSeq = invalidSeqNum;  ///< first instruction covered
        Addr restartPc = 0;
        std::array<PhysReg, numLogRegs> rat{};
        GlobalHistory hist;
        Ras ras;                          ///< full copy: the re-fetched
                                          ///< path must be reproducible
        std::uint32_t pendingExec = 0;    ///< unexecuted interval insts
    };

    bool dstIsFp(const DynInst &d) const;
    void bumpRef(PhysReg p);
    void dropRef(PhysReg p);
    void freeReg(PhysReg p);
    void takeCheckpoint(const DynInst &d);
    void releaseOldestCkpt();
    void rebuildRefCounts();
    int youngestCkptAtOrBefore(SeqNum seq) const;
    std::vector<int> computeRefCounts() const;

    std::vector<std::uint64_t> regVal;
    std::vector<std::uint8_t> regReady;
    std::vector<int> refCount;
    std::array<PhysReg, numLogRegs> rat{};
    std::vector<PhysReg> freeInt;
    std::vector<PhysReg> freeFp;
    RegWaiters waiters;   ///< per-physreg IQ wakeup subscriptions

    std::vector<Ckpt> ckptSlots;
    std::deque<int> ckptOrder;   ///< oldest first
    unsigned sinceCkpt = 0;

    /** Rollback target stashed between recoverBranch and afterSquash. */
    int rollbackCkpt = -1;

    /** Resolved-direction override for the re-fetched branch. */
    struct Override
    {
        bool active = false;
        Addr pc = 0;
        unsigned skip = 0;
        bool taken = false;
        Addr target = 0;
    };
    Override ovr;

    Stat &rollbacksStat;
    Stat &reExecWindowStat;
};

} // namespace msp

#endif // MSPLIB_CPR_CPR_CORE_HH
