#include "cpr/cpr_core.hh"

#include <algorithm>

#include "common/logging.hh"

namespace msp {

CprCore::CprCore(const CoreParams &p, const Program &program,
                 PredictorKind predictor, StatGroup &statGroup)
    : CoreBase(p, program, predictor, statGroup),
      ckptSlots(p.numCheckpoints),
      rollbacksStat(statGroup.add("cpr.rollbacks", "checkpoint rollbacks")),
      reExecWindowStat(statGroup.add("cpr.squashedCorrectPath",
                                     "correct-path insts squashed"))
{
    msp_assert(p.numCheckpoints >= 1, "CPR needs at least one checkpoint");
    const unsigned total = p.numIntPhys + p.numFpPhys;
    regVal.assign(total, 0);
    regReady.assign(total, 0);
    refCount.assign(total, 0);

    for (int i = 0; i < numIntRegs; ++i) {
        rat[i] = i;
        regReady[i] = 1;
        refCount[i] = 1;
    }
    for (int i = 0; i < numFpRegs; ++i) {
        rat[numIntRegs + i] = p.numIntPhys + i;
        regReady[p.numIntPhys + i] = 1;
        refCount[p.numIntPhys + i] = 1;
    }
    for (unsigned i = numIntRegs; i < p.numIntPhys; ++i)
        freeInt.push_back(i);
    for (unsigned i = p.numIntPhys + numFpRegs; i < total; ++i)
        freeFp.push_back(i);
    waiters.init(total);
}

bool
CprCore::dstIsFp(const DynInst &d) const
{
    return d.info().dst == RegClass::Fp;
}

void
CprCore::bumpRef(PhysReg p)
{
    msp_assert(p != noReg, "bumpRef(noReg)");
    ++refCount[p];
}

void
CprCore::freeReg(PhysReg p)
{
    if (p < static_cast<PhysReg>(params.numIntPhys))
        freeInt.push_back(p);
    else
        freeFp.push_back(p);
}

void
CprCore::dropRef(PhysReg p)
{
    msp_assert(p != noReg && refCount[p] > 0, "refcount underflow");
    if (--refCount[p] == 0)
        freeReg(p);
}

// ---------------------------------------------------------------------------
// Checkpoint allocation (confidence-driven, Sec. 1 of the paper / [19])
// ---------------------------------------------------------------------------

void
CprCore::takeCheckpoint(const DynInst &d)
{
    int slot = -1;
    for (unsigned i = 0; i < ckptSlots.size(); ++i) {
        if (!ckptSlots[i].valid) {
            slot = static_cast<int>(i);
            break;
        }
    }
    msp_assert(slot >= 0, "takeCheckpoint without a free slot");

    Ckpt &c = ckptSlots[slot];
    c.valid = true;
    c.startSeq = d.seq;
    c.restartPc = d.pc;
    c.rat = rat;
    c.hist = d.bpSnap.hist;
    // Checkpoints are taken at rename, but must capture the front-end
    // state as it was when this instruction was *fetched*: restore the
    // current RAS to that point, then copy it wholesale.
    c.ras = branchUnit.ras();
    c.ras.restore(d.bpSnap.ras);
    c.pendingExec = 0;
    for (int u = 0; u < numLogRegs; ++u)
        bumpRef(c.rat[u]);
    ckptOrder.push_back(slot);
    sinceCkpt = 0;
    ++checkpointsTaken;
}

bool
CprCore::canRename(const DynInst &d)
{
    const bool haveFree = ckptOrder.size() < ckptSlots.size();
    // A likely-excepting instruction must get its own checkpoint so the
    // exception can be taken at a precise boundary; stall until one
    // frees up.
    if ((d.isTrap() || ckptOrder.empty()) && !haveFree) {
        stallReason = StallReason::Checkpoint;
        return false;
    }
    // Hardware tracks a bounded number of instructions per checkpoint;
    // when the open interval is full and no checkpoint slot is free,
    // rename stalls. Without this bound a rollback to the interval
    // start can be arbitrarily expensive.
    if (sinceCkpt >= 2 * params.ckptInterval && !haveFree) {
        stallReason = StallReason::Checkpoint;
        return false;
    }
    if (d.si.writesReg()) {
        const auto &pool = dstIsFp(d) ? freeFp : freeInt;
        if (pool.empty()) {
            stallReason = StallReason::Registers;
            return false;
        }
    }
    return true;
}

void
CprCore::renameOne(DynInst &d)
{
    // Checkpoint placement: program start, likely-excepting
    // instructions, low-confidence branches, a forced interval, or
    // resource pressure (a fresh interval lets the previous one commit
    // and recycle buffers).
    const bool haveFree = ckptOrder.size() < ckptSlots.size();
    const bool pressure =
        freeInt.size() < 8 || freeFp.size() < 8 ||
        ldqUsed + 4 >= params.ldqSize || !sq.canAllocate();
    if (ckptOrder.empty() || d.isTrap()) {
        takeCheckpoint(d);
    } else if (haveFree && sinceCkpt >= 1 &&
               ((d.isBranch() && d.lowConfidence) ||
                (d.info().isIndirect && !d.info().isReturn))) {
        // CPR's core policy: a checkpoint at every low-confidence
        // branch (and at indirect jumps, which are inherently
        // low-confidence) whenever a slot is free, so a misprediction
        // rolls back to the offender itself.
        takeCheckpoint(d);
    } else if (haveFree && sinceCkpt >= params.minCkptDist &&
               (sinceCkpt >= params.ckptInterval || pressure)) {
        takeCheckpoint(d);
    }

    d.ckptId = ckptOrder.back();
    if (d.needsExecution())
        ++ckptSlots[d.ckptId].pendingExec;
    ++sinceCkpt;

    auto takeSrc = [&](int unified, SrcInfo &src) {
        if (unified < 0)
            return;
        src.phys = rat[unified];
        bumpRef(src.phys);       // consumer reference
        src.useBitSet = true;
    };
    takeSrc(d.si.src1Unified(), d.src1);
    takeSrc(d.si.src2Unified(), d.src2);

    if (d.si.writesReg()) {
        auto &pool = dstIsFp(d) ? freeFp : freeInt;
        const PhysReg p = pool.back();
        pool.pop_back();
        const int u = d.si.dstUnified();
        d.oldDstPhys = rat[u];
        d.dstPhys = p;
        rat[u] = p;
        regReady[p] = 0;
        msp_assert(refCount[p] == 0, "allocating a referenced register");
        bumpRef(p);              // current-mapping reference
        bumpRef(p);              // producer reference (until written)
        dropRef(d.oldDstPhys);   // superseded mapping
    }
}

// ---------------------------------------------------------------------------
// Issue / execute
// ---------------------------------------------------------------------------

bool
CprCore::operandsReady(const DynInst &d) const
{
    auto rdy = [&](const SrcInfo &s) {
        return s.phys == noReg || regReady[s.phys];
    };
    return rdy(d.src1) && rdy(d.src2);
}

void
CprCore::initWakeup(DynInst &d)
{
    // Same scheme as the baseline: the refcounts guarantee a source
    // register is never recycled while this consumer sits in the IQ
    // (the consumer reference is only dropped at issue), so readiness
    // can't regress and insert-time state plus wakeups is exact.
    const std::uint32_t gen = iq.generation(d.iqSlot);
    unsigned pending = 0;
    if (d.src1.phys != noReg && !regReady[d.src1.phys]) {
        waiters.watch(d.src1.phys, d.iqSlot, gen);
        ++pending;
    }
    if (d.src2.phys != noReg && d.src2.phys != d.src1.phys &&
        !regReady[d.src2.phys]) {
        waiters.watch(d.src2.phys, d.iqSlot, gen);
        ++pending;
    }
    iq.setPending(d.iqSlot, pending);
}

void
CprCore::readOperands(DynInst &d)
{
    d.srcVal1 = d.src1.phys == noReg ? 0 : regVal[d.src1.phys];
    d.srcVal2 = d.src2.phys == noReg ? 0 : regVal[d.src2.phys];
}

void
CprCore::onIssued(DynInst &d)
{
    // Last-use release: the consumer reference dies at the read.
    auto consume = [&](SrcInfo &s) {
        if (s.useBitSet) {
            dropRef(s.phys);
            s.useBitSet = false;
        }
    };
    consume(d.src1);
    consume(d.src2);
}

bool
CprCore::writebackDest(DynInst &d)
{
    regVal[d.dstPhys] = d.result;
    regReady[d.dstPhys] = 1;
    waiters.drain(d.dstPhys, iq);
    dropRef(d.dstPhys);          // producer reference retires
    return true;
}

void
CprCore::onExecuted(DynInst &d)
{
    if (d.needsExecution()) {
        Ckpt &c = ckptSlots[d.ckptId];
        msp_assert(c.valid && c.pendingExec > 0, "pendingExec underflow");
        --c.pendingExec;
    }
}

// ---------------------------------------------------------------------------
// Bulk commit
// ---------------------------------------------------------------------------

void
CprCore::releaseOldestCkpt()
{
    Ckpt &c = ckptSlots[ckptOrder.front()];
    for (int u = 0; u < numLogRegs; ++u)
        dropRef(c.rat[u]);
    c.valid = false;
    ckptOrder.pop_front();
}

void
CprCore::doCommit()
{
    while (!haltCommitted) {
        // The oldest checkpoint commits when every instruction between
        // it and the next checkpoint has executed.
        if (ckptOrder.size() >= 2) {
            Ckpt &c = ckptSlots[ckptOrder.front()];
            if (c.pendingExec > 0)
                return;
            const SeqNum endSeq = ckptSlots[ckptOrder[1]].startSeq;
            while (!window.empty() && window.front()->seq < endSeq) {
                if (window.front()->isTrap()) {
                    takeException();
                    return;
                }
                msp_assert(window.front()->executed,
                           "CPR bulk commit of unexecuted instruction");
                commitOne();
                if (haltCommitted)
                    return;
            }
            releaseOldestCkpt();
            continue;
        }

        // Final drain: one open interval left and fetch has halted.
        if (ckptOrder.size() == 1 && fetchStopped && !fetchQ.empty())
            return;
        if (ckptOrder.size() == 1 && fetchStopped) {
            Ckpt &c = ckptSlots[ckptOrder.front()];
            if (c.pendingExec > 0)
                return;
            while (!window.empty()) {
                if (window.front()->isTrap()) {
                    takeException();
                    return;
                }
                msp_assert(window.front()->executed,
                           "CPR final drain of unexecuted instruction");
                commitOne();
                if (haltCommitted)
                    return;
            }
        }
        return;
    }
}

// ---------------------------------------------------------------------------
// Rollback recovery
// ---------------------------------------------------------------------------

int
CprCore::youngestCkptAtOrBefore(SeqNum seq) const
{
    for (auto it = ckptOrder.rbegin(); it != ckptOrder.rend(); ++it) {
        if (ckptSlots[*it].startSeq <= seq)
            return *it;
    }
    msp_panic("no checkpoint at or before seq %llu",
              static_cast<unsigned long long>(seq));
}

void
CprCore::recoverBranch(DynInst &branch)
{
    ++rollbacksStat;
    rollbackCkpt = youngestCkptAtOrBefore(branch.seq);
    const Ckpt &k = ckptSlots[rollbackCkpt];

    // Occurrence-counted outcome override: when the squashed dynamic
    // instance of this control instruction is fetched again, force the
    // resolved outcome (the rollback already knows it). This covers
    // conditional branches, indirect jumps and returns — a re-fetched
    // return would otherwise re-predict from the same restored RAS and
    // could livelock.
    unsigned occ = 0;
    for (const DynInst *w : window) {
        if (w->seq >= k.startSeq && w->seq <= branch.seq &&
            w->pc == branch.pc && w->isControl) {
            ++occ;
        }
    }
    msp_assert(occ >= 1, "mispredicted branch not in its own interval");
    ovr.active = true;
    ovr.pc = branch.pc;
    ovr.skip = occ - 1;
    ovr.taken = branch.taken;
    ovr.target = branch.actualNextPc;

    const Addr restart = k.restartPc;
    squashAndRedirect(k.startSeq - 1, branch.seq, restart,
                      params.rollbackRestorePenalty, false, branch);

    // The L2 store-queue scan is the expensive part of a CPR rollback.
    fetchStallUntil +=
        static_cast<Cycle>(lastSqScan() * params.sqScanPenaltyPerEntry);
}

bool
CprCore::fetchOverride(Addr pc, bool &taken, Addr &target)
{
    if (!ovr.active || pc != ovr.pc)
        return false;
    if (ovr.skip > 0) {
        --ovr.skip;
        return false;
    }
    taken = ovr.taken;
    target = ovr.target;
    ovr.active = false;
    return true;
}

void
CprCore::afterSquash(const DynInst &trigger, bool exception)
{
    if (exception) {
        // The trap committed; its checkpoint's interval restarts just
        // past it. Everything younger (including younger checkpoints)
        // is gone.
        while (!ckptOrder.empty() &&
               ckptSlots[ckptOrder.back()].startSeq > trigger.seq) {
            ckptSlots[ckptOrder.back()].valid = false;
            ckptOrder.pop_back();
        }
        msp_assert(!ckptOrder.empty(), "exception with no checkpoint");
        Ckpt &c = ckptSlots[ckptOrder.back()];
        c.restartPc = trigger.pc + 1;
        c.pendingExec = 0;
        rat = c.rat;
    } else {
        msp_assert(rollbackCkpt >= 0, "rollback without a target");
        while (!ckptOrder.empty() && ckptOrder.back() != rollbackCkpt) {
            ckptSlots[ckptOrder.back()].valid = false;
            ckptOrder.pop_back();
        }
        msp_assert(!ckptOrder.empty(), "rollback target disappeared");
        Ckpt &k = ckptSlots[rollbackCkpt];
        k.pendingExec = 0;    // its whole interval was squashed
        rat = k.rat;
        branchUnit.setHistory(k.hist);
        branchUnit.ras() = k.ras;
        rollbackCkpt = -1;
    }
    sinceCkpt = 0;
    rebuildRefCounts();
}

// ---------------------------------------------------------------------------
// Reference-count reconstruction (rollback path)
// ---------------------------------------------------------------------------

std::vector<int>
CprCore::computeRefCounts() const
{
    std::vector<int> rc(refCount.size(), 0);
    for (int u = 0; u < numLogRegs; ++u)
        ++rc[rat[u]];
    for (int slot : ckptOrder) {
        const Ckpt &c = ckptSlots[slot];
        for (int u = 0; u < numLogRegs; ++u)
            ++rc[c.rat[u]];
    }
    for (const DynInst *d : window) {
        if (d->squashed)
            continue;
        if (d->src1.useBitSet)
            ++rc[d->src1.phys];
        if (d->src2.useBitSet)
            ++rc[d->src2.phys];
        if (d->dstPhys != noReg && !d->executed)
            ++rc[d->dstPhys];    // producer reference
    }
    return rc;
}

void
CprCore::rebuildRefCounts()
{
    refCount = computeRefCounts();
    freeInt.clear();
    freeFp.clear();
    for (PhysReg p = 0; p < static_cast<PhysReg>(refCount.size()); ++p) {
        if (refCount[p] == 0)
            freeReg(p);
    }
}

bool
CprCore::verifyRefCounts() const
{
    return computeRefCounts() == refCount;
}

void
CprCore::dumpDeadlock() const
{
    CoreBase::dumpDeadlock();
    std::fprintf(stderr, "  cpr: ckpts=%zu freeInt=%zu freeFp=%zu "
                         "sinceCkpt=%u\n",
                 ckptOrder.size(), freeInt.size(), freeFp.size(),
                 sinceCkpt);
    for (int slot : ckptOrder) {
        const Ckpt &c = ckptSlots[slot];
        std::fprintf(stderr,
                     "  ckpt slot=%d startSeq=%llu pendingExec=%u\n",
                     slot, static_cast<unsigned long long>(c.startSeq),
                     c.pendingExec);
    }
}

void
CprCore::warmArchState(const ArchState &warm)
{
    // Reset-state RAT: every logical register maps to a ready physical
    // register; the warmed value lands straight in it.
    for (int r = 0; r < numIntRegs; ++r)
        regVal[rat[r]] = warm.readInt(r);
    for (int r = 0; r < numFpRegs; ++r)
        regVal[rat[numIntRegs + r]] = warm.readFp(r);
}

} // namespace msp
