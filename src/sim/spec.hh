/**
 * @file
 * MachineSpec — the introspectable, fully-serialisable machine
 * configuration API.
 *
 * Every CoreParams/MachineConfig knob is registered exactly once with a
 * dotted name (e.g. "cpr.checkpoints", "msp.subprocessors",
 * "lcs.latency", "predictor"), its type, and its valid range. The
 * registry gives, generically over all parameters:
 *
 *  - JSON serialise/deserialise with validation errors that name the
 *    offending key (specToJson / specFromJson),
 *  - string-keyed get/set for CLI overrides (`--set key=value`) and
 *    `--machine FILE` config files (setParamFromString),
 *  - label-blind structural equality (sameSpec) and diff-based pretty
 *    printing against the nearest preset baseline (specDiff,
 *    describeSpec, specDiffReport).
 *
 * Presets (sim/presets.hh) are named MachineSpecs resolved through
 * this registry; divergence reproducers (verify/) serialise the
 * complete spec so *any* machine — including ablation-style custom
 * configs no preset name can express — replays bit-identically.
 *
 * Keys are emitted in registration order everywhere, so serialised
 * specs diff stably across runs and CI.
 */

#ifndef MSPLIB_SIM_SPEC_HH
#define MSPLIB_SIM_SPEC_HH

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "sim/machine.hh"

namespace msp {

/** A user error in a machine spec (unknown key, bad value, bad JSON). */
struct SpecError : std::runtime_error
{
    using std::runtime_error::runtime_error;
};

/** Typed value of one machine parameter. */
struct ParamValue
{
    enum class Type { Bool, U64, F64, Str };

    Type type = Type::U64;
    bool b = false;
    std::uint64_t u = 0;
    double f = 0.0;
    std::string s;

    static ParamValue ofBool(bool v);
    static ParamValue ofU64(std::uint64_t v);
    static ParamValue ofF64(double v);
    static ParamValue ofStr(std::string v);

    bool operator==(const ParamValue &o) const;
    bool operator!=(const ParamValue &o) const { return !(*this == o); }
};

/** One registered machine parameter: name, type, range, accessors. */
struct ParamSpec
{
    std::string key;           ///< dotted name, e.g. "cpr.checkpoints"
    ParamValue::Type type = ParamValue::Type::U64;

    // Valid range (inclusive) for U64 / F64 parameters.
    std::uint64_t minU = 0, maxU = 0;
    double minF = 0.0, maxF = 0.0;

    /** Permitted values of a Str (enum) parameter. */
    std::vector<std::string> choices;

    std::string doc;           ///< one-line description

    std::function<ParamValue(const MachineConfig &)> get;
    std::function<void(MachineConfig &, const ParamValue &)> set;
};

/** All registered parameters, in registration (= serialisation) order. */
const std::vector<ParamSpec> &machineParams();

/** Look up a parameter by dotted key; nullptr when unknown. */
const ParamSpec *findParam(const std::string &key);

/** Read one parameter. @throws SpecError on an unknown key. */
ParamValue getParam(const MachineConfig &m, const std::string &key);

/**
 * Set one parameter from a typed value, validating type and range.
 * @throws SpecError naming the key on any violation.
 */
void setParam(MachineConfig &m, const std::string &key,
              const ParamValue &v);

/**
 * Set one parameter from its text form ("3", "0.125", "true", "tage").
 * This is the `--set key=value` entry point.
 * @throws SpecError naming the key on unknown keys, type mismatches
 *         and out-of-range values.
 */
void setParamFromString(MachineConfig &m, const std::string &key,
                        const std::string &value);

/** Canonical text form of a value (bit-exact for doubles). */
std::string paramValueStr(const ParamValue &v);

/**
 * Structural equality over every registered parameter. The cosmetic
 * label (MachineConfig::name) is deliberately not a parameter, so two
 * machines that simulate identically compare equal regardless of what
 * they are called.
 */
bool sameSpec(const MachineConfig &a, const MachineConfig &b);

/**
 * Serialise the complete spec as one JSON object, keys in registration
 * order: {"base": "<preset>", "label": "...", "kind": ..., ...}.
 * "base" (the matching preset name, omitted when none matches) and
 * "label" are cosmetic; every registered parameter follows, so parsing
 * never depends on preset resolution.
 */
std::string specToJson(const MachineConfig &m);

/**
 * Parse a machine spec: either a flat spec object, or a document whose
 * top level carries it under a "machine" key. Reserved keys: "base"
 * (start from this preset instead of the defaults) and "label". All
 * other keys must be registered parameters; unknown keys, type
 * mismatches, out-of-range values and trailing content after the
 * object throw SpecError naming the problem. When no label is given
 * the machine is named by describeSpec().
 *
 * @p defaultPredictor seeds the machine (and any "base" preset) for
 * documents that do not set the "predictor" key themselves — the CLI
 * passes --predictor here so partial spec files honour it; a full
 * dump always carries its own "predictor" and is unaffected.
 */
MachineConfig specFromJson(const std::string &json,
                           PredictorKind defaultPredictor =
                               PredictorKind::Gshare);

/** One differing parameter between a spec and its baseline. */
struct SpecDelta
{
    std::string key;
    std::string value;      ///< the spec's value (text form)
    std::string baseValue;  ///< the baseline's value (text form)
};

/** Parameters of @p m that differ from @p base, registration order. */
std::vector<SpecDelta> specDiff(const MachineConfig &m,
                                const MachineConfig &base);

/**
 * The preset family @p m belongs to by its identity fields (kind,
 * banking), as a (CLI name, rebuilt config) pair — the baseline that
 * diff displays compare against. Unlike presetNameFor this never
 * fails: a custom ablation machine maps to its nearest family preset.
 */
std::pair<std::string, MachineConfig> nearestPreset(const MachineConfig &m);

/**
 * Compact human-readable identity: the exact preset name when one
 * matches ("16sp"), else the nearest preset plus its overrides in
 * registration order ("16sp+msp.subprocessors=24+lcs.latency=3").
 */
std::string describeSpec(const MachineConfig &m);

/**
 * Multi-line "spec vs preset baseline" report: the nearest preset and
 * one line per override with both values; "exact preset" when clean.
 */
std::string specDiffReport(const MachineConfig &m);

} // namespace msp

#endif // MSPLIB_SIM_SPEC_HH
