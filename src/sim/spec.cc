#include "sim/spec.hh"

#include <cerrno>
#include <cstdlib>

#include "common/logging.hh"
#include "sim/presets.hh"

namespace msp {

// ---- ParamValue ------------------------------------------------------------

ParamValue
ParamValue::ofBool(bool v)
{
    ParamValue pv;
    pv.type = Type::Bool;
    pv.b = v;
    return pv;
}

ParamValue
ParamValue::ofU64(std::uint64_t v)
{
    ParamValue pv;
    pv.type = Type::U64;
    pv.u = v;
    return pv;
}

ParamValue
ParamValue::ofF64(double v)
{
    ParamValue pv;
    pv.type = Type::F64;
    pv.f = v;
    return pv;
}

ParamValue
ParamValue::ofStr(std::string v)
{
    ParamValue pv;
    pv.type = Type::Str;
    pv.s = std::move(v);
    return pv;
}

bool
ParamValue::operator==(const ParamValue &o) const
{
    if (type != o.type)
        return false;
    switch (type) {
      case Type::Bool: return b == o.b;
      case Type::U64:  return u == o.u;
      case Type::F64:  return f == o.f;   // specs round-trip bit-exactly
      case Type::Str:  return s == o.s;
    }
    return false;
}

std::string
paramValueStr(const ParamValue &v)
{
    switch (v.type) {
      case ParamValue::Type::Bool: return v.b ? "true" : "false";
      case ParamValue::Type::U64:  return std::to_string(v.u);
      case ParamValue::Type::F64:  return csprintf("%.17g", v.f);
      case ParamValue::Type::Str:  return v.s;
    }
    return "";
}

// ---- the registry ----------------------------------------------------------

namespace {

/** Registration helpers: one ParamSpec per CoreParams member type. */

ParamSpec
u32Param(const char *key, unsigned CoreParams::*field, std::uint64_t lo,
         std::uint64_t hi, const char *doc)
{
    ParamSpec p;
    p.key = key;
    p.type = ParamValue::Type::U64;
    p.minU = lo;
    p.maxU = hi;
    p.doc = doc;
    p.get = [field](const MachineConfig &m) {
        return ParamValue::ofU64(m.core.*field);
    };
    p.set = [field](MachineConfig &m, const ParamValue &v) {
        m.core.*field = static_cast<unsigned>(v.u);
    };
    return p;
}

ParamSpec
u64Param(const char *key, std::uint64_t CoreParams::*field,
         std::uint64_t lo, std::uint64_t hi, const char *doc)
{
    ParamSpec p;
    p.key = key;
    p.type = ParamValue::Type::U64;
    p.minU = lo;
    p.maxU = hi;
    p.doc = doc;
    p.get = [field](const MachineConfig &m) {
        return ParamValue::ofU64(m.core.*field);
    };
    p.set = [field](MachineConfig &m, const ParamValue &v) {
        m.core.*field = v.u;
    };
    return p;
}

ParamSpec
f64Param(const char *key, double CoreParams::*field, double lo, double hi,
         const char *doc)
{
    ParamSpec p;
    p.key = key;
    p.type = ParamValue::Type::F64;
    p.minF = lo;
    p.maxF = hi;
    p.doc = doc;
    p.get = [field](const MachineConfig &m) {
        return ParamValue::ofF64(m.core.*field);
    };
    p.set = [field](MachineConfig &m, const ParamValue &v) {
        m.core.*field = v.f;
    };
    return p;
}

ParamSpec
boolParam(const char *key, bool CoreParams::*field, const char *doc)
{
    ParamSpec p;
    p.key = key;
    p.type = ParamValue::Type::Bool;
    p.doc = doc;
    p.get = [field](const MachineConfig &m) {
        return ParamValue::ofBool(m.core.*field);
    };
    p.set = [field](MachineConfig &m, const ParamValue &v) {
        m.core.*field = v.b;
    };
    return p;
}

std::vector<ParamSpec>
buildRegistry()
{
    constexpr std::uint64_t u64Max = ~std::uint64_t{0};
    std::vector<ParamSpec> r;

    // -- identity ------------------------------------------------------------
    {
        ParamSpec p;
        p.key = "kind";
        p.type = ParamValue::Type::Str;
        p.choices = {"baseline", "cpr", "msp"};
        p.doc = "microarchitecture family";
        p.get = [](const MachineConfig &m) {
            switch (m.core.kind) {
              case CoreKind::Baseline: return ParamValue::ofStr("baseline");
              case CoreKind::Cpr:      return ParamValue::ofStr("cpr");
              case CoreKind::Msp:      break;
            }
            return ParamValue::ofStr("msp");
        };
        p.set = [](MachineConfig &m, const ParamValue &v) {
            m.core.kind = v.s == "baseline" ? CoreKind::Baseline
                        : v.s == "cpr"      ? CoreKind::Cpr
                                            : CoreKind::Msp;
        };
        r.push_back(std::move(p));
    }
    {
        ParamSpec p;
        p.key = "predictor";
        p.type = ParamValue::Type::Str;
        p.choices = {"gshare", "tage"};
        p.doc = "branch direction predictor";
        p.get = [](const MachineConfig &m) {
            return ParamValue::ofStr(
                m.predictor == PredictorKind::Tage ? "tage" : "gshare");
        };
        p.set = [](MachineConfig &m, const ParamValue &v) {
            m.predictor = v.s == "tage" ? PredictorKind::Tage
                                        : PredictorKind::Gshare;
        };
        r.push_back(std::move(p));
    }

    // -- pipeline widths -----------------------------------------------------
    r.push_back(u32Param("width.fetch", &CoreParams::fetchWidth, 1, 64,
                         "instructions fetched per cycle"));
    r.push_back(u32Param("width.rename", &CoreParams::renameWidth, 1, 64,
                         "instructions renamed per cycle"));
    r.push_back(u32Param("width.issue", &CoreParams::issueWidth, 1, 64,
                         "instructions issued per cycle"));
    r.push_back(u32Param("width.retire", &CoreParams::retireWidth, 1, 64,
                         "instructions retired per cycle (baseline)"));
    r.push_back(u32Param("frontend.depth", &CoreParams::frontendDepth, 1,
                         64, "fetch-to-rename depth in cycles"));

    // -- capacities ----------------------------------------------------------
    r.push_back(u32Param("iq.size", &CoreParams::iqSize, 1, 1u << 16,
                         "issue-queue entries"));
    r.push_back(u32Param("rob.size", &CoreParams::robSize, 1, 1u << 16,
                         "reorder-buffer entries (baseline)"));
    r.push_back(u32Param("regs.int", &CoreParams::numIntPhys, 1, 1u << 20,
                         "integer physical registers (flat-file cores)"));
    r.push_back(u32Param("regs.fp", &CoreParams::numFpPhys, 1, 1u << 20,
                         "fp physical registers (flat-file cores)"));
    r.push_back(u32Param("ldq.size", &CoreParams::ldqSize, 1, 1u << 16,
                         "load-queue entries"));
    r.push_back(u32Param("sq.l1", &CoreParams::sq1Size, 1, 1u << 16,
                         "L1 store-queue entries"));
    r.push_back(u32Param("sq.l2", &CoreParams::sq2Size, 0, 1u << 20,
                         "L2 store-queue entries (0 = no L2 SQ)"));
    r.push_back(boolParam("sq.infinite", &CoreParams::infiniteSq,
                          "unbounded store queue (ideal MSP)"));

    // -- functional units ----------------------------------------------------
    r.push_back(u32Param("fu.int", &CoreParams::intUnits, 1, 64,
                         "integer functional units"));
    r.push_back(u32Param("fu.fp", &CoreParams::fpUnits, 1, 64,
                         "fp functional units"));
    r.push_back(u32Param("fu.mem", &CoreParams::memUnits, 1, 64,
                         "load/store units"));

    // -- MSP -----------------------------------------------------------------
    r.push_back(u32Param("msp.subprocessors", &CoreParams::regsPerBank, 1,
                         1u << 20,
                         "state processors per logical register (n-SP)"));
    r.push_back(boolParam("msp.infinite_banks", &CoreParams::infiniteBanks,
                          "unbounded banks (ideal MSP)"));
    r.push_back(u32Param("lcs.latency", &CoreParams::lcsLatency, 0, 1024,
                         "LCS propagation delay in cycles (0 for ideal)"));
    r.push_back(boolParam("msp.arbitration", &CoreParams::arbitration,
                          "banked-RF port arbitration pipeline stage"));
    r.push_back(u32Param("rename.same_reg",
                         &CoreParams::maxSameRegRenames, 1, 64,
                         "same-logical-register renames per cycle"));
    r.push_back(u32Param("rename.dests", &CoreParams::maxRenameDests, 1,
                         64, "destination registers renamed per cycle"));

    // -- CPR -----------------------------------------------------------------
    r.push_back(u32Param("cpr.checkpoints", &CoreParams::numCheckpoints,
                         1, 4096, "checkpoint count"));
    r.push_back(u32Param("cpr.interval", &CoreParams::ckptInterval, 1,
                         1u << 20,
                         "force a checkpoint after this many insts"));
    r.push_back(u32Param("cpr.min_dist", &CoreParams::minCkptDist, 0,
                         1u << 20, "min instructions between checkpoints"));
    r.push_back(f64Param("cpr.sq_scan_penalty",
                         &CoreParams::sqScanPenaltyPerEntry, 0.0, 1e6,
                         "L2 SQ rollback scan cycles per entry"));
    r.push_back(u64Param("cpr.rollback_penalty",
                         &CoreParams::rollbackRestorePenalty, 0,
                         1u << 20, "RAT copy + free-list repair cycles"));

    // -- misc ----------------------------------------------------------------
    r.push_back(boolParam("ldq.release_at_exec",
                          &CoreParams::ldqReleaseAtExec,
                          "release load-queue entries at execution"));
    r.push_back(boolParam("oracle.check", &CoreParams::oracleCheck,
                          "internal lock-step functional comparison"));
    r.push_back(u64Param("recovery.penalty", &CoreParams::recoveryPenalty,
                         0, 1u << 20, "extra cycles on any recovery"));
    r.push_back(u64Param("warmup.instrs", &CoreParams::warmupInstrs, 0,
                         u64Max,
                         "instructions fast-forwarded architecturally "
                         "before timing starts (0 = no warmup)"));
    r.push_back(u64Param("msp.max_intra_state_id",
                         &CoreParams::maxIntraStateId, 1, u64Max,
                         "same-state ordering id limit"));

    // -- verification-only fault injection -----------------------------------
    r.push_back(u64Param("fault.commit_at", &CoreParams::commitFaultAt, 0,
                         u64Max,
                         "flip a result bit at the Nth committed write "
                         "(test-only)"));
    r.push_back(u64Param("fault.observer_at",
                         &CoreParams::observerFaultAt, 0, u64Max,
                         "drop the Nth commit-observer callback "
                         "(test-only)"));
    return r;
}

} // anonymous namespace

const std::vector<ParamSpec> &
machineParams()
{
    static const std::vector<ParamSpec> registry = buildRegistry();
    return registry;
}

const ParamSpec *
findParam(const std::string &key)
{
    for (const ParamSpec &p : machineParams())
        if (p.key == key)
            return &p;
    return nullptr;
}

ParamValue
getParam(const MachineConfig &m, const std::string &key)
{
    const ParamSpec *p = findParam(key);
    if (!p)
        throw SpecError(csprintf("unknown machine parameter '%s'",
                                 key.c_str()));
    return p->get(m);
}

namespace {

std::string
choiceList(const ParamSpec &p)
{
    std::string out;
    for (const std::string &c : p.choices) {
        if (!out.empty())
            out += "|";
        out += c;
    }
    return out;
}

/** Range/choice validation shared by setParam and the JSON parser. */
void
validate(const ParamSpec &p, const ParamValue &v)
{
    switch (p.type) {
      case ParamValue::Type::Bool:
        break;
      case ParamValue::Type::U64:
        if (v.u < p.minU || v.u > p.maxU) {
            throw SpecError(csprintf(
                "%s: %llu out of range [%llu, %llu]", p.key.c_str(),
                static_cast<unsigned long long>(v.u),
                static_cast<unsigned long long>(p.minU),
                static_cast<unsigned long long>(p.maxU)));
        }
        break;
      case ParamValue::Type::F64:
        if (!(v.f >= p.minF && v.f <= p.maxF)) {   // rejects NaN too
            throw SpecError(csprintf("%s: %g out of range [%g, %g]",
                                     p.key.c_str(), v.f, p.minF, p.maxF));
        }
        break;
      case ParamValue::Type::Str: {
        for (const std::string &c : p.choices)
            if (v.s == c)
                return;
        throw SpecError(csprintf("%s: '%s' is not one of %s",
                                 p.key.c_str(), v.s.c_str(),
                                 choiceList(p).c_str()));
      }
    }
}

const char *
typeName(ParamValue::Type t)
{
    switch (t) {
      case ParamValue::Type::Bool: return "bool";
      case ParamValue::Type::U64:  return "unsigned integer";
      case ParamValue::Type::F64:  return "number";
      case ParamValue::Type::Str:  return "string";
    }
    return "?";
}

/** Parse @p text into @p p's type; throws SpecError naming the key. */
ParamValue
valueFromText(const ParamSpec &p, const std::string &text)
{
    const char *begin = text.c_str();
    char *end = nullptr;
    switch (p.type) {
      case ParamValue::Type::Bool:
        if (text == "true")
            return ParamValue::ofBool(true);
        if (text == "false")
            return ParamValue::ofBool(false);
        throw SpecError(csprintf("%s: '%s' is not a bool (true|false)",
                                 p.key.c_str(), text.c_str()));
      case ParamValue::Type::U64: {
        if (text.empty() || text[0] == '-')
            throw SpecError(csprintf("%s: '%s' is not an %s",
                                     p.key.c_str(), text.c_str(),
                                     typeName(p.type)));
        errno = 0;
        const std::uint64_t u = std::strtoull(begin, &end, 10);
        if (end != begin + text.size() || errno == ERANGE)
            throw SpecError(csprintf("%s: '%s' is not an %s",
                                     p.key.c_str(), text.c_str(),
                                     typeName(p.type)));
        return ParamValue::ofU64(u);
      }
      case ParamValue::Type::F64: {
        const double f = std::strtod(begin, &end);
        if (text.empty() || end != begin + text.size())
            throw SpecError(csprintf("%s: '%s' is not a %s",
                                     p.key.c_str(), text.c_str(),
                                     typeName(p.type)));
        return ParamValue::ofF64(f);
      }
      case ParamValue::Type::Str:
        return ParamValue::ofStr(text);
    }
    throw SpecError(p.key + ": unreachable");
}

} // anonymous namespace

void
setParam(MachineConfig &m, const std::string &key, const ParamValue &v)
{
    const ParamSpec *p = findParam(key);
    if (!p)
        throw SpecError(csprintf("unknown machine parameter '%s'",
                                 key.c_str()));
    if (v.type != p->type) {
        throw SpecError(csprintf("%s: expected %s, got %s", key.c_str(),
                                 typeName(p->type), typeName(v.type)));
    }
    validate(*p, v);
    p->set(m, v);
}

void
setParamFromString(MachineConfig &m, const std::string &key,
                   const std::string &value)
{
    const ParamSpec *p = findParam(key);
    if (!p)
        throw SpecError(csprintf("unknown machine parameter '%s'",
                                 key.c_str()));
    const ParamValue v = valueFromText(*p, value);
    validate(*p, v);
    p->set(m, v);
}

bool
sameSpec(const MachineConfig &a, const MachineConfig &b)
{
    for (const ParamSpec &p : machineParams())
        if (p.get(a) != p.get(b))
            return false;
    return true;
}

// ---- serialisation ---------------------------------------------------------

namespace {

std::string
jsonStr(const std::string &s)
{
    std::string out = "\"";
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        if (static_cast<unsigned char>(c) < 0x20)
            out += csprintf("\\u%04x", c);
        else
            out += c;
    }
    out += '"';
    return out;
}

std::string
jsonValue(const ParamValue &v)
{
    return v.type == ParamValue::Type::Str ? jsonStr(v.s)
                                           : paramValueStr(v);
}

} // anonymous namespace

std::string
specToJson(const MachineConfig &m)
{
    std::string out = "{";
    const std::string base = presetNameFor(m);
    if (!base.empty())
        out += "\"base\": " + jsonStr(base) + ", ";
    out += "\"label\": " + jsonStr(m.name);
    for (const ParamSpec &p : machineParams()) {
        out += ", ";
        out += jsonStr(p.key) + ": " + jsonValue(p.get(m));
    }
    out += "}";
    return out;
}

namespace {

/** Minimal strict scanner for the flat spec-object grammar. */
struct Scanner
{
    const std::string &s;
    std::size_t p = 0;

    explicit Scanner(const std::string &text) : s(text) {}

    void
    ws()
    {
        while (p < s.size() && (s[p] == ' ' || s[p] == '\t' ||
                                s[p] == '\n' || s[p] == '\r')) {
            ++p;
        }
    }

    bool eof() { ws(); return p >= s.size(); }

    char
    peek()
    {
        ws();
        if (p >= s.size())
            throw SpecError("machine spec: unexpected end of input");
        return s[p];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            throw SpecError(csprintf("machine spec: expected '%c' at "
                                     "offset %zu", c, p));
        ++p;
    }

    /** Parse a quoted string, decoding standard JSON escapes. */
    std::string
    str()
    {
        expect('"');
        std::string out;
        while (p < s.size() && s[p] != '"') {
            char c = s[p++];
            if (c != '\\') {
                out += c;
                continue;
            }
            if (p >= s.size())
                break;   // reported as unterminated below
            const char esc = s[p++];
            switch (esc) {
              case '"': case '\\': case '/': out += esc; break;
              case 'n': out += '\n'; break;
              case 't': out += '\t'; break;
              case 'r': out += '\r'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'u': {
                if (p + 4 > s.size())
                    throw SpecError("machine spec: truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = s[p++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= h - '0';
                    else if (h >= 'a' && h <= 'f')
                        code |= h - 'a' + 10;
                    else if (h >= 'A' && h <= 'F')
                        code |= h - 'A' + 10;
                    else
                        throw SpecError("machine spec: bad \\u escape");
                }
                // UTF-8 encode; our own emitter only produces \u00xx.
                if (code < 0x80) {
                    out += static_cast<char>(code);
                } else if (code < 0x800) {
                    out += static_cast<char>(0xc0 | (code >> 6));
                    out += static_cast<char>(0x80 | (code & 0x3f));
                } else {
                    out += static_cast<char>(0xe0 | (code >> 12));
                    out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
                    out += static_cast<char>(0x80 | (code & 0x3f));
                }
                break;
              }
              default:
                throw SpecError(csprintf("machine spec: unknown escape "
                                         "\\%c", esc));
            }
        }
        if (p >= s.size())
            throw SpecError("machine spec: unterminated string");
        ++p;   // closing quote
        return out;
    }

    /** An unquoted token: number / true / false. */
    std::string
    rawToken()
    {
        ws();
        const std::size_t start = p;
        while (p < s.size() && s[p] != ',' && s[p] != '}' &&
               s[p] != ']' && s[p] != ' ' && s[p] != '\t' &&
               s[p] != '\n' && s[p] != '\r') {
            ++p;
        }
        if (p == start)
            throw SpecError(csprintf("machine spec: expected a value at "
                                     "offset %zu", start));
        return s.substr(start, p - start);
    }
};

/** One parsed key/value: quoted values keep the distinction. */
struct RawEntry
{
    std::string key;
    std::string value;
    bool quoted = false;
};

/**
 * Parse the object at the scanner's cursor into ordered entries. Only
 * the top-level wrapper key "machine" may hold a nested object (the
 * spec itself); any other nesting is rejected.
 */
std::vector<RawEntry>
parseFlatObject(Scanner &sc)
{
    std::vector<RawEntry> entries;
    sc.expect('{');
    if (sc.peek() == '}') {
        ++sc.p;
        return entries;
    }
    for (;;) {
        RawEntry e;
        e.key = sc.str();
        sc.expect(':');
        const char c = sc.peek();
        if (c == '"') {
            e.value = sc.str();
            e.quoted = true;
        } else if (c == '{' || c == '[') {
            throw SpecError(csprintf("machine spec: key '%s' must not "
                                     "hold a nested value",
                                     e.key.c_str()));
        } else {
            e.value = sc.rawToken();
        }
        entries.push_back(std::move(e));
        if (sc.peek() == ',') {
            ++sc.p;
            continue;
        }
        sc.expect('}');
        return entries;
    }
}

} // anonymous namespace

MachineConfig
specFromJson(const std::string &json, PredictorKind defaultPredictor)
{
    Scanner sc(json);

    // Accept a wrapper document {"machine": {...}} by descending into
    // the "machine" object before flat parsing.
    bool wrapped = false;
    {
        Scanner probe(json);
        probe.expect('{');
        if (!probe.eof() && probe.peek() == '"') {
            const std::size_t save = probe.p;
            const std::string firstKey = probe.str();
            if (firstKey == "machine") {
                probe.expect(':');
                if (probe.peek() == '{') {
                    sc.p = probe.p;
                    wrapped = true;
                }
            } else {
                probe.p = save;
            }
        }
    }

    const std::vector<RawEntry> entries = parseFlatObject(sc);
    // A truncated or concatenated document must not half-load: the
    // machine the user gets would not be the machine in the file.
    if (wrapped)
        sc.expect('}');
    if (!sc.eof())
        throw SpecError(csprintf("machine spec: trailing content at "
                                 "offset %zu", sc.p));

    MachineConfig m;
    m.predictor = defaultPredictor;
    std::string label;
    bool haveLabel = false;

    // "base" resolves first regardless of position, so later parameter
    // keys always override the preset (file order among parameters is
    // last-writer-wins, like repeated --set flags).
    for (const RawEntry &e : entries) {
        if (e.key != "base")
            continue;
        if (!e.quoted)
            throw SpecError("base: expected a preset name string");
        m = presetByName(e.value, defaultPredictor);
    }
    for (const RawEntry &e : entries) {
        if (e.key == "base")
            continue;
        if (e.key == "label") {
            if (!e.quoted)
                throw SpecError("label: expected a string");
            label = e.value;
            haveLabel = true;
            continue;
        }
        const ParamSpec *p = findParam(e.key);
        if (!p)
            throw SpecError(csprintf("unknown machine parameter '%s'",
                                     e.key.c_str()));
        if (p->type == ParamValue::Type::Str) {
            if (!e.quoted)
                throw SpecError(csprintf("%s: expected a string (%s)",
                                         p->key.c_str(),
                                         choiceList(*p).c_str()));
        } else if (e.quoted) {
            throw SpecError(csprintf("%s: expected %s, got a string",
                                     p->key.c_str(), typeName(p->type)));
        }
        const ParamValue v = valueFromText(*p, e.value);
        validate(*p, v);
        p->set(m, v);
    }

    m.name = haveLabel ? label : describeSpec(m);
    return m;
}

// ---- diffing ---------------------------------------------------------------

std::vector<SpecDelta>
specDiff(const MachineConfig &m, const MachineConfig &base)
{
    std::vector<SpecDelta> deltas;
    for (const ParamSpec &p : machineParams()) {
        const ParamValue a = p.get(m);
        const ParamValue b = p.get(base);
        if (a != b)
            deltas.push_back({p.key, paramValueStr(a), paramValueStr(b)});
    }
    return deltas;
}

std::pair<std::string, MachineConfig>
nearestPreset(const MachineConfig &m)
{
    const CoreParams &c = m.core;
    switch (c.kind) {
      case CoreKind::Baseline:
        return {"baseline", baselineConfig(m.predictor)};
      case CoreKind::Cpr:
        return {"cpr", cprConfig(m.predictor)};
      case CoreKind::Msp:
        break;
    }
    if (c.infiniteBanks)
        return {"ideal", idealMspConfig(m.predictor)};
    const unsigned n = c.regsPerBank ? c.regsPerBank : 1;
    return {csprintf("%usp%s", n, c.arbitration ? "" : "-noarb"),
            nspConfig(n, m.predictor, c.arbitration)};
}

std::string
describeSpec(const MachineConfig &m)
{
    const auto [name, base] = nearestPreset(m);
    std::string out = name;
    for (const SpecDelta &d : specDiff(m, base))
        out += "+" + d.key + "=" + d.value;
    return out;
}

std::string
specDiffReport(const MachineConfig &m)
{
    const auto [name, base] = nearestPreset(m);
    const std::vector<SpecDelta> deltas = specDiff(m, base);
    std::string out = csprintf("machine '%s'", m.name.c_str());
    if (deltas.empty()) {
        out += csprintf(" = preset %s (exact)\n", name.c_str());
        return out;
    }
    out += csprintf(" = preset %s with %zu override(s):\n", name.c_str(),
                    deltas.size());
    for (const SpecDelta &d : deltas) {
        out += csprintf("  %-24s = %s (preset: %s)\n", d.key.c_str(),
                        d.value.c_str(), d.baseValue.c_str());
    }
    return out;
}

} // namespace msp
