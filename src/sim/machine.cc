#include "sim/machine.hh"

#include "baseline/baseline_core.hh"
#include "common/logging.hh"
#include "core/msp_core.hh"
#include "cpr/cpr_core.hh"

namespace msp {

Machine::Machine(const MachineConfig &config, const Program &program)
    : cfg(config), statGroup(config.name), prog(program)
{
    switch (cfg.core.kind) {
      case CoreKind::Baseline:
        coreImpl = std::make_unique<BaselineCore>(cfg.core, prog,
                                                  cfg.predictor, statGroup);
        break;
      case CoreKind::Cpr:
        coreImpl = std::make_unique<CprCore>(cfg.core, prog,
                                             cfg.predictor, statGroup);
        break;
      case CoreKind::Msp:
        coreImpl = std::make_unique<MspCore>(cfg.core, prog,
                                             cfg.predictor, statGroup);
        break;
      default:
        msp_panic("unknown core kind");
    }
}

Machine::~Machine() = default;

RunResult
Machine::run(std::uint64_t maxInsts, std::uint64_t maxCycles)
{
    RunResult r = coreImpl->run(maxInsts, maxCycles);
    r.config = cfg.name;
    return r;
}

} // namespace msp
