#include "sim/presets.hh"

#include <cstdlib>

#include "common/logging.hh"
#include "sim/spec.hh"

namespace msp {

const char *
predictorName(PredictorKind p)
{
    return p == PredictorKind::Gshare ? "gshare" : "TAGE";
}

MachineConfig
baselineConfig(PredictorKind predictor)
{
    MachineConfig m;
    m.name = "Baseline";
    m.predictor = predictor;
    CoreParams &c = m.core;
    c.kind = CoreKind::Baseline;
    c.robSize = 128;
    c.iqSize = 48;
    c.numIntPhys = 96;
    c.numFpPhys = 96;
    c.ldqSize = 48;
    c.sq1Size = 24;
    c.sq2Size = 0;
    c.frontendDepth = 5;
    c.ldqReleaseAtExec = false;   // ROB semantics: hold to retire
    return m;
}

MachineConfig
cprConfig(PredictorKind predictor, unsigned physRegs, unsigned checkpoints)
{
    MachineConfig m;
    m.name = physRegs == 192 ? "CPR"
                             : csprintf("CPR-%u", physRegs);
    m.predictor = predictor;
    CoreParams &c = m.core;
    c.kind = CoreKind::Cpr;
    c.iqSize = 128;
    c.numIntPhys = physRegs;
    c.numFpPhys = physRegs;
    c.ldqSize = 48;
    c.sq1Size = 48;
    c.sq2Size = 256;
    c.numCheckpoints = checkpoints;
    c.frontendDepth = 5;
    return m;
}

MachineConfig
nspConfig(unsigned n, PredictorKind predictor, bool arbitration)
{
    MachineConfig m;
    m.name = csprintf("%u-SP%s", n, arbitration ? "+Arb" : "");
    m.predictor = predictor;
    CoreParams &c = m.core;
    c.kind = CoreKind::Msp;
    c.iqSize = 128;
    c.regsPerBank = n;
    c.ldqSize = 48;
    c.sq1Size = 48;
    c.sq2Size = 256;
    c.lcsLatency = 1;
    c.arbitration = arbitration;
    // The register-port arbitration stage deepens the pipeline (Sec. 3).
    c.frontendDepth = arbitration ? 6 : 5;
    return m;
}

MachineConfig
idealMspConfig(PredictorKind predictor)
{
    MachineConfig m;
    m.name = "ideal MSP";
    m.predictor = predictor;
    CoreParams &c = m.core;
    c.kind = CoreKind::Msp;
    c.iqSize = 128;
    c.infiniteBanks = true;
    c.regsPerBank = 1u << 18;
    c.ldqSize = 48;
    c.sq1Size = 48;
    c.sq2Size = 256;
    c.infiniteSq = true;
    c.lcsLatency = 0;
    c.arbitration = false;
    c.frontendDepth = 5;
    return m;
}

MachineConfig
presetByName(const std::string &name, PredictorKind predictor)
{
    if (name == "default") {
        MachineConfig m;
        m.name = "default";
        m.predictor = predictor;
        return m;
    }
    if (name == "baseline")
        return baselineConfig(predictor);
    if (name == "cpr")
        return cprConfig(predictor);
    if (name == "ideal")
        return idealMspConfig(predictor);
    // <n>sp or <n>sp-noarb, e.g. "16sp", "64sp-noarb".
    const std::size_t sp = name.find("sp");
    if (sp != std::string::npos && sp > 0) {
        const unsigned n =
            static_cast<unsigned>(std::atoi(name.substr(0, sp).c_str()));
        const std::string suffix = name.substr(sp);
        if (n > 0 && (suffix == "sp" || suffix == "sp-noarb"))
            return nspConfig(n, predictor, suffix == "sp");
    }
    throw SpecError(csprintf("unknown preset '%s' (want default, "
                             "baseline, cpr, ideal, <n>sp or "
                             "<n>sp-noarb)", name.c_str()));
}

std::string
presetNameFor(const MachineConfig &config)
{
    // Derive the candidate name from the identity fields, then prove
    // it by rebuilding the preset and comparing every registered
    // parameter — a name that rebuilds a different machine (tweaked
    // ablation config, injected test fault) would mislabel the spec.
    const auto [name, rebuilt] = nearestPreset(config);
    return sameSpec(rebuilt, config) ? name : "";
}

} // namespace msp
