#include "sim/presets.hh"

#include "common/logging.hh"

namespace msp {

const char *
predictorName(PredictorKind p)
{
    return p == PredictorKind::Gshare ? "gshare" : "TAGE";
}

MachineConfig
baselineConfig(PredictorKind predictor)
{
    MachineConfig m;
    m.name = "Baseline";
    m.predictor = predictor;
    CoreParams &c = m.core;
    c.kind = CoreKind::Baseline;
    c.robSize = 128;
    c.iqSize = 48;
    c.numIntPhys = 96;
    c.numFpPhys = 96;
    c.ldqSize = 48;
    c.sq1Size = 24;
    c.sq2Size = 0;
    c.frontendDepth = 5;
    c.ldqReleaseAtExec = false;   // ROB semantics: hold to retire
    return m;
}

MachineConfig
cprConfig(PredictorKind predictor, unsigned physRegs, unsigned checkpoints)
{
    MachineConfig m;
    m.name = physRegs == 192 ? "CPR"
                             : csprintf("CPR-%u", physRegs);
    m.predictor = predictor;
    CoreParams &c = m.core;
    c.kind = CoreKind::Cpr;
    c.iqSize = 128;
    c.numIntPhys = physRegs;
    c.numFpPhys = physRegs;
    c.ldqSize = 48;
    c.sq1Size = 48;
    c.sq2Size = 256;
    c.numCheckpoints = checkpoints;
    c.frontendDepth = 5;
    return m;
}

MachineConfig
nspConfig(unsigned n, PredictorKind predictor, bool arbitration)
{
    MachineConfig m;
    m.name = csprintf("%u-SP%s", n, arbitration ? "+Arb" : "");
    m.predictor = predictor;
    CoreParams &c = m.core;
    c.kind = CoreKind::Msp;
    c.iqSize = 128;
    c.regsPerBank = n;
    c.ldqSize = 48;
    c.sq1Size = 48;
    c.sq2Size = 256;
    c.lcsLatency = 1;
    c.arbitration = arbitration;
    // The register-port arbitration stage deepens the pipeline (Sec. 3).
    c.frontendDepth = arbitration ? 6 : 5;
    return m;
}

MachineConfig
idealMspConfig(PredictorKind predictor)
{
    MachineConfig m;
    m.name = "ideal MSP";
    m.predictor = predictor;
    CoreParams &c = m.core;
    c.kind = CoreKind::Msp;
    c.iqSize = 128;
    c.infiniteBanks = true;
    c.regsPerBank = 1u << 18;
    c.ldqSize = 48;
    c.sq1Size = 48;
    c.sq2Size = 256;
    c.infiniteSq = true;
    c.lcsLatency = 0;
    c.arbitration = false;
    c.frontendDepth = 5;
    return m;
}

namespace {

/** Field-by-field CoreParams equality (no operator== on the struct). */
bool
sameCore(const CoreParams &a, const CoreParams &b)
{
    return a.kind == b.kind && a.fetchWidth == b.fetchWidth &&
           a.renameWidth == b.renameWidth &&
           a.issueWidth == b.issueWidth &&
           a.retireWidth == b.retireWidth &&
           a.frontendDepth == b.frontendDepth && a.iqSize == b.iqSize &&
           a.robSize == b.robSize && a.numIntPhys == b.numIntPhys &&
           a.numFpPhys == b.numFpPhys && a.ldqSize == b.ldqSize &&
           a.sq1Size == b.sq1Size && a.sq2Size == b.sq2Size &&
           a.infiniteSq == b.infiniteSq && a.intUnits == b.intUnits &&
           a.fpUnits == b.fpUnits && a.memUnits == b.memUnits &&
           a.regsPerBank == b.regsPerBank &&
           a.infiniteBanks == b.infiniteBanks &&
           a.lcsLatency == b.lcsLatency &&
           a.arbitration == b.arbitration &&
           a.maxSameRegRenames == b.maxSameRegRenames &&
           a.maxRenameDests == b.maxRenameDests &&
           a.numCheckpoints == b.numCheckpoints &&
           a.ckptInterval == b.ckptInterval &&
           a.minCkptDist == b.minCkptDist &&
           a.sqScanPenaltyPerEntry == b.sqScanPenaltyPerEntry &&
           a.rollbackRestorePenalty == b.rollbackRestorePenalty &&
           a.ldqReleaseAtExec == b.ldqReleaseAtExec &&
           a.oracleCheck == b.oracleCheck &&
           a.recoveryPenalty == b.recoveryPenalty &&
           a.maxIntraStateId == b.maxIntraStateId &&
           a.commitFaultAt == b.commitFaultAt &&
           a.observerFaultAt == b.observerFaultAt;
}

} // anonymous namespace

std::string
presetNameFor(const MachineConfig &config)
{
    // Derive the candidate name from the identity fields, then prove
    // it by rebuilding the preset and comparing *every* core knob — a
    // name that rebuilds a different machine (tweaked ablation config,
    // injected test fault) would make a replayed repro silently lie.
    const CoreParams &c = config.core;
    std::string name;
    MachineConfig rebuilt;
    switch (c.kind) {
      case CoreKind::Baseline:
        name = "baseline";
        rebuilt = baselineConfig(config.predictor);
        break;
      case CoreKind::Cpr:
        name = "cpr";
        rebuilt = cprConfig(config.predictor);
        break;
      case CoreKind::Msp:
        if (c.infiniteBanks) {
            name = "ideal";
            rebuilt = idealMspConfig(config.predictor);
        } else {
            name = csprintf("%usp%s", c.regsPerBank,
                            c.arbitration ? "" : "-noarb");
            rebuilt = nspConfig(c.regsPerBank, config.predictor,
                                c.arbitration);
        }
        break;
    }
    return sameCore(rebuilt.core, c) ? name : "";
}

} // namespace msp
