#include "sim/presets.hh"

#include "common/logging.hh"

namespace msp {

const char *
predictorName(PredictorKind p)
{
    return p == PredictorKind::Gshare ? "gshare" : "TAGE";
}

MachineConfig
baselineConfig(PredictorKind predictor)
{
    MachineConfig m;
    m.name = "Baseline";
    m.predictor = predictor;
    CoreParams &c = m.core;
    c.kind = CoreKind::Baseline;
    c.robSize = 128;
    c.iqSize = 48;
    c.numIntPhys = 96;
    c.numFpPhys = 96;
    c.ldqSize = 48;
    c.sq1Size = 24;
    c.sq2Size = 0;
    c.frontendDepth = 5;
    c.ldqReleaseAtExec = false;   // ROB semantics: hold to retire
    return m;
}

MachineConfig
cprConfig(PredictorKind predictor, unsigned physRegs, unsigned checkpoints)
{
    MachineConfig m;
    m.name = physRegs == 192 ? "CPR"
                             : csprintf("CPR-%u", physRegs);
    m.predictor = predictor;
    CoreParams &c = m.core;
    c.kind = CoreKind::Cpr;
    c.iqSize = 128;
    c.numIntPhys = physRegs;
    c.numFpPhys = physRegs;
    c.ldqSize = 48;
    c.sq1Size = 48;
    c.sq2Size = 256;
    c.numCheckpoints = checkpoints;
    c.frontendDepth = 5;
    return m;
}

MachineConfig
nspConfig(unsigned n, PredictorKind predictor, bool arbitration)
{
    MachineConfig m;
    m.name = csprintf("%u-SP%s", n, arbitration ? "+Arb" : "");
    m.predictor = predictor;
    CoreParams &c = m.core;
    c.kind = CoreKind::Msp;
    c.iqSize = 128;
    c.regsPerBank = n;
    c.ldqSize = 48;
    c.sq1Size = 48;
    c.sq2Size = 256;
    c.lcsLatency = 1;
    c.arbitration = arbitration;
    // The register-port arbitration stage deepens the pipeline (Sec. 3).
    c.frontendDepth = arbitration ? 6 : 5;
    return m;
}

MachineConfig
idealMspConfig(PredictorKind predictor)
{
    MachineConfig m;
    m.name = "ideal MSP";
    m.predictor = predictor;
    CoreParams &c = m.core;
    c.kind = CoreKind::Msp;
    c.iqSize = 128;
    c.infiniteBanks = true;
    c.regsPerBank = 1u << 18;
    c.ldqSize = 48;
    c.sq1Size = 48;
    c.sq2Size = 256;
    c.infiniteSq = true;
    c.lcsLatency = 0;
    c.arbitration = false;
    c.frontendDepth = 5;
    return m;
}

} // namespace msp
