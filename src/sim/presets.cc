#include "sim/presets.hh"

#include <climits>

#include "common/logging.hh"
#include "common/parse.hh"
#include "sim/spec.hh"

namespace msp {

const char *
predictorName(PredictorKind p)
{
    return p == PredictorKind::Gshare ? "gshare" : "TAGE";
}

MachineConfig
baselineConfig(PredictorKind predictor)
{
    MachineConfig m;
    m.name = "Baseline";
    m.predictor = predictor;
    CoreParams &c = m.core;
    c.kind = CoreKind::Baseline;
    c.robSize = 128;
    c.iqSize = 48;
    c.numIntPhys = 96;
    c.numFpPhys = 96;
    c.ldqSize = 48;
    c.sq1Size = 24;
    c.sq2Size = 0;
    c.frontendDepth = 5;
    c.ldqReleaseAtExec = false;   // ROB semantics: hold to retire
    return m;
}

MachineConfig
cprConfig(PredictorKind predictor, unsigned physRegs, unsigned checkpoints)
{
    MachineConfig m;
    m.name = physRegs == 192 ? "CPR"
                             : csprintf("CPR-%u", physRegs);
    m.predictor = predictor;
    CoreParams &c = m.core;
    c.kind = CoreKind::Cpr;
    c.iqSize = 128;
    c.numIntPhys = physRegs;
    c.numFpPhys = physRegs;
    c.ldqSize = 48;
    c.sq1Size = 48;
    c.sq2Size = 256;
    c.numCheckpoints = checkpoints;
    c.frontendDepth = 5;
    return m;
}

MachineConfig
nspConfig(unsigned n, PredictorKind predictor, bool arbitration)
{
    MachineConfig m;
    m.name = csprintf("%u-SP%s", n, arbitration ? "+Arb" : "");
    m.predictor = predictor;
    CoreParams &c = m.core;
    c.kind = CoreKind::Msp;
    c.iqSize = 128;
    c.regsPerBank = n;
    c.ldqSize = 48;
    c.sq1Size = 48;
    c.sq2Size = 256;
    c.lcsLatency = 1;
    c.arbitration = arbitration;
    // The register-port arbitration stage deepens the pipeline (Sec. 3).
    c.frontendDepth = arbitration ? 6 : 5;
    return m;
}

MachineConfig
idealMspConfig(PredictorKind predictor)
{
    MachineConfig m;
    m.name = "ideal MSP";
    m.predictor = predictor;
    CoreParams &c = m.core;
    c.kind = CoreKind::Msp;
    c.iqSize = 128;
    c.infiniteBanks = true;
    c.regsPerBank = 1u << 18;
    c.ldqSize = 48;
    c.sq1Size = 48;
    c.sq2Size = 256;
    c.infiniteSq = true;
    c.lcsLatency = 0;
    c.arbitration = false;
    c.frontendDepth = 5;
    return m;
}

MachineConfig
presetByName(const std::string &name, PredictorKind predictor)
{
    if (name == "default") {
        MachineConfig m;
        m.name = "default";
        m.predictor = predictor;
        return m;
    }
    if (name == "baseline")
        return baselineConfig(predictor);
    if (name == "cpr")
        return cprConfig(predictor);
    if (name == "ideal")
        return idealMspConfig(predictor);
    // <n>sp or <n>sp-noarb, e.g. "16sp", "64sp-noarb". The count is
    // parsed strictly: "+16sp" (atoi would accept the sign) and an
    // overflowing count (atoi UB) are malformed presets, not typos to
    // paper over.
    const std::size_t sp = name.find("sp");
    if (sp != std::string::npos && sp > 0) {
        const std::string suffix = name.substr(sp);
        if (suffix == "sp" || suffix == "sp-noarb") {
            const std::string count = name.substr(0, sp);
            std::uint64_t n = 0;
            const parse::Status st = parse::decimalU64(count, n);
            if (st != parse::Status::Ok || n == 0 || n > UINT_MAX) {
                throw SpecError(csprintf(
                    "bad subprocessor count '%s' in preset '%s' (%s)",
                    count.c_str(), name.c_str(),
                    st == parse::Status::Ok ? "out of range"
                                            : parse::statusReason(st)));
            }
            return nspConfig(static_cast<unsigned>(n), predictor,
                             suffix == "sp");
        }
    }
    throw SpecError(csprintf("unknown preset '%s' (want default, "
                             "baseline, cpr, ideal, <n>sp or "
                             "<n>sp-noarb)", name.c_str()));
}

std::string
presetNameFor(const MachineConfig &config)
{
    // Derive the candidate name from the identity fields, then prove
    // it by rebuilding the preset and comparing every registered
    // parameter — a name that rebuilds a different machine (tweaked
    // ablation config, injected test fault) would mislabel the spec.
    const auto [name, rebuilt] = nearestPreset(config);
    return sameSpec(rebuilt, config) ? name : "";
}

} // namespace msp
