#include "sim/grid.hh"

#include <cerrno>
#include <cstdlib>
#include <set>

#include "common/logging.hh"
#include "sim/presets.hh"

namespace msp {
namespace grid {

namespace {

/**
 * The machine-spec reader's strict scanner, extended with the slice
 * capture the grid grammar needs for its nested "base" object. (The
 * spec.cc scanner is file-local by design; the two grammars stay
 * independently strict.)
 */
struct Scanner
{
    const std::string &s;
    std::size_t p = 0;

    explicit Scanner(const std::string &text) : s(text) {}

    void
    ws()
    {
        while (p < s.size() && (s[p] == ' ' || s[p] == '\t' ||
                                s[p] == '\n' || s[p] == '\r')) {
            ++p;
        }
    }

    bool eof() { ws(); return p >= s.size(); }

    char
    peek()
    {
        ws();
        if (p >= s.size())
            throw SpecError("grid spec: unexpected end of input");
        return s[p];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            throw SpecError(csprintf("grid spec: expected '%c' at "
                                     "offset %zu", c, p));
        ++p;
    }

    /** Parse a quoted string, decoding standard JSON escapes. */
    std::string
    str()
    {
        expect('"');
        std::string out;
        while (p < s.size() && s[p] != '"') {
            char c = s[p++];
            if (c != '\\') {
                out += c;
                continue;
            }
            if (p >= s.size())
                break;   // reported as unterminated below
            const char esc = s[p++];
            switch (esc) {
              case '"': case '\\': case '/': out += esc; break;
              case 'n': out += '\n'; break;
              case 't': out += '\t'; break;
              case 'r': out += '\r'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              default:
                throw SpecError(csprintf("grid spec: unknown escape "
                                         "\\%c", esc));
            }
        }
        if (p >= s.size())
            throw SpecError("grid spec: unterminated string");
        ++p;   // closing quote
        return out;
    }

    /** An unquoted token: number / true / false. */
    std::string
    rawToken()
    {
        ws();
        const std::size_t start = p;
        while (p < s.size() && s[p] != ',' && s[p] != '}' &&
               s[p] != ']' && s[p] != ' ' && s[p] != '\t' &&
               s[p] != '\n' && s[p] != '\r') {
            ++p;
        }
        if (p == start)
            throw SpecError(csprintf("grid spec: expected a value at "
                                     "offset %zu", start));
        return s.substr(start, p - start);
    }

    /** The balanced {...} starting here, cursor advanced past it. */
    std::string
    objectSlice()
    {
        ws();
        const std::size_t start = p;
        int depth = 0;
        bool inStr = false;
        while (p < s.size()) {
            const char c = s[p];
            if (inStr) {
                if (c == '\\' && p + 1 < s.size())
                    ++p;
                else if (c == '"')
                    inStr = false;
            } else if (c == '"') {
                inStr = true;
            } else if (c == '{' || c == '[') {
                ++depth;
            } else if (c == '}' || c == ']') {
                if (--depth == 0) {
                    ++p;
                    return s.substr(start, p - start);
                }
            }
            ++p;
        }
        throw SpecError("grid spec: unterminated base object");
    }
};

/** One axis element, quoted values kept distinct from raw tokens. */
struct RawValue
{
    std::string text;
    bool quoted = false;
};

struct AxisKey
{
    std::string key;
    std::vector<RawValue> values;
};

struct Axis
{
    bool zip = false;
    std::vector<AxisKey> keys;
};

struct Doc
{
    std::string name;
    std::string labelFormat;
    bool haveLabelFormat = false;
    std::string basePreset;
    bool haveBasePreset = false;
    std::string baseObject;   ///< verbatim slice, fed to specFromJson
    PredictorKind predictor = PredictorKind::Gshare;
    bool havePredictor = false;
    std::vector<Axis> axes;
};

[[noreturn]] void
failAxis(std::size_t axis, const std::string &what)
{
    throw SpecError(csprintf("grid axis %zu: %s", axis + 1,
                             what.c_str()));
}

[[noreturn]] void
failKey(std::size_t axis, const std::string &key, const std::string &what)
{
    throw SpecError(csprintf("grid axis %zu, key '%s': %s", axis + 1,
                             key.c_str(), what.c_str()));
}

[[noreturn]] void
failElem(std::size_t axis, const std::string &key, std::size_t elem,
         const std::string &what)
{
    throw SpecError(csprintf("grid axis %zu, key '%s', element %zu: %s",
                             axis + 1, key.c_str(), elem,
                             what.c_str()));
}

bool
reservedWorkloadKey(const std::string &key)
{
    return key == "workload.name" || key == "workload.trace" ||
           key == "workload.seed";
}

std::uint64_t
parseSeed(const std::string &text, std::size_t axis, std::size_t elem)
{
    errno = 0;
    char *end = nullptr;
    const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
    if (errno == ERANGE || end != text.c_str() + text.size() ||
        text.empty() || text[0] == '-') {
        failElem(axis, "workload.seed", elem,
                 "expected an unsigned integer, got '" + text + "'");
    }
    return v;
}

Axis
parseAxis(Scanner &sc, std::size_t axisIdx)
{
    Axis axis;
    bool haveKeys = false;
    sc.expect('{');
    if (sc.peek() == '}') {
        ++sc.p;
        failAxis(axisIdx, "empty axis (no keys)");
    }
    for (;;) {
        const std::string key = sc.str();
        sc.expect(':');
        if (key == "mode") {
            const std::string mode = sc.str();
            if (mode == "zip")
                axis.zip = true;
            else if (mode != "product")
                failAxis(axisIdx, "unknown mode '" + mode +
                                  "' (want \"product\" or \"zip\")");
        } else if (key == "keys") {
            haveKeys = true;
            sc.expect('{');
            if (sc.peek() == '}') {
                ++sc.p;
            } else {
                for (;;) {
                    AxisKey ak;
                    ak.key = sc.str();
                    sc.expect(':');
                    sc.expect('[');
                    if (sc.peek() == ']') {
                        ++sc.p;
                    } else {
                        for (;;) {
                            RawValue v;
                            const char c = sc.peek();
                            if (c == '"') {
                                v.text = sc.str();
                                v.quoted = true;
                            } else if (c == '{' || c == '[') {
                                failKey(axisIdx, ak.key,
                                        "elements must be scalars");
                            } else {
                                v.text = sc.rawToken();
                            }
                            ak.values.push_back(std::move(v));
                            if (sc.peek() == ',') {
                                ++sc.p;
                                continue;
                            }
                            sc.expect(']');
                            break;
                        }
                    }
                    axis.keys.push_back(std::move(ak));
                    if (sc.peek() == ',') {
                        ++sc.p;
                        continue;
                    }
                    sc.expect('}');
                    break;
                }
            }
        } else {
            failAxis(axisIdx, "unknown axis key '" + key +
                              "' (want \"mode\" or \"keys\")");
        }
        if (sc.peek() == ',') {
            ++sc.p;
            continue;
        }
        sc.expect('}');
        break;
    }
    if (!haveKeys || axis.keys.empty())
        failAxis(axisIdx, "empty axis (no keys)");
    return axis;
}

Doc
parseDoc(const std::string &json)
{
    Doc doc;
    Scanner sc(json);
    std::set<std::string> seenTop;
    sc.expect('{');
    if (sc.peek() == '}') {
        ++sc.p;
    } else {
        for (;;) {
            const std::string key = sc.str();
            sc.expect(':');
            if (!seenTop.insert(key).second)
                throw SpecError("grid spec: duplicate top-level key '" +
                                key + "'");
            if (key == "name") {
                doc.name = sc.str();
            } else if (key == "predictor") {
                const std::string p = sc.str();
                if (p == "gshare")
                    doc.predictor = PredictorKind::Gshare;
                else if (p == "tage")
                    doc.predictor = PredictorKind::Tage;
                else
                    throw SpecError("grid spec: unknown predictor '" +
                                    p + "' (want gshare or tage)");
                doc.havePredictor = true;
            } else if (key == "base") {
                if (sc.peek() == '{') {
                    doc.baseObject = sc.objectSlice();
                } else {
                    doc.basePreset = sc.str();
                    doc.haveBasePreset = true;
                }
            } else if (key == "label_format") {
                doc.labelFormat = sc.str();
                doc.haveLabelFormat = true;
            } else if (key == "axes") {
                sc.expect('[');
                if (sc.peek() == ']') {
                    ++sc.p;
                } else {
                    for (;;) {
                        doc.axes.push_back(
                            parseAxis(sc, doc.axes.size()));
                        if (sc.peek() == ',') {
                            ++sc.p;
                            continue;
                        }
                        sc.expect(']');
                        break;
                    }
                }
            } else {
                throw SpecError("grid spec: unknown top-level key '" +
                                key + "'");
            }
            if (sc.peek() == ',') {
                ++sc.p;
                continue;
            }
            sc.expect('}');
            break;
        }
    }
    // A truncated or concatenated document must not half-load.
    if (!sc.eof())
        throw SpecError(csprintf("grid spec: trailing content at "
                                 "offset %zu", sc.p));
    return doc;
}

/**
 * Validate every element of every axis against the spec registry (or
 * the reserved-key rules) before any expansion happens: a bad element
 * fails the whole document up front, naming axis/key/element.
 */
void
validateDoc(const Doc &doc, const MachineConfig &scratchBase)
{
    std::set<std::string> seenKeys;
    bool haveName = false, haveTrace = false;
    for (std::size_t a = 0; a < doc.axes.size(); ++a) {
        const Axis &axis = doc.axes[a];
        std::size_t zipLen = 0;
        for (std::size_t k = 0; k < axis.keys.size(); ++k) {
            const AxisKey &ak = axis.keys[k];
            // "label" fragments may come from several axes; every
            // other key must expand from exactly one place.
            if (ak.key != "label" && !seenKeys.insert(ak.key).second) {
                throw SpecError(csprintf("grid: key '%s' appears in "
                                         "more than one axis",
                                         ak.key.c_str()));
            }
            if (ak.values.empty())
                failKey(a, ak.key, "empty value list");
            if (axis.zip) {
                if (k == 0) {
                    zipLen = ak.values.size();
                } else if (ak.values.size() != zipLen) {
                    failAxis(a, csprintf(
                        "zip keys have unequal lengths ('%s' has %zu, "
                        "'%s' has %zu)", axis.keys[0].key.c_str(),
                        zipLen, ak.key.c_str(), ak.values.size()));
                }
            }
            if (ak.key == "workload.name")
                haveName = true;
            if (ak.key == "workload.trace")
                haveTrace = true;

            for (std::size_t e = 0; e < ak.values.size(); ++e) {
                const RawValue &v = ak.values[e];
                if (ak.key == "base") {
                    if (!v.quoted)
                        failElem(a, ak.key, e,
                                 "expected a preset name string");
                    try {
                        presetByName(v.text, doc.predictor);
                    } catch (const SpecError &err) {
                        failElem(a, ak.key, e, err.what());
                    }
                    continue;
                }
                if (ak.key == "label" || ak.key == "workload.name" ||
                    ak.key == "workload.trace") {
                    if (!v.quoted)
                        failElem(a, ak.key, e, "expected a string");
                    if (ak.key != "label" && v.text.empty())
                        failElem(a, ak.key, e, "empty name");
                    continue;
                }
                if (ak.key == "workload.seed") {
                    if (v.quoted)
                        failElem(a, ak.key, e,
                                 "expected an unsigned integer, got a "
                                 "string");
                    parseSeed(v.text, a, e);
                    continue;
                }
                const ParamSpec *p = findParam(ak.key);
                if (!p)
                    failKey(a, ak.key, "unknown machine parameter");
                if (p->type == ParamValue::Type::Str) {
                    if (!v.quoted)
                        failElem(a, ak.key, e, "expected a string");
                } else if (v.quoted) {
                    failElem(a, ak.key, e, "expected a number or "
                                           "boolean, got a string");
                }
                try {
                    MachineConfig scratch = scratchBase;
                    setParamFromString(scratch, ak.key, v.text);
                } catch (const SpecError &err) {
                    failElem(a, ak.key, e, err.what());
                }
            }
        }
    }
    if (haveName && haveTrace) {
        throw SpecError("grid: both workload.name and workload.trace "
                        "are set; a point binds one workload");
    }
}

/** Elements-per-point contributed by one axis. */
std::size_t
axisCount(const Axis &axis)
{
    if (axis.zip)
        return axis.keys[0].values.size();
    std::size_t n = 1;
    for (const AxisKey &ak : axis.keys)
        n *= ak.values.size();
    return n;
}

/** Element index of key @p k within @p axis at axis position @p idx. */
std::size_t
elemIndex(const Axis &axis, std::size_t k, std::size_t idx)
{
    if (axis.zip)
        return idx;
    // First key slowest: divide out the sizes of all later keys.
    std::size_t stride = 1;
    for (std::size_t j = axis.keys.size(); j-- > k + 1;)
        stride *= axis.keys[j].values.size();
    return (idx / stride) % axis.keys[k].values.size();
}

std::string
formatLabel(const std::string &fmt, const MachineConfig &m,
            const GridPoint &pt)
{
    std::string out;
    for (std::size_t i = 0; i < fmt.size();) {
        if (fmt[i] != '{') {
            out += fmt[i++];
            continue;
        }
        const std::size_t close = fmt.find('}', i);
        if (close == std::string::npos)
            throw SpecError("grid label_format: unterminated '{'");
        const std::string key = fmt.substr(i + 1, close - i - 1);
        if (key == "workload.name") {
            out += pt.workload;
        } else if (key == "workload.seed") {
            out += std::to_string(pt.seed);
        } else {
            // getParam throws SpecError naming the key when unknown.
            out += paramValueStr(getParam(m, key));
        }
        i = close + 1;
    }
    return out;
}

} // anonymous namespace

Grid
expand(const std::string &json, PredictorKind defaultPredictor)
{
    Doc doc = parseDoc(json);
    // A document that names no predictor inherits the caller's (the
    // CLI threads --predictor through here).
    if (!doc.havePredictor)
        doc.predictor = defaultPredictor;
    if (doc.basePreset.empty() && doc.baseObject.empty() &&
        doc.haveBasePreset) {
        throw SpecError("grid spec: empty base preset name");
    }

    // The document's starting machine: a preset, an inline flat spec
    // object (the --machine file grammar), or the registry defaults.
    MachineConfig docBase;
    bool namedDocBase = false;
    if (!doc.baseObject.empty()) {
        docBase = specFromJson(doc.baseObject, doc.predictor);
        namedDocBase = true;
    } else if (doc.haveBasePreset) {
        docBase = presetByName(doc.basePreset, doc.predictor);
        namedDocBase = true;
    } else {
        docBase.predictor = doc.predictor;
    }

    validateDoc(doc, docBase);

    std::size_t total = 1;
    for (const Axis &axis : doc.axes)
        total *= axisCount(axis);

    Grid grid;
    grid.name = doc.name;
    grid.points.reserve(total);
    for (std::size_t pi = 0; pi < total; ++pi) {
        // Axis positions for this point, first axis slowest.
        std::vector<std::size_t> pos(doc.axes.size());
        {
            std::size_t rest = pi;
            for (std::size_t a = doc.axes.size(); a-- > 0;) {
                const std::size_t n = axisCount(doc.axes[a]);
                pos[a] = rest % n;
                rest /= n;
            }
        }

        // "base" resolves first regardless of which axis carries it,
        // so parameter keys from any axis override the preset — the
        // same rule the flat spec reader applies.
        GridPoint pt;
        MachineConfig m = docBase;
        bool namedStart = namedDocBase;
        for (std::size_t a = 0; a < doc.axes.size(); ++a) {
            for (std::size_t k = 0; k < doc.axes[a].keys.size(); ++k) {
                const AxisKey &ak = doc.axes[a].keys[k];
                if (ak.key != "base")
                    continue;
                const std::size_t e = elemIndex(doc.axes[a], k, pos[a]);
                m = presetByName(ak.values[e].text, doc.predictor);
                namedStart = true;
            }
        }
        const MachineConfig start = m;

        std::string labelParts;
        for (std::size_t a = 0; a < doc.axes.size(); ++a) {
            for (std::size_t k = 0; k < doc.axes[a].keys.size(); ++k) {
                const AxisKey &ak = doc.axes[a].keys[k];
                if (ak.key == "base")
                    continue;
                const std::size_t e = elemIndex(doc.axes[a], k, pos[a]);
                const std::string &text = ak.values[e].text;
                if (ak.key == "label") {
                    if (!labelParts.empty())
                        labelParts += ' ';
                    labelParts += text;
                } else if (ak.key == "workload.name") {
                    pt.workload = text;
                } else if (ak.key == "workload.trace") {
                    pt.workload = "trace:" + text;
                } else if (ak.key == "workload.seed") {
                    pt.seed = parseSeed(text, a, e);
                    pt.hasSeed = true;
                } else {
                    try {
                        setParamFromString(m, ak.key, text);
                    } catch (const SpecError &err) {
                        failElem(a, ak.key, e, err.what());
                    }
                }
            }
        }

        if (doc.haveLabelFormat)
            pt.label = formatLabel(doc.labelFormat, m, pt);
        else if (!labelParts.empty())
            pt.label = labelParts;
        else if (namedStart && sameSpec(m, start))
            pt.label = start.name;
        else
            pt.label = describeSpec(m);
        m.name = pt.label;
        pt.machine = std::move(m);
        grid.points.push_back(std::move(pt));
    }
    return grid;
}

} // namespace grid
} // namespace msp
