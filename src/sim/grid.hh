/**
 * @file
 * Grid specs: whole ablation studies as data.
 *
 * A grid document is a JSON object that maps dotted MachineSpec keys
 * to *lists* of values, organised into named axes that expand either
 * as a cross-product or zipped in lockstep:
 *
 *   {"name": "ablation-checkpoints",
 *    "base": "cpr",
 *    "label_format": "CPR/{cpr.checkpoints} ckpts",
 *    "axes": [
 *      {"keys": {"workload.name": ["gzip", "gcc", "bzip2"]}},
 *      {"mode": "product", "keys": {"cpr.checkpoints": [2, 4, 8, 16, 32]}}
 *    ]}
 *
 * Axes always cross with each other, first axis slowest. Within one
 * axis, "product" (the default) crosses its keys (first key slowest)
 * while "zip" advances all keys in lockstep and demands equal list
 * lengths. Every value is validated key-by-key through the spec
 * registry at parse time; a bad element throws SpecError naming the
 * axis, the key and the element index, so a 300-point study never
 * fails 40 minutes in.
 *
 * Reserved keys, usable inside axes like any parameter:
 *   "base"           preset name — the point starts from this preset
 *                    (resolved first, like specFromJson's "base");
 *   "label"          a label fragment; fragments from all axes join
 *                    with spaces to form the point label;
 *   "workload.name"  registry workload for the point;
 *   "workload.trace" trace file — shorthand for "trace:FILE";
 *   "workload.seed"  generator seed for the point.
 * Top level also accepts "base" (preset name or a flat spec object),
 * "predictor" (default predictor for preset resolution), "name" and
 * "label_format" ("{key}" substitutes the point's value of key).
 *
 * When no label is given, a point that is exactly its base preset is
 * labelled with the preset display name; anything else falls back to
 * describeSpec(). Expansion is deterministic: same document, same
 * ordered point list, so sharded campaign runs merge byte-identically.
 */

#ifndef MSPLIB_SIM_GRID_HH
#define MSPLIB_SIM_GRID_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/spec.hh"

namespace msp {
namespace grid {

/** One expanded grid point: a labelled machine plus workload binding. */
struct GridPoint
{
    std::string label;       ///< also written to machine.name
    MachineConfig machine;
    std::string workload;    ///< "" when the grid binds no workload
    bool hasSeed = false;
    std::uint64_t seed = 1;
};

/** An expanded grid document. */
struct Grid
{
    std::string name;               ///< document "name" ("" if absent)
    std::vector<GridPoint> points;  ///< deterministic expansion order
};

/**
 * Parse and expand a grid document.
 * @throws SpecError on malformed JSON, unknown keys, out-of-range
 *         elements (naming axis/key/element), zip axes of unequal
 *         length, empty axes and duplicate keys across axes.
 */
Grid expand(const std::string &json,
            PredictorKind defaultPredictor = PredictorKind::Gshare);

} // namespace grid
} // namespace msp

#endif // MSPLIB_SIM_GRID_HH
