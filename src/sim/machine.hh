/**
 * @file
 * Machine — a configured core plus its statistics, ready to run a
 * program. This is the primary entry point of the msplib public API.
 */

#ifndef MSPLIB_SIM_MACHINE_HH
#define MSPLIB_SIM_MACHINE_HH

#include <memory>
#include <string>

#include "bpred/branch_unit.hh"
#include "common/stats.hh"
#include "isa/program.hh"
#include "pipeline/core_base.hh"
#include "pipeline/params.hh"

namespace msp {

/** Everything needed to instantiate one simulated machine. */
struct MachineConfig
{
    std::string name;              ///< e.g. "16-SP+Arb", "CPR", "Baseline"
    CoreParams core;
    PredictorKind predictor = PredictorKind::Gshare;
};

/** A runnable simulated machine. */
class Machine
{
  public:
    /**
     * @param config  Machine configuration (see presets.hh).
     * @param program The program image to execute.
     */
    Machine(const MachineConfig &config, const Program &program);
    ~Machine();

    Machine(const Machine &) = delete;
    Machine &operator=(const Machine &) = delete;

    /**
     * Run the program.
     *
     * @param maxInsts  Stop after this many committed instructions.
     * @param maxCycles Hard cycle cap (default: effectively unlimited).
     * @return Per-run statistics (IPC, instruction breakdown, stalls).
     */
    RunResult run(std::uint64_t maxInsts,
                  std::uint64_t maxCycles = ~std::uint64_t{0});

    /** The underlying core (for white-box tests). */
    CoreBase &core() { return *coreImpl; }

    /** Raw statistic counters. */
    StatGroup &stats() { return statGroup; }

    const MachineConfig &config() const { return cfg; }

  private:
    MachineConfig cfg;
    StatGroup statGroup;
    Program prog;   ///< owned copy: the machine outlives caller scopes
    std::unique_ptr<CoreBase> coreImpl;
};

} // namespace msp

#endif // MSPLIB_SIM_MACHINE_HH
