/**
 * @file
 * Table I machine configurations: Baseline, CPR, n-SP and ideal MSP.
 */

#ifndef MSPLIB_SIM_PRESETS_HH
#define MSPLIB_SIM_PRESETS_HH

#include "sim/machine.hh"

namespace msp {

/** The Table I baseline: ROB 128, IQ 48, 96+96 registers. */
MachineConfig baselineConfig(PredictorKind predictor);

/**
 * The Table I CPR machine: no ROB, 8 checkpoints, 192+192 registers,
 * hierarchical store queue, fully-ported register file (no arbitration).
 *
 * @param physRegs Registers per file (192 in Table I; Sec. 4.3 also
 *        evaluates 256 and 512).
 */
MachineConfig cprConfig(PredictorKind predictor, unsigned physRegs = 192,
                        unsigned checkpoints = 8);

/**
 * The n-SP Multi-State Processor: n physical registers per logical
 * register, 1R/1W banked register file with an arbitration pipeline
 * stage, 1-cycle LCS propagation.
 */
MachineConfig nspConfig(unsigned n, PredictorKind predictor,
                        bool arbitration = true);

/** Ideal MSP: infinite banks and store queue, 0-cycle LCS, full ports. */
MachineConfig idealMspConfig(PredictorKind predictor);

/** Predictor name for table headers ("gshare" / "TAGE"). */
const char *predictorName(PredictorKind predictor);

/**
 * The CLI preset name ("baseline", "cpr", "ideal", "<n>sp",
 * "<n>sp-noarb") that rebuilds @p config, or "" when the configuration
 * is not CLI-reachable (divergence repros record this so a report can
 * be replayed with `msp_sim verify --repro`).
 */
std::string presetNameFor(const MachineConfig &config);

} // namespace msp

#endif // MSPLIB_SIM_PRESETS_HH
