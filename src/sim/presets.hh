/**
 * @file
 * Table I machine configurations: Baseline, CPR, n-SP and ideal MSP.
 */

#ifndef MSPLIB_SIM_PRESETS_HH
#define MSPLIB_SIM_PRESETS_HH

#include "sim/machine.hh"

namespace msp {

/** The Table I baseline: ROB 128, IQ 48, 96+96 registers. */
MachineConfig baselineConfig(PredictorKind predictor);

/**
 * The Table I CPR machine: no ROB, 8 checkpoints, 192+192 registers,
 * hierarchical store queue, fully-ported register file (no arbitration).
 *
 * @param physRegs Registers per file (192 in Table I; Sec. 4.3 also
 *        evaluates 256 and 512).
 */
MachineConfig cprConfig(PredictorKind predictor, unsigned physRegs = 192,
                        unsigned checkpoints = 8);

/**
 * The n-SP Multi-State Processor: n physical registers per logical
 * register, 1R/1W banked register file with an arbitration pipeline
 * stage, 1-cycle LCS propagation.
 */
MachineConfig nspConfig(unsigned n, PredictorKind predictor,
                        bool arbitration = true);

/** Ideal MSP: infinite banks and store queue, 0-cycle LCS, full ports. */
MachineConfig idealMspConfig(PredictorKind predictor);

/** Predictor name for table headers ("gshare" / "TAGE"). */
const char *predictorName(PredictorKind predictor);

/**
 * Resolve a preset name to its MachineSpec: "default" (the registry
 * defaults), "baseline", "cpr", "ideal", "<n>sp" or "<n>sp-noarb".
 * This is the named-MachineSpec entry point the CLI, `--machine` files
 * ("base" key) and spec diffs all resolve through.
 *
 * @throws SpecError (sim/spec.hh) on anything else.
 */
MachineConfig presetByName(const std::string &name,
                           PredictorKind predictor);

/**
 * The preset name that rebuilds @p config exactly (proven by a
 * registry-wide sameSpec compare against the rebuilt preset), or ""
 * when the configuration matches no preset. Purely cosmetic since the
 * MachineSpec API: reproducers serialise the complete spec and replay
 * any machine — this only supplies the short display label.
 */
std::string presetNameFor(const MachineConfig &config);

} // namespace msp

#endif // MSPLIB_SIM_PRESETS_HH
