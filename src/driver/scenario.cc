#include "driver/scenario.hh"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdio>

#include "common/logging.hh"
#include "common/table.hh"
#include "sim/grid.hh"
#include "sim/presets.hh"
#include "workload/spec.hh"

namespace msp {
namespace driver {

std::vector<MachineConfig>
figureLadder(PredictorKind p)
{
    return {
        baselineConfig(p),  cprConfig(p),
        nspConfig(8, p),    nspConfig(16, p), nspConfig(32, p),
        nspConfig(64, p),   nspConfig(128, p),
        idealMspConfig(p),
    };
}

std::uint64_t
top3BankStalls(const RunResult &r)
{
    std::vector<std::uint64_t> v(r.bankStallCycles.begin(),
                                 r.bankStallCycles.end());
    std::sort(v.begin(), v.end(), std::greater<>());
    return v[0] + v[1] + v[2];
}

double
mean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double s = 0.0;
    for (double x : xs)
        s += x;
    return s / xs.size();
}

namespace {

/**
 * View of a workload-major result matrix (the addMatrix ordering):
 * row = workload, column = config. Row/column labels come from the
 * job table, so custom-program jobs label by job.workload.
 */
struct Grid
{
    std::vector<std::string> workloads;
    std::vector<std::string> configs;
    const std::vector<JobResult> *results = nullptr;

    const RunResult &
    at(std::size_t wi, std::size_t ci) const
    {
        return (*results)[wi * configs.size() + ci].result;
    }

    /** IPC of column @p ci across all rows. */
    std::vector<double>
    ipcColumn(std::size_t ci) const
    {
        std::vector<double> col;
        for (std::size_t wi = 0; wi < workloads.size(); ++wi)
            col.push_back(at(wi, ci).ipc());
        return col;
    }
};

Grid
makeGrid(const std::vector<JobResult> &results)
{
    Grid g;
    g.results = &results;
    // Column labels: configs of the first row (same list every row).
    std::size_t i = 0;
    while (i < results.size() &&
           results[i].job.workload == results[0].job.workload) {
        g.configs.push_back(results[i].job.config.name);
        ++i;
    }
    for (std::size_t wi = 0; wi < results.size(); wi += g.configs.size())
        g.workloads.push_back(results[wi].job.workload);
    msp_assert(g.workloads.size() * g.configs.size() == results.size(),
               "result list is not a full workload-major matrix");
    return g;
}

// ---- Figs. 6-8: the IPC figure ----------------------------------------

void
reportIpcFigure(const std::string &caption,
                const std::vector<JobResult> &results)
{
    const Grid g = makeGrid(results);

    Table t(caption);
    std::vector<std::string> head = {"benchmark"};
    head.insert(head.end(), g.configs.begin(), g.configs.end());
    t.header(head);

    for (std::size_t wi = 0; wi < g.workloads.size(); ++wi) {
        std::vector<std::string> row = {g.workloads[wi]};
        for (std::size_t ci = 0; ci < g.configs.size(); ++ci)
            row.push_back(Table::num(g.at(wi, ci).ipc(), 3));
        t.row(row);
    }
    std::vector<std::string> avg = {"Average"};
    for (std::size_t ci = 0; ci < g.configs.size(); ++ci)
        avg.push_back(Table::num(mean(g.ipcColumn(ci)), 3));
    t.row(avg);
    std::fputs(t.str().c_str(), stdout);

    // The per-benchmark 16-SP stall series plotted in the figures.
    const auto it16 = std::find_if(
        g.configs.begin(), g.configs.end(), [](const std::string &n) {
            return n.rfind("16-SP", 0) == 0;
        });
    if (it16 != g.configs.end()) {
        const std::size_t ci = it16 - g.configs.begin();
        Table st("16-SP register-stall cycles (top-3 banks summed)");
        st.header({"benchmark", "stall cycles"});
        for (std::size_t wi = 0; wi < g.workloads.size(); ++wi)
            st.row({g.workloads[wi],
                    std::to_string(top3BankStalls(g.at(wi, ci)))});
        std::fputs(st.str().c_str(), stdout);
    }

    // Headline ratios quoted in the paper's text.
    const double cprAvg = mean(g.ipcColumn(1));
    const double sp8 = mean(g.ipcColumn(2));
    const double sp16 = mean(g.ipcColumn(3));
    const double sp128 = mean(g.ipcColumn(6));
    const double ideal = mean(g.ipcColumn(7));
    std::printf("\n8-SP vs CPR:    %+.1f%%\n", 100.0 * (sp8 / cprAvg - 1));
    std::printf("16-SP vs CPR:   %+.1f%%\n", 100.0 * (sp16 / cprAvg - 1));
    std::printf("128-SP / ideal: %.3f\n", sp128 / ideal);
}

/** ["a", "b", ...] for embedding a workload list in a grid doc. */
std::string
quotedList(const std::vector<std::string> &names)
{
    std::string out = "[";
    for (std::size_t i = 0; i < names.size(); ++i)
        out += std::string(i ? ", " : "") + "\"" + names[i] + "\"";
    return out + "]";
}

/** The generic expander: every scenario's build() is its grid doc. */
std::function<std::vector<CampaignJob>(std::uint64_t)>
gridBuild(const std::string &name, const std::string &doc)
{
    return [name, doc](std::uint64_t maxInsts) {
        return gridJobs(name, grid::expand(doc), maxInsts);
    };
}

Scenario
ipcFigureScenario(const std::string &name, const std::string &title,
                  const std::string &caption,
                  std::vector<std::string> (*benchNames)(),
                  const char *predictor)
{
    Scenario s;
    s.name = name;
    s.title = title;
    s.gridJson = csprintf(
        "{\"name\": \"%s\",\n"
        " \"predictor\": \"%s\",\n"
        " \"axes\": [\n"
        "  {\"keys\": {\"workload.name\": %s}},\n"
        "  {\"keys\": {\"base\": [\"baseline\", \"cpr\", \"8sp\", "
        "\"16sp\", \"32sp\", \"64sp\", \"128sp\", \"ideal\"]}}\n"
        " ]}\n",
        name.c_str(), predictor, quotedList(benchNames()).c_str());
    s.build = gridBuild(name, s.gridJson);
    s.report = [caption](const std::vector<JobResult> &results) {
        reportIpcFigure(caption, results);
    };
    return s;
}

std::vector<std::string>
intBenches()
{
    return spec::intBenchmarks();
}

std::vector<std::string>
fpBenches()
{
    return spec::fpBenchmarks();
}

// ---- Fig. 9: executed-instruction breakdown ---------------------------

Scenario
fig9Scenario()
{
    Scenario s;
    s.name = "fig9";
    s.title = "Reproduction of Fig. 9 (executed-instruction breakdown)";
    s.gridJson = csprintf(
        "{\"name\": \"fig9\",\n"
        " \"axes\": [\n"
        "  {\"keys\": {\"workload.name\": %s}},\n"
        "  {\"mode\": \"zip\",\n"
        "   \"keys\": {\"base\": [\"cpr\", \"cpr\", \"16sp\", \"16sp\"],\n"
        "            \"predictor\": [\"gshare\", \"tage\", \"gshare\", "
        "\"tage\"],\n"
        "            \"label\": [\"CPR gshare\", \"CPR TAGE\", "
        "\"16-SP gshare\", \"16-SP TAGE\"]}}\n"
        " ]}\n",
        quotedList(spec::intBenchmarks()).c_str());
    s.build = gridBuild(s.name, s.gridJson);
    s.report = [](const std::vector<JobResult> &results) {
        const Grid g = makeGrid(results);

        Table t("Fig. 9: executed instructions per config "
                "(normalised to committed = 1.0)");
        t.header({"benchmark", "config", "correct", "re-executed",
                  "wrong-path", "total"});

        std::array<double, 4> totals{};
        std::array<double, 4> reexecs{};
        for (std::size_t wi = 0; wi < g.workloads.size(); ++wi) {
            for (std::size_t ci = 0; ci < g.configs.size(); ++ci) {
                const RunResult &r = g.at(wi, ci);
                const double c = static_cast<double>(r.committed);
                t.row({g.workloads[wi], g.configs[ci], "1.000",
                       Table::num(r.reExecuted / c, 3),
                       Table::num(r.wrongPathExec / c, 3),
                       Table::num(r.totalExecuted / c, 3)});
                totals[ci] += r.totalExecuted / c;
                reexecs[ci] += r.reExecuted / c;
            }
        }
        std::fputs(t.str().c_str(), stdout);

        const double n = static_cast<double>(g.workloads.size());
        std::printf("\nAverage executed (x committed):\n");
        for (std::size_t ci = 0; ci < 4; ++ci) {
            std::printf("  %-13s total %.3f  (re-executed %.3f)\n",
                        g.configs[ci].c_str(), totals[ci] / n,
                        reexecs[ci] / n);
        }
        std::printf("\n16-SP vs CPR executed instructions:\n");
        std::printf("  gshare: %+.1f%% (paper: -16.5%%)\n",
                    100.0 * (totals[2] / totals[0] - 1.0));
        std::printf("  TAGE:   %+.1f%% (paper: -12%%)\n",
                    100.0 * (totals[3] / totals[1] - 1.0));
    };
    return s;
}

// ---- Ablation: CPR checkpoint count -----------------------------------

Scenario
ablationCheckpointsScenario()
{
    Scenario s;
    s.name = "ablation-checkpoints";
    s.title = "Ablation: CPR checkpoint-count sweep (gshare)";
    s.gridJson =
        "{\"name\": \"ablation-checkpoints\",\n"
        " \"predictor\": \"gshare\",\n"
        " \"base\": \"cpr\",\n"
        " \"label_format\": \"CPR/{cpr.checkpoints} ckpts\",\n"
        " \"axes\": [\n"
        "  {\"keys\": {\"workload.name\": [\"gzip\", \"gcc\", \"bzip2\", "
        "\"twolf\", \"parser\"]}},\n"
        "  {\"keys\": {\"cpr.checkpoints\": [2, 4, 8, 16, 32]}}\n"
        " ]}\n";
    s.build = gridBuild(s.name, s.gridJson);
    s.report = [](const std::vector<JobResult> &results) {
        const Grid g = makeGrid(results);
        Table t("CPR IPC (and re-executed fraction) vs checkpoints");
        std::vector<std::string> head = {"benchmark"};
        head.insert(head.end(), g.configs.begin(), g.configs.end());
        t.header(head);
        for (std::size_t wi = 0; wi < g.workloads.size(); ++wi) {
            std::vector<std::string> row = {g.workloads[wi]};
            for (std::size_t ci = 0; ci < g.configs.size(); ++ci) {
                const RunResult &r = g.at(wi, ci);
                row.push_back(
                    Table::num(r.ipc(), 3) + " (" +
                    Table::num(double(r.reExecuted) / r.committed, 2) +
                    ")");
            }
            t.row(row);
        }
        std::fputs(t.str().c_str(), stdout);
        std::puts("\nExpected: IPC saturates well before 32 checkpoints; "
                  "the re-executed\nfraction (parenthesised) falls as "
                  "checkpoints densify.");
    };
    return s;
}

// ---- Ablation: CPR register-file size ---------------------------------

Scenario
ablationCprRegsScenario()
{
    Scenario s;
    s.name = "ablation-cpr-regs";
    s.title = "Ablation: CPR physical-register sweep (TAGE)";
    s.gridJson = csprintf(
        "{\"name\": \"ablation-cpr-regs\",\n"
        " \"predictor\": \"tage\",\n"
        " \"base\": \"cpr\",\n"
        " \"axes\": [\n"
        "  {\"keys\": {\"workload.name\": %s}},\n"
        "  {\"mode\": \"zip\",\n"
        "   \"keys\": {\"regs.int\": [192, 256, 512],\n"
        "            \"regs.fp\": [192, 256, 512],\n"
        "            \"label\": [\"CPR-192\", \"CPR-256\", "
        "\"CPR-512\"]}}\n"
        " ]}\n",
        quotedList(spec::intBenchmarks()).c_str());
    s.build = gridBuild(s.name, s.gridJson);
    s.report = [](const std::vector<JobResult> &results) {
        const Grid g = makeGrid(results);
        Table t("SPECint IPC vs CPR register-file size (TAGE)");
        t.header({"benchmark", "CPR-192", "CPR-256", "CPR-512"});
        std::vector<double> avg(3, 0.0);
        for (std::size_t wi = 0; wi < g.workloads.size(); ++wi) {
            std::vector<std::string> row = {g.workloads[wi]};
            for (std::size_t ci = 0; ci < 3; ++ci) {
                avg[ci] += g.at(wi, ci).ipc();
                row.push_back(Table::num(g.at(wi, ci).ipc(), 3));
            }
            t.row(row);
        }
        const double n = static_cast<double>(g.workloads.size());
        t.row({"Average", Table::num(avg[0] / n, 3),
               Table::num(avg[1] / n, 3), Table::num(avg[2] / n, 3)});
        std::fputs(t.str().c_str(), stdout);

        std::printf("\nCPR-256 vs CPR-192: %+.1f%% (paper: ~+1%%)\n",
                    100.0 * (avg[1] / avg[0] - 1.0));
        std::printf("CPR-512 vs CPR-192: %+.1f%% (paper: ~+1.3%%)\n",
                    100.0 * (avg[2] / avg[0] - 1.0));
    };
    return s;
}

// ---- Ablation: LCS propagation delay ----------------------------------

Scenario
ablationLcsScenario()
{
    Scenario s;
    s.name = "ablation-lcs";
    s.title = "Ablation: LCS latency sweep on 16-SP (gshare)";
    s.gridJson =
        "{\"name\": \"ablation-lcs\",\n"
        " \"predictor\": \"gshare\",\n"
        " \"base\": \"16sp\",\n"
        " \"label_format\": \"16-SP/{lcs.latency} cyc\",\n"
        " \"axes\": [\n"
        "  {\"keys\": {\"workload.name\": [\"gzip\", \"gcc\", "
        "\"crafty\", \"bzip2\", \"swim\"]}},\n"
        "  {\"keys\": {\"lcs.latency\": [0, 1, 2, 4, 8]}}\n"
        " ]}\n";
    s.build = gridBuild(s.name, s.gridJson);
    s.report = [](const std::vector<JobResult> &results) {
        const Grid g = makeGrid(results);
        Table t("IPC vs LCS propagation delay (16-SP+Arb)");
        std::vector<std::string> head = {"benchmark"};
        head.insert(head.end(), g.configs.begin(), g.configs.end());
        t.header(head);
        double degr = 0.0;
        for (std::size_t wi = 0; wi < g.workloads.size(); ++wi) {
            std::vector<std::string> row = {g.workloads[wi]};
            for (std::size_t ci = 0; ci < g.configs.size(); ++ci)
                row.push_back(Table::num(g.at(wi, ci).ipc(), 3));
            t.row(row);
            // Columns: lat 0, 1, 2, 4, 8 — degradation is 4 vs 1 cycle.
            degr += 1.0 - g.at(wi, 3).ipc() / g.at(wi, 1).ipc();
        }
        std::fputs(t.str().c_str(), stdout);
        std::printf("\n4-cycle vs 1-cycle LCS: %.2f%% average "
                    "degradation (paper: <1%%)\n",
                    100.0 * degr / g.workloads.size());
    };
    return s;
}

// ---- Ablation: same-register rename throughput ------------------------

Scenario
ablationRenameScenario()
{
    Scenario s;
    s.name = "ablation-rename";
    s.title = "Ablation: same-register renames/cycle on 16-SP (gshare)";
    // 16sp-noarb (full ports) isolates the renaming-logic question of
    // Sec. 3.3 from the banked-RF write port, which otherwise
    // serialises same-register writebacks. "tight-loop" is the
    // back-to-back independent same-register-write microbenchmark
    // (compiler temporaries): the case the dual-rename SCT port
    // exists for.
    s.gridJson =
        "{\"name\": \"ablation-rename\",\n"
        " \"predictor\": \"gshare\",\n"
        " \"base\": \"16sp-noarb\",\n"
        " \"label_format\": \"{rename.same_reg}/cycle\",\n"
        " \"axes\": [\n"
        "  {\"keys\": {\"workload.name\": [\"gzip\", \"bzip2\", "
        "\"twolf\", \"crafty\", \"swim\", \"mgrid\", "
        "\"tight-loop\"]}},\n"
        "  {\"keys\": {\"rename.same_reg\": [1, 2, 3, 4]}}\n"
        " ]}\n";
    s.build = gridBuild(s.name, s.gridJson);
    s.report = [](const std::vector<JobResult> &results) {
        const Grid g = makeGrid(results);
        Table t("IPC vs same-logical-register renames per cycle "
                "(16-SP+Arb)");
        std::vector<std::string> head = {"benchmark"};
        head.insert(head.end(), g.configs.begin(), g.configs.end());
        t.header(head);
        double loss1 = 0.0, gain3 = 0.0;
        for (std::size_t wi = 0; wi < g.workloads.size(); ++wi) {
            std::vector<std::string> row = {g.workloads[wi]};
            for (std::size_t ci = 0; ci < g.configs.size(); ++ci)
                row.push_back(Table::num(g.at(wi, ci).ipc(), 3));
            t.row(row);
            loss1 += 1.0 - g.at(wi, 0).ipc() / g.at(wi, 1).ipc();
            gain3 += g.at(wi, 2).ipc() / g.at(wi, 1).ipc() - 1.0;
        }
        std::fputs(t.str().c_str(), stdout);
        std::printf("\n1/cycle vs 2/cycle: %.1f%% loss (paper: ~5%%)\n",
                    100.0 * loss1 / g.workloads.size());
        std::printf("3/cycle vs 2/cycle: %+.2f%% (paper: ~0%%)\n",
                    100.0 * gain3 / g.workloads.size());
    };
    return s;
}

std::vector<Scenario>
makeScenarios()
{
    return {
        ipcFigureScenario("fig6",
                          "Reproduction of Fig. 6 (SPECint, gshare 64K)",
                          "Fig. 6: SPECint IPC, gshare", intBenches,
                          "gshare"),
        ipcFigureScenario("fig7",
                          "Reproduction of Fig. 7 (SPECint, TAGE)",
                          "Fig. 7: SPECint IPC, TAGE", intBenches,
                          "tage"),
        ipcFigureScenario("fig8",
                          "Reproduction of Fig. 8 (SPECfp, TAGE)",
                          "Fig. 8: SPECfp IPC, TAGE", fpBenches,
                          "tage"),
        fig9Scenario(),
        ablationCheckpointsScenario(),
        ablationCprRegsScenario(),
        ablationLcsScenario(),
        ablationRenameScenario(),
    };
}

} // namespace

const std::vector<Scenario> &
scenarios()
{
    static const std::vector<Scenario> all = makeScenarios();
    return all;
}

const Scenario *
findScenario(const std::string &name)
{
    for (const auto &s : scenarios())
        if (s.name == name)
            return &s;
    return nullptr;
}

std::vector<JobResult>
runScenario(const std::string &name, unsigned threads,
            std::uint64_t maxInsts, bool verbose)
{
    const Scenario *s = findScenario(name);
    if (!s)
        msp_fatal("unknown scenario '%s' (try msp_sim --list)",
                  name.c_str());
    const std::uint64_t budget = maxInsts ? maxInsts : defaultInstBudget();

    SimCampaign campaign(threads);
    for (auto &j : s->build(budget))
        campaign.add(std::move(j));

    if (verbose) {
        std::printf("%s. Budget: %llu insts/run. Jobs: %zu on %u "
                    "thread(s).\n\n",
                    s->title.c_str(),
                    static_cast<unsigned long long>(budget),
                    campaign.size(), campaign.effectiveThreads());
        std::fflush(stdout);
    }
    auto results =
        campaign.run(verbose ? SimCampaign::stderrProgress() : nullptr);
    s->report(results);
    return results;
}

} // namespace driver
} // namespace msp
