#include "driver/cli.hh"

#include <cerrno>
#include <climits>
#include <cmath>
#include <cstdlib>

#include "common/logging.hh"
#include "common/parse.hh"
#include "driver/report.hh"
#include "driver/scenario.hh"
#include "sim/presets.hh"
#include "sim/spec.hh"
#include "verify/fuzzer.hh"
#include "workload/registry.hh"

namespace msp {
namespace driver {

std::uint64_t
parseU64Flag(const std::string &flag, const std::string &value)
{
    // strtoull accepts leading whitespace, a sign, and trailing junk,
    // and wraps negatives into huge positives — all of which a flag
    // value must reject outright; parse::decimalU64 is the strict
    // digits-only core every checked reader shares.
    std::uint64_t v = 0;
    switch (parse::decimalU64(value, v)) {
      case parse::Status::Ok:
        return v;
      case parse::Status::Overflow:
        throw CliError(csprintf("%s: value '%s' overflows 64 bits",
                                flag.c_str(), value.c_str()));
      case parse::Status::Empty:
      case parse::Status::BadChar:
        break;
    }
    throw CliError(csprintf("%s: expected a non-negative integer, "
                            "got '%s'", flag.c_str(), value.c_str()));
}

unsigned
parseUnsignedFlag(const std::string &flag, const std::string &value)
{
    const std::uint64_t v = parseU64Flag(flag, value);
    if (v > UINT_MAX) {
        throw CliError(csprintf("%s: value '%s' is out of range",
                                flag.c_str(), value.c_str()));
    }
    return static_cast<unsigned>(v);
}

double
parseDoubleFlag(const std::string &flag, const std::string &value)
{
    if (value.empty() ||
        !((value[0] >= '0' && value[0] <= '9') || value[0] == '.')) {
        throw CliError(csprintf("%s: expected a non-negative number, "
                                "got '%s'", flag.c_str(), value.c_str()));
    }
    // strtod parses C99 hex floats ("0x8" == 8.0), which the decimal
    // contract — and the integer parsers — reject.
    if (value.find('x') != std::string::npos ||
        value.find('X') != std::string::npos) {
        throw CliError(csprintf("%s: expected a decimal number, got "
                                "'%s'", flag.c_str(), value.c_str()));
    }
    errno = 0;
    char *end = nullptr;
    const double v = std::strtod(value.c_str(), &end);
    if (end != value.c_str() + value.size()) {
        throw CliError(csprintf("%s: trailing garbage in '%s'",
                                flag.c_str(), value.c_str()));
    }
    if (errno == ERANGE || !std::isfinite(v)) {
        throw CliError(csprintf("%s: value '%s' is out of range",
                                flag.c_str(), value.c_str()));
    }
    return v;
}

std::vector<std::string>
splitCommas(const std::string &s)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= s.size()) {
        const std::size_t comma = s.find(',', start);
        const std::string item =
            s.substr(start, comma == std::string::npos ? std::string::npos
                                                       : comma - start);
        if (!item.empty())
            out.push_back(item);
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
    return out;
}

MachineConfig
configByName(const std::string &name, PredictorKind predictor)
{
    try {
        return presetByName(name, predictor);
    } catch (const SpecError &e) {
        throw CliError(e.what());
    }
}

void
applySpecSets(std::vector<MachineConfig> &machines,
              const std::vector<std::string> &sets)
{
    for (MachineConfig &m : machines) {
        const MachineConfig before = m;
        for (const std::string &kv : sets) {
            const std::size_t eq = kv.find('=');
            if (eq == std::string::npos || eq == 0) {
                throw CliError(csprintf("--set needs key=value, got "
                                        "'%s'", kv.c_str()));
            }
            try {
                setParamFromString(m, kv.substr(0, eq),
                                   kv.substr(eq + 1));
            } catch (const SpecError &e) {
                throw CliError(std::string("--set ") + e.what());
            }
        }
        // Overrides that changed the spec invalidate the preset label;
        // a no-op --set keeps the machine's pretty name.
        if (!sameSpec(before, m))
            m.name = describeSpec(m);
    }
}

std::vector<MachineConfig>
resolveMachines(const CliOptions &o)
{
    std::vector<MachineConfig> machines;
    for (const std::string &n : o.configNames)
        machines.push_back(configByName(n, o.predictor));
    if (!o.machinePath.empty()) {
        std::string doc;
        if (!tryReadFile(o.machinePath, doc)) {
            throw CliError(csprintf("cannot read machine spec %s",
                                    o.machinePath.c_str()));
        }
        try {
            // --predictor seeds partial spec files; a file that sets
            // its own "predictor" key keeps it (a spec is complete).
            machines.push_back(specFromJson(doc, o.predictor));
        } catch (const SpecError &e) {
            throw CliError(csprintf("%s: %s", o.machinePath.c_str(),
                                    e.what()));
        }
    }
    applySpecSets(machines, o.sets);
    return machines;
}

CliOptions
parseCliArgs(const std::vector<std::string> &args)
{
    CliOptions o;
    bool predictorSet = false;
    bool seedSet = false;
    bool seedsSet = false;
    bool threadsSet = false;
    bool checkpointEverySet = false;
    bool repsSet = false;
    bool gatePctSet = false;
    bool wavesSet = false;

    auto value = [&](std::size_t &i) -> const std::string & {
        if (i + 1 >= args.size())
            throw CliError(args[i] + " needs a value");
        return args[++i];
    };

    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string &a = args[i];
        if (a == "--help" || a == "-h") {
            o.help = true;
        } else if (a == "--list") {
            o.list = true;
        } else if (a == "--threads") {
            o.threads = parseUnsignedFlag(a, value(i));
            threadsSet = true;
        } else if (a == "--instrs") {
            o.instrs = parseU64Flag(a, value(i));
        } else if (a == "--seed") {
            o.seed = parseU64Flag(a, value(i));
            seedSet = true;
        } else if (a == "--seeds") {
            o.seeds = parseUnsignedFlag(a, value(i));
            seedsSet = true;
        } else if (a == "--json") {
            o.jsonPath = value(i);
        } else if (a == "--csv") {
            o.csvPath = value(i);
        } else if (a == "--quiet") {
            o.quiet = true;
        } else if (a == "--fail-fast") {
            o.failFast = true;
        } else if (a == "--snapshot-every") {
            o.snapshotEvery = parseU64Flag(a, value(i));
            if (o.snapshotEvery == 0)
                throw CliError("--snapshot-every needs a value > 0");
        } else if (a == "--budget-sec") {
            o.budgetSec = parseDoubleFlag(a, value(i));
            if (o.budgetSec <= 0.0)
                throw CliError("--budget-sec needs a value > 0");
        } else if (a == "--reps") {
            o.reps = parseUnsignedFlag(a, value(i));
            if (o.reps == 0)
                throw CliError("--reps needs a value > 0");
            repsSet = true;
        } else if (a == "--baseline") {
            o.baselinePath = value(i);
        } else if (a == "--gate-pct") {
            o.gatePct = parseDoubleFlag(a, value(i));
            if (o.gatePct <= 0.0 || o.gatePct >= 100.0)
                throw CliError("--gate-pct wants a percentage in (0, 100)");
            gatePctSet = true;
        } else if (a == "--repro") {
            o.reproPath = value(i);
        } else if (a == "--bisect-exact") {
            o.bisectExact = true;
        } else if (a == "--reduce") {
            o.reduce = true;
        } else if (a == "--coverage") {
            o.coverage = true;
        } else if (a == "--corpus") {
            o.corpusPath = value(i);
        } else if (a == "--waves") {
            o.waves = parseUnsignedFlag(a, value(i));
            if (o.waves == 0)
                throw CliError("--waves needs a value > 0");
            wavesSet = true;
        } else if (a == "--tune") {
            o.tune = true;
        } else if (a == "--checkpoint") {
            o.checkpointPath = value(i);
        } else if (a == "--checkpoint-every") {
            o.checkpointEvery = parseUnsignedFlag(a, value(i));
            if (o.checkpointEvery == 0)
                throw CliError("--checkpoint-every needs a value > 0");
            checkpointEverySet = true;
        } else if (a == "--resume") {
            o.resumePath = value(i);
        } else if (a == "--shard") {
            const std::string &v = value(i);
            const std::size_t slash = v.find('/');
            if (slash == std::string::npos) {
                throw CliError(csprintf("--shard wants i/N (e.g. 0/3), "
                                        "got '%s'", v.c_str()));
            }
            o.shardIndex = parseUnsignedFlag(a, v.substr(0, slash));
            o.shardCount = parseUnsignedFlag(a, v.substr(slash + 1));
            if (o.shardCount == 0 || o.shardIndex >= o.shardCount) {
                throw CliError(csprintf("--shard %s: the index must be "
                                        "< the shard count (0-based)",
                                        v.c_str()));
            }
        } else if (a == "--machine") {
            o.machinePath = value(i);
        } else if (a == "--grid") {
            o.gridPath = value(i);
        } else if (a == "--set") {
            o.sets.push_back(value(i));
        } else if (a == "--workloads") {
            o.workloads = splitCommas(value(i));
        } else if (a == "--configs") {
            o.configNames = splitCommas(value(i));
        } else if (a == "--mixes") {
            o.mixNames = splitCommas(value(i));
        } else if (a == "--predictor") {
            const std::string &p = value(i);
            if (p == "gshare")
                o.predictor = PredictorKind::Gshare;
            else if (p == "tage")
                o.predictor = PredictorKind::Tage;
            else
                throw CliError(csprintf("unknown predictor '%s'",
                                        p.c_str()));
            predictorSet = true;
        } else if (!a.empty() && a[0] == '-') {
            throw CliError("unknown option " + a);
        } else if (o.mode.empty()) {
            o.mode = a;
        } else if (o.mode == "merge") {
            // merge takes shard reports as positional operands.
            o.mergeInputs.push_back(a);
        } else {
            throw CliError("unexpected argument " + a);
        }
    }

    if (o.help || o.list)
        return o;
    if (o.mode.empty())
        throw CliError("missing scenario or mode");

    // Every config name must resolve (fail at parse, not mid-campaign).
    for (const std::string &c : o.configNames)
        (void)configByName(c, o.predictor);

    // Every workload name must be registered (the trace file itself is
    // only read at run time; here only the reference shape is checked).
    for (const std::string &w : o.workloads) {
        if (!workload::known(w)) {
            throw CliError(csprintf("unknown workload '%s' (want a "
                                    "registry name such as gzip, swim, "
                                    "tight-loop, ptrchase, prodcons or "
                                    "interp, or trace:FILE)",
                                    w.c_str()));
        }
    }

    // Every --set override must name a registered parameter and carry a
    // valid value (proven against a scratch machine) — fail at parse,
    // not mid-campaign.
    {
        std::vector<MachineConfig> scratch(1);
        applySpecSets(scratch, o.sets);
    }

    const bool triageFlags = o.failFast || o.snapshotEvery != 0 ||
                             o.budgetSec > 0.0 || !o.reproPath.empty() ||
                             o.bisectExact || o.reduce;
    const bool benchFlags = repsSet || gatePctSet ||
                            !o.baselinePath.empty();
    const bool coverageFlags = o.coverage || !o.corpusPath.empty() ||
                               wavesSet || o.tune;
    const bool specSources = !o.machinePath.empty() || !o.sets.empty();
    const bool gridFlag = !o.gridPath.empty();
    const bool stateFlags = !o.checkpointPath.empty() ||
                            !o.resumePath.empty() || o.shardCount != 0 ||
                            checkpointEverySet;

    if (checkpointEverySet && o.checkpointPath.empty() &&
        o.resumePath.empty()) {
        throw CliError("--checkpoint-every needs --checkpoint or "
                       "--resume");
    }
    // --resume without --checkpoint keeps checkpointing to the file it
    // resumes from: an interrupted resume stays resumable.
    if (!o.resumePath.empty() && o.checkpointPath.empty())
        o.checkpointPath = o.resumePath;

    if (o.mode == "merge") {
        if (o.mergeInputs.empty())
            throw CliError("merge mode needs at least one shard report");
        if (!o.workloads.empty() || !o.configNames.empty() ||
            !o.mixNames.empty() || predictorSet || seedSet || seedsSet ||
            threadsSet || o.instrs != 0 || !o.csvPath.empty() ||
            triageFlags || specSources || gridFlag || stateFlags ||
            benchFlags || coverageFlags) {
            throw CliError("merge mode only takes shard reports and "
                           "--json/--quiet");
        }
        return o;
    }
    if (o.mode == "bench") {
        // Throughput measurement is strictly sequential; more than one
        // worker would time thread scheduling, not the simulator.
        // --threads 1 additionally pins the process to one CPU.
        if (threadsSet && o.threads != 1) {
            throw CliError("bench mode is single-threaded; only "
                           "--threads 1 (which pins the CPU) applies");
        }
        if (seedsSet || !o.mixNames.empty() || !o.csvPath.empty() ||
            triageFlags || specSources || gridFlag || stateFlags ||
            coverageFlags) {
            throw CliError("bench mode takes --workloads/--configs/"
                           "--predictor/--instrs/--seed/--reps/"
                           "--baseline/--gate-pct/--json/--quiet/"
                           "--threads 1 only");
        }
        return o;
    }
    if (o.mode == "spec") {
        if (o.configNames.size() + (o.machinePath.empty() ? 0 : 1) != 1) {
            throw CliError("spec mode needs exactly one machine: one "
                           "--configs preset or one --machine FILE");
        }
        if (!o.workloads.empty() || seedsSet || seedSet ||
            !o.mixNames.empty() || !o.csvPath.empty() || triageFlags ||
            gridFlag || threadsSet || o.instrs != 0 || stateFlags ||
            benchFlags || coverageFlags) {
            throw CliError("spec mode only takes --configs/--machine/"
                           "--set/--predictor/--json/--quiet");
        }
    } else if (o.mode == "trace") {
        if (o.workloads.size() != 1) {
            throw CliError("trace mode dumps exactly one workload "
                           "(--workloads NAME)");
        }
        if (!o.configNames.empty() || specSources || gridFlag ||
            seedsSet || !o.mixNames.empty() || predictorSet ||
            threadsSet || o.instrs != 0 || !o.csvPath.empty() ||
            triageFlags || benchFlags || coverageFlags || stateFlags) {
            throw CliError("trace mode only takes --workloads NAME, "
                           "--seed, --json and --quiet");
        }
    } else if (o.mode == "matrix") {
        if (gridFlag) {
            // A grid document carries its own machines (and usually its
            // own workloads); --workloads stays legal so a machine-only
            // grid can be crossed with an explicit workload list.
            if (!o.configNames.empty() || !o.machinePath.empty()) {
                throw CliError("--grid carries its own machines; "
                               "--configs/--machine do not combine "
                               "with it");
            }
        } else if (o.workloads.empty() ||
                   (o.configNames.empty() && o.machinePath.empty())) {
            throw CliError("matrix mode needs --workloads and a machine "
                           "(--configs and/or --machine), or a --grid "
                           "document");
        }
        if (seedsSet || !o.mixNames.empty())
            throw CliError("--seeds/--mixes only apply to verify mode");
        if (triageFlags)
            throw CliError("--fail-fast/--snapshot-every/--budget-sec/"
                           "--repro/--bisect-exact/--reduce only apply "
                           "to verify mode");
        if (benchFlags)
            throw CliError("--reps/--baseline/--gate-pct only apply to "
                           "bench mode");
        if (coverageFlags)
            throw CliError("--coverage/--corpus/--waves/--tune only "
                           "apply to verify mode");
    } else if (o.mode == "verify") {
        if (o.seeds == 0)
            throw CliError("verify mode needs --seeds > 0");
        if (benchFlags)
            throw CliError("--reps/--baseline/--gate-pct only apply to "
                           "bench mode");
        // --workloads (or a workload-binding --grid) switches verify
        // from fuzzed sweeps to deterministic named-workload runs: a
        // small sequential diffRun loop, so the fuzz-campaign and
        // checkpoint machinery does not apply.
        if (!o.workloads.empty() && gridFlag) {
            throw CliError("--grid binds its own workloads in verify "
                           "mode; --workloads does not combine with it");
        }
        if (gridFlag && (!o.configNames.empty() ||
                         !o.machinePath.empty())) {
            throw CliError("--grid carries its own machines; "
                           "--configs/--machine do not combine with it");
        }
        if (!o.workloads.empty() || gridFlag) {
            if (seedsSet || !o.mixNames.empty()) {
                throw CliError("--seeds/--mixes fuzz programs; they do "
                               "not apply when verifying named "
                               "workloads (--workloads/--grid)");
            }
            if (o.failFast || o.budgetSec > 0.0 || !o.reproPath.empty() ||
                o.bisectExact || o.reduce || coverageFlags) {
                throw CliError("--fail-fast/--budget-sec/--repro/"
                               "--bisect-exact/--reduce/--coverage/"
                               "--corpus/--waves/--tune only apply to "
                               "the fuzzed verify sweep, not "
                               "--workloads/--grid verification");
            }
            if (stateFlags) {
                throw CliError("named-workload verification runs its "
                               "few jobs sequentially; --checkpoint/"
                               "--resume/--shard do not apply");
            }
        }
        if (!o.csvPath.empty())
            throw CliError("--csv does not apply to verify mode "
                           "(use --json)");
        for (const std::string &m : o.mixNames) {
            if (!verify::findMix(m))
                throw CliError(csprintf("unknown mix '%s' (want mixed, "
                                        "branchy, memory, fploop or "
                                        "fpedge)", m.c_str()));
        }
        if (!o.reproPath.empty() &&
            (seedsSet || seedSet || !o.mixNames.empty() ||
             !o.configNames.empty() || predictorSet || specSources)) {
            throw CliError("--repro replays the report's own seed/mix/"
                           "machine spec; --seeds/--seed/--mixes/"
                           "--configs/--machine/--set/--predictor do "
                           "not combine with it");
        }
        if (!o.reproPath.empty() &&
            (o.failFast || o.budgetSec > 0.0 || threadsSet ||
             o.bisectExact || o.reduce || stateFlags || coverageFlags)) {
            throw CliError("--fail-fast/--budget-sec/--threads/"
                           "--bisect-exact/--reduce/--checkpoint/"
                           "--resume/--shard/--coverage/--corpus/"
                           "--waves/--tune do not apply to --repro "
                           "replay (it runs every recorded reproducer "
                           "sequentially)");
        }
        if (coverageFlags && !o.coverage) {
            throw CliError("--corpus/--waves/--tune need --coverage "
                           "(they manage and steer the coverage map)");
        }
        if (o.coverage && stateFlags) {
            throw CliError("--coverage does not combine with "
                           "--checkpoint/--resume/--shard: wave "
                           "retuning changes the job list mid-campaign, "
                           "which checkpoint identity cannot describe");
        }
    } else {
        if (!findScenario(o.mode))
            throw CliError(csprintf("unknown scenario '%s' (see --list)",
                                    o.mode.c_str()));
        // Scenarios fix their own matrix; silently ignoring these
        // flags would mislabel the results the user asked for.
        if (!o.workloads.empty() || !o.configNames.empty() ||
            predictorSet || seedSet || seedsSet || !o.mixNames.empty() ||
            triageFlags || specSources || gridFlag || stateFlags ||
            benchFlags || coverageFlags) {
            throw CliError(csprintf(
                "--workloads/--configs/--machine/--set/--grid/"
                "--predictor/"
                "--seed/--seeds/--mixes/--fail-fast/--snapshot-every/"
                "--budget-sec/--repro/--bisect-exact/--reduce/"
                "--coverage/--corpus/--waves/--tune/"
                "--checkpoint/--resume/--shard/--reps/--baseline/"
                "--gate-pct only apply to matrix, verify, spec or "
                "bench mode, not scenario '%s' (its grid document "
                "ships in examples/grids/)", o.mode.c_str()));
        }
    }
    return o;
}

} // namespace driver
} // namespace msp
