#include "driver/cli.hh"

#include <cstdlib>

#include "common/logging.hh"
#include "driver/scenario.hh"
#include "sim/presets.hh"
#include "verify/fuzzer.hh"

namespace msp {
namespace driver {

std::vector<std::string>
splitCommas(const std::string &s)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= s.size()) {
        const std::size_t comma = s.find(',', start);
        const std::string item =
            s.substr(start, comma == std::string::npos ? std::string::npos
                                                       : comma - start);
        if (!item.empty())
            out.push_back(item);
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
    return out;
}

MachineConfig
configByName(const std::string &name, PredictorKind predictor)
{
    if (name == "baseline")
        return baselineConfig(predictor);
    if (name == "cpr")
        return cprConfig(predictor);
    if (name == "ideal")
        return idealMspConfig(predictor);
    // <n>sp or <n>sp-noarb, e.g. "16sp", "64sp-noarb".
    const std::size_t sp = name.find("sp");
    if (sp != std::string::npos && sp > 0) {
        const unsigned n =
            static_cast<unsigned>(std::atoi(name.substr(0, sp).c_str()));
        const std::string suffix = name.substr(sp);
        if (n > 0 && (suffix == "sp" || suffix == "sp-noarb"))
            return nspConfig(n, predictor, suffix == "sp");
    }
    throw CliError(csprintf("unknown config '%s' (want baseline, cpr, "
                            "ideal, <n>sp or <n>sp-noarb)",
                            name.c_str()));
}

CliOptions
parseCliArgs(const std::vector<std::string> &args)
{
    CliOptions o;
    bool predictorSet = false;
    bool seedSet = false;
    bool seedsSet = false;
    bool threadsSet = false;

    auto value = [&](std::size_t &i) -> const std::string & {
        if (i + 1 >= args.size())
            throw CliError(args[i] + " needs a value");
        return args[++i];
    };

    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string &a = args[i];
        if (a == "--help" || a == "-h") {
            o.help = true;
        } else if (a == "--list") {
            o.list = true;
        } else if (a == "--threads") {
            o.threads = static_cast<unsigned>(
                std::atoi(value(i).c_str()));
            threadsSet = true;
        } else if (a == "--instrs") {
            o.instrs = std::strtoull(value(i).c_str(), nullptr, 10);
        } else if (a == "--seed") {
            o.seed = std::strtoull(value(i).c_str(), nullptr, 10);
            seedSet = true;
        } else if (a == "--seeds") {
            o.seeds = static_cast<unsigned>(
                std::strtoull(value(i).c_str(), nullptr, 10));
            seedsSet = true;
        } else if (a == "--json") {
            o.jsonPath = value(i);
        } else if (a == "--csv") {
            o.csvPath = value(i);
        } else if (a == "--quiet") {
            o.quiet = true;
        } else if (a == "--fail-fast") {
            o.failFast = true;
        } else if (a == "--snapshot-every") {
            o.snapshotEvery = std::strtoull(value(i).c_str(), nullptr, 10);
            if (o.snapshotEvery == 0)
                throw CliError("--snapshot-every needs a value > 0");
        } else if (a == "--budget-sec") {
            o.budgetSec = std::strtod(value(i).c_str(), nullptr);
            if (o.budgetSec <= 0.0)
                throw CliError("--budget-sec needs a value > 0");
        } else if (a == "--repro") {
            o.reproPath = value(i);
        } else if (a == "--workloads") {
            o.workloads = splitCommas(value(i));
        } else if (a == "--configs") {
            o.configNames = splitCommas(value(i));
        } else if (a == "--mixes") {
            o.mixNames = splitCommas(value(i));
        } else if (a == "--predictor") {
            const std::string &p = value(i);
            if (p == "gshare")
                o.predictor = PredictorKind::Gshare;
            else if (p == "tage")
                o.predictor = PredictorKind::Tage;
            else
                throw CliError(csprintf("unknown predictor '%s'",
                                        p.c_str()));
            predictorSet = true;
        } else if (!a.empty() && a[0] == '-') {
            throw CliError("unknown option " + a);
        } else if (o.mode.empty()) {
            o.mode = a;
        } else {
            throw CliError("unexpected argument " + a);
        }
    }

    if (o.help || o.list)
        return o;
    if (o.mode.empty())
        throw CliError("missing scenario or mode");

    // Every config name must resolve (fail at parse, not mid-campaign).
    for (const std::string &c : o.configNames)
        (void)configByName(c, o.predictor);

    const bool triageFlags = o.failFast || o.snapshotEvery != 0 ||
                             o.budgetSec > 0.0 || !o.reproPath.empty();
    if (o.mode == "matrix") {
        if (o.workloads.empty() || o.configNames.empty())
            throw CliError("matrix mode needs --workloads and --configs");
        if (seedsSet || !o.mixNames.empty())
            throw CliError("--seeds/--mixes only apply to verify mode");
        if (triageFlags)
            throw CliError("--fail-fast/--snapshot-every/--budget-sec/"
                           "--repro only apply to verify mode");
    } else if (o.mode == "verify") {
        if (o.seeds == 0)
            throw CliError("verify mode needs --seeds > 0");
        if (!o.workloads.empty())
            throw CliError("--workloads does not apply to verify mode "
                           "(programs are fuzzed)");
        if (!o.csvPath.empty())
            throw CliError("--csv does not apply to verify mode "
                           "(use --json)");
        for (const std::string &m : o.mixNames) {
            if (!verify::findMix(m))
                throw CliError(csprintf("unknown mix '%s' (want mixed, "
                                        "branchy, memory, fploop or "
                                        "fpedge)", m.c_str()));
        }
        if (!o.reproPath.empty() &&
            (seedsSet || seedSet || !o.mixNames.empty() ||
             !o.configNames.empty() || predictorSet)) {
            throw CliError("--repro replays the report's own seed/mix/"
                           "config; --seeds/--seed/--mixes/--configs/"
                           "--predictor do not combine with it");
        }
        if (!o.reproPath.empty() &&
            (o.failFast || o.budgetSec > 0.0 || threadsSet)) {
            throw CliError("--fail-fast/--budget-sec/--threads do not "
                           "apply to --repro replay (it runs every "
                           "recorded reproducer sequentially)");
        }
    } else {
        if (!findScenario(o.mode))
            throw CliError(csprintf("unknown scenario '%s' (see --list)",
                                    o.mode.c_str()));
        // Scenarios fix their own matrix; silently ignoring these
        // flags would mislabel the results the user asked for.
        if (!o.workloads.empty() || !o.configNames.empty() ||
            predictorSet || seedSet || seedsSet || !o.mixNames.empty() ||
            triageFlags) {
            throw CliError(csprintf(
                "--workloads/--configs/--predictor/--seed/--seeds/"
                "--mixes/--fail-fast/--snapshot-every/--budget-sec/"
                "--repro only apply to matrix or verify mode, not "
                "scenario '%s'", o.mode.c_str()));
        }
    }
    return o;
}

} // namespace driver
} // namespace msp
