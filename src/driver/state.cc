#include "driver/state.hh"

#include <atomic>
#include <utility>

#include "common/json.hh"
#include "common/logging.hh"
#include "driver/report.hh"

namespace msp {
namespace driver {

namespace {

std::atomic<bool> gCampaignStop{false};

/** One complete line per entry; a missing trailing \n marks a tear. */
std::vector<std::string>
splitLines(const std::string &content, bool &lastComplete)
{
    std::vector<std::string> lines;
    std::size_t start = 0;
    while (start < content.size()) {
        const std::size_t nl = content.find('\n', start);
        if (nl == std::string::npos) {
            lines.push_back(content.substr(start));
            lastComplete = false;
            return lines;
        }
        if (nl > start)
            lines.push_back(content.substr(start, nl - start));
        start = nl + 1;
    }
    lastComplete = true;
    return lines;
}

std::string
renderRecord(std::uint64_t index, const std::string &key,
             const std::string &payload)
{
    return csprintf("{\"index\": %llu, \"key\": \"%s\", \"payload\": ",
                    static_cast<unsigned long long>(index),
                    json::escape(key).c_str()) +
           payload + "}\n";
}

} // anonymous namespace

std::string
stateHash(const std::string &s)
{
    std::uint64_t h = 1469598103934665603ull;
    for (unsigned char c : s) {
        h ^= c;
        h *= 1099511628211ull;
    }
    return csprintf("%016llx", static_cast<unsigned long long>(h));
}

std::vector<std::size_t>
shardSelect(std::size_t n, unsigned shard, unsigned shards)
{
    msp_assert(shards > 0 && shard < shards,
               "bad shard %u/%u", shard, shards);
    std::vector<std::size_t> out;
    for (std::size_t i = shard; i < n; i += shards)
        out.push_back(i);
    return out;
}

CampaignState::~CampaignState()
{
    finalFlush();
}

void
CampaignState::configure(const std::string &checkpointPath, unsigned n,
                         bool resumeRequested,
                         const std::string &resumeFrom)
{
    msp_assert(n >= 1, "checkpoint cadence must be >= 1");
    path = checkpointPath;
    every = n;
    resume = resumeRequested;
    resumePath = resumeFrom.empty() ? checkpointPath : resumeFrom;
}

void
CampaignState::begin(const std::string &campaignMode,
                     const std::vector<std::uint64_t> &indices,
                     const std::vector<std::string> &keys)
{
    if (!enabled())
        return;
    msp_assert(indices.size() == keys.size(),
               "indices/keys not parallel: %zu vs %zu", indices.size(),
               keys.size());

    mode = campaignMode;
    keyByIndex.clear();
    records.clear();
    pendingLines.clear();
    torn = 0;

    // The fingerprint covers every (global index, job key) pair in
    // submission order: a checkpoint only resumes the exact campaign
    // (same matrix, machines, seeds, budget — and same shard) that
    // wrote it.
    std::string identity = mode;
    for (std::size_t i = 0; i < indices.size(); ++i) {
        identity += csprintf("|%llu:%s",
                             static_cast<unsigned long long>(indices[i]),
                             keys[i].c_str());
        keyByIndex[indices[i]] = keys[i];
    }
    fingerprint = stateHash(identity);

    if (resume) {
        std::string content;
        if (!tryReadFile(resumePath, content)) {
            throw CheckpointError("cannot read checkpoint " + resumePath);
        }
        bool lastComplete = true;
        std::vector<std::string> lines = splitLines(content, lastComplete);
        if (lines.empty())
            throw CheckpointError("checkpoint " + resumePath +
                                  " is empty");

        // Header: must identify this exact campaign. A garbled
        // version token (JsonError) is just as much "not a
        // checkpoint" as a missing one.
        const std::string &head = lines.front();
        std::uint64_t version = 0;
        try {
            version = json::getU64(head, "msp_checkpoint", 0);
        } catch (const json::JsonError &) {}
        if (version != 1) {
            throw CheckpointError(resumePath +
                                  " is not a checkpoint file");
        }
        if (json::getStr(head, "mode") != mode) {
            throw CheckpointError(csprintf(
                "checkpoint %s was written by a '%s' campaign, not "
                "'%s'", resumePath.c_str(),
                json::getStr(head, "mode").c_str(), mode.c_str()));
        }
        if (json::getStr(head, "fingerprint") != fingerprint) {
            throw CheckpointError(csprintf(
                "checkpoint %s belongs to a different campaign "
                "(fingerprint %s, this run is %s) — same command line, "
                "machines, seeds and shard required to resume",
                resumePath.c_str(),
                json::getStr(head, "fingerprint").c_str(),
                fingerprint.c_str()));
        }

        std::string tornBytes;
        for (std::size_t li = 1; li < lines.size(); ++li) {
            const std::string &line = lines[li];
            const bool isLast = li + 1 == lines.size();
            const std::size_t payloadAt = json::valuePos(line, "payload");
            const std::string payload =
                payloadAt != std::string::npos &&
                        payloadAt < line.size() && line[payloadAt] == '{'
                    ? json::balancedSlice(line, payloadAt)
                    : "";
            std::uint64_t index = ~std::uint64_t{0};
            try {
                index = json::getU64(line, "index", ~std::uint64_t{0});
            } catch (const json::JsonError &) {
                // A record torn mid-number is "not parsed", same as a
                // record torn mid-key; the trailing-record test below
                // decides whether that is recoverable.
            }
            const std::string key = json::getStr(line, "key");

            const bool parsed = !payload.empty() && !key.empty() &&
                                index != ~std::uint64_t{0};
            if (!parsed || (isLast && !lastComplete)) {
                if (!isLast) {
                    throw CheckpointError(csprintf(
                        "checkpoint %s is corrupt at record %zu (only "
                        "a torn *trailing* record is recoverable)",
                        resumePath.c_str(), li));
                }
                // Torn tail: quarantine the bytes and keep the rest.
                ++torn;
                tornBytes = line;
                break;
            }
            const auto it = keyByIndex.find(index);
            if (it == keyByIndex.end() || it->second != key) {
                throw CheckpointError(csprintf(
                    "checkpoint %s record for job %llu does not match "
                    "this campaign's job identity",
                    resumePath.c_str(),
                    static_cast<unsigned long long>(index)));
            }
            records[index] = payload;
        }
        if (torn > 0) {
            // Quarantine rather than silently discard: the torn bytes
            // land next to the checkpoint for post-mortems.
            writeFile(resumePath + ".torn", tornBytes + "\n");
        }
    }

    // Rewrite the checkpoint from scratch — atomically — so the file
    // on disk is header + surviving records with any torn tail gone,
    // and subsequent appends extend a known-good prefix.
    std::string content = csprintf(
        "{\"msp_checkpoint\": 1, \"mode\": \"%s\", \"fingerprint\": "
        "\"%s\", \"jobs\": %zu}\n",
        json::escape(mode).c_str(), fingerprint.c_str(),
        keyByIndex.size());
    for (const auto &[index, payload] : records)
        content += renderRecord(index, keyByIndex.at(index), payload);
    writeFile(path, content);
}

const std::string *
CampaignState::completedPayload(std::uint64_t index) const
{
    const auto it = records.find(index);
    return it == records.end() ? nullptr : &it->second;
}

void
CampaignState::recordDone(std::uint64_t index, const std::string &key,
                          const std::string &payload)
{
    if (!enabled())
        return;
    records[index] = payload;
    pendingLines.push_back(renderRecord(index, key, payload));
    if (pendingLines.size() >= every)
        appendPending();
}

void
CampaignState::appendPending()
{
    if (pendingLines.empty())
        return;
    if (!file) {
        file = std::fopen(path.c_str(), "a");
        if (!file)
            msp_fatal("cannot append to checkpoint %s", path.c_str());
    }
    for (const std::string &line : pendingLines) {
        if (std::fwrite(line.data(), 1, line.size(), file) != line.size())
            msp_fatal("short write to checkpoint %s", path.c_str());
    }
    std::fflush(file);
    pendingLines.clear();
}

void
CampaignState::finalFlush()
{
    if (!enabled())
        return;
    appendPending();
    if (file) {
        std::fclose(file);
        file = nullptr;
    }
}

// ---- report merging --------------------------------------------------------

namespace {

/** Rows of the array at @p key in @p doc, mapped by their "index". */
void
collectRows(const std::string &doc, const std::string &key,
            std::map<std::uint64_t, std::string> &rows,
            const std::string &what)
{
    const std::size_t at = json::valuePos(doc, key);
    if (at == std::string::npos || at >= doc.size() || doc[at] != '[')
        throw CheckpointError("report carries no \"" + key + "\" array");
    for (const std::string &row :
         json::innerObjects(json::balancedSlice(doc, at))) {
        const std::uint64_t index =
            json::getU64(row, "index", ~std::uint64_t{0});
        if (index == ~std::uint64_t{0}) {
            throw CheckpointError(what + " row without an \"index\" "
                                  "field (pre-shard report?)");
        }
        if (!rows.emplace(index, row).second) {
            throw CheckpointError(csprintf(
                "two %s rows claim index %llu — overlapping shards?",
                what.c_str(),
                static_cast<unsigned long long>(index)));
        }
    }
}

std::string
mergeDriverReports(const std::vector<std::string> &docs)
{
    std::map<std::uint64_t, std::string> rows;
    for (const std::string &doc : docs)
        collectRows(doc, "jobs", rows, "job");

    std::string out = "{\n  \"jobs\": [";
    std::size_t emitted = 0;
    for (const auto &[index, row] : rows) {
        out += emitted++ ? ",\n    " : "\n    ";
        out += row;
    }
    out += "\n  ]\n}\n";
    return out;
}

std::string
mergeVerifyReports(const std::vector<std::string> &docs)
{
    std::map<std::uint64_t, std::string> rows;
    std::map<std::uint64_t, std::string> repros;
    std::size_t divergent = 0, skipped = 0, shrinkTimedOut = 0;
    for (const std::string &doc : docs) {
        collectRows(doc, "results", rows, "result");
        collectRows(doc, "repros", repros, "repro");
        divergent += json::getU64(doc, "divergent", 0);
        skipped += json::getU64(doc, "skipped", 0);
        shrinkTimedOut += json::getU64(doc, "shrink_timed_out", 0);
    }

    // Exactly verify::toJson's skeleton, so a merged document is
    // byte-identical to what the unsharded campaign would have written.
    std::string out = "{\n  \"verify\": {\n";
    out += csprintf("    \"jobs\": %zu,\n", rows.size());
    out += csprintf("    \"divergent\": %zu,\n", divergent);
    out += csprintf("    \"skipped\": %zu,\n", skipped);
    if (shrinkTimedOut)
        out += csprintf("    \"shrink_timed_out\": %zu,\n",
                        shrinkTimedOut);
    out += "    \"results\": [";
    std::size_t emitted = 0;
    for (const auto &[index, row] : rows) {
        out += emitted++ ? ",\n      " : "\n      ";
        out += row;
    }
    out += "\n    ],\n";
    out += "    \"repros\": [";
    emitted = 0;
    for (const auto &[index, row] : repros) {
        out += emitted++ ? ",\n      " : "\n      ";
        out += row;
    }
    out += "\n    ]\n  }\n}\n";
    return out;
}

} // anonymous namespace

std::string
mergeReports(const std::vector<std::string> &docs)
{
    if (docs.empty())
        throw CheckpointError("nothing to merge");

    const auto isVerify = [](const std::string &doc) {
        const std::size_t at = json::valuePos(doc, "verify");
        return at != std::string::npos && at < doc.size() &&
               doc[at] == '{';
    };
    const bool verify = isVerify(docs.front());
    for (const std::string &doc : docs) {
        if (isVerify(doc) != verify) {
            throw CheckpointError("cannot merge a verify report with a "
                                  "campaign report");
        }
    }
    return verify ? mergeVerifyReports(docs) : mergeDriverReports(docs);
}

// ---- cooperative interruption ---------------------------------------------

void
setCampaignStop(bool stop)
{
    gCampaignStop.store(stop, std::memory_order_relaxed);
}

bool
campaignStopRequested()
{
    return gCampaignStop.load(std::memory_order_relaxed);
}

} // namespace driver
} // namespace msp
