/**
 * @file
 * SimCampaign — a multi-threaded simulation-campaign driver.
 *
 * A campaign is a declarative list of jobs, each pairing one machine
 * configuration (see sim/presets.hh) with one workload. run() fans the
 * jobs across a pool of worker threads; every job owns its Machine,
 * its Program copy and its RNG state, so results are bit-identical
 * regardless of the thread count or scheduling order (the property
 * tests/test_campaign.cc asserts).
 */

#ifndef MSPLIB_DRIVER_CAMPAIGN_HH
#define MSPLIB_DRIVER_CAMPAIGN_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "isa/program.hh"
#include "sim/grid.hh"
#include "sim/machine.hh"

namespace msp {
namespace driver {

class CampaignState;

/** One cell of the campaign matrix: a machine running a workload. */
struct CampaignJob
{
    std::string scenario;      ///< grouping label in reports ("fig6", ...)
    std::string workload;      ///< workload::build() registry name
    MachineConfig config;
    std::uint64_t maxInsts = 0;///< committed-instruction budget (0 = default)
    std::uint64_t maxCycles = ~std::uint64_t{0};
    std::uint64_t seed = 1;    ///< workload-synthesis seed

    /**
     * Pre-built program; overrides @c workload / @c seed when set.
     * Shared across jobs without copying: Machine takes its own copy.
     */
    std::shared_ptr<const Program> program;
};

/** A finished job, in submission order. */
struct JobResult
{
    std::size_t index = 0;     ///< global submission index (the shard's
                               ///< parent campaign when sharded)
    CampaignJob job;
    RunResult result;

    /**
     * False when an interrupted campaign (driver::setCampaignStop)
     * never started this job: @c result is empty and the report
     * writers skip the row, so a partial report carries only real
     * results.
     */
    bool ran = true;
};

/**
 * Called after each job finishes (under a lock, so it may print).
 *
 * @param done  Jobs finished so far, including this one.
 * @param total Total jobs in the campaign.
 */
using ProgressFn =
    std::function<void(const JobResult &, std::size_t done,
                       std::size_t total)>;

/**
 * Per-run committed-instruction budget used when a job leaves
 * maxInsts at 0. Defaults to 60000; override with the
 * MSP_BENCH_INSTRS environment variable to trade time for fidelity.
 */
std::uint64_t defaultInstBudget();

/**
 * Deterministic per-job seed derivation (splitmix64 of base and
 * index) for campaigns that want independent streams per repetition.
 */
std::uint64_t jobSeed(std::uint64_t base, std::uint64_t index);

/**
 * Run @p fn(0) .. @p fn(n-1) across a pool of @p threads workers (0 =
 * one per hardware thread; the pool never exceeds @p n). Indices are
 * claimed atomically, so @p fn runs exactly once per index but in no
 * particular order — callers index into pre-sized output slots for
 * order-independent results. The first exception thrown by any index
 * is re-thrown after all workers drain; the throwing worker stops,
 * the others finish their remaining indices.
 *
 * This is the shared worker pool under SimCampaign and
 * verify::DiffCampaign.
 */
void parallelFor(unsigned threads, std::size_t n,
                 const std::function<void(std::size_t)> &fn);

/** The worker count parallelFor(threads, n, ...) actually uses. */
unsigned effectivePoolThreads(unsigned threads, std::size_t n);

/**
 * The full cross product workloads × configs as a job list,
 * workload-major (all configs of workloads[0] first). This ordering
 * is a contract: scenario reports rebuild their figure grid from it.
 */
std::vector<CampaignJob>
matrixJobs(const std::string &scenario,
           const std::vector<std::string> &workloads,
           const std::vector<MachineConfig> &configs,
           std::uint64_t maxInsts = 0, std::uint64_t seed = 1);

/**
 * One job per grid point, in expansion order. A grid whose points bind
 * workloads (a "workload.name"/"workload.trace" axis) is a complete
 * campaign; expansion order for a workload-first grid is workload-major,
 * so the matrixJobs reporting contract carries over.
 *
 * @throws SpecError when a point binds no workload — cross such a grid
 *         with an explicit workload list via matrixJobs instead.
 */
std::vector<CampaignJob>
gridJobs(const std::string &scenario, const grid::Grid &grid,
         std::uint64_t maxInsts = 0, std::uint64_t seed = 1);

/** A batch of simulation jobs run on a worker pool. */
class SimCampaign
{
  public:
    /**
     * @param threads Worker count; 0 means one per hardware thread.
     *                A value of 1 runs every job inline on the calling
     *                thread (the single-threaded reference).
     */
    explicit SimCampaign(unsigned threads = 0);

    /** Append one job; returns its submission index. */
    std::size_t add(CampaignJob job);

    /** Append matrixJobs(scenario, workloads, configs, ...). */
    void addMatrix(const std::vector<std::string> &workloads,
                   const std::vector<MachineConfig> &configs,
                   std::uint64_t maxInsts = 0, std::uint64_t seed = 1,
                   const std::string &scenario = "");

    std::size_t size() const { return jobs.size(); }
    const std::vector<CampaignJob> &pending() const { return jobs; }

    /** Effective worker count for @c size() jobs. */
    unsigned effectiveThreads() const;

    /**
     * Keep only shard @p shard of @p shards (jobs whose submission
     * index is congruent to @p shard mod @p shards). Surviving jobs
     * remember their global index, so shard reports carry the parent
     * campaign's indices and mergeReports() can reassemble them into
     * the exact unsharded report.
     */
    void restrictToShard(unsigned shard, unsigned shards);

    /**
     * Checkpoint per-job completion through @p st (not owned; may be
     * null to detach). run() binds the backend with every job's
     * identity key, skips jobs whose results the backend restored, and
     * records each fresh completion — so a killed run resumes with the
     * work it already did, byte-identical to an uninterrupted run.
     */
    void attachState(CampaignState *st) { state = st; }

    /**
     * Run every job and return results in submission order.
     *
     * Workloads are synthesised once per distinct (name, seed) pair —
     * sequentially, before the pool starts — then shared read-only.
     * The first exception thrown by any job is re-thrown here after
     * all workers have drained.
     */
    std::vector<JobResult> run(const ProgressFn &progress = nullptr);

    /** A ProgressFn that prints "[done/total config/workload]" lines. */
    static ProgressFn stderrProgress();

  private:
    unsigned requestedThreads;
    std::vector<CampaignJob> jobs;
    std::vector<std::uint64_t> globalIndex;  ///< empty = identity
    CampaignState *state = nullptr;
};

/**
 * Stable identity hash of one simulation job: scenario, workload,
 * seed, budgets and the full serialised machine spec. Two runs of the
 * same command line derive the same keys, which is what lets a
 * checkpoint record prove it belongs to the job it claims.
 */
std::string simJobKey(const CampaignJob &job);

/**
 * Serialise / parse one RunResult as the checkpoint payload. Integer
 * counters and escaped strings only — the round trip is exact, so a
 * report rendered from restored results is byte-identical to one
 * rendered from fresh results.
 */
std::string simResultToJson(const RunResult &r);
RunResult simResultFromJson(const std::string &json);

} // namespace driver
} // namespace msp

#endif // MSPLIB_DRIVER_CAMPAIGN_HH
