/**
 * @file
 * Campaign result serialisation: JSON and CSV reports.
 *
 * Both formats carry the same per-job record (identity, configuration
 * axes, headline metrics and stall counters) so a campaign's output
 * can feed plotting scripts or be diffed between runs.
 */

#ifndef MSPLIB_DRIVER_REPORT_HH
#define MSPLIB_DRIVER_REPORT_HH

#include <string>
#include <vector>

#include "driver/campaign.hh"

namespace msp {
namespace driver {

/** Serialise results as a JSON document: {"jobs": [{...}, ...]}. */
std::string toJson(const std::vector<JobResult> &results);

/** Serialise results as CSV with a header row. */
std::string toCsv(const std::vector<JobResult> &results);

/**
 * JSON string escaping — the shared json::escape (full control set:
 * quotes, backslashes, \b \f \n \r \t, \u00XX). Kept under the
 * historical driver:: name for its many call sites.
 */
std::string jsonEscape(const std::string &s);

/**
 * Write @p content to @p path atomically: the bytes land in a
 * temporary file in the same directory which is then renamed into
 * place, so a crash or kill mid-write can never leave a truncated
 * report for --resume/--repro/parseRepros to choke on — readers see
 * either the old file or the complete new one. msp_fatal on I/O
 * failure.
 */
void writeFile(const std::string &path, const std::string &content);

/** Read all of @p path; msp_fatal on I/O failure. */
std::string readFile(const std::string &path);

/**
 * Read all of @p path into @p out; false on I/O failure. The variant
 * for callers that own their error reporting (CLI exit-code policy).
 */
bool tryReadFile(const std::string &path, std::string &out);

} // namespace driver
} // namespace msp

#endif // MSPLIB_DRIVER_REPORT_HH
