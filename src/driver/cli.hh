/**
 * @file
 * msp_sim command-line parsing, split from the binary so the argument
 * grammar and its error paths are unit-testable (tests/test_cli.cc).
 *
 * Parsing never exits the process: every user error throws CliError,
 * which tools/msp_sim.cc turns into a message plus usage text.
 */

#ifndef MSPLIB_DRIVER_CLI_HH
#define MSPLIB_DRIVER_CLI_HH

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/machine.hh"

namespace msp {
namespace driver {

/** A user error in the command line (bad flag, bad value, bad combo). */
struct CliError : std::runtime_error
{
    using std::runtime_error::runtime_error;
};

/** Parsed msp_sim invocation. */
struct CliOptions
{
    std::string mode;     ///< scenario name, "matrix", "verify", "spec",
                          ///< "bench", "trace" or "merge"
    bool help = false;         ///< --help: print usage, exit 0
    bool list = false;         ///< --list: print scenarios, exit 0
    unsigned threads = 0;      ///< 0 = all hardware threads
    std::uint64_t instrs = 0;  ///< per-run budget (0 = mode default)
    std::uint64_t seed = 1;    ///< workload / fuzz base seed
    unsigned seeds = 100;      ///< verify: fuzz seeds per mix
    std::string jsonPath;
    std::string csvPath;
    bool quiet = false;
    std::vector<std::string> workloads;    ///< matrix
    std::vector<std::string> configNames;  ///< matrix + verify + spec
    std::vector<std::string> mixNames;     ///< verify
    PredictorKind predictor = PredictorKind::Gshare;

    // ---- MachineSpec sources (matrix / verify / spec modes) ---------------
    std::string machinePath;           ///< --machine FILE spec to load
    std::vector<std::string> sets;     ///< --set key=value, in flag order
    std::string gridPath;              ///< --grid FILE (sim/grid.hh document)

    // ---- verify-mode triage knobs -----------------------------------------
    bool failFast = false;             ///< stop starting jobs on divergence
    std::uint64_t snapshotEvery = 0;   ///< mid-run state compare cadence
    double budgetSec = 0.0;            ///< wall-clock budget (0 = none)
    std::string reproPath;             ///< replay repros from this report
    bool bisectExact = false;          ///< bisect to the first bad commit
    bool reduce = false;               ///< structurally reduce repro programs

    // ---- verify-mode coverage-guided fuzzing (verify/corpus.hh) -----------
    bool coverage = false;             ///< --coverage: harvest path coverage
    std::string corpusPath;            ///< --corpus FILE (JSONL corpus)
    unsigned waves = 1;                ///< --waves N: campaign waves
    bool tune = false;                 ///< --tune: reweight mixes per wave

    // ---- bench-mode knobs -------------------------------------------------
    unsigned reps = 3;                 ///< timed repetitions per config
    std::string baselinePath;          ///< --baseline FILE to gate against
    double gatePct = 15.0;             ///< --gate-pct regression threshold

    // ---- campaign state (matrix + verify; see driver/state.hh) ------------
    std::string checkpointPath;        ///< --checkpoint FILE (durable state)
    unsigned checkpointEvery = 32;     ///< --checkpoint-every N completions
    std::string resumePath;            ///< --resume FILE (implies checkpoint)
    unsigned shardIndex = 0;           ///< --shard i/N: this process is i
    unsigned shardCount = 0;           ///< --shard i/N: of N (0 = unsharded)
    std::vector<std::string> mergeInputs;  ///< merge mode: shard reports
};

/** "a,b,,c" -> {"a","b","c"} (empty items dropped). */
std::vector<std::string> splitCommas(const std::string &s);

/**
 * Checked numeric flag parsing. The historical std::atoi/strtoull
 * calls silently accepted garbage ("--seeds 1o0" ran 1 seed), wrapped
 * negatives ("--threads -1" spawned 4 billion workers' worth of
 * unsigned) and saturated overflow to noise; these reject anything
 * that is not the complete, in-range decimal spelling of a value,
 * throwing CliError that names the offending flag.
 */
std::uint64_t parseU64Flag(const std::string &flag,
                           const std::string &value);

/** As parseU64Flag, additionally bounded to unsigned's range. */
unsigned parseUnsignedFlag(const std::string &flag,
                           const std::string &value);

/** Checked finite-double parse (rejects garbage, trailing text, NaN
 *  and infinities — a NaN --budget-sec would disable the budget while
 *  claiming to set one). */
double parseDoubleFlag(const std::string &flag, const std::string &value);

/**
 * Resolve a preset name: default, baseline, cpr, ideal, <n>sp or
 * <n>sp-noarb (sim::presetByName with SpecError mapped to CliError).
 * @throws CliError on anything else.
 */
MachineConfig configByName(const std::string &name,
                           PredictorKind predictor);

/**
 * Apply @p sets ("key=value" each, already syntax-checked by
 * parseCliArgs) to every machine, relabelling any machine whose spec
 * actually changed with its describeSpec() identity.
 * @throws CliError naming the key on unknown/invalid overrides.
 */
void applySpecSets(std::vector<MachineConfig> &machines,
                   const std::vector<std::string> &sets);

/**
 * Materialise the machine list of a parsed invocation with the
 * documented precedence: presets named by --configs, then the
 * --machine FILE spec (parsed through sim/spec.hh), then every --set
 * override applied on top of all of them.
 * @throws CliError on unreadable/unparseable specs or bad overrides.
 */
std::vector<MachineConfig> resolveMachines(const CliOptions &o);

/**
 * Parse and validate argv[1..] (program name excluded).
 *
 * Validation is mode-aware: matrix requires --workloads/--configs (or
 * a --grid document), verify accepts --seeds/--mixes/--configs for the
 * fuzzed sweep or --workloads/--grid for deterministic named-workload
 * verification, trace takes exactly one --workloads name, and scenario
 * modes reject every matrix/verify-only flag so a mislabelled sweep
 * cannot run silently. Unknown scenario names are rejected here
 * against the scenario registry; workload names are checked against
 * the workload registry.
 *
 * @throws CliError on any user error.
 */
CliOptions parseCliArgs(const std::vector<std::string> &args);

} // namespace driver
} // namespace msp

#endif // MSPLIB_DRIVER_CLI_HH
