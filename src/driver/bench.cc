#include "driver/bench.hh"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>

#ifdef __linux__
#include <sys/utsname.h>
#endif

#include "common/json.hh"
#include "common/logging.hh"
#include "common/parse.hh"
#include "sim/presets.hh"
#include "workload/spec.hh"

namespace msp {
namespace driver {

namespace {

/** The Table I ladder with both reference machines — the default and
 *  the set the committed BENCH_throughput.json baseline carries. */
const std::vector<std::string> &
defaultBenchConfigs()
{
    static const std::vector<std::string> v = {
        "baseline", "cpr", "ideal", "4sp", "8sp", "16sp",
    };
    return v;
}

/** Two int + two fp benchmarks: exercises every FU class and both
 *  memory behaviours (strided and pointer-chasing). */
const std::vector<std::string> &
defaultBenchWorkloads()
{
    static const std::vector<std::string> v = {
        "gzip", "gcc", "swim", "mcf",
    };
    return v;
}

/** First "key: value" line of /proc/cpuinfo matching @p key. */
std::string
cpuinfoField(const char *key)
{
    std::FILE *f = std::fopen("/proc/cpuinfo", "r");
    if (!f)
        return "";
    std::string found;
    char line[512];
    while (std::fgets(line, sizeof line, f)) {
        std::string s(line);
        if (s.rfind(key, 0) != 0)
            continue;
        const std::size_t colon = s.find(':');
        if (colon == std::string::npos)
            continue;
        std::size_t b = colon + 1;
        while (b < s.size() && std::isspace(static_cast<unsigned char>(s[b])))
            ++b;
        std::size_t e = s.size();
        while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
            --e;
        found = s.substr(b, e - b);
        break;
    }
    std::fclose(f);
    return found;
}

/** Doubles of a [1.0, 2.5, ...] array. @throws JsonError on garbage. */
std::vector<double>
numberArray(const std::string &obj, const std::string &key)
{
    std::vector<double> out;
    const std::size_t pos = json::valuePos(obj, key);
    if (pos == std::string::npos || obj[pos] != '[')
        return out;
    const std::string arr = json::balancedSlice(obj, pos);
    std::size_t start = 1;  // past '['
    while (start < arr.size()) {
        std::size_t end = start;
        while (end < arr.size() && arr[end] != ',' && arr[end] != ']')
            ++end;
        std::string tok = arr.substr(start, end - start);
        // Trim whitespace.
        std::size_t b = 0, e = tok.size();
        while (b < e && std::isspace(static_cast<unsigned char>(tok[b])))
            ++b;
        while (e > b && std::isspace(static_cast<unsigned char>(tok[e - 1])))
            --e;
        tok = tok.substr(b, e - b);
        if (!tok.empty()) {
            char *stop = nullptr;
            const double v = std::strtod(tok.c_str(), &stop);
            if (stop != tok.c_str() + tok.size()) {
                throw json::JsonError(csprintf(
                    "malformed number '%s' in \"%s\" array", tok.c_str(),
                    key.c_str()));
            }
            out.push_back(v);
        }
        if (end >= arr.size() || arr[end] == ']')
            break;
        start = end + 1;
    }
    return out;
}

std::string
numToJson(double v)
{
    // Enough digits to round-trip a double's integer and ratio uses
    // here; trailing zeros are harmless in a report.
    return csprintf("%.6f", v);
}

} // namespace

double
BenchConfigResult::bestWallSec() const
{
    double best = 0.0;
    for (double w : wallSec)
        if (best == 0.0 || w < best)
            best = w;
    return best;
}

double
BenchConfigResult::minstrPerSec() const
{
    const double w = bestWallSec();
    return w <= 0.0 ? 0.0 : static_cast<double>(committed) / w / 1e6;
}

double
BenchConfigResult::mcyclesPerSec() const
{
    const double w = bestWallSec();
    return w <= 0.0 ? 0.0 : static_cast<double>(cycles) / w / 1e6;
}

std::string
hostFingerprint()
{
    std::string arch = "unknown";
#ifdef __linux__
    struct utsname un{};
    if (::uname(&un) == 0)
        arch = un.machine;
#endif
    std::string model = cpuinfoField("model name");
    if (model.empty())
        model = "unknown-cpu";
    const unsigned threads = std::thread::hardware_concurrency();
    return csprintf("%s/%s/%ut", arch.c_str(), model.c_str(), threads);
}

bool
sanitizedBuild()
{
    bool s = false;
#if defined(MSP_SANITIZED_BUILD)
    s = true;
#endif
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
    s = true;
#endif
#if defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) || \
    __has_feature(memory_sanitizer)
    s = true;
#endif
#endif
    return s;
}

BenchReport
runThroughputBench(const BenchOptions &o, const BenchProgressFn &progress)
{
    const std::vector<std::string> &configNames =
        o.configNames.empty() ? defaultBenchConfigs() : o.configNames;
    const std::vector<std::string> &workloads =
        o.workloads.empty() ? defaultBenchWorkloads() : o.workloads;
    msp_assert(o.reps > 0, "bench needs at least one repetition");
    msp_assert(o.instrs > 0, "bench needs a non-zero instruction budget");

    // Resolve presets up front (SpecError before any timing) and
    // synthesise each workload once — program build time is setup, not
    // simulation throughput.
    std::vector<MachineConfig> configs;
    for (const std::string &n : configNames)
        configs.push_back(presetByName(n, o.predictor));
    std::vector<Program> programs;
    for (const std::string &w : workloads)
        programs.push_back(spec::build(w, o.seed));

    BenchReport r;
    r.host = hostFingerprint();
    r.sanitized = sanitizedBuild();
    r.predictor = predictorName(o.predictor);
    r.instrs = o.instrs;
    r.reps = o.reps;
    r.seed = o.seed;
    r.workloads = workloads;
    for (const std::string &n : configNames) {
        BenchConfigResult c;
        c.config = n;
        r.configs.push_back(std::move(c));
    }

    using clock = std::chrono::steady_clock;
    for (unsigned rep = 0; rep < o.reps; ++rep) {
        for (std::size_t ci = 0; ci < configs.size(); ++ci) {
            BenchConfigResult &out = r.configs[ci];
            std::uint64_t committed = 0, cycles = 0;
            const clock::time_point t0 = clock::now();
            for (const Program &prog : programs) {
                Machine m(configs[ci], prog);
                const RunResult res = m.run(o.instrs);
                committed += res.committed;
                cycles += res.cycles;
            }
            const std::chrono::duration<double> wall = clock::now() - t0;

            if (rep == 0) {
                out.committed = committed;
                out.cycles = cycles;
            } else if (out.committed != committed ||
                       out.cycles != cycles) {
                // Timing a non-deterministic simulator measures
                // nothing; this is a broken build, not a slow one.
                msp_fatal("bench: %s repetition %u diverged "
                          "(committed %llu vs %llu, cycles %llu vs "
                          "%llu) — simulator is non-deterministic",
                          out.config.c_str(), rep,
                          static_cast<unsigned long long>(out.committed),
                          static_cast<unsigned long long>(committed),
                          static_cast<unsigned long long>(out.cycles),
                          static_cast<unsigned long long>(cycles));
            }
            out.wallSec.push_back(wall.count());
            if (progress)
                progress(out.config, rep + 1, o.reps, wall.count());
        }
    }
    return r;
}

std::string
benchReportToJson(const BenchReport &r)
{
    std::string s;
    s += "{\n";
    s += csprintf("  \"schema\": \"%s\",\n", benchSchemaId);
    s += csprintf("  \"host\": \"%s\",\n",
                  json::escape(r.host).c_str());
    s += csprintf("  \"sanitized\": %s,\n",
                  r.sanitized ? "true" : "false");
    s += csprintf("  \"predictor\": \"%s\",\n",
                  json::escape(r.predictor).c_str());
    s += csprintf("  \"instrs\": %llu,\n",
                  static_cast<unsigned long long>(r.instrs));
    s += csprintf("  \"reps\": %u,\n", r.reps);
    s += csprintf("  \"seed\": %llu,\n",
                  static_cast<unsigned long long>(r.seed));
    s += "  \"workloads\": [";
    for (std::size_t i = 0; i < r.workloads.size(); ++i) {
        s += csprintf("%s\"%s\"", i ? ", " : "",
                      json::escape(r.workloads[i]).c_str());
    }
    s += "],\n";
    s += "  \"configs\": [\n";
    for (std::size_t i = 0; i < r.configs.size(); ++i) {
        const BenchConfigResult &c = r.configs[i];
        s += "    {\n";
        s += csprintf("      \"config\": \"%s\",\n",
                      json::escape(c.config).c_str());
        s += csprintf("      \"committed\": %llu,\n",
                      static_cast<unsigned long long>(c.committed));
        s += csprintf("      \"cycles\": %llu,\n",
                      static_cast<unsigned long long>(c.cycles));
        s += "      \"wall_sec\": [";
        for (std::size_t j = 0; j < c.wallSec.size(); ++j)
            s += csprintf("%s%s", j ? ", " : "",
                          numToJson(c.wallSec[j]).c_str());
        s += "],\n";
        s += csprintf("      \"best_wall_sec\": %s,\n",
                      numToJson(c.bestWallSec()).c_str());
        s += csprintf("      \"minstr_per_sec\": %s,\n",
                      numToJson(c.minstrPerSec()).c_str());
        s += csprintf("      \"mcycles_per_sec\": %s\n",
                      numToJson(c.mcyclesPerSec()).c_str());
        s += i + 1 < r.configs.size() ? "    },\n" : "    }\n";
    }
    s += "  ]\n";
    s += "}\n";
    return s;
}

BenchReport
benchReportFromJson(const std::string &doc)
{
    const std::string schema = json::getStr(doc, "schema");
    if (schema != benchSchemaId) {
        throw json::JsonError(csprintf(
            "not a bench report (schema '%s', want '%s')",
            schema.c_str(), benchSchemaId));
    }
    BenchReport r;
    r.host = json::getStr(doc, "host");
    r.sanitized = json::getBool(doc, "sanitized", false);
    r.predictor = json::getStr(doc, "predictor");
    r.instrs = json::getU64(doc, "instrs", 0);
    r.reps = static_cast<unsigned>(json::getU64(doc, "reps", 0));
    r.seed = json::getU64(doc, "seed", 1);

    const std::size_t wpos = json::valuePos(doc, "workloads");
    if (wpos != std::string::npos && doc[wpos] == '[')
        r.workloads = json::innerStrings(json::balancedSlice(doc, wpos));

    const std::size_t cpos = json::valuePos(doc, "configs");
    if (cpos == std::string::npos || doc[cpos] != '[')
        throw json::JsonError("bench report has no \"configs\" array");
    for (const std::string &obj :
         json::innerObjects(json::balancedSlice(doc, cpos))) {
        BenchConfigResult c;
        c.config = json::getStr(obj, "config");
        if (c.config.empty())
            throw json::JsonError("bench config entry without a name");
        c.committed = json::getU64(obj, "committed", 0);
        c.cycles = json::getU64(obj, "cycles", 0);
        c.wallSec = numberArray(obj, "wall_sec");
        r.configs.push_back(std::move(c));
    }
    if (r.configs.empty())
        throw json::JsonError("bench report has no configurations");
    return r;
}

std::vector<std::string>
benchRegressions(const BenchReport &baseline, const BenchReport &current,
                 double pct)
{
    std::vector<std::string> out;
    for (const BenchConfigResult &cur : current.configs) {
        const BenchConfigResult *base = nullptr;
        for (const BenchConfigResult &b : baseline.configs)
            if (b.config == cur.config)
                base = &b;
        if (!base)
            continue;
        const double was = base->minstrPerSec();
        const double now = cur.minstrPerSec();
        if (was <= 0.0 || now <= 0.0)
            continue;
        const double floor = was * (1.0 - pct / 100.0);
        if (now < floor) {
            out.push_back(csprintf(
                "%s: %.2f -> %.2f MInstr/s (-%.1f%%, gate %.0f%%)",
                cur.config.c_str(), was, now, (was - now) / was * 100.0,
                pct));
        }
    }
    return out;
}

} // namespace driver
} // namespace msp
