/**
 * @file
 * Campaign state backend: durable per-job completion state for
 * crash-safe, resumable, shardable campaigns.
 *
 * A campaign (sim or verify) is a deterministic list of jobs; this
 * module persists "job i completed with this serialised result" records
 * so a run killed at 50% can resume with `--resume FILE`, skip the
 * completed jobs, and still emit a final report byte-identical to an
 * uninterrupted run — the per-job payloads round-trip exactly (integer
 * counters and escaped strings only, no float re-formatting).
 *
 * The checkpoint file is line-oriented JSON (JSONL):
 *
 *   {"msp_checkpoint": 1, "mode": "matrix", "fingerprint": "...", "jobs": N}
 *   {"index": 3, "key": "9f2a...", "payload": {...}}
 *   ...
 *
 * One header, then one record per completed job, appended (and flushed)
 * every `--checkpoint-every N` completions. Appending keeps a
 * 10^6-job campaign O(1) per checkpoint; the price is that a crash can
 * tear the *trailing* record, so the loader drops (and quarantines to
 * FILE.torn) an unparseable or unterminated last line instead of
 * aborting the resume — every complete record before it is kept. A
 * torn line anywhere else is real corruption and fails loudly.
 *
 * The header fingerprint hashes every job key in submission order, so
 * resuming under a different command line (different matrix, machine,
 * seeds, shard…) is rejected instead of silently mixing results. The
 * payloads themselves are opaque here: each campaign serialises its own
 * result type (driver::simResultToJson / verify::outcomeToJson) — the
 * backend only stores and returns them.
 *
 * Sharding and merging live here too: shardSelect() deterministically
 * partitions a job list (`--shard i/N`), and mergeReports() folds the
 * per-shard JSON reports back into one document byte-identical to the
 * unsharded run's (rows are re-emitted verbatim, ordered by their
 * global "index"; summary counts are recomputed).
 */

#ifndef MSPLIB_DRIVER_STATE_HH
#define MSPLIB_DRIVER_STATE_HH

#include <cstdint>
#include <cstdio>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

namespace msp {
namespace driver {

/** A checkpoint that cannot be used (corrupt, or wrong campaign). */
struct CheckpointError : std::runtime_error
{
    using std::runtime_error::runtime_error;
};

/** FNV-1a of @p s as a 16-hex-digit string (job keys, fingerprints). */
std::string stateHash(const std::string &s);

/** Indices selected by shard @p shard of @p shards (stride layout). */
std::vector<std::size_t> shardSelect(std::size_t n, unsigned shard,
                                     unsigned shards);

/**
 * Durable completion state of one campaign run.
 *
 * Lifecycle: configure() names the file (and whether to resume from
 * it), begin() binds the backend to a concrete campaign — validating
 * any loaded records against the campaign's job keys and rewriting the
 * file (atomically) with the surviving records — then the campaign
 * calls completedPayload() to skip finished jobs and recordDone() as
 * jobs finish. finalFlush() (idempotent; also run by the destructor)
 * pushes any buffered records out.
 *
 * recordDone() is not internally locked: campaigns call it from their
 * progress-side critical section, which already serialises completions.
 */
class CampaignState
{
  public:
    CampaignState() = default;
    ~CampaignState();

    CampaignState(const CampaignState &) = delete;
    CampaignState &operator=(const CampaignState &) = delete;

    /**
     * Checkpoint to @p path every @p every completed jobs (>= 1).
     * With @p resume set, begin() first loads existing records from
     * @p resumePath (empty = @p path itself).
     */
    void configure(const std::string &path, unsigned every, bool resume,
                   const std::string &resumePath = "");

    bool enabled() const { return !path.empty(); }

    /**
     * Bind to a campaign: @p indices and @p keys are parallel arrays
     * (global job index, identity-hash key) in submission order. Loads
     * the resume file if configured — dropping and quarantining a torn
     * trailing record — validates mode/fingerprint/keys, and rewrites
     * the checkpoint file with the header plus all surviving records.
     *
     * @throws CheckpointError on a checkpoint from a different
     * campaign (mode, fingerprint, or per-record key mismatch) or one
     * corrupt beyond its trailing record.
     */
    void begin(const std::string &mode,
               const std::vector<std::uint64_t> &indices,
               const std::vector<std::string> &keys);

    /**
     * The stored payload of global job @p index, or nullptr when the
     * job has not completed in any previous run.
     */
    const std::string *completedPayload(std::uint64_t index) const;

    /** Completed records currently held (loaded + recorded). */
    std::size_t completedCount() const { return records.size(); }

    /** Records dropped from the torn tail of the resumed file. */
    std::size_t tornRecords() const { return torn; }

    /**
     * Record one completed job. Buffered; every `every` completions
     * the buffer is appended to the file and flushed. Call from the
     * campaign's completion critical section (not internally locked).
     */
    void recordDone(std::uint64_t index, const std::string &key,
                    const std::string &payload);

    /** Flush buffered records and close the file. Idempotent. */
    void finalFlush();

  private:
    void appendPending();

    std::string path;            ///< checkpoint file ("" = disabled)
    std::string resumePath;      ///< file to load on begin()
    unsigned every = 1;          ///< flush cadence in completed jobs
    bool resume = false;

    std::string mode;            ///< campaign mode bound by begin()
    std::string fingerprint;     ///< campaign identity hash
    std::map<std::uint64_t, std::string> keyByIndex;
    std::map<std::uint64_t, std::string> records;  ///< index -> payload
    std::vector<std::string> pendingLines;
    std::size_t torn = 0;
    std::FILE *file = nullptr;   ///< append handle between flushes
};

/**
 * Fold shard reports into one document byte-identical to the unsharded
 * run's. All inputs must be the same kind of report — either driver
 * campaign reports ({"jobs": [...]}) or verify reports
 * ({"verify": {...}}). Rows are ordered by their "index" field and
 * re-emitted verbatim; verify summary counts (jobs, divergent,
 * skipped, shrink_timed_out) are recomputed from the merged rows.
 *
 * @throws CheckpointError on an unrecognised document, mixed report
 * kinds, or two rows claiming the same index (overlapping shards).
 */
std::string mergeReports(const std::vector<std::string> &docs);

// ---- cooperative interruption (signal -> campaign) ------------------------

/**
 * Request that running campaigns stop starting new jobs (in-flight
 * jobs finish and are checkpointed). Async-signal-safe: a relaxed
 * atomic store. setCampaignStop(false) re-arms (tests).
 */
void setCampaignStop(bool stop);

/** True once setCampaignStop(true) was called. */
bool campaignStopRequested();

} // namespace driver
} // namespace msp

#endif // MSPLIB_DRIVER_STATE_HH
