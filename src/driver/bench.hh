/**
 * @file
 * Simulator *throughput* benchmarking: how many simulated instructions
 * per wall-clock second the host sustains, per machine configuration.
 *
 * This is deliberately separate from the figure/ablation harnesses in
 * bench/ — those measure the *simulated machine* (IPC); this measures
 * the *simulator* (MInstr/s), which is what hot-path optimisation work
 * must not regress. `msp_sim bench` renders a BENCH_throughput.json
 * report through these helpers; CI gates pull requests against the
 * committed baseline of the same host fingerprint.
 *
 * Measurement discipline:
 *  - single-threaded, sequential runs (optionally CPU-pinned by the
 *    CLI) — thread scheduling noise never enters the numbers;
 *  - each configuration is timed over the full workload set, repeated
 *    `reps` times; the *best* repetition is the throughput figure (the
 *    minimum wall time is the run least disturbed by the host);
 *  - committed-instruction and cycle counts must be bit-identical
 *    across repetitions (the simulator is deterministic; a mismatch
 *    means the build is broken and the timing numbers are garbage);
 *  - sanitized builds are detected and flagged — their timings are
 *    meaningless and must never become a baseline.
 */

#ifndef MSPLIB_DRIVER_BENCH_HH
#define MSPLIB_DRIVER_BENCH_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/machine.hh"

namespace msp {
namespace driver {

/** Report format identity; readers reject anything else. */
inline constexpr const char *benchSchemaId = "msp-bench-v1";

/** What to measure (defaults reproduce the committed baseline). */
struct BenchOptions
{
    /** Preset names; empty = the Table I ladder with both references. */
    std::vector<std::string> configNames;
    /** Workload names; empty = gzip,gcc,swim,mcf (two int, two fp). */
    std::vector<std::string> workloads;
    PredictorKind predictor = PredictorKind::Gshare;
    std::uint64_t instrs = 200000;  ///< committed budget per run
    unsigned reps = 3;              ///< timed repetitions per config
    std::uint64_t seed = 1;         ///< workload-synthesis seed
};

/** Measured throughput of one configuration. */
struct BenchConfigResult
{
    std::string config;
    std::uint64_t committed = 0;  ///< total over the workload set
    std::uint64_t cycles = 0;     ///< total over the workload set
    std::vector<double> wallSec;  ///< one entry per repetition

    /** Fastest repetition (least host interference). */
    double bestWallSec() const;

    /** Committed MInstr per wall-clock second, best repetition. */
    double minstrPerSec() const;

    /** Simulated Mcycles per wall-clock second, best repetition. */
    double mcyclesPerSec() const;
};

/** One complete throughput measurement. */
struct BenchReport
{
    std::string host;             ///< hostFingerprint() of the machine
    bool sanitized = false;       ///< built with a sanitizer
    std::string predictor;        ///< "gshare" or "tage"
    std::uint64_t instrs = 0;
    unsigned reps = 0;
    std::uint64_t seed = 1;
    std::vector<std::string> workloads;
    std::vector<BenchConfigResult> configs;
};

/**
 * Stable identity of this host for baseline comparison: architecture,
 * CPU model and hardware-thread count. Two runs on the same machine
 * fingerprint identically; CI skips the regression gate (loudly) when
 * the fingerprints differ, because MInstr/s across different hosts is
 * not a regression signal.
 */
std::string hostFingerprint();

/**
 * True when this binary was built under ASan/TSan/MSan (compiler
 * macros) or with any -fsanitize flag (the MSP_SANITIZED_BUILD define
 * CMake injects — UBSan sets no detection macro of its own).
 */
bool sanitizedBuild();

/** Called after each timed repetition of each config. */
using BenchProgressFn = std::function<void(
    const std::string &config, unsigned rep, unsigned reps,
    double wallSec)>;

/**
 * Run the measurement: sequential, on the calling thread. Workloads
 * are synthesised once and shared; each (config, repetition) times the
 * full workload set back-to-back. @throws SpecError on an unknown
 * preset name, msp_fatal if committed/cycle counts differ between
 * repetitions (a non-deterministic simulator has no valid throughput).
 */
BenchReport runThroughputBench(const BenchOptions &o,
                               const BenchProgressFn &progress = nullptr);

/** Serialise @p r as the BENCH_throughput.json document. */
std::string benchReportToJson(const BenchReport &r);

/**
 * Parse a report written by benchReportToJson. @throws json::JsonError
 * on a missing/foreign schema tag, malformed numbers, or a report with
 * no configurations.
 */
BenchReport benchReportFromJson(const std::string &doc);

/**
 * Regression check: configurations in @p current whose MInstr/s fell
 * more than @p pct percent below the same-named configuration in
 * @p baseline. Configurations missing from either side are ignored
 * (ladders may grow). @return human-readable violation lines, empty
 * when the gate passes.
 */
std::vector<std::string> benchRegressions(const BenchReport &baseline,
                                          const BenchReport &current,
                                          double pct);

} // namespace driver
} // namespace msp

#endif // MSPLIB_DRIVER_BENCH_HH
