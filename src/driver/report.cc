#include "driver/report.hh"

#include <cstdio>

#include "common/json.hh"
#include "common/logging.hh"
#include "sim/presets.hh"
#include "sim/spec.hh"

namespace msp {
namespace driver {

namespace {

/**
 * The flat per-job record shared by both serialisers. Fields are
 * emitted in registration order here (and the embedded machine spec in
 * sim/spec.hh registration order), so reports diff stably run-to-run.
 */
struct Field
{
    const char *name;
    enum { Str, U64, F64, Json } kind;   ///< Json: raw, JSON-only
    std::string s;
    std::uint64_t u = 0;
    double f = 0.0;
};

std::vector<Field>
fieldsOf(const JobResult &jr, bool withMachine)
{
    const RunResult &r = jr.result;
    auto str = [](const char *n, std::string v) {
        return Field{n, Field::Str, std::move(v)};
    };
    auto u64 = [](const char *n, std::uint64_t v) {
        Field f{n, Field::U64};
        f.u = v;
        return f;
    };
    auto f64 = [](const char *n, double v) {
        Field f{n, Field::F64};
        f.f = v;
        return f;
    };
    auto raw = [](const char *n, std::string v) {
        return Field{n, Field::Json, std::move(v)};
    };
    return {
        u64("index", jr.index),
        str("scenario", jr.job.scenario),
        str("workload", r.workload),
        str("config", r.config),
        // The complete machine spec, not just its display name: any
        // job in a JSON report can be rebuilt exactly (feed the object
        // to `msp_sim ... --machine FILE`). JSON-only — rendering it
        // per row would be wasted work on the flat CSV path.
        withMachine ? raw("machine", specToJson(jr.job.config))
                    : Field{"machine", Field::Json, ""},
        str("predictor", predictorName(jr.job.config.predictor)),
        u64("seed", jr.job.seed),
        u64("max_insts",
            jr.job.maxInsts ? jr.job.maxInsts : defaultInstBudget()),
        u64("cycles", r.cycles),
        u64("committed", r.committed),
        f64("ipc", r.ipc()),
        u64("branches", r.branches),
        u64("mispredicts", r.mispredicts),
        f64("mispredict_rate", r.mispredictRate()),
        u64("recoveries", r.recoveries),
        u64("wrong_path_exec", r.wrongPathExec),
        u64("re_executed", r.reExecuted),
        u64("total_executed", r.totalExecuted),
        u64("rename_stall_cycles", r.renameStallCycles),
        u64("reg_stall_cycles", r.regStallCycles),
        u64("sq_stall_cycles", r.sqStallCycles),
        u64("iq_stall_cycles", r.iqStallCycles),
        u64("checkpoints_taken", r.checkpointsTaken),
        u64("l2_misses", r.l2Misses),
    };
}

std::string
numStr(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.6g", v);
    return buf;
}

} // namespace

std::string
jsonEscape(const std::string &s)
{
    return json::escape(s);
}

std::string
toJson(const std::vector<JobResult> &results)
{
    std::string out = "{\n  \"jobs\": [";
    std::size_t emitted = 0;
    for (std::size_t i = 0; i < results.size(); ++i) {
        // Jobs an interrupted campaign never ran have no result to
        // report: a partial report carries only completed rows.
        if (!results[i].ran)
            continue;
        out += emitted++ ? ",\n    {" : "\n    {";
        const auto fields = fieldsOf(results[i], true);
        for (std::size_t fi = 0; fi < fields.size(); ++fi) {
            const Field &f = fields[fi];
            out += fi ? ", " : "";
            out += '"';
            out += f.name;
            out += "\": ";
            switch (f.kind) {
              case Field::Str:
                out += '"' + jsonEscape(f.s) + '"';
                break;
              case Field::U64:
                out += std::to_string(f.u);
                break;
              case Field::F64:
                out += numStr(f.f);
                break;
              case Field::Json:
                out += f.s;   // pre-rendered JSON value
                break;
            }
        }
        out += '}';
    }
    out += "\n  ]\n}\n";
    return out;
}

std::string
toCsv(const std::vector<JobResult> &results)
{
    std::string out;
    if (results.empty())
        return out;
    auto csvQuote = [](const std::string &s) {
        // \r counts as a line break to CSV readers just like \n: an
        // unquoted carriage return splits the record.
        if (s.find_first_of(",\"\n\r") == std::string::npos)
            return s;
        std::string q = "\"";
        for (char c : s) {
            if (c == '"')
                q += '"';
            q += c;
        }
        q += '"';
        return q;
    };
    // CSV stays flat: structured (Json) fields are JSON-report-only
    // and not even rendered for this path.
    const auto head = fieldsOf(results.front(), false);
    bool first = true;
    for (const Field &f : head) {
        if (f.kind == Field::Json)
            continue;
        out += first ? "" : ",";
        out += f.name;
        first = false;
    }
    out += '\n';
    for (const auto &jr : results) {
        if (!jr.ran)
            continue;
        const auto fields = fieldsOf(jr, false);
        first = true;
        for (const Field &f : fields) {
            if (f.kind == Field::Json)
                continue;
            out += first ? "" : ",";
            switch (f.kind) {
              case Field::Str: out += csvQuote(f.s); break;
              case Field::U64: out += std::to_string(f.u); break;
              case Field::F64: out += numStr(f.f); break;
              case Field::Json: break;
            }
            first = false;
        }
        out += '\n';
    }
    return out;
}

void
writeFile(const std::string &path, const std::string &content)
{
    // Write-then-rename: the temporary lives in the same directory so
    // the rename is atomic on POSIX filesystems. A crash mid-write
    // leaves only the .tmp file behind; the destination is either the
    // complete old document or the complete new one, never a torn mix.
    const std::string tmp = path + ".tmp";
    std::FILE *f = std::fopen(tmp.c_str(), "w");
    if (!f)
        msp_fatal("cannot open %s for writing", tmp.c_str());
    const std::size_t n =
        std::fwrite(content.data(), 1, content.size(), f);
    if (std::fclose(f) != 0 || n != content.size()) {
        std::remove(tmp.c_str());
        msp_fatal("short write to %s", tmp.c_str());
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        msp_fatal("cannot rename %s into place", tmp.c_str());
    }
}

bool
tryReadFile(const std::string &path, std::string &out)
{
    std::FILE *f = std::fopen(path.c_str(), "r");
    if (!f)
        return false;
    out.clear();
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        out.append(buf, n);
    const bool bad = std::ferror(f);
    std::fclose(f);
    return !bad;
}

std::string
readFile(const std::string &path)
{
    std::string content;
    if (!tryReadFile(path, content))
        msp_fatal("cannot read %s", path.c_str());
    return content;
}

} // namespace driver
} // namespace msp
