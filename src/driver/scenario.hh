/**
 * @file
 * Named simulation scenarios: the paper's figure and ablation sweeps
 * expressed as declarative campaign-job tables.
 *
 * Each scenario pairs a job builder (the preset × workload ×
 * predictor × parameter matrix) with a report function that formats
 * the finished JobResults into the tables and headline ratios the
 * paper quotes. Adding a sweep is one entry in scenarios() — not a
 * new binary; the bench_fig and bench_ablation executables and the
 * msp_sim CLI are thin wrappers over runScenario().
 */

#ifndef MSPLIB_DRIVER_SCENARIO_HH
#define MSPLIB_DRIVER_SCENARIO_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "driver/campaign.hh"

namespace msp {
namespace driver {

/** One named sweep: how to build its jobs and print its report. */
struct Scenario
{
    std::string name;   ///< CLI key, e.g. "fig6"
    std::string title;  ///< header line, e.g. "Reproduction of Fig. 6 ..."

    /**
     * The sweep as a grid document (sim/grid.hh). Every scenario is
     * data: build() is grid::expand(gridJson) piped through gridJobs().
     * The same documents ship as examples/grids/<name>.json.
     */
    std::string gridJson;

    /** Produce the job list; @p maxInsts is the per-run budget. */
    std::function<std::vector<CampaignJob>(std::uint64_t maxInsts)> build;

    /** Print the scenario's tables/summary for the finished jobs. */
    std::function<void(const std::vector<JobResult> &)> report;
};

/** All registered scenarios, in presentation order. */
const std::vector<Scenario> &scenarios();

/** Look up a scenario by name; nullptr when unknown. */
const Scenario *findScenario(const std::string &name);

/**
 * Build, run and report one scenario.
 *
 * @param name     Scenario key (see scenarios()).
 * @param threads  Worker threads (0 = hardware concurrency).
 * @param maxInsts Per-run budget (0 = defaultInstBudget()).
 * @param verbose  Print the header and per-job progress.
 * @return The raw results (for JSON/CSV serialisation).
 */
std::vector<JobResult> runScenario(const std::string &name,
                                   unsigned threads = 0,
                                   std::uint64_t maxInsts = 0,
                                   bool verbose = true);

/** The Figs. 6-8 machine ladder for one predictor. */
std::vector<MachineConfig> figureLadder(PredictorKind predictor);

/** Sum of the three largest per-bank stall-cycle counts (Figs. 6-8). */
std::uint64_t top3BankStalls(const RunResult &r);

/** Arithmetic mean. */
double mean(const std::vector<double> &xs);

} // namespace driver
} // namespace msp

#endif // MSPLIB_DRIVER_SCENARIO_HH
