#include "driver/campaign.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <map>
#include <mutex>
#include <thread>
#include <utility>

#include "workload/spec.hh"

namespace msp {
namespace driver {

std::uint64_t
defaultInstBudget()
{
    if (const char *env = std::getenv("MSP_BENCH_INSTRS")) {
        const long long v = std::atoll(env);
        if (v > 0)
            return static_cast<std::uint64_t>(v);
    }
    // Keeps the full "for b in bench/*" sweep under ~10 minutes.
    // Raise (e.g. MSP_BENCH_INSTRS=300000) for tighter numbers.
    return 60000;
}

std::uint64_t
jobSeed(std::uint64_t base, std::uint64_t index)
{
    std::uint64_t z = base + (index + 1) * 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    z ^= z >> 31;
    return z ? z : 1;
}

SimCampaign::SimCampaign(unsigned threads) : requestedThreads(threads)
{
}

std::size_t
SimCampaign::add(CampaignJob job)
{
    jobs.push_back(std::move(job));
    return jobs.size() - 1;
}

std::vector<CampaignJob>
matrixJobs(const std::string &scenario,
           const std::vector<std::string> &workloads,
           const std::vector<MachineConfig> &configs,
           std::uint64_t maxInsts, std::uint64_t seed)
{
    std::vector<CampaignJob> out;
    out.reserve(workloads.size() * configs.size());
    for (const auto &w : workloads) {
        for (const auto &c : configs) {
            CampaignJob j;
            j.scenario = scenario;
            j.workload = w;
            j.config = c;
            j.maxInsts = maxInsts;
            j.seed = seed;
            out.push_back(std::move(j));
        }
    }
    return out;
}

void
SimCampaign::addMatrix(const std::vector<std::string> &workloads,
                       const std::vector<MachineConfig> &configs,
                       std::uint64_t maxInsts, std::uint64_t seed,
                       const std::string &scenario)
{
    for (auto &j : matrixJobs(scenario, workloads, configs, maxInsts, seed))
        add(std::move(j));
}

unsigned
effectivePoolThreads(unsigned threads, std::size_t n)
{
    unsigned t = threads;
    if (t == 0) {
        t = std::thread::hardware_concurrency();
        if (t == 0)
            t = 1;
    }
    if (t > n)
        t = static_cast<unsigned>(n);
    return t ? t : 1;
}

void
parallelFor(unsigned threads, std::size_t n,
            const std::function<void(std::size_t)> &fn)
{
    std::atomic<std::size_t> next{0};
    std::mutex mu;              // guards firstError
    std::exception_ptr firstError;

    auto worker = [&]() {
        for (;;) {
            const std::size_t i = next.fetch_add(1);
            if (i >= n)
                return;
            try {
                fn(i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(mu);
                if (!firstError)
                    firstError = std::current_exception();
                return;
            }
        }
    };

    const unsigned t = effectivePoolThreads(threads, n);
    if (t <= 1) {
        worker();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(t - 1);
        for (unsigned k = 0; k + 1 < t; ++k)
            pool.emplace_back(worker);
        worker();
        for (auto &th : pool)
            th.join();
    }
    if (firstError)
        std::rethrow_exception(firstError);
}

unsigned
SimCampaign::effectiveThreads() const
{
    return effectivePoolThreads(requestedThreads, jobs.size());
}

std::vector<JobResult>
SimCampaign::run(const ProgressFn &progress)
{
    // Synthesise each distinct workload once, sequentially, so the
    // generation order (and thus every program image) never depends on
    // worker scheduling.
    std::map<std::pair<std::string, std::uint64_t>,
             std::shared_ptr<const Program>> programs;
    for (auto &j : jobs) {
        if (j.program)
            continue;
        const auto key = std::make_pair(j.workload, j.seed);
        auto it = programs.find(key);
        if (it == programs.end()) {
            it = programs.emplace(key, std::make_shared<Program>(
                                      spec::build(j.workload, j.seed)))
                     .first;
        }
        j.program = it->second;
    }

    std::vector<JobResult> out(jobs.size());
    std::size_t done = 0;
    std::mutex mu;              // guards done + progress callback

    parallelFor(requestedThreads, jobs.size(), [&](std::size_t i) {
        const CampaignJob &j = jobs[i];
        Machine m(j.config, *j.program);
        RunResult r =
            m.run(j.maxInsts ? j.maxInsts : defaultInstBudget(),
                  j.maxCycles);
        out[i] = JobResult{i, j, std::move(r)};

        std::lock_guard<std::mutex> lock(mu);
        ++done;
        if (progress)
            progress(out[i], done, jobs.size());
    });
    return out;
}

ProgressFn
SimCampaign::stderrProgress()
{
    return [](const JobResult &jr, std::size_t done, std::size_t total) {
        std::fprintf(stderr, "  [%zu/%zu %s/%s done]\n", done, total,
                     jr.job.config.name.c_str(),
                     jr.result.workload.c_str());
    };
}

} // namespace driver
} // namespace msp
