#include "driver/campaign.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <map>
#include <mutex>
#include <thread>
#include <utility>

#include "common/json.hh"
#include "common/logging.hh"
#include "driver/state.hh"
#include "sim/spec.hh"
#include "workload/registry.hh"

namespace msp {
namespace driver {

std::uint64_t
defaultInstBudget()
{
    if (const char *env = std::getenv("MSP_BENCH_INSTRS")) {
        const long long v = std::atoll(env);
        if (v > 0)
            return static_cast<std::uint64_t>(v);
    }
    // Keeps the full "for b in bench/*" sweep under ~10 minutes.
    // Raise (e.g. MSP_BENCH_INSTRS=300000) for tighter numbers.
    return 60000;
}

std::uint64_t
jobSeed(std::uint64_t base, std::uint64_t index)
{
    std::uint64_t z = base + (index + 1) * 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    z ^= z >> 31;
    return z ? z : 1;
}

SimCampaign::SimCampaign(unsigned threads) : requestedThreads(threads)
{
}

std::size_t
SimCampaign::add(CampaignJob job)
{
    jobs.push_back(std::move(job));
    return jobs.size() - 1;
}

std::vector<CampaignJob>
matrixJobs(const std::string &scenario,
           const std::vector<std::string> &workloads,
           const std::vector<MachineConfig> &configs,
           std::uint64_t maxInsts, std::uint64_t seed)
{
    std::vector<CampaignJob> out;
    out.reserve(workloads.size() * configs.size());
    for (const auto &w : workloads) {
        for (const auto &c : configs) {
            CampaignJob j;
            j.scenario = scenario;
            j.workload = w;
            j.config = c;
            j.maxInsts = maxInsts;
            j.seed = seed;
            out.push_back(std::move(j));
        }
    }
    return out;
}

std::vector<CampaignJob>
gridJobs(const std::string &scenario, const grid::Grid &grid,
         std::uint64_t maxInsts, std::uint64_t seed)
{
    std::vector<CampaignJob> out;
    out.reserve(grid.points.size());
    for (const grid::GridPoint &pt : grid.points) {
        if (pt.workload.empty()) {
            throw SpecError(csprintf(
                "grid point '%s' binds no workload (add a "
                "workload.name or workload.trace axis)",
                pt.label.c_str()));
        }
        CampaignJob j;
        j.scenario = scenario;
        j.workload = pt.workload;
        j.config = pt.machine;
        j.maxInsts = maxInsts;
        j.seed = pt.hasSeed ? pt.seed : seed;
        out.push_back(std::move(j));
    }
    return out;
}

void
SimCampaign::addMatrix(const std::vector<std::string> &workloads,
                       const std::vector<MachineConfig> &configs,
                       std::uint64_t maxInsts, std::uint64_t seed,
                       const std::string &scenario)
{
    for (auto &j : matrixJobs(scenario, workloads, configs, maxInsts, seed))
        add(std::move(j));
}

unsigned
effectivePoolThreads(unsigned threads, std::size_t n)
{
    unsigned t = threads;
    if (t == 0) {
        t = std::thread::hardware_concurrency();
        if (t == 0)
            t = 1;
    }
    if (t > n)
        t = static_cast<unsigned>(n);
    return t ? t : 1;
}

void
parallelFor(unsigned threads, std::size_t n,
            const std::function<void(std::size_t)> &fn)
{
    std::atomic<std::size_t> next{0};
    std::mutex mu;              // guards firstError
    std::exception_ptr firstError;

    auto worker = [&]() {
        for (;;) {
            const std::size_t i = next.fetch_add(1);
            if (i >= n)
                return;
            try {
                fn(i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(mu);
                if (!firstError)
                    firstError = std::current_exception();
                return;
            }
        }
    };

    const unsigned t = effectivePoolThreads(threads, n);
    if (t <= 1) {
        worker();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(t - 1);
        for (unsigned k = 0; k + 1 < t; ++k)
            pool.emplace_back(worker);
        worker();
        for (auto &th : pool)
            th.join();
    }
    if (firstError)
        std::rethrow_exception(firstError);
}

unsigned
SimCampaign::effectiveThreads() const
{
    return effectivePoolThreads(requestedThreads, jobs.size());
}

void
SimCampaign::restrictToShard(unsigned shard, unsigned shards)
{
    const std::vector<std::size_t> keep =
        shardSelect(jobs.size(), shard, shards);
    std::vector<CampaignJob> kept;
    std::vector<std::uint64_t> indices;
    kept.reserve(keep.size());
    indices.reserve(keep.size());
    for (std::size_t i : keep) {
        indices.push_back(globalIndex.empty() ? i : globalIndex[i]);
        kept.push_back(std::move(jobs[i]));
    }
    jobs = std::move(kept);
    globalIndex = std::move(indices);
}

std::string
simJobKey(const CampaignJob &job)
{
    std::string identity = job.scenario + "|" + job.workload + "|";
    identity += csprintf("%llu|%llu|%llu|",
                         static_cast<unsigned long long>(job.seed),
                         static_cast<unsigned long long>(job.maxInsts),
                         static_cast<unsigned long long>(job.maxCycles));
    // Pre-built programs can't be hashed from the job alone; their
    // name is the best stable identity available (campaign CLI paths
    // never set one — workload::build regenerates from workload + seed).
    if (job.program)
        identity += job.program->name + "|";
    identity += specToJson(job.config);
    return stateHash(identity);
}

std::string
simResultToJson(const RunResult &r)
{
    std::string out = "{";
    out += csprintf("\"workload\": \"%s\", ",
                    json::escape(r.workload).c_str());
    out += csprintf("\"config\": \"%s\", ",
                    json::escape(r.config).c_str());
    const auto u64 = [&](const char *name, std::uint64_t v) {
        out += csprintf("\"%s\": %llu, ", name,
                        static_cast<unsigned long long>(v));
    };
    u64("cycles", r.cycles);
    u64("committed", r.committed);
    u64("wrong_path_exec", r.wrongPathExec);
    u64("re_executed", r.reExecuted);
    u64("total_executed", r.totalExecuted);
    u64("branches", r.branches);
    u64("mispredicts", r.mispredicts);
    u64("recoveries", r.recoveries);
    u64("exceptions", r.exceptions);
    u64("rename_stall_cycles", r.renameStallCycles);
    u64("reg_stall_cycles", r.regStallCycles);
    u64("sq_stall_cycles", r.sqStallCycles);
    u64("iq_stall_cycles", r.iqStallCycles);
    u64("checkpoints_taken", r.checkpointsTaken);
    u64("l2_misses", r.l2Misses);
    out += "\"bank_stall_cycles\": [";
    for (std::size_t i = 0; i < r.bankStallCycles.size(); ++i) {
        out += csprintf("%s%llu", i ? ", " : "",
                        static_cast<unsigned long long>(
                            r.bankStallCycles[i]));
    }
    out += "]}";
    return out;
}

RunResult
simResultFromJson(const std::string &doc)
{
    RunResult r;
    r.workload = json::getStr(doc, "workload");
    r.config = json::getStr(doc, "config");
    r.cycles = json::getU64(doc, "cycles", 0);
    r.committed = json::getU64(doc, "committed", 0);
    r.wrongPathExec = json::getU64(doc, "wrong_path_exec", 0);
    r.reExecuted = json::getU64(doc, "re_executed", 0);
    r.totalExecuted = json::getU64(doc, "total_executed", 0);
    r.branches = json::getU64(doc, "branches", 0);
    r.mispredicts = json::getU64(doc, "mispredicts", 0);
    r.recoveries = json::getU64(doc, "recoveries", 0);
    r.exceptions = json::getU64(doc, "exceptions", 0);
    r.renameStallCycles = json::getU64(doc, "rename_stall_cycles", 0);
    r.regStallCycles = json::getU64(doc, "reg_stall_cycles", 0);
    r.sqStallCycles = json::getU64(doc, "sq_stall_cycles", 0);
    r.iqStallCycles = json::getU64(doc, "iq_stall_cycles", 0);
    r.checkpointsTaken = json::getU64(doc, "checkpoints_taken", 0);
    r.l2Misses = json::getU64(doc, "l2_misses", 0);
    const std::size_t at = json::valuePos(doc, "bank_stall_cycles");
    if (at != std::string::npos && at < doc.size() && doc[at] == '[') {
        const std::string arr = json::balancedSlice(doc, at);
        std::size_t slot = 0, p = 1;
        while (p < arr.size() && slot < r.bankStallCycles.size()) {
            while (p < arr.size() &&
                   (arr[p] < '0' || arr[p] > '9')) {
                ++p;
            }
            if (p >= arr.size())
                break;
            char *end = nullptr;
            r.bankStallCycles[slot++] =
                std::strtoull(arr.c_str() + p, &end, 10);
            p = static_cast<std::size_t>(end - arr.c_str());
        }
    }
    return r;
}

std::vector<JobResult>
SimCampaign::run(const ProgressFn &progress)
{
    const auto gidx = [&](std::size_t i) {
        return globalIndex.empty() ? i : globalIndex[i];
    };

    // Bind the state backend: compute every job's identity key, load
    // any resumed records (validated against those keys), and learn
    // which jobs are already done.
    std::vector<std::string> keys;
    const bool durable = state && state->enabled();
    if (durable) {
        std::vector<std::uint64_t> indices;
        indices.reserve(jobs.size());
        keys.reserve(jobs.size());
        for (std::size_t i = 0; i < jobs.size(); ++i) {
            indices.push_back(gidx(i));
            keys.push_back(simJobKey(jobs[i]));
        }
        state->begin("sim", indices, keys);
    }
    const auto restored = [&](std::size_t i) -> const std::string * {
        return durable ? state->completedPayload(gidx(i)) : nullptr;
    };

    // Synthesise each distinct workload once, sequentially, so the
    // generation order (and thus every program image) never depends on
    // worker scheduling. Jobs whose results the checkpoint restored
    // never run, so their programs aren't needed (or built) at all.
    std::map<std::pair<std::string, std::uint64_t>,
             std::shared_ptr<const Program>> programs;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        CampaignJob &j = jobs[i];
        if (j.program || restored(i))
            continue;
        const auto key = std::make_pair(j.workload, j.seed);
        auto it = programs.find(key);
        if (it == programs.end()) {
            it = programs.emplace(key, std::make_shared<Program>(
                                      workload::build(j.workload, j.seed)))
                     .first;
        }
        j.program = it->second;
    }

    std::vector<JobResult> out(jobs.size());
    std::size_t done = 0;
    std::mutex mu;              // guards done + progress + state

    parallelFor(requestedThreads, jobs.size(), [&](std::size_t i) {
        const CampaignJob &j = jobs[i];
        bool fresh = false;
        if (const std::string *payload = restored(i)) {
            out[i] = JobResult{gidx(i), j, simResultFromJson(*payload)};
        } else if (campaignStopRequested()) {
            // Interrupted: report the slot as never-run; the next
            // --resume picks it up.
            out[i] = JobResult{gidx(i), j, RunResult{}, false};
            return;
        } else {
            Machine m(j.config, *j.program);
            RunResult r =
                m.run(j.maxInsts ? j.maxInsts : defaultInstBudget(),
                      j.maxCycles);
            out[i] = JobResult{gidx(i), j, std::move(r)};
            fresh = true;
        }

        std::lock_guard<std::mutex> lock(mu);
        if (fresh && durable)
            state->recordDone(gidx(i), keys[i],
                              simResultToJson(out[i].result));
        ++done;
        if (progress)
            progress(out[i], done, jobs.size());
    });
    if (durable)
        state->finalFlush();
    return out;
}

ProgressFn
SimCampaign::stderrProgress()
{
    return [](const JobResult &jr, std::size_t done, std::size_t total) {
        std::fprintf(stderr, "  [%zu/%zu %s/%s done]\n", done, total,
                     jr.job.config.name.c_str(),
                     jr.result.workload.c_str());
    };
}

} // namespace driver
} // namespace msp
