/**
 * @file
 * Hierarchical (two-level) store queue, after CPR (Akkary et al.).
 *
 * Young stores live in the fast L1 SQ; overflow spills (logically) into
 * the large L2 SQ. Forwarding from the L2 region costs extra search
 * latency; a CPR rollback must scan the L2 region, which costs cycles
 * proportional to the number of entries scanned (Sec. 1 of the paper).
 * MSP releases entries by StateId broadcast instead — no scan.
 */

#ifndef MSPLIB_LSQ_STORE_QUEUE_HH
#define MSPLIB_LSQ_STORE_QUEUE_HH

#include <cstdint>
#include <deque>

#include "common/logging.hh"
#include "common/types.hh"

namespace msp {

/** One pending (uncommitted) store. */
struct SqEntry
{
    SeqNum seq = invalidSeqNum;
    Addr addr = invalidAddr;
    bool addrKnown = false;
    std::uint64_t data = 0;
    bool dataKnown = false;
};

/** Outcome of a forwarding probe. */
struct ForwardResult
{
    enum class Kind {
        None,      ///< no older matching store: go to the cache
        Forward,   ///< value available from the queue
        Stall,     ///< older matching store's data not yet known
        Unknown,   ///< an older store's address is unresolved: wait
    };
    Kind kind = Kind::None;
    std::uint64_t data = 0;
    Cycle extraLatency = 0;   ///< L2-region search penalty
};

/** The two-level store queue. */
class HierStoreQueue
{
  public:
    /**
     * @param l1Entries Fast-level capacity.
     * @param l2Entries Second-level capacity (0 = no second level).
     * @param infinite  Ignore capacity limits (ideal MSP).
     * @param l2SearchLatency Extra cycles to forward from the L2 region.
     */
    HierStoreQueue(unsigned l1Entries, unsigned l2Entries, bool infinite,
                   Cycle l2SearchLatency = 4)
        : l1Cap(l1Entries), l2Cap(l2Entries), unbounded(infinite),
          l2Lat(l2SearchLatency)
    {}

    /** True when another store can be accepted. */
    bool
    canAllocate() const
    {
        return unbounded || entries.size() < l1Cap + l2Cap;
    }

    /** Append a store in program order; address/data arrive later. */
    void
    allocate(SeqNum seq)
    {
        msp_assert(canAllocate(), "SQ overflow");
        msp_assert(entries.empty() || entries.back().seq < seq,
                   "SQ allocation out of program order");
        entries.push_back(SqEntry{seq});
    }

    /** Fill in the resolved address and data of store @p seq. */
    void
    resolve(SeqNum seq, Addr addr, std::uint64_t data)
    {
        SqEntry *e = find(seq);
        msp_assert(e, "resolve of absent store %llu",
                   static_cast<unsigned long long>(seq));
        e->addr = addr;
        e->addrKnown = true;
        e->data = data;
        e->dataKnown = true;
    }

    /**
     * Probe for a load at @p addr with sequence number @p loadSeq.
     *
     * Scans older stores youngest-first. An older store with an unknown
     * address forces the load to wait (conservative, violation-free
     * disambiguation — identical policy for every core).
     */
    ForwardResult
    probe(SeqNum loadSeq, Addr addr) const
    {
        ForwardResult r;
        // Walk from youngest to oldest.
        for (std::size_t i = entries.size(); i-- > 0;) {
            const SqEntry &e = entries[i];
            if (e.seq >= loadSeq)
                continue;
            if (!e.addrKnown) {
                r.kind = ForwardResult::Kind::Unknown;
                return r;
            }
            if (e.addr == addr) {
                if (!e.dataKnown) {
                    r.kind = ForwardResult::Kind::Stall;
                    return r;
                }
                r.kind = ForwardResult::Kind::Forward;
                r.data = e.data;
                // Entries beyond the youngest l1Cap are in the L2 region.
                if (entries.size() > l1Cap && i < entries.size() - l1Cap)
                    r.extraLatency = l2Lat;
                return r;
            }
        }
        return r;
    }

    /** Oldest entry (the next to drain); nullptr when empty. */
    const SqEntry *
    oldest() const
    {
        return entries.empty() ? nullptr : &entries.front();
    }

    /** Drain the oldest entry (must match @p seq). */
    void
    drainOldest(SeqNum seq)
    {
        msp_assert(!entries.empty() && entries.front().seq == seq,
                   "drain order violation");
        msp_assert(entries.front().addrKnown && entries.front().dataKnown,
                   "draining unresolved store");
        entries.pop_front();
    }

    /**
     * Remove stores younger than @p boundary (squash).
     * @return Number of L2-region entries scanned (for the CPR rollback
     *         penalty model).
     */
    std::size_t
    squashAfter(SeqNum boundary)
    {
        std::size_t l2Scanned = 0;
        while (!entries.empty() && entries.back().seq > boundary) {
            if (entries.size() > l1Cap)
                ++l2Scanned;
            entries.pop_back();
        }
        return l2Scanned;
    }

    std::size_t size() const { return entries.size(); }
    bool empty() const { return entries.empty(); }

  private:
    SqEntry *
    find(SeqNum seq)
    {
        for (auto &e : entries)
            if (e.seq == seq)
                return &e;
        return nullptr;
    }

    std::deque<SqEntry> entries;
    std::size_t l1Cap;
    std::size_t l2Cap;
    bool unbounded;
    Cycle l2Lat;
};

} // namespace msp

#endif // MSPLIB_LSQ_STORE_QUEUE_HH
