/**
 * @file
 * Hierarchical (two-level) store queue, after CPR (Akkary et al.).
 *
 * Young stores live in the fast L1 SQ; overflow spills (logically) into
 * the large L2 SQ. Forwarding from the L2 region costs extra search
 * latency; a CPR rollback must scan the L2 region, which costs cycles
 * proportional to the number of entries scanned (Sec. 1 of the paper).
 * MSP releases entries by StateId broadcast instead — no scan.
 *
 * Layout: structure-of-arrays. Every associative operation touches the
 * seq lane first (and stores allocate in program order, so the lane is
 * sorted): the age boundary of a load probe and the target of a resolve
 * are found by binary search on the dense seq lane, and the youngest-
 * first forwarding walk then streams the flag/addr lanes without pulling
 * whole entries through the cache. Entries drain from the front by
 * advancing a head offset; the lanes are compacted wholesale once the
 * dead prefix outgrows the live region.
 */

#ifndef MSPLIB_LSQ_STORE_QUEUE_HH
#define MSPLIB_LSQ_STORE_QUEUE_HH

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"

namespace msp {

/** One pending (uncommitted) store (materialised view of the lanes). */
struct SqEntry
{
    SeqNum seq = invalidSeqNum;
    Addr addr = invalidAddr;
    bool addrKnown = false;
    std::uint64_t data = 0;
    bool dataKnown = false;
};

/** Outcome of a forwarding probe. */
struct ForwardResult
{
    enum class Kind {
        None,      ///< no older matching store: go to the cache
        Forward,   ///< value available from the queue
        Stall,     ///< older matching store's data not yet known
        Unknown,   ///< an older store's address is unresolved: wait
    };
    Kind kind = Kind::None;
    std::uint64_t data = 0;
    Cycle extraLatency = 0;   ///< L2-region search penalty
};

/** The two-level store queue. */
class HierStoreQueue
{
  public:
    /**
     * @param l1Entries Fast-level capacity.
     * @param l2Entries Second-level capacity (0 = no second level).
     * @param infinite  Ignore capacity limits (ideal MSP).
     * @param l2SearchLatency Extra cycles to forward from the L2 region.
     */
    HierStoreQueue(unsigned l1Entries, unsigned l2Entries, bool infinite,
                   Cycle l2SearchLatency = 4)
        : l1Cap(l1Entries), l2Cap(l2Entries), unbounded(infinite),
          l2Lat(l2SearchLatency)
    {}

    /** True when another store can be accepted. */
    bool
    canAllocate() const
    {
        return unbounded || size() < l1Cap + l2Cap;
    }

    /** Append a store in program order; address/data arrive later. */
    void
    allocate(SeqNum seq)
    {
        msp_assert(canAllocate(), "SQ overflow");
        msp_assert(empty() || seqLane.back() < seq,
                   "SQ allocation out of program order");
        seqLane.push_back(seq);
        addrLane.push_back(invalidAddr);
        dataLane.push_back(0);
        flagLane.push_back(0);
    }

    /** Fill in the resolved address and data of store @p seq. */
    void
    resolve(SeqNum seq, Addr addr, std::uint64_t data)
    {
        const std::size_t i = indexOf(seq);
        msp_assert(i != npos, "resolve of absent store %llu",
                   static_cast<unsigned long long>(seq));
        addrLane[i] = addr;
        dataLane[i] = data;
        flagLane[i] = kAddrKnown | kDataKnown;
    }

    /**
     * Probe for a load at @p addr with sequence number @p loadSeq.
     *
     * Scans older stores youngest-first. An older store with an unknown
     * address forces the load to wait (conservative, violation-free
     * disambiguation — identical policy for every core). The age
     * boundary comes from one binary search on the sorted seq lane;
     * everything below it is older, so the walk itself compares no
     * sequence numbers.
     */
    ForwardResult
    probe(SeqNum loadSeq, Addr addr) const
    {
        ForwardResult r;
        const std::size_t bound = lowerBound(loadSeq);
        for (std::size_t i = bound; i-- > head;) {
            if (!(flagLane[i] & kAddrKnown)) {
                r.kind = ForwardResult::Kind::Unknown;
                return r;
            }
            if (addrLane[i] == addr) {
                if (!(flagLane[i] & kDataKnown)) {
                    r.kind = ForwardResult::Kind::Stall;
                    return r;
                }
                r.kind = ForwardResult::Kind::Forward;
                r.data = dataLane[i];
                // Entries beyond the youngest l1Cap are in the L2 region.
                if (size() > l1Cap && i - head < size() - l1Cap)
                    r.extraLatency = l2Lat;
                return r;
            }
        }
        return r;
    }

    /** Oldest entry (the next to drain); nullptr when empty. */
    const SqEntry *
    oldest() const
    {
        if (empty())
            return nullptr;
        oldestView.seq = seqLane[head];
        oldestView.addr = addrLane[head];
        oldestView.addrKnown = (flagLane[head] & kAddrKnown) != 0;
        oldestView.data = dataLane[head];
        oldestView.dataKnown = (flagLane[head] & kDataKnown) != 0;
        return &oldestView;
    }

    /** Drain the oldest entry (must match @p seq). */
    void
    drainOldest(SeqNum seq)
    {
        msp_assert(!empty() && seqLane[head] == seq,
                   "drain order violation");
        msp_assert(flagLane[head] == (kAddrKnown | kDataKnown),
                   "draining unresolved store");
        ++head;
        compactIfStale();
    }

    /**
     * Remove stores younger than @p boundary (squash).
     * @return Number of L2-region entries scanned (for the CPR rollback
     *         penalty model).
     */
    std::size_t
    squashAfter(SeqNum boundary)
    {
        std::size_t l2Scanned = 0;
        while (!empty() && seqLane.back() > boundary) {
            if (size() > l1Cap)
                ++l2Scanned;
            seqLane.pop_back();
            addrLane.pop_back();
            dataLane.pop_back();
            flagLane.pop_back();
        }
        compactIfStale();
        return l2Scanned;
    }

    std::size_t size() const { return seqLane.size() - head; }
    bool empty() const { return head == seqLane.size(); }

  private:
    static constexpr std::uint8_t kAddrKnown = 1;
    static constexpr std::uint8_t kDataKnown = 2;
    static constexpr std::size_t npos = static_cast<std::size_t>(-1);

    /** Index of the first live entry with seq >= @p seq. */
    std::size_t
    lowerBound(SeqNum seq) const
    {
        return static_cast<std::size_t>(
            std::lower_bound(seqLane.begin() + head, seqLane.end(), seq) -
            seqLane.begin());
    }

    /** Index of the live entry with exactly @p seq, or npos. */
    std::size_t
    indexOf(SeqNum seq) const
    {
        const std::size_t i = lowerBound(seq);
        return (i < seqLane.size() && seqLane[i] == seq) ? i : npos;
    }

    /** Reclaim the drained prefix once it dominates the lanes. */
    void
    compactIfStale()
    {
        if (head < 64 || head < size())
            return;
        seqLane.erase(seqLane.begin(), seqLane.begin() + head);
        addrLane.erase(addrLane.begin(), addrLane.begin() + head);
        dataLane.erase(dataLane.begin(), dataLane.begin() + head);
        flagLane.erase(flagLane.begin(), flagLane.begin() + head);
        head = 0;
    }

    // Hot lanes, indexed [head, seqLane.size()), oldest first. The seq
    // lane is strictly increasing (program-order allocation).
    std::vector<SeqNum> seqLane;
    std::vector<Addr> addrLane;
    std::vector<std::uint64_t> dataLane;
    std::vector<std::uint8_t> flagLane;
    std::size_t head = 0;

    mutable SqEntry oldestView;   ///< storage behind oldest()

    std::size_t l1Cap;
    std::size_t l2Cap;
    bool unbounded;
    Cycle l2Lat;
};

} // namespace msp

#endif // MSPLIB_LSQ_STORE_QUEUE_HH
