#include "workload/micro.hh"

#include <bit>

#include "common/random.hh"
#include "isa/builder.hh"

namespace msp {
namespace micro {

namespace {

std::uint64_t
fpBits(double v)
{
    return std::bit_cast<std::uint64_t>(v);
}

} // anonymous namespace

Program
sumLoop(std::uint64_t n)
{
    ProgramBuilder b("sumLoop");
    // r1 = accumulator, r2 = i, r3 = n
    b.li(1, 0);
    b.li(2, 1);
    b.li(3, static_cast<std::int64_t>(n));
    Label loop = b.newLabel();
    Label end = b.newLabel();
    b.bind(loop);
    b.blt(3, 2, end);        // if n < i goto end
    b.add(1, 1, 2);          // acc += i
    b.addi(2, 2, 1);         // ++i
    b.j(loop);
    b.bind(end);
    b.st(1, 0, 0);           // word 0 = acc
    b.halt();
    return b.finish();
}

Program
fibonacci(std::uint64_t n)
{
    ProgramBuilder b("fibonacci");
    // r1 = a, r2 = b, r3 = i, r4 = n, r5 = tmp
    b.li(1, 0);
    b.li(2, 1);
    b.li(3, 0);
    b.li(4, static_cast<std::int64_t>(n));
    Label loop = b.newLabel();
    Label end = b.newLabel();
    b.bind(loop);
    b.bge(3, 4, end);
    b.add(5, 1, 2);
    b.mov(1, 2);
    b.mov(2, 5);
    b.addi(3, 3, 1);
    b.j(loop);
    b.bind(end);
    b.st(1, 0, 0);
    b.halt();
    return b.finish();
}

Program
memCopy(std::uint64_t words)
{
    ProgramBuilder b("memCopy");
    const std::int64_t srcBase = 64;           // word index 8
    const std::int64_t dstBase = srcBase + 8 * words;
    b.memSize(2 * words + 64);
    for (std::uint64_t i = 0; i < words; ++i)
        b.data(8 + i, i * 2654435761u + 17);

    // r1 = i (bytes), r2 = limit, r3 = tmp, r4 = checksum
    b.li(1, 0);
    b.li(2, static_cast<std::int64_t>(8 * words));
    b.li(4, 0);
    Label loop = b.newLabel();
    Label end = b.newLabel();
    b.bind(loop);
    b.bge(1, 2, end);
    b.addi(5, 1, srcBase);
    b.ld(3, 5, 0);
    b.addi(6, 1, dstBase);
    b.st(3, 6, 0);
    b.add(4, 4, 3);
    b.addi(1, 1, 8);
    b.j(loop);
    b.bind(end);
    b.st(4, 0, 0);
    b.halt();
    return b.finish();
}

Program
pointerChase(std::uint64_t nodes, std::uint64_t steps, std::uint64_t seed)
{
    ProgramBuilder b("pointerChase");
    b.memSize(nodes * 2 + 64);

    // Build a random ring of nodes. Node i lives at word (16 + i);
    // its value is the byte address of the next node.
    Rng rng(seed);
    std::vector<std::uint32_t> perm(nodes);
    for (std::uint64_t i = 0; i < nodes; ++i)
        perm[i] = static_cast<std::uint32_t>(i);
    for (std::uint64_t i = nodes - 1; i > 0; --i)
        std::swap(perm[i], perm[rng.below(i + 1)]);
    for (std::uint64_t i = 0; i < nodes; ++i) {
        const std::uint64_t cur = perm[i];
        const std::uint64_t nxt = perm[(i + 1) % nodes];
        b.data(16 + cur, (16 + nxt) * wordBytes);
    }

    // r1 = pointer, r2 = i, r3 = steps, r4 = checksum
    b.li(1, static_cast<std::int64_t>((16 + perm[0]) * wordBytes));
    b.li(2, 0);
    b.li(3, static_cast<std::int64_t>(steps));
    b.li(4, 0);
    Label loop = b.newLabel();
    Label end = b.newLabel();
    b.bind(loop);
    b.bge(2, 3, end);
    b.ld(1, 1, 0);           // p = *p (dependent load chain)
    b.add(4, 4, 1);
    b.addi(2, 2, 1);
    b.j(loop);
    b.bind(end);
    b.st(4, 0, 0);
    b.halt();
    return b.finish();
}

Program
branchy(std::uint64_t n, std::uint64_t seed)
{
    ProgramBuilder b("branchy");
    b.memSize(n + 64);
    Rng rng(seed);
    for (std::uint64_t i = 0; i < n; ++i)
        b.data(16 + i, rng.below(2));

    // r1 = i, r2 = n, r3 = word, r4 = count
    b.li(1, 0);
    b.li(2, static_cast<std::int64_t>(n));
    b.li(4, 0);
    Label loop = b.newLabel();
    Label skip = b.newLabel();
    Label end = b.newLabel();
    b.bind(loop);
    b.bge(1, 2, end);
    b.slli(5, 1, 3);
    b.addi(5, 5, 16 * 8);
    b.ld(3, 5, 0);
    b.beq(3, 0, skip);       // data-dependent: ~50% taken
    b.addi(4, 4, 1);
    b.bind(skip);
    b.addi(1, 1, 1);
    b.j(loop);
    b.bind(end);
    b.st(4, 0, 0);
    b.halt();
    return b.finish();
}

Program
tightRename(std::uint64_t iters)
{
    ProgramBuilder b("tightRename");
    // The loop body renames r2 repeatedly: an n-SP bank for r2 fills
    // after n renamings unless commits keep pace.
    b.li(1, 0);
    b.li(3, static_cast<std::int64_t>(iters));
    b.li(2, 0);
    Label loop = b.newLabel();
    Label end = b.newLabel();
    b.bind(loop);
    b.bge(1, 3, end);
    b.addi(2, 2, 1);
    b.addi(2, 2, 1);
    b.addi(2, 2, 1);
    b.addi(2, 2, 1);
    b.addi(1, 1, 1);
    b.j(loop);
    b.bind(end);
    b.st(2, 0, 0);
    b.halt();
    return b.finish();
}

Program
tightRenameIndependent(std::uint64_t iters)
{
    ProgramBuilder b("tightRenameIndependent");
    b.li(1, 0);
    b.li(3, static_cast<std::int64_t>(iters));
    Label loop = b.newLabel();
    Label end = b.newLabel();
    b.bind(loop);
    b.bge(1, 3, end);
    // Eight independent writes to r2 per iteration: only the
    // same-register rename throughput (the dual SCT write port)
    // limits how fast these flow through rename.
    for (int k = 1; k <= 8; ++k)
        b.li(2, k);
    b.addi(1, 1, 1);
    b.j(loop);
    b.bind(end);
    b.st(2, 0, 0);
    b.halt();
    return b.finish();
}

Program
dotProduct(std::uint64_t n)
{
    ProgramBuilder b("dotProduct");
    b.memSize(2 * n + 64);
    for (std::uint64_t i = 0; i < n; ++i) {
        b.data(16 + i, fpBits(1.0 + 0.25 * (i % 7)));
        b.data(16 + n + i, fpBits(2.0 - 0.125 * (i % 5)));
    }

    // r1 = i, r2 = n, r3/r4 = addresses; f1 = acc, f2/f3 = elements
    b.li(1, 0);
    b.li(2, static_cast<std::int64_t>(n));
    b.li(5, 0);
    b.fitof(1, 5);           // f1 = 0.0
    Label loop = b.newLabel();
    Label end = b.newLabel();
    b.bind(loop);
    b.bge(1, 2, end);
    b.slli(3, 1, 3);
    b.addi(4, 3, static_cast<std::int64_t>((16 + n) * 8));
    b.addi(3, 3, 16 * 8);
    b.fld(2, 3, 0);
    b.fld(3, 4, 0);
    b.fmul(2, 2, 3);
    b.fadd(1, 1, 2);
    b.addi(1, 1, 1);
    b.j(loop);
    b.bind(end);
    b.fst(1, 0, 0);
    b.halt();
    return b.finish();
}

Program
callReturn(std::uint64_t iters)
{
    ProgramBuilder b("callReturn");
    Label main = b.newLabel();
    Label func = b.newLabel();
    b.j(main);

    // func: r10 += r11; return via r31 (link)
    b.bind(func);
    b.add(10, 10, 11);
    b.ret(31);

    b.bind(main);
    b.li(1, 0);
    b.li(2, static_cast<std::int64_t>(iters));
    b.li(10, 0);
    Label loop = b.newLabel();
    Label end = b.newLabel();
    b.bind(loop);
    b.bge(1, 2, end);
    b.mov(11, 1);
    b.jal(31, func);
    b.addi(1, 1, 1);
    b.j(loop);
    b.bind(end);
    b.st(10, 0, 0);
    b.halt();
    return b.finish();
}

Program
trapLoop(std::uint64_t iters, std::uint64_t period)
{
    ProgramBuilder b("trapLoop");
    // r1 = i, r2 = iters, r3 = phase, r4 = acc
    b.li(1, 0);
    b.li(2, static_cast<std::int64_t>(iters));
    b.li(3, 0);
    b.li(4, 0);
    Label loop = b.newLabel();
    Label noTrap = b.newLabel();
    Label end = b.newLabel();
    b.bind(loop);
    b.bge(1, 2, end);
    b.addi(3, 3, 1);
    b.slti(5, 3, static_cast<std::int64_t>(period));
    b.bne(5, 0, noTrap);
    b.trap();
    b.li(3, 0);
    b.bind(noTrap);
    b.add(4, 4, 1);
    b.addi(1, 1, 1);
    b.j(loop);
    b.bind(end);
    b.st(4, 0, 0);
    b.halt();
    return b.finish();
}

Program
storeForward(std::uint64_t iters)
{
    ProgramBuilder b("storeForward");
    // Repeatedly store to a scratch slot and reload it immediately.
    b.li(1, 0);
    b.li(2, static_cast<std::int64_t>(iters));
    b.li(4, 0);
    Label loop = b.newLabel();
    Label end = b.newLabel();
    b.bind(loop);
    b.bge(1, 2, end);
    b.addi(5, 1, 7);
    b.st(5, 0, 64);          // store
    b.ld(6, 0, 64);          // immediate reload: must forward
    b.add(4, 4, 6);
    b.addi(1, 1, 1);
    b.j(loop);
    b.bind(end);
    b.st(4, 0, 0);
    b.halt();
    return b.finish();
}

} // namespace micro
} // namespace msp
