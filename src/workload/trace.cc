#include "workload/trace.hh"

#include <cerrno>
#include <cstdlib>

#include "common/json.hh"
#include "common/logging.hh"
#include "driver/report.hh"
#include "isa/opcodes.hh"

namespace msp {
namespace trace {

const char *const formatId = "msp-trace-v1";

namespace {

/** Opcode whose mnemonic is @p name; false when unknown. */
bool
opcodeByName(const std::string &name, Opcode &out)
{
    for (int i = 0; i < static_cast<int>(Opcode::NumOpcodes); ++i) {
        if (name == opName(static_cast<Opcode>(i))) {
            out = static_cast<Opcode>(i);
            return true;
        }
    }
    return false;
}

[[noreturn]] void
fail(std::size_t line, const std::string &what)
{
    throw TraceError(csprintf("trace line %zu: %s", line, what.c_str()));
}

/**
 * One ["mnemonic", rd, rs1, rs2, imm] record. The same strictness
 * rules as the verify-report program codec: operands must be complete
 * decimal integers up to the next delimiter, register fields must fit
 * the logical file, and a fifth operand is an error, not dropped.
 */
Instruction
parseRecord(const std::string &e, std::size_t line)
{
    if (e.empty() || e[0] != '[')
        fail(line, "expected an instruction tuple starting with '['");
    const std::size_t q1 = e.find('"');
    const std::size_t q2 =
        q1 == std::string::npos ? std::string::npos : e.find('"', q1 + 1);
    if (q2 == std::string::npos)
        fail(line, "instruction record without a mnemonic");
    const std::string mn = e.substr(q1 + 1, q2 - q1 - 1);
    Instruction in;
    if (!opcodeByName(mn, in.op))
        fail(line, "unknown opcode mnemonic '" + mn + "'");
    std::int64_t v[4] = {0, 0, 0, 0};
    std::size_t p = q2 + 1;
    for (int i = 0; i < 4; ++i) {
        p = e.find(',', p);
        if (p == std::string::npos)
            fail(line, "instruction record has fewer than 4 operands");
        ++p;
        while (p < e.size() && e[p] == ' ')
            ++p;
        errno = 0;
        char *end = nullptr;
        v[i] = std::strtoll(e.c_str() + p, &end, 10);
        if (errno == ERANGE)
            fail(line, "operand overflows 64 bits");
        std::size_t q = static_cast<std::size_t>(end - e.c_str());
        if (q == p)
            fail(line, csprintf("non-numeric operand %d", i + 1));
        while (q < e.size() && e[q] == ' ')
            ++q;
        const char delim = i < 3 ? ',' : ']';
        if (q >= e.size() || e[q] != delim) {
            fail(line, i < 3 ? csprintf("malformed operand %d", i + 1)
                             : "trailing content after the 5-tuple");
        }
        p = q;
    }
    // The tuple must end at its closing bracket (trailing whitespace
    // was stripped by the line splitter).
    if (p + 1 != e.size())
        fail(line, "trailing content after the instruction tuple");
    for (int i = 0; i < 3; ++i) {
        if (v[i] < -1 || v[i] >= numLogRegs / 2) {
            fail(line, csprintf("register operand %lld out of range "
                                "[-1, %d]",
                                static_cast<long long>(v[i]),
                                numLogRegs / 2 - 1));
        }
    }
    in.rd = static_cast<std::int8_t>(v[0]);
    in.rs1 = static_cast<std::int8_t>(v[1]);
    in.rs2 = static_cast<std::int8_t>(v[2]);
    in.imm = v[3];
    return in;
}

/** Strip an optional trailing '\r' and surrounding spaces. */
std::string
trimmed(const std::string &s)
{
    std::size_t b = 0, e = s.size();
    while (b < e && (s[b] == ' ' || s[b] == '\t'))
        ++b;
    while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' ||
                     s[e - 1] == '\r')) {
        --e;
    }
    return s.substr(b, e - b);
}

} // anonymous namespace

std::string
toJsonl(const Program &prog)
{
    std::string out = "{";
    out += csprintf("\"format\": \"%s\", ", formatId);
    out += csprintf("\"name\": \"%s\", ",
                    json::escape(prog.name).c_str());
    out += csprintf("\"mem_words\": %zu, ", prog.memWords);
    out += csprintf("\"entry\": %llu, ",
                    static_cast<unsigned long long>(prog.entry));
    out += csprintf("\"code_base\": %llu, ",
                    static_cast<unsigned long long>(prog.codeBase));
    out += "\"init_data\": [";
    for (std::size_t i = 0; i < prog.initData.size(); ++i) {
        out += csprintf("%s\"%016llx\"", i ? ", " : "",
                        static_cast<unsigned long long>(
                            prog.initData[i]));
    }
    out += "]}\n";
    for (const Instruction &in : prog.code) {
        out += csprintf("[\"%s\", %d, %d, %d, %lld]\n", opName(in.op),
                        static_cast<int>(in.rd),
                        static_cast<int>(in.rs1),
                        static_cast<int>(in.rs2),
                        static_cast<long long>(in.imm));
    }
    return out;
}

Program
fromJsonl(const std::string &text)
{
    // Split into lines, keeping 1-based numbering for every error.
    std::vector<std::pair<std::size_t, std::string>> lines;
    {
        std::size_t start = 0, n = 1;
        while (start <= text.size()) {
            const std::size_t nl = text.find('\n', start);
            const std::string raw = text.substr(
                start, nl == std::string::npos ? std::string::npos
                                               : nl - start);
            const std::string t = trimmed(raw);
            if (!t.empty())
                lines.emplace_back(n, t);
            if (nl == std::string::npos)
                break;
            start = nl + 1;
            ++n;
        }
    }
    if (lines.empty())
        throw TraceError("trace line 1: empty trace (no header record)");

    const auto &[headerLine, header] = lines.front();
    if (header.empty() || header[0] != '{')
        fail(headerLine, "expected the header object on the first "
                         "non-empty line");
    const std::string fmt = json::getStr(header, "format");
    if (fmt != formatId) {
        fail(headerLine, csprintf("unsupported format '%s' (want '%s')",
                                  fmt.c_str(), formatId));
    }

    Program prog;
    try {
        prog.name = json::getStr(header, "name");
        prog.memWords = static_cast<std::size_t>(
            json::getU64(header, "mem_words", prog.memWords));
        prog.entry = json::getU64(header, "entry", 0);
        prog.codeBase = json::getU64(header, "code_base", prog.codeBase);
    } catch (const json::JsonError &e) {
        fail(headerLine, e.what());
    }
    if (prog.memWords == 0 || (prog.memWords & (prog.memWords - 1)) != 0)
        fail(headerLine, csprintf("mem_words %zu is not a power of two",
                                  prog.memWords));
    // Geometry must fail here, not as a bad_alloc when ArchState
    // materialises the image (2^24 words is already 128 MiB).
    if (prog.memWords > (std::size_t{1} << 24))
        fail(headerLine, csprintf("mem_words %zu is implausibly large",
                                  prog.memWords));

    const std::size_t dataAt = json::valuePos(header, "init_data");
    if (dataAt != std::string::npos) {
        if (header[dataAt] != '[')
            fail(headerLine, "init_data must be an array of hex words");
        for (const std::string &w :
             json::innerStrings(json::balancedSlice(header, dataAt))) {
            char *end = nullptr;
            const std::uint64_t word = std::strtoull(w.c_str(), &end, 16);
            if (w.empty() || end != w.c_str() + w.size())
                fail(headerLine, "non-hexadecimal init_data word '" + w +
                                 "'");
            prog.initData.push_back(word);
        }
    }
    if (prog.initData.size() > prog.memWords) {
        fail(headerLine, csprintf("init_data (%zu words) exceeds "
                                  "mem_words (%zu)",
                                  prog.initData.size(), prog.memWords));
    }
    if (prog.name.empty())
        prog.name = "trace";

    for (std::size_t i = 1; i < lines.size(); ++i)
        prog.code.push_back(parseRecord(lines[i].second, lines[i].first));
    if (prog.code.empty()) {
        fail(headerLine + 1, "trace carries no instruction records");
    }
    if (prog.entry >= prog.code.size())
        fail(headerLine, csprintf("entry %llu is past the last "
                                  "instruction (%zu records)",
                                  static_cast<unsigned long long>(
                                      prog.entry),
                                  prog.code.size()));
    return prog;
}

Program
load(const std::string &path)
{
    std::string text;
    if (!driver::tryReadFile(path, text))
        throw TraceError("cannot read trace file " + path);
    try {
        return fromJsonl(text);
    } catch (const TraceError &e) {
        throw TraceError(path + ": " + e.what());
    }
}

} // namespace trace
} // namespace msp
