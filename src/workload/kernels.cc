#include "workload/kernels.hh"

#include <bit>

#include "common/logging.hh"
#include "common/random.hh"
#include "isa/builder.hh"

namespace msp {
namespace kernels {

namespace {

constexpr std::uint64_t hugeIters = 1000000000ull;

// Shared register conventions: r1 outer counter, r2 outer limit,
// r3 data base, r4 mask, r5-r7 addresses, r10.. kernel temporaries.

void
emitOuterHead(ProgramBuilder &b, Label &outer)
{
    b.li(1, 0);
    b.li(2, static_cast<std::int64_t>(hugeIters));
    outer = b.newLabel();
    b.bind(outer);
}

void
emitOuterTail(ProgramBuilder &b, Label outer)
{
    b.addi(1, 1, 1);
    b.blt(1, 2, outer);
    b.halt();
}

/**
 * 256.bzip2 generateMTFValues: move-to-front coding. For each input
 * symbol, scan the MTF list until the symbol is found, shifting every
 * element one slot forward, then reinsert at the front.
 */
Program
bzip2Mtf(bool modified, std::uint64_t seed)
{
    ProgramBuilder b(modified ? "bzip2-mtf-mod" : "bzip2-mtf");
    const std::size_t nSyms = 4096;
    const std::size_t listW = 64;     // MTF list: words 32..95
    const std::size_t symsW = 128;    // symbols at words 128..
    b.memSize(symsW + nSyms + 64);
    Rng rng(seed);
    for (std::size_t i = 0; i < listW; ++i)
        b.data(32 + i, i);
    for (std::size_t i = 0; i < nSyms; ++i)
        b.data(symsW + i, rng.below(listW));

    Label outer;
    emitOuterHead(b, outer);

    // r3 = symbol index, r4 = nSyms
    b.li(3, 0);
    b.li(4, static_cast<std::int64_t>(nSyms));
    Label symLoop = b.newLabel();
    Label symDone = b.newLabel();
    b.bind(symLoop);
    b.bge(3, 4, symDone);

    // r5 = sym = symbols[r3]
    b.slli(5, 3, 3);
    b.addi(5, 5, symsW * 8);
    b.ld(5, 5, 0);

    // Search: j = 0; while (list[j] != sym) ++j.
    // Original: j and cur live in r10/r11 only (tight reuse).
    // Modified: the paper unrolled this loop once (Table II: 1 loop),
    // spreading the scan over more registers.
    Label found = b.newLabel();
    b.li(10, 0);
    if (!modified) {
        Label scan = b.newLabel();
        b.bind(scan);
        b.slli(11, 10, 3);
        b.addi(11, 11, 32 * 8);
        b.ld(11, 11, 0);
        b.beq(11, 5, found);
        b.addi(10, 10, 1);
        b.j(scan);
    } else {
        Label scan = b.newLabel();
        Label found2 = b.newLabel();
        b.bind(scan);
        b.slli(11, 10, 3);
        b.addi(12, 11, 32 * 8);
        b.ld(13, 12, 0);
        b.beq(13, 5, found);
        b.ld(14, 12, 8);          // unrolled second probe
        b.beq(14, 5, found2);
        b.addi(10, 10, 2);
        b.j(scan);
        b.bind(found2);
        b.addi(10, 10, 1);
    }
    b.bind(found);

    // Shift list[0..j-1] forward by one, reinsert sym at the front.
    // r6 = k (runs j..1), r7/r12/r13 scratch.
    Label shiftDone = b.newLabel();
    if (!modified) {
        Label shift = b.newLabel();
        b.mov(6, 10);
        b.bind(shift);
        b.beq(6, 0, shiftDone);
        b.slli(7, 6, 3);
        b.addi(7, 7, 32 * 8);
        b.ld(11, 7, -8);          // list[k-1]
        b.st(11, 7, 0);           // list[k] = list[k-1]
        b.addi(6, 6, -1);
        b.j(shift);
    } else {
        Label shift = b.newLabel();
        Label one = b.newLabel();
        b.mov(6, 10);
        b.bind(shift);
        b.slti(15, 6, 2);
        b.bne(15, 0, one);
        b.slli(7, 6, 3);
        b.addi(7, 7, 32 * 8);
        b.ld(12, 7, -8);
        b.st(12, 7, 0);
        b.ld(13, 7, -16);         // unrolled second shift
        b.st(13, 7, -8);
        b.addi(6, 6, -2);
        b.j(shift);
        b.bind(one);
        b.beq(6, 0, shiftDone);
        b.slli(7, 6, 3);
        b.addi(7, 7, 32 * 8);
        b.ld(12, 7, -8);
        b.st(12, 7, 0);
        b.addi(6, 6, -1);
    }
    b.bind(shiftDone);
    b.st(5, 0, 32 * 8);           // list[0] = sym

    // Accumulate the emitted MTF position.
    b.add(20, 20, 10);

    b.addi(3, 3, 1);
    b.j(symLoop);
    b.bind(symDone);
    b.st(20, 0, 0);

    emitOuterTail(b, outer);
    return b.finish();
}

/**
 * 300.twolf new_dbox_a: for each terminal of a net, load its position,
 * update the bounding box (data-dependent min/max branches) and
 * accumulate the wire-cost delta. The paper unrolled 3 loops.
 */
Program
twolfDbox(bool modified, std::uint64_t seed)
{
    ProgramBuilder b(modified ? "twolf-dbox-mod" : "twolf-dbox");
    const std::size_t nTerms = 8192;
    const std::size_t posW = 64;
    b.memSize(posW + nTerms + 64);
    Rng rng(seed);
    for (std::size_t i = 0; i < nTerms; ++i)
        b.data(posW + i, rng.below(10000));

    Label outer;
    emitOuterHead(b, outer);

    // r3 = term idx, r4 = nTerms, r10 = min, r11 = max, r20 = cost
    b.li(3, 0);
    b.li(4, static_cast<std::int64_t>(nTerms));
    const unsigned unroll = modified ? 2 : 1;
    for (unsigned u = 0; u < unroll; ++u) {
        const int rMin = modified ? 10 + static_cast<int>(3 * u) : 10;
        b.li(rMin, 1 << 20);
        b.li(rMin + 1, 0);
        b.li(rMin + 2, 0);
    }
    Label loop = b.newLabel();
    Label done = b.newLabel();
    b.bind(loop);
    b.bge(3, 4, done);
    for (unsigned u = 0; u < unroll; ++u) {
        // Original reuses r5/r6 and accumulates min/max/cost in
        // r10/r11/r20 for every copy; modified spreads each unrolled
        // copy across its own registers (merged after the loop).
        const int ra = modified ? 5 + static_cast<int>(2 * u) : 5;
        const int rv = ra + 1;
        const int rMin = modified ? 10 + static_cast<int>(3 * u) : 10;
        const int rMax = rMin + 1;
        const int rCost = rMin + 2;
        b.slli(ra, 3, 3);
        b.addi(ra, ra, static_cast<std::int64_t>(posW * 8 + 8 * u));
        b.ld(rv, ra, 0);
        Label notMin = b.newLabel();
        Label notMax = b.newLabel();
        b.bge(rv, rMin, notMin);  // data-dependent min update
        b.mov(rMin, rv);
        b.bind(notMin);
        b.bge(rMax, rv, notMax);  // data-dependent max update
        b.mov(rMax, rv);
        b.bind(notMax);
        b.add(rCost, rCost, rv);
    }
    b.addi(3, 3, unroll);
    b.j(loop);
    b.bind(done);
    if (modified) {
        // Merge the per-copy partial results.
        Label m1 = b.newLabel();
        b.bge(13, 10, m1);
        b.mov(10, 13);
        b.bind(m1);
        Label m2 = b.newLabel();
        b.bge(11, 14, m2);
        b.mov(11, 14);
        b.bind(m2);
        b.add(20, 12, 15);
    } else {
        b.mov(20, 12);
    }
    b.sub(21, 11, 10);
    b.add(20, 20, 21);
    b.st(20, 0, 0);

    emitOuterTail(b, outer);
    return b.finish();
}

/**
 * Shared shape of the three fp kernels: a streaming stencil/reduction
 * loop. @p spread selects how many fp destination registers the loop
 * body cycles over — the paper's "modified" versions only re-allocate
 * registers (0 loops unrolled).
 */
Program
fpStencil(const char *name, std::size_t wsWords, unsigned stride,
          unsigned spread, bool indexed, std::uint64_t seed)
{
    ProgramBuilder b(name);
    const std::size_t base = 64;
    b.memSize(base + 2 * wsWords + 64);
    Rng rng(seed);
    for (std::size_t i = 0; i < wsWords; ++i) {
        b.data(base + i,
               std::bit_cast<std::uint64_t>(0.5 + 0.25 * (i % 13)));
    }
    if (indexed) {
        // equake smvp: a column-index array drives indirect vector loads.
        for (std::size_t i = 0; i < wsWords; ++i)
            b.data(base + wsWords + i, rng.below(wsWords) * 8);
    }

    Label outer;
    emitOuterHead(b, outer);

    // r3 = i, r4 = n, r5/r6 = addresses; f registers do the work.
    b.li(3, 0);
    b.li(4, static_cast<std::int64_t>(wsWords / stride - 4));
    b.li(7, 1);
    b.fitof(31, 7);               // f31 = 1.0 (stencil coefficient)
    b.li(7, 0);
    b.fitof(30, 7);               // f30 = running sum
    Label loop = b.newLabel();
    Label done = b.newLabel();
    b.bind(loop);
    b.bge(3, 4, done);

    b.slli(5, 3, 3);
    if (stride > 1)
        b.slli(5, 5, stride / 2);
    b.addi(5, 5, static_cast<std::int64_t>(base * 8));

    // The hot body: 4 load-multiply-accumulate steps. Original code
    // reuses f1/f2 for every step; modified cycles f1..f(spread).
    for (unsigned k = 0; k < 4; ++k) {
        const int fa = 1 + static_cast<int>((2 * k) % spread);
        const int fb = 1 + static_cast<int>((2 * k + 1) % spread);
        if (indexed) {
            b.ld(6, 5, static_cast<std::int64_t>(wsWords * 8 + 8 * k));
            b.addi(6, 6, static_cast<std::int64_t>(base * 8));
            b.fld(fa, 6, 0);
        } else {
            b.fld(fa, 5, 8 * k);
        }
        b.fmul(fb, fa, 31);
        b.fadd(30, 30, fb);
    }
    b.fst(30, 5, 0);

    b.addi(3, 3, 1);
    b.j(loop);
    b.bind(done);
    b.fst(30, 0, 0);

    emitOuterTail(b, outer);
    return b.finish();
}

} // anonymous namespace

const std::vector<KernelInfo> &
table2Kernels()
{
    static const std::vector<KernelInfo> v = {
        {"256.bzip2", "generateMTFValues", 1, 65},
        {"300.twolf", "new_dbox_a", 3, 19},
        {"171.swim", "calc3", 0, 25},
        {"172.mgrid", "resid", 0, 52},
        {"183.equake", "smvp", 0, 54},
    };
    return v;
}

Program
build(const std::string &benchmark, bool modified, std::uint64_t seed)
{
    if (benchmark == "bzip2")
        return bzip2Mtf(modified, seed);
    if (benchmark == "twolf")
        return twolfDbox(modified, seed);
    if (benchmark == "swim") {
        return fpStencil(modified ? "swim-calc3-mod" : "swim-calc3",
                         1 << 15, 1, modified ? 8 : 2, false, seed);
    }
    if (benchmark == "mgrid") {
        return fpStencil(modified ? "mgrid-resid-mod" : "mgrid-resid",
                         1 << 14, 2, modified ? 8 : 2, false, seed);
    }
    if (benchmark == "equake") {
        return fpStencil(modified ? "equake-smvp-mod" : "equake-smvp",
                         1 << 13, 1, modified ? 8 : 2, true, seed);
    }
    msp_fatal("unknown Table II kernel '%s'", benchmark.c_str());
}

} // namespace kernels
} // namespace msp
