#include "workload/spec.hh"

#include <map>

#include "common/logging.hh"
#include "common/random.hh"
#include "isa/builder.hh"

namespace msp {
namespace spec {

namespace {

// Register conventions used by every synthetic benchmark:
//   r1  outer counter        r2  outer limit
//   r3  array base (bytes)   r4  array mask (bytes, word-aligned)
//   r5  chase pointer        r6  pattern counter
//   r7  address scratch      r8..r23  cycled temporaries (regSpread)
//   r24 pattern period       r25 inner trip count
//   r26 inner counter        r27 phase accumulator
//   r28 call argument        r29 call result
//   r30 indirect target      r31 link register
constexpr int rOuter = 1, rLimit = 2, rBase = 3, rMask = 4, rChase = 5;
constexpr int rPat = 6, rAddr = 7, rTmp0 = 8;
constexpr int rPeriod = 24, rTrip = 25, rInner = 26, rPhase = 27;
constexpr int rArg = 28, rRet = 29, rJump = 30, rLink = 31;

constexpr std::uint64_t hugeIters = 1000000000ull;

/** Emits one synthetic benchmark from a SynthSpec. */
class SynthBuilder
{
  public:
    explicit SynthBuilder(const SynthSpec &s)
        : s(s), b(s.name), rng(s.seed * 0x9e3779b97f4a7c15ull + 1)
    {
        msp_assert(s.fpRegSpread >= 2 && s.fpRegSpread <= 28,
                   "%s: fpRegSpread out of range", s.name.c_str());
        // Temp pool: r7 and r8..r23 always; registers reserved for
        // unused features are recycled as extra temporaries, the way a
        // register allocator would use every free architectural
        // register.
        pool.push_back(rAddr);
        for (int r = rTmp0; r <= 23; ++r)
            pool.push_back(r);
        if (!s.pointerChase) {
            pool.push_back(rChase);
            if (s.patternPeriod == 0)
                pool.push_back(rPat);
        }
        if (s.patternPeriod == 0)
            pool.push_back(rPeriod);
        if (!s.calls) {
            pool.push_back(rArg);
            pool.push_back(rRet);
        }
        if (!s.indirect)
            pool.push_back(rJump);
        msp_assert(s.regSpread >= 2 &&
                       s.regSpread <= pool.size(),
                   "%s: regSpread out of range", s.name.c_str());
        pool.resize(s.regSpread);
    }

    Program build();

  private:
    int
    nextTmp()
    {
        const int r = pool[tmpIdx % pool.size()];
        ++tmpIdx;
        return r;
    }

    int
    prevTmp() const
    {
        const std::uint64_t i = tmpIdx == 0 ? 0 : tmpIdx - 1;
        return pool[i % pool.size()];
    }

    int
    nextFpTmp()
    {
        const int r = 1 + static_cast<int>(fpIdx % s.fpRegSpread);
        ++fpIdx;
        return r;
    }

    int
    prevFpTmp() const
    {
        const std::uint64_t i = fpIdx == 0 ? 0 : fpIdx - 1;
        return 1 + static_cast<int>(i % s.fpRegSpread);
    }

    void layoutData();
    void emitFunctions();
    void emitInit();
    void emitBlock(unsigned blockIdx);
    void emitItem(unsigned blockIdx, unsigned itemIdx);
    void emitLoadAndBranch();
    void emitPatternBranch();
    void emitArithChain();
    void emitFpChain();
    void emitStore();
    void emitChaseStep();
    void emitCall();
    void emitIndirect();

    const SynthSpec &s;
    ProgramBuilder b;
    Rng rng;
    std::vector<int> pool;   ///< integer temporary registers
    std::uint64_t tmpIdx = 0;
    std::uint64_t fpIdx = 0;

    /** Register holding the current item's array address. */
    int lastAddrReg = rTmp0;

    /** Pointer-chase chain registers (parallel chains expose MLP). */
    std::vector<int> chaseRegs;
    unsigned chaseIdx = 0;

    // Data layout (word indices).
    std::size_t arrayBase = 64;
    std::size_t chaseBase = 0;
    std::size_t tableBase = 0;
    std::size_t storeBase = 0;
    unsigned numHandlers = 8;

    std::vector<Label> funcs;
    std::vector<Label> handlerLabels;
};

void
SynthBuilder::layoutData()
{
    std::size_t next = arrayBase + s.wsWords;
    if (s.pointerChase) {
        chaseBase = next;
        next += s.chaseNodes;
    }
    if (s.indirect) {
        tableBase = next;
        next += numHandlers;
    }
    // Integer stores land in their own small region so they cannot
    // disturb the branch-bias bits planted in the load array.
    storeBase = next;
    next += 4096;
    b.memSize(next + 64);

    // Array data: controlled taken-bias in bit 0, random elsewhere.
    for (std::size_t i = 0; i < s.wsWords; ++i) {
        std::uint64_t v = rng.next() & ~std::uint64_t{1};
        if (rng.chance(s.randomBias))
            v |= 1;
        b.data(arrayBase + i, v);
    }

    if (s.pointerChase) {
        // Several independent rings: a large window can overlap one
        // miss per chain (memory-level parallelism, as in real mcf
        // where multiple arcs are chased per iteration).
        chaseRegs = {rChase, rPat};
        if (!s.calls) {
            chaseRegs.push_back(rArg);
            chaseRegs.push_back(rRet);
        }
        const std::size_t chains = chaseRegs.size();
        const std::size_t per = s.chaseNodes / chains;
        for (std::size_t c = 0; c < chains; ++c) {
            const std::size_t lo = c * per;
            std::vector<std::uint32_t> perm(per);
            for (std::size_t i = 0; i < per; ++i)
                perm[i] = static_cast<std::uint32_t>(lo + i);
            for (std::size_t i = per - 1; i > 0; --i)
                std::swap(perm[i], perm[rng.below(i + 1)]);
            for (std::size_t i = 0; i < per; ++i) {
                const std::size_t cur = perm[i];
                const std::size_t nxt = perm[(i + 1) % per];
                b.data(chaseBase + cur, (chaseBase + nxt) * wordBytes);
            }
        }
    }
}

void
SynthBuilder::emitFunctions()
{
    // Small leaf functions: r29 = f(r28).
    const unsigned nFuncs = s.calls ? 3 : 0;
    Label skip = b.newLabel();
    if (nFuncs > 0)
        b.j(skip);
    for (unsigned f = 0; f < nFuncs; ++f) {
        Label l = b.newLabel();
        b.bind(l);
        switch (f % 3) {
          case 0:
            b.addi(rRet, rArg, 13);
            b.xori(rRet, rRet, 0x55);
            break;
          case 1:
            b.slli(rRet, rArg, 2);
            b.add(rRet, rRet, rArg);
            b.srli(rRet, rRet, 1);
            break;
          default:
            b.mul(rRet, rArg, rArg);
            b.addi(rRet, rRet, 7);
            break;
        }
        b.ret(rLink);
        funcs.push_back(l);
    }
    if (nFuncs > 0)
        b.bind(skip);
}

void
SynthBuilder::emitInit()
{
    b.li(rOuter, 0);
    b.li(rLimit, static_cast<std::int64_t>(hugeIters));
    b.li(rBase, static_cast<std::int64_t>(arrayBase * wordBytes));
    b.li(rMask, static_cast<std::int64_t>(s.wsWords * wordBytes - 8));
    b.li(rPhase, 0);
    if (s.patternPeriod > 0) {
        b.li(rPat, 0);
        b.li(rPeriod, s.patternPeriod);
    }
    if (s.pointerChase) {
        const std::size_t per = s.chaseNodes / chaseRegs.size();
        for (std::size_t c = 0; c < chaseRegs.size(); ++c) {
            b.li(chaseRegs[c],
                 static_cast<std::int64_t>((chaseBase + c * per) *
                                           wordBytes));
        }
    }
    for (unsigned i = 0; i < pool.size(); ++i)
        b.li(pool[i], 3 * i + 1);
    if (s.fp || s.fpMix > 0.0) {
        for (unsigned i = 0; i < s.fpRegSpread; ++i) {
            b.li(rTrip, static_cast<std::int64_t>(i + 1));
            b.fitof(1 + i, rTrip);
        }
    }
}

void
SynthBuilder::emitLoadAndBranch()
{
    // t = A[(phase + inner*stride) & mask]; if (t & 1) work.
    // Address temporaries rotate through the same pool as data
    // temporaries: compiled code spreads address arithmetic across the
    // architectural registers, and that spread is exactly the knob that
    // controls MSP bank pressure (Sec. 4.3).
    const int t1 = nextTmp();
    b.slli(t1, rInner, 3 + (s.stride > 2 ? 2 : s.stride - 1));
    const int t2 = nextTmp();
    b.add(t2, t1, rPhase);
    const int t3 = nextTmp();
    if (rng.chance(s.hotFrac)) {
        // Hot load site: confined to the L1-resident core region.
        b.andi(t3, t2,
               static_cast<std::int64_t>(s.hotWords * wordBytes - 8));
    } else {
        b.and_(t3, t2, rMask);
    }
    lastAddrReg = t3;
    const int t = nextTmp();
    b.ld(t, t3, static_cast<std::int64_t>(arrayBase * wordBytes));
    if (rng.chance(s.randomBranchDensity)) {
        Label skip = b.newLabel();
        const int t4 = nextTmp();
        b.andi(t4, t, 1);
        // Taken with probability randomBias (data bit0 bias): skewed,
        // data-dependent, unlearnable by any history-based predictor.
        b.beq(t4, 0, skip);
        const int t5 = nextTmp();
        b.add(t5, prevTmp(), t);
        b.bind(skip);
    }
}

void
SynthBuilder::emitPatternBranch()
{
    // Periodic direction with period rPeriod: first half taken. A long
    // period is learnable with TAGE's geometric histories but aliases
    // in gshare's 16-bit folded history.
    Label noReset = b.newLabel();
    Label skip = b.newLabel();
    const int t = nextTmp();
    b.addi(rPat, rPat, 1);
    b.blt(rPat, rPeriod, noReset);
    b.li(rPat, 0);
    b.bind(noReset);
    b.slti(t, rPat, s.patternPeriod / 2);
    b.beq(t, 0, skip);
    const int t2 = nextTmp();
    b.addi(t2, prevTmp(), 5);
    b.bind(skip);
}

void
SynthBuilder::emitArithChain()
{
    for (unsigned k = 0; k < s.chainLen; ++k) {
        const int src = prevTmp();
        const int dst = nextTmp();
        switch (rng.below(5)) {
          case 0: b.add(dst, src, rInner); break;
          case 1: b.xor_(dst, src, rPhase); break;
          case 2: b.slli(dst, src, 1); break;
          case 3: b.mul(dst, src, rOuter); break;
          default: b.addi(dst, src, 11); break;
        }
    }
}

void
SynthBuilder::emitFpChain()
{
    // fld + dependent fp chain, cycling over fpRegSpread registers.
    const std::int64_t off = static_cast<std::int64_t>(arrayBase *
                                                       wordBytes);
    const int f0 = nextFpTmp();
    b.fld(f0, lastAddrReg, off);
    for (unsigned k = 0; k < s.chainLen; ++k) {
        const int src = prevFpTmp();
        const int dst = nextFpTmp();
        switch (rng.below(3)) {
          case 0: b.fadd(dst, src, f0); break;
          case 1: b.fmul(dst, src, f0); break;
          default: b.fsub(dst, src, f0); break;
        }
    }
    if (rng.chance(s.storeDensity))
        b.fst(prevFpTmp(), lastAddrReg, off);
}

void
SynthBuilder::emitStore()
{
    const int t = nextTmp();
    b.andi(t, lastAddrReg, 4096 * wordBytes - 8);
    b.st(prevTmp(), t, static_cast<std::int64_t>(storeBase * wordBytes));
}

void
SynthBuilder::emitChaseStep()
{
    // Round-robin over the independent chains: each chain is a serial
    // dependence, but chains overlap each other's misses.
    const int creg = chaseRegs[chaseIdx++ % chaseRegs.size()];
    b.ld(creg, creg, 0);        // p = *p
    const int t = nextTmp();
    b.add(t, prevTmp(), creg);
}

void
SynthBuilder::emitCall()
{
    b.mov(rArg, prevTmp());
    b.jal(rLink, funcs[rng.below(funcs.size())]);
    const int t = nextTmp();
    b.add(t, rRet, 0);
}

void
SynthBuilder::emitIndirect()
{
    // Interpreter-style dispatch: jump through a table indexed by data.
    Label cont = b.newLabel();
    b.andi(rJump, prevTmp(), numHandlers - 1);
    b.slli(rJump, rJump, 3);
    b.addi(rJump, rJump,
           static_cast<std::int64_t>(tableBase * wordBytes));
    b.ld(rJump, rJump, 0);
    b.jr(rJump);
    for (unsigned h = 0; h < numHandlers; ++h) {
        Label l = b.newLabel();
        b.bind(l);
        const int t = nextTmp();
        b.addi(t, prevTmp(), static_cast<std::int64_t>(h * 3 + 1));
        b.j(cont);
        handlerLabels.push_back(l);
    }
    b.bind(cont);
}

void
SynthBuilder::emitItem(unsigned blockIdx, unsigned itemIdx)
{
    emitLoadAndBranch();
    if (s.pointerChase)
        emitChaseStep();
    if (s.patternPeriod > 0 && rng.chance(s.patternDensity * 3.0))
        emitPatternBranch();
    if (s.fp || rng.chance(s.fpMix))
        emitFpChain();
    if (!s.fp)
        emitArithChain();
    if (s.fp ? rng.chance(s.storeDensity) : true)
        emitStore();
    if (s.calls && rng.chance(0.15))
        emitCall();
    if (s.indirect && itemIdx == 0 && blockIdx % 4 == 0)
        emitIndirect();
}

void
SynthBuilder::emitBlock(unsigned blockIdx)
{
    Label inner = b.newLabel();
    b.li(rTrip, s.innerTrip);
    b.li(rInner, 0);
    // Advance the phase so successive blocks/iterations sweep the array.
    b.addi(rPhase, rPhase, 8 * 97);
    b.bind(inner);
    for (unsigned j = 0; j < s.itemsPerBlock; ++j)
        emitItem(blockIdx, j);
    b.addi(rInner, rInner, 1);
    b.blt(rInner, rTrip, inner);
}

Program
SynthBuilder::build()
{
    layoutData();
    emitFunctions();
    emitInit();

    Label outer = b.newLabel();
    b.bind(outer);
    for (unsigned k = 0; k < s.blocks; ++k)
        emitBlock(k);
    b.addi(rOuter, rOuter, 1);
    b.blt(rOuter, rLimit, outer);
    b.halt();

    // Late fix-up: the indirect-dispatch table holds handler pcs.
    Program p = b.finish();
    if (s.indirect) {
        msp_assert(!handlerLabels.empty(), "indirect without handlers");
        for (unsigned i = 0; i < numHandlers; ++i) {
            const Label l = handlerLabels[i % handlerLabels.size()];
            const std::size_t w = tableBase + i;
            if (p.initData.size() <= w)
                p.initData.resize(w + 1, 0);
            p.initData[w] = b.labelAddr(l);
        }
    }
    return p;
}

// ---------------------------------------------------------------------------
// Benchmark parameterisation
// ---------------------------------------------------------------------------

std::map<std::string, SynthSpec>
makeSpecs()
{
    std::map<std::string, SynthSpec> m;
    auto add = [&m](SynthSpec s) { m[s.name] = s; };

    // ---- SPECint -----------------------------------------------------------
    SynthSpec gzip;
    gzip.chainLen = 2;
    gzip.name = "gzip";
    gzip.wsWords = 1 << 15;
    gzip.hotFrac = 0.92;
    gzip.randomBranchDensity = 0.50;
    gzip.randomBias = 0.16;
    gzip.blocks = 10;
    gzip.innerTrip = 12;
    gzip.regSpread = 22;
    add(gzip);

    SynthSpec vpr;
    vpr.name = "vpr";
    vpr.wsWords = 1 << 14;
    vpr.hotFrac = 0.90;
    vpr.randomBranchDensity = 0.45;
    vpr.randomBias = 0.13;
    vpr.patternPeriod = 40;
    vpr.patternDensity = 0.30;
    vpr.blocks = 14;
    vpr.regSpread = 19;
    vpr.chainLen = 2;
    vpr.calls = true;
    add(vpr);

    SynthSpec gcc;
    gcc.name = "gcc";
    gcc.wsWords = 3 << 14;
    gcc.randomBranchDensity = 0.35;
    gcc.randomBias = 0.08;
    gcc.patternPeriod = 56;
    gcc.patternDensity = 0.35;
    gcc.blocks = 40;
    gcc.itemsPerBlock = 5;
    gcc.regSpread = 18;
    gcc.calls = true;
    gcc.indirect = true;
    gcc.hotFrac = 0.80;
    gcc.chainLen = 2;
    add(gcc);

    SynthSpec mcf;
    mcf.name = "mcf";
    mcf.wsWords = 1 << 19;
    mcf.pointerChase = true;
    mcf.chaseNodes = 1 << 18;
    mcf.randomBranchDensity = 0.35;
    mcf.randomBias = 0.20;
    mcf.blocks = 8;
    mcf.regSpread = 18;
    mcf.hotFrac = 0.45;
    add(mcf);

    SynthSpec crafty;
    crafty.name = "crafty";
    crafty.wsWords = 1 << 13;
    crafty.hotFrac = 0.95;
    crafty.randomBranchDensity = 0.25;
    crafty.randomBias = 0.06;
    crafty.patternPeriod = 64;
    crafty.patternDensity = 0.45;
    crafty.blocks = 24;
    crafty.innerTrip = 8;
    crafty.regSpread = 19;
    crafty.chainLen = 2;
    crafty.calls = true;
    add(crafty);

    SynthSpec parser;
    parser.name = "parser";
    parser.wsWords = 3 << 13;
    parser.hotFrac = 0.90;
    parser.randomBranchDensity = 0.50;
    parser.randomBias = 0.15;
    parser.patternPeriod = 36;
    parser.patternDensity = 0.30;
    parser.blocks = 20;
    parser.regSpread = 19;
    parser.chainLen = 2;
    parser.calls = true;
    add(parser);

    SynthSpec eon;
    eon.name = "eon";
    eon.wsWords = 1 << 13;
    eon.hotFrac = 0.95;
    eon.randomBranchDensity = 0.15;
    eon.randomBias = 0.05;
    eon.patternPeriod = 44;
    eon.patternDensity = 0.30;
    eon.blocks = 16;
    eon.regSpread = 19;
    eon.fpMix = 0.30;
    eon.chainLen = 2;
    eon.calls = true;
    add(eon);

    SynthSpec perlbmk;
    perlbmk.name = "perlbmk";
    perlbmk.wsWords = 3 << 13;
    perlbmk.hotFrac = 0.90;
    perlbmk.randomBranchDensity = 0.35;
    perlbmk.randomBias = 0.13;
    perlbmk.blocks = 28;
    perlbmk.regSpread = 17;
    perlbmk.calls = true;
    perlbmk.indirect = true;
    perlbmk.chainLen = 2;
    add(perlbmk);

    SynthSpec gap;
    gap.name = "gap";
    gap.wsWords = 1 << 15;
    gap.hotFrac = 0.90;
    gap.randomBranchDensity = 0.30;
    gap.randomBias = 0.07;
    gap.patternPeriod = 48;
    gap.patternDensity = 0.30;
    gap.blocks = 16;
    gap.regSpread = 19;
    gap.chainLen = 2;
    gap.calls = true;
    add(gap);

    SynthSpec vortex;
    vortex.name = "vortex";
    vortex.wsWords = 1 << 16;
    vortex.randomBranchDensity = 0.20;
    vortex.randomBias = 0.05;
    vortex.patternPeriod = 52;
    vortex.patternDensity = 0.35;
    vortex.blocks = 32;
    vortex.regSpread = 19;
    vortex.storeDensity = 0.30;
    vortex.calls = true;
    vortex.hotFrac = 0.78;
    vortex.chainLen = 2;
    add(vortex);

    SynthSpec bzip2;
    bzip2.name = "bzip2";
    bzip2.wsWords = 3 << 14;
    bzip2.hotFrac = 0.85;
    bzip2.randomBranchDensity = 0.70;
    bzip2.randomBias = 0.20;
    bzip2.blocks = 8;
    bzip2.innerTrip = 16;
    bzip2.regSpread = 6;
    bzip2.chainLen = 4;
    add(bzip2);

    SynthSpec twolf;
    twolf.name = "twolf";
    twolf.wsWords = 3 << 12;
    twolf.hotFrac = 0.92;
    twolf.randomBranchDensity = 0.60;
    twolf.randomBias = 0.17;
    twolf.patternPeriod = 36;
    twolf.patternDensity = 0.25;
    twolf.blocks = 12;
    twolf.regSpread = 6;
    twolf.chainLen = 3;
    add(twolf);

    // ---- SPECfp -----------------------------------------------------------
    auto fpBase = []() {
        SynthSpec f;
        f.fp = true;
        f.randomBranchDensity = 0.03;
        f.randomBias = 0.20;
        f.patternPeriod = 0;
        f.innerTrip = 32;
        f.chainLen = 4;
        f.itemsPerBlock = 6;
        f.storeDensity = 0.35;
        f.hotFrac = 0.55;
        f.hotWords = 1 << 13;
        return f;
    };

    SynthSpec wupwise = fpBase();
    wupwise.name = "wupwise";
    wupwise.wsWords = 1 << 18;
    wupwise.stride = 2;
    wupwise.blocks = 8;
    wupwise.fpRegSpread = 6;
    add(wupwise);

    SynthSpec swim = fpBase();
    swim.name = "swim";
    swim.wsWords = 1 << 20;
    swim.randomBranchDensity = 0.01;
    swim.blocks = 6;
    swim.fpRegSpread = 3;
    add(swim);

    SynthSpec mgrid = fpBase();
    mgrid.name = "mgrid";
    mgrid.wsWords = 1 << 19;
    mgrid.randomBranchDensity = 0.01;
    mgrid.stride = 4;
    mgrid.blocks = 6;
    mgrid.fpRegSpread = 3;
    add(mgrid);

    SynthSpec applu = fpBase();
    applu.name = "applu";
    applu.wsWords = 1 << 18;
    applu.blocks = 10;
    applu.fpRegSpread = 5;
    add(applu);

    SynthSpec mesa = fpBase();
    mesa.name = "mesa";
    mesa.wsWords = 1 << 15;
    mesa.randomBranchDensity = 0.10;
    mesa.randomBias = 0.30;
    mesa.blocks = 16;
    mesa.fpRegSpread = 8;
    mesa.calls = true;
    mesa.hotFrac = 0.85;
    add(mesa);

    SynthSpec art = fpBase();
    art.name = "art";
    art.wsWords = 1 << 19;
    art.pointerChase = true;
    art.chaseNodes = 1 << 17;
    art.randomBranchDensity = 0.06;
    art.fpRegSpread = 6;
    art.hotFrac = 0.50;
    add(art);

    SynthSpec equake = fpBase();
    equake.name = "equake";
    equake.wsWords = 1 << 19;
    equake.pointerChase = true;
    equake.chaseNodes = 1 << 16;
    equake.randomBranchDensity = 0.04;
    equake.blocks = 8;
    equake.fpRegSpread = 3;
    add(equake);

    SynthSpec ammp = fpBase();
    ammp.name = "ammp";
    ammp.wsWords = 1 << 18;
    ammp.pointerChase = true;
    ammp.chaseNodes = 1 << 15;
    ammp.randomBranchDensity = 0.05;
    ammp.fpRegSpread = 6;
    ammp.hotFrac = 0.60;
    add(ammp);

    SynthSpec lucas = fpBase();
    lucas.name = "lucas";
    lucas.wsWords = 1 << 18;
    lucas.stride = 8;
    lucas.fpRegSpread = 6;
    add(lucas);

    SynthSpec fma3d = fpBase();
    fma3d.name = "fma3d";
    fma3d.wsWords = 1 << 16;
    fma3d.randomBranchDensity = 0.03;
    fma3d.blocks = 12;
    fma3d.fpRegSpread = 12;
    fma3d.hotFrac = 0.80;
    add(fma3d);

    return m;
}

const std::map<std::string, SynthSpec> &
specs()
{
    static const std::map<std::string, SynthSpec> s = makeSpecs();
    return s;
}

} // anonymous namespace

const std::vector<std::string> &
intBenchmarks()
{
    static const std::vector<std::string> v = {
        "gzip", "vpr", "gcc", "mcf", "crafty", "parser",
        "eon", "perlbmk", "gap", "vortex", "bzip2", "twolf",
    };
    return v;
}

const std::vector<std::string> &
fpBenchmarks()
{
    static const std::vector<std::string> v = {
        "wupwise", "swim", "mgrid", "applu", "mesa",
        "art", "equake", "ammp", "lucas", "fma3d",
    };
    return v;
}

SynthSpec
specFor(const std::string &name)
{
    auto it = specs().find(name);
    if (it == specs().end())
        msp_fatal("unknown benchmark '%s'", name.c_str());
    return it->second;
}

bool
isFp(const std::string &name)
{
    return specFor(name).fp;
}

Program
buildSynthetic(const SynthSpec &spec)
{
    return SynthBuilder(spec).build();
}

Program
build(const std::string &name, std::uint64_t seed)
{
    SynthSpec s = specFor(name);
    s.seed = seed;
    return buildSynthetic(s);
}

} // namespace spec
} // namespace msp
