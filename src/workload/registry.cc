#include "workload/registry.hh"

#include <algorithm>

#include "common/logging.hh"
#include "isa/builder.hh"
#include "workload/micro.hh"
#include "workload/spec.hh"
#include "workload/trace.hh"

namespace msp {
namespace workload {

namespace {

/** splitmix64 — the repo's standard deterministic stream. */
struct Rng
{
    std::uint64_t state;

    explicit Rng(std::uint64_t seed) : state(seed ? seed : 1) {}

    std::uint64_t
    next()
    {
        std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }
};

// ---- ptrchase: parallel pointer-chasing rings --------------------------

/**
 * Four independent random-cycle rings walked in lockstep: each load
 * depends on the previous load of its own chain, so single-chain ILP
 * is nil, but the four chains expose memory-level parallelism — the
 * large-window question the paper's SPEC proxies touch only obliquely.
 */
Program
buildPtrChase(std::uint64_t seed)
{
    constexpr unsigned chains = 4;
    constexpr std::size_t nodes = 2048;   // words per ring
    constexpr std::uint64_t steps = 20000;

    ProgramBuilder b("ptrchase");
    Rng rng(seed);

    // Each ring is one random cycle: node i points at the byte address
    // of its successor in a seeded permutation.
    for (unsigned c = 0; c < chains; ++c) {
        const std::size_t base = c * nodes;
        std::vector<std::size_t> perm(nodes);
        for (std::size_t i = 0; i < nodes; ++i)
            perm[i] = i;
        for (std::size_t i = nodes - 1; i > 0; --i)
            std::swap(perm[i], perm[rng.next() % (i + 1)]);
        for (std::size_t i = 0; i < nodes; ++i) {
            const std::size_t from = perm[i];
            const std::size_t to = perm[(i + 1) % nodes];
            b.data(base + from,
                   static_cast<std::uint64_t>((base + to) * wordBytes));
        }
    }
    const std::size_t resultWord = chains * nodes;
    b.memSize(resultWord + 64);

    // r1..r4: chain cursors. r8: limit, r9: counter, r10: checksum.
    for (unsigned c = 0; c < chains; ++c)
        b.li(1 + c, static_cast<std::int64_t>(c * nodes * wordBytes));
    b.li(8, static_cast<std::int64_t>(steps));
    b.li(9, 0);
    b.li(10, 0);

    Label loop = b.newLabel();
    b.bind(loop);
    for (unsigned c = 0; c < chains; ++c)
        b.ld(1 + c, 1 + c, 0);
    b.xor_(10, 10, 1);
    b.add(10, 10, 3);
    b.addi(9, 9, 1);
    b.blt(9, 8, loop);

    b.li(11, static_cast<std::int64_t>(resultWord * wordBytes));
    b.st(10, 11, 0);
    b.halt();
    return b.finish();
}

// ---- prodcons: bounded producer-consumer ring buffer -------------------

/**
 * A producer fills a 256-entry ring in bursts, a consumer drains the
 * same burst immediately after: every consumed value forwards from a
 * recent store (SQ forwarding stress), burst lengths are data-
 * dependent (an LCG in registers), and the head/tail wrap branches
 * follow a long-period pattern.
 */
Program
buildProdCons(std::uint64_t seed)
{
    constexpr std::size_t ringWords = 256;
    constexpr std::uint64_t rounds = 4000;

    ProgramBuilder b("prodcons");
    Rng rng(seed);

    const std::size_t ringBase = 0;
    const std::size_t resultWord = ringWords;
    b.memSize(ringWords + 64);

    // r5: head index, r6: tail index, r7: LCG state, r11: accumulator,
    // r8: round counter, r9: round limit, r20: constant 0.
    b.li(5, 0);
    b.li(6, 0);
    b.li(7, static_cast<std::int64_t>(rng.next() >> 1));
    b.li(11, 0);
    b.li(8, 0);
    b.li(9, static_cast<std::int64_t>(rounds));
    b.li(20, 0);
    b.li(21, 1103515245);          // LCG multiplier
    b.li(22, static_cast<std::int64_t>(ringWords - 1));

    Label round = b.newLabel();
    b.bind(round);

    // Burst length k = (state >> 5) & 7, plus one: 1..8 items.
    b.srli(12, 7, 5);
    b.andi(12, 12, 7);
    b.addi(12, 12, 1);

    // Producer: k stores through the head cursor.
    Label produce = b.newLabel();
    Label produceDone = b.newLabel();
    b.li(13, 0);                   // burst counter
    b.bind(produce);
    b.bge(13, 12, produceDone);
    b.mul(7, 7, 21);               // LCG step
    b.addi(7, 7, 12345);
    b.xor_(14, 7, 5);              // item value
    b.and_(15, 5, 22);             // head & (ring-1)
    b.slli(15, 15, 3);
    b.st(14, 15, static_cast<std::int64_t>(ringBase * wordBytes));
    b.addi(5, 5, 1);
    b.addi(13, 13, 1);
    b.j(produce);
    b.bind(produceDone);

    // Consumer: drain the same burst through the tail cursor; the
    // value's low bit steers a data-dependent branch.
    Label consume = b.newLabel();
    Label consumeDone = b.newLabel();
    Label even = b.newLabel();
    b.li(13, 0);
    b.bind(consume);
    b.bge(13, 12, consumeDone);
    b.and_(15, 6, 22);             // tail & (ring-1)
    b.slli(15, 15, 3);
    b.ld(14, 15, static_cast<std::int64_t>(ringBase * wordBytes));
    b.addi(6, 6, 1);
    b.andi(16, 14, 1);
    b.beq(16, 20, even);
    b.add(11, 11, 14);
    Label next = b.newLabel();
    b.j(next);
    b.bind(even);
    b.xor_(11, 11, 14);
    b.bind(next);
    b.addi(13, 13, 1);
    b.j(consume);
    b.bind(consumeDone);

    b.addi(8, 8, 1);
    b.blt(8, 9, round);

    b.li(17, static_cast<std::int64_t>(resultWord * wordBytes));
    b.st(11, 17, 0);
    b.halt();
    return b.finish();
}

// ---- interp: interpreter-style bytecode dispatch -----------------------

/**
 * A software interpreter: fetch a bytecode word, jump indirectly
 * through a handler table, execute a short handler, return to the
 * dispatch head. Indirect-branch misprediction dominates — the
 * dispatch-loop pathology gcc/perlbmk only approximate.
 */
Program
buildInterp(std::uint64_t seed)
{
    constexpr std::size_t bytecodeWords = 2048;
    constexpr unsigned numHandlers = 8;
    constexpr std::uint64_t passes = 12;

    ProgramBuilder b("interp");
    Rng rng(seed);

    const std::size_t bcBase = 0;
    const std::size_t tableBase = bcBase + bytecodeWords;
    const std::size_t dataBase = tableBase + numHandlers;
    constexpr std::size_t dataWords = 1024;
    const std::size_t resultWord = dataBase + dataWords;
    b.memSize(resultWord + 64);

    for (std::size_t i = 0; i < bytecodeWords; ++i)
        b.data(bcBase + i, rng.next() % numHandlers);
    for (std::size_t i = 0; i < dataWords; ++i)
        b.data(dataBase + i, rng.next());

    // r5: vpc, r6: bytecode length, r7: pass counter, r8: pass limit,
    // r10: accumulator, r11: operand, r22: data-index mask.
    b.li(5, 0);
    b.li(6, static_cast<std::int64_t>(bytecodeWords));
    b.li(7, 0);
    b.li(8, static_cast<std::int64_t>(passes));
    b.li(10, static_cast<std::int64_t>(rng.next() >> 1));
    b.li(11, 1);
    b.li(22, static_cast<std::int64_t>(dataWords - 1));

    Label dispatch = b.newLabel();
    Label endPass = b.newLabel();
    b.bind(dispatch);
    b.bge(5, 6, endPass);
    b.slli(12, 5, 3);              // vpc -> byte offset
    b.ld(13, 12, static_cast<std::int64_t>(bcBase * wordBytes));
    b.slli(13, 13, 3);
    b.ld(14, 13, static_cast<std::int64_t>(tableBase * wordBytes));
    b.addi(5, 5, 1);
    b.jr(14);

    std::vector<Label> handlers;
    for (unsigned h = 0; h < numHandlers; ++h) {
        Label l = b.newLabel();
        b.bind(l);
        switch (h) {
          case 0:
            b.add(10, 10, 11);
            break;
          case 1:
            b.xor_(10, 10, 11);
            break;
          case 2:
            b.mul(11, 11, 10);
            b.ori(11, 11, 1);
            break;
          case 3:
            b.srli(10, 10, 1);
            break;
          case 4:                  // load data[acc & mask]
            b.and_(15, 10, 22);
            b.slli(15, 15, 3);
            b.ld(11, 15, static_cast<std::int64_t>(dataBase * wordBytes));
            break;
          case 5:                  // store acc to data[vpc & mask]
            b.and_(15, 5, 22);
            b.slli(15, 15, 3);
            b.st(10, 15, static_cast<std::int64_t>(dataBase * wordBytes));
            break;
          case 6:
            b.sub(10, 10, 11);
            break;
          default:
            b.slli(11, 11, 1);
            b.ori(11, 11, 1);
            break;
        }
        b.j(dispatch);
        handlers.push_back(l);
    }

    b.bind(endPass);
    b.li(5, 0);
    b.addi(7, 7, 1);
    b.blt(7, 8, dispatch);

    b.li(16, static_cast<std::int64_t>(resultWord * wordBytes));
    b.st(10, 16, 0);
    b.halt();

    // Late fix-up: the dispatch table holds handler pcs, known only
    // after emission (the same idiom the synthetic SPEC builder uses).
    Program p = b.finish();
    for (unsigned h = 0; h < numHandlers; ++h) {
        const std::size_t w = tableBase + h;
        if (p.initData.size() <= w)
            p.initData.resize(w + 1, 0);
        p.initData[w] = b.labelAddr(handlers[h]);
    }
    return p;
}

bool
isSpecBenchmark(const std::string &name)
{
    const auto &iv = spec::intBenchmarks();
    const auto &fv = spec::fpBenchmarks();
    return std::find(iv.begin(), iv.end(), name) != iv.end() ||
           std::find(fv.begin(), fv.end(), name) != fv.end();
}

} // anonymous namespace

std::vector<std::string>
registeredNames()
{
    std::vector<std::string> names = spec::intBenchmarks();
    const auto &fp = spec::fpBenchmarks();
    names.insert(names.end(), fp.begin(), fp.end());
    names.push_back("tight-loop");
    names.push_back("ptrchase");
    names.push_back("prodcons");
    names.push_back("interp");
    return names;
}

bool
known(const std::string &name)
{
    if (name.rfind(tracePrefix, 0) == 0)
        return name.size() > std::string(tracePrefix).size();
    const std::vector<std::string> names = registeredNames();
    return std::find(names.begin(), names.end(), name) != names.end();
}

Program
build(const std::string &name, std::uint64_t seed)
{
    if (name.rfind(tracePrefix, 0) == 0) {
        const std::string path =
            name.substr(std::string(tracePrefix).size());
        if (path.empty())
            throw WorkloadError("trace workload needs a file: trace:FILE");
        return trace::load(path);
    }
    if (isSpecBenchmark(name))
        return spec::build(name, seed);
    if (name == "tight-loop")
        return micro::tightRenameIndependent(1u << 30);
    if (name == "ptrchase")
        return buildPtrChase(seed);
    if (name == "prodcons")
        return buildProdCons(seed);
    if (name == "interp")
        return buildInterp(seed);
    throw WorkloadError(csprintf(
        "unknown workload '%s' (want a SPEC benchmark, tight-loop, "
        "ptrchase, prodcons, interp or trace:FILE)", name.c_str()));
}

} // namespace workload
} // namespace msp
