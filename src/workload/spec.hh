/**
 * @file
 * Synthetic SPEC CPU2000-like workloads.
 *
 * The paper evaluates on SPEC CPU2000 binaries compiled with the Compaq
 * Alpha toolchain — unavailable here. Each generator below emits a real
 * program (control flow, data, loops) whose *microarchitectural*
 * character is shaped to the corresponding benchmark: branch
 * predictability under short vs long history (the gshare/TAGE split),
 * working-set size and access pattern (cache/memory behaviour), call
 * and indirect-jump density, dependency-chain ILP, and — critically for
 * the MSP — the density of logical-register reuse in hot loops, which
 * is what exhausts small SCT banks (Sec. 4.3). See DESIGN.md for the
 * substitution rationale.
 */

#ifndef MSPLIB_WORKLOAD_SPEC_HH
#define MSPLIB_WORKLOAD_SPEC_HH

#include <cstdint>
#include <string>
#include <vector>

#include "isa/program.hh"

namespace msp {
namespace spec {

/** Tunable character of one synthetic benchmark. */
struct SynthSpec
{
    std::string name;
    bool fp = false;

    // Memory behaviour.
    std::size_t wsWords = 1 << 14;  ///< working-set words (data array)
    unsigned stride = 1;            ///< array walk stride (words)
    bool pointerChase = false;      ///< mcf/art-style dependent loads
    std::size_t chaseNodes = 1 << 16;
    double storeDensity = 0.2;      ///< stores per block item

    /**
     * Fraction of load sites confined to a small, L1-resident hot
     * region. Real programs concentrate most accesses on a hot core
     * with occasional cold excursions; without this, every benchmark
     * becomes memory-bound.
     */
    double hotFrac = 0.85;
    std::size_t hotWords = 1 << 12; ///< 32 KB hot region

    // Branch behaviour.
    double randomBranchDensity = 0.3; ///< data-dependent branch density
    double randomBias = 0.5;          ///< P(taken) of random branches
    unsigned patternPeriod = 0;       ///< >0: long-period branch pattern
    double patternDensity = 0.0;      ///< patterned branches per item

    // Structure.
    unsigned blocks = 12;           ///< distinct code blocks
    unsigned itemsPerBlock = 6;     ///< work items per block
    unsigned innerTrip = 8;         ///< inner-loop trip count
    unsigned chainLen = 3;          ///< arithmetic dependency chain
    unsigned regSpread = 8;         ///< int temp registers cycled over
    unsigned fpRegSpread = 8;       ///< fp temp registers cycled over
    bool calls = false;
    bool indirect = false;          ///< interpreter-style dispatch
    double fpMix = 0.0;             ///< fp ops per item (int benches ~0)

    std::uint64_t seed = 1;
};

/** Benchmark names in paper order (Fig. 6/7/9). */
const std::vector<std::string> &intBenchmarks();

/** Floating-point benchmark names (Fig. 8). */
const std::vector<std::string> &fpBenchmarks();

/** The SynthSpec used for @p name (exposed for tests/ablations). */
SynthSpec specFor(const std::string &name);

/** Build the synthetic program for benchmark @p name. */
Program build(const std::string &name, std::uint64_t seed = 1);

/** Build directly from a SynthSpec (for custom workloads/ablations). */
Program buildSynthetic(const SynthSpec &spec);

/** True if @p name is one of the fp benchmarks. */
bool isFp(const std::string &name);

} // namespace spec
} // namespace msp

#endif // MSPLIB_WORKLOAD_SPEC_HH
