/**
 * @file
 * External trace ingestion: a JSONL program-image format so users can
 * bring their own instruction streams.
 *
 * A trace is one JSON record per line. The first line is a header
 * object carrying the image geometry; every following non-empty line
 * is one instruction tuple:
 *
 *   {"format": "msp-trace-v1", "name": "...", "mem_words": 65536,
 *    "entry": 0, "code_base": 67108864, "init_data": ["00..2a", ...]}
 *   ["li", 1, -1, -1, 0]
 *   ["addi", 1, 1, -1, 1]
 *   ["halt", -1, -1, -1, 0]
 *
 * The reader is strict: a malformed record throws TraceError naming
 * the 1-based line number, so a truncated or hand-edited trace can
 * never half-load as a different program. toJsonl()/fromJsonl() round
 * -trip every program bit-identically (tests/test_trace.cc).
 *
 * Traces plug into the workload registry as "trace:FILE" (see
 * workload/registry.hh) and into grid documents as the
 * "workload.trace" axis key (sim/grid.hh).
 */

#ifndef MSPLIB_WORKLOAD_TRACE_HH
#define MSPLIB_WORKLOAD_TRACE_HH

#include <stdexcept>
#include <string>

#include "isa/program.hh"

namespace msp {
namespace trace {

/** A malformed trace document (message carries the line number). */
struct TraceError : std::runtime_error
{
    using std::runtime_error::runtime_error;
};

/** The trace format identifier the header must carry. */
extern const char *const formatId;

/** Serialise @p prog as trace JSONL (header line + one line/instr). */
std::string toJsonl(const Program &prog);

/**
 * Parse a trace document. @throws TraceError naming the offending
 * 1-based line on any malformed header field, instruction tuple,
 * out-of-range operand or bad geometry.
 */
Program fromJsonl(const std::string &text);

/**
 * Read and parse the trace at @p path. @throws TraceError naming the
 * path on I/O failure and "path:line" on parse errors.
 */
Program load(const std::string &path);

} // namespace trace
} // namespace msp

#endif // MSPLIB_WORKLOAD_TRACE_HH
